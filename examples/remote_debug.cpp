// remote_debug: the paper's "broader applicability" (§3.4) — detecting
// firmware malfunction by diffing a client's observed GPU register log
// against the cloud's recording, without the vendor ever touching the
// device.
//
// Flow: record MNIST via the cloud (the reference behavior), replay on a
// healthy device (logs identical), then inject a stuck-at fault into one
// GPU register and replay again — the diff localizes the malfunctioning
// register and the exact interaction where it first deviates.
#include <cstdio>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/record/diff.h"
#include "src/record/replayer.h"

using namespace grt;

namespace {

Result<InteractionLog> ObservedReplayLog(ClientDevice* device,
                                         const Recording& recording) {
  ReplayConfig config;
  config.verify_reads = false;  // the diagnosis tool wants the full diff,
                                // not an abort at the first deviation
  config.collect_observed = true;
  Replayer replayer(&device->gpu(), &device->tzasc(), &device->mem(),
                    &device->timeline(), config);
  GRT_RETURN_IF_ERROR(replayer.Load(recording));
  GRT_ASSIGN_OR_RETURN(ReplayReport report, replayer.Replay());
  (void)report;
  return replayer.observed_log();
}

}  // namespace

int main() {
  ClientDevice device(SkuId::kMaliG71Mp8);
  NetworkDef net = BuildMnist();

  // Reference recording from the cloud.
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, &device, config, &history);
  if (!session.Connect().ok()) {
    return 1;
  }
  auto outcome = session.RecordWorkload(net, 1);
  if (!outcome.ok()) {
    return 1;
  }
  auto recording = Recording::ParseSigned(outcome->signed_recording,
                                          session.key()->key());
  if (!recording.ok()) {
    return 1;
  }

  // Healthy device: observed log matches the recording.
  auto healthy = ObservedReplayLog(&device, *recording);
  if (!healthy.ok()) {
    std::printf("healthy replay failed: %s\n",
                healthy.status().ToString().c_str());
    return 1;
  }
  LogDiff ok_diff = CompareInteractionLogs(recording->log, *healthy);
  std::printf("healthy device: %s (%zu interactions compared)\n",
              ok_diff.identical ? "no deviation" : "DEVIATION!",
              ok_diff.entries_compared);

  // Malfunctioning device: JS0_STATUS reports a corrupted completion code.
  device.gpu().InjectRegisterFault(kJobSlotBase + kJsStatus, 0x2);
  auto faulty = ObservedReplayLog(&device, *recording);
  device.gpu().ClearRegisterFault();
  if (!faulty.ok()) {
    std::printf("faulty replay failed: %s\n",
                faulty.status().ToString().c_str());
    return 1;
  }
  LogDiff bad_diff = CompareInteractionLogs(recording->log, *faulty);
  std::printf("faulty device: %s\n",
              bad_diff.identical ? "no deviation (bug!)" : "deviation found");
  std::printf("  first divergence at %s\n", bad_diff.description.c_str());
  std::printf("  %zu value mismatches across %zu interactions\n",
              bad_diff.value_mismatches, bad_diff.entries_compared);
  std::printf("(the vendor can now troubleshoot remotely, §3.4)\n");

  return ok_diff.identical && !bad_diff.identical ? 0 : 1;
}
