// Quickstart: the complete GR-T flow in one file.
//
//   1. a client device (TrustZone TEE + Mali-class GPU) asks the cloud
//      service to dry-run an MNIST inference workload over a simulated
//      WiFi link, producing a signed recording;
//   2. the TEE replayer verifies the recording, injects the real model
//      parameters and an input, and replays — GPU compute inside the TEE
//      with no GPU stack present;
//   3. the output is checked against a CPU reference.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/ml/reference.h"
#include "src/record/replayer.h"

using namespace grt;

int main() {
  // --- The client: a phone with a Mali G71 MP8 (the paper's Hikey960). --
  ClientDevice device(SkuId::kMaliG71Mp8);
  std::printf("client GPU: %s\n", device.sku().name.c_str());

  // --- Record: cloud dry run over WiFi (20 ms RTT / 80 Mbps). ----------
  CloudService service;
  SpeculationHistory history;  // commit history for speculation (§4.2)
  RecordSessionConfig config;
  config.network = WifiConditions();
  config.shim = ShimConfig::OursMDS();  // all of GR-T's optimizations

  NetworkDef net = BuildMnist();
  RecordSession session(&service, &device, config, &history);
  if (!session.Connect().ok()) {
    std::printf("attestation/handshake failed\n");
    return 1;
  }
  auto outcome = session.RecordWorkload(net, /*nonce=*/1);
  if (!outcome.ok()) {
    std::printf("recording failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("recorded %s: %zu GPU jobs, %zu log entries, "
              "recording delay %s, %llu blocking RTTs\n",
              net.name.c_str(), outcome->gpu_jobs, outcome->log_entries,
              FormatDuration(outcome->client_delay).c_str(),
              static_cast<unsigned long long>(
                  session.channel().stats().blocking_rtts));

  // --- Replay: inside the TEE, on real parameters + new input. ---------
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  if (!replayer
           .LoadSigned(outcome->signed_recording, session.key()->key())
           .ok()) {
    std::printf("recording rejected\n");
    return 1;
  }
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      (void)replayer.StageTensor(t.name, GenerateParams(net.name, t, 7));
    }
  }
  std::vector<float> input = GenerateInput(net, 42);
  (void)replayer.StageTensor("input", input);

  auto report = replayer.Replay();
  if (!report.ok()) {
    std::printf("replay failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("replayed %zu interactions in %s\n", report->entries_replayed,
              FormatDuration(report->delay).c_str());

  // --- Check the answer. ------------------------------------------------
  auto out = replayer.ReadTensor(net.output_tensor);
  auto ref = RunReference(net, input, 7);
  float diff = MaxAbsDiff(*out, *ref);
  std::printf("output vs CPU reference: max |diff| = %g -> %s\n", diff,
              diff < 1e-4f ? "MATCH" : "MISMATCH");
  std::printf("class probabilities:");
  for (float p : *out) {
    std::printf(" %.3f", p);
  }
  std::printf("\n");
  return diff < 1e-4f ? 0 : 1;
}
