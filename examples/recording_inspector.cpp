// recording_inspector: produces a recording and dissects it — what a
// developer tooling view of GR-T's artifact looks like. Prints the header,
// the tensor bindings (the replayer's injection/readout points), an entry
// histogram, the per-register access profile (the paper's "hot function"
// observation: a handful of registers dominate), and the memory-image
// composition (metastate vs program data, §5).
//
// Flags:
//   --lint          additionally run the static verifier and print its
//                   findings (exit code 1 if the recording has errors)
//   --dump          additionally print every log entry
//   --dataflow      lift the recording to the dataflow IR (src/analysis/
//                   dataflow) and print node/def-use statistics plus the
//                   first stretch of the IR itself
//   --diff <other>  parse <other> as a serialized (unsigned) recording body
//                   — typically a grt_opt output — and summarize op-count
//                   deltas against the freshly recorded original
//   --plan          compile the recording into a ReplayPlan (src/record/
//                   plan) and print what the lowering produced: op counts,
//                   the coalesced initial-image region table, mid-replay
//                   metastate reapplications, the tensor patch table, and
//                   the pages folded or dropped at compile time
//   --save <file>   write this recording's unsigned body to <file> (the
//                   input format grt_lint and grt_opt consume)
//   --metrics       enable the observability layer for the whole run
//                   (record + a cold and a warm replay) and print the
//                   metrics registry: shim commit/speculation/poll
//                   counters, net bytes and RTTs, recorder entries, and
//                   replay page accounting
//   --footprint     print the recording's static resource footprint (the
//                   v4 header block the device pool uses for co-residency
//                   decisions): classified register ranges, written page
//                   set, IRQ lines, and slot/AS latch masks
//   --fused         with --plan: run the planopt superoptimizer
//                   (src/analysis/planopt) on the compiled plan and print
//                   the fused warm schedule, per-op provenance, and the
//                   warm-invariant vs input-dependent partition; exit
//                   code 1 if the provenance check rejects the program
//   --json          with --footprint or --fused, emit JSON instead of the
//                   human-readable form
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "src/analysis/dataflow/ir.h"
#include "src/analysis/footprint/footprint.h"
#include "src/analysis/planopt/planopt.h"
#include "src/analysis/verifier.h"
#include "src/cloud/session.h"
#include "src/harness/table.h"
#include "src/hw/regs.h"
#include "src/ml/network.h"
#include "src/obs/metrics.h"
#include "src/record/plan.h"
#include "src/record/replayer.h"

using namespace grt;

namespace {

void DumpLog(const InteractionLog& log) {
  std::printf("\n--- log dump ---\n");
  const auto& entries = log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    switch (e.op) {
      case LogOp::kRegWrite:
        std::printf("  %5zu  write  %-20s = 0x%08X\n", i,
                    RegisterName(e.reg), e.value);
        break;
      case LogOp::kRegRead:
        std::printf("  %5zu  read   %-20s : 0x%08X%s\n", i,
                    RegisterName(e.reg), e.value,
                    e.speculative ? "  [speculative!]" : "");
        break;
      case LogOp::kPollWait:
        std::printf("  %5zu  poll   %-20s mask 0x%08X == 0x%08X "
                    "(final 0x%08X)\n",
                    i, RegisterName(e.reg), e.mask, e.expected, e.value);
        break;
      case LogOp::kDelay:
        std::printf("  %5zu  delay  %lld ns\n", i,
                    static_cast<long long>(e.delay));
        break;
      case LogOp::kIrqWait:
        std::printf("  %5zu  irq    lines 0x%02X\n", i, e.irq_lines);
        break;
      case LogOp::kMemPage:
        std::printf("  %5zu  page   pa 0x%010llx %s (%zu B)\n", i,
                    static_cast<unsigned long long>(e.pa),
                    e.metastate ? "meta" : "data", e.data.size());
        break;
    }
  }
}

// Per-op-kind counts, for the --diff summary.
std::map<LogOp, size_t> CountByOp(const InteractionLog& log) {
  std::map<LogOp, size_t> counts;
  for (const LogEntry& e : log.entries()) {
    ++counts[e.op];
  }
  return counts;
}

int DiffAgainst(const Recording& original, const char* other_path) {
  std::ifstream in(other_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", other_path);
    return 2;
  }
  Bytes raw((std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
  auto other = Recording::ParseUnsigned(raw);
  if (!other.ok()) {
    std::fprintf(stderr, "%s: %s\n", other_path,
                 other.status().ToString().c_str());
    return 2;
  }

  std::printf("\n--- op-count diff vs %s ---\n", other_path);
  const char* kind_names[] = {"?",     "reg write", "reg read", "poll wait",
                              "delay", "irq wait",  "mem page"};
  auto before = CountByOp(original.log);
  auto after = CountByOp(other->log);
  TextTable table({"op", "original", other_path, "delta"});
  for (int op = 1; op <= 6; ++op) {
    size_t a = before[static_cast<LogOp>(op)];
    size_t b = after[static_cast<LogOp>(op)];
    if (a == 0 && b == 0) {
      continue;
    }
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+lld",
                  static_cast<long long>(b) - static_cast<long long>(a));
    table.AddRow({kind_names[op], std::to_string(a), std::to_string(b),
                  delta});
  }
  char total_delta[32];
  std::snprintf(total_delta, sizeof(total_delta), "%+lld",
                static_cast<long long>(other->log.size()) -
                    static_cast<long long>(original.log.size()));
  table.AddRow({"total", std::to_string(original.log.size()),
                std::to_string(other->log.size()), total_delta});
  table.Print();

  const OptimizationProvenance& p = other->header.provenance;
  if (p.optimized) {
    std::map<std::string, size_t> by_pass;
    for (const OptRecord& r : p.records) {
      ++by_pass[r.pass];
    }
    std::printf("\n%s claims optimization: %zu justification record(s) "
                "over %u original entries\n",
                other_path, p.records.size(), p.original_entries);
    for (const auto& [pass, n] : by_pass) {
      std::printf("  %-22s %5zu\n", pass.c_str(), n);
    }
  } else {
    std::printf("\n%s carries no optimization provenance\n", other_path);
  }
  return 0;
}

int InspectPlan(const Recording& rec, bool fused, bool json) {
  ReplayPlan plan = CompileReplayPlan(rec);
  std::printf("\n--- compiled replay plan ---\n");
  std::printf("lowered %zu log entries -> %zu ops + %u initial-image pages "
              "(%.1f KB)\n",
              plan.source_entries, plan.ops.size(), plan.image_pages,
              plan.image_bytes / 1024.0);
  std::printf("  folded at compile: %u duplicate page snapshot(s), "
              "%u post-job-start data page(s)\n",
              plan.duplicate_pages, plan.dropped_pages);

  const struct { LogOp op; const char* name; } kKinds[] = {
      {LogOp::kRegWrite, "reg write"}, {LogOp::kRegRead, "reg read"},
      {LogOp::kPollWait, "poll wait"}, {LogOp::kDelay, "delay"},
      {LogOp::kIrqWait, "irq wait"},   {LogOp::kMemPage, "mid image"},
  };
  std::printf("\n  op array:\n");
  for (const auto& k : kKinds) {
    size_t n = plan.CountOps(k.op);
    if (n > 0) {
      std::printf("    %-10s %6zu\n", k.name, n);
    }
  }

  std::printf("\n  initial image, coalesced into %zu contiguous region(s):\n",
              plan.regions.size());
  TextTable regions({"base pa", "pages", "KB", "metastate"});
  for (const PlanRegion& region : plan.regions) {
    char base[24];
    std::snprintf(base, sizeof(base), "0x%010llx",
                  static_cast<unsigned long long>(region.base_pa));
    size_t meta = 0;
    for (bool m : region.metastate) {
      if (m) ++meta;
    }
    regions.AddRow({base, std::to_string(region.n_pages),
                    std::to_string(region.image.size() / 1024),
                    std::to_string(meta)});
  }
  regions.Print();
  if (!plan.mid_images.empty()) {
    std::printf("\n  %zu mid-replay metastate reapplication(s) kept as "
                "ordered ops\n",
                plan.mid_images.size());
  }

  std::printf("\n  tensor patch table:\n");
  for (const auto& [name, patch] : plan.patches) {
    std::printf("    %-14s %8llu floats in %3zu chunk(s), %s%s\n",
                name.c_str(),
                static_cast<unsigned long long>(patch.n_floats),
                patch.chunks.size(),
                patch.writable ? "injectable" : "read-only",
                patch.complete ? "" : "  [INCOMPLETE PAGE LIST]");
  }

  if (fused) {
    auto sku = FindSku(rec.header.sku);
    if (!sku.ok()) {
      std::fprintf(stderr, "cannot resolve SKU for --fused: %s\n",
                   sku.status().ToString().c_str());
      return 1;
    }
    std::string decline;
    Status st = AttachWarmProgram(&plan, sku.value(), &decline);
    if (!st.ok()) {
      std::fprintf(stderr, "planopt provenance check FAILED: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (plan.warm == nullptr) {
      std::printf("\n--- fused warm program ---\nsuperoptimizer declined: "
                  "%s\n",
                  decline.c_str());
      return 0;
    }
    std::printf("\n--- fused warm program ---\n%s",
                FormatWarmProgram(plan, json).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool lint = false, dump = false, dataflow = false, show_plan = false;
  bool metrics = false, footprint = false, json = false, fused = false;
  const char* diff_path = nullptr;
  const char* save_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--dataflow") == 0) {
      dataflow = true;
    } else if (std::strcmp(argv[i], "--plan") == 0) {
      show_plan = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--footprint") == 0) {
      footprint = true;
    } else if (std::strcmp(argv[i], "--fused") == 0) {
      fused = true;
      show_plan = true;  // the fused schedule is part of the plan view
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--diff") == 0 && i + 1 < argc) {
      diff_path = argv[++i];
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--lint] [--dump] [--dataflow] [--plan] "
                   "[--fused] [--metrics] [--footprint [--json]] "
                   "[--diff <other>] [--save <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (metrics) {
    // On before the record session so the shim/net/recorder counters see
    // the whole interaction, not just the replay.
    obs::SetEnabled(true);
  }
  ClientDevice device(SkuId::kMaliG71Mp8);
  NetworkDef net = BuildMnist();
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  RecordSession session(&service, &device, config, &history);
  if (!session.Connect().ok()) {
    return 1;
  }
  auto outcome = session.RecordWorkload(net, 7);
  if (!outcome.ok()) {
    return 1;
  }
  auto rec = Recording::ParseSigned(outcome->signed_recording,
                                    session.key()->key());
  if (!rec.ok()) {
    return 1;
  }

  std::printf("=== recording: %s ===\n", rec->header.workload.c_str());
  std::printf("sku: 0x%x   nonce: %llu   segments: %u/%u   wire size: %zu B\n",
              static_cast<uint32_t>(rec->header.sku),
              static_cast<unsigned long long>(rec->header.record_nonce),
              rec->header.segment_index + 1, rec->header.segment_count,
              outcome->signed_recording.size());

  std::printf("\n--- tensor bindings (%zu) ---\n", rec->bindings.size());
  for (const auto& [name, b] : rec->bindings) {
    std::printf("  %-14s %8llu floats @ va 0x%llx, %zu pages, %s\n",
                name.c_str(), static_cast<unsigned long long>(b.n_floats),
                static_cast<unsigned long long>(b.va), b.pages.size(),
                b.writable_at_replay ? "injectable" : "read-only");
  }

  std::printf("\n--- interaction log (%zu entries) ---\n", rec->log.size());
  const char* kind_names[] = {"?",     "reg write", "reg read", "poll wait",
                              "delay", "irq wait",  "mem page"};
  std::map<LogOp, size_t> by_kind;
  std::map<uint32_t, size_t> by_reg;
  size_t meta_pages = 0, data_pages = 0, image_bytes = 0;
  for (const LogEntry& e : rec->log.entries()) {
    ++by_kind[e.op];
    if (e.op == LogOp::kRegRead || e.op == LogOp::kRegWrite ||
        e.op == LogOp::kPollWait) {
      ++by_reg[e.reg];
    }
    if (e.op == LogOp::kMemPage) {
      (e.metastate ? meta_pages : data_pages) += 1;
      image_bytes += e.data.size();
    }
  }
  for (const auto& [op, n] : by_kind) {
    std::printf("  %-10s %6zu\n", kind_names[static_cast<int>(op)], n);
  }

  std::printf("\n--- register access profile (top 10) ---\n");
  std::vector<std::pair<size_t, uint32_t>> ranked;
  for (const auto& [reg, n] : by_reg) {
    ranked.push_back({n, reg});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  size_t total = 0, top = 0;
  for (const auto& [n, reg] : ranked) {
    total += n;
  }
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    top += ranked[i].first;
    std::printf("  %-20s %5zu\n", RegisterName(ranked[i].second),
                ranked[i].first);
  }
  std::printf("top-10 registers carry %.0f%% of all register interactions\n"
              "(the locality behind the paper's hot-function scoping, S4.1)\n",
              100.0 * top / total);

  std::printf("\n--- memory image ---\n");
  std::printf("  metastate pages: %zu   program-data pages: %zu   "
              "%.1f KB total\n",
              meta_pages, data_pages, image_bytes / 1024.0);

  if (footprint) {
    if (json) {
      std::printf("\n%s\n", FootprintToJson(rec->header.footprint).c_str());
    } else {
      std::printf("\n--- static resource footprint ---\n%s\n",
                  FootprintToString(rec->header.footprint).c_str());
    }
  }
  if (dump) {
    DumpLog(rec->log);
  }
  if (dataflow) {
    DataflowIr ir = LiftRecording(*rec);
    std::printf("\n--- dataflow IR ---\n%s\n",
                ComputeIrStats(ir).ToString().c_str());
    std::printf("%s", DumpIr(ir, 60).c_str());
  }
  if (show_plan) {
    int rc = InspectPlan(*rec, fused, json);
    if (rc != 0) {
      return rc;
    }
  }
  if (save_path != nullptr) {
    Bytes body = rec->SerializeBody();
    std::ofstream out(save_path, std::ios::binary);
    if (!out || !out.write(reinterpret_cast<const char*>(body.data()),
                           static_cast<std::streamsize>(body.size()))) {
      std::fprintf(stderr, "cannot write %s\n", save_path);
      return 2;
    }
    std::printf("\nsaved unsigned body to %s (%zu B)\n", save_path,
                body.size());
  }
  if (diff_path != nullptr) {
    int rc = DiffAgainst(*rec, diff_path);
    if (rc != 0) {
      return rc;
    }
  }
  if (lint) {
    RecordingVerifier verifier;
    AnalysisReport report = verifier.Analyze(*rec);
    std::printf("\n--- static verifier ---\n%s\n", report.ToString().c_str());
    if (!report.ok()) {
      return 1;
    }
  }
  if (metrics) {
    // One cold and one warm replay on a fresh device populate the
    // replay.* side of the registry (plan path, dirty-page tracking).
    ClientDevice replay_device(SkuId::kMaliG71Mp8, /*nondet_seed=*/1);
    ReplayConfig rconfig;
    Replayer replayer(&replay_device.gpu(), &replay_device.tzasc(),
                      &replay_device.mem(), &replay_device.timeline(),
                      rconfig);
    Status loaded = replayer.Load(*rec);
    if (!loaded.ok()) {
      std::fprintf(stderr, "metrics replay load failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    for (int pass = 0; pass < 2; ++pass) {
      auto report = replayer.Replay();
      if (!report.ok()) {
        std::fprintf(stderr, "metrics replay failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("\n--- observability metrics ---\n%s",
                obs::MetricsRegistry::Global().Snapshot().ToString().c_str());
  }
  return 0;
}
