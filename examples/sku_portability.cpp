// sku_portability: why GR-T exists (§2.4).
//
// Records the same hardware-neutral workload for two different GPU SKUs
// (Mali G71 MP8 and MP4). Shows that:
//   * the cloud's JIT emits different shader binaries per SKU (tiling is
//     bound to the core count at record time — early binding);
//   * both recordings replay correctly on their own SKU;
//   * replaying an MP8 recording on an MP4 device is rejected up front,
//     and even a forged header can't make foreign shaders run (the GPU
//     faults on the core-count mismatch).
#include <cstdio>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/ml/reference.h"
#include "src/record/replayer.h"
#include "src/runtime/runtime.h"

using namespace grt;

namespace {

struct Recorded {
  Bytes wire;
  Bytes key;
};

bool RecordFor(ClientDevice* device, const NetworkDef& net, Recorded* out) {
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, device, config, &history);
  if (!session.Connect().ok()) {
    return false;
  }
  auto rec = session.RecordWorkload(net, 5);
  if (!rec.ok()) {
    std::printf("record failed: %s\n", rec.status().ToString().c_str());
    return false;
  }
  out->wire = rec->signed_recording;
  out->key = session.key()->key();
  return true;
}

bool ReplayOn(ClientDevice* device, const NetworkDef& net,
              const Recorded& rec) {
  Replayer replayer(&device->gpu(), &device->tzasc(), &device->mem(),
                    &device->timeline());
  Status load = replayer.LoadSigned(rec.wire, rec.key);
  if (!load.ok()) {
    std::printf("  -> rejected at load: %s\n", load.ToString().c_str());
    return false;
  }
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      (void)replayer.StageTensor(t.name, GenerateParams(net.name, t, 7));
    }
  }
  std::vector<float> input = GenerateInput(net, 8);
  (void)replayer.StageTensor("input", input);
  auto report = replayer.Replay();
  if (!report.ok()) {
    std::printf("  -> replay failed: %s\n",
                report.status().ToString().c_str());
    return false;
  }
  auto out = replayer.ReadTensor(net.output_tensor);
  auto ref = RunReference(net, input, 7);
  bool ok = out.ok() && ref.ok() && MaxAbsDiff(*out, *ref) < 1e-4f;
  std::printf("  -> replayed, output %s\n", ok ? "correct" : "WRONG");
  return ok;
}

}  // namespace

int main() {
  NetworkDef net = BuildMnist();

  // The JIT's per-SKU early binding: same kernel, different binaries.
  GpuSku mp8 = FindSku(SkuId::kMaliG71Mp8).value();
  GpuSku mp4 = FindSku(SkuId::kMaliG71Mp4).value();
  ShaderBlobHeader h8 = JitShaderHeader(GpuOp::kGemm, mp8);
  ShaderBlobHeader h4 = JitShaderHeader(GpuOp::kGemm, mp4);
  std::printf("GEMM shader tiling: %s -> %ux%u, %s -> %ux%u\n",
              mp8.name.c_str(), h8.tile_m, h8.tile_n, mp4.name.c_str(),
              h4.tile_m, h4.tile_n);

  ClientDevice dev8(SkuId::kMaliG71Mp8);
  ClientDevice dev4(SkuId::kMaliG71Mp4);
  Recorded rec8, rec4;
  if (!RecordFor(&dev8, net, &rec8) || !RecordFor(&dev4, net, &rec4)) {
    return 1;
  }
  std::printf("recording sizes: MP8 %zu B, MP4 %zu B (SKU-specific "
              "content)\n", rec8.wire.size(), rec4.wire.size());

  std::printf("replay MP8 recording on MP8 device:\n");
  bool ok8 = ReplayOn(&dev8, net, rec8);
  std::printf("replay MP4 recording on MP4 device:\n");
  bool ok4 = ReplayOn(&dev4, net, rec4);

  std::printf("replay MP8 recording on MP4 device (must be rejected):\n");
  bool cross = ReplayOn(&dev4, net, rec8);

  return ok8 && ok4 && !cross ? 0 : 1;
}
