// serving_demo: the deployment view of GR-T — a replay model server.
//
// A fleet operator records a workload once, installs the signed artifact
// in a RecordingStore, and stands up a ReplayService in front of it. The
// service verifies and compiles the recording once (into a ReplayPlan),
// then serves concurrent inference requests across worker devices; after
// each worker's first request, replays run the dirty-page warm path and
// re-apply only the memory a previous replay clobbered.
//
// Demonstrates: Preload, sync and async submission, deadlines, and the
// service's cache/warm-path statistics.
//
// With --trace <path>, enables the observability layer, captures every
// span (queue / request / stage_input / replay / readback plus the shim
// and replayer internals), and writes a Chrome trace_event file loadable
// in chrome://tracing, ui.perfetto.dev, or `grt_trace summarize <path>`.
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/service.h"

using namespace grt;

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: serving_demo [--trace <out.json>]\n");
      return 2;
    }
  }
  if (trace_path != nullptr) {
    obs::SetEnabled(true);
    obs::TraceCollector::Global().Start();
  }

  constexpr SkuId kSku = SkuId::kMaliG71Mp8;
  NetworkDef net = BuildMnist();

  // One-time: record the workload and install the signed artifact.
  ClientDevice recorder(kSku);
  SpeculationHistory history;
  auto recorded = RunRecordVariant(&recorder, net, "OursMDS",
                                   WifiConditions(), &history, 0);
  if (!recorded.ok()) {
    std::printf("recording failed: %s\n",
                recorded.status().ToString().c_str());
    return 1;
  }
  RecordingStore store(recorded->session_key);
  if (!store.Install(recorded->signed_recording).ok()) {
    return 1;
  }

  // Stand up the service: two simulated devices, plans compiled ahead of
  // traffic.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  ReplayService service(&store, config);
  if (!service.Preload(net.name).ok() || !service.Start().ok()) {
    return 1;
  }

  // Concurrent clients: async submits with a deadline, new input each
  // request, model parameters staged with the request (they stay resident
  // on the worker afterwards).
  std::vector<std::future<ReplayResponse>> in_flight;
  for (uint64_t i = 0; i < 12; ++i) {
    ReplayRequest request;
    request.workload = net.name;
    request.tensors[net.input_tensor] = GenerateInput(net, 100 + i);
    for (const TensorDef& t : net.tensors) {
      if (t.kind == TensorKind::kParam) {
        request.tensors[t.name] = GenerateParams(net.name, t, 7);
      }
    }
    request.output_tensor = net.output_tensor;
    request.deadline_ms = 5000;
    in_flight.push_back(service.SubmitAsync(std::move(request)));
  }

  int ok = 0;
  for (size_t i = 0; i < in_flight.size(); ++i) {
    ReplayResponse response = in_flight[i].get();
    if (!response.status.ok()) {
      std::printf("request %zu failed: %s\n", i,
                  response.status.ToString().c_str());
      continue;
    }
    auto ref = RunReference(net, GenerateInput(net, 100 + i), 7);
    bool correct = ref.ok() && MaxAbsDiff(response.output, *ref) <= 1e-4f;
    std::printf("request %2zu: worker %d, %s replay, %s in %s, %s\n", i,
                response.worker, response.report.warm ? "warm" : "cold",
                FormatDuration(response.report.delay).c_str(),
                response.plan_cache_hit ? "cached plan" : "fresh compile",
                correct ? "output matches reference" : "OUTPUT MISMATCH");
    if (correct) ++ok;
  }

  ServeStats stats = service.Stats();
  std::printf("\nserved %zu/%zu OK | plan hits/misses %zu/%zu | "
              "%zu warm replays, dirty-page ratio %.0f%%\n",
              static_cast<size_t>(ok), in_flight.size(), stats.plan_hits,
              stats.plan_misses, stats.warm_replays,
              100.0 * stats.dirty_page_ratio());
  std::printf("replay delay p50 %s, p95 %s, p99 %s\n",
              FormatDuration(stats.replay_delay_p50).c_str(),
              FormatDuration(stats.replay_delay_p95).c_str(),
              FormatDuration(stats.replay_delay_p99).c_str());
  service.Stop();

  if (trace_path != nullptr) {
    obs::TraceCollector& collector = obs::TraceCollector::Global();
    collector.Stop();
    std::vector<obs::TraceEvent> events = collector.Snapshot();
    Status written = obs::WriteChromeTraceFile(trace_path, events);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu spans to %s (open in chrome://tracing or run "
                "`grt_trace summarize %s`)\n",
                events.size(), trace_path, trace_path);
  }
  return ok == static_cast<int>(in_flight.size()) ? 0 : 1;
}
