// misprediction_drill: §7.3's fault-injection experiment, interactive form.
//
// Arms an injected wrong register value late in a VGG16 record run, shows
// the validation catching the mismatch, both parties rolling back by
// replaying the interaction log independently, and the recording session
// completing correctly afterwards.
#include <cstdio>

#include "src/cloud/session.h"
#include "src/ml/network.h"

using namespace grt;

int main() {
  NetworkDef net = BuildVgg16();
  ClientDevice device(SkuId::kMaliG71Mp8, /*nondet_seed=*/77);
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();

  // Warm the commit history so speculation is active.
  {
    RecordSession warm(&service, &device, config, &history);
    if (!warm.Connect().ok() || !warm.RecordWorkload(net, 1).ok()) {
      std::printf("warm-up failed\n");
      return 1;
    }
    std::printf("warm-up run done; %zu speculation sites learned\n",
                history.sites());
  }

  RecordSession session(&service, &device, config, &history);
  if (!session.Connect().ok()) {
    return 1;
  }
  // Worst case (§7.3): the wrong value arrives at the end of the run.
  session.shim().InjectMispredictionAtJob(net.job_count() - 1);
  std::printf("armed: client will return one corrupted register value near "
              "job %zu\n", net.job_count() - 1);

  auto out = session.RecordWorkload(net, 2);
  const ShimStats& st = session.shim().stats();
  std::printf("record run: %s\n",
              out.ok() ? "completed" : out.status().ToString().c_str());
  std::printf("mispredictions detected: %llu\n",
              static_cast<unsigned long long>(st.mispredictions));
  std::printf("rollback time (both parties replay independently): %s\n",
              FormatDuration(st.rollback_time).c_str());
  std::printf("post-recovery state: %s\n",
              session.shim().last_error().ok() ? "clean" : "corrupted");
  std::printf("(paper: ~1 s rollback for MNIST, ~3 s for VGG16, dominated "
              "by cloud driver reload + job recompilation)\n");
  return out.ok() && st.mispredictions == 1 &&
                 session.shim().last_error().ok()
             ? 0
             : 1;
}
