// secure_inference: the app developer's view of GR-T (§3.1 workflow).
//
// An app ships a hardware-neutral model (here: SqueezeNet). On first use
// the client TEE records it once via the cloud; afterwards the app runs
// inference repeatedly inside the TEE — each replay injects a fresh input
// and reads the output, with the model parameters never leaving the
// device and no GPU stack in the TCB.
//
// Demonstrates: record-once/replay-many, per-replay input injection, and
// that the normal-world OS is locked out of the GPU during secure compute.
#include <cstdio>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/ml/reference.h"
#include "src/record/replayer.h"

using namespace grt;

int main() {
  constexpr uint64_t kModelSeed = 2024;  // the app's (private) weights
  ClientDevice device(SkuId::kMaliG71Mp8);
  NetworkDef net = BuildSqueezeNet();

  // First launch: record once via the cloud (cellular conditions).
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.network = CellularConditions();
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, &device, config, &history);
  if (!session.Connect().ok()) {
    return 1;
  }
  auto rec = session.RecordWorkload(net, /*nonce=*/99);
  if (!rec.ok()) {
    std::printf("recording failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("one-time recording: %s (%zu jobs) in %s over %s\n",
              net.name.c_str(), rec->gpu_jobs,
              FormatDuration(rec->client_delay).c_str(),
              config.network.name.c_str());

  // Load the recording into the TEE replayer and install the model once.
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  if (!replayer.LoadSigned(rec->signed_recording, session.key()->key()).ok()) {
    return 1;
  }
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      (void)replayer.StageTensor(t.name,
                                 GenerateParams(net.name, t, kModelSeed));
    }
  }

  // Inference loop: replay on a new input each time, no cloud contact.
  Duration total = 0;
  int correct = 0;
  const int kInferences = 8;
  for (int i = 0; i < kInferences; ++i) {
    std::vector<float> input = GenerateInput(net, 100 + i);
    (void)replayer.StageTensor("input", input);
    auto report = replayer.Replay();
    if (!report.ok()) {
      std::printf("replay %d failed: %s\n", i,
                  report.status().ToString().c_str());
      return 1;
    }
    total += report->delay;
    auto out = replayer.ReadTensor(net.output_tensor);
    auto ref = RunReference(net, input, kModelSeed);
    bool ok = MaxAbsDiff(*out, *ref) < 1e-4f;
    correct += ok;
    std::printf("inference %d: %s in %s\n", i, ok ? "correct" : "WRONG",
                FormatDuration(report->delay).c_str());
  }
  std::printf("%d/%d inferences match the CPU reference; average replay "
              "delay %s\n",
              correct, kInferences,
              FormatDuration(total / kInferences).c_str());

  // While the TEE holds the GPU, the normal world is locked out.
  device.tzasc().AssignGpu(World::kSecure);
  auto denied = device.tzasc().ReadGpuRegister(World::kNormal, &device.gpu(),
                                               kRegGpuId);
  std::printf("normal-world GPU access during secure compute: %s\n",
              denied.ok() ? "ALLOWED (bug!)" : "denied (as required)");
  device.tzasc().AssignGpu(World::kNormal);
  return correct == kInferences && !denied.ok() ? 0 : 1;
}
