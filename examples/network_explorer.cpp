// network_explorer: how recording delay scales with network conditions.
//
// Sweeps RTT and bandwidth around the paper's WiFi/cellular points for
// Naive and OursMDS, showing that GR-T's optimizations change the *slope*:
// Naive's delay is dominated by RTT x register-access count, while
// OursMDS approaches the floor set by the few nondeterministic commits
// and the metadata traffic (§3.3, §7.2).
#include <cstdio>

#include "src/harness/experiment.h"
#include "src/harness/table.h"

using namespace grt;

int main() {
  NetworkDef net = BuildMnist();

  std::printf("=== RTT sweep (bandwidth fixed at 80 Mbps) ===\n");
  TextTable rtt_table({"RTT", "Naive", "OursMDS", "speedup"});
  for (int rtt_ms : {5, 20, 50, 100, 200}) {
    NetworkConditions cond{"sweep", rtt_ms * kMillisecond, 80e6};
    double delays[2] = {0, 0};
    int i = 0;
    for (const char* variant : {"Naive", "OursMDS"}) {
      ClientDevice device(SkuId::kMaliG71Mp8, 13);
      SpeculationHistory history;
      auto m = RunRecordVariant(&device, net, variant, cond, &history,
                                variant[4] == 'M' && variant[5] == 'D' ? 1
                                                                       : 0);
      if (!m.ok()) {
        std::printf("failed: %s\n", m.status().ToString().c_str());
        return 1;
      }
      delays[i++] = ToSeconds(m->client_delay);
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", delays[0] / delays[1]);
    char rtt_label[16];
    std::snprintf(rtt_label, sizeof(rtt_label), "%d ms", rtt_ms);
    rtt_table.AddRow({rtt_label, FormatSeconds(delays[0]),
                      FormatSeconds(delays[1]), speedup});
  }
  rtt_table.Print();

  std::printf("\n=== bandwidth sweep (RTT fixed at 20 ms) ===\n");
  TextTable bw_table({"bandwidth", "Naive", "OursMDS", "speedup"});
  for (double mbps : {10.0, 40.0, 80.0, 300.0}) {
    NetworkConditions cond{"sweep", 20 * kMillisecond, mbps * 1e6};
    double delays[2] = {0, 0};
    int i = 0;
    for (const char* variant : {"Naive", "OursMDS"}) {
      ClientDevice device(SkuId::kMaliG71Mp8, 13);
      SpeculationHistory history;
      auto m = RunRecordVariant(&device, net, variant, cond, &history,
                                i == 1 ? 1 : 0);
      if (!m.ok()) {
        return 1;
      }
      delays[i++] = ToSeconds(m->client_delay);
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", delays[0] / delays[1]);
    char bw_label[16];
    std::snprintf(bw_label, sizeof(bw_label), "%.0f Mbps", mbps);
    bw_table.AddRow({bw_label, FormatSeconds(delays[0]),
                     FormatSeconds(delays[1]), speedup});
  }
  bw_table.Print();
  std::printf("\nNaive scales with RTT (per-access round trips) and with\n"
              "bandwidth (full-memory sync); OursMDS is nearly flat.\n");
  return 0;
}
