#!/usr/bin/env bash
# Two-pass CI gate:
#   1. normal build + full ctest (includes the chaos suite, run twice so
#      the deterministic-recording acceptance covers two consecutive runs)
#   2. ASan+UBSan build (-DGRT_SANITIZE=address,undefined) + full ctest
#
# Usage: scripts/ci.sh [jobs]
#   jobs  parallel build/test jobs (default: nproc)
#
# Note: builds use the default CMake build type on purpose. Do not add
# -DCMAKE_BUILD_TYPE=Release here — GCC 12 trips a stringop-overread
# false positive under -O2 -Werror in the TEE key-derivation code.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_pass() {
  local label="$1" build_dir="$2"
  shift 2
  echo "=== ${label}: configure (${build_dir}) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${label}: ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

run_pass "pass 1/2 (normal)" build-ci
# The chaos suite asserts per-schedule determinism in-process; running the
# whole suite a second time also proves determinism across runs.
echo "=== pass 1/2: ctest (second run, determinism check) ==="
ctest --test-dir build-ci -j "${JOBS}" --output-on-failure

run_pass "pass 2/2 (asan+ubsan)" build-ci-san \
  -DGRT_SANITIZE=address,undefined

echo "=== CI: all passes green ==="
