#!/usr/bin/env bash
# Three-pass CI gate:
#   1. normal build + full ctest (includes the chaos suite, run twice so
#      the deterministic-recording acceptance covers two consecutive runs)
#   2. ASan+UBSan build (-DGRT_SANITIZE=address,undefined) + full ctest
#   3. clang-tidy over the library sources (profile: .clang-tidy); any
#      warning fails the gate. Skips cleanly where clang-tidy is absent.
#
# Usage: scripts/ci.sh [jobs]
#   jobs  parallel build/test jobs (default: nproc)
#
# Note: builds use the default CMake build type on purpose. Do not add
# -DCMAKE_BUILD_TYPE=Release here — GCC 12 trips a stringop-overread
# false positive under -O2 -Werror in the TEE key-derivation code.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_pass() {
  local label="$1" build_dir="$2"
  shift 2
  echo "=== ${label}: configure (${build_dir}) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${label}: ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

run_pass "pass 1/3 (normal)" build-ci
# The chaos suite asserts per-schedule determinism in-process; running the
# whole suite a second time also proves determinism across runs.
echo "=== pass 1/3: ctest (second run, determinism check) ==="
ctest --test-dir build-ci -j "${JOBS}" --output-on-failure

run_pass "pass 2/3 (asan+ubsan)" build-ci-san \
  -DGRT_SANITIZE=address,undefined

# clang-tidy emits warnings on stdout but exits 0 for warnings-only runs;
# treat any diagnostic line as a gate failure so new warnings can't land.
echo "=== pass 3/3: clang-tidy lint gate ==="
TIDY_LOG="$(mktemp)"
trap 'rm -f "${TIDY_LOG}"' EXIT
scripts/run_clang_tidy.sh build-ci src 2>&1 | tee "${TIDY_LOG}"
if grep -E 'warning:|error:' "${TIDY_LOG}" >/dev/null; then
  echo "=== pass 3/3: clang-tidy reported diagnostics — failing ===" >&2
  exit 1
fi

echo "=== CI: all passes green ==="
