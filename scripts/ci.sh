#!/usr/bin/env bash
# Five-pass CI gate:
#   1. normal build + full ctest (includes the chaos suite, run twice so
#      the deterministic-recording acceptance covers two consecutive runs)
#   2. replay perf smoke gate: bench/replay_serving --smoke fails if a
#      warm plan-based replay ever applies at least as many memory bytes
#      as the interpreter, diverges from it bitwise, or the planopt-fused
#      warm replay misses its per-workload speedup gate; --perf-gate
#      records vgg16 and fails unless the fused warm replay beats the
#      interpreter by >= 1.5x AND the optimized kernel engine beats the
#      reference engine by >= 2x wall clock, both bitwise-identical;
#      bench/kernel_bench --smoke fails if any optimized shader-core
#      kernel diverges bitwise from its pinned reference; --obs-gate
#      fails if running with metrics + tracing enabled is more than 5%
#      slower than running with them off; bench/serving_frontend --smoke
#      fails if TCP-served outputs diverge bitwise from in-process replay
#      or the open-loop load points drop/garble any response;
#      bench/serving_frontend --fairness-gate fails if a bucket-limited
#      flood tenant can inflate an unthrottled trickle tenant's p95 past
#      3x its solo baseline or shed any of its requests, or if
#      same-digest batching misses its 1.2x goodput gate / perturbs a
#      single output byte
#   3. ASan+UBSan build (-DGRT_SANITIZE=address,undefined) + full ctest,
#      which includes the footprint soundness sweep
#      (footprint_soundness_test: static footprint ⊇ observed writes on
#      every example network and chaos schedule) — the sweep's raw
#      physical-write observers are exactly the code ASan should watch
#   4. TSan build (-DGRT_SANITIZE=thread) + the concurrency suites: the
#      serving engine (src/serve, including the shared device pool and
#      the epoll TCP front-end's multi-connection suite), the
#      observability layer (src/obs, which every hot layer now calls from
#      worker threads); any reported race fails the gate even when the
#      assertions all pass
#   5. clang-tidy over the library sources (src/, including the footprint
#      analysis in src/analysis/footprint and the plan superoptimizer in
#      src/analysis/planopt) and the trace tool (profile: .clang-tidy);
#      any warning fails the gate. Skips cleanly where clang-tidy is
#      absent.
#
# Usage: scripts/ci.sh [jobs]
#   jobs  parallel build/test jobs (default: nproc)
#
# Note: builds use the default CMake build type on purpose. Do not add
# -DCMAKE_BUILD_TYPE=Release here — GCC 12 trips a stringop-overread
# false positive under -O2 -Werror in the TEE key-derivation code.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_pass() {
  local label="$1" build_dir="$2"
  shift 2
  echo "=== ${label}: configure (${build_dir}) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${label}: ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

run_pass "pass 1/5 (normal)" build-ci
# The chaos suite asserts per-schedule determinism in-process; running the
# whole suite a second time also proves determinism across runs.
echo "=== pass 1/5: ctest (second run, determinism check) ==="
ctest --test-dir build-ci -j "${JOBS}" --output-on-failure

echo "=== pass 2/5: replay perf smoke gate ==="
cmake --build build-ci -j "${JOBS}" --target replay_serving
SMOKE_JSON="$(mktemp)"
trap 'rm -f "${SMOKE_JSON}"' EXIT
build-ci/bench/replay_serving --smoke --out "${SMOKE_JSON}"
echo "=== pass 2/5: planopt fused-replay + kernel wall perf gate (vgg16) ==="
build-ci/bench/replay_serving --perf-gate
echo "=== pass 2/5: kernel bitwise smoke gate ==="
cmake --build build-ci -j "${JOBS}" --target kernel_bench
KERNEL_JSON="$(mktemp)"
trap 'rm -f "${SMOKE_JSON}" "${KERNEL_JSON}"' EXIT
build-ci/bench/kernel_bench --smoke --out "${KERNEL_JSON}"
echo "=== pass 2/5: observability overhead gate ==="
build-ci/bench/replay_serving --obs-gate
echo "=== pass 2/5: serving front-end perf smoke gate ==="
cmake --build build-ci -j "${JOBS}" --target serving_frontend
FRONTEND_JSON="$(mktemp)"
trap 'rm -f "${SMOKE_JSON}" "${KERNEL_JSON}" "${FRONTEND_JSON}"' EXIT
build-ci/bench/serving_frontend --smoke --out "${FRONTEND_JSON}"
echo "=== pass 2/5: multi-tenant fairness + batching smoke gate ==="
FAIRNESS_JSON="$(mktemp)"
trap 'rm -f "${SMOKE_JSON}" "${KERNEL_JSON}" "${FRONTEND_JSON}" "${FAIRNESS_JSON}"' EXIT
build-ci/bench/serving_frontend --fairness-gate --out "${FAIRNESS_JSON}"

run_pass "pass 3/5 (asan+ubsan)" build-ci-san \
  -DGRT_SANITIZE=address,undefined

# TSan: build only the multi-threaded suites (the rest of the repo is
# single-threaded and already covered by passes 1 and 3). TSan does not
# fail the process exit code for races by default here, so grep the log.
echo "=== pass 4/5: tsan concurrency gate (serve + obs) ==="
cmake -B build-ci-tsan -S . -DGRT_SANITIZE=thread
cmake --build build-ci-tsan -j "${JOBS}" --target service_test pool_test \
  scheduler_test frontend_test obs_concurrency_test
TSAN_LOG="$(mktemp)"
trap 'rm -f "${SMOKE_JSON}" "${KERNEL_JSON}" "${FRONTEND_JSON}" "${TSAN_LOG}"' EXIT
build-ci-tsan/tests/serve/service_test 2>&1 | tee "${TSAN_LOG}"
build-ci-tsan/tests/serve/pool_test 2>&1 | tee -a "${TSAN_LOG}"
build-ci-tsan/tests/serve/scheduler_test 2>&1 | tee -a "${TSAN_LOG}"
build-ci-tsan/tests/serve/frontend_test 2>&1 | tee -a "${TSAN_LOG}"
build-ci-tsan/tests/obs/obs_concurrency_test 2>&1 | tee -a "${TSAN_LOG}"
if grep -E 'WARNING: ThreadSanitizer' "${TSAN_LOG}" >/dev/null; then
  echo "=== pass 4/5: ThreadSanitizer reported races — failing ===" >&2
  exit 1
fi

# clang-tidy emits warnings on stdout but exits 0 for warnings-only runs;
# treat any diagnostic line as a gate failure so new warnings can't land.
echo "=== pass 5/5: clang-tidy lint gate ==="
TIDY_LOG="$(mktemp)"
trap 'rm -f "${SMOKE_JSON}" "${KERNEL_JSON}" "${FRONTEND_JSON}" "${TSAN_LOG}" "${TIDY_LOG}"' EXIT
scripts/run_clang_tidy.sh build-ci src tools/grt_trace.cc 2>&1 | tee "${TIDY_LOG}"
if grep -E 'warning:|error:' "${TIDY_LOG}" >/dev/null; then
  echo "=== pass 5/5: clang-tidy reported diagnostics — failing ===" >&2
  exit 1
fi

echo "=== CI: all passes green ==="
