#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the library sources.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [paths...]
#   build-dir  a configured CMake build tree (default: build); the script
#              enables CMAKE_EXPORT_COMPILE_COMMANDS there if needed
#   paths      files or directories to lint (default: src)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
PATHS=("${@:-src}")

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find "${PATHS[@]}" -name '*.cc' | sort)
echo "linting ${#FILES[@]} files against $(pwd)/.clang-tidy"
clang-tidy -p "${BUILD_DIR}" --quiet "${FILES[@]}"
