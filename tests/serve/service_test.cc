// ReplayService tests: correctness of served outputs, concurrency
// (multiple workers, concurrent submitters, eviction racing in-flight
// replays), admission control (queue bound, deadlines), and lifecycle.
// This suite is the TSan target in CI (scripts/ci.sh) — the service is
// the first genuinely multi-threaded subsystem in the repo.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/serve/service.h"

namespace grt {
namespace {

constexpr SkuId kSku = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;

// Recording once per suite: every test serves the same signed MNIST
// artifact (and a renamed twin for multi-plan scenarios).
class ReplayServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new NetworkDef(BuildMnist());
    ClientDevice device(kSku, kNondetSeed);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, *net_, "OursMDS", WifiConditions(),
                              &history, 0);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    key_ = new Bytes(m->session_key);
    signed_ = new Bytes(m->signed_recording);

    // A second distinct workload identity with identical content: parse,
    // rename, re-sign. Digest differs, so it occupies its own plan slot.
    auto rec = Recording::ParseSigned(*signed_, *key_);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    rec->header.workload = "mnist-b";
    signed_b_ = new Bytes(rec->SerializeSigned(*key_));
  }

  static void TearDownTestSuite() {
    delete net_;
    delete key_;
    delete signed_;
    delete signed_b_;
    net_ = nullptr;
    key_ = nullptr;
    signed_ = nullptr;
    signed_b_ = nullptr;
  }

  void SetUp() override {
    store_ = std::make_unique<RecordingStore>(*key_);
    ASSERT_TRUE(store_->Install(*signed_).ok());
    ASSERT_TRUE(store_->Install(*signed_b_).ok());
  }

  ReplayRequest MakeRequest(const std::string& workload,
                            uint64_t input_seed) {
    ReplayRequest request;
    request.workload = workload;
    request.tensors[net_->input_tensor] = GenerateInput(*net_, input_seed);
    for (const TensorDef& t : net_->tensors) {
      if (t.kind == TensorKind::kParam) {
        request.tensors[t.name] = GenerateParams(net_->name, t, 7);
      }
    }
    request.output_tensor = net_->output_tensor;
    return request;
  }

  std::vector<float> Reference(uint64_t input_seed) {
    auto ref = RunReference(*net_, GenerateInput(*net_, input_seed), 7);
    EXPECT_TRUE(ref.ok());
    return *ref;
  }

  static NetworkDef* net_;
  static Bytes* key_;
  static Bytes* signed_;
  static Bytes* signed_b_;
  std::unique_ptr<RecordingStore> store_;
};

NetworkDef* ReplayServiceTest::net_ = nullptr;
Bytes* ReplayServiceTest::key_ = nullptr;
Bytes* ReplayServiceTest::signed_ = nullptr;
Bytes* ReplayServiceTest::signed_b_ = nullptr;

TEST_F(ReplayServiceTest, ServesCorrectOutputAndWarmsUp) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  ReplayResponse first = service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_TRUE(first.report.plan_used);
  EXPECT_FALSE(first.report.warm);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_LE(MaxAbsDiff(first.output, Reference(42)), 1e-4f);

  // Same input again: warm path, bitwise-identical answer, most image
  // pages skipped clean.
  ReplayResponse second = service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_TRUE(second.report.warm);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_GT(second.report.pages_skipped_clean, 0u);
  EXPECT_LT(second.report.mem_bytes_applied, first.report.mem_bytes_applied);
  ASSERT_EQ(second.output.size(), first.output.size());
  EXPECT_EQ(std::memcmp(second.output.data(), first.output.data(),
                        first.output.size() * sizeof(float)),
            0);

  // New input on the warm plan still answers correctly.
  ReplayResponse third = service.Submit(MakeRequest("mnist", 43));
  ASSERT_TRUE(third.status.ok()) << third.status.ToString();
  EXPECT_TRUE(third.report.warm);
  EXPECT_LE(MaxAbsDiff(third.output, Reference(43)), 1e-4f);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 2u);
  EXPECT_EQ(stats.warm_replays, 2u);
  EXPECT_GT(stats.replay_delay_p50, 0);
  EXPECT_GE(stats.replay_delay_p95, stats.replay_delay_p50);
  EXPECT_GE(stats.dirty_page_ratio(), 0.0);
  EXPECT_LE(stats.dirty_page_ratio(), 1.0);
}

TEST_F(ReplayServiceTest, ConcurrentSubmittersOnMultipleWorkers) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<float> want42 = Reference(42);
  std::vector<float> want43 = Reference(43);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        uint64_t seed = (c + i) % 2 == 0 ? 42 : 43;
        ReplayResponse response = service.Submit(MakeRequest("mnist", seed));
        const std::vector<float>& want = seed == 42 ? want42 : want43;
        if (!response.status.ok() ||
            MaxAbsDiff(response.output, want) > 1e-4f) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, static_cast<size_t>(kClients * kPerClient));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ReplayServiceTest, EvictionDuringConcurrentRepliesIsSafe) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  config.max_plans = 1;  // every alternation evicts the other plan
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  std::vector<std::future<ReplayResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(service.SubmitAsync(
        MakeRequest(i % 2 == 0 ? "mnist" : "mnist-b", 42)));
  }
  std::vector<float> want = Reference(42);
  for (auto& f : futures) {
    ReplayResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_LE(MaxAbsDiff(response.output, want), 1e-4f);
  }
  ServeStats stats = service.Stats();
  EXPECT_GT(stats.plan_evictions, 0u);
  EXPECT_LE(stats.plans_cached, 1u);
  EXPECT_EQ(stats.completed, 10u);
}

TEST_F(ReplayServiceTest, PlansCachedStaysConsistentAcrossEvictions) {
  // Regression: stats_.plans_cached was refreshed only on the insert
  // (miss) path, so a reader between an eviction and the next insert saw
  // a stale residency count. Every cache mutation now refreshes it, and
  // the published gauge agrees with Stats() exactly.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_plans = 1;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  ReplayResponse first = service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(service.Stats().plans_cached, 1u);

  // mnist-b evicts mnist (max_plans = 1): residency is exactly 1, both
  // through Stats() and through the metrics gauge.
  ReplayResponse second = service.Submit(MakeRequest("mnist-b", 42));
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.plan_evictions, 1u);
  EXPECT_EQ(stats.plans_cached, 1u);
  obs::MetricsSnapshot snap = service.SnapshotMetrics();
  EXPECT_EQ(snap.gauge("serve.plans_cached"), 1);
}

TEST_F(ReplayServiceTest, DeadlineExpiresWhileQueued) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  ReplayService service(store_.get(), config);

  // Enqueue before Start: the deadline clock runs while nothing serves.
  ReplayRequest doomed = MakeRequest("mnist", 42);
  doomed.deadline_ms = 0;
  std::future<ReplayResponse> doomed_future =
      service.SubmitAsync(std::move(doomed));
  ReplayRequest patient = MakeRequest("mnist", 42);
  patient.deadline_ms = 60'000;
  std::future<ReplayResponse> patient_future =
      service.SubmitAsync(std::move(patient));

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(service.Start().ok());

  ReplayResponse expired = doomed_future.get();
  EXPECT_EQ(expired.status.code(), StatusCode::kTimeout)
      << expired.status.ToString();
  EXPECT_TRUE(expired.output.empty());

  ReplayResponse served = patient_future.get();
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ReplayServiceTest, ExpiredAtDequeueIsCountedSeparately) {
  // A lone doomed request sits at the queue head with nothing to trigger
  // an admission sweep, so the worker that pops it is the first to notice
  // the miss: expired_at_dequeue, not expired_in_queue.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  ReplayService service(store_.get(), config);

  ReplayRequest doomed = MakeRequest("mnist", 42);
  doomed.deadline_ms = 0;
  std::future<ReplayResponse> future = service.SubmitAsync(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(future.get().status.code(), StatusCode::kTimeout);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.expired_at_dequeue, 1u);
  EXPECT_EQ(stats.expired_in_queue, 0u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(ReplayServiceTest, ExpiredRequestIsSweptAtAdmission) {
  // Before the sweep existed, a deadline was only checked when a worker
  // finally dequeued the request — an expired entry occupied queue
  // capacity the whole time and its client waited for a worker to notice.
  // Now the next submission sweeps it out, before the service even starts.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  ReplayService service(store_.get(), config);

  ReplayRequest doomed = MakeRequest("mnist", 42);
  doomed.deadline_ms = 0;
  std::future<ReplayResponse> doomed_future =
      service.SubmitAsync(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  ReplayRequest patient = MakeRequest("mnist", 42);
  patient.deadline_ms = 60'000;
  std::future<ReplayResponse> patient_future =
      service.SubmitAsync(std::move(patient));

  // The admission sweep already failed the doomed request — its future is
  // ready with no worker ever having run.
  EXPECT_EQ(doomed_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(doomed_future.get().status.code(), StatusCode::kTimeout);
  {
    ServeStats stats = service.Stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.expired_in_queue, 1u);
    EXPECT_EQ(stats.expired_at_dequeue, 0u);
    EXPECT_EQ(stats.queue_depth, 1u);  // only the patient request remains
  }

  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(patient_future.get().status.ok());
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.expired, 1u);
}

TEST_F(ReplayServiceTest, StatsPercentilesComeFromBoundedHistogram) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    ReplayResponse response = service.Submit(MakeRequest("mnist", 42 + i));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, static_cast<size_t>(kRequests));
  // Ordered, positive, and within the observed delay range (nearest-rank
  // on a log-linear histogram clamps to [min, max]).
  EXPECT_GT(stats.replay_delay_p50, 0);
  EXPECT_GE(stats.replay_delay_p95, stats.replay_delay_p50);
  EXPECT_GE(stats.replay_delay_p99, stats.replay_delay_p95);

  // The histogram view in SnapshotMetrics agrees with Stats().
  obs::MetricsSnapshot snap = service.SnapshotMetrics();
  const obs::HistogramSnapshot* delays = snap.histogram("serve.replay_delay_ns");
  ASSERT_NE(delays, nullptr);
  EXPECT_EQ(delays->count, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(static_cast<Duration>(delays->Percentile(50)),
            stats.replay_delay_p50);
  EXPECT_EQ(static_cast<Duration>(delays->Percentile(99)),
            stats.replay_delay_p99);
}

TEST_F(ReplayServiceTest, SnapshotMetricsMatchesGroundTruth) {
  // SnapshotMetrics works with the obs gate off: the serve.* overlay comes
  // from the service's own always-on accounting.
  obs::SetEnabled(false);
  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  for (int i = 0; i < 6; ++i) {
    ReplayResponse response = service.Submit(
        MakeRequest(i % 2 == 0 ? "mnist" : "mnist-b", 42));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }
  ReplayRequest bad;
  bad.workload = "no-such-workload";
  EXPECT_FALSE(service.Submit(std::move(bad)).status.ok());

  ServeStats stats = service.Stats();
  obs::MetricsSnapshot snap = service.SnapshotMetrics();
  EXPECT_EQ(snap.counter("serve.submitted"), stats.submitted);
  EXPECT_EQ(snap.counter("serve.completed"), stats.completed);
  EXPECT_EQ(snap.counter("serve.failed"), stats.failed);
  EXPECT_EQ(snap.counter("serve.rejected"), stats.rejected);
  EXPECT_EQ(snap.counter("serve.expired"), stats.expired);
  EXPECT_EQ(snap.counter("serve.plan_hits"), stats.plan_hits);
  EXPECT_EQ(snap.counter("serve.plan_misses"), stats.plan_misses);
  EXPECT_EQ(snap.counter("serve.warm_replays"), stats.warm_replays);
  EXPECT_EQ(snap.counter("serve.pages_applied"), stats.pages_applied);
  EXPECT_EQ(snap.counter("serve.mem_bytes_applied"), stats.mem_bytes_applied);
  EXPECT_EQ(snap.gauge("serve.queue_depth"), 0);
  EXPECT_EQ(snap.gauge("serve.plans_cached"),
            static_cast<int64_t>(stats.plans_cached));
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.failed, 1u);

  // Both histograms see every dequeued request — the 6 completions and
  // the failed lookup (it still waited in the queue and consumed service
  // time).
  const obs::HistogramSnapshot* waits = snap.histogram("serve.queue_wait_ns");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->count, 7u);
  const obs::HistogramSnapshot* svc = snap.histogram("serve.service_ns");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->count, 7u);
  EXPECT_GT(svc->max, 0u);
}

TEST_F(ReplayServiceTest, QueueBoundRejectsExcess) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_queue = 1;
  ReplayService service(store_.get(), config);

  // Not started: the first submit occupies the whole queue.
  auto queued = service.SubmitAsync(MakeRequest("mnist", 42));
  auto rejected1 = service.SubmitAsync(MakeRequest("mnist", 42));
  auto rejected2 = service.SubmitAsync(MakeRequest("mnist", 43));
  EXPECT_EQ(rejected1.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected2.get().status.code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(queued.get().status.ok());
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.submitted, 3u);
}

TEST_F(ReplayServiceTest, StopFailsPendingAndRefusesNewWork) {
  ServeConfig config;
  config.sku = kSku;
  ReplayService service(store_.get(), config);

  auto pending = service.SubmitAsync(MakeRequest("mnist", 42));
  service.Stop();  // never started: queued work must still resolve
  EXPECT_EQ(pending.get().status.code(), StatusCode::kFailedPrecondition);

  auto after = service.SubmitAsync(MakeRequest("mnist", 42));
  EXPECT_EQ(after.get().status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(service.Start().ok());
}

TEST_F(ReplayServiceTest, SyncSubmitRequiresRunningWorkers) {
  ServeConfig config;
  config.sku = kSku;
  ReplayService service(store_.get(), config);
  ReplayResponse response = service.Submit(MakeRequest("mnist", 42));
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplayServiceTest, PreloadCompilesAheadOfTraffic) {
  ServeConfig config;
  config.sku = kSku;
  ReplayService service(store_.get(), config);

  auto digest = service.Preload("mnist");
  ASSERT_TRUE(digest.ok()) << digest.status().ToString();
  EXPECT_TRUE(service.Preload("no-such-workload").status().code() ==
              StatusCode::kNotFound);
  // Preloading again is a cache hit, same digest.
  auto again = service.Preload("mnist");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*digest, *again);

  ASSERT_TRUE(service.Start().ok());
  ReplayResponse response = service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.plan_cache_hit);
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 2u);  // second Preload + the served request
}

TEST_F(ReplayServiceTest, PinnedDigestVerifiedOnTheWorkerPath) {
  ServeConfig config;
  config.sku = kSku;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  auto digest = service.Preload("mnist");
  ASSERT_TRUE(digest.ok());

  ReplayRequest pinned = MakeRequest("mnist", 42);
  pinned.pinned_digest = *digest;
  ReplayResponse ok = service.Submit(std::move(pinned));
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.digest, *digest);

  ReplayRequest mispinned = MakeRequest("mnist", 42);
  mispinned.pinned_digest = *digest;
  mispinned.pinned_digest[0] ^= 0xff;
  ReplayResponse refused = service.Submit(std::move(mispinned));
  EXPECT_EQ(refused.status.code(), StatusCode::kDigestMismatch);
  // The request resolved before the mismatch, so the true digest is
  // echoed — the client learns the correct pin from the refusal.
  EXPECT_EQ(refused.digest, *digest);
  EXPECT_TRUE(refused.output.empty());
}

TEST_F(ReplayServiceTest, UnknownWorkloadFailsTheRequestOnly) {
  ServeConfig config;
  config.sku = kSku;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  ReplayRequest bad;
  bad.workload = "no-such-workload";
  ReplayResponse response = service.Submit(std::move(bad));
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);

  // The service is still healthy.
  ReplayResponse good = service.Submit(MakeRequest("mnist", 42));
  EXPECT_TRUE(good.status.ok());
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ReplayServiceTest, FusedPlansServeBitwiseIdenticallyFromSharedPool) {
  // Superoptimized warm replays under concurrency: two workers share the
  // device pool and the fused plan; every warm answer must be bitwise
  // the answer of the cold (full-schedule) replay, and the fused path
  // must actually run (not silently fall back to the interpreted plan).
  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  ASSERT_TRUE(config.fuse_plans);  // fusion is the default serving mode
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  ReplayResponse cold = service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_FALSE(cold.report.warm_program_used);
  ASSERT_FALSE(cold.output.empty());

  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        ReplayResponse r = service.Submit(MakeRequest("mnist", 42));
        if (!r.status.ok()) {
          ++failures;
          continue;
        }
        if (r.output.size() != cold.output.size() ||
            std::memcmp(r.output.data(), cold.output.data(),
                        cold.output.size() * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, static_cast<size_t>(kClients * kPerClient) + 1);
  EXPECT_EQ(stats.plans_fused, 1u);
  EXPECT_EQ(stats.fuse_declined, 0u);
  EXPECT_GT(stats.fused_replays, 0u);

  // Cross-engine: the un-fused plan service answers the same bits.
  ServeConfig plain;
  plain.sku = kSku;
  plain.fuse_plans = false;
  ReplayService plain_service(store_.get(), plain);
  ASSERT_TRUE(plain_service.Start().ok());
  ReplayResponse via_plain = plain_service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(via_plain.status.ok());
  ASSERT_EQ(via_plain.output.size(), cold.output.size());
  EXPECT_EQ(std::memcmp(via_plain.output.data(), cold.output.data(),
                        cold.output.size() * sizeof(float)),
            0);
  EXPECT_EQ(plain_service.Stats().plans_fused, 0u);
}

TEST_F(ReplayServiceTest, InterpreterModeServesIdenticalAnswers) {
  // Baseline mode for benches: use_plan off serves through the
  // interpreter; answers agree with the plan engine bit for bit.
  ServeConfig plan_config;
  plan_config.sku = kSku;
  ReplayService plan_service(store_.get(), plan_config);
  ASSERT_TRUE(plan_service.Start().ok());
  ReplayResponse via_plan = plan_service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(via_plan.status.ok());

  ServeConfig interp_config;
  interp_config.sku = kSku;
  interp_config.replay.use_plan = false;
  ReplayService interp_service(store_.get(), interp_config);
  ASSERT_TRUE(interp_service.Start().ok());
  ReplayResponse via_interp = interp_service.Submit(MakeRequest("mnist", 42));
  ASSERT_TRUE(via_interp.status.ok());
  EXPECT_FALSE(via_interp.report.plan_used);

  ASSERT_EQ(via_plan.output.size(), via_interp.output.size());
  EXPECT_EQ(std::memcmp(via_plan.output.data(), via_interp.output.data(),
                        via_plan.output.size() * sizeof(float)),
            0);
  EXPECT_GE(via_interp.report.mem_bytes_applied,
            via_plan.report.mem_bytes_applied);
}

}  // namespace
}  // namespace grt
