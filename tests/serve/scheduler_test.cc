// Multi-tenant scheduler tests: token-bucket refill at rate boundaries
// (driven through explicit time points — no sleeps in the bucket math),
// EDF dispatch order including the no-deadline starvation regression and
// the interaction with the pop-side expiry sweep, same-digest batching
// (bitwise fidelity, dissolution when a member expires in-queue), and
// per-tenant admission/accounting through the full service.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/serve/scheduler.h"
#include "src/serve/service.h"

namespace grt {
namespace {

constexpr SkuId kSku = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;

using SteadyPoint = std::chrono::steady_clock::time_point;

SteadyPoint T0() { return SteadyPoint{}; }

SteadyPoint AfterMs(int64_t ms) {
  return T0() + std::chrono::milliseconds(ms);
}

// --- TokenBucket unit tests: pure time-point arithmetic. ---

TEST(TokenBucket, StartsFullAndDrainsToEmpty) {
  TokenBucket bucket(TenantLimit{10.0, 5.0}, T0());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(T0())) << "token " << i;
  }
  EXPECT_FALSE(bucket.TryAcquire(T0()));
}

TEST(TokenBucket, RefillsExactlyAtRateBoundary) {
  // rate 10/s: one token every 100 ms. Drain the bucket, then probe just
  // below and exactly at the refill boundary.
  TokenBucket bucket(TenantLimit{10.0, 5.0}, T0());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bucket.TryAcquire(T0()));
  }
  // 50 ms: half a token — not admittable.
  EXPECT_FALSE(bucket.TryAcquire(AfterMs(50)));
  // 100 ms total: exactly one token.
  EXPECT_GE(bucket.TokensAt(AfterMs(100)), 1.0);
  EXPECT_TRUE(bucket.TryAcquire(AfterMs(100)));
  // The token was spent; the next one needs another full period.
  EXPECT_FALSE(bucket.TryAcquire(AfterMs(150)));
  EXPECT_TRUE(bucket.TryAcquire(AfterMs(200)));
}

TEST(TokenBucket, FailedProbesDoNotStealRefillTime) {
  // A rejected TryAcquire still advances the refill clock; the partial
  // token accumulated so far must not be lost to the failed probe.
  TokenBucket bucket(TenantLimit{10.0, 1.0}, T0());
  ASSERT_TRUE(bucket.TryAcquire(T0()));
  EXPECT_FALSE(bucket.TryAcquire(AfterMs(30)));
  EXPECT_FALSE(bucket.TryAcquire(AfterMs(60)));
  EXPECT_FALSE(bucket.TryAcquire(AfterMs(90)));
  // 110 ms, not the exact 100 ms boundary: the refill accumulated over
  // four partial windows, and double rounding may leave 0.999…9 tokens
  // at the precise boundary. (RefillsExactlyAtRateBoundary covers the
  // single-window exact case.)
  EXPECT_TRUE(bucket.TryAcquire(AfterMs(110)));
}

TEST(TokenBucket, IdleNeverExceedsBurstCapacity) {
  TokenBucket bucket(TenantLimit{100.0, 3.0}, T0());
  // An hour idle refills to the cap, not to rate * elapsed.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(AfterMs(3'600'000)), 3.0);
  SteadyPoint late = AfterMs(3'600'000);
  EXPECT_TRUE(bucket.TryAcquire(late));
  EXPECT_TRUE(bucket.TryAcquire(late));
  EXPECT_TRUE(bucket.TryAcquire(late));
  EXPECT_FALSE(bucket.TryAcquire(late));
}

TEST(TokenBucket, DefaultBurstIsOneSecondNeverBelowOne) {
  // burst unset: capacity = max(rate, 1). A 0.5/s tenant still gets a
  // bucket that can hold (and therefore ever admit) one request.
  TokenBucket slow(TenantLimit{0.5, 0.0}, T0());
  EXPECT_DOUBLE_EQ(slow.capacity(), 1.0);
  EXPECT_TRUE(slow.TryAcquire(T0()));
  EXPECT_FALSE(slow.TryAcquire(AfterMs(1000)));
  EXPECT_TRUE(slow.TryAcquire(AfterMs(2000)));

  TokenBucket fast(TenantLimit{40.0, 0.0}, T0());
  EXPECT_DOUBLE_EQ(fast.capacity(), 40.0);
}

TEST(TokenBucket, UnlimitedAlwaysAdmits) {
  TokenBucket bucket(TenantLimit{}, T0());
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(T0()));
  }
}

TEST(TokenBucket, BackwardsClockIsNoElapsedTime) {
  TokenBucket bucket(TenantLimit{10.0, 1.0}, AfterMs(1000));
  ASSERT_TRUE(bucket.TryAcquire(AfterMs(1000)));
  // A now before the last refill point must not mint tokens (or crash on
  // a negative duration).
  EXPECT_FALSE(bucket.TryAcquire(AfterMs(500)));
  EXPECT_TRUE(bucket.TryAcquire(AfterMs(1100)));
}

// --- Service-level scheduler tests (same recording fixture as
// service_test). ---

class SchedulerServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new NetworkDef(BuildMnist());
    ClientDevice device(kSku, kNondetSeed);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, *net_, "OursMDS", WifiConditions(),
                              &history, 0);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    key_ = new Bytes(m->session_key);
    signed_ = new Bytes(m->signed_recording);
    auto rec = Recording::ParseSigned(*signed_, *key_);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    rec->header.workload = "mnist-b";
    signed_b_ = new Bytes(rec->SerializeSigned(*key_));
  }

  static void TearDownTestSuite() {
    delete net_;
    delete key_;
    delete signed_;
    delete signed_b_;
    net_ = nullptr;
    key_ = nullptr;
    signed_ = nullptr;
    signed_b_ = nullptr;
  }

  void SetUp() override {
    store_ = std::make_unique<RecordingStore>(*key_);
    ASSERT_TRUE(store_->Install(*signed_).ok());
    ASSERT_TRUE(store_->Install(*signed_b_).ok());
  }

  ReplayRequest MakeRequest(const std::string& workload, uint64_t input_seed,
                            const std::string& tenant = "") {
    ReplayRequest request;
    request.workload = workload;
    request.tenant = tenant;
    request.tensors[net_->input_tensor] = GenerateInput(*net_, input_seed);
    for (const TensorDef& t : net_->tensors) {
      if (t.kind == TensorKind::kParam) {
        request.tensors[t.name] = GenerateParams(net_->name, t, 7);
      }
    }
    request.output_tensor = net_->output_tensor;
    return request;
  }

  static NetworkDef* net_;
  static Bytes* key_;
  static Bytes* signed_;
  static Bytes* signed_b_;
  std::unique_ptr<RecordingStore> store_;
};

NetworkDef* SchedulerServiceTest::net_ = nullptr;
Bytes* SchedulerServiceTest::key_ = nullptr;
Bytes* SchedulerServiceTest::signed_ = nullptr;
Bytes* SchedulerServiceTest::signed_b_ = nullptr;

// Tracks the order in which requests complete; keyed by caller tags.
struct CompletionOrder {
  std::mutex mu;
  std::vector<int> order;
  void Push(int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  }
};

TEST_F(SchedulerServiceTest, EdfPopsEarliestDeadlineFirst) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_batch = 1;  // isolate EDF order from batching
  ReplayService service(store_.get(), config);

  // Queue before Start so the worker sees all three at its first pop.
  // Admission order deliberately disagrees with deadline order.
  auto order = std::make_shared<CompletionOrder>();
  std::vector<std::future<ReplayResponse>> futures;
  struct Spec {
    int tag;
    int64_t deadline_ms;
  };
  for (const Spec& spec :
       {Spec{0, 5000}, Spec{1, 2000}, Spec{2, 8000}}) {
    ReplayRequest request = MakeRequest("mnist", 42);
    request.deadline_ms = spec.deadline_ms;
    auto promise = std::make_shared<std::promise<ReplayResponse>>();
    futures.push_back(promise->get_future());
    int tag = spec.tag;
    service.SubmitCallback(std::move(request),
                           [order, promise, tag](ReplayResponse response) {
                             order->Push(tag);
                             promise->set_value(std::move(response));
                           });
  }
  ASSERT_TRUE(service.Start().ok());
  for (auto& f : futures) {
    ReplayResponse response = f.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  service.Stop();
  EXPECT_EQ(order->order, (std::vector<int>{1, 0, 2}));
}

TEST_F(SchedulerServiceTest, NoDeadlineRequestsAreNotStarved) {
  // The satellite regression: a deadline-free request queued behind a
  // stream of deadlined ones must get a virtual deadline (enqueued +
  // default_deadline_ms) and pop ahead of later real deadlines — and the
  // virtual deadline passing must NOT expire it.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_batch = 1;
  config.default_deadline_ms = 50;
  ReplayService service(store_.get(), config);

  auto order = std::make_shared<CompletionOrder>();
  std::vector<std::future<ReplayResponse>> futures;
  auto submit = [&](int tag, int64_t deadline_ms) {
    ReplayRequest request = MakeRequest("mnist", 42);
    request.deadline_ms = deadline_ms;
    auto promise = std::make_shared<std::promise<ReplayResponse>>();
    futures.push_back(promise->get_future());
    service.SubmitCallback(std::move(request),
                           [order, promise, tag](ReplayResponse response) {
                             order->Push(tag);
                             promise->set_value(std::move(response));
                           });
  };
  submit(0, 5000);  // deadlined, far future
  submit(1, -1);    // deadline-free: virtual deadline ~now+50ms
  submit(2, 5000);
  submit(3, 5000);
  // Let the virtual deadline pass while everything still queues: if the
  // virtual deadline leaked into the expiry sweeps, request 1 would die
  // here instead of serving.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(service.Start().ok());
  for (auto& f : futures) {
    ReplayResponse response = f.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  service.Stop();
  ASSERT_EQ(order->order.size(), 4u);
  // The deadline-free request outranks every 5-second deadline.
  EXPECT_EQ(order->order[0], 1);
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST_F(SchedulerServiceTest, EdfVirtualWinnerStillTriggersPopSweep) {
  // Adversarial EDF-vs-sweep interaction: the EDF winner is a virtual
  // deadline (never expires) while a *real*-deadlined item is already
  // dead in the queue. The pop must take the virtual winner and the
  // pop-side sweep must still clear the dead item immediately.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_batch = 1;
  config.default_deadline_ms = 50;
  ReplayService service(store_.get(), config);

  ReplayRequest free_request = MakeRequest("mnist", 1);
  free_request.deadline_ms = -1;
  auto free_future = service.SubmitAsync(std::move(free_request));

  ReplayRequest doomed = MakeRequest("mnist", 2);
  doomed.deadline_ms = 100;
  auto doomed_future = service.SubmitAsync(std::move(doomed));

  // Both queued; the doomed deadline (100 ms) passes, the virtual one
  // (50 ms) also passes — only the real one may expire.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(service.Start().ok());

  ReplayResponse free_response = free_future.get();
  EXPECT_TRUE(free_response.status.ok()) << free_response.status.ToString();
  ReplayResponse doomed_response = doomed_future.get();
  EXPECT_EQ(doomed_response.status.code(), StatusCode::kTimeout);
  service.Stop();

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.expired, 1u);
  // The dead item was swept out of the queue by the pop-side sweep (the
  // EDF winner was the virtual-deadline item, so the doomed one was
  // never popped).
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.expired_at_dequeue, 0u);
}

TEST_F(SchedulerServiceTest, BatchServesBitwiseIdenticalOutputs) {
  // Same-digest batching must be invisible in the outputs: members stage
  // their own tensors before their own replay, so a batched run and an
  // unbatched run produce byte-identical floats.
  std::vector<std::vector<float>> solo(3);
  {
    ServeConfig config;
    config.sku = kSku;
    config.workers = 1;
    config.max_batch = 1;
    ReplayService service(store_.get(), config);
    ASSERT_TRUE(service.Start().ok());
    for (uint64_t seed = 0; seed < 3; ++seed) {
      ReplayResponse response =
          service.Submit(MakeRequest("mnist", 100 + seed));
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      solo[seed] = std::move(response.output);
    }
    service.Stop();
  }

  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_batch = 8;
  ReplayService service(store_.get(), config);
  std::vector<std::future<ReplayResponse>> futures;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    futures.push_back(service.SubmitAsync(MakeRequest("mnist", 100 + seed)));
  }
  ASSERT_TRUE(service.Start().ok());
  for (uint64_t seed = 0; seed < 3; ++seed) {
    ReplayResponse response = futures[seed].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.batch_size, 3u);
    ASSERT_EQ(response.output.size(), solo[seed].size());
    EXPECT_EQ(std::memcmp(response.output.data(), solo[seed].data(),
                          solo[seed].size() * sizeof(float)),
              0)
        << "seed " << seed;
  }
  service.Stop();
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 2u);
}

TEST_F(SchedulerServiceTest, BatchDissolvesExpiredMemberAndServesRest) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.max_batch = 8;
  ReplayService service(store_.get(), config);

  // Three same-workload requests; the middle one's deadline passes while
  // everything is still queued. The batch pops all three (the expired
  // one's 20 ms deadline is the EDF minimum), dissolves the dead member
  // with a per-member timeout, and serves the other two.
  auto live_a = service.SubmitAsync(MakeRequest("mnist", 5));
  ReplayRequest doomed = MakeRequest("mnist", 6);
  doomed.deadline_ms = 20;
  auto doomed_future = service.SubmitAsync(std::move(doomed));
  auto live_b = service.SubmitAsync(MakeRequest("mnist", 7));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(service.Start().ok());

  ReplayResponse doomed_response = doomed_future.get();
  EXPECT_EQ(doomed_response.status.code(), StatusCode::kTimeout);
  ReplayResponse a = live_a.get();
  ReplayResponse b = live_b.get();
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  // The survivors replayed as a 2-member batch.
  EXPECT_EQ(a.batch_size, 2u);
  EXPECT_EQ(b.batch_size, 2u);
  service.Stop();

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.expired_at_dequeue, 1u);
}

TEST_F(SchedulerServiceTest, TenantBucketThrottlesAtTheDoor) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  // Default tenant: 2-token burst, slow refill — the third back-to-back
  // submit must throttle deterministically.
  config.default_tenant_limit = TenantLimit{0.1, 2.0};
  ReplayService service(store_.get(), config);

  auto first = service.SubmitAsync(MakeRequest("mnist", 1));
  auto second = service.SubmitAsync(MakeRequest("mnist", 2));
  auto third = service.SubmitAsync(MakeRequest("mnist", 3));
  ReplayResponse throttled = third.get();  // rejected inline, pre-Start
  EXPECT_EQ(throttled.status.code(), StatusCode::kTenantThrottled);

  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(first.get().status.ok());
  EXPECT_TRUE(second.get().status.ok());
  service.Stop();

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.throttled, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  const TenantServeStats& t = stats.tenants.at("");
  EXPECT_EQ(t.submitted, 3u);
  EXPECT_EQ(t.completed, 2u);
  EXPECT_EQ(t.throttled, 1u);
}

TEST_F(SchedulerServiceTest, TenantLimitsAreIsolated) {
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  // "capped" gets one token and a glacial refill; everyone else is
  // unlimited. capped's overflow must not cost "open" anything.
  config.tenant_limits["capped"] = TenantLimit{0.1, 1.0};
  ReplayService service(store_.get(), config);

  auto capped_ok = service.SubmitAsync(MakeRequest("mnist", 1, "capped"));
  auto capped_over = service.SubmitAsync(MakeRequest("mnist", 2, "capped"));
  EXPECT_EQ(capped_over.get().status.code(), StatusCode::kTenantThrottled);

  std::vector<std::future<ReplayResponse>> open;
  for (uint64_t i = 0; i < 8; ++i) {
    open.push_back(service.SubmitAsync(MakeRequest("mnist", 10 + i, "open")));
  }
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(capped_ok.get().status.ok());
  for (auto& f : open) {
    EXPECT_TRUE(f.get().status.ok());
  }
  service.Stop();

  ServeStats stats = service.Stats();
  const TenantServeStats& capped = stats.tenants.at("capped");
  EXPECT_EQ(capped.submitted, 2u);
  EXPECT_EQ(capped.completed, 1u);
  EXPECT_EQ(capped.throttled, 1u);
  const TenantServeStats& open_t = stats.tenants.at("open");
  EXPECT_EQ(open_t.submitted, 8u);
  EXPECT_EQ(open_t.completed, 8u);
  EXPECT_EQ(open_t.throttled, 0u);
  // Per-tenant metrics publish under stable keys.
  obs::MetricsSnapshot snap = service.SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("serve.tenant.capped.throttled"), 1u);
  EXPECT_EQ(snap.counters.at("serve.tenant.open.completed"), 8u);
}

}  // namespace
}  // namespace grt
