// Stream-robustness suite for the serving front-end (satellite: byte
// dribble, slow-loris, bounded buffers, write backpressure).
//
// These tests attack the *transport* behavior of the epoll loop: frames
// arriving one byte at a time, connections that never finish a header,
// peers that stop reading while the server has megabytes of responses
// queued. The invariants are always the same — bounded memory, typed
// errors, and no effect on well-behaved connections.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "tests/serve/frontend_test_util.h"

namespace grt {
namespace {

using ::std::chrono::milliseconds;

class FrontendStreamTest : public FrontendFixture {};

// A valid request dribbled in 1..7-byte chunks must decode and execute
// exactly as a single-send request does.
TEST_F(FrontendStreamTest, ByteDribbleEveryChunkSize) {
  Boot();
  ReplayClient staging;
  ASSERT_TRUE(staging.Connect("127.0.0.1", port()).ok());
  auto baseline = staging.Call(1, MakeWireRequest(3));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->status, WireStatus::kOk);
  ASSERT_FALSE(baseline->output.empty());

  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    ReplayClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
    Frame frame;
    frame.type = WireFrameType::kRequest;
    frame.correlation_id = 100 + chunk;
    // Params are already resident from the staging call, so the dribbled
    // request stays small (~3 KB) and the dribble finishes fast.
    frame.payload =
        EncodeWireRequest(MakeWireRequest(3, /*with_params=*/false));
    Bytes wire = EncodeFrame(frame);
    for (size_t off = 0; off < wire.size(); off += chunk) {
      size_t len = std::min(chunk, wire.size() - off);
      Bytes piece(wire.begin() + off, wire.begin() + off + len);
      ASSERT_TRUE(client.SendBytes(piece).ok());
    }
    auto response = client.Recv(100 + chunk);
    ASSERT_TRUE(response.ok())
        << "chunk=" << chunk << ": " << response.status().ToString();
    EXPECT_EQ(response->status, WireStatus::kOk) << "chunk=" << chunk;
    EXPECT_EQ(response->output, baseline->output) << "chunk=" << chunk;
  }
}

// Connections that park mid-header forever must not starve a healthy
// client: the loop is event-driven, so a stalled read costs nothing.
TEST_F(FrontendStreamTest, SlowLorisConnectionsDoNotStarveOthers) {
  Boot();
  std::vector<ReplayClient> loris(6);
  for (size_t i = 0; i < loris.size(); ++i) {
    ASSERT_TRUE(loris[i].Connect("127.0.0.1", port()).ok());
    // A few header bytes (valid magic prefix), then silence.
    Bytes partial{0x53, 0x54, 0x52, 0x47, 0x01};
    ASSERT_TRUE(loris[i].SendBytes(partial).ok());
  }
  ASSERT_TRUE(WaitForStats(
      [&](const FrontendStats& s) { return s.accepted >= loris.size(); }));

  ReplayClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", port()).ok());
  auto response = good.Call(1, MakeWireRequest(0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, WireStatus::kOk);

  // The stalled connections are still merely parked, not errored.
  FrontendStats stats = frontend_->Stats();
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.truncated_streams, 0u);
}

// With a configured frame ceiling, an over-limit declaration is refused
// before any payload is buffered, and the same listener keeps serving
// in-limit requests afterwards.
TEST_F(FrontendStreamTest, BoundedBuffersRefuseOverLimitFramesAndRecover) {
  FrontendConfig fconfig;
  fconfig.max_frame_payload = 1u << 20;  // params request (~215 KB) fits
  Boot({}, fconfig);

  ReplayClient abuser;
  ASSERT_TRUE(abuser.Connect("127.0.0.1", port()).ok());
  Frame frame;
  frame.type = WireFrameType::kRequest;
  frame.correlation_id = 9;
  frame.payload.resize(24, 0xEE);
  Bytes wire = EncodeFrame(frame);
  // Rewrite the declared length to 2 MB but send only the header: the
  // refusal must come from the declaration alone.
  uint32_t declared = 2u << 20;
  std::memcpy(wire.data() + 8, &declared, sizeof(declared));
  wire.resize(kFrameHeaderBytes);
  ASSERT_TRUE(abuser.SendBytes(wire).ok());

  auto reply = abuser.RecvAny();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->first, 0u);
  EXPECT_EQ(reply->second.status, WireStatus::kBadRequest);
  EXPECT_NE(reply->second.message.find("oversized-frame"), std::string::npos)
      << reply->second.message;
  EXPECT_FALSE(abuser.RecvAny().ok());  // then the connection dies

  ASSERT_TRUE(WaitForStats(
      [](const FrontendStats& s) { return s.oversized_disconnects == 1; }));

  // An in-limit full request (params included) on a fresh connection
  // still round-trips bitwise.
  ReplayClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", port()).ok());
  auto response = good.Call(1, MakeWireRequest(2));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_FALSE(response->output.empty());
}

// A reader that stops consuming makes the server queue responses; once
// the outbuf crosses the high watermark the loop must stop reading from
// that connection (paused_reads), and resume once the client drains.
TEST_F(FrontendStreamTest, StalledReaderPausesReadsThenResumes) {
  constexpr int kRequests = 8;
  FrontendConfig fconfig;
  fconfig.so_sndbuf = 32 * 1024;           // keep kernel buffering small
  fconfig.write_high_watermark = 64 * 1024;
  fconfig.write_hard_cap = 32u << 20;      // never trip the hard cap here
  Boot({}, fconfig);

  ReplayClient staging;
  ASSERT_TRUE(staging.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(staging.Call(1, MakeWireRequest(0)).ok());
  const std::string big = BigTensorName();

  ReplayClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", port(), /*recv_timeout_ms=*/5000,
                     /*rcvbuf=*/4 * 1024)
          .ok());
  for (int i = 0; i < kRequests; ++i) {
    WireRequest request = MakeWireRequest(0, /*with_params=*/false);
    request.output_tensor = big;  // ~200 KB response each
    ASSERT_TRUE(client.Send(1000 + i, request).ok());
  }

  // Wait for every completion to land in the outbuf; with ~1.6 MB queued
  // against a 64 KB watermark the loop must have paused at least once.
  ASSERT_TRUE(WaitForStats([](const FrontendStats& s) {
    return s.responses_ok >= kRequests + 1;  // +1 for the staging call
  }));
  FrontendStats mid = frontend_->Stats();
  EXPECT_GE(mid.paused_reads, 1u);
  EXPECT_EQ(mid.stalled_disconnects, 0u);

  // Drain: every response arrives intact despite the pause.
  size_t expected_floats = 0;
  for (const TensorDef& t : net().tensors) {
    if (t.name == big) {
      expected_floats = GenerateParams(net().name, t, 7).size();
    }
  }
  for (int i = 0; i < kRequests; ++i) {
    auto response = client.Recv(1000 + i);
    ASSERT_TRUE(response.ok()) << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status, WireStatus::kOk);
    EXPECT_EQ(response->output.size(), expected_floats);
  }

  // Reads resumed: the same connection serves another request.
  auto after = client.Call(2000, MakeWireRequest(0, /*with_params=*/false));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->status, WireStatus::kOk);
}

// Past the hard cap the server cuts the stalled connection loose instead
// of buffering without bound — and healthy clients are unaffected.
TEST_F(FrontendStreamTest, StalledReaderBeyondHardCapIsDisconnected) {
  FrontendConfig fconfig;
  fconfig.so_sndbuf = 32 * 1024;
  fconfig.write_high_watermark = 64 * 1024;
  fconfig.write_hard_cap = 256 * 1024;  // two big responses trip it
  Boot({}, fconfig);

  ReplayClient staging;
  ASSERT_TRUE(staging.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(staging.Call(1, MakeWireRequest(0)).ok());
  const std::string big = BigTensorName();

  ReplayClient stalled;
  ASSERT_TRUE(stalled
                  .Connect("127.0.0.1", port(), /*recv_timeout_ms=*/5000,
                           /*rcvbuf=*/4 * 1024)
                  .ok());
  for (int i = 0; i < 4; ++i) {
    WireRequest request = MakeWireRequest(0, /*with_params=*/false);
    request.output_tensor = big;
    ASSERT_TRUE(stalled.Send(3000 + i, request).ok());
  }

  ASSERT_TRUE(WaitForStats(
      [](const FrontendStats& s) { return s.stalled_disconnects == 1; }));

  // The healthy path is untouched.
  auto response = staging.Call(2, MakeWireRequest(1, /*with_params=*/false));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, WireStatus::kOk);
}

// Half-close: a client that shuts down its write side after sending a
// request still receives the response (clean EOF is not an error).
TEST_F(FrontendStreamTest, HalfCloseStillDeliversInFlightResponses) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(client.Send(42, MakeWireRequest(1)).ok());
  client.ShutdownWrite();

  auto response = client.Recv(42);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_FALSE(response->output.empty());

  // After the flush the server closes its side too.
  auto eof = client.RecvAny();
  EXPECT_FALSE(eof.ok());

  ASSERT_TRUE(
      WaitForStats([](const FrontendStats& s) { return s.closed == 1; }));
  FrontendStats stats = frontend_->Stats();
  EXPECT_EQ(stats.truncated_streams, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
}

}  // namespace
}  // namespace grt
