// Seeded chaos over the TCP byte stream (satellite: adapt the recording
// transport's FaultPlan to the serving front-end).
//
// The link-fault machinery in src/net/fault.h was built for the shim
// transport; here the same deterministic schedules drive a hostile TCP
// client instead. Each transmission's fate maps onto a stream-level
// attack:
//
//   kDelivered  -> normal send (plus a byte-identical duplicate when the
//                  schedule says so — exercising correlation-id reuse)
//   kDropped    -> the request is never written (client-side loss)
//   kCorrupted  -> CorruptCopy() of the encoded frame goes on the wire
//   kLinkDown   -> half a frame, then a hard close + reconnect
//   spikes      -> bounded extra latency before the send
//
// The invariant mirrors the chaos suite's: no schedule may produce a
// hang or a wrong answer. Every cleanly delivered request must return
// the bitwise-correct output; every attacked transmission must end in a
// typed response, a typed client error, or a (detectable) disconnect —
// all within the client's receive timeout.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/net/fault.h"
#include "tests/serve/frontend_test_util.h"

namespace grt {
namespace {

constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};
constexpr int kRequestsPerSeed = 16;
constexpr int kBaselineSeeds = 4;

class FrontendFaultTest : public FrontendFixture {
 protected:
  // (Re)connect with a short receive timeout: chaos outcomes must resolve
  // within this bound or the test fails — that IS the no-hang invariant.
  void Reconnect(ReplayClient* client) {
    ASSERT_TRUE(
        client->Connect("127.0.0.1", port(), /*recv_timeout_ms=*/3000).ok());
  }

  Bytes EncodedRequest(uint64_t corr, uint64_t input_seed) {
    Frame frame;
    frame.type = WireFrameType::kRequest;
    frame.correlation_id = corr;
    frame.payload = EncodeWireRequest(
        MakeWireRequest(input_seed, /*with_params=*/false));
    return EncodeFrame(frame);
  }
};

TEST_F(FrontendFaultTest, EverySeededScheduleEndsTypedNeverHangs) {
  Boot();

  // Stage params and record the clean-path baseline outputs.
  ReplayClient staging;
  Reconnect(&staging);
  std::vector<std::vector<float>> baseline(kBaselineSeeds);
  for (int s = 0; s < kBaselineSeeds; ++s) {
    auto r = staging.Call(500 + s, MakeWireRequest(s, s == 0));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, WireStatus::kOk);
    baseline[s] = r->output;
  }

  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultyChannel chaos(nullptr, FaultPlan::FromSeed(seed));
    ReplayClient client;
    Reconnect(&client);
    int clean_ok = 0;

    for (int i = 0; i < kRequestsPerSeed; ++i) {
      SCOPED_TRACE("tx=" + std::to_string(i));
      const uint64_t input_seed = static_cast<uint64_t>(i % kBaselineSeeds);
      const uint64_t corr = seed * 1000 + static_cast<uint64_t>(i);
      Bytes wire = EncodedRequest(corr, input_seed);
      TxOutcome outcome = chaos.NextTx();

      if (outcome.extra_latency > 0) {
        // Bound the spike so the suite stays fast; the deadline semantics
        // under real queue delay are covered by the deadline tests.
        auto ns = std::min<int64_t>(outcome.extra_latency, 20'000'000);
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
      }

      switch (outcome.fate) {
        case TxFate::kDropped:
          // Lost before the socket: the server never sees it and owes
          // nothing. Nothing to assert beyond later requests working.
          continue;

        case TxFate::kLinkDown: {
          // Half a frame on the wire, then a hard disconnect. The server
          // must account a truncated stream, never block on the stub.
          Bytes half(wire.begin(),
                     wire.begin() + static_cast<long>(wire.size() / 2));
          (void)client.SendBytes(half);
          client.Close();
          chaos.Reconnect();
          Reconnect(&client);
          continue;
        }

        case TxFate::kCorrupted: {
          // Bit flips anywhere in the frame. Acceptable endings: a typed
          // error reply, a still-valid request that executes, or a
          // server-side close. Framing is untrustworthy afterwards, so
          // the connection is always recycled (as a transport would
          // re-key after a MAC failure).
          ASSERT_TRUE(client.SendBytes(chaos.CorruptCopy(wire)).ok());
          auto r = client.RecvAny();
          if (r.ok()) {
            EXPECT_LE(r->second.status, WireStatus::kError);
          } else {
            // Timeout is acceptable only if corruption landed in the
            // declared length (frame parked waiting for bytes) — still
            // bounded, and the recycle below restores a clean link.
            EXPECT_TRUE(r.status().code() == StatusCode::kTimeout ||
                        r.status().code() == StatusCode::kInternal)
                << r.status().ToString();
          }
          client.Close();
          Reconnect(&client);
          continue;
        }

        case TxFate::kDelivered:
          break;
      }

      // Clean delivery (possibly duplicated). The duplicate reuses the
      // correlation id byte-for-byte: the server must either reject it
      // as in-flight or execute it as a fresh request after the first
      // completed — both typed, and every kOk answer must be bitwise.
      ASSERT_TRUE(client.SendBytes(wire).ok());
      int expected_replies = 1;
      if (outcome.duplicate) {
        ASSERT_TRUE(client.SendBytes(wire).ok());
        expected_replies = 2;
      }
      int ok_replies = 0;
      for (int n = 0; n < expected_replies; ++n) {
        auto r = client.Recv(corr);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        if (r->status == WireStatus::kOk) {
          EXPECT_EQ(r->output, baseline[input_seed]);
          ++ok_replies;
        } else {
          EXPECT_EQ(r->status, WireStatus::kBadRequest);
          EXPECT_NE(r->message.find("already in flight"), std::string::npos)
              << r->message;
        }
      }
      EXPECT_GE(ok_replies, 1);
      clean_ok += ok_replies;
    }

    // Post-chaos probe: after the whole schedule the service still gives
    // bitwise-correct answers on a fresh connection.
    ReplayClient probe;
    Reconnect(&probe);
    auto r = probe.Call(seed * 1000 + 999,
                        MakeWireRequest(1, /*with_params=*/false));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, WireStatus::kOk);
    EXPECT_EQ(r->output, baseline[1]);
    EXPECT_GE(clean_ok, 1) << "schedule delivered nothing cleanly";
  }

  // The schedules must have actually attacked the stream.
  FrontendStats stats = frontend_->Stats();
  EXPECT_GT(stats.closed, 8u);
}

// Determinism of the adaptation itself: the same seed draws the same
// fate sequence, so a chaos failure reproduces from its seed alone.
TEST_F(FrontendFaultTest, FaultScheduleIsDeterministicPerSeed) {
  for (uint64_t seed : {3u, 9u}) {
    FaultyChannel a(nullptr, FaultPlan::FromSeed(seed));
    FaultyChannel b(nullptr, FaultPlan::FromSeed(seed));
    for (int i = 0; i < 64; ++i) {
      TxOutcome oa = a.NextTx();
      TxOutcome ob = b.NextTx();
      EXPECT_EQ(static_cast<int>(oa.fate), static_cast<int>(ob.fate));
      EXPECT_EQ(oa.duplicate, ob.duplicate);
      EXPECT_EQ(oa.extra_latency, ob.extra_latency);
      if (oa.fate == TxFate::kLinkDown) {
        a.Reconnect();
        b.Reconnect();
      }
    }
    Bytes frame(64, 0xAB);
    EXPECT_EQ(a.CorruptCopy(frame), b.CorruptCopy(frame));
  }
}

}  // namespace
}  // namespace grt
