// Concurrency, admission, and lifecycle suite for the serving front-end
// (this is the target the TSan CI pass runs).
//
// Covers: many connections multiplexing requests through one epoll loop
// with bitwise-stable outputs, queue-full admission turning into typed
// BUSY on the wire, deadline expiry inside the admission queue turning
// into typed EXPIRED, and graceful drain — admitted work completes,
// late frames get SHUTTING_DOWN, new connects are refused.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "tests/serve/frontend_test_util.h"

namespace grt {
namespace {

class FrontendTest : public FrontendFixture {};

// Eight client threads, each with its own connection and several
// requests (half of them digest-pinned), all served by the single
// event loop + worker pool with bitwise-per-seed outputs.
TEST_F(FrontendTest, ManyConnectionsMultiplexBitwise) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  ServeConfig sconfig;
  sconfig.workers = 2;
  Boot(sconfig);

  auto digest = service_->Preload(net().name);
  ASSERT_TRUE(digest.ok()) << digest.status().ToString();

  // Clean baselines per input seed (also stages params on each worker's
  // first touch — requests below carry params anyway to stay order-free).
  ReplayClient staging;
  ASSERT_TRUE(staging.Connect("127.0.0.1", port()).ok());
  std::vector<std::vector<float>> baseline(4);
  for (uint64_t s = 0; s < 4; ++s) {
    auto r = staging.Call(900 + s, MakeWireRequest(s));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, WireStatus::kOk);
    baseline[s] = r->output;
  }

  struct Outcome {
    bool transport_ok = false;
    WireStatus status = WireStatus::kError;
    std::vector<float> output;
    std::string detail;
  };
  std::vector<std::vector<Outcome>> results(
      kThreads, std::vector<Outcome>(kPerThread));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      ReplayClient client;
      Status st = client.Connect("127.0.0.1", port());
      if (!st.ok()) {
        results[t][0].detail = st.ToString();
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        WireRequest request =
            MakeWireRequest(static_cast<uint64_t>((t + i) % 4));
        if (t % 2 == 1) {
          request.digest = *digest;  // pinned half
        }
        auto r = client.Call(static_cast<uint64_t>(t * 100 + i), request);
        Outcome& out = results[t][i];
        if (!r.ok()) {
          out.detail = r.status().ToString();
          continue;
        }
        out.transport_ok = true;
        out.status = r->status;
        out.output = std::move(r->output);
        out.detail = r->message;
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const Outcome& out = results[t][i];
      ASSERT_TRUE(out.transport_ok)
          << "t=" << t << " i=" << i << ": " << out.detail;
      EXPECT_EQ(out.status, WireStatus::kOk)
          << "t=" << t << " i=" << i << ": " << out.detail;
      EXPECT_EQ(out.output, baseline[(t + i) % 4]) << "t=" << t << " i=" << i;
    }
  }

  FrontendStats stats = frontend_->Stats();
  EXPECT_GE(stats.accepted, static_cast<uint64_t>(kThreads) + 1);
  EXPECT_GE(stats.responses_ok, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.responses_dropped, 0u);
}

// Admission-queue overflow must come back as protocol-level BUSY, not a
// closed connection — and the queued requests still complete once the
// workers start.
TEST_F(FrontendTest, QueueFullSurfacesAsBusyOnTheWire) {
  constexpr int kTotal = 10;
  constexpr int kQueue = 4;
  ServeConfig sconfig;
  sconfig.max_queue = kQueue;
  Boot(sconfig, {}, /*start_service=*/false);  // requests park in the queue

  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  for (uint64_t i = 1; i <= kTotal; ++i) {
    // Self-contained requests (params included) so completion order
    // cannot matter once the workers spin up.
    ASSERT_TRUE(client.Send(i, MakeWireRequest(i % 4)).ok());
  }

  // The overflow rejections are synchronous: six BUSY replies arrive
  // while the service is still stopped.
  for (uint64_t i = static_cast<uint64_t>(kQueue) + 1; i <= kTotal; ++i) {
    auto r = client.Recv(i);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_EQ(r->status, WireStatus::kBusy) << "corr=" << i;
  }

  ASSERT_TRUE(service_->Start().ok());
  for (uint64_t i = 1; i <= kQueue; ++i) {
    auto r = client.Recv(i);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_EQ(r->status, WireStatus::kOk) << "corr=" << i;
    EXPECT_FALSE(r->output.empty());
  }

  FrontendStats stats = frontend_->Stats();
  EXPECT_EQ(stats.responses_busy, static_cast<uint64_t>(kTotal - kQueue));
  EXPECT_EQ(stats.responses_ok, static_cast<uint64_t>(kQueue));
}

// A deadline that expires while the request sits in the admission queue
// must surface as EXPIRED on the wire and in the service's own stats.
TEST_F(FrontendTest, DeadlineExpiryInQueueSurfacesAsExpired) {
  constexpr int kTotal = 5;
  Boot({}, {}, /*start_service=*/false);

  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  for (uint64_t i = 1; i <= kTotal; ++i) {
    ASSERT_TRUE(
        client
            .Send(i, MakeWireRequest(i % 4, /*with_params=*/false,
                                     /*deadline_ms=*/50))
            .ok());
  }
  // Let every deadline lapse while the requests are still parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(service_->Start().ok());

  for (uint64_t i = 1; i <= kTotal; ++i) {
    auto r = client.Recv(i);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_EQ(r->status, WireStatus::kExpired) << "corr=" << i;
  }

  ServeStats sstats = service_->Stats();
  EXPECT_EQ(sstats.expired_in_queue + sstats.expired_at_dequeue,
            static_cast<size_t>(kTotal));
  FrontendStats fstats = frontend_->Stats();
  EXPECT_EQ(fstats.responses_expired, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(fstats.responses_ok, 0u);
}

// Graceful drain: requests admitted before Shutdown() complete and
// flush; frames arriving during the drain get SHUTTING_DOWN; once
// Shutdown() returns, new connections are refused outright.
TEST_F(FrontendTest, GracefulDrainCompletesAdmittedRejectsLate) {
  constexpr uint64_t kParked = 3;
  constexpr uint64_t kLate = 2;
  Boot({}, {}, /*start_service=*/false);

  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  for (uint64_t i = 1; i <= kParked; ++i) {
    ASSERT_TRUE(client.Send(i, MakeWireRequest(i % 4)).ok());
  }
  // The drain must start strictly after all three were admitted, or it
  // would legitimately answer them SHUTTING_DOWN.
  ASSERT_TRUE(WaitForStats(
      [](const FrontendStats& s) { return s.requests_admitted >= kParked; }));

  // Receiver: pulls every response until the server closes the stream.
  std::vector<std::pair<uint64_t, WireStatus>> answered;
  std::thread receiver([&]() {
    for (;;) {
      auto r = client.RecvAny();
      if (!r.ok()) {
        return;  // clean server close after the drain flush
      }
      answered.emplace_back(r->first, r->second.status);
    }
  });

  // Prodder: well inside the drain window, push two late frames (they
  // must be answered SHUTTING_DOWN, not dropped), then start the service
  // so the parked requests can finish and the drain can complete.
  std::thread prodder([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (uint64_t i = 1; i <= kLate; ++i) {
      (void)client.Send(100 + i, MakeWireRequest(i % 4,
                                                 /*with_params=*/false));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(service_->Start().ok());
  });

  frontend_->Shutdown();  // blocks until the drain finishes
  prodder.join();
  receiver.join();

  uint64_t ok = 0, shutting_down = 0;
  for (const auto& [corr, status] : answered) {
    if (corr <= kParked) {
      EXPECT_EQ(status, WireStatus::kOk) << "corr=" << corr;
      ++ok;
    } else {
      EXPECT_EQ(status, WireStatus::kShuttingDown) << "corr=" << corr;
      ++shutting_down;
    }
  }
  EXPECT_EQ(ok, kParked);
  EXPECT_EQ(shutting_down, kLate);

  // The listener is gone: fresh connections are refused, not parked.
  ReplayClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port(), 500).ok());

  FrontendStats stats = frontend_->Stats();
  EXPECT_EQ(stats.drain_forced_closes, 0u);
  EXPECT_EQ(stats.responses_dropped, 0u);
}

}  // namespace
}  // namespace grt
