// Device-pool tests: the serving-side consumer of the static footprint
// analysis. Two recordings produced under disjoint resource partitions
// (carveout offset, job slot, address space) earn a `disjoint` verdict
// and must co-reside on one pooled device with bitwise-identical outputs
// vs private-device serving; conflicting plans on a shared device must be
// reset-fenced via eviction and still answer correctly.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/analysis/footprint/footprint.h"
#include "src/cloud/session.h"
#include "src/harness/rig.h"
#include "src/ml/reference.h"
#include "src/serve/service.h"

namespace grt {
namespace {

constexpr SkuId kSku = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;

// One recording per partition, both signed under partition A's session
// key so a single store can hold them.
class DevicePoolTest : public ::testing::Test {
 protected:
  static Recording Record(const NetworkDef& net,
                          const RecordSessionConfig& config, uint64_t nonce,
                          Bytes* signed_out, Bytes* key_out) {
    ClientDevice device(kSku, kNondetSeed);
    CloudService service;
    SpeculationHistory history;
    RecordSession session(&service, &device, config, &history);
    EXPECT_TRUE(session.Connect().ok());
    auto outcome = session.RecordWorkload(net, nonce);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    auto rec = Recording::ParseSigned(outcome->signed_recording,
                                      session.key()->key());
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    *signed_out = outcome->signed_recording;
    *key_out = session.key()->key();
    return *rec;
  }

  static void SetUpTestSuite() {
    net_a_ = new NetworkDef(BuildMnist());
    net_b_ = new NetworkDef(BuildMnist());
    net_b_->name = "mnist-p1";

    // Partition A: defaults — carveout base, job slot 0, AS 0.
    RecordSessionConfig config_a;
    Bytes signed_a;
    key_ = new Bytes();
    Recording rec_a = Record(*net_a_, config_a, 7, &signed_a, key_);

    // Partition B: second half of the carveout, job slot 1, AS 1. The
    // recordings then touch provably disjoint pages and latch groups.
    RecordSessionConfig config_b;
    config_b.alloc_offset = kCarveoutSize / 2;
    config_b.driver.job_slot = 1;
    config_b.driver.as_index = 1;
    Bytes signed_b;
    Bytes key_b;
    Recording rec_b = Record(*net_b_, config_b, 8, &signed_b, &key_b);

    rec_a_ = new Recording(std::move(rec_a));
    rec_b_ = new Recording(std::move(rec_b));
    signed_a_ = new Bytes(std::move(signed_a));
    // Re-sign partition B's body under partition A's key.
    signed_b_ = new Bytes(rec_b_->SerializeSigned(*key_));

    // A conflicting twin of A: same partition, different workload name.
    Recording twin = *rec_a_;
    twin.header.workload = "mnist-twin";
    signed_twin_ = new Bytes(twin.SerializeSigned(*key_));
  }

  static void TearDownTestSuite() {
    delete net_a_;
    delete net_b_;
    delete rec_a_;
    delete rec_b_;
    delete key_;
    delete signed_a_;
    delete signed_b_;
    delete signed_twin_;
    net_a_ = net_b_ = nullptr;
    rec_a_ = rec_b_ = nullptr;
    key_ = signed_a_ = signed_b_ = signed_twin_ = nullptr;
  }

  void SetUp() override {
    store_ = std::make_unique<RecordingStore>(*key_);
    ASSERT_TRUE(store_->Install(*signed_a_).ok());
    ASSERT_TRUE(store_->Install(*signed_b_).ok());
  }

  static ReplayRequest MakeRequest(const NetworkDef& net, uint64_t seed) {
    ReplayRequest request;
    request.workload = net.name;
    request.tensors[net.input_tensor] = GenerateInput(net, seed);
    for (const TensorDef& t : net.tensors) {
      if (t.kind == TensorKind::kParam) {
        request.tensors[t.name] = GenerateParams(net.name, t, 7);
      }
    }
    request.output_tensor = net.output_tensor;
    return request;
  }

  static NetworkDef* net_a_;
  static NetworkDef* net_b_;
  static Recording* rec_a_;
  static Recording* rec_b_;
  static Bytes* key_;
  static Bytes* signed_a_;
  static Bytes* signed_b_;
  static Bytes* signed_twin_;
  std::unique_ptr<RecordingStore> store_;
};

NetworkDef* DevicePoolTest::net_a_ = nullptr;
NetworkDef* DevicePoolTest::net_b_ = nullptr;
Recording* DevicePoolTest::rec_a_ = nullptr;
Recording* DevicePoolTest::rec_b_ = nullptr;
Bytes* DevicePoolTest::key_ = nullptr;
Bytes* DevicePoolTest::signed_a_ = nullptr;
Bytes* DevicePoolTest::signed_b_ = nullptr;
Bytes* DevicePoolTest::signed_twin_ = nullptr;

TEST_F(DevicePoolTest, PartitionedRecordingsAreProvablyDisjoint) {
  ASSERT_TRUE(rec_a_->header.footprint.computed);
  ASSERT_TRUE(rec_b_->header.footprint.computed);
  // Disjoint carveout halves, slots, and address spaces.
  EXPECT_EQ(CheckInterference(rec_a_->header.footprint,
                              rec_b_->header.footprint),
            Interference::kDisjoint);
  // The same plan against itself conflicts (it rewrites its own pages).
  EXPECT_EQ(CheckInterference(rec_a_->header.footprint,
                              rec_a_->header.footprint),
            Interference::kConflicting);
}

TEST_F(DevicePoolTest, DisjointPlansCoResideWithBitwiseIdenticalOutputs) {
  // Reference run: private device per worker (the pre-pool layout).
  std::map<std::string, std::vector<float>> private_outputs;
  {
    ServeConfig config;
    config.sku = kSku;
    config.workers = 2;
    config.devices = 2;
    ReplayService service(store_.get(), config);
    ASSERT_TRUE(service.Start().ok());
    for (const NetworkDef* net : {net_a_, net_b_}) {
      ReplayResponse r = service.Submit(MakeRequest(*net, 42));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      private_outputs[net->name] = r.output;
    }
  }

  // Pooled run: both plans share one device.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  config.devices = 1;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.devices(), 1);

  // Interleave cold and warm replays of both plans on the shared device.
  for (int round = 0; round < 3; ++round) {
    for (const NetworkDef* net : {net_a_, net_b_}) {
      ReplayResponse r = service.Submit(MakeRequest(*net, 42));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_EQ(r.device, 0);
      const std::vector<float>& want = private_outputs[net->name];
      ASSERT_EQ(r.output.size(), want.size());
      EXPECT_EQ(std::memcmp(r.output.data(), want.data(),
                            want.size() * sizeof(float)),
                0)
          << net->name << " diverged under co-residency, round " << round;
    }
  }

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.pool_devices, 1u);
  EXPECT_GE(stats.coresident_placements, 1u);
  EXPECT_EQ(stats.conflict_evictions, 0u);  // proven disjoint: no fencing
  EXPECT_EQ(stats.failed, 0u);

  // Warm paths survived co-residency: later rounds hit the plan cache.
  EXPECT_GT(stats.plan_hits, 0u);
  EXPECT_GT(stats.warm_replays, 0u);
}

TEST_F(DevicePoolTest, ConflictingPlansOnOneDeviceAreEvictFenced) {
  // mnist and mnist-twin write the same pages: kConflicting. On a
  // one-device pool every switch must evict the other resident engine
  // (cold reload), never co-reside them.
  ASSERT_TRUE(store_->Install(*signed_twin_).ok());

  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.devices = 1;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  auto ref = RunReference(*net_a_, GenerateInput(*net_a_, 42), 7);
  ASSERT_TRUE(ref.ok());
  for (int round = 0; round < 2; ++round) {
    for (const std::string& workload : {net_a_->name, std::string("mnist-twin")}) {
      // The twin is a renamed copy of the mnist recording, so its
      // requests carry mnist tensors under the twin's workload name.
      ReplayRequest request = MakeRequest(*net_a_, 42);
      request.workload = workload;
      ReplayResponse r = service.Submit(std::move(request));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_FALSE(r.coresident);
      EXPECT_LE(MaxAbsDiff(r.output, *ref), 1e-4f) << workload;
    }
  }

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.coresident_placements, 0u);
  EXPECT_GT(stats.conflict_evictions, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DevicePoolTest, ConcurrentConflictingPlacementsStayCorrect) {
  // Two workers share ONE device while serving a conflicting mix (mnist
  // and its same-partition twin) plus a disjoint plan. Placement and
  // device acquisition are separate critical sections, so a worker can
  // place a plan and then lose its shadow slot to a concurrent
  // conflicting placement before it acquires the device; it must then
  // redo placement, never replay a plan the shadow no longer admits.
  // Every answer must still be correct. (CI pass 4 runs this suite under
  // TSan, which also checks the locking of the retry path.)
  ASSERT_TRUE(store_->Install(*signed_twin_).ok());

  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  config.devices = 1;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  auto ref_a = RunReference(*net_a_, GenerateInput(*net_a_, 42), 7);
  ASSERT_TRUE(ref_a.ok());
  auto ref_b = RunReference(*net_b_, GenerateInput(*net_b_, 42), 7);
  ASSERT_TRUE(ref_b.ok());

  std::vector<std::pair<std::string, std::future<ReplayResponse>>> pending;
  const std::string twin = "mnist-twin";
  for (int round = 0; round < 6; ++round) {
    for (const std::string& workload : {net_a_->name, twin, net_b_->name}) {
      ReplayRequest request =
          MakeRequest(workload == net_b_->name ? *net_b_ : *net_a_, 42);
      request.workload = workload;
      pending.emplace_back(workload, service.SubmitAsync(std::move(request)));
    }
  }
  for (auto& [workload, future] : pending) {
    ReplayResponse r = future.get();
    ASSERT_TRUE(r.status.ok()) << workload << ": " << r.status.ToString();
    EXPECT_EQ(r.device, 0);
    const std::vector<float>& want =
        workload == net_b_->name ? *ref_b : *ref_a;
    EXPECT_LE(MaxAbsDiff(r.output, want), 1e-4f) << workload;
  }

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 0u);
  // The conflicting pair ping-pongs the one device: evictions must have
  // fenced every switch.
  EXPECT_GT(stats.conflict_evictions, 0u);
}

TEST_F(DevicePoolTest, DisjointPlansPoolEvenWithoutResetFence) {
  // Disabling scrub_before demotes serializable pairs to conflicting at
  // admission but leaves proven-disjoint pairs poolable: their soundness
  // argument (page/slot/AS disjointness plus in-plan register
  // re-establishment) never leaned on the fence.
  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;
  config.devices = 1;
  config.replay.scrub_before = false;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  for (int round = 0; round < 2; ++round) {
    for (const NetworkDef* net : {net_a_, net_b_}) {
      auto ref = RunReference(*net, GenerateInput(*net, 42), 7);
      ASSERT_TRUE(ref.ok());
      ReplayResponse r = service.Submit(MakeRequest(*net, 42));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_EQ(r.device, 0);
      EXPECT_LE(MaxAbsDiff(r.output, *ref), 1e-4f) << net->name;
    }
  }

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.coresident_placements, 1u);
  EXPECT_EQ(stats.conflict_evictions, 0u);
}

TEST_F(DevicePoolTest, TwoTenantsShareThePoolConcurrently) {
  // Two tenants hammer ONE pooled device from separate submitter threads,
  // each mixing a conflicting workload (mnist vs its same-partition twin
  // — every cross-tenant switch is an eviction) with the disjoint
  // partition-B plan. Exercises the per-tenant token buckets (queue_mu_),
  // tenant stats slices (stats_mu_), and per-tenant wait histograms
  // (tenant_hist_mu_) under real contention; CI pass 4 runs this suite
  // under TSan. Correctness bar: every OK answer is bitwise-checked, and
  // each tenant's accounting identity holds exactly.
  ASSERT_TRUE(store_->Install(*signed_twin_).ok());

  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  config.devices = 1;
  config.max_batch = 4;
  config.tenant_limits["alpha"] = TenantLimit{50.0, 8.0};
  config.tenant_limits["beta"] = TenantLimit{50.0, 8.0};
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  auto ref_a = RunReference(*net_a_, GenerateInput(*net_a_, 42), 7);
  ASSERT_TRUE(ref_a.ok());
  auto ref_b = RunReference(*net_b_, GenerateInput(*net_b_, 42), 7);
  ASSERT_TRUE(ref_b.ok());

  constexpr int kPerTenant = 10;
  struct TenantOutcome {
    size_t ok = 0;
    size_t throttled = 0;
    size_t other = 0;
  };
  std::mutex outcome_mu;
  std::map<std::string, TenantOutcome> outcomes;

  auto submitter = [&](const std::string& tenant,
                       const std::string& conflicting_workload) {
    std::vector<std::pair<bool, std::future<ReplayResponse>>> pending;
    for (int i = 0; i < kPerTenant; ++i) {
      const bool disjoint = (i % 2) == 1;
      ReplayRequest request = MakeRequest(disjoint ? *net_b_ : *net_a_, 42);
      if (!disjoint) {
        request.workload = conflicting_workload;
      }
      request.tenant = tenant;
      pending.emplace_back(disjoint,
                           service.SubmitAsync(std::move(request)));
    }
    TenantOutcome outcome;
    for (auto& [disjoint, future] : pending) {
      ReplayResponse r = future.get();
      if (r.status.ok()) {
        ++outcome.ok;
        const std::vector<float>& want = disjoint ? *ref_b : *ref_a;
        EXPECT_LE(MaxAbsDiff(r.output, want), 1e-4f) << tenant;
      } else if (r.status.code() == StatusCode::kTenantThrottled) {
        ++outcome.throttled;
      } else {
        ++outcome.other;
        ADD_FAILURE() << tenant << ": " << r.status.ToString();
      }
    }
    std::lock_guard<std::mutex> lock(outcome_mu);
    outcomes[tenant] = outcome;
  };

  std::thread alpha(submitter, "alpha", net_a_->name);
  std::thread beta(submitter, "beta", std::string("mnist-twin"));
  alpha.join();
  beta.join();
  service.Stop();

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 0u);
  for (const std::string& tenant : {std::string("alpha"), std::string("beta")}) {
    const TenantOutcome& seen = outcomes[tenant];
    ASSERT_TRUE(stats.tenants.count(tenant)) << tenant;
    const TenantServeStats& t = stats.tenants.at(tenant);
    // Server-side slices agree with what the client-side futures saw...
    EXPECT_EQ(t.submitted, static_cast<size_t>(kPerTenant)) << tenant;
    EXPECT_EQ(t.completed, seen.ok) << tenant;
    EXPECT_EQ(t.throttled, seen.throttled) << tenant;
    // ...and the accounting identity closes exactly: every submit is
    // completed, throttled, or nothing else (no deadlines, no overload).
    EXPECT_EQ(t.submitted,
              t.completed + t.throttled + t.failed + t.expired + t.rejected)
        << tenant;
    EXPECT_GE(t.completed, 1u) << tenant;
  }
  // The buckets started with 8 tokens against 10 back-to-back submits, so
  // at least someone was throttled — per-tenant, never cross-charged.
  EXPECT_EQ(stats.throttled,
            stats.tenants.at("alpha").throttled +
                stats.tenants.at("beta").throttled);
}

TEST_F(DevicePoolTest, ConflictingPlansSpillToSeparateDevices) {
  // With two devices available, the placer keeps conflicting plans apart
  // instead of evict-thrashing one device.
  ASSERT_TRUE(store_->Install(*signed_twin_).ok());

  ServeConfig config;
  config.sku = kSku;
  config.workers = 1;  // one worker, affinity device 0 for everything
  config.devices = 2;
  ReplayService service(store_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  std::map<std::string, int> device_of;
  for (int round = 0; round < 2; ++round) {
    for (const std::string& workload : {net_a_->name, std::string("mnist-twin")}) {
      ReplayRequest request = MakeRequest(*net_a_, 42);
      request.workload = workload;
      ReplayResponse r = service.Submit(std::move(request));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      auto [it, inserted] = device_of.emplace(workload, r.device);
      EXPECT_EQ(it->second, r.device)
          << workload << " moved devices between rounds";
    }
  }
  ASSERT_EQ(device_of.size(), 2u);
  EXPECT_NE(device_of[net_a_->name], device_of["mnist-twin"]);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.conflict_evictions, 0u);
  EXPECT_GT(stats.pool_spillovers, 0u);
}

}  // namespace
}  // namespace grt
