// Shared fixture for the serving front-end test suites: records MNIST
// once per process, and boots a RecordingStore + ReplayService +
// ServingFrontend per test with configurable knobs (the protocol,
// stream, fault, and concurrency suites all ride on it).
#ifndef GRT_TESTS_SERVE_FRONTEND_TEST_UTIL_H_
#define GRT_TESTS_SERVE_FRONTEND_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/serve/client.h"
#include "src/serve/frontend.h"
#include "src/serve/service.h"

namespace grt {

struct RecordedMnist {
  NetworkDef net;
  Bytes session_key;
  Bytes signed_recording;
};

// Records once per process; nullptr on failure (tests ASSERT on it).
inline const RecordedMnist* SharedMnist() {
  static const RecordedMnist* recorded = []() -> const RecordedMnist* {
    auto* r = new RecordedMnist();
    r->net = BuildMnist();
    ClientDevice device(SkuId::kMaliG71Mp8, 11);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, r->net, "OursMDS", WifiConditions(),
                              &history, 0);
    if (!m.ok()) {
      return nullptr;
    }
    r->session_key = std::move(m->session_key);
    r->signed_recording = std::move(m->signed_recording);
    return r;
  }();
  return recorded;
}

class FrontendFixture : public ::testing::Test {
 protected:
  void Boot(ServeConfig sconfig = {}, FrontendConfig fconfig = {},
            bool start_service = true) {
    const RecordedMnist* rec = SharedMnist();
    ASSERT_NE(rec, nullptr) << "MNIST recording failed";
    store_ = std::make_unique<RecordingStore>(rec->session_key);
    ASSERT_TRUE(store_->Install(rec->signed_recording).ok());
    service_ = std::make_unique<ReplayService>(store_.get(), sconfig);
    if (start_service) {
      ASSERT_TRUE(service_->Start().ok());
    }
    frontend_ = std::make_unique<ServingFrontend>(service_.get(), fconfig);
    ASSERT_TRUE(frontend_->Start().ok());
    ASSERT_NE(frontend_->port(), 0);
  }

  void TearDown() override {
    if (frontend_ != nullptr) {
      frontend_->Shutdown();
    }
    if (service_ != nullptr) {
      service_->Stop();
    }
  }

  const NetworkDef& net() const { return SharedMnist()->net; }
  uint16_t port() const { return frontend_->port(); }

  // `with_params` stages the model parameters too (first request per
  // worker must, so the output is meaningful); later requests can skip
  // them and stay small.
  WireRequest MakeWireRequest(uint64_t input_seed, bool with_params = true,
                              int64_t deadline_ms = 30000) {
    WireRequest request;
    request.workload = net().name;
    request.output_tensor = net().output_tensor;
    request.deadline_ms = deadline_ms;
    request.tensors[net().input_tensor] = GenerateInput(net(), input_seed);
    if (with_params) {
      for (const TensorDef& t : net().tensors) {
        if (t.kind == TensorKind::kParam) {
          request.tensors[t.name] = GenerateParams(net().name, t, 7);
        }
      }
    }
    return request;
  }

  // Name of the largest parameter tensor — reading it back makes
  // responses big enough to drive real write backpressure.
  std::string BigTensorName() {
    std::string best;
    size_t best_size = 0;
    for (const TensorDef& t : net().tensors) {
      if (t.kind != TensorKind::kParam) {
        continue;
      }
      size_t size = GenerateParams(net().name, t, 7).size();
      if (size > best_size) {
        best_size = size;
        best = t.name;
      }
    }
    return best;
  }

  Result<WireResponse> Call(ReplayClient* client, uint64_t corr,
                            const WireRequest& request) {
    return client->Call(corr, request);
  }

  // Polls frontend stats until `pred` holds or the deadline passes.
  bool WaitForStats(const std::function<bool(const FrontendStats&)>& pred,
                    int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (pred(frontend_->Stats())) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  std::unique_ptr<RecordingStore> store_;
  std::unique_ptr<ReplayService> service_;
  std::unique_ptr<ServingFrontend> frontend_;
};

}  // namespace grt

#endif  // GRT_TESTS_SERVE_FRONTEND_TEST_UTIL_H_
