// Protocol corpus: every class of malformed input a remote peer can send
// — truncated headers, oversized length declarations, bad magic/version/
// type/flags, undecodable payloads, duplicate correlation ids, unknown
// workloads and digests, mid-frame disconnects — must produce a typed
// error (a reply, a counted fault, or both), leave the server in a
// consistent state, and never take down service for well-behaved
// clients.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "src/net/frame.h"
#include "tests/serve/frontend_test_util.h"

namespace grt {
namespace {

class FrontendProtocolTest : public FrontendFixture {};

// A fresh client must still be served after whatever abuse `abuse` did —
// the per-connection fault stayed per-connection.
void ExpectStillServing(uint16_t port,
                        const WireRequest& request) {
  ReplayClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", port, 30000).ok());
  auto response = good.Call(99, request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, WireStatus::kOk) << response->message;
  EXPECT_FALSE(response->output.empty());
}

TEST_F(FrontendProtocolTest, TruncatedHeaderDisconnectIsTypedAndCounted) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  Bytes frame = EncodeFrame(
      {.type = WireFrameType::kRequest,
                   .correlation_id = 5,
                   .payload = EncodeWireRequest(MakeWireRequest(0))});
  Bytes partial(frame.begin(), frame.begin() + 7);  // mid-header
  ASSERT_TRUE(client.SendBytes(partial).ok());
  client.Close();
  EXPECT_TRUE(WaitForStats([](const FrontendStats& s) {
    return s.truncated_streams == 1 && s.decode_errors == 1 && s.closed == 1;
  }));
  ExpectStillServing(port(), MakeWireRequest(0));
}

TEST_F(FrontendProtocolTest, MidFramePayloadDisconnect) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  Bytes frame = EncodeFrame(
      {.type = WireFrameType::kRequest,
                   .correlation_id = 6,
                   .payload = EncodeWireRequest(MakeWireRequest(0))});
  // Header complete, payload half-sent, then gone.
  Bytes partial(frame.begin(),
                frame.begin() + static_cast<ptrdiff_t>(frame.size() / 2));
  ASSERT_TRUE(client.SendBytes(partial).ok());
  client.Close();
  EXPECT_TRUE(WaitForStats([](const FrontendStats& s) {
    return s.truncated_streams == 1 && s.closed == 1;
  }));
  // The half-request never reached the service.
  EXPECT_EQ(frontend_->Stats().requests_admitted, 0u);
  ExpectStillServing(port(), MakeWireRequest(0));
}

struct HeaderAbuse {
  const char* name;
  size_t offset;
  uint8_t value;
  const char* fault_name;
};

TEST_F(FrontendProtocolTest, MalformedHeadersGetErrorReplyThenClose) {
  Boot();
  const HeaderAbuse cases[] = {
      {"bad-magic", 0, 0xAA, "bad-magic"},
      {"bad-version", 4, 0x7F, "bad-version"},
      {"bad-type", 6, 0x09, "bad-type"},
      // 0x01 is the legal has-tenant bit on v2 requests; 0x02 is the
      // lowest reserved bit and must still fault.
      {"bad-flags", 7, 0x02, "bad-flags"},
  };
  uint64_t expected_errors = 0;
  for (const HeaderAbuse& abuse : cases) {
    SCOPED_TRACE(abuse.name);
    ReplayClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port(), 10000).ok());
    Bytes frame = EncodeFrame(
        {.type = WireFrameType::kRequest,
                   .correlation_id = 7,
                   .payload = EncodeWireRequest(MakeWireRequest(0))});
    frame[abuse.offset] = abuse.value;
    ASSERT_TRUE(client.SendBytes(frame).ok());
    // Best-effort typed reply on correlation id 0 naming the fault, then
    // the connection dies (framing is unrecoverable).
    auto reply = client.RecvAny();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->first, 0u);
    EXPECT_EQ(reply->second.status, WireStatus::kBadRequest);
    EXPECT_NE(reply->second.message.find(abuse.fault_name),
              std::string::npos)
        << reply->second.message;
    auto eof = client.RecvAny();
    EXPECT_FALSE(eof.ok());  // server closed after the reply
    ++expected_errors;
    EXPECT_TRUE(WaitForStats([&](const FrontendStats& s) {
      return s.decode_errors == expected_errors &&
             s.closed == expected_errors;
    }));
  }
  EXPECT_EQ(frontend_->Stats().requests_admitted, 0u);
  ExpectStillServing(port(), MakeWireRequest(0));
}

TEST_F(FrontendProtocolTest, OversizedDeclarationRefusedAtHeader) {
  FrontendConfig fconfig;
  fconfig.max_frame_payload = 4096;
  Boot(ServeConfig{}, fconfig);
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 10000).ok());
  // Declare far beyond the bound; send only the header. The refusal must
  // come from the declaration alone.
  Bytes frame = EncodeFrame({.type = WireFrameType::kRequest,
                   .correlation_id = 3,
                   .payload = Bytes(8192, 0xCD)});
  ASSERT_TRUE(
      client.SendBytes(Bytes(frame.begin(), frame.begin() + 20)).ok());
  auto reply = client.RecvAny();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->second.status, WireStatus::kBadRequest);
  EXPECT_NE(reply->second.message.find("oversized-frame"), std::string::npos);
  EXPECT_TRUE(WaitForStats([](const FrontendStats& s) {
    return s.oversized_disconnects == 1 && s.closed == 1;
  }));
  // The probe must itself fit the 4 KB frame ceiling, so it carries the
  // input only — replay memory still holds the recorded parameters.
  ExpectStillServing(port(), MakeWireRequest(0, /*with_params=*/false));
}

TEST_F(FrontendProtocolTest, UndecodablePayloadKeepsConnectionAlive) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 30000).ok());
  // Well-framed garbage: framing is intact, so the fault is scoped to
  // this one request and the connection survives.
  ASSERT_TRUE(client
                  .SendBytes(EncodeFrame(
                      {.type = WireFrameType::kRequest,
                   .correlation_id = 21,
                   .payload = Bytes(64, 0xEE)}))
                  .ok());
  auto reply = client.Recv(21);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, WireStatus::kBadRequest);
  // Same connection, valid request: served.
  auto good = client.Call(22, MakeWireRequest(0));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->status, WireStatus::kOk);
  EXPECT_EQ(frontend_->Stats().bad_requests, 1u);
  EXPECT_EQ(frontend_->Stats().decode_errors, 0u);
}

TEST_F(FrontendProtocolTest, ResponseTypeFrameFromClientIsRejected) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 10000).ok());
  WireResponse bogus;
  ASSERT_TRUE(client
                  .SendBytes(EncodeFrame({.type = WireFrameType::kResponse,
                   .correlation_id = 31,
                   .payload = EncodeWireResponse(bogus)}))
                  .ok());
  auto reply = client.Recv(31);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, WireStatus::kBadRequest);
  auto good = client.Call(32, MakeWireRequest(0));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->status, WireStatus::kOk);
}

TEST_F(FrontendProtocolTest, UnknownWorkloadAndDigestAreTyped) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 30000).ok());
  WireRequest unknown = MakeWireRequest(0);
  unknown.workload = "no-such-model";
  auto reply = client.Call(41, unknown);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, WireStatus::kUnknownWorkload);

  WireRequest mispinned = MakeWireRequest(0);
  mispinned.digest.fill(0x5A);
  auto pin_reply = client.Call(42, mispinned);
  ASSERT_TRUE(pin_reply.ok());
  EXPECT_EQ(pin_reply->status, WireStatus::kUnknownDigest);

  // Correct pin round-trips, and the digest is echoed.
  auto digest = service_->Preload(net().name);
  ASSERT_TRUE(digest.ok());
  WireRequest pinned = MakeWireRequest(0);
  pinned.digest = *digest;
  auto ok_reply = client.Call(43, pinned);
  ASSERT_TRUE(ok_reply.ok());
  EXPECT_EQ(ok_reply->status, WireStatus::kOk);
  EXPECT_EQ(ok_reply->digest, *digest);
}

TEST_F(FrontendProtocolTest, DuplicateCorrelationIdRejectedConnSurvives) {
  // Service deliberately not started: the first request parks in the
  // admission queue, guaranteeing its correlation id is still in flight
  // when the duplicate arrives.
  Boot(ServeConfig{}, FrontendConfig{}, /*start_service=*/false);
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 30000).ok());
  WireRequest request = MakeWireRequest(0);
  ASSERT_TRUE(client.Send(77, request).ok());
  ASSERT_TRUE(client.Send(77, request).ok());
  auto dup = client.Recv(77);  // the duplicate's rejection arrives first
  ASSERT_TRUE(dup.ok()) << dup.status().ToString();
  EXPECT_EQ(dup->status, WireStatus::kBadRequest);
  EXPECT_NE(dup->message.find("already in flight"), std::string::npos);
  EXPECT_EQ(frontend_->Stats().duplicate_corr_ids, 1u);
  // Start workers: the original request — untouched by the duplicate —
  // completes on the same connection.
  ASSERT_TRUE(service_->Start().ok());
  auto original = client.Recv(77);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  EXPECT_EQ(original->status, WireStatus::kOk);
  EXPECT_FALSE(original->output.empty());
}

TEST_F(FrontendProtocolTest, BothRepliesForADuplicatedIdSurviveTheStash) {
  // The duplicate-corr-id case is the one place the server legitimately
  // sends two responses with one correlation id (the duplicate's
  // rejection now, the original's real reply later). Reading a *later*
  // request first forces both through the client's stash — neither may
  // be silently dropped.
  Boot(ServeConfig{}, FrontendConfig{}, /*start_service=*/false);
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 30000).ok());
  WireRequest request = MakeWireRequest(0);
  ASSERT_TRUE(client.Send(77, request).ok());
  ASSERT_TRUE(client.Send(77, request).ok());
  ASSERT_TRUE(service_->Start().ok());
  auto later = client.Call(78, MakeWireRequest(1));
  ASSERT_TRUE(later.ok()) << later.status().ToString();
  EXPECT_EQ(later->status, WireStatus::kOk);
  auto dup = client.Recv(77);  // stashed first: the rejection
  ASSERT_TRUE(dup.ok()) << dup.status().ToString();
  EXPECT_EQ(dup->status, WireStatus::kBadRequest);
  auto original = client.Recv(77);  // stashed second: the real reply
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  EXPECT_EQ(original->status, WireStatus::kOk);
  EXPECT_FALSE(original->output.empty());
}

TEST_F(FrontendProtocolTest, AbsurdDeadlineRejectedBeforeAdmission) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 30000).ok());
  // deadline_ms arrives as an arbitrary int64; near INT64_MAX it would
  // overflow the service's steady_clock arithmetic into a past deadline.
  // The frontend refuses it at decode, before admission.
  WireRequest request = MakeWireRequest(0);
  request.deadline_ms = std::numeric_limits<int64_t>::max();
  auto reply = client.Call(61, request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, WireStatus::kBadRequest);
  EXPECT_NE(reply->message.find("deadline_ms"), std::string::npos);
  EXPECT_EQ(frontend_->Stats().requests_admitted, 0u);
  // Exactly at the bound is admitted and served on the same connection.
  WireRequest at_bound = MakeWireRequest(0);
  at_bound.deadline_ms = kMaxDeadlineMs;
  auto good = client.Call(62, at_bound);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->status, WireStatus::kOk);
}

TEST_F(FrontendProtocolTest, SameCorrelationIdFineOnSeparateConnections) {
  Boot();
  ReplayClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", port(), 30000).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", port(), 30000).ok());
  auto ra = a.Call(7, MakeWireRequest(0));
  auto rb = b.Call(7, MakeWireRequest(1));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->status, WireStatus::kOk);
  EXPECT_EQ(rb->status, WireStatus::kOk);
  EXPECT_EQ(frontend_->Stats().duplicate_corr_ids, 0u);
}

TEST_F(FrontendProtocolTest, GarbageAfterValidFrameStillServesTheValidOne) {
  Boot();
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port(), 30000).ok());
  Bytes stream = EncodeFrame(
      {.type = WireFrameType::kRequest,
                   .correlation_id = 51,
                   .payload = EncodeWireRequest(MakeWireRequest(0))});
  Bytes garbage(kFrameHeaderBytes, 0xAB);  // bad magic right behind it
  stream.insert(stream.end(), garbage.begin(), garbage.end());
  ASSERT_TRUE(client.SendBytes(stream).ok());
  // Both the valid request's response and the framing-error reply arrive;
  // order is not guaranteed (one is worker-completed, one loop-immediate).
  bool got_ok = false, got_fault = false;
  for (int i = 0; i < 2; ++i) {
    auto reply = client.RecvAny();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->first == 51 && reply->second.status == WireStatus::kOk) {
      got_ok = true;
    }
    if (reply->first == 0 &&
        reply->second.status == WireStatus::kBadRequest) {
      got_fault = true;
    }
  }
  EXPECT_TRUE(got_ok);
  EXPECT_TRUE(got_fault);
  EXPECT_TRUE(WaitForStats(
      [](const FrontendStats& s) { return s.closed == 1; }));
  ExpectStillServing(port(), MakeWireRequest(0));
}

}  // namespace
}  // namespace grt
