// Frame codec tests: round-trips, incremental decode under arbitrary
// chunking, and the typed-fault contract — every malformed header class
// poisons the decoder with its specific FrameFault, costs at most one
// header of buffered memory, and leaves already-decoded frames
// retrievable.
#include <gtest/gtest.h>

#include <cstring>

#include "src/net/frame.h"

namespace grt {
namespace {

Frame MakeFrame(uint64_t corr, size_t payload_bytes) {
  Frame frame;
  frame.type = WireFrameType::kRequest;
  frame.correlation_id = corr;
  frame.payload.resize(payload_bytes);
  for (size_t i = 0; i < payload_bytes; ++i) {
    frame.payload[i] = static_cast<uint8_t>(i * 31 + corr);
  }
  return frame;
}

WireRequest SampleRequest() {
  WireRequest request;
  request.workload = "mnist";
  request.output_tensor = "probs";
  request.deadline_ms = 250;
  request.tensors["input"] = {1.0f, -2.5f, 3.25f};
  request.tensors["fc_w"] = {0.0f, 0.5f};
  for (size_t i = 0; i < request.digest.size(); ++i) {
    request.digest[i] = static_cast<uint8_t>(i + 1);
  }
  return request;
}

TEST(FrameCodec, HeaderLayoutIsStable) {
  Frame frame = MakeFrame(0x1122334455667788ull, 3);
  Bytes encoded = EncodeFrame(frame);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + 3);
  // Little-endian magic "GRTS" = 0x47525453 -> bytes 53 54 52 47.
  EXPECT_EQ(encoded[0], 0x53);
  EXPECT_EQ(encoded[1], 0x54);
  EXPECT_EQ(encoded[2], 0x52);
  EXPECT_EQ(encoded[3], 0x47);
  EXPECT_EQ(encoded[4], kFrameVersion);
  EXPECT_EQ(encoded[5], 0);
  EXPECT_EQ(encoded[6], static_cast<uint8_t>(WireFrameType::kRequest));
  EXPECT_EQ(encoded[7], 0);  // flags
  EXPECT_EQ(encoded[8], 3);  // payload_len LE
  EXPECT_EQ(encoded[12], 0x88);  // correlation id LE
  EXPECT_EQ(encoded[19], 0x11);
}

TEST(FrameCodec, RoundTripSingleFrame) {
  Frame frame = MakeFrame(42, 100);
  FrameDecoder decoder(1 << 16);
  ASSERT_TRUE(decoder.Append(EncodeFrame(frame)).ok());
  std::optional<Frame> out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, WireFrameType::kRequest);
  EXPECT_EQ(out->correlation_id, 42u);
  EXPECT_EQ(out->payload, frame.payload);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.FinishStream().ok());
  EXPECT_FALSE(decoder.poisoned());
}

TEST(FrameCodec, EmptyPayloadAndBackToBackFrames) {
  FrameDecoder decoder(1 << 16);
  Bytes stream;
  for (uint64_t corr = 0; corr < 5; ++corr) {
    Bytes one = EncodeFrame(MakeFrame(corr, corr * 7));  // first is empty
    stream.insert(stream.end(), one.begin(), one.end());
  }
  ASSERT_TRUE(decoder.Append(stream).ok());
  for (uint64_t corr = 0; corr < 5; ++corr) {
    std::optional<Frame> out = decoder.Next();
    ASSERT_TRUE(out.has_value()) << corr;
    EXPECT_EQ(out->correlation_id, corr);
    EXPECT_EQ(out->payload.size(), corr * 7);
  }
  EXPECT_FALSE(decoder.Next().has_value());
}

// Regression: a zero-payload frame whose header ends exactly at an
// Append chunk boundary must complete immediately — not sit buffered as
// a partial frame until the peer happens to send more bytes (a client
// sending only that frame would hang with no reply, and its EOF would
// miscount as a truncated stream).
TEST(FrameCodec, ZeroPayloadFrameAtChunkBoundaryCompletes) {
  Bytes lone = EncodeFrame(MakeFrame(9, 0));
  ASSERT_EQ(lone.size(), kFrameHeaderBytes);
  FrameDecoder whole(1 << 16);
  ASSERT_TRUE(whole.Append(lone).ok());
  std::optional<Frame> out = whole.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->correlation_id, 9u);
  EXPECT_TRUE(out->payload.empty());
  EXPECT_TRUE(whole.FinishStream().ok());  // nothing buffered at EOF

  // Dribbled one byte per Append: the frame exists the moment the last
  // header byte lands, with no trailing input to nudge it out.
  FrameDecoder dribble(1 << 16);
  for (size_t i = 0; i < lone.size(); ++i) {
    ASSERT_TRUE(dribble.Append(lone.data() + i, 1).ok());
  }
  ASSERT_TRUE(dribble.Next().has_value());
  EXPECT_TRUE(dribble.FinishStream().ok());
}

// The dribble contract: any chunking of the byte stream — down to one
// byte per Append — decodes to the identical frame sequence.
TEST(FrameCodec, DribbleEveryChunkSize) {
  Bytes stream;
  for (uint64_t corr = 0; corr < 3; ++corr) {
    Bytes one = EncodeFrame(MakeFrame(corr, 33 + corr));
    stream.insert(stream.end(), one.begin(), one.end());
  }
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameDecoder decoder(1 << 16);
    for (size_t pos = 0; pos < stream.size(); pos += chunk) {
      size_t n = std::min(chunk, stream.size() - pos);
      ASSERT_TRUE(decoder.Append(stream.data() + pos, n).ok());
    }
    for (uint64_t corr = 0; corr < 3; ++corr) {
      std::optional<Frame> out = decoder.Next();
      ASSERT_TRUE(out.has_value()) << "chunk=" << chunk << " corr=" << corr;
      EXPECT_EQ(out->correlation_id, corr);
      EXPECT_EQ(out->payload, MakeFrame(corr, 33 + corr).payload);
    }
    EXPECT_TRUE(decoder.FinishStream().ok());
  }
}

struct HeaderFaultCase {
  const char* name;
  size_t offset;
  uint8_t value;
  FrameFault fault;
};

TEST(FrameCodec, EachHeaderFaultIsTyped) {
  const HeaderFaultCase cases[] = {
      {"bad-magic", 0, 0xAA, FrameFault::kBadMagic},
      {"bad-version", 4, 0x7F, FrameFault::kBadVersion},
      {"bad-type", 6, 0x09, FrameFault::kBadType},
      // Bit 0 is the has-tenant flag (legal on v2 requests); bit 1 and up
      // stay reserved-must-be-zero.
      {"bad-flags", 7, 0x02, FrameFault::kBadFlags},
  };
  for (const HeaderFaultCase& c : cases) {
    Bytes encoded = EncodeFrame(MakeFrame(9, 16));
    encoded[c.offset] = c.value;
    FrameDecoder decoder(1 << 16);
    Status status = decoder.Append(encoded);
    EXPECT_FALSE(status.ok()) << c.name;
    EXPECT_EQ(decoder.fault(), c.fault) << c.name;
    EXPECT_TRUE(decoder.poisoned()) << c.name;
    // Poisoned decoders refuse everything afterwards.
    EXPECT_FALSE(decoder.Append(encoded).ok()) << c.name;
    EXPECT_FALSE(decoder.FinishStream().ok()) << c.name;
    EXPECT_FALSE(decoder.Next().has_value()) << c.name;
  }
}

TEST(FrameCodec, OversizedDeclarationRejectedAtHeader) {
  Frame frame = MakeFrame(1, 0);
  Bytes encoded = EncodeFrame(frame);
  uint32_t huge = 0xC0000000;  // 3 GB declared, zero sent
  std::memcpy(encoded.data() + 8, &huge, sizeof(huge));
  FrameDecoder decoder(1 << 20);
  Status status = decoder.Append(encoded.data(), kFrameHeaderBytes);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(decoder.fault(), FrameFault::kOversizedFrame);
  // The refusal cost one header of memory, not the declared 3 GB.
  EXPECT_LE(decoder.partial_bytes(), kFrameHeaderBytes);
}

TEST(FrameCodec, PayloadAtLimitIsAccepted) {
  FrameDecoder decoder(64);
  ASSERT_TRUE(decoder.Append(EncodeFrame(MakeFrame(5, 64))).ok());
  ASSERT_TRUE(decoder.Next().has_value());
  FrameDecoder strict(63);
  EXPECT_FALSE(strict.Append(EncodeFrame(MakeFrame(5, 64))).ok());
  EXPECT_EQ(strict.fault(), FrameFault::kOversizedFrame);
}

TEST(FrameCodec, TruncatedStreamFaultOnEofMidFrame) {
  for (size_t cut : {1u, 10u, 19u, 25u}) {  // mid-header and mid-payload
    Bytes encoded = EncodeFrame(MakeFrame(2, 16));
    FrameDecoder decoder(1 << 16);
    ASSERT_TRUE(decoder.Append(encoded.data(), cut).ok()) << cut;
    Status fin = decoder.FinishStream();
    EXPECT_FALSE(fin.ok()) << cut;
    EXPECT_EQ(decoder.fault(), FrameFault::kTruncatedStream) << cut;
  }
  // A clean boundary EOF is not a fault.
  Bytes encoded = EncodeFrame(MakeFrame(2, 16));
  FrameDecoder decoder(1 << 16);
  ASSERT_TRUE(decoder.Append(encoded).ok());
  EXPECT_TRUE(decoder.FinishStream().ok());
}

TEST(FrameCodec, CompletedFramesSurviveLaterFault) {
  Bytes good = EncodeFrame(MakeFrame(7, 8));
  Bytes bad = EncodeFrame(MakeFrame(8, 8));
  bad[0] = 0xAA;
  Bytes stream = good;
  stream.insert(stream.end(), bad.begin(), bad.end());
  FrameDecoder decoder(1 << 16);
  EXPECT_FALSE(decoder.Append(stream).ok());
  EXPECT_EQ(decoder.fault(), FrameFault::kBadMagic);
  // Nothing already decoded is lost — the frontend still dispatches it
  // (its reply may even flush before the connection dies).
  EXPECT_EQ(decoder.pending_frames(), 1u);
  std::optional<Frame> out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->correlation_id, 7u);
}

// ------------------------------------------------------------- payloads

TEST(WirePayload, RequestRoundTrip) {
  WireRequest request = SampleRequest();
  auto decoded = DecodeWireRequest(EncodeWireRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->workload, request.workload);
  EXPECT_EQ(decoded->digest, request.digest);
  EXPECT_EQ(decoded->output_tensor, request.output_tensor);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded->tensors, request.tensors);
  EXPECT_TRUE(decoded->has_digest());
}

TEST(WirePayload, UnpinnedRequestHasNoDigest) {
  WireRequest request = SampleRequest();
  request.digest = Sha256Digest{};
  auto decoded = DecodeWireRequest(EncodeWireRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->has_digest());
}

TEST(WirePayload, ResponseRoundTrip) {
  WireResponse response;
  response.status = WireStatus::kExpired;
  response.message = "deadline passed in queue";
  response.digest[3] = 0x42;
  response.output = {9.5f, -1.0f};
  response.queue_wait_ns = 12345;
  response.service_ns = 67890;
  auto decoded = DecodeWireResponse(EncodeWireResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->status, WireStatus::kExpired);
  EXPECT_EQ(decoded->message, response.message);
  EXPECT_EQ(decoded->digest, response.digest);
  EXPECT_EQ(decoded->output, response.output);
  EXPECT_EQ(decoded->queue_wait_ns, 12345);
  EXPECT_EQ(decoded->service_ns, 67890);
  EXPECT_FALSE(decoded->ok());
}

TEST(WirePayload, MalformedRequestsAreRejected) {
  // Truncation at every prefix length must fail cleanly, never crash or
  // accept.
  Bytes good = EncodeWireRequest(SampleRequest());
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes prefix(good.begin(), good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeWireRequest(prefix).ok()) << "cut=" << cut;
  }
  // Trailing garbage is rejected, not ignored.
  Bytes padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeWireRequest(padded).ok());
  // Empty workload.
  WireRequest nameless = SampleRequest();
  nameless.workload.clear();
  EXPECT_FALSE(DecodeWireRequest(EncodeWireRequest(nameless)).ok());
}

TEST(WirePayload, HostileTensorCountCannotForceAllocation) {
  // Hand-build a request declaring 2^31 floats in a tiny payload: the
  // decoder must bound-check against bytes present before allocating.
  ByteWriter w;
  w.PutString("mnist");
  Sha256Digest zero{};
  w.PutRaw(zero.data(), zero.size());
  w.PutString("out");
  w.PutI64(-1);
  w.PutU32(1);            // one tensor
  w.PutString("input");
  w.PutU32(0x80000000u);  // declared float count
  w.PutU32(0);            // but almost no bytes follow
  auto decoded = DecodeWireRequest(w.Take());
  EXPECT_FALSE(decoded.ok());
}

TEST(WirePayload, DuplicateTensorNameRejected) {
  ByteWriter w;
  w.PutString("mnist");
  Sha256Digest zero{};
  w.PutRaw(zero.data(), zero.size());
  w.PutString("out");
  w.PutI64(-1);
  w.PutU32(2);
  for (int i = 0; i < 2; ++i) {
    w.PutString("input");
    w.PutU32(1);
    float v = 1.0f;
    w.PutRaw(reinterpret_cast<const uint8_t*>(&v), sizeof(v));
  }
  auto decoded = DecodeWireRequest(w.Take());
  EXPECT_FALSE(decoded.ok());
}

TEST(WirePayload, UnknownResponseStatusRejected) {
  WireResponse response;
  Bytes encoded = EncodeWireResponse(response);
  encoded[0] = 0xEE;
  EXPECT_FALSE(DecodeWireResponse(encoded).ok());
  // kTenantThrottled (8) is the highest defined status; 9 is not a
  // status.
  encoded[0] = 9;
  EXPECT_FALSE(DecodeWireResponse(encoded).ok());
}

// --- Version-2 frames: legacy acceptance and the has-tenant flag. ---

TEST(FrameCodec, LegacyV1FrameStillDecodes) {
  // A v1 client predates the tenant flag entirely: same header layout,
  // version field 1, flags 0. It must keep decoding unchanged.
  Bytes encoded = EncodeFrame(MakeFrame(7, 24));
  encoded[4] = 1;  // version LE low byte (high byte already 0)
  FrameDecoder decoder(1 << 16);
  ASSERT_TRUE(decoder.Append(encoded).ok());
  std::optional<Frame> out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->correlation_id, 7u);
  EXPECT_FALSE(out->has_tenant());
  EXPECT_TRUE(decoder.FinishStream().ok());
}

TEST(FrameCodec, TenantFlagOnV1FrameFaults) {
  // v1 never defined any flag; the tenant bit is a v2 construct and a v1
  // frame carrying it is malformed.
  Bytes encoded = EncodeFrame(MakeFrame(7, 8));
  encoded[4] = 1;
  encoded[7] = kFrameFlagHasTenant;
  FrameDecoder decoder(1 << 16);
  EXPECT_FALSE(decoder.Append(encoded).ok());
  EXPECT_EQ(decoder.fault(), FrameFault::kBadFlags);
}

TEST(FrameCodec, TenantFlagOnResponseFaults) {
  // Only requests carry tenant identity; a response frame with the flag
  // set is a server bug or an attack, not a protocol extension.
  Frame frame = MakeFrame(3, 8);
  frame.type = WireFrameType::kResponse;
  frame.flags = kFrameFlagHasTenant;
  Bytes encoded = EncodeFrame(frame);
  FrameDecoder decoder(1 << 16);
  EXPECT_FALSE(decoder.Append(encoded).ok());
  EXPECT_EQ(decoder.fault(), FrameFault::kBadFlags);
}

TEST(FrameCodec, TenantFlagOnRequestDecodes) {
  Frame frame = MakeFrame(11, 16);
  frame.flags = kFrameFlagHasTenant;
  FrameDecoder decoder(1 << 16);
  ASSERT_TRUE(decoder.Append(EncodeFrame(frame)).ok());
  std::optional<Frame> out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->has_tenant());
  EXPECT_EQ(out->payload, frame.payload);
}

TEST(WirePayload, TenantRoundTrip) {
  WireRequest request = SampleRequest();
  request.tenant = "acme";
  EXPECT_EQ(WireRequestFlags(request), kFrameFlagHasTenant);
  Bytes encoded = EncodeWireRequest(request);
  auto decoded = DecodeWireRequest(encoded, /*has_tenant=*/true);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tenant, "acme");
  EXPECT_EQ(decoded->workload, request.workload);
  EXPECT_EQ(decoded->tensors, request.tensors);
  // The flag and the payload must agree: without the flag the trailing
  // tenant field is trailing garbage, and with the flag but no tenant
  // bytes the payload is truncated.
  EXPECT_FALSE(DecodeWireRequest(encoded, /*has_tenant=*/false).ok());
  Bytes bare = EncodeWireRequest(SampleRequest());
  EXPECT_FALSE(DecodeWireRequest(bare, /*has_tenant=*/true).ok());
}

TEST(WirePayload, TenantlessRequestEncodesV1Bytes) {
  // A request without a tenant encodes the exact v1 payload layout, and
  // WireRequestFlags asks for no header flag — old servers keep parsing
  // new clients that don't use tenancy.
  WireRequest request = SampleRequest();
  EXPECT_EQ(WireRequestFlags(request), 0);
  auto decoded = DecodeWireRequest(EncodeWireRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tenant.empty());
}

TEST(WirePayload, ThrottledResponseStatusRoundTrips) {
  WireResponse response;
  response.status = WireStatus::kTenantThrottled;
  response.message = "tenant over rate";
  auto decoded = DecodeWireResponse(EncodeWireResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->status, WireStatus::kTenantThrottled);
  EXPECT_EQ(WireStatusName(decoded->status), "TENANT_THROTTLED");
}

}  // namespace
}  // namespace grt
