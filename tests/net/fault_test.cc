// FaultyChannel / FaultPlan unit tests: deterministic fate schedules,
// disconnect indexing, corruption copies, and the Transmit extension +
// retransmission counters on the base channel.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/channel.h"
#include "src/net/fault.h"

namespace grt {
namespace {

TEST(FaultPlan, NoneIsDisabled) {
  EXPECT_FALSE(FaultPlan::None().enabled());
  FaultPlan p;
  p.drop_prob = 0.1;
  EXPECT_TRUE(p.enabled());
  FaultPlan d;
  d.disconnect_at_tx = {10};
  EXPECT_TRUE(d.enabled());
}

TEST(FaultPlan, FromSeedGivesEveryClassANonzeroRate) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan p = FaultPlan::FromSeed(seed);
    EXPECT_TRUE(p.enabled());
    EXPECT_GT(p.drop_prob, 0.0);
    EXPECT_LT(p.drop_prob, 0.2);
    EXPECT_GT(p.corrupt_prob, 0.0);
    EXPECT_GT(p.duplicate_prob, 0.0);
    EXPECT_GT(p.spike_prob, 0.0);
    EXPECT_GT(p.spike_latency, 0);
    EXPECT_LE(p.disconnect_at_tx.size(), 2u);
  }
}

TEST(FaultPlan, FromSeedIsDeterministic) {
  FaultPlan a = FaultPlan::FromSeed(7);
  FaultPlan b = FaultPlan::FromSeed(7);
  EXPECT_EQ(a.drop_prob, b.drop_prob);
  EXPECT_EQ(a.corrupt_prob, b.corrupt_prob);
  EXPECT_EQ(a.spike_latency, b.spike_latency);
  EXPECT_EQ(a.disconnect_at_tx, b.disconnect_at_tx);
}

TEST(FaultyChannel, FateSequenceIsDeterministic) {
  Timeline cloud("cloud"), client("client");
  NetChannel base(WifiConditions(), &cloud, &client);
  FaultPlan plan = FaultPlan::FromSeed(5);
  FaultyChannel a(&base, plan), b(&base, plan);
  for (int i = 0; i < 500; ++i) {
    TxOutcome oa = a.NextTx();
    TxOutcome ob = b.NextTx();
    EXPECT_EQ(oa.fate, ob.fate) << "tx " << i;
    EXPECT_EQ(oa.duplicate, ob.duplicate) << "tx " << i;
    EXPECT_EQ(oa.extra_latency, ob.extra_latency) << "tx " << i;
    if (a.link_down()) {
      a.Reconnect();
      b.Reconnect();
    }
  }
  EXPECT_EQ(a.stats().transmissions, b.stats().transmissions);
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_GT(a.stats().injected(), 0u);
}

TEST(FaultyChannel, DisconnectFiresAtTheChosenIndexAndLatches) {
  Timeline cloud("cloud"), client("client");
  NetChannel base(WifiConditions(), &cloud, &client);
  FaultPlan plan;
  plan.seed = 1;
  plan.disconnect_at_tx = {3};
  FaultyChannel ch(&base, plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(ch.NextTx().fate, TxFate::kLinkDown);
  }
  // Transmission index 3 reached: the link goes down and STAYS down
  // (without consuming transmissions) until Reconnect.
  EXPECT_EQ(ch.NextTx().fate, TxFate::kLinkDown);
  EXPECT_TRUE(ch.link_down());
  EXPECT_EQ(ch.NextTx().fate, TxFate::kLinkDown);
  EXPECT_EQ(ch.stats().transmissions, 3u);
  EXPECT_EQ(ch.stats().disconnects, 1u);
  ch.Reconnect();
  EXPECT_FALSE(ch.link_down());
  EXPECT_NE(ch.NextTx().fate, TxFate::kLinkDown);
  EXPECT_EQ(ch.stats().disconnects, 1u);  // counted once
}

TEST(FaultyChannel, ProbabilitiesRoughlyMatchOverManyDraws) {
  Timeline cloud("cloud"), client("client");
  NetChannel base(WifiConditions(), &cloud, &client);
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_prob = 0.2;
  plan.corrupt_prob = 0.1;
  plan.duplicate_prob = 0.1;
  FaultyChannel ch(&base, plan);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ch.NextTx();
  }
  // Counters reflect the winning fate (drop shadows corrupt shadows
  // duplicate): expected rates are p_drop, (1-p_drop)*p_corrupt, and
  // (1-p_drop)*(1-p_corrupt)*p_dup.
  EXPECT_NEAR(static_cast<double>(ch.stats().drops) / kDraws, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(ch.stats().corruptions) / kDraws, 0.08,
              0.02);
  EXPECT_NEAR(static_cast<double>(ch.stats().duplicates) / kDraws, 0.072,
              0.02);
}

TEST(FaultyChannel, CorruptCopyDiffersAndPreservesLength) {
  Timeline cloud("cloud"), client("client");
  NetChannel base(WifiConditions(), &cloud, &client);
  FaultyChannel ch(&base, FaultPlan::FromSeed(3));
  Bytes frame(128);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<uint8_t>(i);
  }
  Bytes corrupted = ch.CorruptCopy(frame);
  EXPECT_EQ(corrupted.size(), frame.size());
  EXPECT_NE(corrupted, frame);
  // Empty frames still come back observably corrupted.
  EXPECT_FALSE(ch.CorruptCopy(Bytes{}).empty());
}

TEST(Channel, TransmitSupportsLateLaunchAndExtraLatency) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  // A retransmission launched at t=1s (sender clock still at 0) with a
  // 50 ms spike arrives after propagation + spike, and only the receiver
  // advances.
  TimePoint arrival = ch.Transmit(kCloudEnd, kSecond, 100,
                                  50 * kMillisecond, /*advance_receiver=*/true);
  EXPECT_GE(arrival, kSecond + 50 * kMillisecond);
  EXPECT_EQ(client.now(), arrival);
  EXPECT_EQ(cloud.now(), 0);
  EXPECT_EQ(ch.stats().messages[kCloudEnd], 1u);

  // advance_receiver=false only accounts the traffic.
  TimePoint ghost = ch.Transmit(kCloudEnd, kSecond, 100, 0, false);
  EXPECT_LT(ghost, arrival);
  EXPECT_EQ(client.now(), arrival);
}

TEST(Channel, RetransmitAndDupDropCountersAccumulate) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  EXPECT_EQ(ch.stats().retransmits, 0u);
  EXPECT_EQ(ch.stats().dup_drops, 0u);
  ch.NoteRetransmit();
  ch.NoteRetransmit();
  ch.NoteDupDrop();
  EXPECT_EQ(ch.stats().retransmits, 2u);
  EXPECT_EQ(ch.stats().dup_drops, 1u);
}

}  // namespace
}  // namespace grt
