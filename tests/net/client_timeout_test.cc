// SO_RCVTIMEO behavior of ReplayClient::Recv when the server stalls
// mid-frame: the timeout must surface as a typed kTimeout (never a hang,
// never a poisoned stream), the member decoder must keep the partial
// header/payload bytes it buffered, and the next Recv must resume the
// same frame exactly where the stream stalled.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/net/frame.h"
#include "src/serve/client.h"

namespace grt {
namespace {

// Minimal raw loopback server: the test scripts exactly which bytes hit
// the client's socket and when.
class RawServer {
 public:
  ~RawServer() {
    CloseConn();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
    }
  }

  bool Listen() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
  }

  uint16_t port() const { return port_; }

  bool Accept() {
    conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd_ < 0) {
      return false;
    }
    int one = 1;
    ::setsockopt(conn_fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool SendBytes(const uint8_t* data, size_t n) {
    size_t off = 0;
    while (off < n) {
      ssize_t sent = ::send(conn_fd_, data + off, n - off, MSG_NOSIGNAL);
      if (sent <= 0) {
        return false;
      }
      off += static_cast<size_t>(sent);
    }
    return true;
  }

  bool SendSlice(const Bytes& bytes, size_t begin, size_t end) {
    return SendBytes(bytes.data() + begin, end - begin);
  }

  void CloseConn() {
    if (conn_fd_ >= 0) {
      ::close(conn_fd_);
      conn_fd_ = -1;
    }
  }

 private:
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  uint16_t port_ = 0;
};

Bytes MakeResponseFrame(uint64_t correlation_id, const std::string& message) {
  WireResponse response;
  response.status = WireStatus::kOk;
  response.message = message;
  response.output = {1.0f, 2.0f, 3.0f};
  Frame frame;
  frame.type = WireFrameType::kResponse;
  frame.correlation_id = correlation_id;
  frame.payload = EncodeWireResponse(response);
  return EncodeFrame(frame);
}

constexpr int64_t kRecvTimeoutMs = 200;

TEST(ClientTimeout, QuietSocketTimesOutWithoutPartialState) {
  RawServer server;
  ASSERT_TRUE(server.Listen());
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), kRecvTimeoutMs).ok());
  ASSERT_TRUE(server.Accept());

  auto r = client.RecvAny();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  // Nothing was buffered, so the message must not claim mid-frame state.
  EXPECT_EQ(r.status().ToString().find("mid-frame"), std::string::npos)
      << r.status().ToString();

  // The connection is still perfectly usable after the timeout.
  Bytes frame = MakeResponseFrame(9, "late");
  ASSERT_TRUE(server.SendSlice(frame, 0, frame.size()));
  auto ok = client.RecvAny();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->first, 9u);
  EXPECT_EQ(ok->second.message, "late");
}

TEST(ClientTimeout, DribbleThenStallMidHeaderResumesSameFrame) {
  RawServer server;
  ASSERT_TRUE(server.Listen());
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), kRecvTimeoutMs).ok());
  ASSERT_TRUE(server.Accept());

  Bytes first = MakeResponseFrame(1, "first");
  Bytes second = MakeResponseFrame(2, "second");

  // 7 bytes: magic + version + one byte of type — a torn header.
  ASSERT_TRUE(server.SendSlice(first, 0, 7));
  auto stalled = client.RecvAny();
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.status().code(), StatusCode::kTimeout);
  // The typed timeout names the buffered byte count so callers can tell a
  // stalled mid-frame send from a quiet server.
  EXPECT_NE(stalled.status().ToString().find("mid-frame"), std::string::npos)
      << stalled.status().ToString();
  EXPECT_NE(stalled.status().ToString().find("7 bytes"), std::string::npos)
      << stalled.status().ToString();

  // Resume: remainder of frame one plus all of frame two. The decoder
  // must stitch the torn header back together, not restart at a bad
  // offset (which would fault on magic).
  ASSERT_TRUE(server.SendSlice(first, 7, first.size()));
  ASSERT_TRUE(server.SendSlice(second, 0, second.size()));
  auto a = client.RecvAny();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->first, 1u);
  EXPECT_EQ(a->second.message, "first");
  auto b = client.RecvAny();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->first, 2u);
  EXPECT_EQ(b->second.message, "second");
}

TEST(ClientTimeout, StallMidPayloadPreservesDecodedPrefix) {
  RawServer server;
  ASSERT_TRUE(server.Listen());
  ReplayClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), kRecvTimeoutMs).ok());
  ASSERT_TRUE(server.Accept());

  Bytes frame = MakeResponseFrame(7, "payload-stall");
  ASSERT_GT(frame.size(), kFrameHeaderBytes + 4);
  // Full header plus a few payload bytes, then silence.
  size_t cut = kFrameHeaderBytes + 4;
  ASSERT_TRUE(server.SendSlice(frame, 0, cut));
  auto stalled = client.RecvAny();
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.status().code(), StatusCode::kTimeout);
  EXPECT_NE(stalled.status().ToString().find("mid-frame"), std::string::npos)
      << stalled.status().ToString();

  // Repeated timeouts with zero progress stay non-destructive too.
  auto stalled_again = client.RecvAny();
  ASSERT_FALSE(stalled_again.ok());
  EXPECT_EQ(stalled_again.status().code(), StatusCode::kTimeout);

  ASSERT_TRUE(server.SendSlice(frame, cut, frame.size()));
  auto done = client.RecvAny();
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->first, 7u);
  EXPECT_EQ(done->second.message, "payload-stall");
  ASSERT_EQ(done->second.output.size(), 3u);
  EXPECT_EQ(done->second.output[0], 1.0f);
}

}  // namespace
}  // namespace grt
