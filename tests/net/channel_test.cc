// Virtual-time network channel tests: latency math, blocking semantics,
// asynchronous sends, and statistics.
#include <gtest/gtest.h>

#include "src/net/channel.h"

namespace grt {
namespace {

TEST(Channel, ConditionsMatchPaper) {
  NetworkConditions wifi = WifiConditions();
  EXPECT_EQ(wifi.rtt, 20 * kMillisecond);
  EXPECT_DOUBLE_EQ(wifi.bandwidth_bps, 80e6);
  NetworkConditions cell = CellularConditions();
  EXPECT_EQ(cell.rtt, 50 * kMillisecond);
  EXPECT_DOUBLE_EQ(cell.bandwidth_bps, 40e6);
}

TEST(Channel, OneWayLatencyIncludesSerialization) {
  NetworkConditions wifi = WifiConditions();
  // 1 MB at 80 Mbps = 0.1 s serialization + 10 ms propagation.
  Duration d = wifi.OneWayLatency(1000000);
  EXPECT_NEAR(ToSeconds(d), 0.11, 0.001);
}

TEST(Channel, SendOneWayAdvancesOnlyReceiver) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  cloud.Advance(kSecond);
  TimePoint arrival = ch.SendOneWay(kCloudEnd, 100);
  EXPECT_GT(arrival, cloud.now());
  EXPECT_EQ(client.now(), arrival);
  EXPECT_EQ(cloud.now(), kSecond);  // sender unaffected
  EXPECT_EQ(ch.stats().messages[kCloudEnd], 1u);
  EXPECT_EQ(ch.stats().blocking_rtts, 0u);
}

TEST(Channel, ReceiverNeverMovesBackwards) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  client.Advance(10 * kSecond);  // client far ahead
  ch.SendOneWay(kCloudEnd, 100);
  EXPECT_EQ(client.now(), 10 * kSecond);
}

TEST(Channel, BlockingRoundTripAdvancesSenderPastRtt) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  TimePoint t0 = cloud.now();
  ch.BlockingRoundTrip(kCloudEnd, 64, 64, /*remote_compute=*/kMillisecond);
  EXPECT_GE(cloud.now() - t0, 20 * kMillisecond + kMillisecond);
  EXPECT_EQ(ch.stats().blocking_rtts, 1u);
}

TEST(Channel, SendNoAdvanceLeavesBothClocks) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  TimePoint arrival = ch.SendNoAdvance(kClientEnd, 64);
  EXPECT_GT(arrival, client.now());
  EXPECT_EQ(cloud.now(), 0);
  EXPECT_EQ(client.now(), 0);
  EXPECT_EQ(ch.stats().messages[kClientEnd], 1u);
}

TEST(Channel, AirtimeAccumulatesOnBothEnds) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  ch.SendOneWay(kCloudEnd, 1000000);
  EXPECT_GT(ch.stats().airtime[kCloudEnd], 0);
  EXPECT_GT(ch.stats().airtime[kClientEnd], 0);
}

TEST(Channel, WireOverheadCharged) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  ch.SendOneWay(kCloudEnd, 0);  // empty payload still costs the envelope
  EXPECT_EQ(ch.stats().bytes[kCloudEnd], kWireOverheadBytes);
}

TEST(Channel, CellularSlowerThanWifi) {
  Timeline c1("a"), c2("b"), c3("c"), c4("d");
  NetChannel wifi(WifiConditions(), &c1, &c2);
  NetChannel cell(CellularConditions(), &c3, &c4);
  wifi.BlockingRoundTrip(kCloudEnd, 128, 128);
  cell.BlockingRoundTrip(kCloudEnd, 128, 128);
  EXPECT_GT(c3.now(), c1.now());
}

TEST(Channel, StatsReset) {
  Timeline cloud("cloud"), client("client");
  NetChannel ch(WifiConditions(), &cloud, &client);
  ch.BlockingRoundTrip(kCloudEnd, 10, 10);
  ch.ResetStats();
  EXPECT_EQ(ch.stats().blocking_rtts, 0u);
  EXPECT_EQ(ch.stats().total_bytes(), 0u);
}

}  // namespace
}  // namespace grt
