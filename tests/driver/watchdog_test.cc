// Job-hang watchdog tests: a job that exceeds its deadline is hard-stopped
// and the device remains usable afterwards.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/hw/job_format.h"

namespace grt {
namespace {

TEST(Watchdog, HungJobIsHardStoppedAndDeviceRecovers) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  DriverPolicy policy;
  policy.irq_timeout = 60 * kMicrosecond;  // tight deadline
  NativeStack stack(&device, World::kNormal, policy);
  ASSERT_TRUE(stack.BringUp().ok());
  GpuRuntime& rt = stack.runtime();

  // A GEMM large enough to miss the 60us deadline (~0.3 ms of GPU time).
  const uint32_t n = 128;
  GpuBuffer a = rt.AllocBuffer(n * n, RegionUsage::kDataInput).value();
  GpuBuffer b = rt.AllocBuffer(n * n, RegionUsage::kDataInput).value();
  GpuBuffer c = rt.AllocBuffer(n * n, RegionUsage::kDataOutput).value();
  GpuBuffer small = rt.AllocBuffer(8, RegionUsage::kDataOutput).value();
  ASSERT_TRUE(rt.Finalize().ok());
  ASSERT_TRUE(rt.Upload(a, std::vector<float>(n * n, 1.0f)).ok());
  ASSERT_TRUE(rt.Upload(b, std::vector<float>(n * n, 1.0f)).ok());

  JobDescriptor big;
  big.op = GpuOp::kGemm;
  big.input_va[0] = a.va;
  big.aux_va = b.va;
  big.output_va = c.va;
  big.params = {n, n, n, 0, 0, 0, 0, 0};
  auto hung = rt.RunJob(big);
  ASSERT_FALSE(hung.ok());
  EXPECT_EQ(hung.status().code(), StatusCode::kTimeout);
  EXPECT_NE(hung.status().message().find("watchdog"), std::string::npos);

  // The hard stop scrubbed the slot: a small job still runs to completion
  // on the same driver instance.
  device.timeline().Advance(kMillisecond);  // drain leftover transitions
  JobDescriptor tiny;
  tiny.op = GpuOp::kFill;
  float v = 1.0f;
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  tiny.params = {8, bits, 0, 0, 0, 0, 0, 0};
  tiny.output_va = small.va;
  auto ok = rt.RunJob(tiny);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->js_status, kJsStatusDone);
  EXPECT_FLOAT_EQ(rt.Download(small).value()[7], 1.0f);
}

TEST(Watchdog, GenerousDeadlineDoesNotTrigger) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  NativeStack stack(&device);  // default 30s (virtual) deadline
  ASSERT_TRUE(stack.BringUp().ok());
  GpuRuntime& rt = stack.runtime();
  const uint32_t n = 128;
  GpuBuffer a = rt.AllocBuffer(n * n, RegionUsage::kDataInput).value();
  GpuBuffer b = rt.AllocBuffer(n * n, RegionUsage::kDataInput).value();
  GpuBuffer c = rt.AllocBuffer(n * n, RegionUsage::kDataOutput).value();
  ASSERT_TRUE(rt.Finalize().ok());
  JobDescriptor big;
  big.op = GpuOp::kGemm;
  big.input_va[0] = a.va;
  big.aux_va = b.va;
  big.output_va = c.va;
  big.params = {n, n, n, 0, 0, 0, 0, 0};
  EXPECT_TRUE(rt.RunJob(big).ok());
}

}  // namespace
}  // namespace grt
