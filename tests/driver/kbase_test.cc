// Kernel driver tests over the DirectBus: probe/bind, hardware init,
// region & address-space management, job execution, fault reporting, and
// the driver-policy knobs.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/hw/job_format.h"

namespace grt {
namespace {

class KbaseTest : public ::testing::Test {
 protected:
  KbaseTest() : device_(SkuId::kMaliG71Mp8), stack_(&device_) {}

  void BringUp() { ASSERT_TRUE(stack_.BringUp().ok()); }

  ClientDevice device_;
  NativeStack stack_;
};

TEST_F(KbaseTest, ProbeBindsAndDiscoversSku) {
  BringUp();
  EXPECT_TRUE(stack_.driver().probed());
  EXPECT_EQ(stack_.driver().sku().id, SkuId::kMaliG71Mp8);
}

TEST_F(KbaseTest, ProbeRejectsForeignDeviceTree) {
  DeviceTree empty;
  EXPECT_FALSE(stack_.driver().Probe(empty).ok());
  // A devicetree for a different family's GPU also fails to bind usefully:
  // the driver probes GPU_ID and identifies the real hardware, so a G76
  // tree on a G71 device still resolves to the G71 (hardware wins).
}

TEST_F(KbaseTest, InitBeforeProbeFails) {
  EXPECT_EQ(stack_.driver().InitHardware().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(KbaseTest, InitPowersL2AndTiler) {
  BringUp();
  EXPECT_EQ(device_.gpu().ReadRegister(kRegL2ReadyLo).value(), 1u);
  EXPECT_EQ(device_.gpu().ReadRegister(kRegTilerReadyLo).value(), 1u);
  // Shader cores stay gated until a job needs them.
  EXPECT_EQ(device_.gpu().ReadRegister(kRegShaderReadyLo).value(), 0u);
}

TEST_F(KbaseTest, RegionLifecycle) {
  BringUp();
  KbaseDriver& drv = stack_.driver();
  uint64_t va = drv.AllocRegion(3 * kPageSize + 100,
                                RegionUsage::kDataScratch)
                    .value();
  EXPECT_EQ(va & kPageMask, 0u);
  const GpuRegion& region = drv.regions().at(va);
  EXPECT_EQ(region.n_pages, 4u);  // rounded up
  EXPECT_EQ(region.pages.size(), 4u);

  // CPU write/read through the region.
  std::vector<float> data = {1.5f, 2.5f, 3.5f};
  ASSERT_TRUE(drv.CpuWrite(va + 8, data.data(), 12).ok());
  std::vector<float> back(3);
  ASSERT_TRUE(drv.CpuRead(va + 8, back.data(), 12).ok());
  EXPECT_EQ(back, data);

  // VaToPa resolves interior addresses.
  EXPECT_EQ(drv.VaToPa(va).value(), region.pages[0]);
  EXPECT_EQ(drv.VaToPa(va + kPageSize + 10).value(), region.pages[1] + 10);
  EXPECT_FALSE(drv.VaToPa(va + 64 * kPageSize).ok());

  ASSERT_TRUE(drv.FreeRegion(va).ok());
  EXPECT_FALSE(drv.FreeRegion(va).ok());
  EXPECT_FALSE(drv.CpuRead(va, back.data(), 4).ok());
}

TEST_F(KbaseTest, MetastateClassification) {
  BringUp();
  KbaseDriver& drv = stack_.driver();
  uint64_t shader =
      drv.AllocRegion(kPageSize, RegionUsage::kShaderCode).value();
  uint64_t commands =
      drv.AllocRegion(kPageSize, RegionUsage::kCommands).value();
  uint64_t data = drv.AllocRegion(kPageSize, RegionUsage::kDataScratch)
                      .value();

  std::vector<uint64_t> meta = drv.MetastatePages();
  std::vector<uint64_t> all = drv.AllGpuPages();
  auto contains = [](const std::vector<uint64_t>& v, uint64_t x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  uint64_t shader_pa = drv.VaToPa(shader).value();
  uint64_t commands_pa = drv.VaToPa(commands).value();
  uint64_t data_pa = drv.VaToPa(data).value();
  EXPECT_TRUE(contains(meta, shader_pa));
  EXPECT_TRUE(contains(meta, commands_pa));
  EXPECT_FALSE(contains(meta, data_pa));
  EXPECT_TRUE(contains(all, data_pa));
  // Page tables are metastate too.
  EXPECT_TRUE(contains(meta, drv.pt_root()));
  // Meta is a subset of all.
  for (uint64_t pa : meta) {
    EXPECT_TRUE(contains(all, pa));
  }
}

TEST_F(KbaseTest, RunJobChainEndToEnd) {
  BringUp();
  GpuRuntime& rt = stack_.runtime();
  GpuBuffer out = rt.AllocBuffer(16, RegionUsage::kDataOutput).value();
  ASSERT_TRUE(rt.Finalize().ok());

  JobDescriptor d;
  d.op = GpuOp::kFill;
  float v = 2.5f;
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  d.params = {16, bits, 0, 0, 0, 0, 0, 0};
  d.output_va = out.va;
  auto stats = rt.RunJob(d);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->js_status, kJsStatusDone);
  EXPECT_FALSE(stats->faulted);
  auto result = rt.Download(out);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ(result.value()[15], 2.5f);
  EXPECT_EQ(device_.gpu().jobs_completed(), 1u);
  // Power-gating policy: the power-off is fire-and-forget; once the
  // transition completes the shader cores are off again.
  device_.timeline().Advance(kMillisecond);
  EXPECT_EQ(device_.gpu().ReadRegister(kRegShaderReadyLo).value(), 0u);
}

TEST_F(KbaseTest, FaultingJobReportsMmuFault) {
  BringUp();
  GpuRuntime& rt = stack_.runtime();
  GpuBuffer in = rt.AllocBuffer(16, RegionUsage::kDataInput).value();
  ASSERT_TRUE(rt.Finalize().ok());

  JobDescriptor d;
  d.op = GpuOp::kCopy;
  d.params = {16, 0, 0, 0, 0, 0, 0, 0};
  d.input_va[0] = in.va;
  d.output_va = 0x66660000;  // unmapped VA
  auto stats = rt.RunJob(d);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeviceFault);
}

TEST_F(KbaseTest, QueueLengthOneEnforced) {
  BringUp();
  EXPECT_EQ(stack_.driver().policy().job_queue_length, 1);
}

TEST_F(KbaseTest, ShutdownPowersEverythingDown) {
  BringUp();
  ASSERT_TRUE(stack_.driver().Shutdown().ok());
  device_.timeline().Advance(kMillisecond);
  EXPECT_FALSE(device_.gpu().AnyCoresPowered());
}

TEST(KbasePolicy, NoPowerGatingKeepsCoresOn) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  DriverPolicy policy;
  policy.power_gate_per_job = false;
  NativeStack stack(&device, World::kNormal, policy);
  ASSERT_TRUE(stack.BringUp().ok());
  // Jobs fail without powered shader cores when nothing powers them...
  GpuBuffer out =
      stack.runtime().AllocBuffer(4, RegionUsage::kDataOutput).value();
  ASSERT_TRUE(stack.runtime().Finalize().ok());
  JobDescriptor d;
  d.op = GpuOp::kFill;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  d.output_va = out.va;
  EXPECT_FALSE(stack.runtime().RunJob(d).ok());
}

TEST(KbaseMultiSku, DriverBindsEverySkuInRegistry) {
  for (const GpuSku& sku : AllSkus()) {
    ClientDevice device(sku.id);
    NativeStack stack(&device);
    ASSERT_TRUE(stack.BringUp().ok()) << sku.name;
    EXPECT_EQ(stack.driver().sku().id, sku.id);
  }
}

}  // namespace
}  // namespace grt
