// Symbolic register value tests: expression algebra, constant folding,
// resolution, and speculation taint propagation.
#include <gtest/gtest.h>

#include "src/driver/regvalue.h"

namespace grt {
namespace {

SymNodePtr Resolved(uint64_t id, uint32_t value, bool speculative = false) {
  SymNodePtr n = MakeReadNode(id, 0x100);
  n->resolved = true;
  n->value = value;
  n->speculative = speculative;
  return n;
}

TEST(SymExpr, ConstEval) {
  EXPECT_EQ(EvalSym(MakeConstNode(42)).value(), 42u);
  EXPECT_TRUE(IsConcreteSym(MakeConstNode(0)));
  EXPECT_FALSE(IsSpeculativeSym(MakeConstNode(0)));
}

TEST(SymExpr, UnresolvedReadFailsEval) {
  SymNodePtr read = MakeReadNode(1, 0x100);
  EXPECT_FALSE(EvalSym(read).ok());
  EXPECT_FALSE(IsConcreteSym(read));
  read->resolved = true;
  read->value = 7;
  EXPECT_EQ(EvalSym(read).value(), 7u);
}

TEST(SymExpr, OperatorsEvaluate) {
  SymNodePtr a = Resolved(1, 0xF0);
  SymNodePtr b = Resolved(2, 0x0F);
  EXPECT_EQ(EvalSym(MakeOpNode(SymOp::kOr, a, b)).value(), 0xFFu);
  EXPECT_EQ(EvalSym(MakeOpNode(SymOp::kAnd, a, b)).value(), 0x00u);
  EXPECT_EQ(EvalSym(MakeOpNode(SymOp::kXor, a, b)).value(), 0xFFu);
  EXPECT_EQ(EvalSym(MakeOpNode(SymOp::kAdd, a, b)).value(), 0xFFu);
  EXPECT_EQ(
      EvalSym(MakeOpNode(SymOp::kShl, a, MakeConstNode(4))).value(),
      0xF00u);
  EXPECT_EQ(
      EvalSym(MakeOpNode(SymOp::kShr, a, MakeConstNode(4))).value(),
      0x0Fu);
  EXPECT_EQ(
      EvalSym(MakeOpNode(SymOp::kShl, a, MakeConstNode(40))).value(), 0u);
}

TEST(SymExpr, SpeculationTaintPropagates) {
  SymNodePtr spec = Resolved(1, 5, /*speculative=*/true);
  SymNodePtr clean = Resolved(2, 6);
  SymNodePtr expr = MakeOpNode(SymOp::kAdd, spec, clean);
  EXPECT_TRUE(IsSpeculativeSym(expr));
  spec->speculative = false;  // validation confirms the prediction
  EXPECT_FALSE(IsSpeculativeSym(expr));
}

TEST(SymExpr, ToStringRendersStructure) {
  SymNodePtr read = MakeReadNode(3, 0x100);
  std::string s =
      SymToString(MakeOpNode(SymOp::kOr, read, MakeConstNode(0x10)));
  EXPECT_NE(s.find("S3"), std::string::npos);
  EXPECT_NE(s.find("0x10"), std::string::npos);
  EXPECT_NE(s.find("|"), std::string::npos);
}

TEST(RegValue, ConcreteArithmeticFolds) {
  RegValue a(0xF0);
  RegValue b = (a | 0x0F) & 0xFF;
  // Folded to a constant: no bus needed for Get().
  EXPECT_TRUE(b.IsConcrete());
  EXPECT_EQ(b.node()->op, SymOp::kConst);
  EXPECT_EQ(b.Get(), 0xFFu);
  EXPECT_EQ((~RegValue(0)).Get(), 0xFFFFFFFFu);
  EXPECT_EQ((RegValue(1) << 4).Get(), 16u);
  EXPECT_EQ((RegValue(16) >> 4).Get(), 1u);
  EXPECT_EQ((RegValue(3) + RegValue(4)).Get(), 7u);
  EXPECT_EQ((RegValue(0b1100) ^ RegValue(0b1010)).Get(), 0b0110u);
}

TEST(RegValue, SymbolicExpressionPreserved) {
  // Listing 1(a): quirk |= bit over an unresolved read must stay symbolic.
  SymNodePtr read = MakeReadNode(9, 0x100);
  RegValue v(read, nullptr);
  RegValue expr = v | 0x10u;
  EXPECT_FALSE(expr.IsConcrete());
  read->resolved = true;
  read->value = 0x03;
  EXPECT_TRUE(expr.IsConcrete());
  EXPECT_EQ(EvalSym(expr.node()).value(), 0x13u);
}

}  // namespace
}  // namespace grt
