// Kernel-services and log-infrastructure tests.
#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/driver/kernel.h"
#include "src/harness/rig.h"

namespace grt {
namespace {

// A bus stub that records kernel events and delays.
class EventBus : public GpuBus {
 public:
  RegValue ReadReg(uint32_t offset, const char*) override {
    SymNodePtr n = MakeReadNode(1, offset);
    n->resolved = true;
    return RegValue(n, this);
  }
  void WriteReg(uint32_t, const RegValue&, const char*) override {}
  uint32_t Force(const SymNodePtr& node) override {
    return EvalSym(node).value_or(0);
  }
  PollResult Poll(uint32_t, uint32_t, uint32_t, int, Duration,
                  const char*) override {
    return PollResult{};
  }
  void Delay(Duration d) override { delayed += d; }
  void KernelApi(KernelEvent ev) override { events.push_back(ev); }
  Result<IrqStatus> WaitForIrq(Duration) override {
    return Timeout("stub");
  }
  void SetContext(DriverContext) override {}
  void EnterHotFunction(const char*) override {}
  void LeaveHotFunction() override {}
  Timeline* timeline() override { return &tl; }

  Timeline tl{"stub"};
  std::vector<KernelEvent> events;
  Duration delayed = 0;
};

TEST(KernelServices, PrintkNotifiesBackendAndCounts) {
  EventBus bus;
  KernelServices kernel(&bus);
  kernel.Printk("hello");
  kernel.Printk("world");
  EXPECT_EQ(kernel.printk_count(), 2u);
  ASSERT_EQ(bus.events.size(), 2u);
  EXPECT_EQ(bus.events[0], KernelEvent::kPrintk);
}

TEST(KernelServices, DelayForwardsToBus) {
  EventBus bus;
  KernelServices kernel(&bus);
  kernel.Delay(5 * kMicrosecond);
  EXPECT_EQ(bus.delayed, 5 * kMicrosecond);
}

TEST(KernelServices, LocksNotifyAcquireAndRelease) {
  EventBus bus;
  KernelServices kernel(&bus);
  DriverLock lock(&kernel, "test");
  EXPECT_FALSE(lock.held());
  {
    ScopedLock guard(lock);
    EXPECT_TRUE(lock.held());
    kernel.Schedule();
  }
  EXPECT_FALSE(lock.held());
  ASSERT_EQ(bus.events.size(), 3u);
  EXPECT_EQ(bus.events[0], KernelEvent::kLockAcquire);
  EXPECT_EQ(bus.events[1], KernelEvent::kSchedule);
  EXPECT_EQ(bus.events[2], KernelEvent::kLockRelease);
}

TEST(Log, LevelGatesOutput) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  GRT_ELOG << "must not print";  // no assertion possible; exercise the path
  SetLogLevel(LogLevel::kError);
  GRT_DLOG << "gated";
  SetLogLevel(saved);
  SUCCEED();
}

}  // namespace
}  // namespace grt
