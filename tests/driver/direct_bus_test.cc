// DirectBus tests: access statistics, observer ordering (the recording
// hook sees writes pre-device), polling, IRQ waits, and TZASC denials.
#include <gtest/gtest.h>

#include "src/harness/rig.h"

namespace grt {
namespace {

class DirectBusTest : public ::testing::Test {
 protected:
  DirectBusTest()
      : device_(SkuId::kMaliG71Mp8),
        bus_(&device_.gpu(), &device_.tzasc(), World::kNormal,
             &device_.timeline()) {}

  ClientDevice device_;
  DirectBus bus_;
};

TEST_F(DirectBusTest, ReadsResolveImmediately) {
  RegValue v = bus_.ReadReg(kRegGpuId, "t");
  EXPECT_TRUE(v.IsConcrete());
  EXPECT_EQ(v.Get(), device_.sku().gpu_id_reg);
  EXPECT_EQ(bus_.stats().reg_reads, 1u);
}

TEST_F(DirectBusTest, WritesApplyImmediately) {
  bus_.WriteReg(kRegGpuIrqMask, RegValue(0xAB), "t");
  EXPECT_EQ(device_.gpu().ReadRegister(kRegGpuIrqMask).value(), 0xABu);
  EXPECT_EQ(bus_.stats().reg_writes, 1u);
}

TEST_F(DirectBusTest, AccessesAdvanceVirtualTime) {
  TimePoint t0 = device_.timeline().now();
  for (int i = 0; i < 10; ++i) {
    (void)bus_.ReadReg(kRegGpuId, "t");
  }
  EXPECT_GT(device_.timeline().now(), t0);
}

// The recorder hook must see a write BEFORE the device does: pre-job
// memory snapshots depend on it (§5).
class PreWriteObserver : public BusObserver {
 public:
  PreWriteObserver(MaliGpu* gpu) : gpu_(gpu) {}
  void OnRegWrite(uint32_t offset, uint32_t) override {
    if (offset == kRegGpuIrqMask) {
      value_at_notify = gpu_->ReadRegister(kRegGpuIrqMask).value();
    }
  }
  MaliGpu* gpu_;
  uint32_t value_at_notify = 0xFFFFFFFF;
};

TEST_F(DirectBusTest, ObserverSeesWriteBeforeDevice) {
  PreWriteObserver observer(&device_.gpu());
  bus_.SetObserver(&observer);
  bus_.WriteReg(kRegGpuIrqMask, RegValue(0x55), "t");
  EXPECT_EQ(observer.value_at_notify, 0u);  // device not yet updated
  EXPECT_EQ(device_.gpu().ReadRegister(kRegGpuIrqMask).value(), 0x55u);
}

TEST_F(DirectBusTest, PollSpinsUntilConditionOrTimeout) {
  // Start a reset and poll for its completion.
  bus_.WriteReg(kRegGpuCommand, RegValue(kGpuCommandSoftReset), "t");
  PollResult r = bus_.Poll(kRegGpuIrqRawstat, kGpuIrqResetCompleted,
                           kGpuIrqResetCompleted, 512, 3 * kMicrosecond, "t");
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.iterations, 1);  // the 150us reset outlasts several polls
  EXPECT_EQ(bus_.stats().poll_instances, 1u);
  EXPECT_EQ(bus_.stats().poll_iterations,
            static_cast<uint64_t>(r.iterations));

  // A condition that never comes true times out.
  PollResult never = bus_.Poll(kRegGpuId, 0xFFFFFFFF, 0, 8,
                               kMicrosecond, "t");
  EXPECT_TRUE(never.timed_out);
  EXPECT_EQ(never.iterations, 8);
}

TEST_F(DirectBusTest, WaitForIrqDeliversAndTimesOut) {
  // The reset scrubs IRQ masks, so unmask AFTER issuing it (the driver's
  // real init sequence re-enables interrupts post-reset too).
  bus_.WriteReg(kRegGpuCommand, RegValue(kGpuCommandSoftReset), "t");
  bus_.WriteReg(kRegGpuIrqMask, RegValue(kGpuIrqResetCompleted), "t");
  auto irq = bus_.WaitForIrq(kSecond);
  ASSERT_TRUE(irq.ok());
  EXPECT_TRUE(irq->gpu);
  EXPECT_FALSE(irq->job);
  bus_.WriteReg(kRegGpuIrqClear, RegValue(0xFFFFFFFF), "t");
  // Nothing pending: times out.
  auto none = bus_.WaitForIrq(kMillisecond);
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kTimeout);
}

TEST_F(DirectBusTest, TzascDenialSurfacesAsError) {
  device_.tzasc().AssignGpu(World::kSecure);  // normal-world bus locked out
  RegValue v = bus_.ReadReg(kRegGpuId, "t");
  EXPECT_EQ(v.Get(), 0u);  // bus reads-as-zero
  EXPECT_FALSE(bus_.last_error().ok());
  EXPECT_EQ(bus_.last_error().code(), StatusCode::kPermissionDenied);
  device_.tzasc().AssignGpu(World::kNormal);
}

}  // namespace
}  // namespace grt
