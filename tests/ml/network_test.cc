// Network definition tests: structural invariants for all six workloads,
// deterministic parameter/input generation, and CPU reference sanity.
#include <gtest/gtest.h>

#include <set>

#include "src/ml/network.h"
#include "src/ml/reference.h"

namespace grt {
namespace {

class NetworkStructure : public ::testing::TestWithParam<int> {
 protected:
  NetworkDef net_ = BuildAllNetworks()[GetParam()];
};

TEST_P(NetworkStructure, TensorsUniqueAndReferenced) {
  std::set<std::string> names;
  for (const TensorDef& t : net_.tensors) {
    EXPECT_GT(t.n_floats, 0u) << t.name;
    EXPECT_TRUE(names.insert(t.name).second) << "duplicate " << t.name;
  }
  for (const OpDef& op : net_.ops) {
    for (const std::string* ref : {&op.in0, &op.in1, &op.aux, &op.out}) {
      if (!ref->empty()) {
        EXPECT_TRUE(names.count(*ref)) << "dangling tensor '" << *ref << "'";
      }
    }
    EXPECT_FALSE(op.out.empty());
  }
  EXPECT_TRUE(names.count(net_.input_tensor));
  EXPECT_TRUE(names.count(net_.output_tensor));
}

TEST_P(NetworkStructure, HasExactlyOneInputAndOutput) {
  int inputs = 0, outputs = 0;
  for (const TensorDef& t : net_.tensors) {
    inputs += t.kind == TensorKind::kInput;
    outputs += t.kind == TensorKind::kOutput;
  }
  EXPECT_EQ(inputs, 1);
  EXPECT_EQ(outputs, 1);
}

TEST_P(NetworkStructure, OutputWrittenBySomeOp) {
  bool written = false;
  for (const OpDef& op : net_.ops) {
    written |= op.out == net_.output_tensor;
  }
  EXPECT_TRUE(written);
}

TEST_P(NetworkStructure, EndsWithSoftmaxOverClasses) {
  ASSERT_FALSE(net_.ops.empty());
  EXPECT_EQ(net_.ops.back().op, GpuOp::kSoftmax);
  auto out = net_.FindTensor(net_.output_tensor);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->n_floats, 10u);
}

TEST_P(NetworkStructure, ReferenceProducesValidDistribution) {
  std::vector<float> input = GenerateInput(net_, 1);
  auto out = RunReference(net_, input, 1);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 10u);
  float sum = 0;
  for (float p : *out) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST_P(NetworkStructure, ReferenceIsInputSensitive) {
  auto a = RunReference(net_, GenerateInput(net_, 1), 1);
  auto b = RunReference(net_, GenerateInput(net_, 2), 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(MaxAbsDiff(*a, *b), 0.0f);
}

TEST_P(NetworkStructure, ReferenceIsParamSensitive) {
  std::vector<float> input = GenerateInput(net_, 1);
  auto a = RunReference(net_, input, 1);
  auto b = RunReference(net_, input, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(MaxAbsDiff(*a, *b), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllNets, NetworkStructure,
                         ::testing::Range(0, 6));

TEST(Networks, JobCountOrderingMatchesPaperShape) {
  // Paper Table 1: MNIST(23) < AlexNet(60) < VGG16(96) < SqueezeNet(98)
  // < MobileNet(104) < ResNet12(111). Our scaled networks preserve the
  // ordering.
  size_t mnist = BuildMnist().job_count();
  size_t alex = BuildAlexNet().job_count();
  size_t vgg = BuildVgg16().job_count();
  size_t squeeze = BuildSqueezeNet().job_count();
  size_t mobile = BuildMobileNet().job_count();
  size_t res = BuildResNet12().job_count();
  EXPECT_LT(mnist, alex);
  EXPECT_LT(alex, vgg);
  EXPECT_LT(vgg, squeeze);
  EXPECT_LT(squeeze, mobile + 10);  // cluster, paper order
  EXPECT_GT(res + mobile + squeeze, 3 * vgg / 2);  // the dense cluster
}

TEST(Networks, Vgg16HasLargestParameterFootprint) {
  uint64_t vgg = BuildVgg16().FloatsOfKind(TensorKind::kParam);
  for (const NetworkDef& net : BuildAllNetworks()) {
    if (net.name != "vgg16") {
      EXPECT_GT(vgg, net.FloatsOfKind(TensorKind::kParam)) << net.name;
    }
  }
}

TEST(Networks, ParamGenerationDeterministicPerTensor) {
  NetworkDef net = BuildMnist();
  const TensorDef& t = net.tensors[2];
  EXPECT_EQ(GenerateParams(net.name, t, 7), GenerateParams(net.name, t, 7));
  EXPECT_NE(GenerateParams(net.name, t, 7), GenerateParams(net.name, t, 8));
  // Different tensors get different content under the same seed.
  auto a = GenerateParams(net.name, net.tensors[2], 7);
  auto b = GenerateParams(net.name, net.tensors[3], 7);
  if (a.size() == b.size()) {
    EXPECT_NE(a, b);
  }
}

TEST(Networks, InputGenerationBounded) {
  NetworkDef net = BuildMnist();
  std::vector<float> input = GenerateInput(net, 3);
  auto tensor = net.FindTensor(net.input_tensor);
  EXPECT_EQ(input.size(), tensor->n_floats);
  for (float v : input) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

}  // namespace
}  // namespace grt
