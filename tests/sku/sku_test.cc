// SKU registry and devicetree tests (§2.4 diversity, §6 devicetrees).
#include <gtest/gtest.h>

#include <set>

#include "src/sku/devicetree.h"
#include "src/hw/regs.h"
#include "src/sku/sku.h"

namespace grt {
namespace {

TEST(Sku, RegistryNonEmptyAndUnique) {
  const auto& skus = AllSkus();
  EXPECT_GE(skus.size(), 6u);
  std::set<uint32_t> ids, gpu_ids;
  for (const GpuSku& s : skus) {
    EXPECT_TRUE(ids.insert(static_cast<uint32_t>(s.id)).second)
        << "duplicate SKU id";
    EXPECT_TRUE(gpu_ids.insert(s.gpu_id_reg).second)
        << "duplicate GPU_ID register value";
  }
}

TEST(Sku, InvariantsHold) {
  for (const GpuSku& s : AllSkus()) {
    EXPECT_GT(s.core_count(), 0) << s.name;
    EXPECT_EQ(__builtin_popcount(s.shader_present), s.core_count());
    EXPECT_GT(s.clock_mhz, 0u);
    EXPECT_GT(s.macs_per_core_clk, 0u);
    EXPECT_GE(s.js_count, 1u);
    EXPECT_LE(s.js_count, static_cast<uint32_t>(kMaxJobSlots));
    EXPECT_LE(s.as_count, static_cast<uint32_t>(kMaxAddressSpaces));
  }
}

TEST(Sku, LookupById) {
  auto s = FindSku(SkuId::kMaliG71Mp8);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->core_count(), 8);
  EXPECT_EQ(s->name, "Mali-G71 MP8");
}

TEST(Sku, LookupByGpuIdReg) {
  GpuSku mp8 = FindSku(SkuId::kMaliG71Mp8).value();
  auto found = FindSkuByGpuIdReg(mp8.gpu_id_reg);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, SkuId::kMaliG71Mp8);
  EXPECT_FALSE(FindSkuByGpuIdReg(0xDEADBEEF).ok());
}

TEST(Sku, FamilySharesPageTableFormatDifferences) {
  // G71 family uses format A; G76/G52 use format B — replay across the
  // boundary must be impossible (different PTE layouts).
  EXPECT_EQ(FindSku(SkuId::kMaliG71Mp8)->pt_format, PageTableFormat::kFormatA);
  EXPECT_EQ(FindSku(SkuId::kMaliG76Mp10)->pt_format,
            PageTableFormat::kFormatB);
}

class DeviceTreePerSku : public ::testing::TestWithParam<SkuId> {};

TEST_P(DeviceTreePerSku, BuildAndRecoverSku) {
  GpuSku sku = FindSku(GetParam()).value();
  DeviceTree dt = BuildGpuDeviceTree(sku);
  auto recovered = SkuFromDeviceTree(dt);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), sku.id);

  const DtNode* gpu = dt.FindCompatible(GpuCompatibleString(sku));
  ASSERT_NE(gpu, nullptr);
  auto cores = gpu->GetU32s("arm,shader-core-count");
  ASSERT_TRUE(cores.ok());
  EXPECT_EQ(cores.value()[0], static_cast<uint32_t>(sku.core_count()));
  auto reg = gpu->GetU32s("reg");
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg.value()[0], static_cast<uint32_t>(kGpuMmioBase));
}

INSTANTIATE_TEST_SUITE_P(
    AllSkus, DeviceTreePerSku,
    ::testing::Values(SkuId::kMaliG71Mp2, SkuId::kMaliG71Mp4,
                      SkuId::kMaliG71Mp8, SkuId::kMaliG72Mp12,
                      SkuId::kMaliG76Mp10, SkuId::kMaliG52Mp2));

TEST(DeviceTree, EmptyTreeHasNoGpu) {
  DeviceTree dt;
  EXPECT_FALSE(SkuFromDeviceTree(dt).ok());
  EXPECT_EQ(dt.FindCompatible("arm,mali-bifrost"), nullptr);
}

TEST(DeviceTree, PropertiesTyped) {
  DtNode node("n");
  node.SetString("compatible", "x,y");
  node.SetU32s("reg", {1, 2});
  EXPECT_TRUE(node.GetString("compatible").ok());
  EXPECT_FALSE(node.GetU32s("compatible").ok());
  EXPECT_FALSE(node.GetString("reg").ok());
  EXPECT_EQ(node.GetU32s("reg").value().size(), 2u);
  EXPECT_FALSE(node.GetString("missing").ok());
}

TEST(DeviceTree, WrongGpuIdInTreeRejected) {
  GpuSku sku = FindSku(SkuId::kMaliG71Mp8).value();
  DeviceTree dt = BuildGpuDeviceTree(sku);
  // Corrupt the gpu-id: no SKU should match.
  auto* soc = dt.root()->AddChild("soc2");
  (void)soc;
  // Rebuild with bogus id.
  DeviceTree bogus;
  DtNode* gpu = bogus.root()->AddChild("gpu");
  gpu->SetString("compatible", GpuCompatibleString(sku));
  gpu->SetU32s("arm,gpu-id", {0x12345678});
  EXPECT_FALSE(SkuFromDeviceTree(bogus).ok());
}

}  // namespace
}  // namespace grt
