// TrustZone model tests: TZASC world gating, secure monitor routing, and
// the attestation/session crypto (§6, §7.1).
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/tee/session.h"
#include "src/tee/tzasc.h"

namespace grt {
namespace {

TEST(Tzasc, NormalWorldLockedOutWhileSecured) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  Tzasc& tzasc = device.tzasc();

  // Initially the normal world owns the GPU.
  EXPECT_TRUE(
      tzasc.ReadGpuRegister(World::kNormal, &device.gpu(), kRegGpuId).ok());

  tzasc.AssignGpu(World::kSecure);
  auto denied =
      tzasc.ReadGpuRegister(World::kNormal, &device.gpu(), kRegGpuId);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_FALSE(tzasc
                   .WriteGpuRegister(World::kNormal, &device.gpu(),
                                     kRegGpuCommand, kGpuCommandSoftReset)
                   .ok());
  EXPECT_GE(tzasc.violations(), 2u);

  // Secure world always passes.
  EXPECT_TRUE(
      tzasc.ReadGpuRegister(World::kSecure, &device.gpu(), kRegGpuId).ok());

  tzasc.AssignGpu(World::kNormal);
  EXPECT_TRUE(
      tzasc.ReadGpuRegister(World::kNormal, &device.gpu(), kRegGpuId).ok());
}

TEST(Tzasc, CarveoutMemoryGated) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  device.tzasc().AssignGpu(World::kSecure);
  EXPECT_FALSE(device.mem()
                   .WriteU32(kCarveoutBase, 1, MemAccessOrigin::kCpuNormalWorld)
                   .ok());
  EXPECT_TRUE(device.mem()
                  .WriteU32(kCarveoutBase, 1, MemAccessOrigin::kCpuSecureWorld)
                  .ok());
  EXPECT_TRUE(
      device.mem().WriteU32(kCarveoutBase, 2, MemAccessOrigin::kGpu).ok());
  device.tzasc().AssignGpu(World::kNormal);
  EXPECT_TRUE(device.mem()
                  .WriteU32(kCarveoutBase, 3, MemAccessOrigin::kCpuNormalWorld)
                  .ok());
}

TEST(SecureMonitor, RoutesIrqsToOwner) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  SecureMonitor monitor(&device.tzasc());
  EXPECT_TRUE(monitor.DeliverTo(World::kNormal));
  EXPECT_FALSE(monitor.DeliverTo(World::kSecure));
  device.tzasc().AssignGpu(World::kSecure);
  EXPECT_TRUE(monitor.DeliverTo(World::kSecure));
  EXPECT_FALSE(monitor.DeliverTo(World::kNormal));
}

class SessionCrypto : public ::testing::Test {
 protected:
  Bytes root_ = Bytes(20, 0x11);
  VmMeasurement measurement_ = Sha256::Hash("vm-image-1", 10);
  Bytes nonce_ = Bytes(32, 0x22);
};

TEST_F(SessionCrypto, QuoteVerifies) {
  Attestor attestor(root_, measurement_);
  AttestationVerifier verifier(root_, measurement_);
  EXPECT_TRUE(verifier.Verify(attestor.Quote(nonce_), nonce_).ok());
}

TEST_F(SessionCrypto, WrongMeasurementRejected) {
  Attestor attestor(root_, Sha256::Hash("evil-image", 10));
  AttestationVerifier verifier(root_, measurement_);
  Status s = verifier.Verify(attestor.Quote(nonce_), nonce_);
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
}

TEST_F(SessionCrypto, NonceReplayRejected) {
  Attestor attestor(root_, measurement_);
  AttestationVerifier verifier(root_, measurement_);
  AttestationQuote quote = attestor.Quote(nonce_);
  Bytes other_nonce(32, 0x33);
  EXPECT_FALSE(verifier.Verify(quote, other_nonce).ok());
}

TEST_F(SessionCrypto, ForgedSignatureRejected) {
  Attestor attestor(root_, measurement_);
  AttestationVerifier verifier(root_, measurement_);
  AttestationQuote quote = attestor.Quote(nonce_);
  quote.signature[5] ^= 0x01;
  EXPECT_FALSE(verifier.Verify(quote, nonce_).ok());
}

TEST_F(SessionCrypto, WrongRootKeyRejected) {
  Attestor attestor(Bytes(20, 0x99), measurement_);
  AttestationVerifier verifier(root_, measurement_);
  EXPECT_FALSE(verifier.Verify(attestor.Quote(nonce_), nonce_).ok());
}

TEST_F(SessionCrypto, QuoteSerializationRoundTrips) {
  Attestor attestor(root_, measurement_);
  AttestationQuote quote = attestor.Quote(nonce_);
  auto parsed = AttestationQuote::Deserialize(quote.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->measurement, quote.measurement);
  EXPECT_EQ(parsed->nonce, quote.nonce);
  EXPECT_EQ(parsed->signature, quote.signature);
}

TEST_F(SessionCrypto, SessionKeysAgreeAndMac) {
  Bytes cloud_nonce(32, 0x44);
  SessionKey a = SessionKey::Derive(root_, nonce_, cloud_nonce);
  SessionKey b = SessionKey::Derive(root_, nonce_, cloud_nonce);
  Bytes msg = {'h', 'i'};
  EXPECT_TRUE(b.VerifyMac(msg, a.Mac(msg)).ok());
  // Tampered message rejected.
  Bytes bad = {'h', 'o'};
  EXPECT_FALSE(b.VerifyMac(bad, a.Mac(msg)).ok());
  // Different nonces => different keys.
  SessionKey c = SessionKey::Derive(root_, nonce_, Bytes(32, 0x55));
  EXPECT_NE(c.key(), a.key());
}

}  // namespace
}  // namespace grt
