// SoC resource protection tests (§6): GPU power/clock are controlled by
// whoever owns the GPU; a malicious normal world cannot yank power during
// a TEE session, and a powered-off rail makes the register file a bus
// error.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/shim/gpushim.h"

namespace grt {
namespace {

TEST(SocResources, RailTogglePermissions) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  SocResources& soc = device.soc();
  EXPECT_TRUE(soc.gpu_rail_on());  // firmware default

  // Normal world owns the GPU at boot: it may manage power.
  EXPECT_TRUE(soc.SetGpuRail(World::kNormal, false).ok());
  EXPECT_FALSE(soc.gpu_rail_on());
  EXPECT_TRUE(soc.SetGpuRail(World::kNormal, true).ok());

  // TEE takes the GPU: the normal world loses rail control.
  device.tzasc().AssignGpu(World::kSecure);
  Status denied = soc.SetGpuRail(World::kNormal, false);
  EXPECT_EQ(denied.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(soc.gpu_rail_on());  // unchanged
  EXPECT_GE(soc.denied_toggles(), 1u);
  EXPECT_TRUE(soc.SetGpuRail(World::kSecure, true).ok());
  device.tzasc().AssignGpu(World::kNormal);
}

TEST(SocResources, RailOffMakesMmioABusError) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  ASSERT_TRUE(device.soc().SetGpuRail(World::kNormal, false).ok());
  auto read = device.tzasc().ReadGpuRegister(World::kNormal, &device.gpu(),
                                             kRegGpuId);
  EXPECT_EQ(read.status().code(), StatusCode::kDeviceFault);
  ASSERT_TRUE(device.soc().SetGpuRail(World::kNormal, true).ok());
  EXPECT_TRUE(device.tzasc()
                  .ReadGpuRegister(World::kNormal, &device.gpu(), kRegGpuId)
                  .ok());
}

TEST(SocResources, TeeSessionBootstrapsPower) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  // The OS powered the GPU down before the TEE session starts.
  ASSERT_TRUE(device.soc().SetGpuRail(World::kNormal, false).ok());

  GpuShim shim(&device.gpu(), &device.tzasc(), &device.mem(),
               &device.timeline(), true, true, &device.soc());
  shim.BeginSession();
  // The TEE brought the rail up itself (§6) — no normal-world RPC.
  EXPECT_TRUE(device.soc().gpu_rail_on());
  // And the normal world cannot take it back down mid-session.
  EXPECT_FALSE(device.soc().SetGpuRail(World::kNormal, false).ok());
  shim.EndSession();
}

TEST(SocResources, ClockControlFollowsSameRules) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  EXPECT_TRUE(device.soc().SetGpuClock(World::kNormal, 600).ok());
  EXPECT_EQ(device.soc().gpu_clock_mhz(), 600u);
  device.tzasc().AssignGpu(World::kSecure);
  EXPECT_FALSE(device.soc().SetGpuClock(World::kNormal, 100).ok());
  EXPECT_TRUE(device.soc().SetGpuClock(World::kSecure, 900).ok());
  EXPECT_EQ(device.soc().gpu_clock_mhz(), 900u);
  device.tzasc().AssignGpu(World::kNormal);
}

}  // namespace
}  // namespace grt
