// Userspace runtime tests: buffers, the SKU-parameterized JIT, shader
// caching, and the enqueue path.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/runtime/runtime.h"

namespace grt {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : device_(SkuId::kMaliG71Mp8), stack_(&device_) {
    EXPECT_TRUE(stack_.BringUp().ok());
  }

  ClientDevice device_;
  NativeStack stack_;
};

TEST_F(RuntimeTest, BufferUploadDownloadRoundTrip) {
  GpuRuntime& rt = stack_.runtime();
  GpuBuffer b = rt.AllocBuffer(100, RegionUsage::kDataInput).value();
  std::vector<float> data(100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) * 0.5f;
  }
  ASSERT_TRUE(rt.Upload(b, data).ok());
  EXPECT_EQ(rt.Download(b).value(), data);
  EXPECT_EQ(rt.stats().bytes_uploaded, 400u);
}

TEST_F(RuntimeTest, OversizedUploadRejected) {
  GpuRuntime& rt = stack_.runtime();
  GpuBuffer b = rt.AllocBuffer(4, RegionUsage::kDataInput).value();
  EXPECT_FALSE(rt.Upload(b, std::vector<float>(5)).ok());
}

TEST_F(RuntimeTest, RunJobBeforeFinalizeFails) {
  GpuRuntime& rt = stack_.runtime();
  GpuBuffer b = rt.AllocBuffer(4, RegionUsage::kDataOutput).value();
  JobDescriptor d;
  d.op = GpuOp::kFill;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  d.output_va = b.va;
  EXPECT_EQ(rt.RunJob(d).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeTest, ShaderCachePerOp) {
  GpuRuntime& rt = stack_.runtime();
  GpuBuffer b = rt.AllocBuffer(4, RegionUsage::kDataOutput).value();
  ASSERT_TRUE(rt.Finalize().ok());
  JobDescriptor d;
  d.op = GpuOp::kFill;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  d.output_va = b.va;
  ASSERT_TRUE(rt.RunJob(d).ok());
  ASSERT_TRUE(rt.RunJob(d).ok());
  EXPECT_EQ(rt.stats().shaders_compiled, 1u);  // cached after first use
  d.op = GpuOp::kCopy;
  d.input_va[0] = b.va;
  ASSERT_TRUE(rt.RunJob(d).ok());
  EXPECT_EQ(rt.stats().shaders_compiled, 2u);
  EXPECT_EQ(rt.stats().jobs_enqueued, 3u);
}

TEST(RuntimeJit, TilingScalesWithCoreCount) {
  GpuSku mp2 = FindSku(SkuId::kMaliG71Mp2).value();
  GpuSku mp8 = FindSku(SkuId::kMaliG71Mp8).value();
  ShaderBlobHeader h2 = JitShaderHeader(GpuOp::kGemm, mp2);
  ShaderBlobHeader h8 = JitShaderHeader(GpuOp::kGemm, mp8);
  EXPECT_EQ(h2.core_count, 2u);
  EXPECT_EQ(h8.core_count, 8u);
  EXPECT_LT(h2.tile_m, h8.tile_m);
  EXPECT_LT(h2.code_len, h8.code_len);
  // The same op on the same SKU is deterministic.
  ShaderBlobHeader again = JitShaderHeader(GpuOp::kGemm, mp8);
  EXPECT_EQ(BuildShaderBlob(h8), BuildShaderBlob(again));
}

TEST(RuntimeJit, SkuExecutionTimesDiffer) {
  // The same workload takes longer on fewer cores (per-SKU cost model).
  Duration durations[2];
  int i = 0;
  for (SkuId id : {SkuId::kMaliG71Mp2, SkuId::kMaliG71Mp8}) {
    ClientDevice device(id);
    NativeStack stack(&device);
    ASSERT_TRUE(stack.BringUp().ok());
    GpuRuntime& rt = stack.runtime();
    GpuBuffer a = rt.AllocBuffer(64 * 64, RegionUsage::kDataInput).value();
    GpuBuffer b = rt.AllocBuffer(64 * 64, RegionUsage::kDataInput).value();
    GpuBuffer c = rt.AllocBuffer(64 * 64, RegionUsage::kDataOutput).value();
    ASSERT_TRUE(rt.Finalize().ok());
    ASSERT_TRUE(rt.Upload(a, std::vector<float>(64 * 64, 1.0f)).ok());
    ASSERT_TRUE(rt.Upload(b, std::vector<float>(64 * 64, 2.0f)).ok());
    JobDescriptor d;
    d.op = GpuOp::kGemm;
    d.input_va[0] = a.va;
    d.aux_va = b.va;
    d.output_va = c.va;
    d.params = {64, 64, 64, 0, 0, 0, 0, 0};
    Duration busy0 = device.gpu().busy_time();
    ASSERT_TRUE(rt.RunJob(d).ok());
    durations[i++] = device.gpu().busy_time() - busy0;
  }
  EXPECT_GT(durations[0], durations[1]);  // MP2 slower than MP8
}

}  // namespace
}  // namespace grt
