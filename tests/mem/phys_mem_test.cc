// Physical memory + page allocator tests (the shared GPU carveout).
#include <gtest/gtest.h>

#include "src/mem/phys_mem.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 1 << 20;  // 1 MiB

TEST(PhysMem, ReadWriteRoundTrip) {
  PhysicalMemory mem(kBase, kSize);
  ASSERT_TRUE(mem.WriteU32(kBase + 16, 0xCAFEBABE).ok());
  EXPECT_EQ(mem.ReadU32(kBase + 16).value(), 0xCAFEBABEu);
  ASSERT_TRUE(mem.WriteU64(kBase + 64, 0x1122334455667788ull).ok());
  EXPECT_EQ(mem.ReadU64(kBase + 64).value(), 0x1122334455667788ull);
}

TEST(PhysMem, OutOfRangeRejected) {
  PhysicalMemory mem(kBase, kSize);
  EXPECT_FALSE(mem.ReadU32(kBase - 4).ok());
  EXPECT_FALSE(mem.ReadU32(kBase + kSize).ok());
  EXPECT_FALSE(mem.WriteU32(kBase + kSize - 2, 1).ok());  // straddles end
  uint8_t buf[16];
  EXPECT_FALSE(mem.Read(kBase + kSize - 8, buf, 16).ok());
}

TEST(PhysMem, AccessPolicyGates) {
  PhysicalMemory mem(kBase, kSize);
  int denied = 0;
  mem.SetAccessPolicy([&](uint64_t, uint64_t, bool write,
                          MemAccessOrigin origin) {
    if (origin == MemAccessOrigin::kCpuNormalWorld && write) {
      ++denied;
      return false;
    }
    return true;
  });
  EXPECT_FALSE(
      mem.WriteU32(kBase, 1, MemAccessOrigin::kCpuNormalWorld).ok());
  EXPECT_EQ(denied, 1);
  EXPECT_TRUE(mem.WriteU32(kBase, 1, MemAccessOrigin::kCpuSecureWorld).ok());
  EXPECT_TRUE(mem.ReadU32(kBase, MemAccessOrigin::kCpuNormalWorld).ok());
  EXPECT_TRUE(mem.WriteU32(kBase, 2, MemAccessOrigin::kGpu).ok());
}

TEST(PhysMem, PageOps) {
  PhysicalMemory mem(kBase, kSize);
  Bytes page(kPageSize, 0x5A);
  ASSERT_TRUE(mem.LoadPage(kBase + kPageSize, page).ok());
  EXPECT_EQ(mem.DumpPage(kBase + kPageSize).value(), page);
  EXPECT_FALSE(mem.LoadPage(kBase + 100, page).ok());  // unaligned
  EXPECT_FALSE(mem.LoadPage(kBase, Bytes(10)).ok());   // short
  EXPECT_FALSE(mem.DumpPage(kBase + 1).ok());
  auto view = mem.PageView(kBase + kPageSize);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value()[0], 0x5A);
}

TEST(PageAllocator, AllocFreeCycle) {
  PageAllocator alloc(kBase, kSize);
  EXPECT_EQ(alloc.total_pages(), kSize / kPageSize);
  uint64_t p1 = alloc.AllocPage().value();
  uint64_t p2 = alloc.AllocPage().value();
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p1 & kPageMask, 0u);
  EXPECT_TRUE(alloc.FreePage(p1).ok());
  EXPECT_FALSE(alloc.FreePage(p1).ok());  // double free
  EXPECT_FALSE(alloc.FreePage(kBase + 3).ok());  // unaligned
}

TEST(PageAllocator, ContiguousRuns) {
  PageAllocator alloc(kBase, kSize);
  uint64_t run = alloc.AllocContiguous(8).value();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(alloc.FreePage(run + i * kPageSize).ok());
  }
  EXPECT_FALSE(alloc.AllocContiguous(0).ok());
}

TEST(PageAllocator, Exhaustion) {
  PageAllocator alloc(kBase, 4 * kPageSize);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(alloc.AllocPage().ok());
  }
  EXPECT_FALSE(alloc.AllocPage().ok());
  alloc.Reset();
  EXPECT_EQ(alloc.free_pages(), 4u);
  EXPECT_TRUE(alloc.AllocPage().ok());
}

TEST(PageAllocator, DeterministicSequence) {
  PageAllocator a(kBase, kSize), b(kBase, kSize);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.AllocPage().value(), b.AllocPage().value());
  }
}

TEST(PageAllocator, ContiguousSkipsHoles) {
  PageAllocator alloc(kBase, 8 * kPageSize);
  uint64_t p0 = alloc.AllocPage().value();
  uint64_t p1 = alloc.AllocPage().value();
  (void)p0;
  ASSERT_TRUE(alloc.FreePage(p1).ok());
  // One free page at slot 1, then a used slot? Allocate 3 contiguous:
  // must come after the used prefix, not split across the hole.
  uint64_t p2 = alloc.AllocPage().value();  // fills slot 1 again (hint)
  (void)p2;
  uint64_t run = alloc.AllocContiguous(3).value();
  EXPECT_GE(run, kBase + 2 * kPageSize);
}

}  // namespace
}  // namespace grt
