// Harness tests: the energy model, table rendering, and variant configs.
#include <gtest/gtest.h>

#include "src/harness/energy.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace grt {
namespace {

TEST(Energy, RecordEnergyComposition) {
  PowerModel model;
  // 10 s session, 2 s radio-active, 1 s GPU-busy.
  EnergyReport r = RecordEnergy(model, 10 * kSecond, 2 * kSecond, kSecond);
  EXPECT_DOUBLE_EQ(r.base_j, model.soc_base_w * 10.0);
  EXPECT_DOUBLE_EQ(r.radio_j,
                   model.radio_active_w * 2.0 + model.radio_idle_w * 8.0);
  EXPECT_DOUBLE_EQ(r.gpu_j, model.gpu_active_w * 1.0);
  EXPECT_GT(r.total_j(), 0.0);
}

TEST(Energy, AirtimeClampedToSpan) {
  PowerModel model;
  // Radio can't be active longer than the session existed.
  EnergyReport r = RecordEnergy(model, kSecond, 5 * kSecond, 0);
  EXPECT_DOUBLE_EQ(r.radio_j, model.radio_active_w * 1.0);
}

TEST(Energy, MoreAirtimeCostsMore) {
  PowerModel model;
  EnergyReport lo = RecordEnergy(model, 10 * kSecond, kSecond, 0);
  EnergyReport hi = RecordEnergy(model, 10 * kSecond, 8 * kSecond, 0);
  EXPECT_GT(hi.total_j(), lo.total_j());
}

TEST(Energy, ReplayHasNoRadioTerm) {
  PowerModel model;
  EnergyReport r = ReplayEnergy(model, kSecond, kSecond / 2);
  EXPECT_DOUBLE_EQ(r.radio_j, 0.0);
  EXPECT_GT(r.gpu_j, 0.0);
  EXPECT_GT(r.cpu_j, 0.0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xx", "y"});
  t.AddRow({"1", "22222"});
  std::string out = t.Render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same width.
  size_t first_nl = out.find('\n');
  size_t width = first_nl;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, width);
    pos = nl + 1;
  }
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_NE(t.Render().find("only-one"), std::string::npos);
}

TEST(Formatters, Units) {
  EXPECT_EQ(FormatSeconds(1.5), "1.50 s");
  EXPECT_EQ(FormatMs(2.25), "2.25 ms");
  EXPECT_EQ(FormatMb(1024.0 * 1024.0 * 3), "3.00 MB");
  EXPECT_EQ(FormatCount(1234567), "1234567");
  EXPECT_EQ(FormatPercent(0.505), "50.5%");
  EXPECT_EQ(FormatJoules(0.5), "0.500 J");
}

TEST(Variants, NamesResolveToConfigs) {
  auto names = AllVariantNames();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    EXPECT_TRUE(VariantConfig(name).ok()) << name;
  }
  EXPECT_FALSE(VariantConfig("OursXYZ").ok());
  // The progression is monotone in enabled features.
  EXPECT_FALSE(VariantConfig("Naive")->meta_only_sync);
  EXPECT_TRUE(VariantConfig("OursM")->meta_only_sync);
  EXPECT_TRUE(VariantConfig("OursMD")->defer);
  EXPECT_TRUE(VariantConfig("OursMDS")->speculate);
}

}  // namespace
}  // namespace grt
