// GpuShim (client TEE module) unit tests: batch execution, ordering,
// corrupt-message rejection, polling, IRQ events, and session lifecycle.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/shim/gpushim.h"

namespace grt {
namespace {

class GpuShimTest : public ::testing::Test {
 protected:
  GpuShimTest()
      : device_(SkuId::kMaliG71Mp8),
        shim_(&device_.gpu(), &device_.tzasc(), &device_.mem(),
              &device_.timeline(), /*meta_only_sync=*/true,
              /*compress_sync=*/true, &device_.soc()) {
    shim_.BeginSession();
  }
  ~GpuShimTest() override { shim_.EndSession(); }

  Bytes MakeBatch(uint64_t seq,
                  std::vector<std::pair<bool, uint32_t>> items) {
    CommitBatchMsg msg;
    msg.seq = seq;
    for (auto [is_write, reg] : items) {
      BatchItem item;
      item.is_write = is_write;
      item.reg = reg;
      if (is_write) {
        item.expr = {{BatchItem::Token::Kind::kConst, 0xFF}};
      }
      msg.items.push_back(std::move(item));
    }
    return msg.Serialize();
  }

  ClientDevice device_;
  GpuShim shim_;
};

TEST_F(GpuShimTest, ExecutesBatchInOrder) {
  // write mask=0xFF then read it back in the same batch.
  auto reply_bytes = shim_.ExecuteCommit(
      MakeBatch(0, {{true, kRegGpuIrqMask}, {false, kRegGpuIrqMask}}));
  ASSERT_TRUE(reply_bytes.ok());
  auto reply = CommitReplyMsg::Deserialize(reply_bytes.value());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->read_values.size(), 1u);
  EXPECT_EQ(reply->read_values[0], 0xFFu);  // sees the earlier write
  EXPECT_EQ(shim_.batches_executed(), 1u);
}

TEST_F(GpuShimTest, RejectsOutOfOrderSequence) {
  ASSERT_TRUE(shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}})).ok());
  auto skipped = shim_.ExecuteCommit(MakeBatch(5, {{false, kRegGpuId}}));
  EXPECT_EQ(skipped.status().code(), StatusCode::kIntegrityViolation);
  auto replayed = shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}}));
  EXPECT_FALSE(replayed.ok());
}

TEST_F(GpuShimTest, RejectsCorruptBatch) {
  Bytes garbage = {1, 2, 3};
  EXPECT_FALSE(shim_.ExecuteCommit(garbage).ok());
}

TEST_F(GpuShimTest, TrueValuesRetainedPerSequence) {
  ASSERT_TRUE(
      shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}})).ok());
  const auto* truth = shim_.TrueValuesFor(0);
  ASSERT_NE(truth, nullptr);
  EXPECT_EQ((*truth)[0], device_.sku().gpu_id_reg);
  EXPECT_EQ(shim_.TrueValuesFor(77), nullptr);
}

TEST_F(GpuShimTest, CorruptionAffectsReplyNotDevice) {
  shim_.CorruptNextReply();
  auto reply_bytes =
      shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}}));
  ASSERT_TRUE(reply_bytes.ok());
  auto reply = CommitReplyMsg::Deserialize(reply_bytes.value());
  EXPECT_NE(reply->read_values[0], device_.sku().gpu_id_reg);
  // The true values (what the device really said) are intact.
  EXPECT_EQ((*shim_.TrueValuesFor(0))[0], device_.sku().gpu_id_reg);
}

TEST_F(GpuShimTest, OffloadedPollRunsLocally) {
  // Kick a soft reset via a commit, then offload the completion poll.
  ASSERT_TRUE(shim_
                  .ExecuteCommit(MakeBatch(
                      0, {{true, kRegGpuCommand}}))  // writes 0xFF? no:
                  .ok());
  // (The const expr writes 0xFF which is an unknown GPU command; use the
  // real reset value via a proper batch.)
  CommitBatchMsg msg;
  msg.seq = 1;
  BatchItem reset;
  reset.is_write = true;
  reset.reg = kRegGpuCommand;
  reset.expr = {{BatchItem::Token::Kind::kConst, kGpuCommandSoftReset}};
  msg.items.push_back(reset);
  ASSERT_TRUE(shim_.ExecuteCommit(msg.Serialize()).ok());

  PollRequestMsg poll;
  poll.seq = 2;
  poll.reg = kRegGpuIrqRawstat;
  poll.mask = kGpuIrqResetCompleted;
  poll.expected = kGpuIrqResetCompleted;
  poll.max_iters = 256;
  poll.iter_delay_ns = 3 * kMicrosecond;
  auto reply_bytes = shim_.ExecutePoll(poll.Serialize());
  ASSERT_TRUE(reply_bytes.ok());
  auto reply = PollReplyMsg::Deserialize(reply_bytes.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->timed_out);
  EXPECT_GT(reply->iterations, 1);  // the loop really iterated locally
}

TEST_F(GpuShimTest, SessionLifecycleManagesWorldAndRail) {
  // (BeginSession ran in the fixture.)
  EXPECT_EQ(device_.tzasc().gpu_owner(), World::kSecure);
  EXPECT_TRUE(device_.soc().gpu_rail_on());
  shim_.EndSession();
  EXPECT_EQ(device_.tzasc().gpu_owner(), World::kNormal);
  shim_.BeginSession();  // fixture teardown ends it again
  EXPECT_EQ(device_.tzasc().gpu_owner(), World::kSecure);
}

TEST_F(GpuShimTest, AwaitIrqTimesOutWhenIdle) {
  auto event = shim_.AwaitIrq(kMillisecond);
  EXPECT_EQ(event.status().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace grt
