// GpuShim (client TEE module) unit tests: batch execution, ordering,
// corrupt-message rejection, polling, IRQ events, and session lifecycle.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/shim/gpushim.h"

namespace grt {
namespace {

class GpuShimTest : public ::testing::Test {
 protected:
  GpuShimTest()
      : device_(SkuId::kMaliG71Mp8),
        shim_(&device_.gpu(), &device_.tzasc(), &device_.mem(),
              &device_.timeline(), /*meta_only_sync=*/true,
              /*compress_sync=*/true, &device_.soc()) {
    shim_.BeginSession();
  }
  ~GpuShimTest() override { shim_.EndSession(); }

  Bytes MakeBatch(uint64_t seq,
                  std::vector<std::pair<bool, uint32_t>> items) {
    CommitBatchMsg msg;
    msg.seq = seq;
    for (auto [is_write, reg] : items) {
      BatchItem item;
      item.is_write = is_write;
      item.reg = reg;
      if (is_write) {
        item.expr = {{BatchItem::Token::Kind::kConst, 0xFF}};
      }
      msg.items.push_back(std::move(item));
    }
    return msg.Serialize();
  }

  ClientDevice device_;
  GpuShim shim_;
};

TEST_F(GpuShimTest, ExecutesBatchInOrder) {
  // write mask=0xFF then read it back in the same batch.
  auto reply_bytes = shim_.ExecuteCommit(
      MakeBatch(0, {{true, kRegGpuIrqMask}, {false, kRegGpuIrqMask}}));
  ASSERT_TRUE(reply_bytes.ok());
  auto reply = CommitReplyMsg::Deserialize(reply_bytes.value());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->read_values.size(), 1u);
  EXPECT_EQ(reply->read_values[0], 0xFFu);  // sees the earlier write
  EXPECT_EQ(shim_.batches_executed(), 1u);
}

TEST_F(GpuShimTest, RejectsOutOfOrderSequence) {
  ASSERT_TRUE(shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}})).ok());
  auto skipped = shim_.ExecuteCommit(MakeBatch(5, {{false, kRegGpuId}}));
  EXPECT_EQ(skipped.status().code(), StatusCode::kIntegrityViolation);
  auto replayed = shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}}));
  EXPECT_FALSE(replayed.ok());
}

TEST_F(GpuShimTest, RejectsCorruptBatch) {
  Bytes garbage = {1, 2, 3};
  EXPECT_FALSE(shim_.ExecuteCommit(garbage).ok());
}

TEST_F(GpuShimTest, TrueValuesRetainedPerSequence) {
  ASSERT_TRUE(
      shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}})).ok());
  const auto* truth = shim_.TrueValuesFor(0);
  ASSERT_NE(truth, nullptr);
  EXPECT_EQ((*truth)[0], device_.sku().gpu_id_reg);
  EXPECT_EQ(shim_.TrueValuesFor(77), nullptr);
}

TEST_F(GpuShimTest, CorruptionAffectsReplyNotDevice) {
  shim_.CorruptNextReply();
  auto reply_bytes =
      shim_.ExecuteCommit(MakeBatch(0, {{false, kRegGpuId}}));
  ASSERT_TRUE(reply_bytes.ok());
  auto reply = CommitReplyMsg::Deserialize(reply_bytes.value());
  EXPECT_NE(reply->read_values[0], device_.sku().gpu_id_reg);
  // The true values (what the device really said) are intact.
  EXPECT_EQ((*shim_.TrueValuesFor(0))[0], device_.sku().gpu_id_reg);
}

TEST_F(GpuShimTest, OffloadedPollRunsLocally) {
  // Kick a soft reset via a commit, then offload the completion poll.
  ASSERT_TRUE(shim_
                  .ExecuteCommit(MakeBatch(
                      0, {{true, kRegGpuCommand}}))  // writes 0xFF? no:
                  .ok());
  // (The const expr writes 0xFF which is an unknown GPU command; use the
  // real reset value via a proper batch.)
  CommitBatchMsg msg;
  msg.seq = 1;
  BatchItem reset;
  reset.is_write = true;
  reset.reg = kRegGpuCommand;
  reset.expr = {{BatchItem::Token::Kind::kConst, kGpuCommandSoftReset}};
  msg.items.push_back(reset);
  ASSERT_TRUE(shim_.ExecuteCommit(msg.Serialize()).ok());

  PollRequestMsg poll;
  poll.seq = 2;
  poll.reg = kRegGpuIrqRawstat;
  poll.mask = kGpuIrqResetCompleted;
  poll.expected = kGpuIrqResetCompleted;
  poll.max_iters = 256;
  poll.iter_delay_ns = 3 * kMicrosecond;
  auto reply_bytes = shim_.ExecutePoll(poll.Serialize());
  ASSERT_TRUE(reply_bytes.ok());
  auto reply = PollReplyMsg::Deserialize(reply_bytes.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->timed_out);
  EXPECT_GT(reply->iterations, 1);  // the loop really iterated locally
}

TEST_F(GpuShimTest, SessionLifecycleManagesWorldAndRail) {
  // (BeginSession ran in the fixture.)
  EXPECT_EQ(device_.tzasc().gpu_owner(), World::kSecure);
  EXPECT_TRUE(device_.soc().gpu_rail_on());
  shim_.EndSession();
  EXPECT_EQ(device_.tzasc().gpu_owner(), World::kNormal);
  shim_.BeginSession();  // fixture teardown ends it again
  EXPECT_EQ(device_.tzasc().gpu_owner(), World::kSecure);
}

TEST_F(GpuShimTest, AwaitIrqTimesOutWhenIdle) {
  auto event = shim_.AwaitIrq(kMillisecond);
  EXPECT_EQ(event.status().code(), StatusCode::kTimeout);
}

// ---------------------------------------------------- link frame endpoint

class GpuShimLinkTest : public GpuShimTest {
 protected:
  GpuShimLinkTest() { shim_.SetLinkKey(key_, /*epoch=*/1); }

  Bytes SealCommit(uint64_t link_seq, uint64_t msg_seq) {
    LinkFrame frame;
    frame.type = FrameType::kCommit;
    frame.epoch = 1;
    frame.seq = link_seq;
    frame.payload = MakeBatch(msg_seq, {{false, kRegGpuId}});
    return frame.Seal(key_);
  }

  Bytes key_ = Bytes(32, 0x33);
};

TEST_F(GpuShimLinkTest, HandleFrameExecutesAndRepliesSealed) {
  auto sealed_reply = shim_.HandleFrame(SealCommit(0, 0));
  ASSERT_TRUE(sealed_reply.ok());
  auto reply_frame = LinkFrame::Open(sealed_reply.value(), key_);
  ASSERT_TRUE(reply_frame.ok());
  EXPECT_EQ(reply_frame->type, FrameType::kCommit);
  EXPECT_EQ(reply_frame->epoch, 1u);
  EXPECT_EQ(reply_frame->seq, 0u);
  auto reply = CommitReplyMsg::Deserialize(reply_frame->payload);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->read_values.size(), 1u);
  EXPECT_EQ(reply->read_values[0], device_.sku().gpu_id_reg);
  EXPECT_EQ(shim_.batches_executed(), 1u);
}

TEST_F(GpuShimLinkTest, DuplicateFrameReturnsCachedReplyWithoutReExecuting) {
  Bytes sealed = SealCommit(0, 0);
  auto first = shim_.HandleFrame(sealed);
  ASSERT_TRUE(first.ok());
  // The retransmitted copy is absorbed: same reply bytes, no second
  // execution, and the dup-drop counter ticks.
  auto again = shim_.HandleFrame(sealed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), first.value());
  EXPECT_EQ(shim_.batches_executed(), 1u);
  EXPECT_EQ(shim_.link_dup_drops(), 1u);
}

TEST_F(GpuShimLinkTest, ForgedAndCorruptedFramesAreRejected) {
  LinkFrame frame;
  frame.type = FrameType::kCommit;
  frame.epoch = 1;
  frame.seq = 0;
  frame.payload = MakeBatch(0, {{false, kRegGpuId}});
  // Wrong key: forgery.
  auto forged = shim_.HandleFrame(frame.Seal(Bytes(32, 0x34)));
  EXPECT_EQ(forged.status().code(), StatusCode::kIntegrityViolation);
  // Right key, flipped bit: transit corruption.
  Bytes sealed = frame.Seal(key_);
  sealed[sealed.size() / 2] ^= 0x10;
  auto corrupted = shim_.HandleFrame(sealed);
  EXPECT_EQ(corrupted.status().code(), StatusCode::kIntegrityViolation);
  EXPECT_EQ(shim_.link_mac_rejects(), 2u);
  EXPECT_EQ(shim_.batches_executed(), 0u);  // nothing executed
}

TEST_F(GpuShimLinkTest, StaleEpochFramesAreRejectedEvenWithAValidMac) {
  LinkFrame frame;
  frame.type = FrameType::kCommit;
  frame.epoch = 0;  // pre-re-key incarnation
  frame.seq = 0;
  frame.payload = MakeBatch(0, {{false, kRegGpuId}});
  auto result = shim_.HandleFrame(frame.Seal(key_));
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation);
  EXPECT_EQ(shim_.link_mac_rejects(), 1u);
  EXPECT_EQ(shim_.batches_executed(), 0u);
}

TEST_F(GpuShimLinkTest, SequenceGapsAreRejected) {
  auto skipped = shim_.HandleFrame(SealCommit(/*link_seq=*/5, /*msg_seq=*/0));
  EXPECT_EQ(skipped.status().code(), StatusCode::kIntegrityViolation);
  EXPECT_EQ(shim_.batches_executed(), 0u);
  // A duplicate below the window with no cached reply is also refused.
  ASSERT_TRUE(shim_.HandleFrame(SealCommit(0, 0)).ok());
  EXPECT_FALSE(shim_.HandleFrame(SealCommit(2, 1)).ok());
}

TEST_F(GpuShimLinkTest, ForgetLinkFrameForResumeAllowsExactlyOnceReExecution) {
  Bytes sealed = SealCommit(0, 0);
  ASSERT_TRUE(shim_.HandleFrame(sealed).ok());
  EXPECT_EQ(shim_.batches_executed(), 1u);
  // Resume rewinds the frame (its GPU effect was rolled back by replay);
  // presenting the same frame again must execute it once more rather than
  // serving the stale cached reply.
  shim_.ForgetLinkFrameForResume(0);
  auto again = shim_.HandleFrame(sealed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(shim_.batches_executed(), 2u);
  EXPECT_EQ(shim_.link_dup_drops(), 0u);
  // Forgetting a never-executed frame is a no-op.
  shim_.ForgetLinkFrameForResume(99);
  EXPECT_TRUE(shim_.HandleFrame(SealCommit(1, 1)).ok());
}

TEST_F(GpuShimLinkTest, ControlFramesAckWithoutClientSideEffect) {
  LinkFrame frame;
  frame.type = FrameType::kControl;
  frame.epoch = 1;
  frame.seq = 0;
  frame.payload = Bytes(1024, 0x77);  // e.g. an output download
  auto sealed_reply = shim_.HandleFrame(frame.Seal(key_));
  ASSERT_TRUE(sealed_reply.ok());
  auto reply = LinkFrame::Open(sealed_reply.value(), key_);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->payload.empty());  // bare ack
  EXPECT_EQ(shim_.batches_executed(), 0u);
}

}  // namespace
}  // namespace grt
