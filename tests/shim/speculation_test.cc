// Speculation history tests (§4.2's confidence-k prediction) and cloud
// service tests (VM image selection).
#include <gtest/gtest.h>

#include "src/cloud/service.h"
#include "src/shim/drivershim.h"

namespace grt {
namespace {

TEST(SpeculationHistory, RequiresKIdenticalEntries) {
  SpeculationHistory h;
  const uint64_t shape = 42;
  EXPECT_EQ(h.Predict(shape, 3), nullptr);
  h.Record(shape, {1, 2});
  h.Record(shape, {1, 2});
  EXPECT_EQ(h.Predict(shape, 3), nullptr);  // only two entries
  h.Record(shape, {1, 2});
  const auto* p = h.Predict(shape, 3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, (std::vector<uint32_t>{1, 2}));
}

TEST(SpeculationHistory, UnstableValuesRefusePrediction) {
  SpeculationHistory h;
  const uint64_t shape = 7;
  h.Record(shape, {1});
  h.Record(shape, {2});
  h.Record(shape, {1});
  EXPECT_EQ(h.Predict(shape, 3), nullptr);  // last 3: 1,2,1
  h.Record(shape, {1});
  EXPECT_EQ(h.Predict(shape, 3), nullptr);  // last 3: 2,1,1
  // It recovers once the tail stabilizes.
  h.Record(shape, {1});
  ASSERT_NE(h.Predict(shape, 3), nullptr);  // last 3: 1,1,1
}

TEST(SpeculationHistory, LowerKIsMoreEager) {
  SpeculationHistory h;
  const uint64_t shape = 9;
  h.Record(shape, {5});
  EXPECT_NE(h.Predict(shape, 1), nullptr);
  EXPECT_EQ(h.Predict(shape, 2), nullptr);
}

TEST(SpeculationHistory, ShapesIndependent) {
  SpeculationHistory h;
  for (int i = 0; i < 3; ++i) {
    h.Record(1, {10});
  }
  EXPECT_NE(h.Predict(1, 3), nullptr);
  EXPECT_EQ(h.Predict(2, 3), nullptr);
  EXPECT_EQ(h.sites(), 1u);
  h.Clear();
  EXPECT_EQ(h.Predict(1, 3), nullptr);
}

TEST(SpeculationHistory, BoundedDepth) {
  SpeculationHistory h;
  const uint64_t shape = 3;
  for (int i = 0; i < 100; ++i) {
    h.Record(shape, {static_cast<uint32_t>(i)});
  }
  // Old entries evicted; the last k are all different -> no prediction.
  EXPECT_EQ(h.Predict(shape, 3), nullptr);
  for (int i = 0; i < 3; ++i) {
    h.Record(shape, {7});
  }
  EXPECT_NE(h.Predict(shape, 3), nullptr);
}

TEST(ShimConfig, VariantsNest) {
  ShimConfig naive = ShimConfig::Naive();
  EXPECT_FALSE(naive.defer);
  EXPECT_FALSE(naive.meta_only_sync);
  ShimConfig m = ShimConfig::OursM();
  EXPECT_TRUE(m.meta_only_sync);
  EXPECT_FALSE(m.defer);
  ShimConfig md = ShimConfig::OursMD();
  EXPECT_TRUE(md.defer);
  EXPECT_FALSE(md.speculate);
  ShimConfig mds = ShimConfig::OursMDS();
  EXPECT_TRUE(mds.speculate);
  EXPECT_TRUE(mds.offload_polls);
  EXPECT_EQ(mds.confidence_k, 3);
}

TEST(CloudService, SelectsImagePerSku) {
  CloudService service;
  EXPECT_GE(service.images().size(), 2u);
  auto bifrost = service.SelectImage(SkuId::kMaliG71Mp8);
  ASSERT_TRUE(bifrost.ok());
  EXPECT_EQ(bifrost->driver_family, "arm,mali-bifrost");
  auto gen2 = service.SelectImage(SkuId::kMaliG52Mp2);
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ(gen2->driver_family, "arm,mali-bifrost-gen2");
  EXPECT_NE(bifrost->measurement, gen2->measurement);
}

TEST(CloudService, DeviceTreeMatchesClientSku) {
  CloudService service;
  for (const GpuSku& sku : AllSkus()) {
    auto dt = service.DeviceTreeFor(sku.id);
    ASSERT_TRUE(dt.ok()) << sku.name;
    EXPECT_EQ(SkuFromDeviceTree(dt.value()).value(), sku.id);
  }
}

}  // namespace
}  // namespace grt
