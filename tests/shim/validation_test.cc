// §5 continuous-validation tests: "After DriverShim sends its memory dump
// to the client, it unmaps the dumped memory regions from CPU... any
// spurious access to the memory region will be trapped... In the same
// fashion, GPUShim unmaps the shared memory from the GPU's page table when
// the GPU becomes idle; any spurious access from GPU will be trapped."
#include <gtest/gtest.h>

#include "src/cloud/session.h"
#include "src/harness/rig.h"
#include "src/shim/drivershim.h"

namespace grt {
namespace {

TEST(ContinuousValidation, CloudCpuSealedWhileGpuBusy) {
  ClientDevice device(SkuId::kMaliG71Mp8, 139);
  Timeline cloud_tl("cloud");
  PhysicalMemory cloud_mem(kCarveoutBase, kCarveoutSize);
  SpeculationHistory history;
  ShimConfig config = ShimConfig::OursMD();
  GpuShim gpushim(&device.gpu(), &device.tzasc(), &device.mem(),
                  &device.timeline(), config.meta_only_sync,
                  config.compress_sync, &device.soc());
  NetChannel channel(WifiConditions(), &cloud_tl, &device.timeline());
  DriverShim shim(config, &channel, &gpushim, &cloud_mem, &history);
  gpushim.BeginSession();

  // Before any job: the cloud CPU may touch the shared memory freely.
  EXPECT_TRUE(cloud_mem.WriteU32(kCarveoutBase, 1).ok());

  // Commit a batch containing a job-start write: the window seals. (The
  // IRQ mask rides in the same batch so the fault interrupt can fire.)
  shim.EnterHotFunction("fn");
  shim.WriteReg(kRegJobIrqMask, RegValue(0xFFFFFFFF), "init:mask");
  shim.WriteReg(kJobSlotBase + kJsCommandNext, RegValue(kJsCommandStart),
                "job:start");
  shim.LeaveHotFunction();

  // A buggy driver touching GPU memory mid-job traps (§5 safety net).
  Status trapped = cloud_mem.WriteU32(kCarveoutBase, 2);
  EXPECT_EQ(trapped.code(), StatusCode::kPermissionDenied);
  EXPECT_GE(shim.stats().spurious_cpu_traps, 1u);

  // The (faulting, since nothing is mapped) job raises its interrupt; the
  // window reopens.
  auto irq = shim.WaitForIrq(kSecond);
  ASSERT_TRUE(irq.ok()) << irq.status().ToString();
  EXPECT_TRUE(cloud_mem.WriteU32(kCarveoutBase, 3).ok());
  gpushim.EndSession();
}

TEST(ContinuousValidation, SpuriousClientGpuAccessTrapped) {
  ClientDevice device(SkuId::kMaliG71Mp8, 149);
  GpuShim shim(&device.gpu(), &device.tzasc(), &device.mem(),
               &device.timeline(), true, true, &device.soc());
  shim.BeginSession();

  // Rogue GPU activity outside any cloud-directed work: power the cores
  // and kick a job directly (simulating misbehaving firmware).
  Tzasc& tzasc = device.tzasc();
  auto w = [&](uint32_t reg, uint32_t v) {
    ASSERT_TRUE(tzasc.WriteGpuRegister(World::kSecure, &device.gpu(), reg, v)
                    .ok());
  };
  w(kRegL2PwrOnLo, 1);
  w(kRegShaderPwrOnLo, 0xFF);
  device.timeline().Advance(kMillisecond);
  w(kRegJobIrqMask, 0xFFFFFFFF);
  // Point the address space at the carveout so the rogue job's descriptor
  // fetch actually reaches the (policy-guarded) shared memory.
  w(kAsBase + kAsTranstabLo, static_cast<uint32_t>(kCarveoutBase));
  w(kAsBase + kAsCommand, kAsCommandUpdate);
  device.timeline().Advance(kMillisecond);
  w(kJobSlotBase + kJsHeadNextLo, 0x10000000);
  w(kJobSlotBase + kJsAffinityNextLo, 0xFF);
  w(kJobSlotBase + kJsCommandNext, kJsCommandStart);
  device.timeline().Advance(kMillisecond);

  // The descriptor fetch was trapped: job failed, access counted.
  EXPECT_GT(shim.spurious_gpu_traps(), 0u);
  EXPECT_EQ(device.gpu()
                .ReadRegister(kJobSlotBase + kJsStatus)
                .value(),
            kJsStatusFaulted);
  shim.EndSession();

  // Outside a session the policy is gone: GPU-origin access is governed by
  // the TZASC alone again.
  EXPECT_TRUE(
      device.mem().WriteU32(kCarveoutBase, 7, MemAccessOrigin::kGpu).ok());
}

TEST(ContinuousValidation, CleanRecordRunHasZeroTraps) {
  ClientDevice device(SkuId::kMaliG71Mp8, 151);
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, &device, config, &history);
  ASSERT_TRUE(session.Connect().ok());
  ASSERT_TRUE(session.RecordWorkload(BuildMnist(), 1).ok());
  // The protocol's own accesses all fall inside sanctioned windows: the
  // safety net never fires in correct operation.
  EXPECT_EQ(session.shim().stats().spurious_cpu_traps, 0u);
  EXPECT_EQ(session.gpushim().spurious_gpu_traps(), 0u);
}

}  // namespace
}  // namespace grt
