// Memory synchronization engine tests (§5): manifest coalescing,
// metastate selection, delta baselines across both directions, naive raw
// mode, and corrupt-message rejection.
#include <gtest/gtest.h>

#include "src/shim/memsync.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 1 << 20;

TEST(Manifest, CoalescesRunsByClass) {
  std::vector<uint64_t> all = {kBase, kBase + 4096, kBase + 8192,
                               kBase + 16384};
  std::vector<uint64_t> meta = {kBase + 4096, kBase + 8192};
  std::vector<PageRun> runs = BuildManifest(all, meta);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].start_pa, kBase);
  EXPECT_EQ(runs[0].n_pages, 1u);
  EXPECT_FALSE(runs[0].meta);
  EXPECT_EQ(runs[1].start_pa, kBase + 4096);
  EXPECT_EQ(runs[1].n_pages, 2u);
  EXPECT_TRUE(runs[1].meta);
  EXPECT_EQ(runs[2].start_pa, kBase + 16384);
  EXPECT_FALSE(runs[2].meta);
}

TEST(Manifest, EmptyInputs) {
  EXPECT_TRUE(BuildManifest({}, {}).empty());
}

class MemSyncPair : public ::testing::Test {
 protected:
  MemSyncPair()
      : cloud_mem_(kBase, kSize), client_mem_(kBase, kSize) {}

  void FillCloudPage(uint64_t pa, uint8_t value) {
    Bytes page(kPageSize, value);
    ASSERT_TRUE(cloud_mem_.LoadPage(pa, page).ok());
  }

  PhysicalMemory cloud_mem_;
  PhysicalMemory client_mem_;
};

TEST_F(MemSyncPair, MetaOnlyShipsOnlyMetaPages) {
  MemSyncEngine cloud(&cloud_mem_, true, true);
  MemSyncEngine client(&client_mem_, true, true);
  FillCloudPage(kBase, 0x11);          // data page
  FillCloudPage(kBase + 4096, 0x22);   // meta page
  std::vector<PageRun> manifest = BuildManifest({kBase, kBase + 4096},
                                                {kBase + 4096});
  Bytes msg = cloud.BuildSync(manifest).value();
  ASSERT_TRUE(client.ApplySync(msg).ok());
  // Meta page arrived, data page did not.
  EXPECT_EQ(client_mem_.ReadU32(kBase + 4096).value(), 0x22222222u);
  EXPECT_EQ(client_mem_.ReadU32(kBase).value(), 0u);
  EXPECT_EQ(cloud.stats().pages_shipped, 1u);
  // Client learned the manifest.
  EXPECT_EQ(client.learned_manifest().size(), manifest.size());
}

TEST_F(MemSyncPair, UnchangedPagesSkipped) {
  MemSyncEngine cloud(&cloud_mem_, true, true);
  MemSyncEngine client(&client_mem_, true, true);
  FillCloudPage(kBase, 0x33);
  std::vector<PageRun> manifest = {{kBase, 1, true}};
  ASSERT_TRUE(client.ApplySync(cloud.BuildSync(manifest).value()).ok());
  uint64_t wire_after_first = cloud.stats().wire_bytes;
  // Second sync with no changes ships nothing.
  ASSERT_TRUE(client.ApplySync(cloud.BuildSync(manifest).value()).ok());
  EXPECT_EQ(cloud.stats().pages_shipped, 1u);
  EXPECT_LT(cloud.stats().wire_bytes - wire_after_first, 64u);
}

TEST_F(MemSyncPair, DeltaUpdatesPropagate) {
  MemSyncEngine cloud(&cloud_mem_, true, true);
  MemSyncEngine client(&client_mem_, true, true);
  std::vector<PageRun> manifest = {{kBase, 1, true}};
  FillCloudPage(kBase, 0x44);
  ASSERT_TRUE(client.ApplySync(cloud.BuildSync(manifest).value()).ok());
  // Mutate two bytes; the delta should be tiny.
  ASSERT_TRUE(cloud_mem_.WriteU32(kBase + 100, 0xDEADBEEF).ok());
  uint64_t before = cloud.stats().wire_bytes;
  Bytes msg = cloud.BuildSync(manifest).value();
  EXPECT_LT(cloud.stats().wire_bytes - before, 256u);
  ASSERT_TRUE(client.ApplySync(msg).ok());
  EXPECT_EQ(client_mem_.ReadU32(kBase + 100).value(), 0xDEADBEEFu);
  EXPECT_EQ(client_mem_.DumpPage(kBase).value(),
            cloud_mem_.DumpPage(kBase).value());
}

TEST_F(MemSyncPair, BidirectionalBaselinesStayConsistent) {
  // The regression behind the single-engine-per-party design: after a
  // cloud->client sync, an (unchanged) client->cloud echo must be a no-op,
  // not a corruption.
  MemSyncEngine cloud(&cloud_mem_, true, true);
  MemSyncEngine client(&client_mem_, true, true);
  std::vector<PageRun> manifest = {{kBase, 2, true}};
  FillCloudPage(kBase, 0x55);
  FillCloudPage(kBase + 4096, 0x66);
  ASSERT_TRUE(client.ApplySync(cloud.BuildSync(manifest).value()).ok());

  // Client dumps back (nothing changed on its side).
  Bytes echo = client.BuildSync(client.learned_manifest()).value();
  ASSERT_TRUE(cloud.ApplySync(echo).ok());
  // Cloud content intact (the old two-engine design zeroed it here).
  EXPECT_EQ(cloud_mem_.ReadU32(kBase).value(), 0x55555555u);
  EXPECT_EQ(cloud_mem_.ReadU32(kBase + 4096).value(), 0x66666666u);
  EXPECT_EQ(client.stats().pages_shipped, 0u);  // echo was empty
}

TEST_F(MemSyncPair, NaiveModeShipsEverythingRaw) {
  MemSyncEngine cloud(&cloud_mem_, false, false);
  MemSyncEngine client(&client_mem_, false, false);
  FillCloudPage(kBase, 0x77);
  std::vector<PageRun> manifest = BuildManifest({kBase, kBase + 4096}, {});
  ASSERT_TRUE(client.ApplySync(cloud.BuildSync(manifest).value()).ok());
  EXPECT_EQ(cloud.stats().pages_shipped, 2u);  // data pages included
  EXPECT_GE(cloud.stats().wire_bytes, 2 * kPageSize);
  EXPECT_EQ(client_mem_.ReadU32(kBase).value(), 0x77777777u);
  // And again, with no dedup (naive re-ships).
  ASSERT_TRUE(client.ApplySync(cloud.BuildSync(manifest).value()).ok());
  EXPECT_EQ(cloud.stats().pages_shipped, 4u);
}

TEST_F(MemSyncPair, CorruptMessageRejected) {
  MemSyncEngine cloud(&cloud_mem_, true, true);
  MemSyncEngine client(&client_mem_, true, true);
  FillCloudPage(kBase, 0x42);
  Bytes msg = cloud.BuildSync({{kBase, 1, true}}).value();
  msg.resize(msg.size() / 2);
  EXPECT_FALSE(client.ApplySync(msg).ok());
}

TEST_F(MemSyncPair, CompressionBeatsRawOnSparsePages) {
  MemSyncEngine compressed(&cloud_mem_, true, true);
  MemSyncEngine raw(&cloud_mem_, true, false);
  // Page with a handful of nonzero words (typical page-table page).
  ASSERT_TRUE(cloud_mem_.WriteU64(kBase, 0x8000100000000003ull).ok());
  ASSERT_TRUE(cloud_mem_.WriteU64(kBase + 8, 0x8000200000000003ull).ok());
  std::vector<PageRun> manifest = {{kBase, 1, true}};
  (void)compressed.BuildSync(manifest);
  (void)raw.BuildSync(manifest);
  EXPECT_LT(compressed.stats().wire_bytes, raw.stats().wire_bytes / 10);
}

}  // namespace
}  // namespace grt
