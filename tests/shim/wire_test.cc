// Wire protocol tests: commit batches with symbolic write expressions,
// postfix compilation/evaluation properties, poll and IRQ messages.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/shim/wire.h"

namespace grt {
namespace {

using TokenKind = BatchItem::Token::Kind;

TEST(Wire, CommitBatchRoundTrip) {
  CommitBatchMsg msg;
  msg.seq = 99;
  BatchItem read;
  read.reg = 0x100;
  msg.items.push_back(read);
  BatchItem write;
  write.is_write = true;
  write.reg = 0xF0C;
  write.expr = {{TokenKind::kSlot, 0},
                {TokenKind::kConst, 0x10},
                {TokenKind::kOr, 0}};
  msg.items.push_back(write);

  auto parsed = CommitBatchMsg::Deserialize(msg.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->seq, 99u);
  ASSERT_EQ(parsed->items.size(), 2u);
  EXPECT_FALSE(parsed->items[0].is_write);
  EXPECT_TRUE(parsed->items[1].is_write);
  ASSERT_EQ(parsed->items[1].expr.size(), 3u);
  EXPECT_EQ(parsed->items[1].expr[0].kind, TokenKind::kSlot);
}

TEST(Wire, CommitPayloadIsSmall) {
  // §7.1: commit payloads are a few hundred bytes at most.
  CommitBatchMsg msg;
  for (int i = 0; i < 4; ++i) {
    BatchItem item;
    item.is_write = (i % 2) == 1;
    item.reg = 0x100 + 4 * i;
    if (item.is_write) {
      item.expr = {{TokenKind::kConst, 0xFF}};
    }
    msg.items.push_back(item);
  }
  EXPECT_LT(msg.Serialize().size(), 100u);
}

TEST(Wire, ExprCompileResolvesSlotAndConst) {
  // (S0 | 0x10) where S0 is this batch's first read — Listing 1(a).
  SymNodePtr read = MakeReadNode(1, 0xF0C);
  SymNodePtr expr = MakeOpNode(SymOp::kOr, read, MakeConstNode(0x10));
  auto tokens = CompileExpr(expr, {read.get()});
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(EvalExpr(tokens.value(), {0x03}).value(), 0x13u);
  EXPECT_EQ(EvalExpr(tokens.value(), {0xF0}).value(), 0xF0u | 0x10u);
}

TEST(Wire, ExprCompileUsesResolvedValueForForeignReads) {
  SymNodePtr old_read = MakeReadNode(1, 0x100);
  old_read->resolved = true;
  old_read->value = 0xAB;
  auto tokens = CompileExpr(old_read, /*batch_reads=*/{});
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(EvalExpr(tokens.value(), {}).value(), 0xABu);
}

TEST(Wire, ExprCompileRejectsUnresolvedForeignRead) {
  SymNodePtr dangling = MakeReadNode(1, 0x100);
  EXPECT_FALSE(CompileExpr(dangling, {}).ok());
}

TEST(Wire, EvalRejectsBadPrograms) {
  // Slot out of range.
  EXPECT_FALSE(EvalExpr({{TokenKind::kSlot, 5}}, {1, 2}).ok());
  // Stack underflow.
  EXPECT_FALSE(EvalExpr({{TokenKind::kOr, 0}}, {}).ok());
  // Leftover operands.
  EXPECT_FALSE(
      EvalExpr({{TokenKind::kConst, 1}, {TokenKind::kConst, 2}}, {}).ok());
  // Empty program.
  EXPECT_FALSE(EvalExpr({}, {}).ok());
}

class ExprProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprProperty, CompiledExprMatchesSymEval) {
  // Random expression trees over two batch reads evaluate identically via
  // EvalSym (cloud side) and EvalExpr (client side) — the transparency
  // property deferral depends on.
  Rng rng(GetParam());
  SymNodePtr r0 = MakeReadNode(1, 0x100);
  SymNodePtr r1 = MakeReadNode(2, 0x104);
  std::vector<SymNodePtr> pool = {r0, r1, MakeConstNode(rng.NextU32()),
                                  MakeConstNode(rng.NextU32() & 0xFF)};
  for (int i = 0; i < 12; ++i) {
    SymOp op = static_cast<SymOp>(2 + rng.NextBelow(5));  // And..Shr
    SymNodePtr lhs = pool[rng.NextBelow(pool.size())];
    SymNodePtr rhs = op == SymOp::kShl || op == SymOp::kShr
                         ? MakeConstNode(static_cast<uint32_t>(
                               rng.NextBelow(33)))
                         : pool[rng.NextBelow(pool.size())];
    pool.push_back(MakeOpNode(op, lhs, rhs));
  }
  SymNodePtr expr = pool.back();
  auto tokens = CompileExpr(expr, {r0.get(), r1.get()});
  ASSERT_TRUE(tokens.ok());

  uint32_t v0 = rng.NextU32(), v1 = rng.NextU32();
  r0->resolved = true;
  r0->value = v0;
  r1->resolved = true;
  r1->value = v1;
  auto direct = EvalSym(expr);
  auto remote = EvalExpr(tokens.value(), {v0, v1});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(direct.value(), remote.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Wire, PollMessagesRoundTrip) {
  PollRequestMsg req;
  req.seq = 5;
  req.reg = 0x200;
  req.mask = 0xFF;
  req.expected = 0;
  req.max_iters = 128;
  req.iter_delay_ns = 3000;
  auto parsed = PollRequestMsg::Deserialize(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->mask, 0xFFu);
  EXPECT_EQ(parsed->max_iters, 128);
  EXPECT_EQ(parsed->iter_delay_ns, 3000);

  PollReplyMsg reply;
  reply.seq = 5;
  reply.final_value = 0xAA;
  reply.iterations = 17;
  reply.timed_out = true;
  auto r = PollReplyMsg::Deserialize(reply.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->final_value, 0xAAu);
  EXPECT_EQ(r->iterations, 17);
  EXPECT_TRUE(r->timed_out);
}

TEST(Wire, IrqEventRoundTrip) {
  IrqEventMsg ev;
  ev.lines = 0b101;
  ev.mem_dump = {1, 2, 3, 4};
  auto parsed = IrqEventMsg::Deserialize(ev.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->lines, 0b101);
  EXPECT_EQ(parsed->mem_dump, ev.mem_dump);
}

TEST(Wire, CorruptBatchRejected) {
  CommitBatchMsg msg;
  BatchItem w;
  w.is_write = true;
  w.reg = 0x10;
  w.expr = {{TokenKind::kConst, 1}};
  msg.items.push_back(w);
  Bytes raw = msg.Serialize();
  raw.resize(raw.size() - 2);  // truncate
  EXPECT_FALSE(CommitBatchMsg::Deserialize(raw).ok());
}

TEST(Wire, LinkFrameSealOpenRoundTrip) {
  Bytes key(32, 0x5A);
  LinkFrame frame;
  frame.type = FrameType::kCommit;
  frame.epoch = 3;
  frame.seq = 41;
  frame.payload = {9, 8, 7, 6, 5};
  auto opened = LinkFrame::Open(frame.Seal(key), key);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->type, FrameType::kCommit);
  EXPECT_EQ(opened->epoch, 3u);
  EXPECT_EQ(opened->seq, 41u);
  EXPECT_EQ(opened->payload, frame.payload);
}

TEST(Wire, LinkFrameRejectsWrongKey) {
  Bytes key(32, 0x5A), wrong(32, 0x5B);
  LinkFrame frame;
  frame.payload = {1, 2, 3};
  Bytes sealed = frame.Seal(key);
  auto opened = LinkFrame::Open(sealed, wrong);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityViolation);
}

TEST(Wire, LinkFrameRejectsEverySingleByteTamper) {
  Bytes key(32, 0x5A);
  LinkFrame frame;
  frame.type = FrameType::kPoll;
  frame.epoch = 1;
  frame.seq = 7;
  frame.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  Bytes sealed = frame.Seal(key);
  for (size_t pos = 0; pos < sealed.size(); ++pos) {
    Bytes tampered = sealed;
    tampered[pos] ^= 0x01;
    EXPECT_FALSE(LinkFrame::Open(tampered, key).ok())
        << "tamper at byte " << pos << " survived";
  }
}

TEST(Wire, LinkFrameRejectsTruncation) {
  Bytes key(32, 0x5A);
  LinkFrame frame;
  frame.payload = Bytes(100, 0x11);
  Bytes sealed = frame.Seal(key);
  for (size_t keep : {size_t{0}, size_t{1}, sealed.size() / 2,
                      sealed.size() - 1}) {
    Bytes cut(sealed.begin(), sealed.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_FALSE(LinkFrame::Open(cut, key).ok())
        << "truncation to " << keep << " bytes survived";
  }
}

TEST(Wire, LinkFrameSealCoversEveryHeaderField) {
  // Two frames differing in any one header field seal to different wires
  // (the MAC binds type, epoch, and seq — not just the payload).
  Bytes key(32, 0x5A);
  LinkFrame base;
  base.type = FrameType::kCommit;
  base.epoch = 2;
  base.seq = 9;
  base.payload = {1, 2, 3};
  LinkFrame other_type = base;
  other_type.type = FrameType::kPoll;
  LinkFrame other_epoch = base;
  other_epoch.epoch = 3;
  LinkFrame other_seq = base;
  other_seq.seq = 10;
  EXPECT_NE(base.Seal(key), other_type.Seal(key));
  EXPECT_NE(base.Seal(key), other_epoch.Seal(key));
  EXPECT_NE(base.Seal(key), other_seq.Seal(key));
}

}  // namespace
}  // namespace grt
