// DriverShim unit tests: deferral/commit semantics driven directly through
// the GpuBus interface (no driver on top), so each §4 mechanism is
// observable in isolation.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/shim/drivershim.h"

namespace grt {
namespace {

class DriverShimTest : public ::testing::Test {
 protected:
  explicit DriverShimTest(ShimConfig config = ShimConfig::OursMD())
      : device_(SkuId::kMaliG71Mp8, 91),
        cloud_tl_("cloud"),
        cloud_mem_(kCarveoutBase, kCarveoutSize),
        gpushim_(&device_.gpu(), &device_.tzasc(), &device_.mem(),
                 &device_.timeline(), config.meta_only_sync,
                 config.compress_sync),
        channel_(WifiConditions(), &cloud_tl_, &device_.timeline()),
        shim_(config, &channel_, &gpushim_, &cloud_mem_, &history_) {
    gpushim_.BeginSession();
  }

  ~DriverShimTest() override { gpushim_.EndSession(); }

  uint32_t GpuReg(uint32_t reg) {
    return device_.gpu().ReadRegister(reg).value();
  }

  ClientDevice device_;
  Timeline cloud_tl_;
  PhysicalMemory cloud_mem_;
  SpeculationHistory history_;
  GpuShim gpushim_;
  NetChannel channel_;
  DriverShim shim_;
};

TEST_F(DriverShimTest, DeferralBatchesUntilForce) {
  shim_.EnterHotFunction("fn");
  RegValue a = shim_.ReadReg(kRegGpuId, "t:a");
  RegValue b = shim_.ReadReg(kRegShaderPresentLo, "t:b");
  shim_.WriteReg(kRegGpuIrqMask, RegValue(0xFF), "t:c");
  EXPECT_EQ(shim_.stats().commits, 0u);  // still queued
  // Forcing either read resolves the whole batch in one commit.
  EXPECT_EQ(a.Get(), device_.sku().gpu_id_reg);
  EXPECT_EQ(shim_.stats().commits, 1u);
  EXPECT_EQ(shim_.stats().accesses_committed, 3u);
  EXPECT_EQ(b.Get(), device_.sku().shader_present);  // already resolved
  EXPECT_EQ(shim_.stats().commits, 1u);
  EXPECT_EQ(GpuReg(kRegGpuIrqMask), 0xFFu);  // the write reached the GPU
  shim_.LeaveHotFunction();
}

TEST_F(DriverShimTest, SymbolicWriteEvaluatedOnClient) {
  // Listing 1(a): WRITE(SHADER_CONFIG, S1 | 0x10) ships as an expression
  // and is evaluated against the client's own read result.
  shim_.EnterHotFunction("fn");
  RegValue cfg = shim_.ReadReg(kRegShaderConfig, "t:cfg");
  shim_.WriteReg(kRegShaderConfig, cfg | 0x10u, "t:cfg_w");
  shim_.LeaveHotFunction();  // commit point
  EXPECT_EQ(shim_.stats().commits, 1u);
  EXPECT_EQ(GpuReg(kRegShaderConfig), 0x10u);  // 0 | 0x10 computed remotely
  EXPECT_TRUE(shim_.last_error().ok());
}

TEST_F(DriverShimTest, LockReleaseIsACommitPoint) {
  shim_.EnterHotFunction("fn");
  shim_.WriteReg(kRegGpuIrqMask, RegValue(0x1), "t:w");
  EXPECT_EQ(shim_.stats().commits, 0u);
  shim_.KernelApi(KernelEvent::kLockRelease);
  EXPECT_EQ(shim_.stats().commits, 1u);
  EXPECT_EQ(GpuReg(kRegGpuIrqMask), 0x1u);
  shim_.LeaveHotFunction();
}

TEST_F(DriverShimTest, ExplicitDelayIsACommitPoint) {
  shim_.EnterHotFunction("fn");
  shim_.WriteReg(kRegGpuIrqMask, RegValue(0x2), "t:w");
  shim_.Delay(2 * kMicrosecond);
  EXPECT_EQ(shim_.stats().commits, 1u);
  EXPECT_EQ(GpuReg(kRegGpuIrqMask), 0x2u);
  // The delay is also in the interaction log for replay.
  EXPECT_EQ(shim_.log().CountOf(LogOp::kDelay), 1u);
  shim_.LeaveHotFunction();
}

TEST_F(DriverShimTest, PerContextQueuesAreIndependent) {
  shim_.EnterHotFunction("fn");
  shim_.WriteReg(kRegGpuIrqMask, RegValue(0x3), "t:task");
  shim_.SetContext(DriverContext::kIrq);
  RegValue v = shim_.ReadReg(kRegGpuId, "t:irq");
  // Forcing the IRQ-context read commits ONLY the IRQ queue.
  (void)v.Get();
  EXPECT_EQ(shim_.stats().commits, 1u);
  EXPECT_EQ(shim_.stats().accesses_committed, 1u);
  EXPECT_EQ(GpuReg(kRegGpuIrqMask), 0u);  // task write still pending
  shim_.SetContext(DriverContext::kTask);
  shim_.KernelApi(KernelEvent::kSchedule);
  EXPECT_EQ(GpuReg(kRegGpuIrqMask), 0x3u);
  shim_.LeaveHotFunction();
}

TEST_F(DriverShimTest, SyncCommitsAreBlockingRoundTrips) {
  shim_.EnterHotFunction("fn");
  TimePoint t0 = cloud_tl_.now();
  RegValue v = shim_.ReadReg(kRegGpuId, "t:r");
  (void)v.Get();
  // No speculation history: the commit blocked for a full round trip.
  EXPECT_GE(cloud_tl_.now() - t0, WifiConditions().rtt);
  EXPECT_EQ(channel_.stats().blocking_rtts, 1u);
  shim_.LeaveHotFunction();
}

class DriverShimSpecTest : public DriverShimTest {
 protected:
  DriverShimSpecTest() : DriverShimTest(ShimConfig::OursMDS()) {}

  void WarmSite(const char* site, int times) {
    for (int i = 0; i < times; ++i) {
      shim_.EnterHotFunction("fn");
      RegValue v = shim_.ReadReg(kRegGpuId, site);
      (void)v.Get();
      shim_.LeaveHotFunction();
    }
  }
};

TEST_F(DriverShimSpecTest, WarmHistoryMakesCommitsAsynchronous) {
  WarmSite("t:stable", 3);
  uint64_t sync_before = shim_.stats().sync_commits;
  TimePoint t0 = cloud_tl_.now();
  shim_.EnterHotFunction("fn");
  RegValue v = shim_.ReadReg(kRegGpuId, "t:stable");
  EXPECT_EQ(v.Get(), device_.sku().gpu_id_reg);  // predicted instantly
  shim_.LeaveHotFunction();
  EXPECT_EQ(shim_.stats().sync_commits, sync_before);  // no new blocking
  EXPECT_GE(shim_.stats().spec_commits, 1u);
  EXPECT_LT(cloud_tl_.now() - t0, WifiConditions().rtt / 2);
  // Validation succeeds at quiesce.
  EXPECT_TRUE(shim_.Quiesce().ok());
  EXPECT_EQ(shim_.stats().mispredictions, 0u);
}

TEST_F(DriverShimSpecTest, NondeterministicRegistersNeverSpeculate) {
  for (int i = 0; i < 5; ++i) {
    shim_.EnterHotFunction("fn");
    RegValue v = shim_.ReadReg(kRegLatestFlush, "t:flush");
    (void)v.Get();
    shim_.LeaveHotFunction();
  }
  EXPECT_EQ(shim_.stats().spec_commits, 0u);
  EXPECT_EQ(shim_.stats().sync_commits, shim_.stats().commits);
}

TEST_F(DriverShimSpecTest, PrintkDrainsOutstandingSpeculation) {
  WarmSite("t:stable", 3);
  shim_.EnterHotFunction("fn");
  RegValue v = shim_.ReadReg(kRegGpuId, "t:stable");
  (void)v.Get();  // speculative
  shim_.LeaveHotFunction();
  ASSERT_GE(shim_.stats().spec_commits, 1u);
  uint64_t drains_before = shim_.stats().drains;
  shim_.KernelApi(KernelEvent::kPrintk);  // externalization: must validate
  EXPECT_GT(shim_.stats().drains, drains_before);
  EXPECT_TRUE(shim_.last_error().ok());
}

TEST_F(DriverShimSpecTest, WriteOnlyCommitsShipAsynchronously) {
  TimePoint t0 = cloud_tl_.now();
  shim_.EnterHotFunction("fn");
  shim_.WriteReg(kRegGpuIrqMask, RegValue(0x7), "t:w");
  shim_.LeaveHotFunction();
  EXPECT_EQ(shim_.stats().writeonly_commits, 1u);
  EXPECT_EQ(channel_.stats().blocking_rtts, 0u);
  EXPECT_LT(cloud_tl_.now() - t0, kMillisecond);  // never waited
  EXPECT_EQ(GpuReg(kRegGpuIrqMask), 0x7u);        // yet it arrived
}

TEST_F(DriverShimSpecTest, TaintedBatchStallsForValidation) {
  WarmSite("t:stable", 3);
  shim_.EnterHotFunction("fn");
  RegValue v = shim_.ReadReg(kRegGpuId, "t:stable");
  (void)v.Get();  // speculative value consumed by a "branch" -> taint
  // The next commit carries state derived from speculation; it must wait
  // for the outstanding validation instead of shipping speculative state.
  uint64_t drains_before = shim_.stats().drains;
  shim_.WriteReg(kRegGpuIrqMask, v | 0u, "t:dep");
  shim_.KernelApi(KernelEvent::kSchedule);
  EXPECT_GT(shim_.stats().drains, drains_before);
  shim_.LeaveHotFunction();
  EXPECT_TRUE(shim_.last_error().ok());
}

TEST_F(DriverShimSpecTest, OffloadedPollIsOneRoundTripWhenCold) {
  shim_.EnterHotFunction("fn");
  // Kick a cache flush, then poll its completion.
  shim_.WriteReg(kRegGpuCommand, RegValue(kGpuCommandCleanInvCaches),
                 "t:flush");
  PollResult r = shim_.Poll(kRegGpuIrqRawstat, kGpuIrqCleanCachesCompleted,
                            kGpuIrqCleanCachesCompleted, 64,
                            3 * kMicrosecond, "t:poll");
  shim_.LeaveHotFunction();
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(shim_.stats().polls_offloaded, 1u);
  // Cold history: the offload itself was the single blocking round trip
  // (plus the flush write's commit).
  EXPECT_LE(channel_.stats().blocking_rtts, 2u);
  EXPECT_EQ(shim_.log().CountOf(LogOp::kPollWait), 1u);
}

}  // namespace
}  // namespace grt
