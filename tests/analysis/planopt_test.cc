// Planopt soundness-checker negatives: a warm program whose provenance
// has been tampered with — reordered span members, a widened fusion
// window, flipped rewrite kinds, dropped records, a widened weaken
// mask, forged owned-interrupt bits, cooked stats — must be rejected by
// CheckWarmProgram no matter how plausible the mutated program looks.
// The checker re-derives every justification from the source plan; none
// of these mutations can survive re-derivation. Positive control: the
// builder's own untampered output passes.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "src/analysis/planopt/planopt.h"
#include "src/analysis/planopt/planopt_internal.h"
#include "src/harness/experiment.h"
#include "src/record/plan.h"
#include "src/record/replayer.h"
#include "src/sku/sku.h"

namespace grt {
namespace {

constexpr SkuId kSkuId = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;

struct Fixture {
  ReplayPlan plan;
  WarmProgram warm;  // mutable copy of the attached program
  GpuSku sku;
};

// Records mnist once per test binary and compiles + superoptimizes the
// plan; each test mutates a fresh copy of the warm program.
const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    ClientDevice device(kSkuId, kNondetSeed);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, BuildMnist(), "OursMDS",
                              WifiConditions(), &history, 0);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    auto rec = Recording::ParseSigned(m->signed_recording, m->session_key);
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    f->plan = CompileReplayPlan(*rec);
    auto sku = FindSku(kSkuId);
    EXPECT_TRUE(sku.ok());
    f->sku = *sku;
    std::string decline;
    Status attach = AttachWarmProgram(&f->plan, f->sku, &decline);
    EXPECT_TRUE(attach.ok()) << attach.ToString();
    EXPECT_NE(f->plan.warm, nullptr) << "declined: " << decline;
    f->warm = *f->plan.warm;
    return f;
  }();
  return *fixture;
}

// Applies `tamper` to a fresh copy of the builder's warm program and
// expects CheckWarmProgram to reject it with `want` in the message.
void ExpectRejected(const std::function<void(WarmProgram*)>& tamper,
                    const std::string& want) {
  const Fixture& f = SharedFixture();
  WarmProgram tampered = f.warm;
  tamper(&tampered);
  Status s = CheckWarmProgram(f.plan, tampered, f.sku);
  EXPECT_FALSE(s.ok()) << "tampered program accepted";
  if (!s.ok() && !want.empty()) {
    EXPECT_NE(s.ToString().find(want), std::string::npos) << s.ToString();
  }
}

size_t FirstSpanOp(const WarmProgram& warm) {
  for (size_t w = 0; w < warm.ops.size(); ++w) {
    if (warm.ops[w].kind == WarmOpKind::kRegSpan) {
      return w;
    }
  }
  ADD_FAILURE() << "no fused span in the mnist warm program";
  return 0;
}

TEST(PlanoptSoundness, UntamperedProgramPasses) {
  const Fixture& f = SharedFixture();
  ASSERT_GE(f.plan.version, 2u);
  Status s = CheckWarmProgram(f.plan, f.warm, f.sku);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(f.warm.stats.fused_spans, 0u);
  EXPECT_GT(f.warm.stats.elided_ops, 0u);
}

TEST(PlanoptSoundness, RejectsReorderedSpanMembers) {
  ExpectRejected(
      [](WarmProgram* w) {
        const WarmOp& span = w->ops[FirstSpanOp(*w)];
        ASSERT_GE(span.span_len, 2u);
        std::swap(w->span_writes[span.span_begin],
                  w->span_writes[span.span_begin + 1]);
      },
      "");
}

TEST(PlanoptSoundness, RejectsWidenedFusionWindow) {
  // Stretch the first span by one member, absorbing whatever op follows
  // it — a fusion the builder never proved legal.
  ExpectRejected(
      [](WarmProgram* w) {
        size_t s = FirstSpanOp(*w);
        const WarmOp& span = w->ops[s];
        const RegSpanWrite& last =
            w->span_writes[span.span_begin + span.span_len - 1];
        RegSpanWrite extra = last;
        extra.src_index += 1;
        w->span_writes.insert(
            w->span_writes.begin() + span.span_begin + span.span_len, extra);
        w->ops[s].span_len += 1;
        for (size_t j = s + 1; j < w->ops.size(); ++j) {
          if (w->ops[j].kind == WarmOpKind::kRegSpan) {
            w->ops[j].span_begin += 1;
          }
        }
      },
      "");
}

TEST(PlanoptSoundness, RejectsTamperedSpanWriteValue) {
  ExpectRejected(
      [](WarmProgram* w) {
        const WarmOp& span = w->ops[FirstSpanOp(*w)];
        w->span_writes[span.span_begin].value ^= 0x1;
      },
      "");
}

TEST(PlanoptSoundness, RejectsFlippedRewriteKind) {
  // Claim a retained op was elided as a constant read: the warm op it
  // used to justify becomes unaccounted for and the elision is illegal.
  ExpectRejected(
      [](WarmProgram* w) {
        for (PlanRewrite& r : w->provenance.rewrites) {
          if (r.kind == PlanRewriteKind::kKeep) {
            r.kind = PlanRewriteKind::kElideConstRead;
            return;
          }
        }
        FAIL() << "no kKeep rewrite";
      },
      "");
}

TEST(PlanoptSoundness, RejectsDroppedProvenanceRecord) {
  ExpectRejected(
      [](WarmProgram* w) {
        ASSERT_FALSE(w->provenance.rewrites.empty());
        w->provenance.rewrites.pop_back();
      },
      "");
}

TEST(PlanoptSoundness, RejectsWidenedWeakenMask) {
  // Weakening a verified read beyond the owned interrupt bits would let
  // real faults slip past verification.
  ExpectRejected(
      [](WarmProgram* w) {
        for (PlanRewrite& r : w->provenance.rewrites) {
          if (r.kind != PlanRewriteKind::kMaskWeaken) {
            continue;
          }
          r.aux |= 0x80000000u;
          w->ops[r.warm_index].verify_mask = ~r.aux;
          return;
        }
        FAIL() << "no kMaskWeaken rewrite";
      },
      "");
}

TEST(PlanoptSoundness, RejectsForgedOwnedIrqBits) {
  ExpectRejected(
      [](WarmProgram* w) { w->owned_gpu_irq_bits ^= 0x80000000u; },
      "owned");
}

TEST(PlanoptSoundness, RejectsCookedStats) {
  ExpectRejected(
      [](WarmProgram* w) { w->stats.fused_spans += 1; },
      "stats");
}

TEST(PlanoptSoundness, RejectsDowngradedPlanFormat) {
  ExpectRejected(
      [](WarmProgram* w) { w->provenance.plan_format = 1; },
      "format");
}

TEST(PlanoptSoundness, RejectsHiddenJobSlotWrite) {
  // Claim a job-slot write is a no-op latch elision. Even when the
  // latched value happens to match, hiding the write would blind the
  // power walk's per-slot affinity derivation.
  ExpectRejected(
      [](WarmProgram* w) {
        const Fixture& f = SharedFixture();
        for (PlanRewrite& r : w->provenance.rewrites) {
          if (r.kind != PlanRewriteKind::kKeep &&
              r.kind != PlanRewriteKind::kFuseSpan) {
            continue;
          }
          const PlanOp& op = f.plan.ops[r.src_index];
          if (op.kind != LogOp::kRegWrite ||
              !planopt::IsJobSlotRegister(op.reg)) {
            continue;
          }
          r.kind = PlanRewriteKind::kElideNoopLatch;
          return;
        }
        FAIL() << "no job-slot write rewrite";
      },
      "");
}

// The ninth verifier pass runs builder + checker on admission; a
// recording whose plan superoptimizes cleanly must still verify.
TEST(PlanoptSoundness, VerifierPassAcceptsCleanRecording) {
  const Fixture& f = SharedFixture();
  // Recompile from scratch through the public surface: attach must
  // agree with the already-checked fixture.
  ReplayPlan fresh = f.plan;
  fresh.version = 1;
  fresh.warm = nullptr;
  std::string decline;
  Status s = AttachWarmProgram(&fresh, f.sku, &decline);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(fresh.warm, nullptr) << decline;
  EXPECT_EQ(fresh.warm->ops.size(), f.warm.ops.size());
}

}  // namespace
}  // namespace grt
