// Dataflow IR tests: lifter (node kinds, commit batches, def-use edges,
// job-start/reset landmarks, memsync tagging) and the analyses the
// optimizer's safety arguments are built from. Every analysis is tested in
// both directions: it must answer "yes" on the constructions the passes
// exploit and "no" the moment a clobber, a consumer, or stale evidence
// enters the window.
#include <gtest/gtest.h>

#include "src/analysis/dataflow/analyses.h"
#include "src/analysis/dataflow/ir.h"
#include "src/hw/mmu.h"
#include "src/hw/regs.h"
#include "src/record/recording.h"

namespace grt {
namespace {

// ------------------------------------------------------------ log builders

LogEntry Write(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = reg;
  e.value = value;
  return e;
}

LogEntry Read(uint32_t reg, uint32_t value, bool speculative = false) {
  LogEntry e;
  e.op = LogOp::kRegRead;
  e.reg = reg;
  e.value = value;
  e.speculative = speculative;
  return e;
}

LogEntry Poll(uint32_t reg, uint32_t mask, uint32_t expected,
              uint32_t final_value) {
  LogEntry e;
  e.op = LogOp::kPollWait;
  e.reg = reg;
  e.mask = mask;
  e.expected = expected;
  e.value = final_value;
  return e;
}

LogEntry Delay(Duration d) {
  LogEntry e;
  e.op = LogOp::kDelay;
  e.delay = d;
  return e;
}

LogEntry IrqWait(uint8_t lines) {
  LogEntry e;
  e.op = LogOp::kIrqWait;
  e.irq_lines = lines;
  return e;
}

LogEntry Page(uint64_t pa, bool metastate, Bytes data = Bytes(kPageSize, 0)) {
  LogEntry e;
  e.op = LogOp::kMemPage;
  e.pa = pa;
  e.metastate = metastate;
  e.data = std::move(data);
  return e;
}

Recording MakeRecording(std::vector<LogEntry> entries) {
  Recording rec;
  rec.header.workload = "test";
  for (auto& e : entries) {
    rec.log.Add(std::move(e));
  }
  return rec;
}

constexpr uint32_t kJs0CommandNext = kJobSlotBase + kJsCommandNext;

// ------------------------------------------------------------------ lifter

TEST(Lifter, KindsAndLandmarks) {
  Recording rec = MakeRecording({
      Write(kRegGpuCommand, kGpuCommandSoftReset),  // 0: reset
      Read(kRegGpuId, 42),                          // 1
      Poll(kRegGpuIrqRawstat, kGpuIrqResetCompleted, kGpuIrqResetCompleted,
           kGpuIrqResetCompleted),                  // 2
      IrqWait(0x1),                                 // 3
      Delay(1000),                                  // 4
      Write(kJs0CommandNext, kJsCommandStart),      // 5: job start
      Page(0x1000, false),                          // 6
  });
  DataflowIr ir = LiftRecording(rec);
  ASSERT_EQ(ir.size(), 7u);
  EXPECT_EQ(ir.nodes[0].kind, IrKind::kRegWrite);
  EXPECT_EQ(ir.nodes[1].kind, IrKind::kRegRead);
  EXPECT_EQ(ir.nodes[2].kind, IrKind::kPoll);
  EXPECT_EQ(ir.nodes[3].kind, IrKind::kIrqWait);
  EXPECT_EQ(ir.nodes[4].kind, IrKind::kCommitBarrier);
  EXPECT_EQ(ir.nodes[5].kind, IrKind::kRegWrite);
  EXPECT_EQ(ir.nodes[6].kind, IrKind::kMemSync);

  ASSERT_EQ(ir.resets.size(), 1u);
  EXPECT_EQ(ir.resets[0], 0u);
  ASSERT_EQ(ir.job_starts.size(), 1u);
  EXPECT_EQ(ir.job_starts[0], 5u);
  EXPECT_EQ(ir.first_job_start(), 5u);
  EXPECT_TRUE(ir.has_job_start());

  EXPECT_EQ(ir.stimuli, (std::vector<uint32_t>{0, 5}));
  EXPECT_EQ(ir.writes_of.at(kRegGpuCommand), (std::vector<uint32_t>{0}));
  EXPECT_EQ(ir.observations_of.at(kRegGpuId), (std::vector<uint32_t>{1}));
}

TEST(Lifter, JobStartRequiresExactShape) {
  // Same value to kJsCommand (not _NEXT), or a non-start value to
  // _NEXT, must not count: the replayer's page gate keys on the exact
  // job-start shape.
  Recording rec = MakeRecording({
      Write(kJobSlotBase + kJsCommand, kJsCommandStart),
      Write(kJs0CommandNext, kJsCommandNop),
      Read(kJs0CommandNext, kJsCommandStart),
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_FALSE(ir.has_job_start());
  EXPECT_EQ(ir.first_job_start(), ir.size());
}

TEST(Lifter, CommitBatches) {
  Recording rec = MakeRecording({
      Write(kRegGpuIrqMask, 1),   // 0: batch 1
      Write(kRegJobIrqMask, 1),   // 1: batch 1
      Page(0x1000, true),         // 2: batch 1 (pages ride the batch)
      Read(kRegGpuId, 42),        // 3: barrier (batch 0)
      Write(kRegMmuIrqMask, 1),   // 4: batch 2
      Delay(100),                 // 5: barrier
      Write(kRegGpuIrqMask, 3),   // 6: batch 3
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_EQ(ir.n_batches, 3u);
  EXPECT_EQ(ir.nodes[0].batch, 1u);
  EXPECT_EQ(ir.nodes[1].batch, 1u);
  EXPECT_EQ(ir.nodes[2].batch, 1u);
  EXPECT_EQ(ir.nodes[3].batch, 0u);
  EXPECT_EQ(ir.nodes[4].batch, 2u);
  EXPECT_EQ(ir.nodes[5].batch, 0u);
  EXPECT_EQ(ir.nodes[6].batch, 3u);
}

TEST(Lifter, DefUseEdges) {
  Recording rec = MakeRecording({
      Write(kRegShaderPwrOnLo, 0xF),           // 0: defines READY_LO
      Write(kRegGpuIrqMask, 0x1),              // 1: unrelated latch
      Read(kRegShaderReadyLo, 0xF),            // 2: uses 0
      Read(kRegShaderReadyLo, 0xF),            // 3: no def in its window
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_EQ(ir.nodes[2].defs, (std::vector<uint32_t>{0}));
  EXPECT_EQ(ir.nodes[0].uses, (std::vector<uint32_t>{2}));
  // The second read's window starts after the first: no defs inside.
  EXPECT_TRUE(ir.nodes[3].defs.empty());
  EXPECT_EQ(ir.n_def_use_edges, 1u);
}

TEST(Lifter, MemsyncTaggingAndStats) {
  Recording rec = MakeRecording({
      Page(0x1000, false),                      // 0: before first start
      Write(kJs0CommandNext, kJsCommandStart),  // 1
      Page(0x2000, false),                      // 2: after
      Page(0x3000, true),                       // 3: after, metastate
  });
  TensorBinding input;
  input.va = 0x10000;
  input.pages = {0x2000};
  input.writable_at_replay = true;
  rec.bindings["input"] = input;

  DataflowIr ir = LiftRecording(rec);
  EXPECT_TRUE(ir.nodes[0].before_first_start);
  EXPECT_FALSE(ir.nodes[2].before_first_start);
  EXPECT_FALSE(ir.nodes[3].before_first_start);
  EXPECT_EQ(ir.nodes[2].binding, "input");
  EXPECT_TRUE(ir.nodes[3].binding.empty());
  EXPECT_TRUE(PageOverlapsWritableBinding(ir, 2));
  EXPECT_FALSE(PageOverlapsWritableBinding(ir, 3));

  IrStats stats = ComputeIrStats(ir);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.memsyncs, 3u);
  EXPECT_EQ(stats.job_starts, 1u);
  EXPECT_EQ(stats.registers_touched, 1u);
  EXPECT_NE(stats.ToString().find("memsyncs=3"), std::string::npos);

  std::string dump = DumpIr(ir, 2);
  EXPECT_NE(dump.find("memsync"), std::string::npos);
  EXPECT_NE(dump.find("more nodes"), std::string::npos);
}

// ---------------------------------------------------------------- analyses

TEST(Analyses, DominanceIsPrecedence) {
  Recording rec = MakeRecording({
      Write(kRegGpuIrqMask, 1),  // 0: batch 1
      Write(kRegJobIrqMask, 1),  // 1: batch 1
      Read(kRegGpuId, 42),       // 2: barrier
      Write(kRegMmuIrqMask, 1),  // 3: batch 2
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_TRUE(Dominates(ir, 0, 3));
  EXPECT_FALSE(Dominates(ir, 3, 0));
  // Same batch: neither is committed before the other forms.
  EXPECT_FALSE(CommitDominates(ir, 0, 1));
  // Different batches, and barrier boundaries, commit-dominate.
  EXPECT_TRUE(CommitDominates(ir, 0, 3));
  EXPECT_TRUE(CommitDominates(ir, 2, 3));
  EXPECT_FALSE(CommitDominates(ir, 3, 3));
}

TEST(Analyses, ClobberWindows) {
  Recording rec = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),                 // 0
      Write(kRegGpuIrqMask, 0x1),                   // 1: harmless latch
      Read(kRegShaderReadyLo, 0xF),                 // 2
      Write(kRegShaderPwrOffLo, 0xF),               // 3: clobbers READY
      Read(kRegShaderReadyLo, 0x0),                 // 4
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_FALSE(HasClobberBetween(ir, kRegShaderReadyLo, 0, 2));
  EXPECT_TRUE(HasClobberBetween(ir, kRegShaderReadyLo, 2, 4));
  EXPECT_EQ(PrevObservationOf(ir, kRegShaderReadyLo, 4), 2u);
  EXPECT_EQ(PrevObservationOf(ir, kRegShaderReadyLo, 0), std::nullopt);
  EXPECT_EQ(PrevWriteOf(ir, kRegShaderPwrOffLo, 4), 3u);
  EXPECT_EQ(NextWriteOf(ir, kRegGpuIrqMask, 0), 1u);
  EXPECT_EQ(NextWriteOf(ir, kRegGpuIrqMask, 1), std::nullopt);
}

TEST(Analyses, ObservationEstablishes) {
  Recording rec = MakeRecording({
      Read(kRegGpuIrqRawstat, 0x500),                          // 0
      Read(kRegGpuIrqRawstat, 0x500, /*speculative=*/true),    // 1
      Poll(kRegGpuIrqRawstat, 0x400, 0x400, 0x500),            // 2
  });
  DataflowIr ir = LiftRecording(rec);
  // A validated read pins every bit of its value.
  EXPECT_TRUE(ObservationEstablishes(ir, 0, ~0u, 0x500));
  EXPECT_TRUE(ObservationEstablishes(ir, 0, 0x400, 0x400));
  EXPECT_FALSE(ObservationEstablishes(ir, 0, ~0u, 0x400));
  // A speculative read pins nothing.
  EXPECT_FALSE(ObservationEstablishes(ir, 1, 0x400, 0x400));
  // A poll pins only the bits it masked.
  EXPECT_TRUE(ObservationEstablishes(ir, 2, 0x400, 0x400));
  EXPECT_FALSE(ObservationEstablishes(ir, 2, 0x500, 0x500));
}

TEST(Analyses, ConfigLiveness) {
  Recording rec = MakeRecording({
      Write(kRegGpuIrqMask, 0x1),   // 0: dead — overwritten, no consumer
      Write(kRegGpuIrqMask, 0x3),   // 1: live — IRQ wait consumes it
      IrqWait(0x1),                 // 2
      Write(kRegGpuIrqMask, 0x7),   // 3: live — STATUS read consumes it
      Read(kRegGpuIrqStatus, 0x0),  // 4
      Write(kRegGpuIrqMask, 0xF),   // 5: live — last write persists
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_FALSE(ConfigWriteIsLive(ir, 0));
  EXPECT_TRUE(ConfigWriteIsLive(ir, 1));
  EXPECT_TRUE(ConfigWriteIsLive(ir, 3));
  EXPECT_TRUE(ConfigWriteIsLive(ir, 5));
}

TEST(Analyses, SlotLatchLiveness) {
  const uint32_t head_next = kJobSlotBase + kJsHeadNextLo;
  Recording rec = MakeRecording({
      Write(head_next, 0x1000),                 // 0: live — slot 0 starts
      Write(kJs0CommandNext, kJsCommandStart),  // 1: the consumer
      Write(head_next, 0x2000),                 // 2: dead — overwritten
      Write(head_next, 0x3000),                 // 3: live (last)
  });
  DataflowIr ir = LiftRecording(rec);
  EXPECT_TRUE(ConfigWriteIsLive(ir, 0));
  EXPECT_FALSE(ConfigWriteIsLive(ir, 2));
  EXPECT_TRUE(ConfigWriteIsLive(ir, 3));
}

TEST(Analyses, PowerEvidence) {
  Recording rec = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),    // 0: evidence
      Write(kRegGpuIrqMask, 0x1),      // 1: harmless
      Write(kRegShaderPwrOffLo, 0xF),  // 2: query point
  });
  DataflowIr ir = LiftRecording(rec);
  uint32_t bits = 0;
  auto ev = DominatingPowerEvidence(ir, kRegShaderPwrOffLo, 2, &bits);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, 0u);
  EXPECT_EQ(bits, 0xFu);
}

TEST(Analyses, PowerEvidenceInvalidatedByInterference) {
  // A same-domain power write between the READY read and the query makes
  // the evidence stale — and anything older is necessarily staler.
  Recording rec = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),    // 0
      Write(kRegShaderPwrOnLo, 0xF0),  // 1: same domain/word
      Write(kRegShaderPwrOffLo, 0xF),  // 2: query point
  });
  DataflowIr ir = LiftRecording(rec);
  uint32_t bits = 0;
  EXPECT_FALSE(
      DominatingPowerEvidence(ir, kRegShaderPwrOffLo, 2, &bits).has_value());

  // A reset likewise invalidates.
  Recording rec2 = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),
      Write(kRegGpuCommand, kGpuCommandSoftReset),
      Write(kRegShaderPwrOffLo, 0xF),
  });
  DataflowIr ir2 = LiftRecording(rec2);
  EXPECT_FALSE(
      DominatingPowerEvidence(ir2, kRegShaderPwrOffLo, 2, &bits).has_value());

  // A speculative READY read is not evidence.
  Recording rec3 = MakeRecording({
      Read(kRegShaderReadyLo, 0xF, /*speculative=*/true),
      Write(kRegShaderPwrOffLo, 0xF),
  });
  DataflowIr ir3 = LiftRecording(rec3);
  EXPECT_FALSE(
      DominatingPowerEvidence(ir3, kRegShaderPwrOffLo, 1, &bits).has_value());
}

}  // namespace
}  // namespace grt
