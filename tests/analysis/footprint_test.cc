// Unit tests for the static footprint analysis (src/analysis/footprint):
// the interference lattice on synthetic footprints (partially overlapping
// register ranges, shared read-only pages, write/write latch groups,
// symmetry and reflexivity), coverage/validation helpers, the v4
// container roundtrip of a stamped footprint, and the footprint-soundness
// verifier pass on clean / tampered / unstamped recordings.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/footprint/footprint.h"
#include "src/analysis/verifier.h"
#include "src/cloud/session.h"
#include "src/harness/rig.h"
#include "src/hw/regs.h"
#include "src/ml/network.h"
#include "src/record/recording.h"

namespace grt {
namespace {

ResourceFootprint Empty() {
  ResourceFootprint fp;
  fp.computed = true;
  return fp;
}

ResourceFootprint WithRegs(std::vector<FootprintRange> regs) {
  ResourceFootprint fp = Empty();
  fp.regs = std::move(regs);
  return fp;
}

ResourceFootprint WithPages(std::vector<FootprintRange> pages) {
  ResourceFootprint fp = Empty();
  fp.pages = std::move(pages);
  return fp;
}

// Symmetry is part of the lattice contract; check it on every query.
Interference Verdict(const ResourceFootprint& a, const ResourceFootprint& b) {
  Interference ab = CheckInterference(a, b);
  EXPECT_EQ(ab, CheckInterference(b, a)) << "verdict is not symmetric";
  return ab;
}

TEST(InterferenceLattice, EmptyFootprintsAreDisjoint) {
  EXPECT_EQ(Verdict(Empty(), Empty()), Interference::kDisjoint);
}

TEST(InterferenceLattice, UncomputedFootprintConflictsWithEverything) {
  ResourceFootprint unstamped;  // computed == false
  EXPECT_EQ(Verdict(unstamped, Empty()), Interference::kConflicting);
  EXPECT_EQ(Verdict(unstamped, unstamped), Interference::kConflicting);
}

TEST(InterferenceLattice, SharedReadOnlyPagesAreDisjoint) {
  // Two plans reading the same page never perturb each other.
  ResourceFootprint a = WithPages({{0x80000000, 0x80002000, kFpRead}});
  ResourceFootprint b = WithPages({{0x80001000, 0x80003000, kFpRead}});
  EXPECT_EQ(Verdict(a, b), Interference::kDisjoint);
}

TEST(InterferenceLattice, PageWriteVsReadConflicts) {
  // DRAM survives the reset fence, so a written page readable by the
  // other plan is a conflict, not merely serializable.
  ResourceFootprint writer =
      WithPages({{0x80000000, 0x80001000, kFpWrite}});
  ResourceFootprint reader = WithPages({{0x80000000, 0x80001000, kFpRead}});
  EXPECT_EQ(Verdict(writer, reader), Interference::kConflicting);
}

TEST(InterferenceLattice, PageWriteVsWriteConflicts) {
  ResourceFootprint a = WithPages({{0x80000000, 0x80001000, kFpWrite}});
  ResourceFootprint b = WithPages({{0x80000000, 0x80001000, kFpWrite}});
  EXPECT_EQ(Verdict(a, b), Interference::kConflicting);
}

TEST(InterferenceLattice, DisjointWritePagesAreDisjoint) {
  ResourceFootprint a = WithPages({{0x80000000, 0x80001000, kFpWrite}});
  ResourceFootprint b = WithPages({{0x80001000, 0x80002000, kFpWrite}});
  EXPECT_EQ(Verdict(a, b), Interference::kDisjoint);
}

TEST(InterferenceLattice, PartialRegisterOverlapWriteVsExternal) {
  // a writes [0x100, 0x200); b observed [0x1c0, 0x240) before any write of
  // its own established it (kFpExternal). The overlap [0x1c0, 0x200) means
  // a's writes could change what b reads across its plan boundary — safe
  // only serialized behind a reset fence.
  ResourceFootprint a = WithRegs({{0x100, 0x200, kFpWrite}});
  ResourceFootprint b =
      WithRegs({{0x1c0, 0x240, kFpRead | kFpExternal}});
  EXPECT_EQ(Verdict(a, b), Interference::kSerializable);

  // Shift b's range past a's: no overlap, disjoint again.
  ResourceFootprint b2 =
      WithRegs({{0x200, 0x240, kFpRead | kFpExternal}});
  EXPECT_EQ(Verdict(a, b2), Interference::kDisjoint);
}

TEST(InterferenceLattice, RegisterOverlapWithoutExternalReadIsDisjoint) {
  // Both write the same register but each re-establishes it in-log before
  // reading (no kFpExternal): the reset fence plus in-plan writes make the
  // overlap invisible.
  ResourceFootprint a = WithRegs({{0x100, 0x104, kFpRead | kFpWrite}});
  ResourceFootprint b = WithRegs({{0x100, 0x104, kFpRead | kFpWrite}});
  EXPECT_EQ(Verdict(a, b), Interference::kDisjoint);
}

TEST(InterferenceLattice, ClobberVsExternalIsSerializable) {
  ResourceFootprint a = WithRegs({{0x100, 0x104, kFpClobber}});
  ResourceFootprint b = WithRegs({{0x100, 0x104, kFpRead | kFpExternal}});
  EXPECT_EQ(Verdict(a, b), Interference::kSerializable);
}

TEST(InterferenceLattice, AdmissionDemotesSerializableWithoutResetFence) {
  // kSerializable is sound only behind the per-replay reset fence
  // (scrub_before); a pool serving without the fence must treat the pair
  // as conflicting at admission.
  ResourceFootprint a = WithRegs({{0x100, 0x104, kFpWrite}});
  ResourceFootprint b = WithRegs({{0x100, 0x104, kFpRead | kFpExternal}});
  ASSERT_EQ(Verdict(a, b), Interference::kSerializable);
  EXPECT_EQ(AdmissionInterference(a, b, /*reset_fenced=*/true),
            Interference::kSerializable);
  EXPECT_EQ(AdmissionInterference(a, b, /*reset_fenced=*/false),
            Interference::kConflicting);
  // The fence only matters for serializable pairs: disjoint stays
  // disjoint and conflicting stays conflicting either way.
  EXPECT_EQ(AdmissionInterference(Empty(), Empty(), /*reset_fenced=*/false),
            Interference::kDisjoint);
  ResourceFootprint w = WithPages({{0x80000000, 0x80001000, kFpWrite}});
  EXPECT_EQ(AdmissionInterference(w, w, /*reset_fenced=*/true),
            Interference::kConflicting);
  EXPECT_EQ(AdmissionInterference(w, w, /*reset_fenced=*/false),
            Interference::kConflicting);
}

TEST(InterferenceLattice, SharedSlotWriteMaskConflicts) {
  ResourceFootprint a = Empty();
  a.slot_write_mask = 0b01;
  ResourceFootprint b = Empty();
  b.slot_write_mask = 0b11;
  EXPECT_EQ(Verdict(a, b), Interference::kConflicting);

  b.slot_write_mask = 0b10;  // disjoint slots
  EXPECT_EQ(Verdict(a, b), Interference::kDisjoint);
}

TEST(InterferenceLattice, SharedAddressSpaceWriteMaskConflicts) {
  ResourceFootprint a = Empty();
  a.as_write_mask = 0b001;
  ResourceFootprint b = Empty();
  b.as_write_mask = 0b001;
  EXPECT_EQ(Verdict(a, b), Interference::kConflicting);
}

TEST(InterferenceLattice, IrqLineVsExternalWaitIsSerializable) {
  ResourceFootprint a = Empty();
  a.irq_lines = 0b001;  // waits on (and thus consumes) the job line
  ResourceFootprint b = Empty();
  b.irq_lines = 0b001;
  b.irq_external = 0b001;  // waited before establishing the source itself
  EXPECT_EQ(Verdict(a, b), Interference::kSerializable);

  b.irq_external = 0;
  EXPECT_EQ(Verdict(a, b), Interference::kDisjoint);
}

TEST(InterferenceLattice, ConflictDominatesSerializable) {
  // A pair that is both register-serializable and page-conflicting must
  // report the worse verdict.
  ResourceFootprint a = WithRegs({{0x100, 0x104, kFpWrite}});
  a.pages = {{0x80000000, 0x80001000, kFpWrite}};
  ResourceFootprint b = WithRegs({{0x100, 0x104, kFpRead | kFpExternal}});
  b.pages = {{0x80000000, 0x80001000, kFpRead}};
  EXPECT_EQ(Verdict(a, b), Interference::kConflicting);
}

TEST(FootprintCoversTest, SupersetCoversSubset) {
  ResourceFootprint declared =
      WithRegs({{0x100, 0x200, kFpRead | kFpWrite}});
  declared.pages = {{0x80000000, 0x80004000, kFpWrite | kFpRead}};
  declared.irq_lines = 0b111;
  declared.slot_write_mask = 0b11;
  declared.as_write_mask = 0b11;

  ResourceFootprint required = WithRegs({{0x140, 0x180, kFpWrite}});
  required.pages = {{0x80001000, 0x80002000, kFpWrite}};
  required.irq_lines = 0b001;
  required.slot_write_mask = 0b01;
  required.as_write_mask = 0b10;

  std::string why;
  EXPECT_TRUE(FootprintCovers(declared, required, &why)) << why;
}

TEST(FootprintCoversTest, MissingAccessBitFailsWithReason) {
  ResourceFootprint declared = WithRegs({{0x100, 0x200, kFpRead}});
  ResourceFootprint required = WithRegs({{0x140, 0x144, kFpWrite}});
  std::string why;
  EXPECT_FALSE(FootprintCovers(declared, required, &why));
  EXPECT_FALSE(why.empty());
}

TEST(FootprintCoversTest, MissingPageFails) {
  ResourceFootprint declared =
      WithPages({{0x80000000, 0x80001000, kFpWrite}});
  ResourceFootprint required =
      WithPages({{0x80000000, 0x80002000, kFpWrite}});
  std::string why;
  EXPECT_FALSE(FootprintCovers(declared, required, &why));
}

TEST(ValidateFootprintTest, AcceptsWellFormed) {
  ResourceFootprint fp = WithRegs({{0x0, 0x4, kFpRead},
                                   {0x100, 0x200, kFpWrite}});
  fp.pages = {{0x80000000, 0x80001000, kFpWrite}};
  EXPECT_TRUE(ValidateFootprint(fp).ok());
}

TEST(ValidateFootprintTest, RejectsUnsortedAndOverlapping) {
  ResourceFootprint unsorted = WithRegs({{0x100, 0x200, kFpWrite},
                                         {0x0, 0x4, kFpRead}});
  EXPECT_FALSE(ValidateFootprint(unsorted).ok());

  ResourceFootprint overlapping = WithRegs({{0x0, 0x104, kFpRead},
                                            {0x100, 0x200, kFpWrite}});
  EXPECT_FALSE(ValidateFootprint(overlapping).ok());

  ResourceFootprint misaligned_page =
      WithPages({{0x80000100, 0x80001000, kFpWrite}});
  EXPECT_FALSE(ValidateFootprint(misaligned_page).ok());
}

// ------------------------------------------------- recorded footprints

class RecordedFootprintTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ClientDevice device(SkuId::kMaliG71Mp8);
    NetworkDef net = BuildMnist();
    CloudService service;
    SpeculationHistory history;
    RecordSessionConfig config;
    RecordSession session(&service, &device, config, &history);
    ASSERT_TRUE(session.Connect().ok());
    auto outcome = session.RecordWorkload(net, 7);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    auto rec = Recording::ParseSigned(outcome->signed_recording,
                                      session.key()->key());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    rec_ = new Recording(std::move(*rec));
  }

  static void TearDownTestSuite() {
    delete rec_;
    rec_ = nullptr;
  }

  static Recording* rec_;
};

Recording* RecordedFootprintTest::rec_ = nullptr;

TEST_F(RecordedFootprintTest, RecordingArrivesStamped) {
  const ResourceFootprint& fp = rec_->header.footprint;
  ASSERT_TRUE(fp.computed);
  EXPECT_TRUE(ValidateFootprint(fp).ok());
  EXPECT_FALSE(fp.regs.empty());
  EXPECT_FALSE(fp.pages.empty());
  // A recorded MNIST run submits on slot 0 / AS 0 and waits for job IRQs.
  EXPECT_NE(fp.slot_write_mask & 1u, 0u);
  EXPECT_NE(fp.as_write_mask & 1u, 0u);
  EXPECT_NE(fp.irq_lines, 0u);
  // Real recordings establish everything they read in-log: no external
  // register observations, no external IRQ waits.
  for (const FootprintRange& r : fp.regs) {
    EXPECT_EQ(r.access & kFpExternal, 0u)
        << "external register range at 0x" << std::hex << r.lo;
  }
  EXPECT_EQ(fp.irq_external, 0u);
}

TEST_F(RecordedFootprintTest, FootprintSurvivesV4Roundtrip) {
  Bytes body = rec_->SerializeBody();
  auto back = Recording::ParseUnsigned(body);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const ResourceFootprint& a = rec_->header.footprint;
  const ResourceFootprint& b = back->header.footprint;
  EXPECT_EQ(a.computed, b.computed);
  ASSERT_EQ(a.regs.size(), b.regs.size());
  for (size_t i = 0; i < a.regs.size(); ++i) {
    EXPECT_EQ(a.regs[i].lo, b.regs[i].lo);
    EXPECT_EQ(a.regs[i].hi, b.regs[i].hi);
    EXPECT_EQ(a.regs[i].access, b.regs[i].access);
  }
  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].lo, b.pages[i].lo);
    EXPECT_EQ(a.pages[i].hi, b.pages[i].hi);
    EXPECT_EQ(a.pages[i].access, b.pages[i].access);
  }
  EXPECT_EQ(a.irq_lines, b.irq_lines);
  EXPECT_EQ(a.irq_external, b.irq_external);
  EXPECT_EQ(a.slot_write_mask, b.slot_write_mask);
  EXPECT_EQ(a.as_write_mask, b.as_write_mask);
}

TEST_F(RecordedFootprintTest, RealRecordingConflictsWithItself) {
  // Self-interference: a plan writes its own pages, so two copies of it
  // can never co-reside. (Contrast with the empty footprint above.)
  EXPECT_EQ(CheckInterference(rec_->header.footprint,
                              rec_->header.footprint),
            Interference::kConflicting);
}

TEST_F(RecordedFootprintTest, VerifierAcceptsStampedRecording) {
  RecordingVerifier verifier;
  AnalysisReport report = verifier.Analyze(*rec_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(RecordedFootprintTest, VerifierRejectsTamperedFootprint) {
  // Drop a written page range from the declared footprint: the pass must
  // notice the declaration no longer over-approximates the log.
  Recording bad = *rec_;
  auto written = std::find_if(
      bad.header.footprint.pages.begin(), bad.header.footprint.pages.end(),
      [](const FootprintRange& r) { return (r.access & kFpWrite) != 0; });
  ASSERT_NE(written, bad.header.footprint.pages.end());
  bad.header.footprint.pages.erase(written);

  RecordingVerifier verifier;
  AnalysisReport report = verifier.Analyze(bad);
  EXPECT_FALSE(report.ok());
  bool from_footprint_pass = false;
  for (const Finding& f : report.findings()) {
    if (f.severity == FindingSeverity::kError) {
      EXPECT_EQ(f.pass, "footprint-soundness") << report.ToString();
      from_footprint_pass = true;
    }
  }
  EXPECT_TRUE(from_footprint_pass);
}

TEST_F(RecordedFootprintTest, VerifierWarnsOnlyOnUnstampedRecording) {
  // Pre-v4 recordings carry no footprint; they stay admissible (warning)
  // but the pool will treat them as conflicting with everything.
  Recording legacy = *rec_;
  legacy.header.footprint = ResourceFootprint{};
  RecordingVerifier verifier;
  AnalysisReport report = verifier.Analyze(legacy);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.warning_count(), 0u);
}

TEST_F(RecordedFootprintTest, DumpsMentionEveryResourceClass) {
  std::string text = FootprintToString(rec_->header.footprint);
  EXPECT_NE(text.find("registers"), std::string::npos);
  EXPECT_NE(text.find("pages"), std::string::npos);
  std::string json = FootprintToJson(rec_->header.footprint);
  EXPECT_NE(json.find("\"computed\""), std::string::npos);
  EXPECT_NE(json.find("\"regs\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\""), std::string::npos);
  EXPECT_NE(json.find("\"irq_lines\""), std::string::npos);
}

}  // namespace
}  // namespace grt
