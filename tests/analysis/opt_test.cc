// Optimizer pass tests: each pass against hand-built logs where the edit
// is provably safe — and the adversarial twins where one condition is
// perturbed and the pass must refuse. The pipeline driver is tested for
// provenance hygiene (trace completeness, original-index reporting,
// refusing re-optimization).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/analysis/opt/optimizer.h"
#include "src/analysis/opt/passes.h"
#include "src/hw/mmu.h"
#include "src/hw/regs.h"
#include "src/record/recording.h"

namespace grt {
namespace {

// ------------------------------------------------------------ log builders

LogEntry Write(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = reg;
  e.value = value;
  return e;
}

LogEntry Read(uint32_t reg, uint32_t value, bool speculative = false) {
  LogEntry e;
  e.op = LogOp::kRegRead;
  e.reg = reg;
  e.value = value;
  e.speculative = speculative;
  return e;
}

LogEntry Poll(uint32_t reg, uint32_t mask, uint32_t expected,
              uint32_t final_value) {
  LogEntry e;
  e.op = LogOp::kPollWait;
  e.reg = reg;
  e.mask = mask;
  e.expected = expected;
  e.value = final_value;
  return e;
}

LogEntry Delay(Duration d) {
  LogEntry e;
  e.op = LogOp::kDelay;
  e.delay = d;
  return e;
}

LogEntry IrqWait(uint8_t lines) {
  LogEntry e;
  e.op = LogOp::kIrqWait;
  e.irq_lines = lines;
  return e;
}

LogEntry Page(uint64_t pa, bool metastate, Bytes data = Bytes(kPageSize, 0)) {
  LogEntry e;
  e.op = LogOp::kMemPage;
  e.pa = pa;
  e.metastate = metastate;
  e.data = std::move(data);
  return e;
}

Recording MakeRecording(std::vector<LogEntry> entries) {
  Recording rec;
  rec.header.workload = "test";
  for (auto& e : entries) {
    rec.log.Add(std::move(e));
  }
  return rec;
}

// Runs one pass over a freshly lifted recording with an identity original-
// index mapping (as the pipeline driver does on iteration one).
PassEdit RunOn(const Recording& rec,
               PassEdit (*pass)(const DataflowIr&,
                                const std::vector<uint32_t>&)) {
  DataflowIr ir = LiftRecording(rec);
  std::vector<uint32_t> orig(rec.log.size());
  std::iota(orig.begin(), orig.end(), 0);
  return pass(ir, orig);
}

bool Deletes(const PassEdit& edit, uint32_t index) {
  return std::find(edit.deletions.begin(), edit.deletions.end(), index) !=
         edit.deletions.end();
}

constexpr uint32_t kJs0CommandNext = kJobSlotBase + kJsCommandNext;

// --------------------------------------------------------- dead-write-elim

TEST(DeadWrite, DuplicateConfigWriteEliminated) {
  Recording rec = MakeRecording({
      Write(kRegShaderConfig, 0x5),  // 0: kept (a trigger consumes it)
      Write(kRegGpuCommand, kGpuCommandCleanCaches),  // 1: consumer
      Write(kRegShaderConfig, 0x5),  // 2: same value, unclobbered: dead
      Write(kRegGpuCommand, kGpuCommandCleanCaches),  // 3: keeps 0 live
  });
  PassEdit edit = RunOn(rec, DeadWritePass);
  ASSERT_EQ(edit.deletions.size(), 1u);
  EXPECT_TRUE(Deletes(edit, 2));
  ASSERT_EQ(edit.trace.size(), 1u);
  EXPECT_EQ(edit.trace[0].reason, OptReason::kDeadConfigRewrite);
  EXPECT_EQ(edit.trace[0].index, 2u);
  EXPECT_EQ(edit.trace[0].aux_index, 0u);  // witness: the surviving write
}

TEST(DeadWrite, ResetClobbersDuplicateChain) {
  // Same value twice, but a reset in between wipes the latch: both must
  // survive (the second re-establishes the value).
  Recording rec = MakeRecording({
      Write(kRegShaderConfig, 0x5),
      Write(kRegGpuCommand, kGpuCommandSoftReset),
      Write(kRegShaderConfig, 0x5),
      Write(kRegGpuCommand, kGpuCommandCleanCaches),  // consumer for both
  });
  PassEdit edit = RunOn(rec, DeadWritePass);
  EXPECT_FALSE(Deletes(edit, 2));
}

TEST(DeadWrite, OverwrittenLatchWithNoConsumerIsDead) {
  Recording rec = MakeRecording({
      Write(kRegGpuIrqMask, 0x1),  // 0: dead — overwritten unconsumed
      Write(kRegGpuIrqMask, 0x3),  // 1: live (last write persists)
  });
  PassEdit edit = RunOn(rec, DeadWritePass);
  ASSERT_EQ(edit.deletions.size(), 1u);
  EXPECT_TRUE(Deletes(edit, 0));
}

TEST(DeadWrite, PowerHiNoOpNeedsPresentEvidence) {
  // With a validated PRESENT_HI == 0 read, the _HI power words are
  // architectural no-ops; without it, they must stay.
  Recording with_evidence = MakeRecording({
      Read(kRegShaderPresentHi, 0),
      Write(kRegShaderPwrOnHi, 0),
  });
  PassEdit edit = RunOn(with_evidence, DeadWritePass);
  ASSERT_EQ(edit.deletions.size(), 1u);
  EXPECT_TRUE(Deletes(edit, 1));
  EXPECT_EQ(edit.trace[0].reason, OptReason::kNoOpPowerWord);
  EXPECT_EQ(edit.trace[0].aux_index, 0u);

  Recording without = MakeRecording({
      Write(kRegShaderPwrOnHi, 0),
  });
  EXPECT_TRUE(RunOn(without, DeadWritePass).empty());

  Recording speculative = MakeRecording({
      Read(kRegShaderPresentHi, 0, /*speculative=*/true),
      Write(kRegShaderPwrOnHi, 0),
  });
  EXPECT_TRUE(RunOn(speculative, DeadWritePass).empty());
}

TEST(DeadWrite, CancellingPowerPairWithIrqRewrite) {
  Recording rec = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),     // 0: cores provably on
      Write(kRegShaderPwrOffLo, 0xF),   // 1: pair OFF
      Write(kRegShaderPwrOnLo, 0xF),    // 2: pair ON
      Read(kRegGpuIrqRawstat, 0x400),   // 3: PowerChangedAll — only the
                                        //    pair could have raised it
      Write(kRegGpuIrqClear, 0x400),    // 4: now clears provable zeros
  });
  PassEdit edit = RunOn(rec, DeadWritePass);
  EXPECT_TRUE(Deletes(edit, 1));
  EXPECT_TRUE(Deletes(edit, 2));
  EXPECT_TRUE(Deletes(edit, 4));  // dead IRQ clear
  ASSERT_EQ(edit.rewrites.size(), 1u);
  EXPECT_EQ(edit.rewrites[0].index, 3u);
  EXPECT_EQ(edit.rewrites[0].entry.value, 0u);  // bit 10 now provably 0

  bool saw_pair = false, saw_clear = false, saw_rewrite = false;
  for (const OptRecord& r : edit.trace) {
    saw_pair |= r.reason == OptReason::kCancellingPowerPair;
    saw_clear |= r.reason == OptReason::kDeadIrqClear;
    saw_rewrite |= r.reason == OptReason::kIrqBitsRewritten;
  }
  EXPECT_TRUE(saw_pair);
  EXPECT_TRUE(saw_clear);
  EXPECT_TRUE(saw_rewrite);
}

TEST(DeadWrite, PairRefusedWithoutEvidenceOrWithObserver) {
  // No READY evidence: the cores might be off, and OFF;ON would then
  // change state. Refuse.
  Recording no_evidence = MakeRecording({
      Write(kRegShaderPwrOffLo, 0xF),
      Write(kRegShaderPwrOnLo, 0xF),
  });
  EXPECT_TRUE(RunOn(no_evidence, DeadWritePass).empty());

  // Evidence covers fewer cores than the pair cycles. Refuse.
  Recording partial = MakeRecording({
      Read(kRegShaderReadyLo, 0x3),
      Write(kRegShaderPwrOffLo, 0xF),
      Write(kRegShaderPwrOnLo, 0xF),
  });
  EXPECT_TRUE(RunOn(partial, DeadWritePass).empty());

  // A READY observation between OFF and ON would see the cores down.
  Recording observed = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),
      Write(kRegShaderPwrOffLo, 0xF),
      Read(kRegShaderReadyLo, 0x0),
      Write(kRegShaderPwrOnLo, 0xF),
  });
  EXPECT_TRUE(RunOn(observed, DeadWritePass).empty());

  // A poll on RAWSTAT masking the PowerChanged bits depends on the pair's
  // transient IRQs: the global precheck must veto everything.
  Recording polled = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),
      Write(kRegShaderPwrOffLo, 0xF),
      Write(kRegShaderPwrOnLo, 0xF),
      Poll(kRegGpuIrqRawstat, 0x400, 0x400, 0x400),
  });
  EXPECT_TRUE(RunOn(polled, DeadWritePass).empty());

  // An unmasked PowerChanged interrupt would fire at the deleted pair's
  // old position: any GPU_IRQ_MASK admitting the bits vetoes.
  Recording masked = MakeRecording({
      Write(kRegGpuIrqMask, 0x600),
      Read(kRegShaderReadyLo, 0xF),
      Write(kRegShaderPwrOffLo, 0xF),
      Write(kRegShaderPwrOnLo, 0xF),
  });
  EXPECT_TRUE(RunOn(masked, DeadWritePass).empty());
}

TEST(DeadWrite, RawstatBitWithNoDefAborts) {
  // Recorded RAWSTAT shows bit 9 but nothing in the log raises it — the
  // model missed a def source; the pass must abort the pair rather than
  // rewrite on a broken premise.
  Recording rec = MakeRecording({
      Read(kRegShaderReadyLo, 0xF),
      Write(kRegShaderPwrOffLo, 0xF),
      Write(kRegShaderPwrOnLo, 0xF),
      Write(kRegGpuIrqClear, 0x600),   // kills the pair's own defs
      Read(kRegGpuIrqRawstat, 0x200),  // bit 9 set, no surviving def
  });
  PassEdit edit = RunOn(rec, DeadWritePass);
  EXPECT_FALSE(Deletes(edit, 1));
  EXPECT_FALSE(Deletes(edit, 2));
  EXPECT_TRUE(edit.rewrites.empty());
}

// ----------------------------------------------------- redundant-read-elim

TEST(RedundantRead, NondetReadsDropped) {
  Recording rec = MakeRecording({
      Read(kRegLatestFlush, 7),
      Read(kRegTimestampLo, 12345),
      Read(kRegLatestFlush, 9, /*speculative=*/true),  // kept: marked
  });
  PassEdit edit = RunOn(rec, RedundantReadPass);
  EXPECT_TRUE(Deletes(edit, 0));
  EXPECT_TRUE(Deletes(edit, 1));
  EXPECT_FALSE(Deletes(edit, 2));
  EXPECT_EQ(edit.trace[0].reason, OptReason::kNondetRead);
}

TEST(RedundantRead, DominatedReadAndPoll) {
  Recording rec = MakeRecording({
      Read(kRegGpuStatus, 0x0),                  // 0: witness
      Write(kRegGpuIrqMask, 0x1),                // 1: harmless latch
      Read(kRegGpuStatus, 0x0),                  // 2: dominated
      Poll(kRegGpuStatus, 0x1, 0x0, 0x0),        // 3: dominated (bit 0 = 0)
  });
  PassEdit edit = RunOn(rec, RedundantReadPass);
  EXPECT_FALSE(Deletes(edit, 0));
  EXPECT_TRUE(Deletes(edit, 2));
  EXPECT_TRUE(Deletes(edit, 3));
  ASSERT_EQ(edit.trace.size(), 2u);
  for (const OptRecord& r : edit.trace) {
    EXPECT_EQ(r.reason, OptReason::kDominatedObservation);
  }
  // Each deleted observation cites its nearest dominating witness (by
  // original index): the read cites entry 0, the poll cites entry 2 —
  // domination is transitive, so a chain of citations is still sound.
  EXPECT_EQ(edit.trace[0].aux_index, 0u);
  EXPECT_EQ(edit.trace[1].aux_index, 2u);
}

TEST(RedundantRead, CloberOrValueChangeBlocksDomination) {
  // A flush command clobbers GPU_STATUS: the second read revalidates.
  Recording clobbered = MakeRecording({
      Read(kRegGpuStatus, 0x0),
      Write(kRegGpuCommand, kGpuCommandCleanCaches),
      Read(kRegGpuStatus, 0x0),
  });
  EXPECT_TRUE(RunOn(clobbered, RedundantReadPass).empty());

  // Different observed value: the witness proves the wrong thing.
  Recording changed = MakeRecording({
      Read(kRegGpuFaultStatus, 0x0),
      Read(kRegGpuFaultStatus, 0x1),
  });
  EXPECT_TRUE(RunOn(changed, RedundantReadPass).empty());

  // A poll witness only pins its masked bits: a full-width read is not
  // dominated by it.
  Recording poll_witness = MakeRecording({
      Poll(kRegGpuStatus, 0x1, 0x0, 0x0),
      Read(kRegGpuStatus, 0x0),
  });
  EXPECT_TRUE(RunOn(poll_witness, RedundantReadPass).empty());
}

// ---------------------------------------------------------- commit-coalesce

TEST(Coalesce, AdjacentDelaysFold) {
  Recording rec = MakeRecording({
      Write(kRegGpuIrqMask, 1),
      Delay(100),
      Delay(250),
      Delay(50),
      Read(kRegGpuId, 42),
      Delay(10),  // lone delay: untouched
  });
  PassEdit edit = RunOn(rec, CoalescePass);
  ASSERT_EQ(edit.rewrites.size(), 1u);
  EXPECT_EQ(edit.rewrites[0].index, 1u);
  EXPECT_EQ(edit.rewrites[0].entry.delay, 400);
  EXPECT_TRUE(Deletes(edit, 2));
  EXPECT_TRUE(Deletes(edit, 3));
  EXPECT_FALSE(Deletes(edit, 5));
  for (const OptRecord& r : edit.trace) {
    EXPECT_EQ(r.action, OptAction::kMerge);
    EXPECT_EQ(r.reason, OptReason::kDelayMerged);
    EXPECT_EQ(r.aux_index, 1u);  // merged into the run head
  }
}

// ------------------------------------------------------------ memsync-prune

TEST(MemsyncPrune, OnlyPostStartDataPagesDie) {
  Recording rec = MakeRecording({
      Page(0x1000, false),                      // 0: initial image — kept
      Write(kJs0CommandNext, kJsCommandStart),  // 1
      Page(0x2000, false),                      // 2: replay-dead
      Page(0x3000, true),                       // 3: metastate — kept
  });
  PassEdit edit = RunOn(rec, MemsyncPrunePass);
  ASSERT_EQ(edit.deletions.size(), 1u);
  EXPECT_TRUE(Deletes(edit, 2));
  EXPECT_EQ(edit.trace[0].reason, OptReason::kReplayDeadPage);
  EXPECT_EQ(edit.trace[0].aux_index, 1u);  // cites the job start
  EXPECT_EQ(edit.trace[0].detail, kPageSize);
}

TEST(MemsyncPrune, WritableBindingPagesSpared) {
  Recording rec = MakeRecording({
      Write(kJs0CommandNext, kJsCommandStart),
      Page(0x2000, false),
  });
  TensorBinding input;
  input.pages = {0x2000};
  input.writable_at_replay = true;
  rec.bindings["input"] = input;
  EXPECT_TRUE(RunOn(rec, MemsyncPrunePass).empty());

  // A read-only binding (outputs) does not interfere.
  rec.bindings["input"].writable_at_replay = false;
  PassEdit edit = RunOn(rec, MemsyncPrunePass);
  EXPECT_TRUE(Deletes(edit, 1));
}

TEST(MemsyncPrune, NoJobStartMeansNothingDies) {
  Recording rec = MakeRecording({
      Page(0x1000, false),
      Page(0x2000, false),
  });
  EXPECT_TRUE(RunOn(rec, MemsyncPrunePass).empty());
}

// --------------------------------------------------------- pipeline driver

TEST(Optimizer, QuiescentInputStaysUnoptimized) {
  Recording rec = MakeRecording({
      Write(kRegGpuIrqMask, 0x1),
      IrqWait(0x1),
  });
  OptStats stats;
  auto out = OptimizeRecording(rec, OptimizeOptions{}, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->header.provenance.optimized);
  EXPECT_TRUE(out->header.provenance.records.empty());
  EXPECT_EQ(out->header.provenance.original_entries, 0u);
  EXPECT_EQ(stats.ops_eliminated(), 0u);
  EXPECT_EQ(out->log.size(), rec.log.size());
}

TEST(Optimizer, RefusesReOptimization) {
  Recording rec = MakeRecording({Write(kRegGpuIrqMask, 0x1)});
  rec.header.provenance.optimized = true;
  rec.header.provenance.original_entries = 2;
  rec.header.provenance.records.push_back(
      OptRecord{"dead-write-elim", OptAction::kDelete,
                OptReason::kDeadConfigRewrite, 1, 0, 0});
  OptStats stats;
  auto out = OptimizeRecording(rec, OptimizeOptions{}, &stats);
  EXPECT_FALSE(out.ok());
}

TEST(Optimizer, ProvenanceCarriesOriginalIndices) {
  Recording rec = MakeRecording({
      Read(kRegLatestFlush, 1),    // 0: nondet — eliminated
      Read(kRegLatestFlush, 2),    // 1: nondet — eliminated
      Delay(100),                  // 2
      Delay(200),                  // 3: merges into 2
      Write(kRegGpuIrqMask, 0x1),  // 4: survives (last write)
  });
  OptStats stats;
  auto out = OptimizeRecording(rec, OptimizeOptions{}, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const OptimizationProvenance& p = out->header.provenance;
  EXPECT_TRUE(p.optimized);
  EXPECT_EQ(p.original_entries, 5u);
  EXPECT_GE(p.records.size(), 3u);
  for (const OptRecord& r : p.records) {
    EXPECT_LT(r.index, p.original_entries);
    EXPECT_LT(r.aux_index, p.original_entries);
    EXPECT_FALSE(r.pass.empty());
  }
  EXPECT_EQ(stats.reads_eliminated, 2u);
  EXPECT_EQ(stats.delays_merged, 1u);
  EXPECT_EQ(out->log.size(), 2u);  // merged delay + surviving mask write
  EXPECT_EQ(stats.final_entries, 2u);

  // The trace round-trips through the v3 wire format.
  auto reparsed = Recording::ParseUnsigned(out->SerializeBody());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->header.provenance.optimized);
  EXPECT_EQ(reparsed->header.provenance.records.size(), p.records.size());
  EXPECT_EQ(reparsed->header.provenance.records.back().pass,
            p.records.back().pass);

  // And renders as a JSON trace naming every pass.
  std::string json = ProvenanceToJson(p);
  EXPECT_NE(json.find("redundant-read-elim"), std::string::npos);
  EXPECT_NE(json.find("commit-coalesce"), std::string::npos);
}

TEST(Optimizer, DisabledPassesDoNothing) {
  Recording rec = MakeRecording({
      Read(kRegLatestFlush, 1),
      Delay(100),
      Delay(200),
  });
  OptimizeOptions options;
  options.redundant_read = false;
  options.coalesce = false;
  options.dead_write = false;
  options.memsync_prune = false;
  OptStats stats;
  auto out = OptimizeRecording(rec, options, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->header.provenance.optimized);
  EXPECT_EQ(out->log.size(), 3u);
}

}  // namespace
}  // namespace grt
