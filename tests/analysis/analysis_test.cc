// Static verifier tests: per-pass unit tests over hand-built logs, the
// corrupted-recording corpus (each corruption caught by exactly the
// intended pass, at the right log index), and a clean sweep proving the
// recorder's own output passes every gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "src/analysis/footprint/footprint.h"
#include "src/analysis/passes.h"
#include "src/analysis/verifier.h"
#include "src/harness/experiment.h"
#include "src/hw/mmu.h"
#include "src/hw/regs.h"
#include "src/record/recording.h"
#include "src/sku/sku.h"

namespace grt {
namespace {

// ------------------------------------------------------------ log builders

LogEntry Write(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = reg;
  e.value = value;
  return e;
}

LogEntry Read(uint32_t reg, uint32_t value, bool speculative = false) {
  LogEntry e;
  e.op = LogOp::kRegRead;
  e.reg = reg;
  e.value = value;
  e.speculative = speculative;
  return e;
}

LogEntry Poll(uint32_t reg, uint32_t mask, uint32_t expected,
              uint32_t final_value) {
  LogEntry e;
  e.op = LogOp::kPollWait;
  e.reg = reg;
  e.mask = mask;
  e.expected = expected;
  e.value = final_value;
  return e;
}

LogEntry Page(uint64_t pa, bool metastate, Bytes data = Bytes(kPageSize, 0)) {
  LogEntry e;
  e.op = LogOp::kMemPage;
  e.pa = pa;
  e.metastate = metastate;
  e.data = std::move(data);
  return e;
}

Recording MakeRecording(std::vector<LogEntry> entries,
                        SkuId sku = SkuId::kMaliG71Mp8) {
  Recording rec;
  rec.header.workload = "test";
  rec.header.sku = sku;
  for (auto& e : entries) {
    rec.log.Add(std::move(e));
  }
  return rec;
}

const GpuSku& Mp8() {
  static const GpuSku sku = FindSku(SkuId::kMaliG71Mp8).value();
  return sku;
}

// Runs one pass over a recording (default: Mp8, not a continuation).
AnalysisReport RunPass(const AnalysisPass& pass, const Recording& rec,
                       const GpuSku* sku = &Mp8(), bool continuation = false) {
  AnalysisInput in;
  in.recording = &rec;
  in.sku = sku;
  in.continuation = continuation;
  AnalysisReport report;
  pass.Run(in, &report);
  return report;
}

bool HasErrorAt(const AnalysisReport& report, const std::string& pass,
                ptrdiff_t index) {
  return std::any_of(report.findings().begin(), report.findings().end(),
                     [&](const Finding& f) {
                       return f.severity == FindingSeverity::kError &&
                              f.pass == pass && f.log_index == index;
                     });
}

// All error findings come from one pass (warnings from others are fine).
bool ErrorsOnlyFrom(const AnalysisReport& report, const std::string& pass) {
  return report.error_count() > 0 &&
         std::all_of(report.findings().begin(), report.findings().end(),
                     [&](const Finding& f) {
                       return f.severity != FindingSeverity::kError ||
                              f.pass == pass;
                     });
}

// ----------------------------------------------------------------- grammar

TEST(GrammarPass, EmptyLogIsClean) {
  GrammarPass pass;
  EXPECT_TRUE(RunPass(pass, MakeRecording({})).ok());
}

TEST(GrammarPass, UnalignedAndOutOfWindowRegisters) {
  GrammarPass pass;
  auto report = RunPass(pass, MakeRecording({
                                  Write(0x1002, 0),       // unaligned
                                  Write(kGpuMmioSize, 0), // out of window
                                  Read(kRegGpuId, 1),     // fine
                              }));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 0));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 1));
  EXPECT_EQ(report.error_count(), 2u);
}

TEST(GrammarPass, NonPositiveDelay) {
  LogEntry d;
  d.op = LogOp::kDelay;
  d.delay = 0;
  GrammarPass pass;
  EXPECT_TRUE(HasErrorAt(RunPass(pass, MakeRecording({d})), "grammar", 0));
}

TEST(GrammarPass, BadIrqLines) {
  LogEntry none;
  none.op = LogOp::kIrqWait;
  none.irq_lines = 0;
  LogEntry unknown;
  unknown.op = LogOp::kIrqWait;
  unknown.irq_lines = 0x18;  // bits 3-4 do not exist
  GrammarPass pass;
  auto report = RunPass(pass, MakeRecording({none, unknown}));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 0));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 1));
}

TEST(GrammarPass, BadMemPages) {
  GrammarPass pass;
  auto report =
      RunPass(pass, MakeRecording({
                        Page(0x80000000, true, Bytes{}),          // empty
                        Page(0x80001000, true, Bytes(100, 1)),    // short
                        Page(0x80002123, false),                  // unaligned
                        Page(0x80003000, false),                  // fine
                    }));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 0));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 1));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 2));
  EXPECT_EQ(report.error_count(), 3u);
}

TEST(GrammarPass, StrayFieldsOnWrongOps) {
  LogEntry w = Write(kRegGpuCommand, 1);
  w.delay = 55;  // delay field on a write
  LogEntry r = Read(kRegGpuId, 1);
  r.pa = 0x80000000;  // page field on a read
  GrammarPass pass;
  auto report = RunPass(pass, MakeRecording({w, r}));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 0));
  EXPECT_TRUE(HasErrorAt(report, "grammar", 1));
}

// -------------------------------------------------------- register-protocol

// Minimal well-ordered bring-up + one job.
std::vector<LogEntry> CleanProtocolLog() {
  return {
      Write(kRegGpuCommand, kGpuCommandSoftReset),
      Write(kRegL2PwrOnLo, 0x1),
      Write(kRegShaderPwrOnLo, 0xFF),
      Write(kAsBase + kAsTranstabLo, 0x80000000),
      Write(kAsBase + kAsMemattrLo, 0x88888888),
      Write(kAsBase + kAsCommand, kAsCommandUpdate),
      Write(kJobSlotBase + kJsAffinityNextLo, 0xFF),
      Write(kJobSlotBase + kJsConfigNext, 0),
      Write(kJobSlotBase + kJsCommandNext, kJsCommandStart),
      Write(kRegJobIrqClear, JobIrqDoneBit(0)),
  };
}

TEST(RegisterProtocolPass, CleanSequencePasses) {
  RegisterProtocolPass pass;
  auto report = RunPass(pass, MakeRecording(CleanProtocolLog()));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RegisterProtocolPass, JobBeforeReset) {
  RegisterProtocolPass pass;
  auto report = RunPass(
      pass, MakeRecording({Write(kJobSlotBase + kJsCommandNext,
                                 kJsCommandStart)}));
  EXPECT_TRUE(HasErrorAt(report, "register-protocol", 0));
}

TEST(RegisterProtocolPass, ResubmitOnBusySlot) {
  auto log = CleanProtocolLog();
  // Second START before the first job's IRQ is acknowledged.
  log.insert(log.begin() + 9,
             Write(kJobSlotBase + kJsCommandNext, kJsCommandStart));
  RegisterProtocolPass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(HasErrorAt(report, "register-protocol", 9));
}

TEST(RegisterProtocolPass, AffinityBeforeShaderPower) {
  auto log = CleanProtocolLog();
  log[2] = Write(kRegShaderPwrOnLo, 0x0F);  // powers only half the cores
  RegisterProtocolPass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(HasErrorAt(report, "register-protocol", 8));
}

TEST(RegisterProtocolPass, AsUpdateWithoutTranstab) {
  RegisterProtocolPass pass;
  auto report = RunPass(
      pass, MakeRecording({
                Write(kRegGpuCommand, kGpuCommandSoftReset),
                Write(kAsBase + kAsCommand, kAsCommandUpdate),
            }));
  EXPECT_TRUE(HasErrorAt(report, "register-protocol", 1));
}

TEST(RegisterProtocolPass, JobOnUnconfiguredAddressSpace) {
  auto log = CleanProtocolLog();
  log[7] = Write(kJobSlotBase + kJsConfigNext, 3);  // AS3 never configured
  RegisterProtocolPass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(HasErrorAt(report, "register-protocol", 8));
}

TEST(RegisterProtocolPass, FlushReissuedBeforeCompletion) {
  RegisterProtocolPass pass;
  auto report = RunPass(
      pass,
      MakeRecording({
          Write(kRegGpuCommand, kGpuCommandSoftReset),
          Write(kRegGpuCommand, kGpuCommandCleanInvCaches),
          Write(kRegGpuCommand, kGpuCommandCleanInvCaches),  // no poll between
      }));
  EXPECT_TRUE(HasErrorAt(report, "register-protocol", 2));
}

TEST(RegisterProtocolPass, FlushCompletionPollAllowsReissue) {
  RegisterProtocolPass pass;
  auto report = RunPass(
      pass, MakeRecording({
                Write(kRegGpuCommand, kGpuCommandSoftReset),
                Write(kRegGpuCommand, kGpuCommandCleanInvCaches),
                Poll(kRegGpuIrqRawstat, kGpuIrqCleanCachesCompleted,
                     kGpuIrqCleanCachesCompleted, kGpuIrqCleanCachesCompleted),
                Write(kRegGpuCommand, kGpuCommandCleanInvCaches),
            }));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RegisterProtocolPass, ContinuationSegmentInheritsState) {
  // A lone job start is fine when the log continues from an initialized
  // device (layered recording, segment > 0).
  Recording rec = MakeRecording({
      Write(kJobSlotBase + kJsAffinityNextLo, 0xFF),
      Write(kJobSlotBase + kJsCommandNext, kJsCommandStart),
  });
  rec.header.segment_index = 1;
  rec.header.segment_count = 2;
  RegisterProtocolPass pass;
  EXPECT_TRUE(RunPass(pass, rec, &Mp8(), /*continuation=*/true).ok());
  EXPECT_FALSE(RunPass(pass, rec, &Mp8(), /*continuation=*/false).ok());
}

// ------------------------------------------------------ speculation-residue

TEST(SpeculationResiduePass, FlagsUnvalidatedReads) {
  SpeculationResiduePass pass;
  auto report = RunPass(pass, MakeRecording({
                                  Read(kRegGpuId, 1, false),
                                  Read(kRegJobIrqRawstat, 1, true),
                              }));
  EXPECT_FALSE(HasErrorAt(report, "speculation-residue", 0));
  EXPECT_TRUE(HasErrorAt(report, "speculation-residue", 1));
  EXPECT_EQ(report.error_count(), 1u);
}

// -------------------------------------------------------- poll-idempotence

TEST(PollIdempotencePass, NonIdempotentTarget) {
  PollIdempotencePass pass;
  auto report = RunPass(
      pass, MakeRecording({Poll(kRegGpuCommand, 1, 1, 1),
                           Poll(kJobSlotBase + kJsCommandNext, 1, 1, 1),
                           Poll(kAsBase + kAsCommand, 1, 1, 1),
                           Poll(kRegShaderPwrOnLo, 1, 1, 1)}));
  EXPECT_TRUE(HasErrorAt(report, "poll-idempotence", 0));
  EXPECT_TRUE(HasErrorAt(report, "poll-idempotence", 1));
  EXPECT_TRUE(HasErrorAt(report, "poll-idempotence", 2));
  EXPECT_TRUE(HasErrorAt(report, "poll-idempotence", 3));
}

TEST(PollIdempotencePass, UnsatisfiablePredicate) {
  PollIdempotencePass pass;
  // expected has bits outside mask: (value & mask) can never equal it.
  auto report = RunPass(
      pass, MakeRecording({Poll(kRegGpuIrqRawstat, 0x100, 0x300, 0x300)}));
  EXPECT_TRUE(HasErrorAt(report, "poll-idempotence", 0));
}

TEST(PollIdempotencePass, FinalValueMustSatisfyPredicate) {
  PollIdempotencePass pass;
  auto report = RunPass(
      pass, MakeRecording({Poll(kRegGpuIrqRawstat, 0x100, 0x100, 0x000)}));
  EXPECT_TRUE(HasErrorAt(report, "poll-idempotence", 0));
}

TEST(PollIdempotencePass, VacuousMaskWarnsButDoesNotReject) {
  PollIdempotencePass pass;
  auto report =
      RunPass(pass, MakeRecording({Poll(kRegGpuIrqRawstat, 0, 0, 0x123)}));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(PollIdempotencePass, WellFormedPollsPass) {
  PollIdempotencePass pass;
  auto report = RunPass(
      pass, MakeRecording({
                Poll(kRegGpuIrqRawstat, kGpuIrqResetCompleted,
                     kGpuIrqResetCompleted, kGpuIrqResetCompleted),
                Poll(kRegShaderPwrTransLo, 0xFF, 0, 0),
                Poll(kAsBase + kAsStatus, kAsStatusActive, 0, 0),
            }));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ------------------------------------------------------ metastate-coverage

// Builds a 3-level page table mapping `va` -> `cmd_pa` across four pages
// and returns the log prefix that syncs them as metastate.
struct TableFixture {
  uint64_t root = 0x80000000, l1 = 0x80001000, l2 = 0x80002000,
           cmd = 0x80003000;
  uint64_t va = 0x10000;

  static void PutPte(Bytes* page, uint64_t index, uint64_t pte) {
    for (int b = 0; b < 8; ++b) {
      (*page)[index * 8 + static_cast<uint64_t>(b)] =
          static_cast<uint8_t>(pte >> (8 * b));
    }
  }

  std::vector<LogEntry> SyncEntries(bool root_meta = true,
                                    bool cmd_meta = true) const {
    PageTableFormat f = Mp8().pt_format;
    Bytes root_img(kPageSize, 0), l1_img(kPageSize, 0), l2_img(kPageSize, 0);
    PutPte(&root_img, PtIndex(va, 0), EncodeTablePte(f, l1));
    PutPte(&l1_img, PtIndex(va, 1), EncodeTablePte(f, l2));
    PteFlags rx;
    rx.read = true;
    rx.execute = true;
    PutPte(&l2_img, PtIndex(va, 2), EncodePte(f, cmd, rx));
    return {
        Page(root, root_meta, root_img),
        Page(l1, true, l1_img),
        Page(l2, true, l2_img),
        Page(cmd, cmd_meta),
    };
  }

  std::vector<LogEntry> JobEntries() const {
    return {
        Write(kAsBase + kAsTranstabLo, static_cast<uint32_t>(root)),
        Write(kAsBase + kAsTranstabHi, static_cast<uint32_t>(root >> 32)),
        Write(kJobSlotBase + kJsHeadNextLo, static_cast<uint32_t>(va)),
        Write(kJobSlotBase + kJsHeadNextHi, static_cast<uint32_t>(va >> 32)),
        Write(kJobSlotBase + kJsConfigNext, 0),
        Write(kJobSlotBase + kJsCommandNext, kJsCommandStart),
    };
  }
};

TEST(MetastateCoveragePass, JobWithoutAnyMetastate) {
  TableFixture fx;
  MetastateCoveragePass pass;
  auto report = RunPass(pass, MakeRecording(fx.JobEntries()));
  EXPECT_TRUE(HasErrorAt(report, "metastate-coverage", 5));
}

TEST(MetastateCoveragePass, FullyCoveredJobPasses) {
  TableFixture fx;
  auto log = fx.SyncEntries();
  auto job = fx.JobEntries();
  log.insert(log.end(), job.begin(), job.end());
  MetastateCoveragePass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(MetastateCoveragePass, UncoveredPageTableRoot) {
  TableFixture fx;
  auto log = fx.SyncEntries(/*root_meta=*/false);
  auto job = fx.JobEntries();
  log.insert(log.end(), job.begin(), job.end());
  MetastateCoveragePass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(HasErrorAt(report, "metastate-coverage", 9));
}

TEST(MetastateCoveragePass, UncoveredCommandBufferPage) {
  TableFixture fx;
  auto log = fx.SyncEntries(/*root_meta=*/true, /*cmd_meta=*/false);
  auto job = fx.JobEntries();
  log.insert(log.end(), job.begin(), job.end());
  MetastateCoveragePass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(HasErrorAt(report, "metastate-coverage", 9));
}

TEST(MetastateCoveragePass, UnmappedChainHead) {
  TableFixture fx;
  auto log = fx.SyncEntries();
  auto job = fx.JobEntries();
  job[2] = Write(kJobSlotBase + kJsHeadNextLo, 0x900000);  // unmapped va
  log.insert(log.end(), job.begin(), job.end());
  MetastateCoveragePass pass;
  auto report = RunPass(pass, MakeRecording(log));
  EXPECT_TRUE(HasErrorAt(report, "metastate-coverage", 9));
}

// -------------------------------------------------------------- sku-compat

TEST(SkuCompatPass, UnknownSkuRejectedAtRecordingLevel) {
  Recording rec = MakeRecording({}, static_cast<SkuId>(0x9999));
  SkuCompatPass pass;
  auto report = RunPass(pass, rec, /*sku=*/nullptr);
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", kWholeRecording));
}

TEST(SkuCompatPass, DiscoveryReadMismatch) {
  SkuCompatPass pass;
  auto report = RunPass(pass, MakeRecording({
                                  Read(kRegGpuId, Mp8().gpu_id_reg),  // fine
                                  Read(kRegGpuId, 0xDEAD0010),
                                  Read(kRegShaderPresentLo, 0x3),  // MP2 tiling
                              }));
  EXPECT_FALSE(HasErrorAt(report, "sku-compat", 0));
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", 1));
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", 2));
}

TEST(SkuCompatPass, AffinityBeyondPresentCores) {
  SkuCompatPass pass;
  auto report = RunPass(
      pass, MakeRecording({
                Write(kJobSlotBase + kJsAffinityNextLo, 0xFFFF),  // MP8 = 0xFF
                Write(kRegShaderPwrOnLo, 0x100),
            }));
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", 0));
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", 1));
}

TEST(SkuCompatPass, JobConfigBeyondAddressSpaces) {
  SkuCompatPass pass;
  auto report = RunPass(
      pass, MakeRecording({Write(kJobSlotBase + kJsConfigNext, 9)}));
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", 0));
}

// ---------------------------------------------------- optimizer-provenance

TEST(OptimizerProvenancePass, UnoptimizedEmptyBlockIsClean) {
  OptimizerProvenancePass pass;
  EXPECT_TRUE(RunPass(pass, MakeRecording({Read(kRegGpuId, 1)})).ok());
}

TEST(OptimizerProvenancePass, TraceWithoutClaimRejected) {
  Recording rec = MakeRecording({Read(kRegGpuId, 1)});
  rec.header.provenance.records.push_back(
      OptRecord{"dead-write-elim", OptAction::kDelete,
                OptReason::kDeadConfigRewrite, 0, 0, 0});
  OptimizerProvenancePass pass;
  EXPECT_TRUE(HasErrorAt(RunPass(pass, rec), "optimizer-provenance",
                         kWholeRecording));

  // ...and so is a pre-optimization entry count with no claim.
  Recording rec2 = MakeRecording({Read(kRegGpuId, 1)});
  rec2.header.provenance.original_entries = 5;
  EXPECT_TRUE(HasErrorAt(RunPass(pass, rec2), "optimizer-provenance",
                         kWholeRecording));
}

TEST(OptimizerProvenancePass, ClaimWithoutTraceRejected) {
  Recording rec = MakeRecording({Read(kRegGpuId, 1)});
  rec.header.provenance.optimized = true;
  rec.header.provenance.original_entries = 2;
  OptimizerProvenancePass pass;
  EXPECT_TRUE(HasErrorAt(RunPass(pass, rec), "optimizer-provenance",
                         kWholeRecording));
}

TEST(OptimizerProvenancePass, ValidClaimAccepted) {
  Recording rec = MakeRecording({Read(kRegGpuId, 1)});
  rec.header.provenance.optimized = true;
  rec.header.provenance.original_entries = 2;
  rec.header.provenance.records.push_back(
      OptRecord{"redundant-read-elim", OptAction::kDelete,
                OptReason::kNondetRead, 1, 0, 0});
  OptimizerProvenancePass pass;
  EXPECT_TRUE(RunPass(pass, rec).ok());
}

TEST(OptimizerProvenancePass, MalformedRecordsRejected) {
  OptimizerProvenancePass pass;

  // A log longer than the claimed original: optimization never adds ops.
  Recording grew = MakeRecording({Read(kRegGpuId, 1), Read(kRegGpuId, 1)});
  grew.header.provenance.optimized = true;
  grew.header.provenance.original_entries = 1;
  grew.header.provenance.records.push_back(
      OptRecord{"x", OptAction::kDelete, OptReason::kNondetRead, 0, 0, 0});
  EXPECT_FALSE(RunPass(pass, grew).ok());

  // Record index beyond the original log.
  Recording oob = MakeRecording({Read(kRegGpuId, 1)});
  oob.header.provenance.optimized = true;
  oob.header.provenance.original_entries = 2;
  oob.header.provenance.records.push_back(
      OptRecord{"x", OptAction::kDelete, OptReason::kNondetRead, 7, 0, 0});
  EXPECT_FALSE(RunPass(pass, oob).ok());

  // Witness index beyond the original log.
  Recording oob_aux = MakeRecording({Read(kRegGpuId, 1)});
  oob_aux.header.provenance.optimized = true;
  oob_aux.header.provenance.original_entries = 2;
  oob_aux.header.provenance.records.push_back(
      OptRecord{"x", OptAction::kDelete, OptReason::kNondetRead, 0, 9, 0});
  EXPECT_FALSE(RunPass(pass, oob_aux).ok());

  // Anonymous pass / out-of-range action and reason enums.
  Recording anon = MakeRecording({Read(kRegGpuId, 1)});
  anon.header.provenance.optimized = true;
  anon.header.provenance.original_entries = 2;
  anon.header.provenance.records.push_back(
      OptRecord{"", static_cast<OptAction>(99), static_cast<OptReason>(99),
                0, 0, 0});
  auto report = RunPass(pass, anon);
  EXPECT_GE(report.error_count(), 3u);
}

// ---------------------------------------------------------------- verifier

TEST(Verifier, VerdictNamesPassAndEntry) {
  Recording rec = MakeRecording({Read(kRegGpuId, Mp8().gpu_id_reg, true)});
  RecordingVerifier verifier;
  Status s = verifier.Verify(rec);
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
  EXPECT_NE(s.message().find("speculation-residue"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("entry 0"), std::string::npos) << s.message();
}

TEST(Verifier, ReportBookkeeping) {
  Recording rec = MakeRecording({Read(kRegGpuId, Mp8().gpu_id_reg)});
  RecordingVerifier verifier;
  auto report = verifier.Analyze(rec);
  EXPECT_EQ(report.entries_analyzed, 1u);
  EXPECT_EQ(report.passes_run, 9u);  // 8 standard + planopt-soundness
  EXPECT_TRUE(report.ok()) << report.ToString();
}

class RejectEverythingPass : public AnalysisPass {
 public:
  const char* name() const override { return "reject-everything"; }
  void Run(const AnalysisInput&, AnalysisReport* report) const override {
    Error(report, kWholeRecording, "no recording shall pass");
  }
};

TEST(Verifier, CustomPassesCompose) {
  RecordingVerifier verifier;
  verifier.AddPass(std::make_unique<RejectEverythingPass>());
  Status s = verifier.Verify(MakeRecording({}));
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
  EXPECT_NE(s.message().find("reject-everything"), std::string::npos);
}

// ------------------------------------------------- corrupted-recording corpus

// Real recordings produced by the seed recorder, corrupted one aspect at a
// time; each corruption must be caught by exactly the intended pass.

Recording RecordMnist() {
  ClientDevice device(SkuId::kMaliG71Mp8, 61);
  SpeculationHistory history;
  NetworkDef net = BuildMnist();
  auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                            &history, 1);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  auto rec = Recording::ParseSigned(m->signed_recording, m->session_key);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  return *rec;
}

InteractionLog RebuildLog(const InteractionLog& log,
                          const std::function<void(size_t, LogEntry*)>& edit,
                          ptrdiff_t insert_dup_at = -1) {
  InteractionLog out;
  const auto& entries = log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    LogEntry e = entries[i];
    edit(i, &e);
    out.Add(e);
    if (static_cast<ptrdiff_t>(i) == insert_dup_at) {
      out.Add(entries[i]);
    }
  }
  return out;
}

size_t FirstIndexOf(const InteractionLog& log,
                    const std::function<bool(const LogEntry&)>& want) {
  const auto& entries = log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (want(entries[i])) {
      return i;
    }
  }
  ADD_FAILURE() << "no matching log entry";
  return 0;
}

bool IsJobStart(const LogEntry& e) {
  return e.op == LogOp::kRegWrite && e.value == kJsCommandStart &&
         e.reg >= kJobSlotBase &&
         e.reg < kJobSlotBase + kMaxJobSlots * kJobSlotStride &&
         (e.reg - kJobSlotBase) % kJobSlotStride == kJsCommandNext;
}

class CorpusTest : public ::testing::Test {
 protected:
  static const Recording& Clean() {
    static const Recording rec = RecordMnist();
    return rec;
  }
  RecordingVerifier verifier_;
};

TEST_F(CorpusTest, CleanRecordingPassesAllGates) {
  auto report = verifier_.Analyze(Clean());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(CorpusTest, TruncatedBodyRejectedAtParse) {
  Bytes body = Clean().SerializeBody();
  body.resize(body.size() / 2);  // cut mid-log
  EXPECT_FALSE(Recording::ParseUnsigned(body).ok());
}

TEST_F(CorpusTest, DuplicatedJobStartCaughtByRegisterProtocol) {
  Recording bad = Clean();
  size_t start = FirstIndexOf(bad.log, IsJobStart);
  bad.log = RebuildLog(
      bad.log, [](size_t, LogEntry*) {}, static_cast<ptrdiff_t>(start));
  auto report = verifier_.Analyze(bad);
  EXPECT_TRUE(ErrorsOnlyFrom(report, "register-protocol"))
      << report.ToString();
  EXPECT_TRUE(HasErrorAt(report, "register-protocol",
                         static_cast<ptrdiff_t>(start) + 1));
}

TEST_F(CorpusTest, TaintedReadValueCaughtBySpeculationResidue) {
  Recording bad = Clean();
  size_t read = FirstIndexOf(
      bad.log, [](const LogEntry& e) { return e.op == LogOp::kRegRead; });
  bad.log = RebuildLog(bad.log, [read](size_t i, LogEntry* e) {
    if (i == read) {
      e->speculative = true;
    }
  });
  auto report = verifier_.Analyze(bad);
  EXPECT_TRUE(ErrorsOnlyFrom(report, "speculation-residue"))
      << report.ToString();
  EXPECT_TRUE(HasErrorAt(report, "speculation-residue",
                         static_cast<ptrdiff_t>(read)));
}

TEST_F(CorpusTest, NonIdempotentPollTargetCaughtByPollPass) {
  Recording bad = Clean();
  // Retarget a power-transition poll (expected == 0) at a write-sensitive
  // register; flush-completion polls are left alone so no other state
  // machine is disturbed.
  size_t poll = FirstIndexOf(bad.log, [](const LogEntry& e) {
    return e.op == LogOp::kPollWait && e.expected == 0;
  });
  bad.log = RebuildLog(bad.log, [poll](size_t i, LogEntry* e) {
    if (i == poll) {
      e->reg = kRegShaderPwrOnLo;
    }
  });
  // Re-stamp the footprint over the mutated log: this test isolates the
  // poll pass, and a stale footprint would (correctly) also trip
  // footprint-soundness.
  StampFootprint(&bad);
  auto report = verifier_.Analyze(bad);
  EXPECT_TRUE(ErrorsOnlyFrom(report, "poll-idempotence")) << report.ToString();
  EXPECT_TRUE(
      HasErrorAt(report, "poll-idempotence", static_cast<ptrdiff_t>(poll)));
}

TEST_F(CorpusTest, StrippedMetastateCaughtByCoveragePass) {
  Recording bad = Clean();
  size_t first_start = FirstIndexOf(bad.log, IsJobStart);
  bad.log = RebuildLog(bad.log, [](size_t, LogEntry* e) {
    if (e->op == LogOp::kMemPage) {
      e->metastate = false;
    }
  });
  auto report = verifier_.Analyze(bad);
  EXPECT_TRUE(ErrorsOnlyFrom(report, "metastate-coverage"))
      << report.ToString();
  EXPECT_TRUE(HasErrorAt(report, "metastate-coverage",
                         static_cast<ptrdiff_t>(first_start)));
}

TEST_F(CorpusTest, RelabeledSkuCaughtByCompatPass) {
  Recording bad = Clean();
  // Claim the MP8 recording came from an MP2: same page-table format, but
  // the discovery image and core tiling give it away (§2.4).
  bad.header.sku = SkuId::kMaliG71Mp2;
  auto report = verifier_.Analyze(bad);
  EXPECT_TRUE(ErrorsOnlyFrom(report, "sku-compat")) << report.ToString();
}

TEST_F(CorpusTest, UnregisteredSkuCaughtByCompatPass) {
  Recording bad = Clean();
  bad.header.sku = static_cast<SkuId>(0x9999);
  auto report = verifier_.Analyze(bad);
  EXPECT_TRUE(HasErrorAt(report, "sku-compat", kWholeRecording))
      << report.ToString();
}

// --------------------------------------------------------------- clean sweep

// Every recorder variant and every workload the seed ships must produce
// recordings the verifier admits without findings.

TEST(CleanSweep, AllVariantsProduceVerifiableRecordings) {
  NetworkDef net = BuildMnist();
  RecordingVerifier verifier;
  for (const std::string& variant : AllVariantNames()) {
    ClientDevice device(SkuId::kMaliG71Mp8, 67);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, net, variant, WifiConditions(),
                              &history, variant == "OursMDS" ? 1 : 0);
    ASSERT_TRUE(m.ok()) << variant << ": " << m.status().ToString();
    auto rec = Recording::ParseSigned(m->signed_recording, m->session_key);
    ASSERT_TRUE(rec.ok()) << variant;
    auto report = verifier.Analyze(*rec);
    EXPECT_TRUE(report.ok()) << variant << ":\n" << report.ToString();
  }
}

TEST(CleanSweep, AllNetworksProduceVerifiableRecordings) {
  RecordingVerifier verifier;
  for (const NetworkDef& net : BuildAllNetworks()) {
    ClientDevice device(SkuId::kMaliG71Mp8, 61);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                              &history, 1);
    ASSERT_TRUE(m.ok()) << net.name << ": " << m.status().ToString();
    auto rec = Recording::ParseSigned(m->signed_recording, m->session_key);
    ASSERT_TRUE(rec.ok()) << net.name;
    auto report = verifier.Analyze(*rec);
    EXPECT_TRUE(report.ok()) << net.name << ":\n" << report.ToString();
  }
}

}  // namespace
}  // namespace grt
