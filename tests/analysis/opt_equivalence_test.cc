// Optimizer equivalence suite — the end-to-end acceptance gate. Every
// example network's recording, plus a corpus of chaos-recorded ones, goes
// through the full pipeline: optimize, re-verify with every static pass,
// replay optimized and unoptimized on identically-seeded devices, demand
// bitwise-identical outputs and CPU-reference agreement. Also pins the
// lifter's job-start definition against the replayer's (the memsync-prune
// safety argument is "the replayer skips this entry" — the two notions of
// job start may never drift apart).
#include <gtest/gtest.h>

#include "src/analysis/dataflow/ir.h"
#include "src/analysis/verifier.h"
#include "src/harness/chaos.h"
#include "src/harness/equivalence.h"
#include "src/harness/experiment.h"
#include "src/hw/regs.h"

namespace grt {
namespace {

constexpr SkuId kSku = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;
constexpr uint64_t kInputSeed = 42;

Result<Recording> RecordOnce(const NetworkDef& net) {
  ClientDevice device(kSku, kNondetSeed);
  SpeculationHistory history;
  GRT_ASSIGN_OR_RETURN(RecordMeasurement m,
                       RunRecordVariant(&device, net, "OursMDS",
                                        WifiConditions(), &history, 0));
  return Recording::ParseSigned(m.signed_recording, m.session_key);
}

void ExpectEquivalent(const NetworkDef& net, const Recording& rec) {
  auto eq = CheckOptimizedEquivalence(net, kSku, rec, kNondetSeed, kInputSeed);
  ASSERT_TRUE(eq.ok()) << net.name << ": " << eq.status().ToString();
  EXPECT_TRUE(eq->outputs_bit_identical) << net.name;
  EXPECT_TRUE(eq->matches_reference) << net.name;
  EXPECT_LE(eq->entries_after, eq->entries_before) << net.name;
  // The optimizer only removes work: replay on the modeled timeline can
  // never get slower.
  EXPECT_LE(eq->replay_delay_after, eq->replay_delay_before) << net.name;
}

// One test per example network (the full suite): every recording the
// system can produce must survive optimization unchanged in meaning.

TEST(OptEquivalence, Mnist) {
  auto rec = RecordOnce(BuildMnist());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto eq = CheckOptimizedEquivalence(BuildMnist(), kSku, *rec, kNondetSeed,
                                      kInputSeed);
  ASSERT_TRUE(eq.ok()) << eq.status().ToString();
  EXPECT_TRUE(eq->outputs_bit_identical);
  EXPECT_TRUE(eq->matches_reference);
  // Acceptance bar: ≥10% replay-op reduction on at least one workload —
  // MNIST's power-cycle-heavy recording clears it with margin.
  EXPECT_GE(eq->stats.reduction(), 0.10)
      << eq->stats.ToString();
  EXPECT_GT(eq->stats.batches_merged, 0u);
}

TEST(OptEquivalence, AlexNet) {
  auto rec = RecordOnce(BuildAlexNet());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectEquivalent(BuildAlexNet(), *rec);
}

TEST(OptEquivalence, MobileNet) {
  auto rec = RecordOnce(BuildMobileNet());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectEquivalent(BuildMobileNet(), *rec);
}

TEST(OptEquivalence, SqueezeNet) {
  auto rec = RecordOnce(BuildSqueezeNet());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectEquivalent(BuildSqueezeNet(), *rec);
}

TEST(OptEquivalence, ResNet12) {
  auto rec = RecordOnce(BuildResNet12());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectEquivalent(BuildResNet12(), *rec);
}

TEST(OptEquivalence, Vgg16) {
  auto rec = RecordOnce(BuildVgg16());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectEquivalent(BuildVgg16(), *rec);
}

// Chaos corpus: recordings produced under seeded channel faults (drops,
// corruption, duplicates, latency spikes, disconnect-and-resume) are
// byte-identical to fault-free ones by the PR-2 invariant — but they are
// the adversarial input class for provenance handling, so the optimizer
// must prove itself on them directly.
TEST(OptEquivalence, ChaosCorpus) {
  const NetworkDef net = BuildMnist();
  int corpus = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto run = RunChaosSession(net, kSku, WifiConditions(),
                               FaultPlan::FromSeed(seed), kNondetSeed,
                               /*nonce=*/100 + seed);
    ASSERT_TRUE(run.ok()) << "wifi seed " << seed << ": "
                          << run.status().ToString();
    auto rec = Recording::ParseUnsigned(run->recording_body);
    ASSERT_TRUE(rec.ok());
    ExpectEquivalent(net, *rec);
    ++corpus;
  }
  for (uint64_t seed : {6u, 7u, 8u, 9u}) {
    auto run = RunChaosSession(net, kSku, CellularConditions(),
                               FaultPlan::FromSeed(seed), kNondetSeed,
                               /*nonce=*/200 + seed);
    ASSERT_TRUE(run.ok()) << "cellular seed " << seed << ": "
                          << run.status().ToString();
    auto rec = Recording::ParseUnsigned(run->recording_body);
    ASSERT_TRUE(rec.ok());
    ExpectEquivalent(net, *rec);
    ++corpus;
  }
  EXPECT_GE(corpus, 8);  // acceptance: ≥ 8 chaos-corpus recordings
}

// The lifter's job-start predicate must mirror the replayer's page gate
// exactly: every job_starts entry has the replayer's job-start shape, and
// no other write in the log has it.
TEST(OptEquivalence, JobStartDefinitionPinned) {
  auto rec = RecordOnce(BuildMnist());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  DataflowIr ir = LiftRecording(*rec);
  ASSERT_FALSE(ir.job_starts.empty());

  auto replayer_job_start = [](const LogEntry& e) {
    return e.op == LogOp::kRegWrite && e.value == kJsCommandStart &&
           e.reg >= kJobSlotBase &&
           e.reg < kJobSlotBase + kMaxJobSlots * kJobSlotStride &&
           (e.reg - kJobSlotBase) % kJobSlotStride == kJsCommandNext;
  };
  std::vector<uint32_t> expected;
  const auto& entries = rec->log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (replayer_job_start(entries[i])) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  EXPECT_EQ(ir.job_starts, expected);
}

// A recording that went through the optimizer must be accepted by the
// sealed-store / replayer admission path end to end (all nine passes,
// including optimizer-provenance and planopt-soundness).
TEST(OptEquivalence, OptimizedRecordingIsVerifierClean) {
  auto rec = RecordOnce(BuildMnist());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  OptStats stats;
  auto optimized = OptimizeRecording(*rec, OptimizeOptions{}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ASSERT_TRUE(optimized->header.provenance.optimized);
  EXPECT_TRUE(VerifyRecording(*optimized).ok());

  // Tampering with the trace (claiming optimization with no records) must
  // be caught by the optimizer-provenance pass.
  Recording tampered = *optimized;
  tampered.header.provenance.records.clear();
  EXPECT_FALSE(VerifyRecording(tampered).ok());
}

}  // namespace
}  // namespace grt
