#include "src/common/bytes.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace grt {
namespace {

TEST(Bytes, PrimitiveRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF32(3.5f);
  w.PutF64(-2.25);
  w.PutBool(true);
  w.PutString("hello");

  Bytes b = w.Take();
  ByteReader r(b);
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_EQ(r.ReadF32().value(), 3.5f);
  EXPECT_EQ(r.ReadF64().value(), -2.25);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_TRUE(r.Done());
}

TEST(Bytes, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU32(7);
  Bytes b = w.Take();
  b.pop_back();
  ByteReader r(b);
  EXPECT_FALSE(r.ReadU32().ok());
}

TEST(Bytes, TruncatedBlobFails) {
  ByteWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow
  Bytes b = w.Take();
  ByteReader r(b);
  auto blob = r.ReadBytes();
  EXPECT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kOutOfRange);
}

TEST(Bytes, EmptyBlobRoundTrip) {
  ByteWriter w;
  w.PutBytes(Bytes{});
  Bytes b = w.Take();
  ByteReader r(b);
  EXPECT_TRUE(r.ReadBytes().value().empty());
}

TEST(Bytes, RawReadBoundsChecked) {
  Bytes b = {1, 2, 3};
  ByteReader r(b);
  uint8_t out[8];
  EXPECT_FALSE(r.ReadRaw(out, 8).ok());
  EXPECT_TRUE(r.ReadRaw(out, 3).ok());
  EXPECT_EQ(out[2], 3);
}

class BytesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesPropertyTest, RandomSequenceRoundTrips) {
  Rng rng(GetParam());
  ByteWriter w;
  std::vector<uint64_t> u64s;
  std::vector<Bytes> blobs;
  for (int i = 0; i < 50; ++i) {
    uint64_t v = rng.NextU64();
    u64s.push_back(v);
    w.PutU64(v);
    Bytes blob(rng.NextBelow(64));
    for (auto& x : blob) {
      x = static_cast<uint8_t>(rng.NextU32());
    }
    blobs.push_back(blob);
    w.PutBytes(blob);
  }
  Bytes b = w.Take();
  ByteReader r(b);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(r.ReadU64().value(), u64s[i]);
    EXPECT_EQ(r.ReadBytes().value(), blobs[i]);
  }
  EXPECT_TRUE(r.Done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337, 99999));

}  // namespace
}  // namespace grt
