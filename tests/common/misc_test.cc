// Tests for clock, hash, and rng primitives.
#include <gtest/gtest.h>

#include <set>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/rng.h"

namespace grt {
namespace {

TEST(Clock, AdvanceIsMonotonic) {
  Timeline t("x");
  EXPECT_EQ(t.now(), 0);
  t.Advance(100);
  EXPECT_EQ(t.now(), 100);
  t.Advance(-50);  // negative advances are ignored
  EXPECT_EQ(t.now(), 100);
  t.AdvanceTo(50);  // never moves backwards
  EXPECT_EQ(t.now(), 100);
  t.AdvanceTo(500);
  EXPECT_EQ(t.now(), 500);
}

TEST(Clock, UnitConversions) {
  EXPECT_EQ(FromMilliseconds(1.0), kMillisecond);
  EXPECT_EQ(FromSeconds(2.0), 2 * kSecond);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(kSecond), 1000.0);
}

TEST(Clock, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(2 * kSecond), "2.000 s");
  EXPECT_EQ(FormatDuration(3 * kMillisecond), "3.000 ms");
  EXPECT_EQ(FormatDuration(4 * kMicrosecond), "4.000 us");
  EXPECT_EQ(FormatDuration(5), "5 ns");
}

TEST(Hash, Crc32KnownVectors) {
  // "123456789" -> 0xCBF43926 (IEEE CRC-32 check value).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Hash, Crc32Discriminates) {
  EXPECT_NE(Crc32("abc", 3), Crc32("abd", 3));
}

TEST(Hash, FnvDeterministicAndSensitive) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
  uint64_t h = kFnvOffset;
  EXPECT_NE(FnvMix(h, 1), FnvMix(h, 2));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64());
  }
  EXPECT_EQ(same, 0);
}

class RngRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngRangeTest, BoundsRespected) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
    float g = rng.NextFloat(-2.0f, 3.0f);
    EXPECT_GE(g, -2.0f);
    EXPECT_LT(g, 3.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngRangeTest,
                         ::testing::Values(1, 7, 123, 98765));

TEST(Rng, FloatDistributionRoughlyUniform) {
  Rng rng(9);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextFloat();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

}  // namespace
}  // namespace grt
