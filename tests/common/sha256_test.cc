#include "src/common/sha256.h"

#include <gtest/gtest.h>

namespace grt {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(nullptr, 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const char* msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(DigestToHex(Sha256::Hash(msg, 56)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk.data(), chunk.size());
  }
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog and more";
  Sha256 h;
  for (char c : msg) {
    h.Update(&c, 1);
  }
  EXPECT_EQ(h.Finish(), Sha256::Hash(msg.data(), msg.size()));
}

// RFC 4231 test case 2.
TEST(Hmac, Rfc4231Case2) {
  Bytes key = {'J', 'e', 'f', 'e'};
  std::string msg = "what do ya want for nothing?";
  Bytes message(msg.begin(), msg.end());
  EXPECT_EQ(DigestToHex(HmacSha256(key, message)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  std::string msg = "Hi There";
  Bytes message(msg.begin(), msg.end());
  EXPECT_EQ(DigestToHex(HmacSha256(key, message)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6 (key longer than block size).
TEST(Hmac, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  Bytes message(msg.begin(), msg.end());
  EXPECT_EQ(DigestToHex(HmacSha256(key, message)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDiffer) {
  Bytes m = {1, 2, 3};
  EXPECT_NE(HmacSha256(Bytes(32, 1), m), HmacSha256(Bytes(32, 2), m));
}

TEST(Hmac, DifferentMessagesDiffer) {
  Bytes key(32, 7);
  EXPECT_NE(HmacSha256(key, {1, 2, 3}), HmacSha256(key, {1, 2, 4}));
}

}  // namespace
}  // namespace grt
