#include "src/common/status.h"

#include <gtest/gtest.h>

namespace grt {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  GRT_ASSIGN_OR_RETURN(int h, Half(x));
  GRT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return OutOfRange("negative");
  }
  return OkStatus();
}

Status Chain(int x) {
  GRT_RETURN_IF_ERROR(FailIfNegative(x));
  GRT_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return OkStatus();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(20).ok());
  EXPECT_FALSE(Chain(5).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

}  // namespace
}  // namespace grt
