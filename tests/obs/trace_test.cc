// Tracing tests: span capture, Chrome trace_event export/parse round-trip
// (nanosecond-exact), nesting validation, and the end-to-end path the
// acceptance criteria name — a ReplayService run traced, exported, parsed
// back, and validated.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/serve/service.h"

namespace grt {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    // Start() clears any buffer left by an earlier test in this process;
    // Stop() leaves the collector disarmed for tests that never arm it.
    TraceCollector::Global().Start();
    TraceCollector::Global().Stop();
  }
  void TearDown() override {
    SetEnabled(false);
    TraceCollector::Global().Stop();
  }
};

TEST_F(TraceTest, SpanOutsideCollectionRecordsNothing) {
  { TraceSpan span("idle", "test"); }
  EXPECT_TRUE(TraceCollector::Global().Snapshot().empty());
}

TEST_F(TraceTest, SpansRecordNameCategoryAndNesting) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Start();
  {
    TraceSpan outer("outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      TraceSpan inner("inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  collector.Stop();
  std::vector<TraceEvent> events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].cat, "test");
  EXPECT_GT(events[0].dur_ns, 0);
  // Containment: outer starts no later and ends no earlier.
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_GE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
  EXPECT_TRUE(ValidateSpanNesting(events).ok());
}

TEST_F(TraceTest, BoundedBufferDropsInsteadOfGrowing) {
  TraceCollector collector;
  collector.Start(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.name = "x";
    e.ts_ns = i;
    collector.Record(std::move(e));
  }
  collector.Stop();
  EXPECT_EQ(collector.Snapshot().size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  // Start() resets both the buffer and the drop counter.
  collector.Start(/*capacity=*/4);
  collector.Stop();
  EXPECT_TRUE(collector.Snapshot().empty());
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST_F(TraceTest, ExportParsesBackNanosecondExact) {
  std::vector<TraceEvent> events;
  TraceEvent a;
  a.name = "alpha \"quoted\"\n";
  a.cat = "serve";
  a.ts_ns = 1234567;  // non-integral microseconds on purpose
  a.dur_ns = 89;
  a.tid = 3;
  events.push_back(a);
  TraceEvent b;
  b.name = "beta";
  b.cat = "replay";
  b.ts_ns = 0;
  b.dur_ns = 999999999;
  b.tid = 0;
  events.push_back(b);

  std::string json = ExportChromeTrace(events);
  auto parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, a.name);
  EXPECT_EQ((*parsed)[0].cat, "serve");
  EXPECT_EQ((*parsed)[0].ts_ns, 1234567);
  EXPECT_EQ((*parsed)[0].dur_ns, 89);
  EXPECT_EQ((*parsed)[0].tid, 3u);
  EXPECT_EQ((*parsed)[1].ts_ns, 0);
  EXPECT_EQ((*parsed)[1].dur_ns, 999999999);
}

TEST_F(TraceTest, ExportIsValidJsonWithTraceEventFields) {
  std::vector<TraceEvent> events(1);
  events[0].name = "s";
  events[0].cat = "c";
  events[0].ts_ns = 1500;
  events[0].dur_ns = 2500;
  auto doc = ParseJson(ExportChromeTrace(events));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* array = doc->Find("traceEvents");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->items.size(), 1u);
  const JsonValue& e = array->items[0];
  const JsonValue* ph = e.Find("ph");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->str, "X");
  ASSERT_NE(e.Find("ts"), nullptr);
  ASSERT_NE(e.Find("dur"), nullptr);
  ASSERT_NE(e.Find("pid"), nullptr);
  EXPECT_DOUBLE_EQ(e.Find("ts")->number, 1.5);  // microseconds
  EXPECT_DOUBLE_EQ(e.Find("dur")->number, 2.5);
  EXPECT_DOUBLE_EQ(e.Find("pid")->number, 1.0);
}

TEST_F(TraceTest, ParseAcceptsBareArrayAndSkipsOtherPhases) {
  std::string json = R"([
    {"name":"keep","cat":"c","ph":"X","ts":1,"dur":2,"pid":1,"tid":0},
    {"name":"meta","ph":"M","ts":0},
    {"name":"counter","ph":"C","ts":3}
  ])";
  auto parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "keep");
}

TEST_F(TraceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseChromeTrace("not json").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"noTraceEvents\":1}").ok());
}

TEST_F(TraceTest, NestingValidatorCatchesPartialOverlap) {
  std::vector<TraceEvent> ok_events(2);
  ok_events[0] = {"outer", "c", 0, 100, 1};
  ok_events[1] = {"inner", "c", 10, 20, 1};
  EXPECT_TRUE(ValidateSpanNesting(ok_events).ok());

  std::vector<TraceEvent> disjoint(2);
  disjoint[0] = {"a", "c", 0, 10, 1};
  disjoint[1] = {"b", "c", 10, 10, 1};
  EXPECT_TRUE(ValidateSpanNesting(disjoint).ok());

  std::vector<TraceEvent> overlap(2);
  overlap[0] = {"a", "c", 0, 50, 1};
  overlap[1] = {"b", "c", 25, 50, 1};
  EXPECT_FALSE(ValidateSpanNesting(overlap).ok());

  // Same intervals on different tids: fine.
  overlap[1].tid = 2;
  EXPECT_TRUE(ValidateSpanNesting(overlap).ok());
}

// The acceptance-criteria path: trace a served workload end to end, write
// the Chrome JSON, read it back, and check the spans nest and cover the
// stages the service promises.
TEST_F(TraceTest, ServiceTraceRoundTripsThroughChromeJson) {
#if defined(GRT_OBS_COMPILED_OUT)
  GTEST_SKIP() << "instrumentation compiled out (GRT_OBS=OFF)";
#else
  constexpr SkuId kSku = SkuId::kMaliG71Mp8;
  NetworkDef net = BuildMnist();
  ClientDevice device(kSku, /*nondet_seed=*/11);
  SpeculationHistory history;
  auto recorded =
      RunRecordVariant(&device, net, "OursMDS", WifiConditions(), &history, 0);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  RecordingStore store(recorded->session_key);
  ASSERT_TRUE(store.Install(recorded->signed_recording).ok());

  SetEnabled(true);
  TraceCollector::Global().Start();

  ServeConfig config;
  config.sku = kSku;
  config.workers = 2;
  ReplayService service(&store, config);
  ASSERT_TRUE(service.Start().ok());
  for (int i = 0; i < 6; ++i) {
    ReplayRequest request;
    request.workload = net.name;
    request.tensors[net.input_tensor] = GenerateInput(net, 50 + i);
    for (const TensorDef& t : net.tensors) {
      if (t.kind == TensorKind::kParam) {
        request.tensors[t.name] = GenerateParams(net.name, t, 7);
      }
    }
    request.output_tensor = net.output_tensor;
    ReplayResponse response = service.Submit(std::move(request));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }
  service.Stop();
  TraceCollector::Global().Stop();

  std::vector<TraceEvent> events = TraceCollector::Global().Snapshot();
  std::string path =
      ::testing::TempDir() + "/grt_service_trace_round_trip.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, events).ok());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto parsed = ParseChromeTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), events.size());
  Status nesting = ValidateSpanNesting(*parsed);
  EXPECT_TRUE(nesting.ok()) << nesting.ToString();

  std::map<std::string, int> by_name;
  for (const TraceEvent& e : *parsed) {
    ++by_name[e.name];
  }
  EXPECT_EQ(by_name["request"], 6);
  EXPECT_EQ(by_name["queue"], 6);
  EXPECT_EQ(by_name["stage_input"], 6);
  EXPECT_EQ(by_name["replay"], 6);
  EXPECT_EQ(by_name["readback"], 6);
  // Warm replays run the planopt-fused schedule ("replay.fused"); the
  // cold replay per worker device runs the full plan.
  EXPECT_EQ(by_name["replay.fused"] + by_name["replay.warm"] +
                by_name["replay.cold"],
            6);
  EXPECT_GT(by_name["replay.fused"], 0);
  // Two compiles: the planopt-soundness verifier pass compiles a
  // skeleton plan at admission, then the plan cache compiles the real
  // one (images included) once.
  EXPECT_EQ(by_name["plan.compile"], 2);
  EXPECT_GT(by_name["planopt.attach"], 0);
  std::remove(path.c_str());
#endif  // GRT_OBS_COMPILED_OUT
}

}  // namespace
}  // namespace obs
}  // namespace grt
