// Metrics registry + histogram tests: bucket geometry, percentile
// correctness against known distributions (ISSUE 5 calls out sizes 1, 2,
// 19, 20 — the exact shapes where the old serving-engine index math went
// wrong), and the enable-gate semantics of the GRT_OBS_* macros.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace grt {
namespace obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, CounterIncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(MetricsTest, GaugeSetAddReset) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST_F(MetricsTest, BucketIndexIsExactBelowSubBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    HistogramBucket b = Histogram::BucketBounds(v);
    EXPECT_EQ(b.lower, v);
    EXPECT_EQ(b.upper, v + 1);
  }
}

TEST_F(MetricsTest, BucketBoundsInvertBucketIndex) {
  // Every value lands in a bucket whose [lower, upper) contains it, and
  // the quantization error is bounded by the log-linear design.
  std::vector<uint64_t> probes = {32,      33,     63,     64,       65,
                                  100,     1000,   4095,   4096,     65537,
                                  1000000, 1u << 30, (uint64_t{1} << 39) + 7};
  for (uint64_t v : probes) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kBucketCount) << v;
    HistogramBucket b = Histogram::BucketBounds(idx);
    EXPECT_LE(b.lower, v) << v;
    EXPECT_GT(b.upper, v) << v;
    // Log-linear promise: bucket width <= lower / (kSubBuckets/2), i.e.
    // relative error bounded by 2/kSubBuckets.
    EXPECT_LE(b.upper - b.lower, b.lower / (Histogram::kSubBuckets / 2) + 1)
        << v;
  }
}

TEST_F(MetricsTest, ValuesAboveClampLandInTopBucket) {
  size_t top = Histogram::BucketIndex(UINT64_MAX);
  EXPECT_EQ(top, Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << Histogram::kMaxExponent)),
            top);
}

TEST_F(MetricsTest, PercentileSizeOne) {
  Histogram h;
  h.Record(17);
  EXPECT_EQ(h.Percentile(50), 17u);
  EXPECT_EQ(h.Percentile(95), 17u);
  EXPECT_EQ(h.Percentile(99), 17u);
  EXPECT_EQ(h.Percentile(100), 17u);
}

TEST_F(MetricsTest, PercentileSizeTwo) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  // Nearest-rank: p50 -> rank ceil(0.5*2)=1 -> 10 (the old index math
  // returned sorted[1]=20 here). p95 -> rank 2 -> 20.
  EXPECT_EQ(h.Percentile(50), 10u);
  EXPECT_EQ(h.Percentile(95), 20u);
}

TEST_F(MetricsTest, PercentileSizeNineteen) {
  Histogram h;
  for (uint64_t v = 1; v <= 19; ++v) {
    h.Record(v);
  }
  // rank ceil(0.5*19)=10 -> value 10; ceil(0.95*19)=19 -> 19 (the old
  // math indexed (19*95)/100 = 18 -> 19 by luck of zero-basing, but p50
  // indexed sorted[9]=10... document the correct nearest-rank answers).
  EXPECT_EQ(h.Percentile(50), 10u);
  EXPECT_EQ(h.Percentile(95), 19u);
  EXPECT_EQ(h.Percentile(99), 19u);
}

TEST_F(MetricsTest, PercentileSizeTwenty) {
  Histogram h;
  for (uint64_t v = 1; v <= 20; ++v) {
    h.Record(v);
  }
  // rank ceil(0.5*20)=10 -> 10 (old math: sorted[10]=11, biased high);
  // rank ceil(0.95*20)=19 -> 19 (old math: sorted[19]=20, biased high).
  EXPECT_EQ(h.Percentile(50), 10u);
  EXPECT_EQ(h.Percentile(95), 19u);
  EXPECT_EQ(h.Percentile(99), 20u);
}

TEST_F(MetricsTest, PercentileLargeUniformWithinQuantizationBound) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  // ~3% relative error tolerated above the exact range.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 1600.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000.0, 3100.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99000.0, 3200.0);
}

TEST_F(MetricsTest, SnapshotCarriesCountSumMinMax) {
  Histogram h;
  h.Record(5);
  h.Record(1000);
  h.Record(70);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1075u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.Percentile(0), 5u);   // clamps to min
  double mean = snap.Mean();
  EXPECT_NEAR(mean, 1075.0 / 3.0, 1e-9);
}

TEST_F(MetricsTest, EmptyHistogramPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST_F(MetricsTest, ResetClearsEverything) {
  Histogram h;
  h.Record(123);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_TRUE(snap.buckets.empty());
}

TEST_F(MetricsTest, RegistryReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment(3);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("x"), 3u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  reg.Reset();
  EXPECT_EQ(a->Value(), 0u);  // pointer stays valid across Reset
}

TEST_F(MetricsTest, MacrosAreInertWhenDisabled) {
  SetEnabled(false);
  GRT_OBS_COUNT("test.inert", 1);
  GRT_OBS_HIST("test.inert_hist", 5);
  GRT_OBS_GAUGE_SET("test.inert_gauge", 5);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
#if defined(GRT_OBS_COMPILED_OUT)
  (void)snap;
#else
  EXPECT_EQ(snap.counters.count("test.inert"), 0u);
  EXPECT_EQ(snap.histograms.count("test.inert_hist"), 0u);
  EXPECT_EQ(snap.gauges.count("test.inert_gauge"), 0u);
#endif
}

TEST_F(MetricsTest, MacrosRecordWhenEnabled) {
#if !defined(GRT_OBS_COMPILED_OUT)
  SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    GRT_OBS_COUNT("test.live", 2);
    GRT_OBS_HIST("test.live_hist", 10 * (i + 1));
  }
  GRT_OBS_GAUGE_SET("test.live_gauge", -4);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("test.live"), 10u);
  EXPECT_EQ(snap.gauge("test.live_gauge"), -4);
  const HistogramSnapshot* hist = snap.histogram("test.live_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_EQ(hist->Percentile(50), 30u);
#endif
}

TEST_F(MetricsTest, ToStringListsInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("c.one")->Increment(7);
  reg.GetHistogram("h.two")->Record(9);
  std::string text = reg.Snapshot().ToString();
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("h.two"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace grt
