// Concurrency suite for the observability layer — the TSan target named by
// scripts/ci.sh. Counters, histograms, registry lookups, the trace
// collector, and the logger are hammered from many threads; totals must be
// exact (relaxed atomics lose no increments) and the run must be data-race
// free under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace grt {
namespace obs {
namespace {

constexpr int kThreads = 8;

class ObsConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    MetricsRegistry::Global().Reset();
    TraceCollector::Global().Start();
    TraceCollector::Global().Stop();
  }
  void TearDown() override {
    SetEnabled(false);
    MetricsRegistry::Global().Reset();
    TraceCollector::Global().Stop();
    SetLogLevel(LogLevel::kWarn);
  }

  void RunThreads(const std::function<void(int)>& body) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(body, t);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
};

TEST_F(ObsConcurrencyTest, CounterIncrementsAreExactAcrossThreads) {
  constexpr uint64_t kPerThread = 20000;
  Counter counter;
  RunThreads([&](int) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      counter.Increment();
    }
  });
  EXPECT_EQ(counter.Value(), kPerThread * kThreads);
}

TEST_F(ObsConcurrencyTest, HistogramRecordsAreExactAcrossThreads) {
  constexpr uint64_t kPerThread = 5000;
  Histogram hist;
  RunThreads([&](int t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      // Spread across buckets so concurrent Record() hits shared and
      // distinct slots alike.
      hist.Record((t + 1) * 997 + i);
    }
  });
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kPerThread * kThreads);
  uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      want_sum += (t + 1) * 997 + i;
    }
  }
  EXPECT_EQ(snap.sum, want_sum);
  EXPECT_EQ(snap.min, 997u);
  EXPECT_EQ(snap.max, uint64_t{kThreads} * 997 + kPerThread - 1);
}

TEST_F(ObsConcurrencyTest, RegistryLookupsConvergeOnOneInstrument) {
  constexpr uint64_t kPerThread = 10000;
  std::atomic<Counter*> first{nullptr};
  RunThreads([&](int) {
    Counter* c = MetricsRegistry::Global().GetCounter("concurrent.lookups");
    Counter* expected = nullptr;
    first.compare_exchange_strong(expected, c);
    EXPECT_EQ(first.load(), c);
    for (uint64_t i = 0; i < kPerThread; ++i) {
      c->Increment();
    }
  });
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("concurrent.lookups"), kPerThread * kThreads);
}

TEST_F(ObsConcurrencyTest, SnapshotRacesRecordingWithoutTearing) {
  Histogram hist;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      HistogramSnapshot snap = hist.Snapshot();
      // Derived count always matches the buckets it was derived from.
      uint64_t bucket_total = 0;
      for (const HistogramBucket& b : snap.buckets) {
        bucket_total += b.count;
      }
      ASSERT_EQ(bucket_total, snap.count);
    }
  });
  RunThreads([&](int t) {
    for (uint64_t i = 0; i < 5000; ++i) {
      hist.Record(t * 1000 + i % 100);
    }
  });
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(hist.Snapshot().count, uint64_t{5000} * kThreads);
}

TEST_F(ObsConcurrencyTest, SpansFromManyThreadsAllLand) {
  constexpr int kPerThread = 500;
  TraceCollector& collector = TraceCollector::Global();
  collector.Start();
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)collector.Snapshot();  // concurrent reads must be safe
    }
  });
  RunThreads([&](int) {
    for (int i = 0; i < kPerThread; ++i) {
      TraceSpan span("worker", "test");
    }
  });
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  collector.Stop();
  std::vector<TraceEvent> events = collector.Snapshot();
  EXPECT_EQ(events.size(), size_t{kPerThread} * kThreads);
  EXPECT_EQ(collector.dropped(), 0u);
  // Thread ids are small sequential values, not raw handles.
  for (const TraceEvent& e : events) {
    EXPECT_LT(e.tid, 1024u);
  }
}

TEST_F(ObsConcurrencyTest, MacrosSurviveEnableToggleRace) {
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SetEnabled(true);
      SetEnabled(false);
    }
  });
  RunThreads([&](int) {
    for (int i = 0; i < 20000; ++i) {
      GRT_OBS_COUNT("toggle.count", 1);
      GRT_OBS_HIST("toggle.hist", i);
    }
  });
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  SetEnabled(false);
  // No exact total (the gate was flapping); the invariant is no data race
  // and a coherent snapshot.
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_LE(snap.counter("toggle.count"), uint64_t{20000} * kThreads);
}

// Regression for the log satellite: GetLogLevel/SetLogLevel used to be a
// plain enum read/written from ReplayService workers — a data race TSan
// flags. The level now lives in a relaxed atomic and each message is
// emitted as one fwrite, so N workers logging while the level flips is
// race-free and never interleaves message fragments.
TEST_F(ObsConcurrencyTest, LogLevelFlipsRaceLoggingWorkers) {
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SetLogLevel(LogLevel::kOff);
      SetLogLevel(LogLevel::kError);
      SetLogLevel(LogLevel::kWarn);
    }
  });
  RunThreads([&](int t) {
    for (int i = 0; i < 2000; ++i) {
      // kDebug is below every level the flipper sets, so the constructor
      // races with SetLogLevel but nothing is printed.
      GRT_DLOG << "worker " << t << " iteration " << i;
    }
  });
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  SetLogLevel(LogLevel::kWarn);
  SUCCEED();
}

}  // namespace
}  // namespace obs
}  // namespace grt
