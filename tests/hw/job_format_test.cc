// Job descriptor and shader blob format tests (the hardware contract).
#include <gtest/gtest.h>

#include "src/hw/job_format.h"
#include "src/sku/sku.h"

namespace grt {
namespace {

JobDescriptor SampleDesc() {
  JobDescriptor d;
  d.layout_version = 2;
  d.op = GpuOp::kGemm;
  d.flags = kJobFlagReluFused;
  d.next_job_va = 0x10002000;
  d.shader_va = 0x10008000;
  d.shader_len = 512;
  d.input_va[0] = 0x10010000;
  d.input_va[1] = 0x10020000;
  d.aux_va = 0x10030000;
  d.output_va = 0x10040000;
  d.params = {8, 16, 4, 0, 0, 0, 0, 0};
  return d;
}

TEST(JobFormat, DescriptorRoundTrip) {
  JobDescriptor d = SampleDesc();
  Bytes raw = d.Serialize();
  EXPECT_EQ(raw.size(), kJobDescSize);
  auto parsed = JobDescriptor::Deserialize(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, d.op);
  EXPECT_EQ(parsed->flags, d.flags);
  EXPECT_EQ(parsed->next_job_va, d.next_job_va);
  EXPECT_EQ(parsed->shader_va, d.shader_va);
  EXPECT_EQ(parsed->shader_len, d.shader_len);
  EXPECT_EQ(parsed->input_va[0], d.input_va[0]);
  EXPECT_EQ(parsed->input_va[1], d.input_va[1]);
  EXPECT_EQ(parsed->aux_va, d.aux_va);
  EXPECT_EQ(parsed->output_va, d.output_va);
  EXPECT_EQ(parsed->params, d.params);
}

TEST(JobFormat, BadMagicRejected) {
  Bytes raw = SampleDesc().Serialize();
  raw[0] ^= 0xFF;
  auto parsed = JobDescriptor::Deserialize(raw);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeviceFault);
}

TEST(JobFormat, BadOpRejected) {
  Bytes raw = SampleDesc().Serialize();
  raw[5] = 0xEE;  // op byte
  EXPECT_FALSE(JobDescriptor::Deserialize(raw).ok());
}

TEST(JobFormat, TruncatedRejected) {
  Bytes raw = SampleDesc().Serialize();
  raw.resize(kJobDescSize - 1);
  EXPECT_FALSE(JobDescriptor::Deserialize(raw).ok());
}

TEST(JobFormat, ShaderBlobRoundTrip) {
  ShaderBlobHeader h;
  h.layout_version = 1;
  h.op = GpuOp::kConv2d;
  h.core_count = 8;
  h.tile_m = 32;
  h.tile_n = 16;
  h.code_len = 640;
  Bytes blob = BuildShaderBlob(h);
  auto parsed = ParseShaderBlob(blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, h.op);
  EXPECT_EQ(parsed->core_count, 8u);
  EXPECT_EQ(parsed->tile_m, 32u);
  EXPECT_EQ(parsed->code_len, 640u);
}

TEST(JobFormat, ShaderBodyDependsOnHeader) {
  // Different tiling => different "compiled" bytes (the early-binding
  // property: per-SKU JIT output differs).
  ShaderBlobHeader a, b;
  a.op = b.op = GpuOp::kGemm;
  a.code_len = b.code_len = 256;
  a.core_count = 8;
  b.core_count = 4;
  EXPECT_NE(BuildShaderBlob(a), BuildShaderBlob(b));
}

TEST(JobFormat, ShaderLengthMismatchRejected) {
  ShaderBlobHeader h;
  h.code_len = 128;
  Bytes blob = BuildShaderBlob(h);
  blob.push_back(0);  // trailing garbage
  EXPECT_FALSE(ParseShaderBlob(blob).ok());
}

TEST(JobFormat, AllOpsHaveNames) {
  for (int op = 0; op <= static_cast<int>(GpuOp::kFill); ++op) {
    EXPECT_STRNE(GpuOpName(static_cast<GpuOp>(op)), "?");
  }
}

}  // namespace
}  // namespace grt
