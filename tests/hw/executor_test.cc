// Shader-core executor tests: per-op math against hand-computed results,
// the SKU validation paths (layout version, core count), and MMU
// permission enforcement during execution.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hw/executor.h"
#include "src/hw/gpu.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 16 << 20;

// A bare-metal harness: page tables and job state built by hand, executed
// directly through ShaderCoreExecutor.
class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : sku_(FindSku(SkuId::kMaliG71Mp8).value()),
        mem_(kBase, kSize),
        alloc_(kBase, kSize),
        builder_(sku_.pt_format, &mem_, &alloc_),
        executor_(sku_, &mem_) {
    EXPECT_TRUE(builder_.Init().ok());
  }

  // Maps n_pages at the next free VA with the given permissions.
  uint64_t Map(uint64_t n_pages, PteFlags flags) {
    uint64_t va = next_va_;
    for (uint64_t i = 0; i < n_pages; ++i) {
      uint64_t pa = alloc_.AllocPage().value();
      EXPECT_TRUE(builder_.MapPage(va + i * kPageSize, pa, flags).ok());
      pa_of_[va + i * kPageSize] = pa;
    }
    next_va_ += (n_pages + 1) * kPageSize;
    return va;
  }

  void WriteVa(uint64_t va, const void* data, uint64_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    uint64_t done = 0;
    while (done < len) {
      uint64_t page_va = (va + done) & ~kPageMask;
      uint64_t off = (va + done) & kPageMask;
      uint64_t chunk = std::min<uint64_t>(len - done, kPageSize - off);
      EXPECT_TRUE(mem_.Write(pa_of_[page_va] + off, p + done, chunk).ok());
      done += chunk;
    }
  }

  std::vector<float> ReadVaF32(uint64_t va, size_t n) {
    std::vector<float> out(n);
    auto* p = reinterpret_cast<uint8_t*>(out.data());
    uint64_t len = n * sizeof(float), done = 0;
    while (done < len) {
      uint64_t page_va = (va + done) & ~kPageMask;
      uint64_t off = (va + done) & kPageMask;
      uint64_t chunk = std::min<uint64_t>(len - done, kPageSize - off);
      EXPECT_TRUE(mem_.Read(pa_of_[page_va] + off, p + done, chunk).ok());
      done += chunk;
    }
    return out;
  }

  // Installs a shader for `op` and a one-job chain; returns the chain va.
  uint64_t InstallJob(JobDescriptor d) {
    ShaderBlobHeader h;
    h.layout_version = sku_.mem_layout_version;
    h.op = d.op;
    h.core_count = static_cast<uint32_t>(sku_.core_count());
    h.code_len = 256;
    Bytes blob = BuildShaderBlob(h);
    uint64_t shader_va = Map(1, {true, false, true});
    WriteVa(shader_va, blob.data(), blob.size());

    d.layout_version = sku_.mem_layout_version;
    d.shader_va = shader_va;
    d.shader_len = static_cast<uint32_t>(blob.size());
    uint64_t desc_va = Map(1, {true, false, false});
    Bytes raw = d.Serialize();
    WriteVa(desc_va, raw.data(), raw.size());
    return desc_va;
  }

  ExecResult Execute(uint64_t chain_va) {
    return executor_.ExecuteChain(chain_va, builder_.root_pa(), &tlb_);
  }

  GpuSku sku_;
  PhysicalMemory mem_;
  PageAllocator alloc_;
  PageTableBuilder builder_;
  ShaderCoreExecutor executor_;
  GpuTlb tlb_;
  uint64_t next_va_ = 0x10000000;
  std::map<uint64_t, uint64_t> pa_of_;
};

TEST_F(ExecutorTest, GemmComputesCorrectly) {
  // A(2x3) * B(3x2), hand-checked.
  std::vector<float> a = {1, 2, 3, 4, 5, 6};
  std::vector<float> b = {7, 8, 9, 10, 11, 12};
  uint64_t a_va = Map(1, {true, false, false});
  uint64_t b_va = Map(1, {true, false, false});
  uint64_t c_va = Map(1, {true, true, false});
  WriteVa(a_va, a.data(), a.size() * 4);
  WriteVa(b_va, b.data(), b.size() * 4);

  JobDescriptor d;
  d.op = GpuOp::kGemm;
  d.input_va[0] = a_va;
  d.aux_va = b_va;
  d.output_va = c_va;
  d.params = {2, 3, 2, 0, 0, 0, 0, 0};
  ExecResult r = Execute(InstallJob(d));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.jobs_executed, 1u);
  EXPECT_EQ(r.total_macs, 2u * 3u * 2u);
  std::vector<float> c = ReadVaF32(c_va, 4);
  EXPECT_FLOAT_EQ(c[0], 58);   // 1*7+2*9+3*11
  EXPECT_FLOAT_EQ(c[1], 64);   // 1*8+2*10+3*12
  EXPECT_FLOAT_EQ(c[2], 139);  // 4*7+5*9+6*11
  EXPECT_FLOAT_EQ(c[3], 154);
}

TEST_F(ExecutorTest, BiasReluAppliesPerChannel) {
  std::vector<float> x = {-1, 2, -3, 4};  // 2 channels x 2 spatial
  std::vector<float> bias = {10, -10};
  uint64_t x_va = Map(1, {true, false, false});
  uint64_t b_va = Map(1, {true, false, false});
  uint64_t y_va = Map(1, {true, true, false});
  WriteVa(x_va, x.data(), 16);
  WriteVa(b_va, bias.data(), 8);

  JobDescriptor d;
  d.op = GpuOp::kBiasRelu;
  d.flags = kJobFlagReluFused;
  d.input_va[0] = x_va;
  d.aux_va = b_va;
  d.output_va = y_va;
  d.params = {4, 2, 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(Execute(InstallJob(d)).status.ok());
  std::vector<float> y = ReadVaF32(y_va, 4);
  EXPECT_FLOAT_EQ(y[0], 9);   // -1+10
  EXPECT_FLOAT_EQ(y[1], 12);  // 2+10
  EXPECT_FLOAT_EQ(y[2], 0);   // relu(-3-10)
  EXPECT_FLOAT_EQ(y[3], 0);   // relu(4-10)
}

TEST_F(ExecutorTest, PoolMaxAndAvg) {
  // 1 channel 4x4, window 2 stride 2.
  std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8,
                          9, 10, 11, 12, 13, 14, 15, 16};
  uint64_t x_va = Map(1, {true, false, false});
  uint64_t y_va = Map(1, {true, true, false});
  WriteVa(x_va, x.data(), 64);

  JobDescriptor d;
  d.op = GpuOp::kPoolMax;
  d.input_va[0] = x_va;
  d.output_va = y_va;
  d.params = {1, 4, 4, 2, 2, 0, 0, 0};
  ASSERT_TRUE(Execute(InstallJob(d)).status.ok());
  std::vector<float> mx = ReadVaF32(y_va, 4);
  EXPECT_FLOAT_EQ(mx[0], 6);
  EXPECT_FLOAT_EQ(mx[3], 16);

  d.op = GpuOp::kPoolAvg;
  ASSERT_TRUE(Execute(InstallJob(d)).status.ok());
  std::vector<float> avg = ReadVaF32(y_va, 4);
  EXPECT_FLOAT_EQ(avg[0], 3.5f);
  EXPECT_FLOAT_EQ(avg[3], 13.5f);
}

TEST_F(ExecutorTest, SoftmaxNormalizes) {
  std::vector<float> x = {0, 1, 2, 3};
  uint64_t x_va = Map(1, {true, false, false});
  uint64_t y_va = Map(1, {true, true, false});
  WriteVa(x_va, x.data(), 16);
  JobDescriptor d;
  d.op = GpuOp::kSoftmax;
  d.input_va[0] = x_va;
  d.output_va = y_va;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(Execute(InstallJob(d)).status.ok());
  std::vector<float> y = ReadVaF32(y_va, 4);
  float sum = y[0] + y[1] + y[2] + y[3];
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(y[3], y[2]);
}

TEST_F(ExecutorTest, ChainExecutesInOrder) {
  // fill(5) -> eltwise-add with itself => 10.
  uint64_t buf = Map(1, {true, true, false});
  uint64_t out = Map(1, {true, true, false});

  JobDescriptor fill;
  fill.op = GpuOp::kFill;
  fill.output_va = buf;
  float five = 5.0f;
  uint32_t bits;
  std::memcpy(&bits, &five, 4);
  fill.params = {8, bits, 0, 0, 0, 0, 0, 0};
  uint64_t first = InstallJob(fill);

  JobDescriptor add;
  add.op = GpuOp::kEltwiseAdd;
  add.input_va[0] = buf;
  add.input_va[1] = buf;
  add.output_va = out;
  add.params = {8, 0, 0, 0, 0, 0, 0, 0};
  uint64_t second = InstallJob(add);

  // Chain: patch first descriptor's next pointer.
  auto raw = JobDescriptor::Deserialize(
      [&] {
        Bytes bytes(kJobDescSize);
        EXPECT_TRUE(mem_.Read(pa_of_[first], bytes.data(), kJobDescSize).ok());
        return bytes;
      }());
  JobDescriptor patched = raw.value();
  patched.next_job_va = second;
  Bytes reser = patched.Serialize();
  WriteVa(first, reser.data(), reser.size());

  ExecResult r = Execute(first);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.jobs_executed, 2u);
  EXPECT_FLOAT_EQ(ReadVaF32(out, 8)[3], 10.0f);
}

TEST_F(ExecutorTest, WriteToReadOnlyPageFaults) {
  uint64_t ro = Map(1, {true, false, false});
  JobDescriptor d;
  d.op = GpuOp::kFill;
  d.output_va = ro;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  ExecResult r = Execute(InstallJob(d));
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.is_mmu_fault);
  EXPECT_EQ(r.mmu_fault.status, kFaultPermission);
}

TEST_F(ExecutorTest, ShaderFetchRequiresExecutePermission) {
  // Install a valid job, then remap the shader page without execute.
  uint64_t buf = Map(1, {true, true, false});
  JobDescriptor d;
  d.op = GpuOp::kFill;
  d.output_va = buf;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  uint64_t chain = InstallJob(d);
  // The shader page is the one mapped just before the descriptor page.
  uint64_t shader_va = chain - 2 * kPageSize;
  ASSERT_TRUE(builder_
                  .MapPage(shader_va, pa_of_[shader_va],
                           {true, false, false})  // execute dropped
                  .ok());
  ExecResult r = Execute(chain);
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.is_mmu_fault);
}

TEST_F(ExecutorTest, LayoutVersionMismatchFaults) {
  uint64_t buf = Map(1, {true, true, false});
  JobDescriptor d;
  d.op = GpuOp::kFill;
  d.output_va = buf;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  uint64_t chain = InstallJob(d);
  // Corrupt the descriptor's layout version in memory.
  uint8_t bad_version = 0x7E;
  EXPECT_TRUE(mem_.Write(pa_of_[chain] + 4, &bad_version, 1).ok());
  ExecResult r = Execute(chain);
  EXPECT_FALSE(r.status.ok());
  EXPECT_FALSE(r.is_mmu_fault);
}

TEST_F(ExecutorTest, ForeignCoreCountShaderFaults) {
  // Build the shader as if JIT'd for a 4-core part; MP8 must refuse it.
  ShaderBlobHeader h;
  h.layout_version = sku_.mem_layout_version;
  h.op = GpuOp::kFill;
  h.core_count = 4;
  h.code_len = 128;
  Bytes blob = BuildShaderBlob(h);
  uint64_t shader_va = Map(1, {true, false, true});
  WriteVa(shader_va, blob.data(), blob.size());

  uint64_t buf = Map(1, {true, true, false});
  JobDescriptor d;
  d.layout_version = sku_.mem_layout_version;
  d.op = GpuOp::kFill;
  d.output_va = buf;
  d.params = {4, 0, 0, 0, 0, 0, 0, 0};
  d.shader_va = shader_va;
  d.shader_len = static_cast<uint32_t>(blob.size());
  uint64_t desc_va = Map(1, {true, false, false});
  Bytes raw = d.Serialize();
  WriteVa(desc_va, raw.data(), raw.size());

  ExecResult r = Execute(desc_va);
  EXPECT_FALSE(r.status.ok());
  EXPECT_NE(r.status.message().find("SKU"), std::string::npos);
}

TEST_F(ExecutorTest, DurationScalesWithWork) {
  auto run_gemm = [&](uint32_t n) {
    uint64_t a = Map(4, {true, false, false});
    uint64_t b = Map(4, {true, false, false});
    uint64_t c = Map(4, {true, true, false});
    std::vector<float> ones(n * n, 1.0f);
    WriteVa(a, ones.data(), ones.size() * 4);
    WriteVa(b, ones.data(), ones.size() * 4);
    JobDescriptor d;
    d.op = GpuOp::kGemm;
    d.input_va[0] = a;
    d.aux_va = b;
    d.output_va = c;
    d.params = {n, n, n, 0, 0, 0, 0, 0};
    ExecResult r = Execute(InstallJob(d));
    EXPECT_TRUE(r.status.ok());
    return r.duration;
  };
  EXPECT_LT(run_gemm(8), run_gemm(32));
}

}  // namespace
}  // namespace grt
