// Cross-validation property sweep: for randomized op dimensions, the GPU
// shader-core executor (running through page tables from GPU memory) must
// agree with the independent CPU reference implementation.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/hw/executor.h"
#include "src/hw/gpu.h"
#include "src/ml/reference.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 32 << 20;

// Runs a single op both ways and compares.
class CrossValidator {
 public:
  explicit CrossValidator(uint64_t seed)
      : sku_(FindSku(SkuId::kMaliG71Mp8).value()),
        mem_(kBase, kSize),
        alloc_(kBase, kSize),
        builder_(sku_.pt_format, &mem_, &alloc_),
        executor_(sku_, &mem_),
        rng_(seed) {
    EXPECT_TRUE(builder_.Init().ok());
  }

  std::vector<float> RandomTensor(size_t n) {
    std::vector<float> out(n);
    for (float& v : out) {
      v = rng_.NextFloat(-1.0f, 1.0f);
    }
    return out;
  }

  uint64_t MapAndWrite(const std::vector<float>& data, bool writable) {
    uint64_t bytes = data.size() * sizeof(float);
    uint64_t n_pages = PageAlignUp(std::max<uint64_t>(bytes, 1)) / kPageSize;
    uint64_t va = next_va_;
    next_va_ += (n_pages + 1) * kPageSize;
    for (uint64_t i = 0; i < n_pages; ++i) {
      uint64_t pa = alloc_.AllocPage().value();
      EXPECT_TRUE(builder_
                      .MapPage(va + i * kPageSize, pa,
                               PteFlags{true, writable, false})
                      .ok());
      pa_of_[va + i * kPageSize] = pa;
    }
    WriteVa(va, data.data(), bytes);
    return va;
  }

  void WriteVa(uint64_t va, const void* data, uint64_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    uint64_t done = 0;
    while (done < len) {
      uint64_t page_va = (va + done) & ~kPageMask;
      uint64_t off = (va + done) & kPageMask;
      uint64_t chunk = std::min<uint64_t>(len - done, kPageSize - off);
      EXPECT_TRUE(mem_.Write(pa_of_[page_va] + off, p + done, chunk).ok());
      done += chunk;
    }
  }

  std::vector<float> ReadVa(uint64_t va, size_t n) {
    std::vector<float> out(n);
    auto* p = reinterpret_cast<uint8_t*>(out.data());
    uint64_t len = n * sizeof(float), done = 0;
    while (done < len) {
      uint64_t page_va = (va + done) & ~kPageMask;
      uint64_t off = (va + done) & kPageMask;
      uint64_t chunk = std::min<uint64_t>(len - done, kPageSize - off);
      EXPECT_TRUE(mem_.Read(pa_of_[page_va] + off, p + done, chunk).ok());
      done += chunk;
    }
    return out;
  }

  // Installs + executes a one-job chain for `d` (shader auto-attached);
  // returns the output tensor of `out_n` floats.
  Result<std::vector<float>> RunGpu(JobDescriptor d, uint64_t out_va,
                                    size_t out_n) {
    ShaderBlobHeader h;
    h.layout_version = sku_.mem_layout_version;
    h.op = d.op;
    h.core_count = static_cast<uint32_t>(sku_.core_count());
    h.code_len = 128;
    Bytes blob = BuildShaderBlob(h);
    uint64_t shader_va = MapAndWrite(std::vector<float>(64, 0.0f), false);
    // Remap with execute permission.
    for (uint64_t off = 0; off < kPageSize; off += kPageSize) {
      GRT_RETURN_IF_ERROR(builder_.MapPage(shader_va + off,
                                           pa_of_[shader_va + off],
                                           PteFlags{true, false, true}));
    }
    WriteVa(shader_va, blob.data(), blob.size());
    d.layout_version = sku_.mem_layout_version;
    d.shader_va = shader_va;
    d.shader_len = static_cast<uint32_t>(blob.size());

    uint64_t desc_va = MapAndWrite(std::vector<float>(32, 0.0f), false);
    Bytes raw = d.Serialize();
    WriteVa(desc_va, raw.data(), raw.size());

    GpuTlb tlb;
    ExecResult r = executor_.ExecuteChain(desc_va, builder_.root_pa(), &tlb);
    GRT_RETURN_IF_ERROR(r.status);
    return ReadVa(out_va, out_n);
  }

  GpuSku sku_;
  PhysicalMemory mem_;
  PageAllocator alloc_;
  PageTableBuilder builder_;
  ShaderCoreExecutor executor_;
  Rng rng_;
  uint64_t next_va_ = 0x10000000;
  std::map<uint64_t, uint64_t> pa_of_;
};

class GemmSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GemmSweep, GpuMatchesNaiveCpuGemm) {
  CrossValidator v(GetParam());
  uint32_t m = 1 + v.rng_.NextBelow(24);
  uint32_t k = 1 + v.rng_.NextBelow(24);
  uint32_t n = 1 + v.rng_.NextBelow(24);
  std::vector<float> a = v.RandomTensor(static_cast<size_t>(m) * k);
  std::vector<float> b = v.RandomTensor(static_cast<size_t>(k) * n);

  JobDescriptor d;
  d.op = GpuOp::kGemm;
  d.input_va[0] = v.MapAndWrite(a, false);
  d.aux_va = v.MapAndWrite(b, false);
  uint64_t out_va =
      v.MapAndWrite(std::vector<float>(static_cast<size_t>(m) * n, 0.0f),
                    true);
  d.output_va = out_va;
  d.params = {m, k, n, 0, 0, 0, 0, 0};
  auto gpu = v.RunGpu(d, out_va, static_cast<size_t>(m) * n);
  ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();

  // Naive CPU GEMM with an independent loop order.
  std::vector<float> cpu(static_cast<size_t>(m) * n, 0.0f);
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (uint32_t kk = 0; kk < k; ++kk) {
        acc += a[static_cast<size_t>(i) * k + kk] *
               b[static_cast<size_t>(kk) * n + j];
      }
      cpu[static_cast<size_t>(i) * n + j] = acc;
    }
  }
  EXPECT_LT(MaxAbsDiff(*gpu, cpu), 1e-4f) << "m=" << m << " k=" << k
                                          << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Dims, GemmSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ConvSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvSweep, GpuMatchesNaiveCpuConv) {
  CrossValidator v(GetParam());
  uint32_t cin = 1 + v.rng_.NextBelow(4);
  uint32_t cout = 1 + v.rng_.NextBelow(4);
  uint32_t hw = 4 + v.rng_.NextBelow(8);
  uint32_t kk = 1 + 2 * v.rng_.NextBelow(2);  // 1 or 3
  uint32_t stride = 1 + v.rng_.NextBelow(2);
  uint32_t pad = kk / 2;
  uint32_t oh = (hw + 2 * pad - kk) / stride + 1;
  uint32_t ow = oh;

  std::vector<float> in = v.RandomTensor(static_cast<size_t>(cin) * hw * hw);
  std::vector<float> w =
      v.RandomTensor(static_cast<size_t>(cout) * cin * kk * kk);

  JobDescriptor d;
  d.op = GpuOp::kConv2d;
  d.input_va[0] = v.MapAndWrite(in, false);
  d.aux_va = v.MapAndWrite(w, false);
  uint64_t out_va = v.MapAndWrite(
      std::vector<float>(static_cast<size_t>(cout) * oh * ow, 0.0f), true);
  d.output_va = out_va;
  d.params = {cin, hw, hw, cout, kk, kk, stride, pad};
  auto gpu = v.RunGpu(d, out_va, static_cast<size_t>(cout) * oh * ow);
  ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();

  std::vector<float> cpu(static_cast<size_t>(cout) * oh * ow, 0.0f);
  for (uint32_t co = 0; co < cout; ++co) {
    for (uint32_t oi = 0; oi < oh; ++oi) {
      for (uint32_t oj = 0; oj < ow; ++oj) {
        float acc = 0.0f;
        for (uint32_t ci = 0; ci < cin; ++ci) {
          for (uint32_t ki = 0; ki < kk; ++ki) {
            for (uint32_t kj = 0; kj < kk; ++kj) {
              int64_t ii = static_cast<int64_t>(oi) * stride + ki - pad;
              int64_t jj = static_cast<int64_t>(oj) * stride + kj - pad;
              if (ii < 0 || ii >= hw || jj < 0 || jj >= hw) {
                continue;
              }
              acc += in[(static_cast<size_t>(ci) * hw + ii) * hw + jj] *
                     w[((static_cast<size_t>(co) * cin + ci) * kk + ki) * kk +
                       kj];
            }
          }
        }
        cpu[(static_cast<size_t>(co) * oh + oi) * ow + oj] = acc;
      }
    }
  }
  EXPECT_LT(MaxAbsDiff(*gpu, cpu), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Dims, ConvSweep,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

}  // namespace
}  // namespace grt
