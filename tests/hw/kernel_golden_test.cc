// Kernel golden suite: every GpuOp executed through the full job path
// under both kernel engines (pinned scalar reference vs optimized
// zero-copy/SIMD), asserting bitwise-identical output bytes, identical
// modeled duration (which covers MACs *and* bytes-moved accounting), and
// identical fault behaviour. Shapes include odd/tail sizes, page-crossing
// tensors over physically discontiguous (reversed) pages, unaligned
// bases, in-place operands, and partially-overlapping operands.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/hw/executor.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 16 << 20;

// Deterministic pseudo-random tensor data including exact +0.0f and -0.0f
// entries (the GEMM zero-skip treats both as zero; both engines must
// agree).
std::vector<float> TestData(size_t n, uint32_t seed) {
  std::vector<float> v(n);
  uint32_t s = seed * 2654435761u + 12345u;
  for (size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    float f = static_cast<float>(static_cast<int32_t>(s >> 8) % 1000) / 250.0f;
    if (s % 7 == 0) {
      f = 0.0f;
    } else if (s % 11 == 0) {
      f = -0.0f;
    }
    v[i] = f;
  }
  return v;
}

// Bare-metal single-engine rig (same shape as the executor_test harness,
// but constructed fresh per engine so each run starts from identical
// memory).
class Rig {
 public:
  explicit Rig(KernelEngine engine)
      : sku_(FindSku(SkuId::kMaliG71Mp8).value()),
        mem_(kBase, kSize),
        alloc_(kBase, kSize),
        builder_(sku_.pt_format, &mem_, &alloc_),
        executor_(sku_, &mem_) {
    EXPECT_TRUE(builder_.Init().ok());
    executor_.set_engine(engine);
  }

  // Maps n_pages at the next free VA. `reversed` maps the VA range onto
  // physically *descending* pages, guaranteeing the span is discontiguous
  // (forces the optimized engine's gather/scatter path).
  uint64_t Map(uint64_t n_pages, PteFlags flags, bool reversed = false) {
    uint64_t va = next_va_;
    std::vector<uint64_t> pas(n_pages);
    for (uint64_t i = 0; i < n_pages; ++i) {
      pas[i] = alloc_.AllocPage().value();
    }
    for (uint64_t i = 0; i < n_pages; ++i) {
      uint64_t pa = reversed ? pas[n_pages - 1 - i] : pas[i];
      EXPECT_TRUE(builder_.MapPage(va + i * kPageSize, pa, flags).ok());
      pa_of_[va + i * kPageSize] = pa;
    }
    next_va_ += (n_pages + 1) * kPageSize;  // guard gap
    return va;
  }

  void WriteVa(uint64_t va, const void* data, uint64_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    uint64_t done = 0;
    while (done < len) {
      uint64_t page_va = (va + done) & ~kPageMask;
      uint64_t off = (va + done) & kPageMask;
      uint64_t chunk = std::min<uint64_t>(len - done, kPageSize - off);
      EXPECT_TRUE(mem_.Write(pa_of_[page_va] + off, p + done, chunk).ok());
      done += chunk;
    }
  }

  std::vector<uint8_t> ReadVaBytes(uint64_t va, uint64_t len) {
    std::vector<uint8_t> out(len);
    uint64_t done = 0;
    while (done < len) {
      uint64_t page_va = (va + done) & ~kPageMask;
      uint64_t off = (va + done) & kPageMask;
      uint64_t chunk = std::min<uint64_t>(len - done, kPageSize - off);
      EXPECT_TRUE(mem_.Read(pa_of_[page_va] + off, out.data() + done,
                            chunk).ok());
      done += chunk;
    }
    return out;
  }

  void WriteF32(uint64_t va, const std::vector<float>& v) {
    WriteVa(va, v.data(), v.size() * sizeof(float));
  }

  // Installs a shader + descriptor for `d`; returns the descriptor va.
  uint64_t InstallJob(JobDescriptor d, uint64_t next_job_va = 0) {
    ShaderBlobHeader h;
    h.layout_version = sku_.mem_layout_version;
    h.op = d.op;
    h.core_count = static_cast<uint32_t>(sku_.core_count());
    h.code_len = 256;
    Bytes blob = BuildShaderBlob(h);
    uint64_t shader_va = Map(1, {true, false, true});
    WriteVa(shader_va, blob.data(), blob.size());

    d.layout_version = sku_.mem_layout_version;
    d.shader_va = shader_va;
    d.shader_len = static_cast<uint32_t>(blob.size());
    d.next_job_va = next_job_va;
    uint64_t desc_va = Map(1, {true, false, false});
    Bytes raw = d.Serialize();
    WriteVa(desc_va, raw.data(), raw.size());
    return desc_va;
  }

  ExecResult Execute(uint64_t chain_va) {
    return executor_.ExecuteChain(chain_va, builder_.root_pa(), &tlb_);
  }

 private:
  GpuSku sku_;
  PhysicalMemory mem_;
  PageAllocator alloc_;
  PageTableBuilder builder_;
  ShaderCoreExecutor executor_;
  GpuTlb tlb_;
  uint64_t next_va_ = 0x10000000;
  std::map<uint64_t, uint64_t> pa_of_;
};

struct Prepared {
  uint64_t chain = 0;
  uint64_t out_va = 0;
  uint64_t out_bytes = 0;
};

struct Outcome {
  ExecResult result;
  std::vector<uint8_t> out;
};

// Runs the same scenario on a fresh rig per engine and asserts full
// parity: status, fault register content, modeled duration (covers MACs
// and bytes-moved), and bitwise output bytes.
template <typename SetupFn>
void ExpectEngineParity(SetupFn setup) {
  Outcome res[2];
  const KernelEngine engines[2] = {KernelEngine::kReference,
                                   KernelEngine::kOptimized};
  for (int i = 0; i < 2; ++i) {
    Rig rig(engines[i]);
    Prepared p = setup(rig);
    res[i].result = rig.Execute(p.chain);
    if (p.out_bytes > 0) {
      res[i].out = rig.ReadVaBytes(p.out_va, p.out_bytes);
    }
  }
  const ExecResult& ref = res[0].result;
  const ExecResult& opt = res[1].result;
  EXPECT_EQ(ref.status.ok(), opt.status.ok())
      << "ref: " << ref.status.ToString() << " opt: " << opt.status.ToString();
  EXPECT_EQ(ref.status.message(), opt.status.message());
  EXPECT_EQ(ref.is_mmu_fault, opt.is_mmu_fault);
  EXPECT_EQ(ref.mmu_fault.status, opt.mmu_fault.status);
  EXPECT_EQ(ref.mmu_fault.address, opt.mmu_fault.address);
  EXPECT_EQ(ref.duration, opt.duration);
  EXPECT_EQ(ref.total_macs, opt.total_macs);
  EXPECT_EQ(ref.jobs_executed, opt.jobs_executed);
  EXPECT_EQ(res[0].out, res[1].out) << "output bytes differ";
}

Prepared GemmCase(Rig& rig, uint32_t m, uint32_t k, uint32_t n, bool relu,
                  bool reversed = false) {
  auto pages = [](size_t floats) {
    return (floats * 4 + kPageSize - 1) / kPageSize;
  };
  uint64_t a = rig.Map(pages(static_cast<size_t>(m) * k) , {true, false, false},
                       reversed);
  uint64_t b = rig.Map(pages(static_cast<size_t>(k) * n), {true, false, false},
                       reversed);
  uint64_t c = rig.Map(pages(static_cast<size_t>(m) * n), {true, true, false},
                       reversed);
  rig.WriteF32(a, TestData(static_cast<size_t>(m) * k, m * 31 + k));
  rig.WriteF32(b, TestData(static_cast<size_t>(k) * n, k * 17 + n));
  JobDescriptor d;
  d.op = GpuOp::kGemm;
  if (relu) {
    d.flags = kJobFlagReluFused;
  }
  d.input_va[0] = a;
  d.aux_va = b;
  d.output_va = c;
  d.params = {m, k, n, 0, 0, 0, 0, 0};
  return {rig.InstallJob(d), c, static_cast<uint64_t>(m) * n * 4};
}

TEST(KernelGolden, GemmOddShapes) {
  const uint32_t shapes[][3] = {{5, 7, 9},  {1, 3, 8},    {4, 1, 6},
                                {3, 5, 1},  {9, 2, 2},    {16, 16, 16},
                                {33, 17, 31}, {37, 29, 1}, {2, 64, 5}};
  for (const auto& s : shapes) {
    for (bool relu : {false, true}) {
      ExpectEngineParity([&](Rig& rig) {
        return GemmCase(rig, s[0], s[1], s[2], relu);
      });
    }
  }
}

TEST(KernelGolden, GemmPageCrossingReversedPages) {
  // 40x40 tensors span 2 pages each; reversed physical order forces the
  // optimized engine onto the gather/scatter path.
  ExpectEngineParity(
      [](Rig& rig) { return GemmCase(rig, 40, 40, 40, true, true); });
}

TEST(KernelGolden, GemmZeroDimFaultParity) {
  ExpectEngineParity([](Rig& rig) { return GemmCase(rig, 0, 3, 3, false); });
  ExpectEngineParity([](Rig& rig) { return GemmCase(rig, 3, 0, 3, false); });
}

TEST(KernelGolden, Im2ColShapes) {
  const uint32_t shapes[][7] = {
      // cin, h, w, kh, kw, stride, pad
      {3, 7, 5, 3, 3, 1, 1},  {2, 8, 8, 3, 3, 2, 0}, {1, 5, 5, 1, 1, 1, 0},
      {4, 6, 7, 5, 3, 1, 2},  {2, 9, 9, 3, 3, 3, 1}, {1, 3, 3, 5, 5, 1, 2},
      {3, 16, 16, 3, 3, 1, 1}};
  for (const auto& s : shapes) {
    ExpectEngineParity([&](Rig& rig) -> Prepared {
      uint32_t cin = s[0], h = s[1], w = s[2], kh = s[3], kw = s[4];
      uint32_t stride = s[5], pad = s[6];
      uint32_t oh = (h + 2 * pad - kh) / stride + 1;
      uint32_t ow = (w + 2 * pad - kw) / stride + 1;
      size_t in_n = static_cast<size_t>(cin) * h * w;
      size_t out_n = static_cast<size_t>(cin) * kh * kw * oh * ow;
      uint64_t in = rig.Map((in_n * 4) / kPageSize + 1, {true, false, false});
      uint64_t out = rig.Map((out_n * 4) / kPageSize + 1, {true, true, false});
      rig.WriteF32(in, TestData(in_n, cin * 7 + h));
      JobDescriptor d;
      d.op = GpuOp::kIm2Col;
      d.input_va[0] = in;
      d.output_va = out;
      d.params = {cin, h, w, kh, kw, stride, pad, 0};
      return {rig.InstallJob(d), out, out_n * 4};
    });
  }
}

TEST(KernelGolden, Conv2dShapes) {
  const uint32_t shapes[][8] = {
      // cin, h, w, cout, kh, kw, stride, pad
      {3, 7, 7, 4, 3, 3, 1, 1},  {2, 9, 5, 3, 3, 3, 1, 0},
      {1, 8, 8, 2, 5, 5, 2, 2},  {4, 5, 5, 1, 1, 1, 1, 0},
      {3, 16, 16, 8, 3, 3, 1, 1}, {2, 7, 9, 3, 3, 1, 2, 1}};
  for (const auto& s : shapes) {
    for (bool relu : {false, true}) {
      ExpectEngineParity([&](Rig& rig) -> Prepared {
        uint32_t cin = s[0], h = s[1], w = s[2], cout = s[3];
        uint32_t kh = s[4], kw = s[5], stride = s[6], pad = s[7];
        uint32_t oh = (h + 2 * pad - kh) / stride + 1;
        uint32_t ow = (w + 2 * pad - kw) / stride + 1;
        size_t in_n = static_cast<size_t>(cin) * h * w;
        size_t wt_n = static_cast<size_t>(cout) * cin * kh * kw;
        size_t out_n = static_cast<size_t>(cout) * oh * ow;
        uint64_t in = rig.Map((in_n * 4) / kPageSize + 1, {true, false, false});
        uint64_t wt = rig.Map((wt_n * 4) / kPageSize + 1, {true, false, false});
        uint64_t out =
            rig.Map((out_n * 4) / kPageSize + 1, {true, true, false});
        rig.WriteF32(in, TestData(in_n, h * 3 + w));
        rig.WriteF32(wt, TestData(wt_n, cout * 13 + kh));
        JobDescriptor d;
        d.op = GpuOp::kConv2d;
        if (relu) {
          d.flags = kJobFlagReluFused;
        }
        d.input_va[0] = in;
        d.aux_va = wt;
        d.output_va = out;
        d.params = {cin, h, w, cout, kh, kw, stride, pad};
        return {rig.InstallJob(d), out, out_n * 4};
      });
    }
  }
}

TEST(KernelGolden, PoolShapes) {
  const uint32_t shapes[][5] = {// c, h, w, win, stride
                                {3, 7, 5, 3, 2}, {2, 4, 4, 2, 2},
                                {1, 9, 9, 3, 3}, {4, 8, 8, 2, 2},
                                {2, 5, 7, 3, 1}};
  for (const auto& s : shapes) {
    for (GpuOp op : {GpuOp::kPoolMax, GpuOp::kPoolAvg}) {
      ExpectEngineParity([&](Rig& rig) -> Prepared {
        uint32_t c = s[0], h = s[1], w = s[2], win = s[3], stride = s[4];
        uint32_t oh = (h - win) / stride + 1;
        uint32_t ow = (w - win) / stride + 1;
        size_t in_n = static_cast<size_t>(c) * h * w;
        size_t out_n = static_cast<size_t>(c) * oh * ow;
        uint64_t in = rig.Map((in_n * 4) / kPageSize + 1, {true, false, false});
        uint64_t out =
            rig.Map((out_n * 4) / kPageSize + 1, {true, true, false});
        rig.WriteF32(in, TestData(in_n, c * 5 + win));
        JobDescriptor d;
        d.op = op;
        d.input_va[0] = in;
        d.output_va = out;
        d.params = {c, h, w, win, stride, 0, 0, 0};
        return {rig.InstallJob(d), out, out_n * 4};
      });
    }
  }
}

TEST(KernelGolden, BiasReluShapes) {
  const uint32_t shapes[][2] = {// count, bias_len
                                {12, 3}, {7, 7}, {5, 0}, {7, 3},
                                {1, 1},  {1024, 16}, {0, 3}};
  for (const auto& s : shapes) {
    for (bool relu : {false, true}) {
      ExpectEngineParity([&](Rig& rig) -> Prepared {
        uint32_t count = s[0], bias_len = s[1];
        uint64_t x = rig.Map(2, {true, false, false});
        uint64_t b = rig.Map(1, {true, false, false});
        uint64_t out = rig.Map(2, {true, true, false});
        rig.WriteF32(x, TestData(count, count * 3));
        rig.WriteF32(b, TestData(bias_len, bias_len + 41));
        JobDescriptor d;
        d.op = GpuOp::kBiasRelu;
        if (relu) {
          d.flags = kJobFlagReluFused;
        }
        d.input_va[0] = x;
        d.aux_va = b;
        d.output_va = out;
        d.params = {count, bias_len, 0, 0, 0, 0, 0, 0};
        return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
      });
    }
  }
}

TEST(KernelGolden, BiasReluBadShapeFaultParity) {
  // count < bias_len (nonzero): spatial would be 0 — both engines fault
  // identically instead of dividing by zero.
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint64_t x = rig.Map(1, {true, false, false});
    uint64_t b = rig.Map(1, {true, false, false});
    uint64_t out = rig.Map(1, {true, true, false});
    rig.WriteF32(x, TestData(3, 9));
    rig.WriteF32(b, TestData(8, 10));
    JobDescriptor d;
    d.op = GpuOp::kBiasRelu;
    d.input_va[0] = x;
    d.aux_va = b;
    d.output_va = out;
    d.params = {3, 8, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), 0, 0};
  });
}

TEST(KernelGolden, EltwiseAddOddCounts) {
  for (uint32_t count : {1u, 7u, 51u, 1025u}) {
    for (bool relu : {false, true}) {
      ExpectEngineParity([&](Rig& rig) -> Prepared {
        uint64_t a = rig.Map(2, {true, false, false});
        uint64_t b = rig.Map(2, {true, false, false});
        uint64_t out = rig.Map(2, {true, true, false});
        rig.WriteF32(a, TestData(count, count));
        rig.WriteF32(b, TestData(count, count + 1));
        JobDescriptor d;
        d.op = GpuOp::kEltwiseAdd;
        if (relu) {
          d.flags = kJobFlagReluFused;
        }
        d.input_va[0] = a;
        d.input_va[1] = b;
        d.output_va = out;
        d.params = {count, 0, 0, 0, 0, 0, 0, 0};
        return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
      });
    }
  }
}

TEST(KernelGolden, SoftmaxCounts) {
  for (uint32_t count : {1u, 9u, 100u, 1000u}) {
    ExpectEngineParity([&](Rig& rig) -> Prepared {
      uint64_t x = rig.Map(1, {true, false, false});
      uint64_t out = rig.Map(1, {true, true, false});
      rig.WriteF32(x, TestData(count, count * 13));
      JobDescriptor d;
      d.op = GpuOp::kSoftmax;
      d.input_va[0] = x;
      d.output_va = out;
      d.params = {count, 0, 0, 0, 0, 0, 0, 0};
      return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
    });
  }
}

TEST(KernelGolden, CopyAndFill) {
  for (uint32_t count : {1u, 13u, 2000u}) {
    ExpectEngineParity([&](Rig& rig) -> Prepared {
      uint64_t x = rig.Map(2, {true, false, false});
      uint64_t out = rig.Map(2, {true, true, false});
      rig.WriteF32(x, TestData(count, count * 3 + 5));
      JobDescriptor d;
      d.op = GpuOp::kCopy;
      d.input_va[0] = x;
      d.output_va = out;
      d.params = {count, 0, 0, 0, 0, 0, 0, 0};
      return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
    });
    ExpectEngineParity([&](Rig& rig) -> Prepared {
      uint64_t out = rig.Map(2, {true, true, false});
      float v = -3.25f;
      uint32_t bits;
      std::memcpy(&bits, &v, 4);
      JobDescriptor d;
      d.op = GpuOp::kFill;
      d.output_va = out;
      d.params = {count, bits, 0, 0, 0, 0, 0, 0};
      return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
    });
  }
}

TEST(KernelGolden, UnalignedBaseForcesGather) {
  // Tensor bases at +2 bytes: translation succeeds but pa % 4 != 0, so
  // the optimized engine must stage through the arena.
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint32_t count = 300;
    uint64_t a = rig.Map(2, {true, false, false}) + 2;
    uint64_t b = rig.Map(2, {true, false, false}) + 2;
    uint64_t out = rig.Map(2, {true, true, false}) + 2;
    rig.WriteF32(a, TestData(count, 77));
    rig.WriteF32(b, TestData(count, 78));
    JobDescriptor d;
    d.op = GpuOp::kEltwiseAdd;
    d.flags = kJobFlagReluFused;
    d.input_va[0] = a;
    d.input_va[1] = b;
    d.output_va = out;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
  });
}

TEST(KernelGolden, InPlaceOps) {
  // out == in (identical range): elementwise-safe, the optimized engine
  // may run in place but must still match the reference byte-for-byte.
  ExpectEngineParity([](Rig& rig) -> Prepared {  // bias_relu in place
    uint32_t count = 48, bias_len = 4;
    uint64_t x = rig.Map(1, {true, true, false});
    uint64_t b = rig.Map(1, {true, false, false});
    rig.WriteF32(x, TestData(count, 5));
    rig.WriteF32(b, TestData(bias_len, 6));
    JobDescriptor d;
    d.op = GpuOp::kBiasRelu;
    d.flags = kJobFlagReluFused;
    d.input_va[0] = x;
    d.aux_va = b;
    d.output_va = x;
    d.params = {count, bias_len, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), x, static_cast<uint64_t>(count) * 4};
  });
  ExpectEngineParity([](Rig& rig) -> Prepared {  // a += a
    uint32_t count = 65;
    uint64_t x = rig.Map(1, {true, true, false});
    rig.WriteF32(x, TestData(count, 15));
    JobDescriptor d;
    d.op = GpuOp::kEltwiseAdd;
    d.input_va[0] = x;
    d.input_va[1] = x;
    d.output_va = x;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), x, static_cast<uint64_t>(count) * 4};
  });
  ExpectEngineParity([](Rig& rig) -> Prepared {  // softmax in place
    uint32_t count = 33;
    uint64_t x = rig.Map(1, {true, true, false});
    rig.WriteF32(x, TestData(count, 25));
    JobDescriptor d;
    d.op = GpuOp::kSoftmax;
    d.input_va[0] = x;
    d.output_va = x;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), x, static_cast<uint64_t>(count) * 4};
  });
  ExpectEngineParity([](Rig& rig) -> Prepared {  // copy onto itself
    uint32_t count = 21;
    uint64_t x = rig.Map(1, {true, true, false});
    rig.WriteF32(x, TestData(count, 35));
    JobDescriptor d;
    d.op = GpuOp::kCopy;
    d.input_va[0] = x;
    d.output_va = x;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), x, static_cast<uint64_t>(count) * 4};
  });
}

TEST(KernelGolden, PartialOverlapForcesBufferedWrite) {
  // GEMM output range starting inside the B matrix: the reference engine
  // reads everything before writing anything; the optimized engine must
  // buffer the output to reproduce that.
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint32_t m = 6, k = 5, n = 4;
    uint64_t a = rig.Map(1, {true, false, false});
    uint64_t region = rig.Map(2, {true, true, false});
    uint64_t b = region;
    uint64_t c = region + (static_cast<uint64_t>(k) * n - 2) * 4;
    rig.WriteF32(a, TestData(static_cast<size_t>(m) * k, 81));
    rig.WriteF32(b, TestData(static_cast<size_t>(k) * n, 82));
    JobDescriptor d;
    d.op = GpuOp::kGemm;
    d.input_va[0] = a;
    d.aux_va = b;
    d.output_va = c;
    d.params = {m, k, n, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), c, static_cast<uint64_t>(m) * n * 4};
  });
  // Elementwise partial overlap (out = a shifted by one element).
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint32_t count = 40;
    uint64_t region = rig.Map(1, {true, true, false});
    uint64_t a = region;
    uint64_t out = region + 4;
    rig.WriteF32(a, TestData(count + 1, 91));
    JobDescriptor d;
    d.op = GpuOp::kEltwiseAdd;
    d.input_va[0] = a;
    d.input_va[1] = a;
    d.output_va = out;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), out, static_cast<uint64_t>(count) * 4};
  });
}

TEST(KernelGolden, WriteFaultParity) {
  // Read-only output: the reference engine faults at the post-compute
  // write, the optimized engine at map time — identical fault register
  // content and modeled duration either way.
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint32_t count = 16;
    uint64_t x = rig.Map(1, {true, false, false});
    uint64_t out = rig.Map(1, {true, false, false});  // no write permission
    rig.WriteF32(x, TestData(count, 3));
    JobDescriptor d;
    d.op = GpuOp::kCopy;
    d.input_va[0] = x;
    d.output_va = out;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), 0, 0};
  });
}

TEST(KernelGolden, UnmappedTensorFaultParity) {
  // Tensor extends past its mapping into the guard gap: both engines
  // report the translate fault at the same first unmapped VA.
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint32_t count = 3000;  // 12000 bytes > 2 pages
    uint64_t x = rig.Map(2, {true, false, false});
    uint64_t out = rig.Map(3, {true, true, false});
    JobDescriptor d;
    d.op = GpuOp::kCopy;
    d.input_va[0] = x;
    d.output_va = out;
    d.params = {count, 0, 0, 0, 0, 0, 0, 0};
    return {rig.InstallJob(d), 0, 0};
  });
}

TEST(KernelGolden, ChainedJobsReuseArena) {
  // fill -> gemm -> softmax in one chain: the optimized engine reuses one
  // arena across jobs; results must still match the reference exactly.
  ExpectEngineParity([](Rig& rig) -> Prepared {
    uint32_t m = 9, k = 8, n = 7;
    uint64_t a = rig.Map(1, {true, true, false});
    uint64_t b = rig.Map(1, {true, false, false});
    uint64_t c = rig.Map(1, {true, true, false});
    uint64_t s = rig.Map(1, {true, true, false});
    rig.WriteF32(b, TestData(static_cast<size_t>(k) * n, 57));

    JobDescriptor sm;
    sm.op = GpuOp::kSoftmax;
    sm.input_va[0] = c;
    sm.output_va = s;
    sm.params = {m * n, 0, 0, 0, 0, 0, 0, 0};
    uint64_t third = rig.InstallJob(sm);

    JobDescriptor gm;
    gm.op = GpuOp::kGemm;
    gm.input_va[0] = a;
    gm.aux_va = b;
    gm.output_va = c;
    gm.params = {m, k, n, 0, 0, 0, 0, 0};
    uint64_t second = rig.InstallJob(gm, third);

    JobDescriptor fill;
    fill.op = GpuOp::kFill;
    fill.output_va = a;
    float v = 0.75f;
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    fill.params = {m * k, bits, 0, 0, 0, 0, 0, 0};
    uint64_t first = rig.InstallJob(fill, second);
    return {first, s, static_cast<uint64_t>(m) * n * 4};
  });
}

}  // namespace
}  // namespace grt
