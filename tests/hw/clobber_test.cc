// Clobber / side-effect model tests (the dataflow-semantics section of
// src/hw/regs.h). The optimizer's safety arguments bottom out in these
// tables, so each classification is pinned against the device model's
// actual behavior (src/hw/gpu.cc): a register the model calls a pure latch
// must never change anything else, and a stimulus the model calls
// clobbering must cover every register gpu.cc may touch.
#include <gtest/gtest.h>

#include "src/hw/regs.h"

namespace grt {
namespace {

TEST(RegClassify, ConstantsSurviveEverything) {
  EXPECT_EQ(ClassifyRegister(kRegGpuId), RegClass::kConstant);
  EXPECT_EQ(ClassifyRegister(kRegShaderPresentLo), RegClass::kConstant);
  EXPECT_EQ(ClassifyRegister(kRegShaderPresentHi), RegClass::kConstant);
  EXPECT_EQ(ClassifyRegister(kRegThreadMaxThreads), RegClass::kConstant);
  // Not even a hard reset clobbers them.
  EXPECT_FALSE(MayClobberRegister(kRegGpuCommand, kGpuCommandHardReset,
                                  kRegGpuId));
  EXPECT_FALSE(MayClobberRegister(kRegGpuCommand, kGpuCommandSoftReset,
                                  kRegShaderPresentLo));
}

TEST(RegClassify, LatchesTriggersStatusNondet) {
  EXPECT_EQ(ClassifyRegister(kRegGpuIrqMask), RegClass::kCpuConfig);
  EXPECT_EQ(ClassifyRegister(kJobSlotBase + kJsHeadNextLo),
            RegClass::kCpuConfig);
  EXPECT_EQ(ClassifyRegister(kRegShaderConfig), RegClass::kCpuConfig);
  EXPECT_EQ(ClassifyRegister(kAsBase + kAsTranstabLo), RegClass::kCpuConfig);

  EXPECT_EQ(ClassifyRegister(kRegGpuCommand), RegClass::kTrigger);
  EXPECT_EQ(ClassifyRegister(kRegGpuIrqClear), RegClass::kTrigger);
  EXPECT_EQ(ClassifyRegister(kRegShaderPwrOnLo), RegClass::kTrigger);
  EXPECT_EQ(ClassifyRegister(kJobSlotBase + kJsCommandNext),
            RegClass::kTrigger);

  EXPECT_EQ(ClassifyRegister(kRegGpuIrqRawstat), RegClass::kDeviceStatus);
  EXPECT_EQ(ClassifyRegister(kRegShaderReadyLo), RegClass::kDeviceStatus);
  EXPECT_EQ(ClassifyRegister(kJobSlotBase + kJsStatus),
            RegClass::kDeviceStatus);

  EXPECT_EQ(ClassifyRegister(kRegLatestFlush), RegClass::kNondet);
  EXPECT_EQ(ClassifyRegister(kRegTimestampLo), RegClass::kNondet);

  EXPECT_EQ(ClassifyRegister(0x3FF0), RegClass::kUnknown);
}

TEST(SideEffects, PureLatchesHaveNone) {
  EXPECT_FALSE(WriteHasSideEffects(kRegGpuIrqMask, 0x7));
  EXPECT_FALSE(WriteHasSideEffects(kJobSlotBase + kJsConfigNext, 0x1234));
  EXPECT_TRUE(WriteHasSideEffects(kRegGpuCommand, kGpuCommandCleanCaches));
  EXPECT_TRUE(WriteHasSideEffects(kRegShaderPwrOnLo, 0xFF));
  EXPECT_TRUE(WriteHasSideEffects(kRegGpuIrqClear, 0x1));
  // Unknown offsets: assume the worst.
  EXPECT_TRUE(WriteHasSideEffects(0x3FF0, 0));
}

TEST(PowerHelpers, RegisterMapping) {
  EXPECT_TRUE(IsPowerControlRegister(kRegShaderPwrOnLo));
  EXPECT_TRUE(IsPowerControlRegister(kRegL2PwrOffHi));
  EXPECT_FALSE(IsPowerControlRegister(kRegShaderReadyLo));
  EXPECT_TRUE(IsPowerControlHiRegister(kRegTilerPwrOnHi));
  EXPECT_FALSE(IsPowerControlHiRegister(kRegTilerPwrOnLo));

  uint32_t present = 0;
  ASSERT_TRUE(PowerPresentRegisterFor(kRegShaderPwrOnHi, &present));
  EXPECT_EQ(present, kRegShaderPresentHi);
  ASSERT_TRUE(PowerPresentRegisterFor(kRegL2PwrOffLo, &present));
  EXPECT_EQ(present, kRegL2PresentLo);
  EXPECT_FALSE(PowerPresentRegisterFor(kRegGpuCommand, &present));

  uint32_t ready = 0, trans = 0;
  ASSERT_TRUE(PowerStatusRegistersFor(kRegTilerPwrOffLo, &ready, &trans));
  EXPECT_EQ(ready, kRegTilerReadyLo);
  EXPECT_EQ(trans, kRegTilerPwrTransLo);
  EXPECT_FALSE(PowerStatusRegistersFor(kRegGpuIrqMask, &ready, &trans));
}

TEST(ClobberModel, ResetsClobberAllButConstants) {
  for (uint32_t cmd : {kGpuCommandSoftReset, kGpuCommandHardReset}) {
    EXPECT_TRUE(MayClobberRegister(kRegGpuCommand, cmd, kRegGpuIrqMask));
    EXPECT_TRUE(MayClobberRegister(kRegGpuCommand, cmd, kRegShaderReadyLo));
    EXPECT_TRUE(
        MayClobberRegister(kRegGpuCommand, cmd, kJobSlotBase + kJsStatus));
    EXPECT_FALSE(MayClobberRegister(kRegGpuCommand, cmd, kRegGpuId));
  }
  // A NOP command is not a reset.
  EXPECT_FALSE(
      MayClobberRegister(kRegGpuCommand, kGpuCommandNop, kRegGpuIrqMask));
}

TEST(ClobberModel, ConfigWritesOnlyLatch) {
  // A pure latch write clobbers itself and nothing device-owned.
  EXPECT_TRUE(
      MayClobberRegister(kRegShaderConfig, 0x5, kRegShaderConfig));
  EXPECT_FALSE(
      MayClobberRegister(kRegShaderConfig, 0x5, kRegShaderReadyLo));
  EXPECT_FALSE(
      MayClobberRegister(kJobSlotBase + kJsHeadNextLo, 0x1000,
                         kJobSlotBase + kJsStatus));
  // ...except IRQ masks, which gate the matching IRQ_STATUS view.
  EXPECT_TRUE(MayClobberRegister(kRegGpuIrqMask, 0x1, kRegGpuIrqStatus));
}

TEST(ClobberModel, JobStartsClobberJobButNotPower) {
  const uint32_t js_cmd = kJobSlotBase + kJsCommand;
  EXPECT_TRUE(MayClobberRegister(js_cmd, kJsCommandStart,
                                 kJobSlotBase + kJsStatus));
  EXPECT_TRUE(MayClobberRegister(js_cmd, kJsCommandStart, kRegJobIrqRawstat));
  EXPECT_TRUE(MayClobberRegister(js_cmd, kJsCommandStart, kRegMmuIrqRawstat));
  EXPECT_TRUE(MayClobberRegister(js_cmd, kJsCommandStart, kRegGpuFaultStatus));
  // The power surface is CPU-driven; a job cannot flip core power.
  EXPECT_FALSE(MayClobberRegister(js_cmd, kJsCommandStart, kRegShaderReadyLo));
  EXPECT_FALSE(
      MayClobberRegister(js_cmd, kJsCommandStart, kRegShaderPwrTransLo));
}

TEST(ClobberModel, PowerWritesClobberOwnDomainWord) {
  EXPECT_TRUE(
      MayClobberRegister(kRegShaderPwrOnLo, 0xF, kRegShaderReadyLo));
  EXPECT_TRUE(
      MayClobberRegister(kRegShaderPwrOnLo, 0xF, kRegShaderPwrTransLo));
  EXPECT_TRUE(MayClobberRegister(kRegShaderPwrOnLo, 0xF, kRegGpuIrqRawstat));
  // Other domains and the Hi word of the same domain are untouched.
  EXPECT_FALSE(MayClobberRegister(kRegShaderPwrOnLo, 0xF, kRegTilerReadyLo));
  EXPECT_FALSE(MayClobberRegister(kRegShaderPwrOnLo, 0xF, kRegShaderReadyHi));
}

TEST(ClobberModel, IrqClears) {
  EXPECT_TRUE(MayClobberRegister(kRegGpuIrqClear, 0x1, kRegGpuIrqRawstat));
  EXPECT_FALSE(MayClobberRegister(kRegGpuIrqClear, 0x1, kRegJobIrqRawstat));
  // JOB_IRQ_CLEAR also re-idles acknowledged slots' status registers.
  EXPECT_TRUE(MayClobberRegister(kRegJobIrqClear, 0x1, kRegJobIrqRawstat));
  EXPECT_TRUE(
      MayClobberRegister(kRegJobIrqClear, 0x1, kJobSlotBase + kJsStatus));
  EXPECT_TRUE(MayClobberRegister(kRegMmuIrqClear, 0x1, kRegMmuIrqRawstat));
  EXPECT_FALSE(MayClobberRegister(kRegMmuIrqClear, 0x1, kRegGpuIrqRawstat));
}

TEST(ClobberModel, ValueClassesPartitionTheModel) {
  // ClobberValueClass's contract: for one stimulus register, any two
  // values in the same class have identical clobber windows. The
  // footprint analysis leans on this to sweep the MMIO window once per
  // class instead of once per distinct recorded write, so verify the
  // partition against the model exhaustively over the window for a
  // stimulus set spanning every register family and command category.
  const uint32_t stimulus_regs[] = {
      kRegGpuCommand,           kRegGpuIrqClear,
      kRegJobIrqClear,          kRegMmuIrqClear,
      kRegGpuIrqMask,           kRegShaderConfig,
      kRegShaderPwrOnLo,        kRegL2PwrOffHi,
      kJobSlotBase + kJsCommand,
      kJobSlotBase + kJsHeadNextLo,
      kAsBase + kAsCommand,     kAsBase + kAsTranstabLo,
      kRegGpuStatus /* status write: worst-case stimulus */};
  const uint32_t values[] = {0,
                             1,
                             kGpuCommandSoftReset,
                             kGpuCommandHardReset,
                             kGpuCommandCleanCaches,
                             kGpuCommandCleanInvCaches,
                             kGpuCommandNop,
                             0xDEADBEEFu};
  for (uint32_t sreg : stimulus_regs) {
    for (uint32_t v1 : values) {
      for (uint32_t v2 : values) {
        if (ClobberValueClass(sreg, v1) != ClobberValueClass(sreg, v2)) {
          continue;
        }
        for (uint32_t target = 0; target < kGpuMmioSize; target += 4) {
          ASSERT_EQ(MayClobberRegister(sreg, v1, target),
                    MayClobberRegister(sreg, v2, target))
              << "reg " << RegisterName(sreg) << " values " << v1 << "/"
              << v2 << " diverge at target " << RegisterName(target);
        }
      }
    }
  }
  // The command categories the model distinguishes get distinct classes.
  EXPECT_NE(ClobberValueClass(kRegGpuCommand, kGpuCommandSoftReset),
            ClobberValueClass(kRegGpuCommand, kGpuCommandCleanCaches));
  EXPECT_NE(ClobberValueClass(kRegGpuCommand, kGpuCommandCleanCaches),
            ClobberValueClass(kRegGpuCommand, kGpuCommandNop));
  EXPECT_EQ(ClobberValueClass(kRegGpuCommand, kGpuCommandSoftReset),
            ClobberValueClass(kRegGpuCommand, kGpuCommandHardReset));
}

TEST(IrqBitsRaised, PerStimulusAttribution) {
  EXPECT_EQ(GpuIrqBitsRaisedBy(kRegGpuCommand, kGpuCommandSoftReset),
            kGpuIrqResetCompleted | kGpuIrqPowerChangedSingle |
                kGpuIrqPowerChangedAll);
  EXPECT_EQ(GpuIrqBitsRaisedBy(kRegGpuCommand, kGpuCommandCleanCaches),
            kGpuIrqCleanCachesCompleted);
  EXPECT_EQ(GpuIrqBitsRaisedBy(kRegGpuCommand, kGpuCommandNop), 0u);
  // Power writes raise the PowerChanged bits (gpu.cc asserts bit 10 even
  // on a no-change request, so the model must include it).
  EXPECT_EQ(GpuIrqBitsRaisedBy(kRegShaderPwrOnLo, 0xF) &
                (kGpuIrqPowerChangedSingle | kGpuIrqPowerChangedAll),
            kGpuIrqPowerChangedSingle | kGpuIrqPowerChangedAll);
  // Job/AS activity may fault, nothing more, on the GPU IRQ surface.
  EXPECT_EQ(GpuIrqBitsRaisedBy(kJobSlotBase + kJsCommand, kJsCommandStart),
            kGpuIrqFault);
  EXPECT_EQ(GpuIrqBitsRaisedBy(kAsBase + kAsCommand, kAsCommandFlushMem),
            kGpuIrqFault);
  // Pure latches raise nothing.
  EXPECT_EQ(GpuIrqBitsRaisedBy(kRegGpuIrqMask, 0x7FF), 0u);
}

}  // namespace
}  // namespace grt
