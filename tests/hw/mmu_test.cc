// MMU tests: PTE formats, walker, permissions, TLB staleness, builder.
#include <gtest/gtest.h>

#include "src/hw/mmu.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 8 << 20;

class MmuFormatTest : public ::testing::TestWithParam<PageTableFormat> {};

TEST_P(MmuFormatTest, PteEncodeDecodeRoundTrip) {
  for (bool read : {false, true}) {
    for (bool write : {false, true}) {
      for (bool exec : {false, true}) {
        PteFlags flags{read, write, exec};
        uint64_t pte = EncodePte(GetParam(), 0x80123000, flags);
        auto decoded = DecodePte(GetParam(), pte);
        ASSERT_TRUE(decoded.ok());
        EXPECT_EQ(decoded->first, 0x80123000u);
        EXPECT_EQ(decoded->second, flags);
      }
    }
  }
}

TEST_P(MmuFormatTest, InvalidPteRejected) {
  EXPECT_FALSE(DecodePte(GetParam(), 0).ok());
}

TEST_P(MmuFormatTest, WalkerTranslatesMappedPage) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(GetParam(), &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  uint64_t pa = alloc.AllocPage().value();
  ASSERT_TRUE(
      builder.MapPage(0x10000000, pa, PteFlags{true, true, false}).ok());

  MmuWalker walker(GetParam(), &mem);
  GpuTlb tlb;
  MmuFault fault;
  auto t = walker.Translate(builder.root_pa(), 0x10000123, &tlb, &fault);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->pa, pa + 0x123);
  EXPECT_TRUE(t->flags.read);
  EXPECT_TRUE(t->flags.write);
  EXPECT_FALSE(t->flags.execute);
  EXPECT_EQ(tlb.size(), 1u);
}

TEST_P(MmuFormatTest, UnmappedVaFaults) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(GetParam(), &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  MmuWalker walker(GetParam(), &mem);
  MmuFault fault;
  EXPECT_FALSE(
      walker.Translate(builder.root_pa(), 0x20000000, nullptr, &fault).ok());
  EXPECT_EQ(fault.status, kFaultTranslation);
  EXPECT_EQ(fault.address, 0x20000000u);
}

TEST_P(MmuFormatTest, VaBeyondAddressSpaceFaults) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(GetParam(), &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  MmuWalker walker(GetParam(), &mem);
  MmuFault fault;
  EXPECT_FALSE(walker
                   .Translate(builder.root_pa(), 1ull << kGpuVaBits, nullptr,
                              &fault)
                   .ok());
}

INSTANTIATE_TEST_SUITE_P(Formats, MmuFormatTest,
                         ::testing::Values(PageTableFormat::kFormatA,
                                           PageTableFormat::kFormatB));

TEST(Mmu, CrossFormatLeafIsInvalid) {
  // A format-A leaf (valid bit only) lacks format B's access flag: reading
  // it under format B must fault — the paper's cross-SKU page-table
  // breakage (§2.4).
  uint64_t pte_a =
      EncodePte(PageTableFormat::kFormatA, 0x80001000, {true, true, false});
  EXPECT_FALSE(DecodePte(PageTableFormat::kFormatB, pte_a).ok());
}

TEST(Mmu, UnmapRemovesTranslation) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(PageTableFormat::kFormatA, &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  uint64_t pa = alloc.AllocPage().value();
  ASSERT_TRUE(builder.MapPage(0x10000000, pa, {true, false, false}).ok());
  ASSERT_TRUE(builder.UnmapPage(0x10000000).ok());
  MmuWalker walker(PageTableFormat::kFormatA, &mem);
  MmuFault fault;
  EXPECT_FALSE(
      walker.Translate(builder.root_pa(), 0x10000000, nullptr, &fault).ok());
  EXPECT_FALSE(builder.UnmapPage(0x30000000).ok());  // never mapped
}

TEST(Mmu, TlbServesStaleEntryUntilFlushed) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(PageTableFormat::kFormatA, &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  uint64_t pa1 = alloc.AllocPage().value();
  uint64_t pa2 = alloc.AllocPage().value();
  ASSERT_TRUE(builder.MapPage(0x10000000, pa1, {true, true, false}).ok());

  MmuWalker walker(PageTableFormat::kFormatA, &mem);
  GpuTlb tlb;
  MmuFault fault;
  EXPECT_EQ(walker.Translate(builder.root_pa(), 0x10000000, &tlb, &fault)
                ->pa,
            pa1);
  // Remap without flushing: the TLB still answers with the old frame —
  // exactly why the driver must issue AS UPDATE/FLUSH commands.
  ASSERT_TRUE(builder.MapPage(0x10000000, pa2, {true, true, false}).ok());
  EXPECT_EQ(walker.Translate(builder.root_pa(), 0x10000000, &tlb, &fault)
                ->pa,
            pa1);
  tlb.Flush();
  EXPECT_EQ(walker.Translate(builder.root_pa(), 0x10000000, &tlb, &fault)
                ->pa,
            pa2);
}

TEST(Mmu, MapRangeCoversAllPages) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(PageTableFormat::kFormatA, &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  uint64_t pa = alloc.AllocContiguous(4).value();
  ASSERT_TRUE(builder.MapRange(0x10000000, pa, 4, {true, false, true}).ok());
  MmuWalker walker(PageTableFormat::kFormatA, &mem);
  MmuFault fault;
  for (int i = 0; i < 4; ++i) {
    auto t = walker.Translate(builder.root_pa(),
                              0x10000000 + i * kPageSize, nullptr, &fault);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->pa, pa + i * kPageSize);
    EXPECT_TRUE(t->flags.execute);
  }
}

TEST(Mmu, BuilderTracksTablePagesAndReleases) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(PageTableFormat::kFormatA, &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  uint64_t before = alloc.free_pages();
  uint64_t pa = alloc.AllocPage().value();
  ASSERT_TRUE(builder.MapPage(0x10000000, pa, {true, false, false}).ok());
  // Root + L1 + L2 = 3 table pages.
  EXPECT_EQ(builder.table_pages().size(), 3u);
  ASSERT_TRUE(builder.Release().ok());
  // Release returns all 3 table pages (incl. the root allocated before the
  // checkpoint); only the data page remains allocated.
  EXPECT_EQ(alloc.free_pages(), before);
}

TEST(Mmu, UnalignedMapRejected) {
  PhysicalMemory mem(kBase, kSize);
  PageAllocator alloc(kBase, kSize);
  PageTableBuilder builder(PageTableFormat::kFormatA, &mem, &alloc);
  ASSERT_TRUE(builder.Init().ok());
  EXPECT_FALSE(builder.MapPage(0x10000001, kBase, {true, false, false}).ok());
  EXPECT_FALSE(builder.MapPage(0x10000000, kBase + 7, {true, false, false})
                   .ok());
}

}  // namespace
}  // namespace grt
