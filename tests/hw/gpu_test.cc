// MaliGpu device-model tests: reset protocol, power-domain state machines
// (including transition cancellation), cache flush + erratum, address
// spaces, job lifecycle, IRQ lines, and nondeterministic registers.
#include <gtest/gtest.h>

#include "src/hw/gpu.h"

namespace grt {
namespace {

constexpr uint64_t kBase = 0x80000000ull;
constexpr uint64_t kSize = 16 << 20;

class GpuTest : public ::testing::Test {
 protected:
  GpuTest()
      : sku_(FindSku(SkuId::kMaliG71Mp8).value()),
        mem_(kBase, kSize),
        tl_("client"),
        gpu_(sku_, &mem_, &tl_, 7) {}

  uint32_t Read(uint32_t reg) { return gpu_.ReadRegister(reg).value(); }
  void Write(uint32_t reg, uint32_t v) {
    ASSERT_TRUE(gpu_.WriteRegister(reg, v).ok());
  }

  GpuSku sku_;
  PhysicalMemory mem_;
  Timeline tl_;
  MaliGpu gpu_;
};

TEST_F(GpuTest, DiscoveryRegistersMatchSku) {
  EXPECT_EQ(Read(kRegGpuId), sku_.gpu_id_reg);
  EXPECT_EQ(Read(kRegShaderPresentLo), sku_.shader_present);
  EXPECT_EQ(Read(kRegShaderPresentHi), 0u);
  EXPECT_EQ(Read(kRegMmuFeatures), sku_.mmu_features);
  EXPECT_EQ(Read(kRegAsPresent), (1u << sku_.as_count) - 1);
  EXPECT_EQ(Read(kRegThreadMaxThreads), sku_.thread_max);
}

TEST_F(GpuTest, BadOffsetsRejected) {
  EXPECT_FALSE(gpu_.ReadRegister(kGpuMmioSize).ok());
  EXPECT_FALSE(gpu_.ReadRegister(0x101).ok());  // unaligned
  EXPECT_FALSE(gpu_.WriteRegister(kGpuMmioSize + 4, 0).ok());
}

TEST_F(GpuTest, SoftResetRaisesCompletionAfterLatency) {
  Write(kRegGpuCommand, kGpuCommandSoftReset);
  EXPECT_EQ(Read(kRegGpuIrqRawstat) & kGpuIrqResetCompleted, 0u);
  EXPECT_NE(gpu_.NextEventTime(), kNoEvent);
  tl_.Advance(200 * kMicrosecond);
  EXPECT_NE(Read(kRegGpuIrqRawstat) & kGpuIrqResetCompleted, 0u);
  // Write-to-clear.
  Write(kRegGpuIrqClear, kGpuIrqResetCompleted);
  EXPECT_EQ(Read(kRegGpuIrqRawstat) & kGpuIrqResetCompleted, 0u);
}

TEST_F(GpuTest, PowerOnTransitionsThenReady) {
  Write(kRegShaderPwrOnLo, sku_.shader_present);
  EXPECT_EQ(Read(kRegShaderPwrTransLo), sku_.shader_present);
  EXPECT_EQ(Read(kRegShaderReadyLo), 0u);
  tl_.Advance(100 * kMicrosecond);
  EXPECT_EQ(Read(kRegShaderPwrTransLo), 0u);
  EXPECT_EQ(Read(kRegShaderReadyLo), sku_.shader_present);
  EXPECT_NE(Read(kRegGpuIrqRawstat) & kGpuIrqPowerChangedAll, 0u);
}

TEST_F(GpuTest, PowerOffAfterOn) {
  Write(kRegShaderPwrOnLo, sku_.shader_present);
  tl_.Advance(100 * kMicrosecond);
  Write(kRegShaderPwrOffLo, sku_.shader_present);
  tl_.Advance(100 * kMicrosecond);
  EXPECT_EQ(Read(kRegShaderReadyLo), 0u);
}

TEST_F(GpuTest, PowerOnCancelsInflightPowerOff) {
  Write(kRegShaderPwrOnLo, sku_.shader_present);
  tl_.Advance(100 * kMicrosecond);
  // Kick off power-off, then immediately re-power before it completes.
  Write(kRegShaderPwrOffLo, sku_.shader_present);
  Write(kRegShaderPwrOnLo, sku_.shader_present);
  // Cores never dropped: still ready, no transition pending.
  EXPECT_EQ(Read(kRegShaderReadyLo), sku_.shader_present);
  EXPECT_EQ(Read(kRegShaderPwrTransLo), 0u);
  tl_.Advance(200 * kMicrosecond);
  EXPECT_EQ(Read(kRegShaderReadyLo), sku_.shader_present);
}

TEST_F(GpuTest, CacheFlushCompletesAndCountsNondeterministically) {
  uint32_t flush0 = Read(kRegLatestFlush);
  Write(kRegGpuCommand, kGpuCommandCleanInvCaches);
  EXPECT_EQ(Read(kRegGpuStatus) & 1u, 1u);  // flush active
  tl_.Advance(kMillisecond);
  EXPECT_EQ(Read(kRegGpuStatus) & 1u, 0u);
  EXPECT_NE(Read(kRegGpuIrqRawstat) & kGpuIrqCleanCachesCompleted, 0u);
  EXPECT_EQ(Read(kRegLatestFlush), flush0 + 1);

  // LATEST_FLUSH base varies with the nondeterminism seed (§7.3).
  MaliGpu other(sku_, &mem_, &tl_, /*nondet_seed=*/999);
  EXPECT_NE(other.ReadRegister(kRegLatestFlush).value(), flush0);
}

TEST_F(GpuTest, SlowFlushQuirkHonorsWorkaround) {
  // MP8 carries kQuirkSlowCacheFlush: without the SHADER_CONFIG bit the
  // flush takes ~120us; with it, ~25us.
  Write(kRegGpuCommand, kGpuCommandCleanInvCaches);
  tl_.Advance(50 * kMicrosecond);
  EXPECT_EQ(Read(kRegGpuIrqRawstat) & kGpuIrqCleanCachesCompleted, 0u);
  tl_.Advance(100 * kMicrosecond);
  EXPECT_NE(Read(kRegGpuIrqRawstat) & kGpuIrqCleanCachesCompleted, 0u);
  Write(kRegGpuIrqClear, 0xFFFFFFFF);

  Write(kRegShaderConfig, kShaderConfigLsAllowAttrTypes);
  Write(kRegGpuCommand, kGpuCommandCleanInvCaches);
  tl_.Advance(50 * kMicrosecond);
  EXPECT_NE(Read(kRegGpuIrqRawstat) & kGpuIrqCleanCachesCompleted, 0u);
}

TEST_F(GpuTest, AsUpdateLatchesRootAndGoesIdle) {
  Write(kAsBase + kAsTranstabLo, 0x80004000);
  Write(kAsBase + kAsTranstabHi, 0);
  Write(kAsBase + kAsCommand, kAsCommandUpdate);
  EXPECT_EQ(Read(kAsBase + kAsStatus) & kAsStatusActive, kAsStatusActive);
  tl_.Advance(100 * kMicrosecond);
  EXPECT_EQ(Read(kAsBase + kAsStatus) & kAsStatusActive, 0u);
}

TEST_F(GpuTest, IrqMaskGatesStatusAndLines) {
  Write(kRegGpuCommand, kGpuCommandSoftReset);
  tl_.Advance(kMillisecond);
  // Raw status set, but masked: no line, no status.
  EXPECT_NE(Read(kRegGpuIrqRawstat) & kGpuIrqResetCompleted, 0u);
  EXPECT_EQ(Read(kRegGpuIrqStatus), 0u);
  EXPECT_FALSE(gpu_.GpuIrqAsserted());
  Write(kRegGpuIrqMask, kGpuIrqResetCompleted);
  EXPECT_NE(Read(kRegGpuIrqStatus) & kGpuIrqResetCompleted, 0u);
  EXPECT_TRUE(gpu_.GpuIrqAsserted());
}

TEST_F(GpuTest, JobWithoutPowerFails) {
  Write(kRegJobIrqMask, 0xFFFFFFFF);
  Write(kJobSlotBase + kJsHeadNextLo, 0x10000000);
  Write(kJobSlotBase + kJsAffinityNextLo, sku_.shader_present);
  Write(kJobSlotBase + kJsCommandNext, kJsCommandStart);
  tl_.Advance(kMillisecond);
  EXPECT_NE(Read(kRegJobIrqRawstat) & JobIrqFailBit(0), 0u);
  EXPECT_EQ(Read(kJobSlotBase + kJsStatus), kJsStatusFaulted);
}

TEST_F(GpuTest, JobIrqAckReturnsSlotToIdle) {
  Write(kRegJobIrqMask, 0xFFFFFFFF);
  Write(kJobSlotBase + kJsHeadNextLo, 0x10000000);
  Write(kJobSlotBase + kJsAffinityNextLo, sku_.shader_present);
  Write(kJobSlotBase + kJsCommandNext, kJsCommandStart);
  tl_.Advance(kMillisecond);
  Write(kRegJobIrqClear, JobIrqFailBit(0) | JobIrqDoneBit(0));
  EXPECT_EQ(Read(kJobSlotBase + kJsStatus), kJsStatusIdle);
  EXPECT_EQ(Read(kRegJobIrqRawstat), 0u);
}

TEST_F(GpuTest, TimestampTracksVirtualTime) {
  uint32_t t0 = Read(kRegTimestampLo);
  tl_.Advance(kMillisecond);
  uint32_t t1 = Read(kRegTimestampLo);
  EXPECT_GT(t1, t0);
}

TEST_F(GpuTest, NondeterministicRegisterClassification) {
  EXPECT_TRUE(IsNondeterministicRegister(kRegLatestFlush));
  EXPECT_TRUE(IsNondeterministicRegister(kRegTimestampLo));
  EXPECT_TRUE(IsNondeterministicRegister(kRegCycleCountHi));
  EXPECT_FALSE(IsNondeterministicRegister(kRegGpuId));
  EXPECT_FALSE(IsNondeterministicRegister(kRegShaderReadyLo));
  EXPECT_FALSE(IsNondeterministicRegister(kRegJobIrqRawstat));
}

TEST_F(GpuTest, RegisterNamesAreStable) {
  EXPECT_STREQ(RegisterName(kRegGpuId), "GPU_ID");
  EXPECT_STREQ(RegisterName(kRegLatestFlush), "LATEST_FLUSH");
  EXPECT_STREQ(RegisterName(kJobSlotBase + kJsCommandNext),
               "JS0_COMMAND_NEXT");
  EXPECT_STREQ(RegisterName(kAsBase + kAsStride + kAsStatus), "AS1_STATUS");
}

TEST_F(GpuTest, HardResetScrubsEverything) {
  Write(kRegShaderPwrOnLo, sku_.shader_present);
  Write(kRegJobIrqMask, 0xFFFFFFFF);
  tl_.Advance(kMillisecond);
  gpu_.HardReset();
  EXPECT_EQ(Read(kRegShaderReadyLo), 0u);
  EXPECT_EQ(Read(kRegJobIrqMask), 0u);
  EXPECT_EQ(Read(kRegGpuIrqRawstat), 0u);
  EXPECT_EQ(gpu_.NextEventTime(), kNoEvent);
  EXPECT_FALSE(gpu_.AnyCoresPowered());
}

}  // namespace
}  // namespace grt
