// Property tests for the range coder, zero-RLE, and XOR delta codecs —
// the compression pipeline behind §5's memory synchronization.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/compress/delta.h"
#include "src/compress/range_coder.h"

namespace grt {
namespace {

Bytes RandomBytes(Rng* rng, size_t n, double density) {
  Bytes out(n, 0);
  for (auto& b : out) {
    if (rng->NextBool(density)) {
      b = static_cast<uint8_t>(rng->NextU32());
    }
  }
  return out;
}

// ---- Range coder ----------------------------------------------------------

struct CodecCase {
  size_t size;
  double density;
  uint64_t seed;
};

class RangeCoderProperty : public ::testing::TestWithParam<CodecCase> {};

TEST_P(RangeCoderProperty, RoundTrips) {
  Rng rng(GetParam().seed);
  Bytes input = RandomBytes(&rng, GetParam().size, GetParam().density);
  Bytes encoded = RangeEncode(input);
  auto decoded = RangeDecode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeCoderProperty,
    ::testing::Values(CodecCase{0, 0.0, 1}, CodecCase{1, 1.0, 2},
                      CodecCase{100, 0.0, 3}, CodecCase{4096, 0.01, 4},
                      CodecCase{4096, 0.5, 5}, CodecCase{4096, 1.0, 6},
                      CodecCase{70000, 0.05, 7}, CodecCase{257, 0.9, 8}));

TEST(RangeCoder, SparseInputCompressesWell) {
  Rng rng(11);
  Bytes sparse = RandomBytes(&rng, 4096, 0.01);
  Bytes encoded = RangeEncode(sparse);
  EXPECT_LT(encoded.size(), sparse.size() / 4);
}

TEST(RangeCoder, AllSameByteCompressesExtremely) {
  Bytes input(4096, 0x7F);
  Bytes encoded = RangeEncode(input);
  EXPECT_LT(encoded.size(), 200u);
  EXPECT_EQ(RangeDecode(encoded).value(), input);
}

TEST(RangeCoder, TruncatedInputFails) {
  Bytes encoded = RangeEncode(Bytes(128, 0xAA));
  encoded.resize(4);  // destroy the frame
  EXPECT_FALSE(RangeDecode(encoded).ok());
}

// ---- Zero RLE -------------------------------------------------------------

class ZeroRleProperty : public ::testing::TestWithParam<CodecCase> {};

TEST_P(ZeroRleProperty, RoundTrips) {
  Rng rng(GetParam().seed);
  Bytes input = RandomBytes(&rng, GetParam().size, GetParam().density);
  auto decoded = ZeroRleDecode(ZeroRleEncode(input));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZeroRleProperty,
    ::testing::Values(CodecCase{0, 0.0, 1}, CodecCase{1, 0.0, 2},
                      CodecCase{1, 1.0, 3}, CodecCase{4096, 0.005, 4},
                      CodecCase{4096, 0.3, 5}, CodecCase{9000, 0.98, 6}));

TEST(ZeroRle, MostlyZerosShrink) {
  Bytes input(4096, 0);
  input[100] = 1;
  input[3000] = 2;
  Bytes encoded = ZeroRleEncode(input);
  EXPECT_LT(encoded.size(), 64u);
}

TEST(ZeroRle, BadTagRejected) {
  ByteWriter w;
  w.PutU32(10);
  w.PutU8(0x77);  // invalid tag
  w.PutU32(10);
  EXPECT_FALSE(ZeroRleDecode(w.Take()).ok());
}

TEST(ZeroRle, OverflowingRunRejected) {
  ByteWriter w;
  w.PutU32(4);   // total = 4
  w.PutU8(0x00);
  w.PutU32(10);  // but a 10-byte zero run
  EXPECT_FALSE(ZeroRleDecode(w.Take()).ok());
}

// ---- XOR delta ------------------------------------------------------------

class DeltaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaProperty, ApplyInvertsDelta) {
  Rng rng(GetParam());
  Bytes base = RandomBytes(&rng, 4096, 0.5);
  Bytes next = base;
  // Mutate a few random bytes.
  for (int i = 0; i < 20; ++i) {
    next[rng.NextBelow(next.size())] ^= static_cast<uint8_t>(rng.NextU32());
  }
  Bytes delta = XorDelta(base, next);
  EXPECT_EQ(ApplyXorDelta(base, delta), next);
  // Identical buffers produce an all-zero delta.
  EXPECT_GT(ZeroFraction(XorDelta(next, next)), 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Delta, SizeMismatchHandled) {
  Bytes small = {1, 2, 3};
  Bytes big = {1, 2, 3, 4, 5};
  Bytes delta = XorDelta(small, big);
  EXPECT_EQ(delta.size(), 5u);
  EXPECT_EQ(ApplyXorDelta(small, delta), big);
}

TEST(Delta, ZeroFractionEdgeCases) {
  EXPECT_DOUBLE_EQ(ZeroFraction({}), 1.0);
  EXPECT_DOUBLE_EQ(ZeroFraction({0, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(ZeroFraction({1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(ZeroFraction({0, 1}), 0.5);
}

// ---- Full sync pipeline (delta -> RLE -> range coder) ----------------------

TEST(Pipeline, PageDeltaPipelineRoundTrips) {
  Rng rng(77);
  Bytes base = RandomBytes(&rng, 4096, 0.4);
  Bytes next = base;
  next[17] ^= 0xFF;
  next[2900] ^= 0x01;
  Bytes wire = RangeEncode(ZeroRleEncode(XorDelta(base, next)));
  EXPECT_LT(wire.size(), 120u);  // two changed bytes cost almost nothing
  Bytes recovered = ApplyXorDelta(
      base, ZeroRleDecode(RangeDecode(wire).value()).value());
  EXPECT_EQ(recovered, next);
}

}  // namespace
}  // namespace grt
