// Interaction-log diff tests (§3.4 remote debugging), including the
// end-to-end malfunction-localization scenario.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/record/diff.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

LogEntry Read(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegRead;
  e.reg = reg;
  e.value = value;
  return e;
}

LogEntry Write(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = reg;
  e.value = value;
  return e;
}

TEST(LogDiff, IdenticalLogsMatch) {
  InteractionLog a;
  a.Add(Write(kRegGpuIrqMask, 1));
  a.Add(Read(kRegGpuId, 42));
  LogDiff diff = CompareInteractionLogs(a, a);
  EXPECT_TRUE(diff.identical);
  EXPECT_EQ(diff.entries_compared, 2u);
  EXPECT_EQ(diff.value_mismatches, 0u);
}

TEST(LogDiff, ValueDeviationLocalized) {
  InteractionLog expected, observed;
  expected.Add(Write(kRegGpuIrqMask, 1));
  observed.Add(Write(kRegGpuIrqMask, 1));
  expected.Add(Read(kRegShaderReadyLo, 0xFF));
  observed.Add(Read(kRegShaderReadyLo, 0x0F));  // half the cores missing
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergence, 1u);
  EXPECT_EQ(diff.value_mismatches, 1u);
  EXPECT_EQ(diff.structure_mismatches, 0u);
  EXPECT_NE(diff.description.find("SHADER_READY_LO"), std::string::npos);
}

TEST(LogDiff, NondeterministicValuesIgnoredByDefault) {
  InteractionLog expected, observed;
  expected.Add(Read(kRegLatestFlush, 100));
  observed.Add(Read(kRegLatestFlush, 999));
  EXPECT_TRUE(CompareInteractionLogs(expected, observed).identical);
  LogDiffOptions strict;
  strict.ignore_nondeterministic_values = false;
  EXPECT_FALSE(CompareInteractionLogs(expected, observed, strict).identical);
}

TEST(LogDiff, StructuralDeviationDetected) {
  InteractionLog expected, observed;
  expected.Add(Read(kRegGpuId, 1));
  observed.Add(Write(kRegGpuId, 1));  // kind differs
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.structure_mismatches, 1u);
}

TEST(LogDiff, LengthMismatchDetected) {
  InteractionLog expected, observed;
  expected.Add(Read(kRegGpuId, 1));
  expected.Add(Read(kRegGpuId, 1));
  observed.Add(Read(kRegGpuId, 1));
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_NE(diff.description.find("lengths"), std::string::npos);
}

TEST(LogDiff, PageIdentityIsStructuralContentIsValue) {
  LogEntry page;
  page.op = LogOp::kMemPage;
  page.pa = 0x1000;
  page.metastate = false;
  page.data.assign(64, 0xAB);

  // Same identity, different bytes: a value mismatch, suppressible.
  InteractionLog expected, observed;
  expected.Add(page);
  LogEntry altered = page;
  altered.data[3] ^= 0xFF;
  observed.Add(altered);
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.value_mismatches, 1u);
  EXPECT_EQ(diff.structure_mismatches, 0u);
  EXPECT_NE(diff.description.find("content"), std::string::npos);

  LogDiffOptions loose;
  loose.ignore_page_contents = true;
  EXPECT_TRUE(CompareInteractionLogs(expected, observed, loose).identical);

  // Different physical address: structural, and never suppressible.
  LogEntry moved = page;
  moved.pa = 0x2000;
  InteractionLog relocated;
  relocated.Add(moved);
  diff = CompareInteractionLogs(expected, relocated, loose);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.structure_mismatches, 1u);
  EXPECT_NE(diff.description.find("identity"), std::string::npos);
}

TEST(LogDiff, PollShapeIsStructural) {
  LogEntry poll;
  poll.op = LogOp::kPollWait;
  poll.reg = kRegGpuIrqRawstat;
  poll.mask = 0x100;
  poll.expected = 0x100;
  InteractionLog expected, observed;
  expected.Add(poll);
  poll.mask = 0x300;  // widened mask — a different wait condition entirely
  observed.Add(poll);
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.structure_mismatches, 1u);
  EXPECT_NE(diff.description.find("IRQ_RAWSTAT"), std::string::npos);
}

TEST(LogDiff, DelayAndIrqDeviationsAreValueMismatches) {
  LogEntry delay;
  delay.op = LogOp::kDelay;
  delay.delay = 100;
  LogEntry irq;
  irq.op = LogOp::kIrqWait;
  irq.irq_lines = 0x1;
  InteractionLog expected, observed;
  expected.Add(delay);
  expected.Add(irq);
  delay.delay = 400;  // e.g. a coalesced-delay run folded into one entry
  irq.irq_lines = 0x2;
  observed.Add(delay);
  observed.Add(irq);
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergence, 0u);
  EXPECT_EQ(diff.value_mismatches, 2u);
  EXPECT_EQ(diff.structure_mismatches, 0u);
}

TEST(LogDiff, CountsEveryMismatchNotJustTheFirst) {
  InteractionLog expected, observed;
  for (uint32_t v = 0; v < 4; ++v) {
    expected.Add(Write(kRegGpuIrqMask, v));
    observed.Add(Write(kRegGpuIrqMask, v + 10));
  }
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergence, 0u);
  EXPECT_EQ(diff.value_mismatches, 4u);
  EXPECT_EQ(diff.entries_compared, 4u);
}

TEST(LogDiff, OptimizedLogDivergesStructurallyFromOriginal) {
  // An optimized recording is a different interaction sequence: the diff
  // tool reports it as structural drift rather than silently matching —
  // remote debugging must compare like with like.
  InteractionLog original, optimized;
  original.Add(Write(kRegShaderConfig, 7));
  original.Add(Write(kRegShaderConfig, 7));  // duplicate the optimizer drops
  original.Add(Read(kRegGpuId, 42));
  optimized.Add(Write(kRegShaderConfig, 7));
  optimized.Add(Read(kRegGpuId, 42));
  LogDiff diff = CompareInteractionLogs(original, optimized);
  EXPECT_FALSE(diff.identical);
  EXPECT_GE(diff.structure_mismatches + diff.value_mismatches, 1u);
  EXPECT_EQ(diff.first_divergence, 1u);
}

TEST(LogDiff, RemoteDebuggingLocalizesInjectedFault) {
  // End to end: record, then replay on a device whose JS0_STATUS register
  // is corrupted — the diff pinpoints the register (§3.4).
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 113);
  SpeculationHistory history;
  auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                            &history, 1);
  ASSERT_TRUE(m.ok());
  auto recording =
      Recording::ParseSigned(m->signed_recording, m->session_key);
  ASSERT_TRUE(recording.ok());

  auto observe = [&]() -> Result<InteractionLog> {
    ReplayConfig config;
    config.verify_reads = false;
    config.collect_observed = true;
    Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                      &device.timeline(), config);
    GRT_RETURN_IF_ERROR(replayer.Load(*recording));
    GRT_ASSIGN_OR_RETURN(ReplayReport r, replayer.Replay());
    (void)r;
    return replayer.observed_log();
  };

  auto healthy = observe();
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(CompareInteractionLogs(recording->log, *healthy).identical);

  device.gpu().InjectRegisterFault(kJobSlotBase + kJsStatus, 0x2);
  auto faulty = observe();
  device.gpu().ClearRegisterFault();
  ASSERT_TRUE(faulty.ok());
  LogDiff diff = CompareInteractionLogs(recording->log, *faulty);
  EXPECT_FALSE(diff.identical);
  EXPECT_NE(diff.description.find("JS0_STATUS"), std::string::npos);
  EXPECT_GT(diff.value_mismatches, 0u);
  EXPECT_EQ(diff.structure_mismatches, 0u);
}

}  // namespace
}  // namespace grt
