// Interaction-log diff tests (§3.4 remote debugging), including the
// end-to-end malfunction-localization scenario.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/record/diff.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

LogEntry Read(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegRead;
  e.reg = reg;
  e.value = value;
  return e;
}

LogEntry Write(uint32_t reg, uint32_t value) {
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = reg;
  e.value = value;
  return e;
}

TEST(LogDiff, IdenticalLogsMatch) {
  InteractionLog a;
  a.Add(Write(kRegGpuIrqMask, 1));
  a.Add(Read(kRegGpuId, 42));
  LogDiff diff = CompareInteractionLogs(a, a);
  EXPECT_TRUE(diff.identical);
  EXPECT_EQ(diff.entries_compared, 2u);
  EXPECT_EQ(diff.value_mismatches, 0u);
}

TEST(LogDiff, ValueDeviationLocalized) {
  InteractionLog expected, observed;
  expected.Add(Write(kRegGpuIrqMask, 1));
  observed.Add(Write(kRegGpuIrqMask, 1));
  expected.Add(Read(kRegShaderReadyLo, 0xFF));
  observed.Add(Read(kRegShaderReadyLo, 0x0F));  // half the cores missing
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergence, 1u);
  EXPECT_EQ(diff.value_mismatches, 1u);
  EXPECT_EQ(diff.structure_mismatches, 0u);
  EXPECT_NE(diff.description.find("SHADER_READY_LO"), std::string::npos);
}

TEST(LogDiff, NondeterministicValuesIgnoredByDefault) {
  InteractionLog expected, observed;
  expected.Add(Read(kRegLatestFlush, 100));
  observed.Add(Read(kRegLatestFlush, 999));
  EXPECT_TRUE(CompareInteractionLogs(expected, observed).identical);
  LogDiffOptions strict;
  strict.ignore_nondeterministic_values = false;
  EXPECT_FALSE(CompareInteractionLogs(expected, observed, strict).identical);
}

TEST(LogDiff, StructuralDeviationDetected) {
  InteractionLog expected, observed;
  expected.Add(Read(kRegGpuId, 1));
  observed.Add(Write(kRegGpuId, 1));  // kind differs
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.structure_mismatches, 1u);
}

TEST(LogDiff, LengthMismatchDetected) {
  InteractionLog expected, observed;
  expected.Add(Read(kRegGpuId, 1));
  expected.Add(Read(kRegGpuId, 1));
  observed.Add(Read(kRegGpuId, 1));
  LogDiff diff = CompareInteractionLogs(expected, observed);
  EXPECT_FALSE(diff.identical);
  EXPECT_NE(diff.description.find("lengths"), std::string::npos);
}

TEST(LogDiff, RemoteDebuggingLocalizesInjectedFault) {
  // End to end: record, then replay on a device whose JS0_STATUS register
  // is corrupted — the diff pinpoints the register (§3.4).
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 113);
  SpeculationHistory history;
  auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                            &history, 1);
  ASSERT_TRUE(m.ok());
  auto recording =
      Recording::ParseSigned(m->signed_recording, m->session_key);
  ASSERT_TRUE(recording.ok());

  auto observe = [&]() -> Result<InteractionLog> {
    ReplayConfig config;
    config.verify_reads = false;
    config.collect_observed = true;
    Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                      &device.timeline(), config);
    GRT_RETURN_IF_ERROR(replayer.Load(*recording));
    GRT_ASSIGN_OR_RETURN(ReplayReport r, replayer.Replay());
    (void)r;
    return replayer.observed_log();
  };

  auto healthy = observe();
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(CompareInteractionLogs(recording->log, *healthy).identical);

  device.gpu().InjectRegisterFault(kJobSlotBase + kJsStatus, 0x2);
  auto faulty = observe();
  device.gpu().ClearRegisterFault();
  ASSERT_TRUE(faulty.ok());
  LogDiff diff = CompareInteractionLogs(recording->log, *faulty);
  EXPECT_FALSE(diff.identical);
  EXPECT_NE(diff.description.find("JS0_STATUS"), std::string::npos);
  EXPECT_GT(diff.value_mismatches, 0u);
  EXPECT_EQ(diff.structure_mismatches, 0u);
}

}  // namespace
}  // namespace grt
