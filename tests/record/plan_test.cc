// Unit tests for replay-plan compilation (src/record/plan.h) and the
// plan path's dirty-page tracking. Compilation tests exercise the lowering
// rules on hand-built logs; the dirty-page tests replay a synthetic
// memory-only recording on a real rig and check the three invariants the
// design argues for (DESIGN.md §6d): a clobbered page is re-applied, a
// clean page is skipped, and staged tensors are always re-injected.
#include <gtest/gtest.h>

#include <cstring>

#include "src/harness/rig.h"
#include "src/hw/regs.h"
#include "src/record/plan.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

Bytes PageOf(uint8_t fill) { return Bytes(kPageSize, fill); }

LogEntry PageEntry(uint64_t pa, uint8_t fill, bool metastate = false) {
  LogEntry e;
  e.op = LogOp::kMemPage;
  e.pa = pa;
  e.metastate = metastate;
  e.data = PageOf(fill);
  return e;
}

LogEntry JobStartEntry() {
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = kJobSlotBase + kJsCommandNext;
  e.value = kJsCommandStart;
  return e;
}

Recording MakeRecording(std::vector<LogEntry> entries) {
  Recording rec;
  rec.header.workload = "plan-unit";
  rec.header.sku = SkuId::kMaliG71Mp8;
  rec.header.record_nonce = 1;
  rec.log = InteractionLog::FromEntries(std::move(entries));
  return rec;
}

constexpr uint64_t kBase = kCarveoutBase;

TEST(PlanCompile, CoalescesContiguousPagesIntoRuns) {
  Recording rec = MakeRecording({
      PageEntry(kBase + 2 * kPageSize, 3),
      PageEntry(kBase, 1),
      PageEntry(kBase + kPageSize, 2),
      PageEntry(kBase + 10 * kPageSize, 9),  // gap: second run
  });
  ReplayPlan plan = CompileReplayPlan(rec);
  ASSERT_EQ(plan.regions.size(), 2u);
  EXPECT_EQ(plan.regions[0].base_pa, kBase);
  EXPECT_EQ(plan.regions[0].n_pages, 3u);
  EXPECT_EQ(plan.regions[1].base_pa, kBase + 10 * kPageSize);
  EXPECT_EQ(plan.regions[1].n_pages, 1u);
  EXPECT_EQ(plan.image_pages, 4u);
  EXPECT_EQ(plan.image_bytes, 4 * kPageSize);
  // Entry order does not matter: runs are ascending and content lands at
  // the right page offset within the run.
  EXPECT_EQ(plan.regions[0].image[0], 1);
  EXPECT_EQ(plan.regions[0].image[kPageSize], 2);
  EXPECT_EQ(plan.regions[0].image[2 * kPageSize], 3);
  // All ops were absorbed into the initial image.
  EXPECT_TRUE(plan.ops.empty());
}

TEST(PlanCompile, RepeatSnapshotLastWriteWins) {
  Recording rec = MakeRecording({
      PageEntry(kBase, 1),
      PageEntry(kBase, 7),  // re-snapshot of the same page
  });
  ReplayPlan plan = CompileReplayPlan(rec);
  ASSERT_EQ(plan.regions.size(), 1u);
  EXPECT_EQ(plan.image_pages, 1u);
  EXPECT_EQ(plan.duplicate_pages, 1u);
  EXPECT_EQ(plan.regions[0].image[0], 7);
}

TEST(PlanCompile, PostJobStartDataPagesDroppedMetastateKept) {
  Recording rec = MakeRecording({
      PageEntry(kBase, 1),
      JobStartEntry(),
      PageEntry(kBase + kPageSize, 2, /*metastate=*/false),  // dropped
      PageEntry(kBase + 2 * kPageSize, 3, /*metastate=*/true),  // kept
  });
  ReplayPlan plan = CompileReplayPlan(rec);
  EXPECT_EQ(plan.image_pages, 1u);
  EXPECT_EQ(plan.dropped_pages, 1u);
  ASSERT_EQ(plan.mid_images.size(), 1u);
  EXPECT_EQ(plan.mid_images[0].pa, kBase + 2 * kPageSize);
  // Ops: the job-start write, then the metastate reapplication, in order.
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_EQ(plan.ops[0].kind, LogOp::kRegWrite);
  EXPECT_EQ(plan.ops[1].kind, LogOp::kMemPage);
  EXPECT_EQ(plan.ops[1].image, 0u);
}

TEST(PlanCompile, RegReadVerifyDecisionResolvedAtCompileTime) {
  LogEntry det;
  det.op = LogOp::kRegRead;
  det.reg = kJobSlotBase + kJsStatus;
  det.value = 0;
  LogEntry nondet;
  nondet.op = LogOp::kRegRead;
  nondet.reg = kRegCycleCountLo;
  nondet.value = 1234;
  ASSERT_FALSE(IsNondeterministicRegister(det.reg));
  ASSERT_TRUE(IsNondeterministicRegister(nondet.reg));

  ReplayPlan plan = CompileReplayPlan(MakeRecording({det, nondet}));
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_TRUE(plan.ops[0].verify);
  EXPECT_FALSE(plan.ops[1].verify);
}

TEST(PlanCompile, PatchTableMirrorsBindingPageWalk) {
  Recording rec = MakeRecording({PageEntry(kBase, 0)});
  TensorBinding in;
  in.n_floats = (2 * kPageSize + 512) / sizeof(float);  // 2.5 pages
  in.pages = {kBase, kBase + 4 * kPageSize, kBase + kPageSize};
  in.writable_at_replay = true;
  rec.bindings["in"] = in;
  TensorBinding truncated;
  truncated.n_floats = kPageSize;  // needs 4 pages, only 1 listed
  truncated.pages = {kBase};
  truncated.writable_at_replay = true;
  rec.bindings["short"] = truncated;

  ReplayPlan plan = CompileReplayPlan(rec);
  ASSERT_EQ(plan.patches.size(), 2u);
  const TensorPatch& patch = plan.patches.at("in");
  EXPECT_TRUE(patch.complete);
  EXPECT_TRUE(patch.writable);
  ASSERT_EQ(patch.chunks.size(), 3u);
  // Chunks follow the binding's page list order, not ascending pa.
  EXPECT_EQ(patch.chunks[0].pa, kBase);
  EXPECT_EQ(patch.chunks[0].src_offset, 0u);
  EXPECT_EQ(patch.chunks[0].len, kPageSize);
  EXPECT_EQ(patch.chunks[1].pa, kBase + 4 * kPageSize);
  EXPECT_EQ(patch.chunks[1].src_offset, kPageSize);
  EXPECT_EQ(patch.chunks[2].len, 512u);
  EXPECT_FALSE(plan.patches.at("short").complete);
}

TEST(PlanCompile, JobStartPredicateShape) {
  EXPECT_TRUE(IsReplayJobStart(JobStartEntry()));
  LogEntry second_slot = JobStartEntry();
  second_slot.reg = kJobSlotBase + kJobSlotStride + kJsCommandNext;
  EXPECT_TRUE(IsReplayJobStart(second_slot));
  LogEntry wrong_value = JobStartEntry();
  wrong_value.value = kJsCommandNop;
  EXPECT_FALSE(IsReplayJobStart(wrong_value));
  LogEntry wrong_reg = JobStartEntry();
  wrong_reg.reg = kJobSlotBase + kJsStatus;
  EXPECT_FALSE(IsReplayJobStart(wrong_reg));
  LogEntry read = JobStartEntry();
  read.op = LogOp::kRegRead;
  EXPECT_FALSE(IsReplayJobStart(read));
}

// ---------------------------------------------------------------- dirty
// Dirty-page tracking, on a synthetic recording of pure memory images (no
// register stimuli, so replay is exactly "establish the image"). The
// recording skips the static verifier: it is a trusted hand-built log.

class DirtyTrackingTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kPageA = kBase;
  static constexpr uint64_t kPageB = kBase + kPageSize;
  static constexpr uint64_t kPageIn = kBase + 2 * kPageSize;
  static constexpr uint64_t kPageOut = kBase + 3 * kPageSize;
  static constexpr uint64_t kNFloats = kPageSize / sizeof(float);

  Recording MakeMemoryRecording() {
    Recording rec = MakeRecording({
        PageEntry(kPageA, 0xAA),
        PageEntry(kPageB, 0xBB),
        PageEntry(kPageIn, 0x11),
        PageEntry(kPageOut, 0x22),
    });
    TensorBinding in;
    in.n_floats = kNFloats;
    in.pages = {kPageIn};
    in.writable_at_replay = true;
    rec.bindings["in"] = in;
    TensorBinding out;
    out.n_floats = kNFloats;
    out.pages = {kPageOut};
    out.writable_at_replay = false;
    rec.bindings["out"] = out;
    return rec;
  }

  ReplayConfig PlanConfig() {
    ReplayConfig config;
    config.static_verify = false;  // hand-built, trusted
    config.use_plan = true;
    config.dirty_tracking = true;
    return config;
  }

  uint8_t ByteAt(ClientDevice& device, uint64_t pa) {
    uint8_t b = 0;
    EXPECT_TRUE(device.mem().Read(pa, &b, 1).ok());
    return b;
  }
};

TEST_F(DirtyTrackingTest, SecondReplaySkipsCleanPages) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline(), PlanConfig());
  ASSERT_TRUE(replayer.Load(MakeMemoryRecording()).ok());

  auto cold = replayer.Replay();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->plan_used);
  EXPECT_FALSE(cold->warm);
  EXPECT_EQ(cold->pages_applied, 4u);
  EXPECT_EQ(cold->mem_bytes_applied, 4 * kPageSize);

  auto warm = replayer.Replay();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm);
  EXPECT_EQ(warm->pages_applied, 0u);
  EXPECT_EQ(warm->pages_skipped_clean, 4u);
  EXPECT_EQ(warm->mem_bytes_applied, 0u);
  // Skipping changed nothing: the pages still hold the image content.
  EXPECT_EQ(ByteAt(device, kPageA), 0xAA);
  EXPECT_EQ(ByteAt(device, kPageB), 0xBB);
}

TEST_F(DirtyTrackingTest, ClobberedPageIsReappliedCleanOnesSkipped) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline(), PlanConfig());
  ASSERT_TRUE(replayer.Load(MakeMemoryRecording()).ok());
  ASSERT_TRUE(replayer.Replay().ok());

  // An external write lands on page B between replays (debugger poke,
  // another tenant — any write the observer can see).
  uint8_t junk[16];
  std::memset(junk, 0x5C, sizeof(junk));
  ASSERT_TRUE(device.mem().Write(kPageB + 100, junk, sizeof(junk)).ok());
  ASSERT_EQ(ByteAt(device, kPageB + 100), 0x5C);

  auto warm = replayer.Replay();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm);
  EXPECT_EQ(warm->pages_applied, 1u);  // exactly the clobbered page
  EXPECT_EQ(warm->pages_skipped_clean, 3u);
  EXPECT_EQ(warm->mem_bytes_applied, kPageSize);
  // The clobbered page was restored to image content.
  EXPECT_EQ(ByteAt(device, kPageB + 100), 0xBB);
}

TEST_F(DirtyTrackingTest, StagedTensorAlwaysReinjected) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline(), PlanConfig());
  ASSERT_TRUE(replayer.Load(MakeMemoryRecording()).ok());

  std::vector<float> v1(kNFloats, 1.0f);
  ASSERT_TRUE(replayer.StageTensor("in", v1).ok());
  ASSERT_TRUE(replayer.Replay().ok());
  auto read1 = replayer.ReadTensor("in");
  ASSERT_TRUE(read1.ok());
  EXPECT_EQ((*read1)[0], 1.0f);

  // Re-staging overwrites in place and the warm replay re-injects: the
  // staged pages never ride the clean-page skip.
  std::vector<float> v2(kNFloats, 2.0f);
  ASSERT_TRUE(replayer.StageTensor("in", v2).ok());
  auto warm = replayer.Replay();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm);
  auto read2 = replayer.ReadTensor("in");
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ((*read2)[0], 2.0f);
  EXPECT_EQ((*read2)[kNFloats - 1], 2.0f);

  // Without re-staging, the resident tensor persists across a replay.
  ASSERT_TRUE(replayer.Replay().ok());
  auto read3 = replayer.ReadTensor("in");
  ASSERT_TRUE(read3.ok());
  EXPECT_EQ((*read3)[0], 2.0f);
}

TEST_F(DirtyTrackingTest, ReloadResetsDirtyState) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline(), PlanConfig());
  ASSERT_TRUE(replayer.Load(MakeMemoryRecording()).ok());
  ASSERT_TRUE(replayer.Replay().ok());

  // A fresh Load must not inherit image state: the first replay after it
  // is cold again (full application).
  ASSERT_TRUE(replayer.Load(MakeMemoryRecording()).ok());
  auto cold = replayer.Replay();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm);
  EXPECT_EQ(cold->pages_applied, 4u);
}

TEST_F(DirtyTrackingTest, DirtyTrackingOffAlwaysAppliesFully) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  ReplayConfig config = PlanConfig();
  config.dirty_tracking = false;
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline(), config);
  ASSERT_TRUE(replayer.Load(MakeMemoryRecording()).ok());
  for (int i = 0; i < 2; ++i) {
    auto report = replayer.Replay();
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->warm);
    EXPECT_EQ(report->pages_applied, 4u);
    EXPECT_EQ(report->pages_skipped_clean, 0u);
  }
}

}  // namespace
}  // namespace grt
