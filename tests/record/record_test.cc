// Record-module tests: log entry serialization (property sweep over entry
// kinds), recording container signing, and binding resolution.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/hw/regs.h"
#include "src/record/log.h"
#include "src/record/recording.h"

namespace grt {
namespace {

LogEntry RandomEntry(Rng* rng) {
  LogEntry e;
  switch (rng->NextBelow(6)) {
    case 0:
      e.op = LogOp::kRegWrite;
      e.reg = rng->NextU32() & 0x3FFC;
      e.value = rng->NextU32();
      break;
    case 1:
      e.op = LogOp::kRegRead;
      e.reg = rng->NextU32() & 0x3FFC;
      e.value = rng->NextU32();
      e.speculative = rng->NextBool();
      break;
    case 2:
      e.op = LogOp::kPollWait;
      e.reg = rng->NextU32() & 0x3FFC;
      e.mask = rng->NextU32();
      e.expected = rng->NextU32() & e.mask;
      e.value = rng->NextU32();
      break;
    case 3:
      e.op = LogOp::kDelay;
      e.delay = static_cast<Duration>(rng->NextBelow(kSecond));
      break;
    case 4:
      e.op = LogOp::kIrqWait;
      e.irq_lines = static_cast<uint8_t>(1 + rng->NextBelow(7));
      break;
    default: {
      e.op = LogOp::kMemPage;
      e.pa = 0x80000000 + rng->NextBelow(1024) * 4096;
      e.metastate = rng->NextBool();
      e.data.resize(64 + rng->NextBelow(128));
      for (auto& b : e.data) {
        b = static_cast<uint8_t>(rng->NextU32());
      }
      break;
    }
  }
  return e;
}

bool EntriesEqual(const LogEntry& a, const LogEntry& b) {
  return a.op == b.op && a.reg == b.reg && a.value == b.value &&
         a.mask == b.mask && a.expected == b.expected &&
         a.irq_lines == b.irq_lines && a.delay == b.delay && a.pa == b.pa &&
         a.metastate == b.metastate && a.speculative == b.speculative &&
         a.data == b.data;
}

class LogProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogProperty, RandomLogRoundTrips) {
  Rng rng(GetParam());
  InteractionLog log;
  for (int i = 0; i < 200; ++i) {
    log.Add(RandomEntry(&rng));
  }
  auto parsed = InteractionLog::Deserialize(log.Serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_TRUE(EntriesEqual(parsed->entries()[i], log.entries()[i]))
        << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogProperty,
                         ::testing::Values(1, 17, 99, 4242));

TEST(Log, CountsByKind) {
  InteractionLog log;
  LogEntry w;
  w.op = LogOp::kRegWrite;
  log.Add(w);
  log.Add(w);
  LogEntry r;
  r.op = LogOp::kRegRead;
  log.Add(r);
  EXPECT_EQ(log.CountOf(LogOp::kRegWrite), 2u);
  EXPECT_EQ(log.CountOf(LogOp::kRegRead), 1u);
  EXPECT_EQ(log.CountOf(LogOp::kIrqWait), 0u);
}

TEST(Log, PatchReadValue) {
  InteractionLog log;
  LogEntry r;
  r.op = LogOp::kRegRead;
  r.value = 1;
  r.speculative = true;
  log.Add(r);
  LogEntry w;
  w.op = LogOp::kRegWrite;
  log.Add(w);
  EXPECT_TRUE(log.PatchReadValue(0, 42).ok());
  EXPECT_EQ(log.entries()[0].value, 42u);
  EXPECT_FALSE(log.entries()[0].speculative);  // patching validates the read
  EXPECT_FALSE(log.PatchReadValue(1, 5).ok());  // not a read
  EXPECT_FALSE(log.PatchReadValue(9, 5).ok());  // out of range
}

// Regression: non-read entries must be rejected with a descriptive status
// (code and message identify the entry and its actual kind), not silently
// patched or met with a generic error.
TEST(Log, PatchReadValueRejectsNonReadsDescriptively) {
  InteractionLog log;
  LogEntry w;
  w.op = LogOp::kRegWrite;
  log.Add(w);
  LogEntry d;
  d.op = LogOp::kDelay;
  d.delay = 5;
  log.Add(d);

  Status not_read = log.PatchReadValue(0, 7);
  EXPECT_EQ(not_read.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(not_read.message().find("entry 0"), std::string::npos)
      << not_read.message();
  EXPECT_NE(not_read.message().find("reg-write"), std::string::npos)
      << not_read.message();

  Status not_read2 = log.PatchReadValue(1, 7);
  EXPECT_EQ(not_read2.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(not_read2.message().find("delay"), std::string::npos)
      << not_read2.message();

  Status oob = log.PatchReadValue(5, 7);
  EXPECT_EQ(oob.code(), StatusCode::kOutOfRange);
  EXPECT_NE(oob.message().find("index 5"), std::string::npos) << oob.message();
  // The log is untouched on every failure path.
  EXPECT_EQ(log.entries()[0].value, 0u);
}

TEST(Log, ConfirmReadValueClearsSpeculativeMark) {
  InteractionLog log;
  LogEntry r;
  r.op = LogOp::kRegRead;
  r.value = 9;
  r.speculative = true;
  log.Add(r);
  LogEntry w;
  w.op = LogOp::kRegWrite;
  log.Add(w);

  EXPECT_TRUE(log.ConfirmReadValue(0).ok());
  EXPECT_FALSE(log.entries()[0].speculative);
  EXPECT_EQ(log.entries()[0].value, 9u);  // value untouched, only the mark
  EXPECT_EQ(log.ConfirmReadValue(1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.ConfirmReadValue(2).code(), StatusCode::kOutOfRange);
}

TEST(Log, SpeculativeMarkRoundTrips) {
  InteractionLog log;
  LogEntry r;
  r.op = LogOp::kRegRead;
  r.reg = kRegGpuId;
  r.value = 3;
  r.speculative = true;
  log.Add(r);
  auto parsed = InteractionLog::Deserialize(log.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->entries()[0].speculative);
}

TEST(Log, CorruptTagRejected) {
  InteractionLog log;
  LogEntry w;
  w.op = LogOp::kRegWrite;
  log.Add(w);
  Bytes raw = log.Serialize();
  raw[4] = 0xEE;  // entry tag
  EXPECT_FALSE(InteractionLog::Deserialize(raw).ok());
}

Recording SampleRecording() {
  Recording rec;
  rec.header.workload = "mnist";
  rec.header.sku = SkuId::kMaliG71Mp8;
  rec.header.record_nonce = 77;
  TensorBinding b;
  b.va = 0x10000000;
  b.n_floats = 100;
  b.pages = {0x80001000, 0x80002000};
  b.writable_at_replay = true;
  rec.bindings["input"] = b;
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = kJobSlotBase + kJsCommandNext;
  e.value = 1;
  rec.log.Add(e);
  return rec;
}

TEST(Recording, SignedRoundTrip) {
  Recording rec = SampleRecording();
  Bytes key(32, 0x42);
  auto parsed = Recording::ParseSigned(rec.SerializeSigned(key), key);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.workload, "mnist");
  EXPECT_EQ(parsed->header.sku, SkuId::kMaliG71Mp8);
  EXPECT_EQ(parsed->header.record_nonce, 77u);
  ASSERT_EQ(parsed->bindings.count("input"), 1u);
  EXPECT_EQ(parsed->bindings.at("input").pages.size(), 2u);
  EXPECT_TRUE(parsed->bindings.at("input").writable_at_replay);
  EXPECT_EQ(parsed->log.size(), 1u);
}

TEST(Recording, WrongKeyRejected) {
  Recording rec = SampleRecording();
  Bytes wire = rec.SerializeSigned(Bytes(32, 1));
  EXPECT_FALSE(Recording::ParseSigned(wire, Bytes(32, 2)).ok());
}

class RecordingTamper : public ::testing::TestWithParam<size_t> {};

TEST_P(RecordingTamper, AnyFlippedByteRejected) {
  Recording rec = SampleRecording();
  Bytes key(32, 0x42);
  Bytes wire = rec.SerializeSigned(key);
  size_t pos = GetParam() % wire.size();
  wire[pos] ^= 0x80;
  auto parsed = Recording::ParseSigned(wire, key);
  EXPECT_FALSE(parsed.ok());
}

INSTANTIATE_TEST_SUITE_P(Positions, RecordingTamper,
                         ::testing::Values(6, 20, 40, 80, 120, 150));

TEST(Recording, BadMagicRejected) {
  Recording rec = SampleRecording();
  rec.header.magic = 0x12345678;
  EXPECT_FALSE(Recording::ParseUnsigned(rec.SerializeBody()).ok());
}

TEST(Recording, UnsupportedVersionRejected) {
  Recording rec = SampleRecording();
  rec.header.version = 99;
  EXPECT_FALSE(Recording::ParseUnsigned(rec.SerializeBody()).ok());
}

}  // namespace
}  // namespace grt
