// RecordingStore tests: install/verify/load, rollback protection, sealing,
// and the end-to-end record -> store -> seal/unseal -> replay flow.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/record/replayer.h"
#include "src/record/store.h"

namespace grt {
namespace {

Bytes MakeSigned(const std::string& workload, uint64_t nonce,
                 const Bytes& key, SkuId sku = SkuId::kMaliG71Mp8) {
  Recording rec;
  rec.header.workload = workload;
  rec.header.sku = sku;
  rec.header.record_nonce = nonce;
  return rec.SerializeSigned(key);
}

TEST(RecordingStore, InstallAndLoad) {
  Bytes key(32, 5);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("mnist", 1, key)).ok());
  EXPECT_TRUE(store.Contains("mnist", SkuId::kMaliG71Mp8));
  EXPECT_FALSE(store.Contains("mnist", SkuId::kMaliG71Mp4));  // per-SKU
  EXPECT_FALSE(store.Contains("vgg16", SkuId::kMaliG71Mp8));
  auto rec = store.Load("mnist", SkuId::kMaliG71Mp8);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->header.record_nonce, 1u);
}

TEST(RecordingStore, RejectsForgedRecordings) {
  Bytes key(32, 5);
  RecordingStore store(key);
  EXPECT_FALSE(store.Install(MakeSigned("mnist", 1, Bytes(32, 6))).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(RecordingStore, RollbackProtection) {
  Bytes key(32, 5);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("mnist", 5, key)).ok());
  // Older or same nonce: rejected.
  EXPECT_FALSE(store.Install(MakeSigned("mnist", 4, key)).ok());
  EXPECT_FALSE(store.Install(MakeSigned("mnist", 5, key)).ok());
  // Newer: accepted.
  EXPECT_TRUE(store.Install(MakeSigned("mnist", 6, key)).ok());
  EXPECT_EQ(store.Load("mnist", SkuId::kMaliG71Mp8)->header.record_nonce,
            6u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecordingStore, RemoveAndMissingEntries) {
  Bytes key(32, 5);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("a", 1, key)).ok());
  EXPECT_TRUE(store.Remove("a", SkuId::kMaliG71Mp8).ok());
  EXPECT_FALSE(store.Remove("a", SkuId::kMaliG71Mp8).ok());
  EXPECT_EQ(store.Load("a", SkuId::kMaliG71Mp8).status().code(),
            StatusCode::kNotFound);
}

TEST(RecordingStore, SealUnsealRoundTrip) {
  Bytes key(32, 7);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("a", 1, key)).ok());
  ASSERT_TRUE(store.Install(MakeSigned("b", 2, key)).ok());
  Bytes sealed = store.Seal();
  auto restored = RecordingStore::Unseal(sealed, key);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_TRUE(restored->Contains("a", SkuId::kMaliG71Mp8));
  EXPECT_TRUE(restored->Contains("b", SkuId::kMaliG71Mp8));
}

TEST(RecordingStore, TamperedSealRejected) {
  Bytes key(32, 7);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("a", 1, key)).ok());
  Bytes sealed = store.Seal();
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(RecordingStore::Unseal(sealed, key).ok());
  // Wrong key also fails.
  EXPECT_FALSE(RecordingStore::Unseal(store.Seal(), Bytes(32, 8)).ok());
}

TEST(RecordingStore, EveryCorruptedSealByteIsRejected) {
  // Exhaustive tamper sweep: flipping any single byte of the sealed image
  // (framing, bodies, or MAC trailer) must make Unseal fail cleanly — no
  // partial store, no crash, an integrity error every time.
  Bytes key(32, 9);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("mnist", 3, key)).ok());
  ASSERT_TRUE(store.Install(MakeSigned("vgg", 4, key)).ok());
  Bytes sealed = store.Seal();
  for (size_t pos = 0; pos < sealed.size(); ++pos) {
    for (uint8_t flip : {0x01, 0x80}) {
      Bytes tampered = sealed;
      tampered[pos] ^= flip;
      auto restored = RecordingStore::Unseal(tampered, key);
      ASSERT_FALSE(restored.ok())
          << "flip 0x" << std::hex << int(flip) << " at byte " << std::dec
          << pos << " survived Unseal";
    }
  }
  // The untampered image still restores.
  EXPECT_TRUE(RecordingStore::Unseal(sealed, key).ok());
}

TEST(RecordingStore, TruncatedSealIsRejected) {
  Bytes key(32, 9);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("mnist", 3, key)).ok());
  Bytes sealed = store.Seal();
  for (size_t keep : {size_t{0}, size_t{1}, sealed.size() / 2,
                      sealed.size() - 1}) {
    Bytes truncated(sealed.begin(),
                    sealed.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_FALSE(RecordingStore::Unseal(truncated, key).ok())
        << "truncation to " << keep << " bytes survived Unseal";
  }
}

TEST(RecordingStore, StaleNonceInstallNeverReplacesNewer) {
  // Rollback protection must hold under repeated attack: after any number
  // of stale-install attempts the newest recording is still what loads.
  Bytes key(32, 9);
  RecordingStore store(key);
  ASSERT_TRUE(store.Install(MakeSigned("mnist", 10, key)).ok());
  for (uint64_t stale = 0; stale <= 10; ++stale) {
    Status s = store.Install(MakeSigned("mnist", stale, key));
    EXPECT_FALSE(s.ok()) << "stale nonce " << stale << " accepted";
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(store.size(), 1u);
  auto rec = store.Load("mnist", SkuId::kMaliG71Mp8);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->header.record_nonce, 10u);
  // And the protection survives a seal/unseal cycle.
  auto restored = RecordingStore::Unseal(store.Seal(), key);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->Install(MakeSigned("mnist", 9, key)).ok());
  EXPECT_EQ(restored->Load("mnist", SkuId::kMaliG71Mp8)->header.record_nonce,
            10u);
}

TEST(RecordingStore, EndToEndRecordStoreReplay) {
  // Record once; install; seal; "reboot"; unseal; replay — the paper's
  // future-executions-without-the-cloud path.
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 173);
  SpeculationHistory history;
  auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                            &history, 1);
  ASSERT_TRUE(m.ok());

  RecordingStore store(m->session_key);
  ASSERT_TRUE(store.Install(m->signed_recording).ok());
  Bytes flash = store.Seal();

  auto after_reboot = RecordingStore::Unseal(flash, m->session_key);
  ASSERT_TRUE(after_reboot.ok());
  auto rec = after_reboot->Load(net.name, device.sku().id);
  ASSERT_TRUE(rec.ok());

  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  ASSERT_TRUE(replayer.Load(std::move(rec.value())).ok());
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      ASSERT_TRUE(
          replayer.StageTensor(t.name, GenerateParams(net.name, t, 7)).ok());
    }
  }
  std::vector<float> input = GenerateInput(net, 21);
  ASSERT_TRUE(replayer.StageTensor("input", input).ok());
  ASSERT_TRUE(replayer.Replay().ok());
  auto out = replayer.ReadTensor(net.output_tensor);
  auto ref = RunReference(net, input, 7);
  ASSERT_TRUE(out.ok() && ref.ok());
  EXPECT_LT(MaxAbsDiff(*out, *ref), 1e-4f);
}

}  // namespace
}  // namespace grt
