// Satellite: property-based round-trip tests for recording format v2.
//
// A seeded generator composes random — but verifier-clean — recordings
// (random headers, bindings, and interaction logs drawn from the grammar
// the static analyzer accepts) and checks the container format properties
// the rest of the system relies on:
//   * serialize -> deserialize -> re-serialize is byte-stable,
//   * the static verifier accepts the recording before and after a trip,
//   * the signed envelope round-trips under the right key and is refused
//     under the wrong key or after any single-byte tamper.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/verifier.h"
#include "src/common/rng.h"
#include "src/hw/regs.h"
#include "src/mem/phys_mem.h"
#include "src/record/recording.h"
#include "src/sku/sku.h"

namespace grt {
namespace {

constexpr int kGeneratedRecordings = 60;

// Registers safe for random reads: not SKU-identity (whose values the
// sku-compat pass pins), not nondeterministic (timestamps/counters).
constexpr uint32_t kReadableRegs[] = {
    kRegGpuIrqRawstat, kRegGpuIrqStatus, kRegGpuStatus, kRegJobIrqRawstat,
    kRegGpuFaultStatus};

// Registers safe for random writes: interrupt mask/clear plumbing with no
// protocol state machine attached.
constexpr uint32_t kWritableRegs[] = {kRegGpuIrqMask, kRegGpuIrqClear,
                                      kRegJobIrqMask, kRegJobIrqClear};

LogEntry RandomEntry(Rng* rng, const GpuSku& sku) {
  LogEntry e;
  switch (rng->NextBelow(7)) {
    case 0: {  // plain register write
      e.op = LogOp::kRegWrite;
      e.reg = kWritableRegs[rng->NextBelow(std::size(kWritableRegs))];
      e.value = rng->NextU32();
      break;
    }
    case 1: {  // power-domain write, masked to cores the SKU has
      e.op = LogOp::kRegWrite;
      e.reg = kRegShaderPwrOnLo;
      e.value = rng->NextU32() & sku.shader_present;
      break;
    }
    case 2: {  // register read (validated at replay; never speculative)
      e.op = LogOp::kRegRead;
      e.reg = kReadableRegs[rng->NextBelow(std::size(kReadableRegs))];
      e.value = rng->NextU32();
      e.speculative = false;
      break;
    }
    case 3: {  // poll whose recorded final value satisfies its predicate
      e.op = LogOp::kPollWait;
      e.reg = kRegGpuIrqRawstat;
      e.mask = rng->NextU32() | 1u;  // nonzero
      e.expected = rng->NextU32() & e.mask;
      e.value = (rng->NextU32() & ~e.mask) | e.expected;
      break;
    }
    case 4: {  // positive delay
      e.op = LogOp::kDelay;
      e.delay = static_cast<Duration>(1 + rng->NextBelow(1000000));
      break;
    }
    case 5: {  // interrupt wait on known lines
      e.op = LogOp::kIrqWait;
      e.irq_lines = static_cast<uint8_t>(1 + rng->NextBelow(7));
      break;
    }
    default: {  // page image: aligned, exactly one page of random bytes
      e.op = LogOp::kMemPage;
      e.pa = 0x80000000ull + rng->NextBelow(16384) * kPageSize;
      e.metastate = rng->NextBool(0.5);
      e.data.resize(kPageSize);
      for (auto& b : e.data) {
        b = static_cast<uint8_t>(rng->NextU32());
      }
      break;
    }
  }
  return e;
}

Recording RandomRecording(uint64_t seed) {
  Rng rng(seed ^ 0xF0F0A5A5ull);
  auto sku_result = FindSku(SkuId::kMaliG71Mp8);
  const GpuSku& sku = sku_result.value();

  Recording rec;
  rec.header.workload = "fuzz-" + std::to_string(seed);
  rec.header.sku = SkuId::kMaliG71Mp8;
  rec.header.record_nonce = rng.NextU64();
  rec.header.segment_index = 0;
  rec.header.segment_count = 1;

  int n_bindings = static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < n_bindings; ++i) {
    TensorBinding b;
    b.va = (1 + rng.NextBelow(1 << 20)) * 16ull;
    b.n_floats = 1 + rng.NextBelow(4096);
    int n_pages = static_cast<int>(1 + rng.NextBelow(4));
    for (int p = 0; p < n_pages; ++p) {
      b.pages.push_back(0x80000000ull + rng.NextBelow(16384) * kPageSize);
    }
    b.writable_at_replay = rng.NextBool(0.5);
    rec.bindings["t" + std::to_string(i)] = std::move(b);
  }

  // The register-protocol pass requires a reset before anything exciting;
  // every generated log opens with one, like real recordings do.
  LogEntry reset;
  reset.op = LogOp::kRegWrite;
  reset.reg = kRegGpuCommand;
  reset.value = kGpuCommandSoftReset;
  rec.log.Add(std::move(reset));

  int n_entries = static_cast<int>(1 + rng.NextBelow(120));
  for (int i = 0; i < n_entries; ++i) {
    rec.log.Add(RandomEntry(&rng, sku));
  }
  return rec;
}

TEST(FormatPropertyTest, GeneratedRecordingsAreVerifierClean) {
  for (uint64_t seed = 1; seed <= kGeneratedRecordings; ++seed) {
    Recording rec = RandomRecording(seed);
    Status v = VerifyRecording(rec);
    EXPECT_TRUE(v.ok()) << "seed " << seed << ": " << v.ToString();
  }
}

TEST(FormatPropertyTest, BodySerializationIsByteStableAcrossRoundTrips) {
  for (uint64_t seed = 1; seed <= kGeneratedRecordings; ++seed) {
    Recording rec = RandomRecording(seed);
    Bytes body = rec.SerializeBody();
    auto parsed = Recording::ParseUnsigned(body);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed->SerializeBody(), body) << "seed " << seed;
    // And the trip preserved verifier-cleanliness.
    EXPECT_TRUE(VerifyRecording(*parsed).ok()) << "seed " << seed;
  }
}

TEST(FormatPropertyTest, RoundTripPreservesStructure) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Recording rec = RandomRecording(seed);
    auto parsed = Recording::ParseUnsigned(rec.SerializeBody());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->header.workload, rec.header.workload);
    EXPECT_EQ(parsed->header.record_nonce, rec.header.record_nonce);
    EXPECT_EQ(parsed->header.sku, rec.header.sku);
    EXPECT_EQ(parsed->bindings.size(), rec.bindings.size());
    ASSERT_EQ(parsed->log.size(), rec.log.size());
    for (size_t i = 0; i < rec.log.size(); ++i) {
      const LogEntry& a = rec.log.entries()[i];
      const LogEntry& b = parsed->log.entries()[i];
      EXPECT_EQ(a.op, b.op);
      EXPECT_EQ(a.reg, b.reg);
      EXPECT_EQ(a.value, b.value);
      EXPECT_EQ(a.data, b.data);
    }
  }
}

TEST(FormatPropertyTest, SignedEnvelopeRoundTripsUnderTheRightKeyOnly) {
  Bytes key(32, 0x2B), wrong_key(32, 0x2C);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Recording rec = RandomRecording(seed);
    Bytes wire = rec.SerializeSigned(key);
    auto ok = Recording::ParseSigned(wire, key);
    EXPECT_TRUE(ok.ok()) << "seed " << seed;
    auto bad = Recording::ParseSigned(wire, wrong_key);
    EXPECT_FALSE(bad.ok()) << "seed " << seed;
  }
}

TEST(FormatPropertyTest, AnySingleByteTamperIsRejected) {
  Bytes key(32, 0x2B);
  Recording rec = RandomRecording(3);
  Bytes wire = rec.SerializeSigned(key);
  // Sampled positions (every 97th byte) spanning header, log, and MAC.
  for (size_t pos = 0; pos < wire.size(); pos += 97) {
    Bytes tampered = wire;
    tampered[pos] ^= 0x40;
    auto parsed = Recording::ParseSigned(tampered, key);
    EXPECT_FALSE(parsed.ok()) << "tamper at byte " << pos << " not caught";
  }
}

TEST(FormatPropertyTest, InteractionLogSerializationRoundTrips) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Recording rec = RandomRecording(seed);
    Bytes raw = rec.log.Serialize();
    auto log = InteractionLog::Deserialize(raw);
    ASSERT_TRUE(log.ok()) << "seed " << seed;
    EXPECT_EQ(log->Serialize(), raw) << "seed " << seed;
  }
}

}  // namespace
}  // namespace grt
