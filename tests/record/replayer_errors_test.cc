// Satellite: replay resource-exhaustion conditions are typed, testable
// errors. ReplayConfig::poll_max_iters running out surfaces as
// kPollExhausted and ReplayConfig::irq_timeout elapsing as kIrqExpired —
// distinguishable from each other, from generic kTimeout, and from replay
// divergence, so callers can branch (retry with a larger budget vs reject
// the recording) without string matching.
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/hw/regs.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

Recording MinimalRecording(const std::string& workload) {
  Recording rec;
  rec.header.workload = workload;
  rec.header.sku = SkuId::kMaliG71Mp8;
  rec.header.record_nonce = 1;
  LogEntry reset;
  reset.op = LogOp::kRegWrite;
  reset.reg = kRegGpuCommand;
  reset.value = kGpuCommandSoftReset;
  rec.log.Add(std::move(reset));
  return rec;
}

class ReplayerErrorsTest : public ::testing::Test {
 protected:
  ClientDevice device_{SkuId::kMaliG71Mp8};
};

TEST_F(ReplayerErrorsTest, PollBudgetExhaustionIsTyped) {
  // The recorded poll saw CLEAN_CACHES_COMPLETED; at replay nobody issued
  // a flush, so the predicate can never be satisfied and the iteration
  // budget must run out.
  Recording rec = MinimalRecording("poll-exhaust");
  LogEntry poll;
  poll.op = LogOp::kPollWait;
  poll.reg = kRegGpuIrqRawstat;
  poll.mask = kGpuIrqCleanCachesCompleted;
  poll.expected = kGpuIrqCleanCachesCompleted;
  poll.value = kGpuIrqCleanCachesCompleted;  // satisfies predicate on paper
  rec.log.Add(std::move(poll));

  ReplayConfig config;
  config.poll_max_iters = 25;
  Replayer replayer(&device_.gpu(), &device_.tzasc(), &device_.mem(),
                    &device_.timeline(), config);
  ASSERT_TRUE(replayer.Load(std::move(rec)).ok());
  auto report = replayer.Replay();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kPollExhausted)
      << report.status().ToString();
  EXPECT_NE(report.status().code(), StatusCode::kTimeout);
}

TEST_F(ReplayerErrorsTest, IrqTimeoutExpiryIsTyped) {
  // The recording waits on the job interrupt, but no job was ever
  // submitted: the (virtual) irq_timeout elapses with no device event.
  Recording rec = MinimalRecording("irq-expire");
  LogEntry irq;
  irq.op = LogOp::kIrqWait;
  irq.irq_lines = 1;  // job irq
  rec.log.Add(std::move(irq));

  ReplayConfig config;
  config.irq_timeout = 5 * kMillisecond;
  Replayer replayer(&device_.gpu(), &device_.tzasc(), &device_.mem(),
                    &device_.timeline(), config);
  ASSERT_TRUE(replayer.Load(std::move(rec)).ok());
  auto report = replayer.Replay();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIrqExpired)
      << report.status().ToString();
  EXPECT_NE(report.status().code(), StatusCode::kTimeout);
}

TEST_F(ReplayerErrorsTest, TheTwoExhaustionCodesAreDistinct) {
  EXPECT_NE(StatusCode::kPollExhausted, StatusCode::kIrqExpired);
  EXPECT_EQ(StatusCodeName(StatusCode::kPollExhausted), "POLL_EXHAUSTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kIrqExpired), "IRQ_EXPIRED");
  EXPECT_EQ(PollExhausted("x").code(), StatusCode::kPollExhausted);
  EXPECT_EQ(IrqExpired("x").code(), StatusCode::kIrqExpired);
  EXPECT_FALSE(PollExhausted("x").ok());
  EXPECT_FALSE(IrqExpired("x").ok());
}

}  // namespace
}  // namespace grt
