// Replay-correctness property tests across workloads, variants, inputs,
// and SKUs: the core guarantees of §2.3 (completeness, determinism,
// input independence) checked end to end.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

struct Recorded {
  Bytes wire;
  Bytes key;
};

Result<Recorded> Record(ClientDevice* device, const NetworkDef& net,
                        const std::string& variant) {
  SpeculationHistory history;
  GRT_ASSIGN_OR_RETURN(
      RecordMeasurement m,
      RunRecordVariant(device, net, variant, WifiConditions(), &history,
                       variant == "OursMDS" ? 1 : 0));
  return Recorded{std::move(m.signed_recording), std::move(m.session_key)};
}

Result<std::vector<float>> ReplayOutput(ClientDevice* device,
                                        const NetworkDef& net,
                                        const Recorded& rec,
                                        uint64_t param_seed,
                                        uint64_t input_seed) {
  Replayer replayer(&device->gpu(), &device->tzasc(), &device->mem(),
                    &device->timeline());
  GRT_RETURN_IF_ERROR(replayer.LoadSigned(rec.wire, rec.key));
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      GRT_RETURN_IF_ERROR(replayer.StageTensor(
          t.name, GenerateParams(net.name, t, param_seed)));
    }
  }
  GRT_RETURN_IF_ERROR(
      replayer.StageTensor("input", GenerateInput(net, input_seed)));
  GRT_ASSIGN_OR_RETURN(ReplayReport report, replayer.Replay());
  (void)report;
  return replayer.ReadTensor(net.output_tensor);
}

// --- Every workload records over the network and replays correctly. -------

class PerNetworkReplay : public ::testing::TestWithParam<int> {};

TEST_P(PerNetworkReplay, GrtRecordingReplaysToReference) {
  NetworkDef net = BuildAllNetworks()[GetParam()];
  ClientDevice device(SkuId::kMaliG71Mp8, 61);
  auto rec = Record(&device, net, "OursMDS");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto out = ReplayOutput(&device, net, *rec, 7, 1234);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto ref = RunReference(net, GenerateInput(net, 1234), 7);
  ASSERT_TRUE(ref.ok());
  EXPECT_LT(MaxAbsDiff(*out, *ref), 1e-4f) << net.name;
}

INSTANTIATE_TEST_SUITE_P(AllNets, PerNetworkReplay, ::testing::Range(0, 6));

// --- All four variants produce recordings that replay identically. --------

TEST(ReplayProperties, AllVariantsReplayEquivalently) {
  NetworkDef net = BuildMnist();
  std::vector<float> input = GenerateInput(net, 5);
  std::vector<float> reference = RunReference(net, input, 3).value();
  for (const std::string& variant : AllVariantNames()) {
    ClientDevice device(SkuId::kMaliG71Mp8, 67);
    auto rec = Record(&device, net, variant);
    ASSERT_TRUE(rec.ok()) << variant << ": " << rec.status().ToString();
    auto out = ReplayOutput(&device, net, *rec, 3, 5);
    ASSERT_TRUE(out.ok()) << variant << ": " << out.status().ToString();
    EXPECT_LT(MaxAbsDiff(*out, reference), 1e-4f) << variant;
  }
}

// --- Input independence: one recording serves many inputs (§2.3). ---------

TEST(ReplayProperties, OneRecordingManyInputs) {
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 71);
  auto rec = Record(&device, net, "OursMDS");
  ASSERT_TRUE(rec.ok());

  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  ASSERT_TRUE(replayer.LoadSigned(rec->wire, rec->key).ok());
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      ASSERT_TRUE(
          replayer.StageTensor(t.name, GenerateParams(net.name, t, 9)).ok());
    }
  }
  for (uint64_t input_seed : {1u, 2u, 3u, 4u, 5u}) {
    std::vector<float> input = GenerateInput(net, input_seed);
    ASSERT_TRUE(replayer.StageTensor("input", input).ok());
    ASSERT_TRUE(replayer.Replay().ok());
    auto out = replayer.ReadTensor(net.output_tensor);
    auto ref = RunReference(net, input, 9);
    ASSERT_TRUE(out.ok() && ref.ok());
    EXPECT_LT(MaxAbsDiff(*out, *ref), 1e-4f) << "input seed " << input_seed;
  }
}

// --- Replay determinism: same input twice => bit-identical output. --------

TEST(ReplayProperties, ReplayIsDeterministic) {
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 73);
  auto rec = Record(&device, net, "OursMDS");
  ASSERT_TRUE(rec.ok());
  auto out1 = ReplayOutput(&device, net, *rec, 11, 22);
  auto out2 = ReplayOutput(&device, net, *rec, 11, 22);
  ASSERT_TRUE(out1.ok() && out2.ok());
  EXPECT_EQ(*out1, *out2);  // bit-exact
}

// --- Model privacy: new parameters at replay, never sent to the cloud. ----

TEST(ReplayProperties, FreshParametersChangeOutput) {
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 79);
  auto rec = Record(&device, net, "OursMDS");
  ASSERT_TRUE(rec.ok());
  auto model_a = ReplayOutput(&device, net, *rec, 100, 1);
  auto model_b = ReplayOutput(&device, net, *rec, 200, 1);
  ASSERT_TRUE(model_a.ok() && model_b.ok());
  EXPECT_GT(MaxAbsDiff(*model_a, *model_b), 0.0f);
  // And each matches its own reference.
  EXPECT_LT(MaxAbsDiff(*model_a,
                       RunReference(net, GenerateInput(net, 1), 100).value()),
            1e-4f);
  EXPECT_LT(MaxAbsDiff(*model_b,
                       RunReference(net, GenerateInput(net, 1), 200).value()),
            1e-4f);
}

// --- The replayer refuses misuse. ------------------------------------------

TEST(ReplayProperties, ReplayerValidatesStaging) {
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 83);
  auto rec = Record(&device, net, "OursMDS");
  ASSERT_TRUE(rec.ok());
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  // Staging before load fails.
  EXPECT_EQ(replayer.StageTensor("input", {1.0f}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(replayer.LoadSigned(rec->wire, rec->key).ok());
  // Unknown tensor.
  EXPECT_EQ(replayer.StageTensor("nonsense", {1.0f}).code(),
            StatusCode::kNotFound);
  // Wrong size.
  EXPECT_EQ(replayer.StageTensor("input", {1.0f, 2.0f}).code(),
            StatusCode::kInvalidArgument);
  // Output tensors are not injectable.
  EXPECT_EQ(replayer
                .StageTensor(net.output_tensor, std::vector<float>(10, 0.f))
                .code(),
            StatusCode::kPermissionDenied);
}

// --- GPU is locked away from the normal world during recording. -----------

TEST(ReplayProperties, NormalWorldLockedOutDuringRecording) {
  NetworkDef net = BuildMnist();
  ClientDevice device(SkuId::kMaliG71Mp8, 89);
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, &device, config, &history);
  ASSERT_TRUE(session.Connect().ok());

  uint64_t violations_before = device.tzasc().violations();
  session.gpushim().BeginSession();
  // A normal-world app pokes the GPU mid-recording: denied and counted.
  EXPECT_FALSE(device.tzasc()
                   .ReadGpuRegister(World::kNormal, &device.gpu(), kRegGpuId)
                   .ok());
  EXPECT_GT(device.tzasc().violations(), violations_before);
  session.gpushim().EndSession();
  // After the session the normal world gets its GPU back.
  EXPECT_TRUE(device.tzasc()
                  .ReadGpuRegister(World::kNormal, &device.gpu(), kRegGpuId)
                  .ok());
}

}  // namespace
}  // namespace grt
