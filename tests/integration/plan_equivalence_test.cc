// Plan-vs-interpreter equivalence — the acceptance gate for the compiled
// replay fast path. For every example network (and the chaos-recorded
// corpus), the same recording replays on three identically-seeded fresh
// devices: once under the interpreter (reference engine), once under the
// compiled plan, and once under the planopt-superoptimized (fused) plan,
// cold then warm. All engines must produce bitwise-identical outputs,
// all must match the CPU reference, the warm plan replay must apply
// strictly fewer memory bytes than the interpreter, and the fused warm
// replay must be faster on the modeled timeline than both — the entire
// point of compiling and then superoptimizing the plan.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/analysis/opt/optimizer.h"
#include "src/analysis/planopt/planopt.h"
#include "src/harness/chaos.h"
#include "src/harness/experiment.h"
#include "src/ml/reference.h"
#include "src/record/plan.h"
#include "src/record/replayer.h"
#include "src/sku/sku.h"

namespace grt {
namespace {

constexpr SkuId kSku = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;
constexpr uint64_t kInputSeed = 42;

Result<Recording> RecordOnce(const NetworkDef& net) {
  ClientDevice device(kSku, kNondetSeed);
  SpeculationHistory history;
  GRT_ASSIGN_OR_RETURN(RecordMeasurement m,
                       RunRecordVariant(&device, net, "OursMDS",
                                        WifiConditions(), &history, 0));
  return Recording::ParseSigned(m.signed_recording, m.session_key);
}

struct EngineRun {
  std::vector<float> cold_output;
  std::vector<float> warm_output;
  ReplayReport cold;
  ReplayReport warm;
};

enum class Engine { kInterp, kPlan, kFused };

// Two back-to-back replays (the deployed steady state: new input, same
// plan) on one fresh device.
Result<EngineRun> ReplayColdWarm(const NetworkDef& net, const Recording& rec,
                                 Engine engine) {
  ClientDevice device(kSku, kNondetSeed);
  ReplayConfig config;
  config.use_plan = engine != Engine::kInterp;
  config.use_warm_program = engine == Engine::kFused;
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline(), config);
  if (engine == Engine::kFused) {
    // Explicit compile + superoptimize: a declined build is a test
    // failure here, not a silent fallback.
    auto shared = std::make_shared<const Recording>(rec);
    auto plan = std::make_unique<ReplayPlan>(CompileReplayPlan(*shared));
    GRT_ASSIGN_OR_RETURN(GpuSku sku, FindSku(kSku));
    std::string decline;
    GRT_RETURN_IF_ERROR(AttachWarmProgram(plan.get(), sku, &decline));
    if (plan->warm == nullptr) {
      return Internal("superoptimizer declined " + net.name + ": " + decline);
    }
    GRT_RETURN_IF_ERROR(replayer.LoadShared(
        shared, std::shared_ptr<const ReplayPlan>(std::move(plan))));
  } else {
    GRT_RETURN_IF_ERROR(replayer.Load(rec));
  }
  std::vector<float> input = GenerateInput(net, kInputSeed);
  GRT_RETURN_IF_ERROR(replayer.StageTensor(net.input_tensor, input));
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      GRT_RETURN_IF_ERROR(
          replayer.StageTensor(t.name, GenerateParams(net.name, t, 7)));
    }
  }
  EngineRun run;
  GRT_ASSIGN_OR_RETURN(run.cold, replayer.Replay());
  GRT_ASSIGN_OR_RETURN(run.cold_output,
                       replayer.ReadTensor(net.output_tensor));
  // Per-inference input refresh, then the warm replay.
  GRT_RETURN_IF_ERROR(replayer.StageTensor(net.input_tensor, input));
  GRT_ASSIGN_OR_RETURN(run.warm, replayer.Replay());
  GRT_ASSIGN_OR_RETURN(run.warm_output,
                       replayer.ReadTensor(net.output_tensor));
  return run;
}

bool BitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void ExpectPlanEquivalent(const NetworkDef& net, const Recording& rec) {
  auto interp = ReplayColdWarm(net, rec, Engine::kInterp);
  ASSERT_TRUE(interp.ok()) << net.name << ": " << interp.status().ToString();
  auto plan = ReplayColdWarm(net, rec, Engine::kPlan);
  ASSERT_TRUE(plan.ok()) << net.name << ": " << plan.status().ToString();
  auto fused = ReplayColdWarm(net, rec, Engine::kFused);
  ASSERT_TRUE(fused.ok()) << net.name << ": " << fused.status().ToString();

  EXPECT_FALSE(interp->cold.plan_used) << net.name;
  EXPECT_TRUE(plan->cold.plan_used) << net.name;
  EXPECT_FALSE(plan->cold.warm) << net.name;
  EXPECT_TRUE(plan->warm.warm) << net.name;
  // The fused engine's cold replay runs the full plan (and arms the warm
  // program); its warm replay must actually execute the fused schedule.
  EXPECT_FALSE(fused->cold.warm_program_used) << net.name;
  EXPECT_TRUE(fused->warm.warm_program_used) << net.name;
  EXPECT_GT(fused->warm.fused_spans_executed, 0u) << net.name;
  EXPECT_GT(fused->warm.fused_writes_executed,
            fused->warm.fused_spans_executed)
      << net.name;

  // Bitwise agreement: interpreter, plan, and fused plan — cold and
  // warm — all equal.
  EXPECT_TRUE(BitIdentical(interp->cold_output, interp->warm_output))
      << net.name;
  EXPECT_TRUE(BitIdentical(interp->cold_output, plan->cold_output))
      << net.name;
  EXPECT_TRUE(BitIdentical(interp->cold_output, plan->warm_output))
      << net.name;
  EXPECT_TRUE(BitIdentical(interp->cold_output, fused->cold_output))
      << net.name;
  EXPECT_TRUE(BitIdentical(interp->cold_output, fused->warm_output))
      << net.name;

  // The perf contract (acceptance criterion): a warm plan replay applies
  // strictly fewer memory bytes than the interpreter — and even the cold
  // plan replay never applies more (duplicate pre-job-start snapshots are
  // folded at compile time).
  EXPECT_LT(plan->warm.mem_bytes_applied, interp->warm.mem_bytes_applied)
      << net.name;
  EXPECT_LE(plan->cold.mem_bytes_applied, interp->cold.mem_bytes_applied)
      << net.name;
  EXPECT_GT(plan->warm.pages_skipped_clean, 0u) << net.name;
  // Fewer bytes means a faster replay on the modeled timeline too.
  EXPECT_LT(plan->warm.delay, interp->warm.delay) << net.name;
  // The fused schedule hoists warm-invariant closures and batches the
  // submit MMIO: strictly faster than both interpreter and plain plan.
  EXPECT_LT(fused->warm.delay, interp->warm.delay) << net.name;
  EXPECT_LT(fused->warm.delay, plan->warm.delay) << net.name;

  // And none of this moved the answer: all engines match the reference.
  auto ref = RunReference(net, GenerateInput(net, kInputSeed), 7);
  ASSERT_TRUE(ref.ok()) << net.name;
  EXPECT_LE(MaxAbsDiff(interp->cold_output, *ref), 1e-4f) << net.name;
  EXPECT_LE(MaxAbsDiff(plan->warm_output, *ref), 1e-4f) << net.name;
  EXPECT_LE(MaxAbsDiff(fused->warm_output, *ref), 1e-4f) << net.name;
}

TEST(PlanEquivalence, Mnist) {
  auto rec = RecordOnce(BuildMnist());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectPlanEquivalent(BuildMnist(), *rec);
}

TEST(PlanEquivalence, AlexNet) {
  auto rec = RecordOnce(BuildAlexNet());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectPlanEquivalent(BuildAlexNet(), *rec);
}

TEST(PlanEquivalence, MobileNet) {
  auto rec = RecordOnce(BuildMobileNet());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectPlanEquivalent(BuildMobileNet(), *rec);
}

TEST(PlanEquivalence, SqueezeNet) {
  auto rec = RecordOnce(BuildSqueezeNet());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectPlanEquivalent(BuildSqueezeNet(), *rec);
}

TEST(PlanEquivalence, ResNet12) {
  auto rec = RecordOnce(BuildResNet12());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectPlanEquivalent(BuildResNet12(), *rec);
}

TEST(PlanEquivalence, Vgg16) {
  auto rec = RecordOnce(BuildVgg16());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectPlanEquivalent(BuildVgg16(), *rec);
}

// The chaos corpus (recordings produced under seeded channel faults) is
// the adversarial input class for the record path; the plan compiler must
// lower them with the same fidelity as clean recordings.
TEST(PlanEquivalence, ChaosCorpus) {
  const NetworkDef net = BuildMnist();
  int corpus = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto run = RunChaosSession(net, kSku, WifiConditions(),
                               FaultPlan::FromSeed(seed), kNondetSeed,
                               /*nonce=*/100 + seed);
    ASSERT_TRUE(run.ok()) << "wifi seed " << seed << ": "
                          << run.status().ToString();
    auto rec = Recording::ParseUnsigned(run->recording_body);
    ASSERT_TRUE(rec.ok());
    ExpectPlanEquivalent(net, *rec);
    ++corpus;
  }
  for (uint64_t seed : {6u, 7u, 8u, 9u}) {
    auto run = RunChaosSession(net, kSku, CellularConditions(),
                               FaultPlan::FromSeed(seed), kNondetSeed,
                               /*nonce=*/200 + seed);
    ASSERT_TRUE(run.ok()) << "cellular seed " << seed << ": "
                          << run.status().ToString();
    auto rec = Recording::ParseUnsigned(run->recording_body);
    ASSERT_TRUE(rec.ok());
    ExpectPlanEquivalent(net, *rec);
    ++corpus;
  }
  EXPECT_EQ(corpus, 9);
}

// An optimized (grt_opt) recording composes with the plan compiler: the
// §6c provenance-checked output lowers to a plan that still replays to
// the same bits as the unoptimized interpreter replay.
TEST(PlanEquivalence, OptimizedRecordingLowersEquivalently) {
  const NetworkDef net = BuildMnist();
  auto rec = RecordOnce(net);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  OptStats stats;
  auto optimized = OptimizeRecording(*rec, OptimizeOptions{}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  auto baseline = ReplayColdWarm(net, *rec, Engine::kInterp);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto plan = ReplayColdWarm(net, *optimized, Engine::kPlan);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(BitIdentical(baseline->cold_output, plan->warm_output));
  EXPECT_LT(plan->warm.mem_bytes_applied, baseline->warm.mem_bytes_applied);
  // And the superoptimizer composes on top of the §6c-optimized
  // recording too: same bits, faster still.
  auto fused = ReplayColdWarm(net, *optimized, Engine::kFused);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_TRUE(fused->warm.warm_program_used);
  EXPECT_TRUE(BitIdentical(baseline->cold_output, fused->warm_output));
  EXPECT_LT(fused->warm.delay, plan->warm.delay);
}

}  // namespace
}  // namespace grt
