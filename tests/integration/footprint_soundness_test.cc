// Dynamic soundness sweep for the static footprint analysis: for every
// example network and for recordings produced under every chaos fault
// schedule, replay with a raw physical-write observer installed and check
// static ⊇ observed — every page anything wrote, every register touched,
// every IRQ line waited on lies inside the recording's declared
// footprint. This is the evidence the serving device pool's co-residency
// decisions rest on; an uncovered write here would mean two "disjoint"
// plans could actually perturb each other.
#include <gtest/gtest.h>

#include "src/harness/chaos.h"
#include "src/harness/experiment.h"
#include "src/harness/soundness.h"
#include "src/ml/network.h"
#include "src/record/recording.h"

namespace grt {
namespace {

constexpr SkuId kSku = SkuId::kMaliG71Mp8;
constexpr uint64_t kNondetSeed = 11;
constexpr uint64_t kInputSeed = 42;

std::string ReportFailure(const FootprintSoundnessReport& report) {
  std::string out;
  char buf[64];
  for (uint64_t page : report.uncovered_pages) {
    std::snprintf(buf, sizeof(buf), "uncovered page 0x%llx\n",
                  static_cast<unsigned long long>(page));
    out += buf;
  }
  for (uint32_t reg : report.uncovered_regs) {
    std::snprintf(buf, sizeof(buf), "uncovered reg 0x%x\n", reg);
    out += buf;
  }
  if (report.uncovered_irq_lines != 0) {
    std::snprintf(buf, sizeof(buf), "uncovered irq lines 0x%x\n",
                  report.uncovered_irq_lines);
    out += buf;
  }
  return out;
}

void CheckNetwork(const NetworkDef& net) {
  SCOPED_TRACE(net.name);
  ClientDevice device(kSku, kNondetSeed);
  SpeculationHistory history;
  auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                            &history, 0);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto rec = Recording::ParseSigned(m->signed_recording, m->session_key);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_TRUE(rec->header.footprint.computed);

  auto report =
      CheckFootprintSoundness(net, kSku, *rec, kNondetSeed + 1, kInputSeed);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->replays, 2u);
  EXPECT_GT(report->pages_observed, 0u);
  EXPECT_GT(report->regs_observed, 0u);
  EXPECT_TRUE(report->ok()) << ReportFailure(*report);
}

TEST(FootprintSoundnessSweep, Mnist) { CheckNetwork(BuildMnist()); }
TEST(FootprintSoundnessSweep, AlexNet) { CheckNetwork(BuildAlexNet()); }
TEST(FootprintSoundnessSweep, MobileNet) { CheckNetwork(BuildMobileNet()); }
TEST(FootprintSoundnessSweep, SqueezeNet) { CheckNetwork(BuildSqueezeNet()); }
TEST(FootprintSoundnessSweep, ResNet12) { CheckNetwork(BuildResNet12()); }
TEST(FootprintSoundnessSweep, Vgg16) { CheckNetwork(BuildVgg16()); }

// Recordings produced under channel faults must be byte-identical to the
// baseline (the chaos suite proves that); here we additionally prove their
// stamped footprints stay sound — fault recovery must not leak any
// unaccounted device interaction into the artifact.
void CheckChaosSchedule(uint64_t seed, NetworkConditions conditions,
                        uint64_t nonce) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  NetworkDef net = BuildMnist();
  FaultPlan plan = FaultPlan::FromSeed(seed);
  auto run = RunChaosSession(net, kSku, conditions, plan, kNondetSeed, nonce);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto rec = Recording::ParseUnsigned(run->recording_body);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_TRUE(rec->header.footprint.computed);

  auto report =
      CheckFootprintSoundness(net, kSku, *rec, kNondetSeed + 1, kInputSeed);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << ReportFailure(*report);
}

TEST(FootprintSoundnessSweep, ChaosWifiSchedules) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CheckChaosSchedule(seed, WifiConditions(), 100 + seed);
  }
}

TEST(FootprintSoundnessSweep, ChaosCellularSchedules) {
  for (uint64_t seed = 6; seed <= 9; ++seed) {
    CheckChaosSchedule(seed, CellularConditions(), 200 + seed);
  }
}

}  // namespace
}  // namespace grt
