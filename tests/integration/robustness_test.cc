// Robustness and model-consistency tests: normal-world contention during
// recording, parser fuzzing, and the delay model's internal consistency.
#include <gtest/gtest.h>

#include "src/cloud/session.h"
#include "src/common/rng.h"
#include "src/harness/experiment.h"
#include "src/shim/wire.h"

namespace grt {
namespace {

// §3.3: "the TEE has to exclusively lock the GPU for a record run, it
// blocks the normal-world apps from accessing the GPU". The blocked app
// must fail cleanly, not corrupt the recording.
TEST(Robustness, NormalWorldAppFailsCleanlyDuringRecording) {
  ClientDevice device(SkuId::kMaliG71Mp8, 127);
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, &device, config, &history);
  ASSERT_TRUE(session.Connect().ok());
  session.gpushim().BeginSession();  // the TEE takes the GPU

  // A normal-world app now tries to bring up its own stack.
  NativeStack app(&device, World::kNormal);
  Status s = app.BringUp();
  EXPECT_FALSE(s.ok());  // the driver can't even probe (reads-as-zero)
  EXPECT_FALSE(app.bus().last_error().ok());

  session.gpushim().EndSession();
  // After the session the normal world recovers fully.
  NativeStack app2(&device, World::kNormal);
  EXPECT_TRUE(app2.BringUp().ok());
}

// Recording and wire parsers must reject random garbage without crashing.
class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Bytes garbage(rng.NextBelow(512));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextU32());
    }
    (void)Recording::ParseUnsigned(garbage);
    (void)Recording::ParseSigned(garbage, Bytes(32, 1));
    (void)InteractionLog::Deserialize(garbage);
    (void)CommitBatchMsg::Deserialize(garbage);
    (void)CommitReplyMsg::Deserialize(garbage);
    (void)PollRequestMsg::Deserialize(garbage);
    (void)PollReplyMsg::Deserialize(garbage);
    (void)IrqEventMsg::Deserialize(garbage);
    (void)JobDescriptor::Deserialize(garbage);
    (void)ParseShaderBlob(garbage);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11, 22, 33, 44));

// Truncation sweep: every prefix of a valid recording must be rejected
// (no partial acceptance).
TEST(Robustness, EveryTruncationOfARecordingRejected) {
  Recording rec;
  rec.header.workload = "x";
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = 4;
  e.value = 5;
  rec.log.Add(e);
  Bytes key(32, 9);
  Bytes wire = rec.SerializeSigned(key);
  for (size_t len = 0; len < wire.size(); len += 7) {
    Bytes prefix(wire.begin(), wire.begin() + len);
    EXPECT_FALSE(Recording::ParseSigned(prefix, key).ok()) << len;
  }
}

// The delay model is internally consistent: the measured recording delay
// is explained by blocking round trips plus serialized traffic (within a
// factor that covers compute, stalls, and one-way pipelining).
TEST(Robustness, RecordingDelayExplainedByModel) {
  NetworkDef net = BuildMnist();
  for (const std::string& variant : {std::string("Naive"),
                                     std::string("OursMD")}) {
    ClientDevice device(SkuId::kMaliG71Mp8, 131);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, net, variant, WifiConditions(),
                              &history);
    ASSERT_TRUE(m.ok());
    double rtt_s = ToSeconds(WifiConditions().rtt);
    double lower = m->blocking_rtts * rtt_s;
    double traffic_s =
        static_cast<double>(m->total_bytes) * 8.0 / WifiConditions().bandwidth_bps;
    double measured = ToSeconds(m->client_delay);
    EXPECT_GE(measured, lower * 0.9) << variant;
    EXPECT_LE(measured, (lower + traffic_s) * 2.0 + 1.0) << variant;
  }
}

// Determinism across identical sessions: same seeds => bit-identical
// recordings and statistics.
TEST(Robustness, IdenticalSessionsProduceIdenticalRecordings) {
  NetworkDef net = BuildMnist();
  Bytes first;
  uint64_t first_rtts = 0;
  for (int run = 0; run < 2; ++run) {
    ClientDevice device(SkuId::kMaliG71Mp8, 137);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                              &history, 1);
    ASSERT_TRUE(m.ok());
    if (run == 0) {
      first = m->signed_recording;
      first_rtts = m->blocking_rtts;
    } else {
      EXPECT_EQ(m->signed_recording, first);
      EXPECT_EQ(m->blocking_rtts, first_rtts);
    }
  }
}

}  // namespace
}  // namespace grt
