// Cloud-service isolation tests (§3.1/§3.2): one VM/session per client,
// per-session keys, and "the cloud never caches and reuses recordings
// across clients even if they have the same GPU SKU".
#include <gtest/gtest.h>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

TEST(CloudIsolation, PerClientSessionsUseDistinctKeys) {
  CloudService service;
  NetworkDef net = BuildMnist();
  ClientDevice alice(SkuId::kMaliG71Mp8, 3);
  ClientDevice bob(SkuId::kMaliG71Mp8, 3);  // same SKU

  SpeculationHistory ha, hb;
  RecordSessionConfig ca, cb;
  ca.session_nonce_seed = 1;
  cb.session_nonce_seed = 2;
  RecordSession sa(&service, &alice, ca, &ha);
  RecordSession sb(&service, &bob, cb, &hb);
  ASSERT_TRUE(sa.Connect().ok());
  ASSERT_TRUE(sb.Connect().ok());
  EXPECT_NE(sa.key()->key(), sb.key()->key());

  auto rec_a = sa.RecordWorkload(net, 10);
  auto rec_b = sb.RecordWorkload(net, 11);
  ASSERT_TRUE(rec_a.ok() && rec_b.ok());
  // Fresh per-client recordings: different bytes (nonce + signature).
  EXPECT_NE(rec_a->signed_recording, rec_b->signed_recording);

  // Alice cannot use Bob's recording: it fails her key's verification.
  Replayer replayer(&alice.gpu(), &alice.tzasc(), &alice.mem(),
                    &alice.timeline());
  EXPECT_EQ(replayer.LoadSigned(rec_b->signed_recording, sa.key()->key())
                .code(),
            StatusCode::kIntegrityViolation);
  // While her own verifies.
  EXPECT_TRUE(
      replayer.LoadSigned(rec_a->signed_recording, sa.key()->key()).ok());
}

TEST(CloudIsolation, SessionRequiresConnectFirst) {
  CloudService service;
  ClientDevice device(SkuId::kMaliG71Mp8);
  SpeculationHistory history;
  RecordSession session(&service, &device, RecordSessionConfig{}, &history);
  auto rec = session.RecordWorkload(BuildMnist(), 1);
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
  auto layered = session.RecordWorkloadLayered(BuildMnist(), 1);
  EXPECT_EQ(layered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CloudIsolation, HandshakeCostsTwoRoundTrips) {
  CloudService service;
  ClientDevice device(SkuId::kMaliG71Mp8);
  SpeculationHistory history;
  RecordSession session(&service, &device, RecordSessionConfig{}, &history);
  ASSERT_TRUE(session.Connect().ok());
  EXPECT_EQ(session.channel().stats().blocking_rtts, 2u);
}

TEST(CloudIsolation, VmImagesPerFamilyHaveDistinctMeasurements) {
  CloudService service;
  VmImage bifrost = service.SelectImage(SkuId::kMaliG71Mp8).value();
  VmImage gen2 = service.SelectImage(SkuId::kMaliG76Mp10).value();
  EXPECT_NE(bifrost.measurement, gen2.measurement);
  // Clients of the same family attest the same image.
  EXPECT_EQ(service.SelectImage(SkuId::kMaliG71Mp2).value().name,
            bifrost.name);
}

}  // namespace
}  // namespace grt
