// Per-layer recording granularity tests (Fig. 2): segments replay in layer
// order with state flowing between them, and the sequence validates.
#include <gtest/gtest.h>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/ml/reference.h"
#include "src/record/layered.h"

namespace grt {
namespace {

struct LayeredRun {
  std::vector<Bytes> wires;
  Bytes key;
};

Result<LayeredRun> RecordLayered(ClientDevice* device, const NetworkDef& net) {
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, device, config, &history);
  GRT_RETURN_IF_ERROR(session.Connect());
  GRT_ASSIGN_OR_RETURN(std::vector<Bytes> wires,
                       session.RecordWorkloadLayered(net, /*nonce=*/5));
  GRT_RETURN_IF_ERROR(session.shim().last_error());
  return LayeredRun{std::move(wires), session.key()->key()};
}

class LayeredTest : public ::testing::Test {
 protected:
  NetworkDef net_ = BuildMnist();
};

TEST_F(LayeredTest, OneRecordingPerLayerPlusInit) {
  ClientDevice device(SkuId::kMaliG71Mp8, 101);
  auto run = RecordLayered(&device, net_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Segment 0 (driver init + setup) + one per layer.
  EXPECT_EQ(run->wires.size(),
            static_cast<size_t>(net_.layer_count()) + 1);
}

TEST_F(LayeredTest, SegmentsReplayInOrderToReference) {
  ClientDevice device(SkuId::kMaliG71Mp8, 101);
  auto run = RecordLayered(&device, net_);
  ASSERT_TRUE(run.ok());

  LayeredReplayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                           &device.timeline());
  ASSERT_TRUE(replayer.LoadSigned(run->wires, run->key).ok());
  for (const TensorDef& t : net_.tensors) {
    if (t.kind == TensorKind::kParam) {
      ASSERT_TRUE(
          replayer.StageTensor(t.name, GenerateParams(net_.name, t, 7)).ok());
    }
  }
  std::vector<float> input = GenerateInput(net_, 31);
  ASSERT_TRUE(replayer.StageTensor("input", input).ok());

  auto report = replayer.ReplayAll();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto out = replayer.ReadTensor(net_.output_tensor);
  auto ref = RunReference(net_, input, 7);
  ASSERT_TRUE(out.ok() && ref.ok());
  EXPECT_LT(MaxAbsDiff(*out, *ref), 1e-4f);
}

TEST_F(LayeredTest, SuffixReplayRecomputesTail) {
  // Composability: after a full replay, re-running the classifier suffix
  // (the final layers) on the persisted hardware/memory state reproduces
  // the same output — no full-network replay needed.
  ClientDevice device(SkuId::kMaliG71Mp8, 103);
  auto run = RecordLayered(&device, net_);
  ASSERT_TRUE(run.ok());

  LayeredReplayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                           &device.timeline());
  ASSERT_TRUE(replayer.LoadSigned(run->wires, run->key).ok());
  for (const TensorDef& t : net_.tensors) {
    if (t.kind == TensorKind::kParam) {
      ASSERT_TRUE(
          replayer.StageTensor(t.name, GenerateParams(net_.name, t, 7)).ok());
    }
  }
  std::vector<float> input = GenerateInput(net_, 32);
  ASSERT_TRUE(replayer.StageTensor("input", input).ok());
  // Keep the hardware/memory state alive for the follow-up partial replay.
  ASSERT_TRUE(replayer.ReplayAll(0, /*scrub_after_last=*/false).ok());
  auto full = replayer.ReadTensor(net_.output_tensor);
  ASSERT_TRUE(full.ok());

  // Re-run only the last two segments (softmax + final fc tail).
  auto suffix =
      replayer.ReplayAll(/*first_segment=*/replayer.segment_count() - 2);
  ASSERT_TRUE(suffix.ok()) << suffix.status().ToString();
  auto again = replayer.ReadTensor(net_.output_tensor);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*full, *again);  // bit-exact
}

TEST_F(LayeredTest, ShuffledSegmentsRejected) {
  ClientDevice device(SkuId::kMaliG71Mp8, 107);
  auto run = RecordLayered(&device, net_);
  ASSERT_TRUE(run.ok());
  std::vector<Bytes> shuffled = run->wires;
  std::swap(shuffled[1], shuffled[2]);
  LayeredReplayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                           &device.timeline());
  Status s = replayer.LoadSigned(shuffled, run->key);
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
}

TEST_F(LayeredTest, MixedRunSegmentsRejected) {
  ClientDevice device(SkuId::kMaliG71Mp8, 109);
  auto run_a = RecordLayered(&device, net_);
  ASSERT_TRUE(run_a.ok());
  // A second record run has a different nonce; splicing its segments into
  // the first run's sequence must fail.
  CloudService service;
  SpeculationHistory history;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  RecordSession session(&service, &device, config, &history);
  ASSERT_TRUE(session.Connect().ok());
  auto run_b = session.RecordWorkloadLayered(net_, /*nonce=*/6);
  ASSERT_TRUE(run_b.ok());

  std::vector<Recording> mixed;
  for (size_t i = 0; i < run_a->wires.size(); ++i) {
    const Bytes& wire = i == 2 ? run_b.value()[i] : run_a->wires[i];
    const Bytes& key = i == 2 ? session.key()->key() : run_a->key;
    auto rec = Recording::ParseSigned(wire, key);
    ASSERT_TRUE(rec.ok());
    mixed.push_back(std::move(rec.value()));
  }
  LayeredReplayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                           &device.timeline());
  EXPECT_EQ(replayer.Load(std::move(mixed)).code(),
            StatusCode::kIntegrityViolation);
}

}  // namespace
}  // namespace grt
