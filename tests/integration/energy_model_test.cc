// Energy-model integration checks: Fig. 9's claims hold structurally —
// record energy tracks recording delay and radio airtime; replay energy is
// orders of magnitude smaller; OursMDS always beats Naive.
#include <gtest/gtest.h>

#include "src/harness/energy.h"
#include "src/harness/experiment.h"

namespace grt {
namespace {

TEST(EnergyModel, MdsBeatsNaiveOnEveryAxis) {
  NetworkDef net = BuildMnist();
  PowerModel power;
  double joules[2];
  int i = 0;
  for (const char* variant : {"Naive", "OursMDS"}) {
    ClientDevice device(SkuId::kMaliG71Mp8, 157);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, net, variant, WifiConditions(),
                              &history, i == 1 ? 1 : 0);
    ASSERT_TRUE(m.ok());
    EnergyReport e =
        RecordEnergy(power, m->client_delay, m->client_airtime, m->gpu_busy);
    joules[i++] = e.total_j();
  }
  // Paper: 84-99% reduction. Require at least 60% here.
  EXPECT_LT(joules[1], joules[0] * 0.4);
}

TEST(EnergyModel, ReplayEnergyOrdersOfMagnitudeBelowRecording) {
  NetworkDef net = BuildMnist();
  PowerModel power;
  ClientDevice device(SkuId::kMaliG71Mp8, 163);
  SpeculationHistory history;
  auto m = RunRecordVariant(&device, net, "OursMDS", WifiConditions(),
                            &history, 1);
  ASSERT_TRUE(m.ok());
  EnergyReport record =
      RecordEnergy(power, m->client_delay, m->client_airtime, m->gpu_busy);

  auto r = MeasureNativeVsReplay(SkuId::kMaliG71Mp8, net, 3, 4);
  ASSERT_TRUE(r.ok());
  EnergyReport replay =
      ReplayEnergy(power, r->replay_delay, r->replay_gpu_busy);
  EXPECT_LT(replay.total_j() * 100.0, record.total_j());
}

TEST(EnergyModel, CellularCostsMoreThanWifi) {
  NetworkDef net = BuildMnist();
  PowerModel power;
  double joules[2];
  int i = 0;
  for (NetworkConditions cond : {WifiConditions(), CellularConditions()}) {
    ClientDevice device(SkuId::kMaliG71Mp8, 167);
    SpeculationHistory history;
    auto m = RunRecordVariant(&device, net, "OursMDS", cond, &history, 1);
    ASSERT_TRUE(m.ok());
    joules[i++] = RecordEnergy(power, m->client_delay, m->client_airtime,
                               m->gpu_busy)
                      .total_j();
  }
  EXPECT_GT(joules[1], joules[0]);  // longer session -> more energy
}

}  // namespace
}  // namespace grt
