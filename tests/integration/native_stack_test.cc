// End-to-end smoke tests of the substrate: the full GPU stack (driver +
// runtime + ML framework) running natively against the simulated GPU, and
// the local record->replay pipeline (the GR baseline of §2.3).
#include <gtest/gtest.h>

#include "src/harness/rig.h"
#include "src/ml/network.h"
#include "src/ml/reference.h"
#include "src/record/recorder.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

TEST(NativeStack, BringUpProbesCorrectSku) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  NativeStack stack(&device);
  ASSERT_TRUE(stack.BringUp().ok());
  EXPECT_EQ(stack.driver().sku().id, SkuId::kMaliG71Mp8);
  EXPECT_EQ(stack.driver().sku().core_count(), 8);
}

TEST(NativeStack, MnistMatchesCpuReference) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  NativeStack stack(&device);
  ASSERT_TRUE(stack.BringUp().ok());

  NetworkDef net = BuildMnist();
  NnRunner runner(net, &stack.runtime());
  ASSERT_TRUE(runner.Setup(/*zero_params=*/false, /*param_seed=*/7).ok());

  std::vector<float> input = GenerateInput(net, 42);
  ASSERT_TRUE(runner.SetInput(input).ok());
  auto gpu_out = runner.Run();
  ASSERT_TRUE(gpu_out.ok()) << gpu_out.status().ToString();

  auto ref_out = RunReference(net, input, 7);
  ASSERT_TRUE(ref_out.ok());
  EXPECT_EQ(gpu_out->size(), ref_out->size());
  EXPECT_LT(MaxAbsDiff(*gpu_out, *ref_out), 1e-4f);
}

TEST(NativeStack, RecordThenReplayReproducesComputation) {
  // Record on a "developer machine" with zeroed params/input (the dry-run
  // content), then replay in the TEE with real params + input and check
  // the output against the CPU reference.
  ClientDevice device(SkuId::kMaliG71Mp8, /*nondet_seed=*/11);
  NetworkDef net = BuildMnist();
  Recording recording;
  {
    NativeStack stack(&device);
    Recorder recorder(&stack.driver(), &device.mem());
    // Recording covers the driver's whole hardware session, init included:
    // the replayer reproduces reset/power/mask setup from the log.
    stack.bus().SetObserver(&recorder);
    ASSERT_TRUE(stack.BringUp().ok());

    NnRunner runner(net, &stack.runtime());
    ASSERT_TRUE(runner.Setup(/*zero_params=*/true).ok());
    auto dry_out = runner.Run();
    ASSERT_TRUE(dry_out.ok()) << dry_out.status().ToString();
    recorder.SnapshotMemory();
    stack.bus().SetObserver(nullptr);

    std::map<std::string, TensorBinding> bindings;
    for (const TensorDef& t : net.tensors) {
      if (t.kind == TensorKind::kActivation) {
        continue;
      }
      auto binding = MakeBinding(stack.driver(),
                                 runner.buffers().at(t.name).va, t.n_floats,
                                 t.kind != TensorKind::kOutput);
      ASSERT_TRUE(binding.ok());
      bindings[t.name] = std::move(binding.value());
    }
    auto rec = recorder.Finish(net.name, device.sku().id, bindings, 99);
    ASSERT_TRUE(rec.ok());
    recording = std::move(rec.value());
  }

  // Sign + verify round trip.
  Bytes key(32, 0x42);
  Bytes wire = recording.SerializeSigned(key);

  // Replay on the same device in the TEE.
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  fprintf(stderr, "DBG test-tu sizeof=%zu dcount=%zu addr=%p\n",
          sizeof(Replayer), replayer.dirty_pages().Count(), (void*)&replayer);
  ASSERT_TRUE(replayer.LoadSigned(wire, key).ok());

  std::vector<float> input = GenerateInput(net, 1234);
  ASSERT_TRUE(replayer.StageTensor("input", input).ok());
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      ASSERT_TRUE(
          replayer.StageTensor(t.name, GenerateParams(net.name, t, 7)).ok());
    }
  }

  auto report = replayer.Replay();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->entries_replayed, 100u);

  auto out = replayer.ReadTensor(net.output_tensor);
  ASSERT_TRUE(out.ok());
  auto ref_out = RunReference(net, input, 7);
  ASSERT_TRUE(ref_out.ok());
  EXPECT_LT(MaxAbsDiff(*out, *ref_out), 1e-4f);
}

TEST(NativeStack, TamperedRecordingIsRejected) {
  ClientDevice device(SkuId::kMaliG71Mp8);
  Recording rec;
  rec.header.workload = "x";
  rec.header.sku = SkuId::kMaliG71Mp8;
  Bytes key(32, 1);
  Bytes wire = rec.SerializeSigned(key);
  wire[wire.size() / 2] ^= 0xFF;
  Replayer replayer(&device.gpu(), &device.tzasc(), &device.mem(),
                    &device.timeline());
  Status s = replayer.LoadSigned(wire, key);
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
}

}  // namespace
}  // namespace grt
