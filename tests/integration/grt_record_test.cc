// End-to-end GR-T tests: cloud dry run over a simulated wireless network
// against the client GPU, signed recording download, TEE replay on real
// inputs, and the relationships the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "src/cloud/session.h"
#include "src/ml/network.h"
#include "src/ml/reference.h"
#include "src/record/replayer.h"

namespace grt {
namespace {

struct RecordedRun {
  Bytes wire;
  Bytes key;
  RecordOutcome outcome;
  ShimStats shim_stats;
  ChannelStats channel_stats;
};

Result<RecordedRun> RecordOverNetwork(ClientDevice* device,
                                      const NetworkDef& net,
                                      ShimConfig shim_config,
                                      SpeculationHistory* history,
                                      NetworkConditions conditions) {
  CloudService service;
  RecordSessionConfig config;
  config.network = conditions;
  config.shim = shim_config;
  RecordSession session(&service, device, config, history);
  GRT_RETURN_IF_ERROR(session.Connect());
  GRT_ASSIGN_OR_RETURN(RecordOutcome outcome,
                       session.RecordWorkload(net, /*nonce=*/7));
  RecordedRun run;
  run.wire = outcome.signed_recording;
  run.key = session.key()->key();
  run.outcome = std::move(outcome);
  run.shim_stats = session.shim().stats();
  run.channel_stats = session.channel().stats();
  GRT_RETURN_IF_ERROR(session.shim().last_error());
  return run;
}

Status ReplayAndCheck(ClientDevice* device, const NetworkDef& net,
                      const RecordedRun& run, uint64_t input_seed) {
  Replayer replayer(&device->gpu(), &device->tzasc(), &device->mem(),
                    &device->timeline());
  GRT_RETURN_IF_ERROR(replayer.LoadSigned(run.wire, run.key));

  std::vector<float> input = GenerateInput(net, input_seed);
  GRT_RETURN_IF_ERROR(replayer.StageTensor("input", input));
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kParam) {
      GRT_RETURN_IF_ERROR(
          replayer.StageTensor(t.name, GenerateParams(net.name, t, 7)));
    }
  }
  GRT_ASSIGN_OR_RETURN(ReplayReport report, replayer.Replay());
  (void)report;
  GRT_ASSIGN_OR_RETURN(std::vector<float> out,
                       replayer.ReadTensor(net.output_tensor));
  GRT_ASSIGN_OR_RETURN(std::vector<float> ref, RunReference(net, input, 7));
  if (MaxAbsDiff(out, ref) > 1e-4f) {
    return Internal("replayed output diverges from CPU reference");
  }
  return OkStatus();
}

class GrtRecordTest : public ::testing::Test {
 protected:
  NetworkDef net_ = BuildMnist();
};

TEST_F(GrtRecordTest, NaiveVariantRecordsAndReplays) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory history;
  auto run = RecordOverNetwork(&device, net_, ShimConfig::Naive(), &history,
                               WifiConditions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(ReplayAndCheck(&device, net_, *run, 99).ok());
}

TEST_F(GrtRecordTest, OursMDSVariantRecordsAndReplays) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory history;
  auto run = RecordOverNetwork(&device, net_, ShimConfig::OursMDS(), &history,
                               WifiConditions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Status replay = ReplayAndCheck(&device, net_, *run, 1234);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
}

TEST_F(GrtRecordTest, DeferralReducesBlockingRtts) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory h1, h2;
  auto m = RecordOverNetwork(&device, net_, ShimConfig::OursM(), &h1,
                             WifiConditions());
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto md = RecordOverNetwork(&device, net_, ShimConfig::OursMD(), &h2,
                              WifiConditions());
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  // Table 1: deferral cuts blocking round trips substantially (~73%).
  EXPECT_LT(md->channel_stats.blocking_rtts,
            m->channel_stats.blocking_rtts / 2);
  // Each commit encloses multiple accesses on average.
  EXPECT_GT(static_cast<double>(md->shim_stats.accesses_committed) /
                static_cast<double>(md->shim_stats.commits),
            2.0);
}

TEST_F(GrtRecordTest, SpeculationReducesBlockingRttsFurther) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  // Warm shared history, as the paper does across benchmarks (§7.3).
  SpeculationHistory history;
  auto warm = RecordOverNetwork(&device, net_, ShimConfig::OursMDS(),
                                &history, WifiConditions());
  ASSERT_TRUE(warm.ok());
  auto mds = RecordOverNetwork(&device, net_, ShimConfig::OursMDS(), &history,
                               WifiConditions());
  ASSERT_TRUE(mds.ok());
  SpeculationHistory h2;
  auto md = RecordOverNetwork(&device, net_, ShimConfig::OursMD(), &h2,
                              WifiConditions());
  ASSERT_TRUE(md.ok());
  EXPECT_LT(mds->channel_stats.blocking_rtts,
            md->channel_stats.blocking_rtts / 3);
  // Most commits satisfy the speculation criteria once history is warm
  // (§7.3: 95% of commits).
  // (Our driver issues proportionally more nondeterministic commits per
  // job than the paper's — 3/job vs ~1 — so the asymptotic rate is ~0.8
  // here vs the paper's 0.95; see EXPERIMENTS.md.)
  double spec_rate = static_cast<double>(mds->shim_stats.spec_commits +
                                         mds->shim_stats.writeonly_commits) /
                     static_cast<double>(mds->shim_stats.commits);
  EXPECT_GT(spec_rate, 0.70);
  EXPECT_EQ(mds->shim_stats.mispredictions, 0u);
}

TEST_F(GrtRecordTest, MetaOnlySyncCutsTraffic) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory h1, h2;
  auto naive = RecordOverNetwork(&device, net_, ShimConfig::Naive(), &h1,
                                 WifiConditions());
  ASSERT_TRUE(naive.ok());
  auto m = RecordOverNetwork(&device, net_, ShimConfig::OursM(), &h2,
                             WifiConditions());
  ASSERT_TRUE(m.ok());
  // Table 1 MemSync column: 72%-99% traffic reduction.
  EXPECT_LT(m->channel_stats.total_bytes(),
            naive->channel_stats.total_bytes() / 3);
}

TEST_F(GrtRecordTest, RecordingDelayOrderingMatchesFig7) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory h_naive, h_m, h_md, h_mds;
  auto naive = RecordOverNetwork(&device, net_, ShimConfig::Naive(), &h_naive,
                                 WifiConditions());
  auto m = RecordOverNetwork(&device, net_, ShimConfig::OursM(), &h_m,
                             WifiConditions());
  auto md = RecordOverNetwork(&device, net_, ShimConfig::OursMD(), &h_md,
                              WifiConditions());
  // Warm the speculation history first (cross-run retention).
  auto mds_warm = RecordOverNetwork(&device, net_, ShimConfig::OursMDS(),
                                    &h_mds, WifiConditions());
  auto mds = RecordOverNetwork(&device, net_, ShimConfig::OursMDS(), &h_mds,
                               WifiConditions());
  ASSERT_TRUE(naive.ok() && m.ok() && md.ok() && mds_warm.ok() && mds.ok());
  EXPECT_LT(m->outcome.client_delay, naive->outcome.client_delay);
  EXPECT_LT(md->outcome.client_delay, m->outcome.client_delay);
  EXPECT_LT(mds->outcome.client_delay, md->outcome.client_delay);
  // Order-of-magnitude improvement end to end (paper: up to 95%).
  EXPECT_LT(ToSeconds(mds->outcome.client_delay),
            0.3 * ToSeconds(naive->outcome.client_delay));
}

TEST_F(GrtRecordTest, InjectedMispredictionIsDetectedAndRecovered) {
  ClientDevice device(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory history;
  CloudService service;
  RecordSessionConfig config;
  config.shim = ShimConfig::OursMDS();
  // Warm history so speculation actually fires.
  {
    RecordSession warm(&service, &device, config, &history);
    ASSERT_TRUE(warm.Connect().ok());
    ASSERT_TRUE(warm.RecordWorkload(net_, 1).ok());
  }
  RecordSession session(&service, &device, config, &history);
  ASSERT_TRUE(session.Connect().ok());
  session.shim().InjectMispredictionOnce();
  auto outcome = session.RecordWorkload(net_, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(session.shim().stats().mispredictions, 1u);
  EXPECT_GT(session.shim().stats().rollback_time, 0);
  // The injected corruption never matched a genuine wrong prediction, so
  // the run completes cleanly after rollback.
  EXPECT_TRUE(session.shim().last_error().ok())
      << session.shim().last_error().ToString();
}

TEST_F(GrtRecordTest, CrossSkuReplayIsRejected) {
  ClientDevice mp8(SkuId::kMaliG71Mp8, 3);
  SpeculationHistory history;
  auto run = RecordOverNetwork(&mp8, net_, ShimConfig::OursMDS(), &history,
                               WifiConditions());
  ASSERT_TRUE(run.ok());

  ClientDevice mp4(SkuId::kMaliG71Mp4, 3);
  Replayer replayer(&mp4.gpu(), &mp4.tzasc(), &mp4.mem(), &mp4.timeline());
  Status s = replayer.LoadSigned(run->wire, run->key);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace grt
