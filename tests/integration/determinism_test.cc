// Satellite: determinism regression. The same workload recorded twice with
// the same seeds must produce bit-identical recordings (compared by
// SHA-256) under every network condition — the property the chaos suite's
// baseline comparison and the store's dedup/rollback logic both rest on.
#include <gtest/gtest.h>

#include "src/harness/chaos.h"
#include "src/ml/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace grt {
namespace {

constexpr uint64_t kNondetSeed = 11;
constexpr uint64_t kNonce = 21;

class DeterminismTest : public ::testing::Test {
 protected:
  void ExpectIdenticalRuns(NetworkConditions conditions) {
    auto a = RunChaosSession(net_, SkuId::kMaliG71Mp8, conditions,
                             FaultPlan::None(), kNondetSeed, kNonce);
    auto b = RunChaosSession(net_, SkuId::kMaliG71Mp8, conditions,
                             FaultPlan::None(), kNondetSeed, kNonce);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->body_digest, b->body_digest);
    // Same key derivation, same signature: the downloaded wire bytes are
    // identical too (no re-key happened in a fault-free run).
    EXPECT_EQ(a->signed_wire, b->signed_wire);
    EXPECT_EQ(a->outcome.client_delay, b->outcome.client_delay);
    EXPECT_EQ(a->outcome.log_entries, b->outcome.log_entries);
  }

  NetworkDef net_ = BuildMnist();
};

TEST_F(DeterminismTest, WifiRecordingsAreByteStable) {
  ExpectIdenticalRuns(WifiConditions());
}

TEST_F(DeterminismTest, CellularRecordingsAreByteStable) {
  ExpectIdenticalRuns(CellularConditions());
}

TEST_F(DeterminismTest, LoopbackRecordingsAreByteStable) {
  ExpectIdenticalRuns(LoopbackConditions());
}

TEST_F(DeterminismTest, InstrumentationDoesNotPerturbRecordingBytes) {
  // The observability layer (ISSUE 5) reads wall-clock time and bumps
  // atomics — it must never touch the virtual timelines or the recorded
  // log. A run with metrics + tracing fully enabled is byte-identical to
  // a run with them off.
  auto off = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(),
                             FaultPlan::None(), kNondetSeed, kNonce);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  obs::SetEnabled(true);
  obs::TraceCollector::Global().Start();
  auto on = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(),
                            FaultPlan::None(), kNondetSeed, kNonce);
  obs::TraceCollector::Global().Stop();
  obs::SetEnabled(false);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_EQ(off->body_digest, on->body_digest);
  EXPECT_EQ(off->signed_wire, on->signed_wire);
  EXPECT_EQ(off->outcome.client_delay, on->outcome.client_delay);

  // And the instrumented run did actually instrument: the registry saw
  // shim/net traffic while it was enabled.
#if !defined(GRT_OBS_COMPILED_OUT)
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snap.counter("shim.commits"), 0u);
  EXPECT_GT(snap.counter("net.messages"), 0u);
#endif
}

TEST_F(DeterminismTest, DistinctNondeterminismSeedsStillAgree) {
  // Nondeterministic register values (timestamps, cycle counters, flush
  // ids) are canonicalized out of the log, so even *different* hardware
  // nondeterminism seeds must leave the recording bytes unchanged.
  auto a = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(),
                           FaultPlan::None(), /*nondet_seed=*/1, kNonce);
  auto b = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(),
                           FaultPlan::None(), /*nondet_seed=*/999, kNonce);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->body_digest, b->body_digest);
}

}  // namespace
}  // namespace grt
