// Chaos suite (tentpole): full record sessions under seeded channel-fault
// schedules. The invariant under test: drops, corruptions, duplicates,
// latency spikes, and hard disconnects may cost time, but may never change
// a byte of the recording — every chaos run must produce a recording body
// identical to the fault-free baseline, verifier-clean, and replayable to
// reference-correct outputs.
#include <gtest/gtest.h>

#include <vector>

#include "src/harness/chaos.h"
#include "src/ml/network.h"

namespace grt {
namespace {

constexpr uint64_t kNondetSeed = 3;
constexpr uint64_t kNonce = 7;
constexpr int kSchedules = 12;

class ChaosTest : public ::testing::Test {
 protected:
  ChaosRun Baseline(NetworkConditions conditions) {
    auto run = RunChaosSession(net_, SkuId::kMaliG71Mp8, conditions,
                               FaultPlan::None(), kNondetSeed, kNonce);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return *run;
  }

  // Runs one seeded schedule and checks every per-run invariant against
  // the fault-free baseline.
  ChaosRun CheckSchedule(uint64_t seed, NetworkConditions conditions,
                         const ChaosRun& baseline) {
    FaultPlan plan = FaultPlan::FromSeed(seed);
    auto run = RunChaosSession(net_, SkuId::kMaliG71Mp8, conditions, plan,
                               kNondetSeed, kNonce);
    EXPECT_TRUE(run.ok()) << "schedule " << seed << ": "
                          << run.status().ToString();
    if (!run.ok()) {
      return ChaosRun{};
    }

    // The whole point: byte-identical recording despite the faults.
    EXPECT_EQ(run->body_digest, baseline.body_digest)
        << "schedule " << seed << " changed the recording bytes";
    EXPECT_EQ(run->recording_body, baseline.recording_body);

    // The schedule must actually have exercised the machinery.
    EXPECT_GT(run->fault_stats.injected(), 0u)
        << "schedule " << seed << " injected nothing";

    // Stats plumbing: every injected fault class shows up in the layer
    // that absorbs it.
    if (run->fault_stats.drops + run->fault_stats.corruptions > 0) {
      EXPECT_GT(run->link_stats.retransmits, 0u);
      EXPECT_GT(run->channel_stats.retransmits, 0u);
    }
    if (run->fault_stats.corruptions > 0) {
      EXPECT_GT(run->link_stats.mac_rejects, 0u);
    }
    EXPECT_EQ(run->session_stats.reconnects, run->fault_stats.disconnects);
    EXPECT_EQ(run->link_stats.reconnects, run->fault_stats.disconnects);
    EXPECT_EQ(run->session_stats.recovery_replays,
              run->fault_stats.disconnects);
    EXPECT_EQ(run->session_stats.rekeys, 1 + run->fault_stats.disconnects);
    // Faults only ever cost time.
    EXPECT_GE(run->outcome.client_delay, baseline.outcome.client_delay);
    // Recovery never surfaces as a driver-visible error or misprediction.
    EXPECT_EQ(run->shim_stats.mispredictions, 0u);
    return *run;
  }

  NetworkDef net_ = BuildMnist();
};

TEST_F(ChaosTest, TwelveSeededSchedulesOverWifiAreByteIdentical) {
  ChaosRun baseline = Baseline(WifiConditions());
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    CheckSchedule(seed, WifiConditions(), baseline);
  }
}

TEST_F(ChaosTest, TwelveSeededSchedulesOverCellularAreByteIdentical) {
  ChaosRun baseline = Baseline(CellularConditions());
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    CheckSchedule(seed, CellularConditions(), baseline);
  }
}

TEST_F(ChaosTest, ChaosRecordingsReplayToReferenceOutputs) {
  ChaosRun baseline = Baseline(WifiConditions());
  ChaosRun faulted = CheckSchedule(5, WifiConditions(), baseline);
  ASSERT_FALSE(faulted.signed_wire.empty());
  Status replay =
      ReplayChaosRunToReference(net_, SkuId::kMaliG71Mp8, faulted, 1234);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
}

TEST_F(ChaosTest, RepeatingAScheduleInProcessIsFullyDeterministic) {
  FaultPlan plan = FaultPlan::FromSeed(9);
  auto a = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(), plan,
                           kNondetSeed, kNonce);
  auto b = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(), plan,
                           kNondetSeed, kNonce);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->body_digest, b->body_digest);
  EXPECT_EQ(a->outcome.client_delay, b->outcome.client_delay);
  EXPECT_EQ(a->link_stats.retransmits, b->link_stats.retransmits);
  EXPECT_EQ(a->link_stats.dup_drops, b->link_stats.dup_drops);
  EXPECT_EQ(a->fault_stats.transmissions, b->fault_stats.transmissions);
  EXPECT_EQ(a->session_stats.reconnects, b->session_stats.reconnects);
}

TEST_F(ChaosTest, HardDisconnectResumesViaReplayAndRekeys) {
  ChaosRun baseline = Baseline(WifiConditions());
  FaultPlan plan;
  plan.seed = 42;
  plan.disconnect_at_tx = {25};
  auto run = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(), plan,
                             kNondetSeed, kNonce);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->fault_stats.disconnects, 1u);
  EXPECT_EQ(run->session_stats.reconnects, 1u);
  EXPECT_EQ(run->session_stats.rekeys, 2u);
  EXPECT_EQ(run->session_stats.recovery_replays, 1u);
  EXPECT_GT(run->session_stats.reconnect_time, 0);
  EXPECT_EQ(run->body_digest, baseline.body_digest);
}

TEST_F(ChaosTest, CorruptionOnlyPlanIsAbsorbedByMacAndRetransmit) {
  ChaosRun baseline = Baseline(WifiConditions());
  FaultPlan plan;
  plan.seed = 77;
  plan.corrupt_prob = 0.25;
  auto run = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(), plan,
                             kNondetSeed, kNonce);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->fault_stats.corruptions, 0u);
  EXPECT_GT(run->link_stats.mac_rejects, 0u);
  EXPECT_GT(run->link_stats.retransmits, 0u);
  EXPECT_EQ(run->body_digest, baseline.body_digest);
}

TEST_F(ChaosTest, DuplicateFramesAreExecutedExactlyOnce) {
  ChaosRun baseline = Baseline(WifiConditions());
  FaultPlan plan;
  plan.seed = 101;
  plan.duplicate_prob = 0.30;
  auto run = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(), plan,
                             kNondetSeed, kNonce);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->fault_stats.duplicates, 0u);
  EXPECT_GT(run->link_stats.dup_drops, 0u);
  EXPECT_GT(run->channel_stats.dup_drops, 0u);
  // Exactly-once at every state-mutating layer: a double-executed commit
  // would desync the GPU and show up as a body mismatch (or shim error).
  EXPECT_EQ(run->body_digest, baseline.body_digest);
}

TEST_F(ChaosTest, LatencySpikesOnlyCostTime) {
  ChaosRun baseline = Baseline(WifiConditions());
  FaultPlan plan;
  plan.seed = 55;
  plan.spike_prob = 0.20;
  plan.spike_latency = 80 * kMillisecond;
  auto run = RunChaosSession(net_, SkuId::kMaliG71Mp8, WifiConditions(), plan,
                             kNondetSeed, kNonce);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->fault_stats.spikes, 0u);
  EXPECT_GT(run->outcome.client_delay, baseline.outcome.client_delay);
  EXPECT_EQ(run->body_digest, baseline.body_digest);
}

}  // namespace
}  // namespace grt
