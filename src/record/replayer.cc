#include "src/record/replayer.h"

#include <chrono>
#include <cstring>

#include "src/analysis/planopt/planopt.h"
#include "src/analysis/verifier.h"
#include "src/common/log.h"
#include "src/hw/regs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace grt {

namespace {

// One call per completed replay, regardless of path; gated on
// obs::Enabled() inside the macros, so the disabled path costs a handful
// of relaxed loads.
// Job-slot register writes form the dispatch stage of the per-stage
// breakdown; all other MMIO traffic is reg-io.
bool IsDispatchReg(uint32_t reg) {
  return reg >= kJobSlotBase &&
         reg < kJobSlotBase + static_cast<uint32_t>(kMaxJobSlots) *
                                  kJobSlotStride;
}

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CountReplayReport(const ReplayReport& report) {
  GRT_OBS_COUNT("replay.ops_executed", report.entries_replayed);
  GRT_OBS_COUNT("replay.pages_applied", report.pages_applied);
  GRT_OBS_COUNT("replay.pages_skipped_clean", report.pages_skipped_clean);
  GRT_OBS_COUNT("replay.mem_bytes_applied", report.mem_bytes_applied);
  GRT_OBS_COUNT("replay.reads_verified", report.reads_verified);
  if (report.warm) {
    GRT_OBS_COUNT("replay.warm", 1);
  } else {
    GRT_OBS_COUNT("replay.cold", 1);
  }
  GRT_OBS_HIST("replay.delay_ns", report.delay);
}

}  // namespace

Replayer::~Replayer() {
  if (write_observer_id_ != 0) {
    mem_->RemoveWriteObserver(write_observer_id_);
  }
}

Status Replayer::LoadSigned(const Bytes& raw, const Bytes& signing_key) {
  GRT_ASSIGN_OR_RETURN(Recording rec, Recording::ParseSigned(raw, signing_key));
  return Load(std::move(rec));
}

Status Replayer::Load(Recording recording) {
  return LoadShared(std::make_shared<const Recording>(std::move(recording)));
}

Status Replayer::LoadShared(std::shared_ptr<const Recording> recording,
                            std::shared_ptr<const ReplayPlan> plan) {
  if (recording == nullptr) {
    return InvalidArgument("LoadShared with a null recording");
  }
  // SKU check: recordings are SKU-specific; even subtle differences break
  // replay (§2.4), so refuse early and explicitly.
  if (recording->header.sku != gpu_->sku().id) {
    return FailedPrecondition(
        "recording was produced for a different GPU SKU");
  }
  // Static admission gate: a valid signature proves provenance, not
  // well-formedness. Run the analysis passes before the log can reach
  // the device. This happens exactly once per Load — every subsequent
  // Replay() trusts the cached verdict.
  if (config_.static_verify) {
    GRT_RETURN_IF_ERROR(VerifyRecording(*recording));
  }
  ResetReplayState();
  recording_ = std::move(recording);
  if (plan != nullptr) {
    plan_ = std::move(plan);
  } else if (config_.use_plan) {
    plan_ = std::make_shared<const ReplayPlan>(CompileReplayPlan(*recording_));
  } else {
    plan_.reset();
  }
  // Defense in depth: a warm program arriving from outside (e.g. the
  // serving engine's shared plan cache) is re-checked against its
  // provenance before it can ever drive this device — the attach-time
  // check does not travel with trust.
  if (plan_ != nullptr && plan_->warm != nullptr) {
    GRT_RETURN_IF_ERROR(CheckWarmProgram(*plan_, *plan_->warm, gpu_->sku()));
  }
  loaded_ = true;
  return OkStatus();
}

void Replayer::ResetReplayState() {
  if (write_observer_id_ != 0) {
    mem_->RemoveWriteObserver(write_observer_id_);
    write_observer_id_ = 0;
  }
  observer_active_ = false;
  have_image_state_ = false;
  warm_armed_ = false;
  dirty_pages_.Clear();
  staged_.clear();
  injected_pages_.clear();
  injected_pages_valid_ = false;
  observed_.Clear();
}

Status Replayer::StageTensor(const std::string& name,
                             const std::vector<float>& data) {
  if (!loaded_) {
    return FailedPrecondition("StageTensor before Load");
  }
  auto it = recording_->bindings.find(name);
  if (it == recording_->bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  if (!it->second.writable_at_replay) {
    return PermissionDenied("tensor '" + name + "' is not injectable");
  }
  if (data.size() != it->second.n_floats) {
    return InvalidArgument("tensor '" + name + "' size mismatch");
  }
  // Overwrite in place: re-staging (the per-inference input refresh) reuses
  // the existing buffer instead of re-inserting into the map. Only a
  // first-time staging changes the injected-page set.
  auto [slot, inserted] = staged_.try_emplace(name);
  if (inserted) {
    injected_pages_valid_ = false;
  }
  slot->second.assign(data.begin(), data.end());
  return OkStatus();
}

const std::unordered_set<uint64_t>& Replayer::InjectedPages() {
  // Pages owned by injected tensors are skipped when applying recorded
  // images: the recorded (dry-run) content would clobber real data.
  if (!injected_pages_valid_) {
    injected_pages_.clear();
    for (const auto& [name, data] : staged_) {
      for (uint64_t pa : recording_->bindings.at(name).pages) {
        injected_pages_.insert(pa);
      }
    }
    injected_pages_valid_ = true;
  }
  return injected_pages_;
}

Status Replayer::InjectStaged() {
  for (const auto& [name, data] : staged_) {
    const TensorBinding& b = recording_->bindings.at(name);
    uint64_t bytes = data.size() * sizeof(float);
    const auto* src = reinterpret_cast<const uint8_t*>(data.data());
    uint64_t done = 0;
    size_t page_idx = 0;
    while (done < bytes) {
      if (page_idx >= b.pages.size()) {
        return Internal("binding page list too short");
      }
      uint64_t chunk = std::min<uint64_t>(bytes - done, kPageSize);
      GRT_RETURN_IF_ERROR(mem_->Write(b.pages[page_idx], src + done, chunk,
                                      MemAccessOrigin::kCpuSecureWorld));
      done += chunk;
      ++page_idx;
    }
  }
  return OkStatus();
}

Status Replayer::InjectStagedPlanned(ReplayReport* report) {
  (void)report;
  for (const auto& [name, data] : staged_) {
    auto it = plan_->patches.find(name);
    if (it == plan_->patches.end()) {
      return Internal("no patch-table entry for tensor '" + name + "'");
    }
    const TensorPatch& patch = it->second;
    if (!patch.complete) {
      return Internal("binding page list too short");
    }
    const auto* src = reinterpret_cast<const uint8_t*>(data.data());
    for (const PatchChunk& c : patch.chunks) {
      GRT_RETURN_IF_ERROR(mem_->Write(c.pa, src + c.src_offset, c.len,
                                      MemAccessOrigin::kCpuSecureWorld));
    }
  }
  return OkStatus();
}

Status Replayer::ApplyMemEntry(const LogEntry& e, ReplayReport* report) {
  const uint64_t w0 = WallNowNs();
  GRT_RETURN_IF_ERROR(mem_->Write(e.pa, e.data.data(), e.data.size(),
                                  MemAccessOrigin::kCpuSecureWorld));
  ++report->pages_applied;
  report->mem_bytes_applied += e.data.size();
  report->wall_page_apply_ns += WallNowNs() - w0;
  // CPU copy cost for the page.
  timeline_->Advance(static_cast<Duration>(e.data.size() / 8));  // ~8 B/ns
  return OkStatus();
}

Status Replayer::WaitIrqLines(uint8_t lines, uint8_t tolerated) {
  TimePoint deadline = timeline_->now() + config_.irq_timeout;
  for (;;) {
    uint8_t have = (gpu_->JobIrqAsserted() ? 1 : 0) |
                   (gpu_->GpuIrqAsserted() ? 2 : 0) |
                   (gpu_->MmuIrqAsserted() ? 4 : 0);
    if ((have & lines) == lines) {
      return OkStatus();
    }
    if ((have & ~(lines | tolerated)) != 0) {
      // An interrupt the recording did not expect (e.g. an MMU fault while
      // waiting for job completion): replay divergence.
      return IntegrityViolation("unexpected interrupt lines during replay");
    }
    TimePoint next = gpu_->NextEventTime();
    if (next == kNoEvent || next > deadline) {
      return IrqExpired("replay IRQ wait timed out (want=" +
                        std::to_string(lines) + " have=" +
                        std::to_string(have) + " no_event=" +
                        std::to_string(next == kNoEvent) + ")");
    }
    timeline_->AdvanceTo(next);
  }
}

Result<ReplayReport> Replayer::Replay() {
  if (!loaded_) {
    return FailedPrecondition("Replay before Load");
  }
  // The plan cannot reproduce an observed log (skipped entries are dropped
  // at compile time), so §3.4 log collection runs the interpreter.
  if (plan_ != nullptr && !config_.collect_observed) {
    return ReplayPlanned();
  }
  return ReplayInterpreted();
}

Result<ReplayReport> Replayer::ReplayInterpreted() {
  GRT_TRACE_SPAN("replay.interp", "replay");
  ReplayReport report;
  observed_.Clear();
  TimePoint start = timeline_->now();
  const uint64_t wall0 = WallNowNs();
  const uint64_t gpu_wall0 = gpu_->exec_wall_ns();

  // Lock the GPU into the TEE and scrub hardware state (§3.2).
  tzasc_->AssignGpu(World::kSecure);
  if (config_.scrub_before) {
    gpu_->HardReset();
  }

  const std::unordered_set<uint64_t>& injected_pages = InjectedPages();

  bool first_image_done = false;
  GRT_RETURN_IF_ERROR(InjectStaged());

  constexpr Duration kMmioCost = 200 * kNanosecond;
  for (const LogEntry& e : recording_->log.entries()) {
    ++report.entries_replayed;
    switch (e.op) {
      case LogOp::kMemPage: {
        if (injected_pages.count(e.pa) > 0) {
          break;  // superseded by injected tensor data
        }
        // After the initial image, only metastate pages are reapplied:
        // program-data pages mid-run reflect the dry run's (zero-input)
        // compute and must not overwrite real intermediate results.
        if (first_image_done && !e.metastate) {
          break;
        }
        TimePoint t0 = timeline_->now();
        GRT_RETURN_IF_ERROR(ApplyMemEntry(e, &report));
        report.stage_page_apply += timeline_->now() - t0;
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
      case LogOp::kRegWrite: {
        timeline_->Advance(kMmioCost);
        (IsDispatchReg(e.reg) ? report.stage_dispatch : report.stage_reg_io) +=
            kMmioCost;
        GRT_RETURN_IF_ERROR(
            tzasc_->WriteGpuRegister(World::kSecure, gpu_, e.reg, e.value));
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        if (!first_image_done && IsReplayJobStart(e)) {
          first_image_done = true;
        }
        break;
      }
      case LogOp::kRegRead: {
        timeline_->Advance(kMmioCost);
        report.stage_reg_io += kMmioCost;
        GRT_ASSIGN_OR_RETURN(
            uint32_t v, tzasc_->ReadGpuRegister(World::kSecure, gpu_, e.reg));
        if (config_.collect_observed) {
          LogEntry obs = e;
          obs.value = v;
          observed_.Add(std::move(obs));
        }
        if (config_.verify_reads && !IsNondeterministicRegister(e.reg)) {
          if (v != e.value) {
            return IntegrityViolation(
                std::string("replay divergence at register ") +
                RegisterName(e.reg) + ", entry " +
                std::to_string(report.entries_replayed) + ": got " +
                std::to_string(v) + " want " + std::to_string(e.value));
          }
          ++report.reads_verified;
        }
        break;
      }
      case LogOp::kPollWait: {
        bool satisfied = false;
        for (int i = 0; i < config_.poll_max_iters; ++i) {
          timeline_->Advance(kMmioCost);
          report.stage_reg_io += kMmioCost;
          GRT_ASSIGN_OR_RETURN(uint32_t v, tzasc_->ReadGpuRegister(
                                               World::kSecure, gpu_, e.reg));
          if ((v & e.mask) == e.expected) {
            satisfied = true;
            break;
          }
          // Between iterations, let the device make progress.
          TimePoint wait0 = timeline_->now();
          TimePoint next = gpu_->NextEventTime();
          if (next != kNoEvent) {
            timeline_->AdvanceTo(next);
          } else {
            timeline_->Advance(config_.poll_iter_delay);
          }
          report.stage_shader_exec += timeline_->now() - wait0;
        }
        if (!satisfied) {
          return PollExhausted("replay poll never satisfied at entry " +
                               std::to_string(report.entries_replayed));
        }
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
      case LogOp::kDelay: {
        timeline_->Advance(e.delay);
        report.stage_shader_exec += e.delay;
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
      case LogOp::kIrqWait: {
        TimePoint wait0 = timeline_->now();
        Status irq_status = WaitIrqLines(e.irq_lines);
        report.stage_shader_exec += timeline_->now() - wait0;
        if (!irq_status.ok()) {
          return Status(irq_status.code(),
                        irq_status.message() + " at entry " +
                            std::to_string(report.entries_replayed));
        }
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
    }
  }

  // Scrub and release (unless the caller resumes from this state).
  if (config_.scrub_after) {
    gpu_->HardReset();
    tzasc_->AssignGpu(World::kNormal);
  }

  report.delay = timeline_->now() - start;
  report.wall_ns = WallNowNs() - wall0;
  report.wall_shader_exec_ns = gpu_->exec_wall_ns() - gpu_wall0;
  CountReplayReport(report);
  return report;
}

Status Replayer::ApplyPlanImages(bool warm, ReplayReport* report) {
  const std::unordered_set<uint64_t>& injected = InjectedPages();
  // Re-establishing image content is not a clobber: suspend the observer
  // so an applied page comes out clean for the NEXT replay unless someone
  // actually writes it afterwards.
  observer_active_ = false;
  for (const PlanRegion& region : plan_->regions) {
    uint32_t run_start = 0;
    bool in_run = false;
    for (uint32_t i = 0; i <= region.n_pages; ++i) {
      bool apply = false;
      if (i < region.n_pages) {
        uint64_t pa = region.page_pa(i);
        if (injected.count(pa) > 0) {
          apply = false;  // superseded by injected tensor data
        } else if (warm && !dirty_pages_.Contains(pa)) {
          apply = false;  // provably still holds the image content
          ++report->pages_skipped_clean;
        } else {
          apply = true;
        }
      }
      if (apply && !in_run) {
        run_start = i;
        in_run = true;
      } else if (!apply && in_run) {
        uint64_t len = static_cast<uint64_t>(i - run_start) * kPageSize;
        GRT_RETURN_IF_ERROR(
            mem_->Write(region.page_pa(run_start),
                        region.image.data() +
                            static_cast<size_t>(run_start) * kPageSize,
                        len, MemAccessOrigin::kCpuSecureWorld));
        report->pages_applied += i - run_start;
        report->mem_bytes_applied += len;
        if (i - run_start >= 2) {
          report->mem_bytes_applied_fused += len;
        }
        timeline_->Advance(static_cast<Duration>(len / 8));  // ~8 B/ns
        in_run = false;
      }
    }
  }
  return OkStatus();
}

Result<ReplayReport> Replayer::ReplayPlanned() {
  ReplayReport report;
  report.plan_used = true;
  observed_.Clear();
  TimePoint start = timeline_->now();
  const uint64_t wall0 = WallNowNs();
  const uint64_t gpu_wall0 = gpu_->exec_wall_ns();

  tzasc_->AssignGpu(World::kSecure);

  // Arm the clobber observer once per loaded plan. It stays registered
  // between replays: external writes to image pages (another replayer
  // sharing this device, a debugging poke) must invalidate them too.
  if (config_.dirty_tracking && write_observer_id_ == 0) {
    dirty_pages_.Init(mem_->base(), mem_->size());
    write_observer_id_ =
        mem_->AddWriteObserver([this](uint64_t pa, uint64_t len) {
          if (!observer_active_) {
            return;
          }
          dirty_pages_.MarkRange(pa, len);
        });
  }
  bool warm = config_.dirty_tracking && have_image_state_;
  report.warm = warm;
  // Fused fast path: execute the checked warm program instead of the full
  // op array. Requires an armed device — the previous replay on this
  // replayer succeeded and left the hardware in the warm program's proven
  // entry state — and an unchanged reset epoch (nobody scrubbed the
  // device in between).
  bool fused = config_.use_warm_program && plan_->warm != nullptr && warm &&
               warm_armed_ && gpu_->reset_epoch() == warm_epoch_;
  report.warm_program_used = fused;
  // Arming is single-shot: anything short of a full successful replay
  // leaves the device state unproven.
  warm_armed_ = false;
  if (config_.scrub_before && !fused) {
    gpu_->HardReset();
  }
  GRT_TRACE_SPAN(
      fused ? "replay.fused" : (warm ? "replay.warm" : "replay.cold"),
      "replay");

  {
    GRT_TRACE_SPAN("replay.stage.page_apply", "replay");
    TimePoint t0 = timeline_->now();
    const uint64_t w0 = WallNowNs();
    GRT_RETURN_IF_ERROR(ApplyPlanImages(warm, &report));
    // Image state is established; from here every write dirties its page.
    dirty_pages_.Clear();
    observer_active_ = config_.dirty_tracking;
    have_image_state_ = config_.dirty_tracking;
    GRT_RETURN_IF_ERROR(InjectStagedPlanned(&report));
    report.stage_page_apply += timeline_->now() - t0;
    report.wall_page_apply_ns += WallNowNs() - w0;
  }

  GRT_RETURN_IF_ERROR(fused ? RunWarmOps(&report) : RunPlanOps(&report));

  // With a warm program attached, a scrub-eligible successful replay
  // skips the scrub: the device stays secure-locked in the program's
  // proven exit state (a checked fixpoint of its own entry state), so
  // the next replay here can take the fused path. Any reset by anyone
  // else bumps the epoch and voids the arm.
  if (config_.scrub_after) {
    if (config_.use_warm_program && plan_->warm != nullptr &&
        config_.dirty_tracking) {
      warm_armed_ = true;
      warm_epoch_ = gpu_->reset_epoch();
    } else {
      gpu_->HardReset();
      tzasc_->AssignGpu(World::kNormal);
    }
  }

  report.delay = timeline_->now() - start;
  report.wall_ns = WallNowNs() - wall0;
  report.wall_shader_exec_ns = gpu_->exec_wall_ns() - gpu_wall0;
  CountReplayReport(report);
  return report;
}

Status Replayer::RunPlanOps(ReplayReport* report) {
  constexpr Duration kMmioCost = 200 * kNanosecond;
  const std::unordered_set<uint64_t>& injected = InjectedPages();
  for (const PlanOp& op : plan_->ops) {
    ++report->entries_replayed;
    switch (op.kind) {
      case LogOp::kMemPage: {
        const PlanImage& im = plan_->mid_images[op.image];
        if (injected.count(im.pa) > 0) {
          break;  // superseded by injected tensor data
        }
        const uint64_t w0 = WallNowNs();
        GRT_RETURN_IF_ERROR(mem_->Write(im.pa, im.data.data(), im.data.size(),
                                        MemAccessOrigin::kCpuSecureWorld));
        ++report->pages_applied;
        report->mem_bytes_applied += im.data.size();
        report->wall_page_apply_ns += WallNowNs() - w0;
        timeline_->Advance(static_cast<Duration>(im.data.size() / 8));
        report->stage_page_apply +=
            static_cast<Duration>(im.data.size() / 8);
        break;
      }
      case LogOp::kRegWrite: {
        timeline_->Advance(kMmioCost);
        (IsDispatchReg(op.reg) ? report->stage_dispatch
                               : report->stage_reg_io) += kMmioCost;
        GRT_RETURN_IF_ERROR(
            tzasc_->WriteGpuRegister(World::kSecure, gpu_, op.reg, op.value));
        break;
      }
      case LogOp::kRegRead: {
        timeline_->Advance(kMmioCost);
        report->stage_reg_io += kMmioCost;
        GRT_ASSIGN_OR_RETURN(
            uint32_t v, tzasc_->ReadGpuRegister(World::kSecure, gpu_, op.reg));
        if (config_.verify_reads && op.verify) {
          if (v != op.value) {
            return IntegrityViolation(
                std::string("replay divergence at register ") +
                RegisterName(op.reg) + ", log entry " +
                std::to_string(op.log_index) + ": got " + std::to_string(v) +
                " want " + std::to_string(op.value));
          }
          ++report->reads_verified;
        }
        break;
      }
      case LogOp::kPollWait: {
        bool satisfied = false;
        for (int i = 0; i < config_.poll_max_iters; ++i) {
          timeline_->Advance(kMmioCost);
          report->stage_reg_io += kMmioCost;
          GRT_ASSIGN_OR_RETURN(uint32_t v, tzasc_->ReadGpuRegister(
                                               World::kSecure, gpu_, op.reg));
          if ((v & op.mask) == op.expected) {
            satisfied = true;
            break;
          }
          TimePoint wait0 = timeline_->now();
          TimePoint next = gpu_->NextEventTime();
          if (next != kNoEvent) {
            timeline_->AdvanceTo(next);
          } else {
            timeline_->Advance(config_.poll_iter_delay);
          }
          report->stage_shader_exec += timeline_->now() - wait0;
        }
        if (!satisfied) {
          return PollExhausted("replay poll never satisfied at log entry " +
                               std::to_string(op.log_index));
        }
        break;
      }
      case LogOp::kDelay: {
        timeline_->Advance(op.delay);
        report->stage_shader_exec += op.delay;
        break;
      }
      case LogOp::kIrqWait: {
        TimePoint wait0 = timeline_->now();
        Status irq_status = WaitIrqLines(op.irq_lines);
        report->stage_shader_exec += timeline_->now() - wait0;
        if (!irq_status.ok()) {
          return Status(irq_status.code(),
                        irq_status.message() + " at log entry " +
                            std::to_string(op.log_index));
        }
        break;
      }
    }
  }
  return OkStatus();
}

// Executes the fused warm program. Costs: a span pays the MMIO mediation
// cost once plus a small per-extra-write cost (one ownership/rail check
// for the whole batch, see Tzasc::WriteGpuRegisterSpan); everything else
// matches the full-plan path. Verified reads compare under the op's
// verify_mask — bits the program owns (latched by elided flush/reset/
// power writes) are excluded, everything else (notably fault bits) stays
// loud. The GPU irq line is tolerated during waits only if the program
// owns rawstat bits that can hold it asserted.
Status Replayer::RunWarmOps(ReplayReport* report) {
  constexpr Duration kMmioCost = 200 * kNanosecond;
  constexpr Duration kSpanWriteCost = 40 * kNanosecond;
  const WarmProgram& prog = *plan_->warm;
  const uint8_t tolerated = prog.owned_gpu_irq_bits != 0 ? 2 : 0;
  const std::unordered_set<uint64_t>& injected = InjectedPages();
  std::vector<Tzasc::RegWrite> span_buf;
  for (const WarmOp& op : prog.ops) {
    ++report->entries_replayed;
    switch (op.kind) {
      case WarmOpKind::kMemPage: {
        const PlanImage& im = plan_->mid_images[op.image];
        if (injected.count(im.pa) > 0) {
          break;  // superseded by injected tensor data
        }
        const uint64_t w0 = WallNowNs();
        GRT_RETURN_IF_ERROR(mem_->Write(im.pa, im.data.data(), im.data.size(),
                                        MemAccessOrigin::kCpuSecureWorld));
        ++report->pages_applied;
        report->mem_bytes_applied += im.data.size();
        report->wall_page_apply_ns += WallNowNs() - w0;
        timeline_->Advance(static_cast<Duration>(im.data.size() / 8));
        report->stage_page_apply +=
            static_cast<Duration>(im.data.size() / 8);
        break;
      }
      case WarmOpKind::kRegWrite: {
        timeline_->Advance(kMmioCost);
        (IsDispatchReg(op.reg) ? report->stage_dispatch
                               : report->stage_reg_io) += kMmioCost;
        GRT_RETURN_IF_ERROR(
            tzasc_->WriteGpuRegister(World::kSecure, gpu_, op.reg, op.value));
        break;
      }
      case WarmOpKind::kRegSpan: {
        GRT_TRACE_SPAN("replay.stage.dispatch", "replay");
        span_buf.clear();
        span_buf.reserve(op.span_len);
        for (uint32_t k = 0; k < op.span_len; ++k) {
          const RegSpanWrite& sw = prog.span_writes[op.span_begin + k];
          span_buf.push_back(Tzasc::RegWrite{sw.reg, sw.value});
        }
        Duration cost = kMmioCost + (op.span_len - 1) * kSpanWriteCost;
        timeline_->Advance(cost);
        report->stage_dispatch += cost;
        GRT_RETURN_IF_ERROR(tzasc_->WriteGpuRegisterSpan(
            World::kSecure, gpu_, span_buf.data(), span_buf.size()));
        ++report->fused_spans_executed;
        report->fused_writes_executed += op.span_len;
        break;
      }
      case WarmOpKind::kRegRead: {
        timeline_->Advance(kMmioCost);
        report->stage_reg_io += kMmioCost;
        GRT_ASSIGN_OR_RETURN(
            uint32_t v, tzasc_->ReadGpuRegister(World::kSecure, gpu_, op.reg));
        if (config_.verify_reads && op.verify) {
          if (((v ^ op.value) & op.verify_mask) != 0) {
            return IntegrityViolation(
                std::string("warm replay divergence at register ") +
                RegisterName(op.reg) + ", source op " +
                std::to_string(op.src_index) + ": got " + std::to_string(v) +
                " want " + std::to_string(op.value) + " (mask " +
                std::to_string(op.verify_mask) + ")");
          }
          ++report->reads_verified;
        }
        break;
      }
      case WarmOpKind::kPollWait: {
        bool satisfied = false;
        for (int i = 0; i < config_.poll_max_iters; ++i) {
          timeline_->Advance(kMmioCost);
          report->stage_reg_io += kMmioCost;
          GRT_ASSIGN_OR_RETURN(uint32_t v, tzasc_->ReadGpuRegister(
                                               World::kSecure, gpu_, op.reg));
          if ((v & op.mask) == op.expected) {
            satisfied = true;
            break;
          }
          TimePoint wait0 = timeline_->now();
          TimePoint next = gpu_->NextEventTime();
          if (next != kNoEvent) {
            timeline_->AdvanceTo(next);
          } else {
            timeline_->Advance(config_.poll_iter_delay);
          }
          report->stage_shader_exec += timeline_->now() - wait0;
        }
        if (!satisfied) {
          return PollExhausted("warm replay poll never satisfied at source op " +
                               std::to_string(op.src_index));
        }
        break;
      }
      case WarmOpKind::kDelay: {
        timeline_->Advance(op.delay);
        report->stage_shader_exec += op.delay;
        break;
      }
      case WarmOpKind::kIrqWait: {
        GRT_TRACE_SPAN("replay.stage.shader_exec", "replay");
        TimePoint wait0 = timeline_->now();
        Status irq_status = WaitIrqLines(op.irq_lines, tolerated);
        report->stage_shader_exec += timeline_->now() - wait0;
        if (!irq_status.ok()) {
          return Status(irq_status.code(),
                        irq_status.message() + " at source op " +
                            std::to_string(op.src_index));
        }
        break;
      }
    }
  }
  return OkStatus();
}

Status Replayer::ReadTensorInto(const std::string& name, float* out,
                                size_t n_floats) const {
  if (!loaded_) {
    return FailedPrecondition("ReadTensor before Load");
  }
  GRT_TRACE_SPAN("replay.stage.readback", "replay");
  auto it = recording_->bindings.find(name);
  if (it == recording_->bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  const TensorBinding& b = it->second;
  if (n_floats != b.n_floats) {
    return InvalidArgument("tensor '" + name + "' size mismatch");
  }
  auto* dst = reinterpret_cast<uint8_t*>(out);
  // Direct readback: the escape analysis proved the chunk table complete,
  // so the copy lands in the caller's buffer with no intermediate vector
  // and no per-page arithmetic.
  if (plan_ != nullptr) {
    auto pit = plan_->patches.find(name);
    if (pit != plan_->patches.end() && pit->second.direct_readback) {
      for (const PatchChunk& c : pit->second.chunks) {
        GRT_RETURN_IF_ERROR(mem_->Read(c.pa, dst + c.src_offset, c.len,
                                       MemAccessOrigin::kCpuSecureWorld));
      }
      return OkStatus();
    }
  }
  uint64_t bytes = b.n_floats * sizeof(float);
  uint64_t done = 0;
  size_t page_idx = 0;
  while (done < bytes) {
    if (page_idx >= b.pages.size()) {
      return Internal("binding page list too short");
    }
    uint64_t chunk = std::min<uint64_t>(bytes - done, kPageSize);
    GRT_RETURN_IF_ERROR(mem_->Read(b.pages[page_idx], dst + done, chunk,
                                   MemAccessOrigin::kCpuSecureWorld));
    done += chunk;
    ++page_idx;
  }
  return OkStatus();
}

Result<std::vector<float>> Replayer::ReadTensor(const std::string& name) const {
  if (!loaded_) {
    return FailedPrecondition("ReadTensor before Load");
  }
  auto it = recording_->bindings.find(name);
  if (it == recording_->bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  std::vector<float> out(it->second.n_floats);
  GRT_RETURN_IF_ERROR(ReadTensorInto(name, out.data(), out.size()));
  return out;
}

}  // namespace grt
