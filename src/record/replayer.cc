#include "src/record/replayer.h"

#include <cstring>
#include <unordered_set>

#include "src/analysis/verifier.h"
#include "src/common/log.h"
#include "src/hw/regs.h"

namespace grt {
namespace {

// True for a JS*_COMMAND_NEXT = START write (a job-chain kickoff).
bool IsJobStartLike(const LogEntry& e) {
  if (e.op != LogOp::kRegWrite || e.value != kJsCommandStart) {
    return false;
  }
  if (e.reg < kJobSlotBase ||
      e.reg >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  return (e.reg - kJobSlotBase) % kJobSlotStride == kJsCommandNext;
}

}  // namespace

Status Replayer::LoadSigned(const Bytes& raw, const Bytes& signing_key) {
  GRT_ASSIGN_OR_RETURN(Recording rec, Recording::ParseSigned(raw, signing_key));
  return Load(std::move(rec));
}

Status Replayer::Load(Recording recording) {
  // SKU check: recordings are SKU-specific; even subtle differences break
  // replay (§2.4), so refuse early and explicitly.
  if (recording.header.sku != gpu_->sku().id) {
    return FailedPrecondition(
        "recording was produced for a different GPU SKU");
  }
  // Static admission gate: a valid signature proves provenance, not
  // well-formedness. Run the analysis passes before the log can reach
  // the device.
  if (config_.static_verify) {
    GRT_RETURN_IF_ERROR(VerifyRecording(recording));
  }
  recording_ = std::move(recording);
  loaded_ = true;
  return OkStatus();
}

Status Replayer::StageTensor(const std::string& name,
                             const std::vector<float>& data) {
  if (!loaded_) {
    return FailedPrecondition("StageTensor before Load");
  }
  auto it = recording_.bindings.find(name);
  if (it == recording_.bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  if (!it->second.writable_at_replay) {
    return PermissionDenied("tensor '" + name + "' is not injectable");
  }
  if (data.size() != it->second.n_floats) {
    return InvalidArgument("tensor '" + name + "' size mismatch");
  }
  staged_[name] = data;
  return OkStatus();
}

Status Replayer::InjectStaged() {
  for (const auto& [name, data] : staged_) {
    const TensorBinding& b = recording_.bindings.at(name);
    uint64_t bytes = data.size() * sizeof(float);
    const auto* src = reinterpret_cast<const uint8_t*>(data.data());
    uint64_t done = 0;
    size_t page_idx = 0;
    while (done < bytes) {
      if (page_idx >= b.pages.size()) {
        return Internal("binding page list too short");
      }
      uint64_t chunk = std::min<uint64_t>(bytes - done, kPageSize);
      GRT_RETURN_IF_ERROR(mem_->Write(b.pages[page_idx], src + done, chunk,
                                      MemAccessOrigin::kCpuSecureWorld));
      done += chunk;
      ++page_idx;
    }
  }
  return OkStatus();
}

Status Replayer::ApplyMemEntry(const LogEntry& e, ReplayReport* report) {
  GRT_RETURN_IF_ERROR(mem_->Write(e.pa, e.data.data(), e.data.size(),
                                  MemAccessOrigin::kCpuSecureWorld));
  ++report->pages_applied;
  // CPU copy cost for the page.
  timeline_->Advance(static_cast<Duration>(e.data.size() / 8));  // ~8 B/ns
  return OkStatus();
}

Status Replayer::WaitIrqLines(uint8_t lines) {
  TimePoint deadline = timeline_->now() + config_.irq_timeout;
  for (;;) {
    uint8_t have = (gpu_->JobIrqAsserted() ? 1 : 0) |
                   (gpu_->GpuIrqAsserted() ? 2 : 0) |
                   (gpu_->MmuIrqAsserted() ? 4 : 0);
    if ((have & lines) == lines) {
      return OkStatus();
    }
    if (have != 0 && (have & lines) != have) {
      // An interrupt the recording did not expect (e.g. an MMU fault while
      // waiting for job completion): replay divergence.
      return IntegrityViolation("unexpected interrupt lines during replay");
    }
    TimePoint next = gpu_->NextEventTime();
    if (next == kNoEvent || next > deadline) {
      return IrqExpired("replay IRQ wait timed out (want=" +
                        std::to_string(lines) + " have=" +
                        std::to_string(have) + " no_event=" +
                        std::to_string(next == kNoEvent) + ")");
    }
    timeline_->AdvanceTo(next);
  }
}

Result<ReplayReport> Replayer::Replay() {
  if (!loaded_) {
    return FailedPrecondition("Replay before Load");
  }
  ReplayReport report;
  observed_.Clear();
  TimePoint start = timeline_->now();

  // Lock the GPU into the TEE and scrub hardware state (§3.2).
  tzasc_->AssignGpu(World::kSecure);
  if (config_.scrub_before) {
    gpu_->HardReset();
  }

  // Pages owned by injected tensors are skipped when applying recorded
  // images: the recorded (dry-run) content would clobber real data.
  std::unordered_set<uint64_t> injected_pages;
  for (const auto& [name, data] : staged_) {
    for (uint64_t pa : recording_.bindings.at(name).pages) {
      injected_pages.insert(pa);
    }
  }

  bool first_image_done = false;
  GRT_RETURN_IF_ERROR(InjectStaged());

  constexpr Duration kMmioCost = 200 * kNanosecond;
  for (const LogEntry& e : recording_.log.entries()) {
    ++report.entries_replayed;
    switch (e.op) {
      case LogOp::kMemPage: {
        if (injected_pages.count(e.pa) > 0) {
          break;  // superseded by injected tensor data
        }
        // After the initial image, only metastate pages are reapplied:
        // program-data pages mid-run reflect the dry run's (zero-input)
        // compute and must not overwrite real intermediate results.
        if (first_image_done && !e.metastate) {
          break;
        }
        GRT_RETURN_IF_ERROR(ApplyMemEntry(e, &report));
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
      case LogOp::kRegWrite: {
        timeline_->Advance(kMmioCost);
        GRT_RETURN_IF_ERROR(
            tzasc_->WriteGpuRegister(World::kSecure, gpu_, e.reg, e.value));
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        if (!first_image_done && IsJobStartLike(e)) {
          first_image_done = true;
        }
        break;
      }
      case LogOp::kRegRead: {
        timeline_->Advance(kMmioCost);
        GRT_ASSIGN_OR_RETURN(
            uint32_t v, tzasc_->ReadGpuRegister(World::kSecure, gpu_, e.reg));
        if (config_.collect_observed) {
          LogEntry obs = e;
          obs.value = v;
          observed_.Add(std::move(obs));
        }
        if (config_.verify_reads && !IsNondeterministicRegister(e.reg)) {
          if (v != e.value) {
            return IntegrityViolation(
                std::string("replay divergence at register ") +
                RegisterName(e.reg) + ", entry " +
                std::to_string(report.entries_replayed) + ": got " +
                std::to_string(v) + " want " + std::to_string(e.value));
          }
          ++report.reads_verified;
        }
        break;
      }
      case LogOp::kPollWait: {
        bool satisfied = false;
        for (int i = 0; i < config_.poll_max_iters; ++i) {
          timeline_->Advance(kMmioCost);
          GRT_ASSIGN_OR_RETURN(uint32_t v, tzasc_->ReadGpuRegister(
                                               World::kSecure, gpu_, e.reg));
          if ((v & e.mask) == e.expected) {
            satisfied = true;
            break;
          }
          // Between iterations, let the device make progress.
          TimePoint next = gpu_->NextEventTime();
          if (next != kNoEvent) {
            timeline_->AdvanceTo(next);
          } else {
            timeline_->Advance(config_.poll_iter_delay);
          }
        }
        if (!satisfied) {
          return PollExhausted("replay poll never satisfied at entry " +
                               std::to_string(report.entries_replayed));
        }
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
      case LogOp::kDelay: {
        timeline_->Advance(e.delay);
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
      case LogOp::kIrqWait: {
        Status irq_status = WaitIrqLines(e.irq_lines);
        if (!irq_status.ok()) {
          return Status(irq_status.code(),
                        irq_status.message() + " at entry " +
                            std::to_string(report.entries_replayed));
        }
        if (config_.collect_observed) {
          observed_.Add(e);
        }
        break;
      }
    }
  }

  // Scrub and release (unless the caller resumes from this state).
  if (config_.scrub_after) {
    gpu_->HardReset();
    tzasc_->AssignGpu(World::kNormal);
  }

  report.delay = timeline_->now() - start;
  return report;
}

Result<std::vector<float>> Replayer::ReadTensor(const std::string& name) const {
  auto it = recording_.bindings.find(name);
  if (it == recording_.bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  const TensorBinding& b = it->second;
  std::vector<float> out(b.n_floats);
  uint64_t bytes = b.n_floats * sizeof(float);
  auto* dst = reinterpret_cast<uint8_t*>(out.data());
  uint64_t done = 0;
  size_t page_idx = 0;
  while (done < bytes) {
    uint64_t chunk = std::min<uint64_t>(bytes - done, kPageSize);
    GRT_RETURN_IF_ERROR(mem_->Read(b.pages[page_idx], dst + done, chunk,
                                   MemAccessOrigin::kCpuSecureWorld));
    done += chunk;
    ++page_idx;
  }
  return out;
}

}  // namespace grt
