// LayeredReplayer: replays a sequence of per-layer recordings (Fig. 2).
//
// "To replay, a target ML app executes the recordings in the layer order."
// Segment 0 carries the driver-initialization stimuli and the initial
// memory image; each later segment carries one layer's jobs. Between
// segments the GPU state persists (no scrubbing), so intermediate
// activations flow from one layer's recording into the next — which is
// exactly what makes the granularity composable: an app may re-run a
// suffix of layers, or splice recordings that share a boundary.
//
// Each segment gets one persistent Replayer, created at Load: signature
// parsing, SKU checks, static verification, and plan compilation happen
// once per segment, not once per ReplayAll call — repeated replays (the
// deployed steady state) pay only the replay itself.
#ifndef GRT_SRC_RECORD_LAYERED_H_
#define GRT_SRC_RECORD_LAYERED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/record/replayer.h"

namespace grt {

class LayeredReplayer {
 public:
  LayeredReplayer(MaliGpu* gpu, Tzasc* tzasc, PhysicalMemory* mem,
                  Timeline* timeline)
      : gpu_(gpu), tzasc_(tzasc), mem_(mem), timeline_(timeline) {}

  // Verifies and loads all segments (each individually signed). Segments
  // must agree on SKU/nonce/count and arrive in order.
  Status LoadSigned(const std::vector<Bytes>& wires, const Bytes& key);
  Status Load(std::vector<Recording> segments);

  // Staged tensors are injected at the start of the first replayed segment.
  Status StageTensor(const std::string& name, const std::vector<float>& data);

  // Replays all segments in layer order. `first_segment` allows replaying
  // a suffix when the device still holds the state of the preceding
  // segments (composability); pass scrub_after_last=false to keep the
  // hardware state for such a follow-up partial replay.
  Result<ReplayReport> ReplayAll(size_t first_segment = 0,
                                 bool scrub_after_last = true);

  Result<std::vector<float>> ReadTensor(const std::string& name) const;

  size_t segment_count() const { return replayers_.size(); }

 private:
  MaliGpu* gpu_;
  Tzasc* tzasc_;
  PhysicalMemory* mem_;
  Timeline* timeline_;
  // One loaded (verified-once) replayer per segment, reused across
  // ReplayAll calls so repeated replays skip re-verification and benefit
  // from dirty-page tracking.
  std::vector<std::unique_ptr<Replayer>> replayers_;
  std::map<std::string, std::vector<float>> staged_;
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_LAYERED_H_
