// Interaction-log comparison — the paper's "broader applicability" (§3.4):
// "by comparing a client's GPU register logs and memory dumps with the
// ones from the cloud, the cloud may detect and report firmware
// malfunctioning and vendors may troubleshoot remotely."
//
// Compares an expected log (from a recording) against an observed log
// (collected while replaying on the device under test) and localizes the
// first deviation.
#ifndef GRT_SRC_RECORD_DIFF_H_
#define GRT_SRC_RECORD_DIFF_H_

#include <string>

#include "src/record/log.h"

namespace grt {

struct LogDiffOptions {
  // Skip value comparison on inherently nondeterministic registers
  // (LATEST_FLUSH, timestamps); structure is still compared.
  bool ignore_nondeterministic_values = true;
  // Skip comparison of memory-page contents (compare pa/class only).
  bool ignore_page_contents = false;
};

struct LogDiff {
  bool identical = true;
  size_t first_divergence = 0;   // entry index (valid if !identical)
  std::string description;       // human-readable deviation report
  size_t entries_compared = 0;
  size_t value_mismatches = 0;   // total differing read/poll values
  size_t structure_mismatches = 0;  // differing kinds/registers/lengths
};

LogDiff CompareInteractionLogs(const InteractionLog& expected,
                               const InteractionLog& observed,
                               const LogDiffOptions& options = {});

}  // namespace grt

#endif  // GRT_SRC_RECORD_DIFF_H_
