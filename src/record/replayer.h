// Replayer: reproduces recorded GPU computation inside the TEE, with no
// GPU stack present (§2.3, §3.2).
//
// The replayer is deliberately tiny and has no dependency on the driver,
// runtime, or ML framework — the paper's point is that this is the only
// GPU-facing code deployed inside TrustZone ("a few KSLoC, ... contains no
// vulnerabilities commonly seen in a GPU stack").
//
// Replay procedure:
//   1. verify the recording's signature and SKU identity;
//   2. lock the GPU to the secure world and reset it;
//   3. apply recorded memory images (metastate always; program-data pages
//      unless superseded by injected tensors);
//   4. inject new input / model parameters at the recorded addresses;
//   5. replay register stimuli, re-validating recorded read values on
//      deterministic registers, re-waiting polls and interrupts;
//   6. read outputs from the recorded output addresses; reset the GPU and
//      release it.
//
// Two execution engines share these semantics:
//   * the interpreter walks the log entry-by-entry (reference engine, and
//     the only one that can produce an observed log for §3.4 diffing);
//   * the compiled plan (src/record/plan.h) executes a flat op array with
//     the initial memory image pre-coalesced, plus dirty-page tracking:
//     replay N+1 re-applies only the pages replay N clobbered (tracked by
//     PhysicalMemory write interposition) and the staged-tensor pages —
//     back-to-back inferences stop paying the full memsync cost.
//
// Dirty-page soundness: a page is skipped only if no write — CPU either
// world, GPU DMA, this replayer's own mid-replay reapplications — touched
// it since its image was applied. An untouched page still holds exactly
// the image content, so skipping the copy cannot change any replay-visible
// state (see DESIGN.md §6d).
#ifndef GRT_SRC_RECORD_REPLAYER_H_
#define GRT_SRC_RECORD_REPLAYER_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/hw/gpu.h"
#include "src/mem/phys_mem.h"
#include "src/record/plan.h"
#include "src/record/recording.h"
#include "src/tee/tzasc.h"

namespace grt {

// Dirty-page set over the physical carveout, kept as a bitmap so the
// write-observer hot path (fired on every PhysicalMemory write, including
// each GPU DMA commit) marks a run of pages with a few word ops instead of
// per-page hash inserts.
class DirtyPageSet {
 public:
  // (Re)binds the set to [base, base+size); clears all marks.
  void Init(uint64_t base, uint64_t size) {
    base_ = base;
    bits_.assign((size / kPageSize + 63) / 64, 0);
    count_ = 0;
  }

  // Marks every page overlapping [pa, pa+len). Addresses outside the bound
  // range are ignored (they cannot hold plan image pages).
  void MarkRange(uint64_t pa, uint64_t len) {
    if (len == 0) {
      return;
    }
    for (uint64_t p = PageAlignDown(pa); p < pa + len; p += kPageSize) {
      if (p < base_) {
        continue;
      }
      const uint64_t idx = (p - base_) / kPageSize;
      const uint64_t word = idx / 64;
      if (word >= bits_.size()) {
        break;
      }
      const uint64_t mask = 1ull << (idx % 64);
      if ((bits_[word] & mask) == 0) {
        bits_[word] |= mask;
        ++count_;
      }
    }
  }

  bool Contains(uint64_t page_pa) const {
    if (page_pa < base_) {
      return false;
    }
    const uint64_t idx = (page_pa - base_) / kPageSize;
    const uint64_t word = idx / 64;
    return word < bits_.size() && (bits_[word] >> (idx % 64)) & 1;
  }

  void Clear() {
    std::fill(bits_.begin(), bits_.end(), 0);
    count_ = 0;
  }

  size_t Count() const { return count_; }

 private:
  uint64_t base_ = 0;
  std::vector<uint64_t> bits_;
  size_t count_ = 0;
};

struct ReplayConfig {
  bool verify_reads = true;
  // Reset the GPU before starting. Segment 0 of a layered replay (and any
  // monolithic replay) wants this; later segments continue from the
  // hardware state the previous segment left.
  bool scrub_before = true;
  // Reset the GPU and release it to the normal world when done. Normal
  // replay wants this (§3.2); misprediction recovery must NOT scrub —
  // the recording session resumes from the replayed hardware state.
  bool scrub_after = true;
  Duration poll_iter_delay = 3 * kMicrosecond;
  int poll_max_iters = 100000;
  Duration irq_timeout = 60 * kSecond;  // virtual
  // Collect the interactions actually observed on this device; diffing the
  // observed log against the recording localizes firmware malfunction
  // (§3.4 remote debugging). Adds memory/time overhead. Forces the
  // interpreter: a plan drops skipped entries at compile time, so it
  // cannot produce a faithful observed log.
  bool collect_observed = false;
  // Run the static verifier (src/analysis) at Load and refuse recordings
  // with errors. On by default: a signed-but-malformed recording must never
  // reach the GPU. Misprediction recovery turns this off — it replays a
  // mid-session log that legitimately still carries speculative reads.
  // Verification happens ONCE per Load; Replay() never re-verifies.
  bool static_verify = true;
  // Compile the recording into a ReplayPlan at Load and execute the plan
  // at Replay (fast path). Off: interpret the log (reference engine).
  bool use_plan = true;
  // Plan path only: skip re-applying initial-image pages that no write
  // clobbered since the previous replay applied them.
  bool dirty_tracking = true;
  // Execute the plan's fused warm program (plan format v2, attached by
  // AttachWarmProgram) on warm replays instead of the full op array. The
  // fast path additionally requires dirty tracking, an armed device (the
  // previous replay on this replayer succeeded and left the device
  // un-scrubbed), and an unchanged GPU reset epoch; otherwise the full
  // plan runs. No effect on plans without a warm program.
  bool use_warm_program = true;
};

struct ReplayReport {
  Duration delay = 0;          // end-to-end replay time (Table 2 metric)
  size_t entries_replayed = 0;
  size_t pages_applied = 0;
  size_t reads_verified = 0;
  // Memory-application accounting (perf gates: a warm plan replay must
  // apply strictly fewer bytes than the interpreter).
  uint64_t mem_bytes_applied = 0;
  // Plan path: initial-image pages skipped because they were provably
  // clean (no write since their last application).
  size_t pages_skipped_clean = 0;
  bool plan_used = false;
  // True when dirty-page tracking was in effect (second and later plan
  // replays on the same loaded recording).
  bool warm = false;
  // True when the fused warm program executed instead of the full op
  // array (requires config.use_warm_program and an attached, armed plan).
  bool warm_program_used = false;
  // Fused register spans executed and the total writes they covered.
  size_t fused_spans_executed = 0;
  size_t fused_writes_executed = 0;
  // Subset of mem_bytes_applied issued as coalesced multi-page runs
  // (>= 2 contiguous pages per Write call).
  uint64_t mem_bytes_applied_fused = 0;
  // Per-stage virtual-time breakdown of the replay (plan and interpreter
  // paths). dispatch = job-slot register writes incl. fused spans;
  // reg_io = all other MMIO traffic incl. poll iterations; shader_exec =
  // interrupt waits and recorded device delays; page_apply = image,
  // mid-replay page, and tensor-injection copies. Readback is not part
  // of Replay() — ReadTensor/ReadTensorInto time it separately.
  Duration stage_dispatch = 0;
  Duration stage_reg_io = 0;
  Duration stage_shader_exec = 0;
  Duration stage_page_apply = 0;
  // Host wall-clock breakdown (steady_clock ns). Unlike the virtual-time
  // stages above, these observe the real cost of the shader-core kernel
  // engine and page application — the modeled timeline is engine-invariant
  // by construction, so kernel speedups are only visible here.
  uint64_t wall_ns = 0;
  uint64_t wall_shader_exec_ns = 0;  // inside ExecuteChain (kernel engine)
  uint64_t wall_page_apply_ns = 0;   // image/mid-page/tensor copies
};

class Replayer {
 public:
  Replayer(MaliGpu* gpu, Tzasc* tzasc, PhysicalMemory* mem,
           Timeline* timeline, ReplayConfig config = ReplayConfig{})
      : gpu_(gpu), tzasc_(tzasc), mem_(mem), timeline_(timeline),
        config_(config) {}
  ~Replayer();

  Replayer(const Replayer&) = delete;
  Replayer& operator=(const Replayer&) = delete;

  // Verifies signature + SKU and loads the recording.
  Status LoadSigned(const Bytes& raw, const Bytes& signing_key);
  // Loads a parsed recording (trusted path for tests).
  Status Load(Recording recording);
  // Loads a shared recording, optionally with a pre-compiled plan (the
  // serving engine compiles once and shares the plan across workers; pass
  // nullptr to compile here). The recording/plan must outlive all use —
  // shared_ptr ownership guarantees it even across plan-cache eviction.
  Status LoadShared(std::shared_ptr<const Recording> recording,
                    std::shared_ptr<const ReplayPlan> plan = nullptr);

  // Stages tensor data to inject (model parameters, new input). Data is
  // written at replay start through the recorded physical pages.
  // Re-staging an already-staged tensor overwrites it in place.
  Status StageTensor(const std::string& name, const std::vector<float>& data);

  // Runs the replay. May be called repeatedly (each call resets the GPU,
  // reapplies memory, and re-injects staged tensors) — "the replay can
  // recur within the TEE on new input repeatedly".
  Result<ReplayReport> Replay();

  // Reads a tensor (typically the output) from the recorded pages.
  Result<std::vector<float>> ReadTensor(const std::string& name) const;

  // Reads a tensor directly into a caller-owned buffer of n_floats
  // elements, skipping the intermediate vector. On plans whose patch
  // table proved the tensor's page mapping complete (direct_readback,
  // set by the planopt escape analysis), the copy walks the precomputed
  // chunk table; otherwise it falls back to the recorded page walk.
  Status ReadTensorInto(const std::string& name, float* out,
                        size_t n_floats) const;

  // The device-observed interaction log of the last Replay() (only
  // populated with config.collect_observed).
  const InteractionLog& observed_log() const { return observed_; }

  const Recording& recording() const { return *recording_; }
  // Null unless config.use_plan and a recording is loaded.
  const ReplayPlan* plan() const { return plan_.get(); }

  // Bench/test introspection: physical pages written since the image
  // state was last established (empty when dirty tracking is off). The
  // dirty-page sweep uses this to target pages that are actually clean
  // at steady state — pages the replay itself rewrites every run are
  // re-applied regardless, so dirtying them is not marginal work.
  const DirtyPageSet& dirty_pages() const { return dirty_pages_; }

  // Adjusts the scrub behaviour between replays (layered replay reuses one
  // loaded replayer per segment across ReplayAll calls whose boundary
  // scrubbing differs per call).
  void SetScrub(bool before, bool after) {
    config_.scrub_before = before;
    config_.scrub_after = after;
  }

 private:
  Status ApplyMemEntry(const LogEntry& e, ReplayReport* report);
  Status InjectStaged();
  Status InjectStagedPlanned(ReplayReport* report);
  Status WaitIrqLines(uint8_t lines, uint8_t tolerated = 0);
  Result<ReplayReport> ReplayInterpreted();
  Result<ReplayReport> ReplayPlanned();
  Status RunPlanOps(ReplayReport* report);
  Status RunWarmOps(ReplayReport* report);
  Status ApplyPlanImages(bool warm, ReplayReport* report);
  const std::unordered_set<uint64_t>& InjectedPages();
  void ResetReplayState();

  MaliGpu* gpu_;
  Tzasc* tzasc_;
  PhysicalMemory* mem_;
  Timeline* timeline_;
  ReplayConfig config_;
  std::shared_ptr<const Recording> recording_;
  std::shared_ptr<const ReplayPlan> plan_;
  InteractionLog observed_;
  bool loaded_ = false;
  std::map<std::string, std::vector<float>> staged_;
  // Pages owned by currently-staged tensors; rebuilt lazily when staging
  // changes instead of on every Replay().
  std::unordered_set<uint64_t> injected_pages_;
  bool injected_pages_valid_ = false;
  // ---- dirty-page tracking (plan path) ----
  // Observer registered with mem_ while a plan is loaded; it records pages
  // clobbered after the initial image was applied (GPU DMA during replay,
  // mid-replay metastate reapplications, and any external write between
  // replays all count). Suspended while the replayer itself re-applies the
  // image — those writes re-establish image content, they don't dirty it.
  int write_observer_id_ = 0;
  bool observer_active_ = false;
  bool have_image_state_ = false;
  DirtyPageSet dirty_pages_;
  // ---- fused warm program (plan format v2) ----
  // Armed after a successful replay that left the device un-scrubbed in
  // the warm program's proven entry power state; disarmed by any replay
  // failure or reload. The reset-epoch snapshot detects a device reset
  // between replays (e.g. another engine scrubbing a shared pool device)
  // and falls back to the full plan.
  bool warm_armed_ = false;
  uint64_t warm_epoch_ = 0;
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_REPLAYER_H_
