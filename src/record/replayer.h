// Replayer: reproduces recorded GPU computation inside the TEE, with no
// GPU stack present (§2.3, §3.2).
//
// The replayer is deliberately tiny and has no dependency on the driver,
// runtime, or ML framework — the paper's point is that this is the only
// GPU-facing code deployed inside TrustZone ("a few KSLoC, ... contains no
// vulnerabilities commonly seen in a GPU stack").
//
// Replay procedure:
//   1. verify the recording's signature and SKU identity;
//   2. lock the GPU to the secure world and reset it;
//   3. apply recorded memory images (metastate always; program-data pages
//      unless superseded by injected tensors);
//   4. inject new input / model parameters at the recorded addresses;
//   5. replay register stimuli, re-validating recorded read values on
//      deterministic registers, re-waiting polls and interrupts;
//   6. read outputs from the recorded output addresses; reset the GPU and
//      release it.
#ifndef GRT_SRC_RECORD_REPLAYER_H_
#define GRT_SRC_RECORD_REPLAYER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/hw/gpu.h"
#include "src/record/recording.h"
#include "src/tee/tzasc.h"

namespace grt {

struct ReplayConfig {
  bool verify_reads = true;
  // Reset the GPU before starting. Segment 0 of a layered replay (and any
  // monolithic replay) wants this; later segments continue from the
  // hardware state the previous segment left.
  bool scrub_before = true;
  // Reset the GPU and release it to the normal world when done. Normal
  // replay wants this (§3.2); misprediction recovery must NOT scrub —
  // the recording session resumes from the replayed hardware state.
  bool scrub_after = true;
  Duration poll_iter_delay = 3 * kMicrosecond;
  int poll_max_iters = 100000;
  Duration irq_timeout = 60 * kSecond;  // virtual
  // Collect the interactions actually observed on this device; diffing the
  // observed log against the recording localizes firmware malfunction
  // (§3.4 remote debugging). Adds memory/time overhead.
  bool collect_observed = false;
  // Run the static verifier (src/analysis) at Load and refuse recordings
  // with errors. On by default: a signed-but-malformed recording must never
  // reach the GPU. Misprediction recovery turns this off — it replays a
  // mid-session log that legitimately still carries speculative reads.
  bool static_verify = true;
};

struct ReplayReport {
  Duration delay = 0;          // end-to-end replay time (Table 2 metric)
  size_t entries_replayed = 0;
  size_t pages_applied = 0;
  size_t reads_verified = 0;
};

class Replayer {
 public:
  Replayer(MaliGpu* gpu, Tzasc* tzasc, PhysicalMemory* mem,
           Timeline* timeline, ReplayConfig config = ReplayConfig{})
      : gpu_(gpu), tzasc_(tzasc), mem_(mem), timeline_(timeline),
        config_(config) {}

  // Verifies signature + SKU and loads the recording.
  Status LoadSigned(const Bytes& raw, const Bytes& signing_key);
  // Loads a parsed recording (trusted path for tests).
  Status Load(Recording recording);

  // Stages tensor data to inject (model parameters, new input). Data is
  // written at replay start through the recorded physical pages.
  Status StageTensor(const std::string& name, const std::vector<float>& data);

  // Runs the replay. May be called repeatedly (each call resets the GPU,
  // reapplies memory, and re-injects staged tensors) — "the replay can
  // recur within the TEE on new input repeatedly".
  Result<ReplayReport> Replay();

  // Reads a tensor (typically the output) from the recorded pages.
  Result<std::vector<float>> ReadTensor(const std::string& name) const;

  // The device-observed interaction log of the last Replay() (only
  // populated with config.collect_observed).
  const InteractionLog& observed_log() const { return observed_; }

  const Recording& recording() const { return recording_; }

 private:
  Status ApplyMemEntry(const LogEntry& e, ReplayReport* report);
  Status InjectStaged();
  Status WaitIrqLines(uint8_t lines);

  MaliGpu* gpu_;
  Tzasc* tzasc_;
  PhysicalMemory* mem_;
  Timeline* timeline_;
  ReplayConfig config_;
  Recording recording_;
  InteractionLog observed_;
  bool loaded_ = false;
  std::map<std::string, std::vector<float>> staged_;
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_REPLAYER_H_
