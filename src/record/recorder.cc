#include "src/record/recorder.h"

#include <unordered_set>

#include "src/analysis/footprint/footprint.h"
#include "src/common/hash.h"
#include "src/hw/regs.h"
#include "src/obs/metrics.h"

namespace grt {
namespace {

bool IsJobStartWrite(uint32_t offset, uint32_t value) {
  if (offset < kJobSlotBase ||
      offset >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  uint32_t rel = (offset - kJobSlotBase) % kJobSlotStride;
  return rel == kJsCommandNext && value == kJsCommandStart;
}

}  // namespace

void Recorder::OnRegRead(uint32_t offset, uint32_t value) {
  GRT_OBS_COUNT("recorder.entries", 1);
  LogEntry e;
  e.op = LogOp::kRegRead;
  e.reg = offset;
  e.value = value;
  log_.Add(std::move(e));
}

void Recorder::OnRegWrite(uint32_t offset, uint32_t value) {
  if (IsJobStartWrite(offset, value)) {
    // §5: "Right before the register write that starts a new GPU job,
    // [the recorder] dumps its local memory allocated to GPU."
    SnapshotMemory();
  }
  GRT_OBS_COUNT("recorder.entries", 1);
  LogEntry e;
  e.op = LogOp::kRegWrite;
  e.reg = offset;
  e.value = value;
  log_.Add(std::move(e));
}

void Recorder::OnPoll(uint32_t offset, uint32_t mask, uint32_t expected,
                      const PollResult& result) {
  LogEntry e;
  e.op = LogOp::kPollWait;
  e.reg = offset;
  e.mask = mask;
  e.expected = expected;
  e.value = result.final_value;
  log_.Add(std::move(e));
}

void Recorder::OnDelay(Duration d) {
  LogEntry e;
  e.op = LogOp::kDelay;
  e.delay = d;
  log_.Add(std::move(e));
}

void Recorder::OnIrqWait(const IrqStatus& status) {
  LogEntry e;
  e.op = LogOp::kIrqWait;
  e.irq_lines = (status.job ? 1 : 0) | (status.gpu ? 2 : 0) |
                (status.mmu ? 4 : 0);
  log_.Add(std::move(e));
}

void Recorder::SnapshotMemory() {
  GRT_OBS_COUNT("recorder.snapshots", 1);
  std::vector<uint64_t> all = driver_->AllGpuPages();
  std::vector<uint64_t> meta = driver_->MetastatePages();
  std::unordered_set<uint64_t> meta_set(meta.begin(), meta.end());

  for (uint64_t pa : all) {
    auto view = mem_->PageView(pa);
    if (!view.ok()) {
      continue;  // page fell out of the carveout; nothing to record
    }
    uint32_t crc = Crc32(view.value(), kPageSize);
    auto it = page_crc_.find(pa);
    if (it != page_crc_.end() && it->second == crc) {
      continue;  // unchanged since last snapshot
    }
    page_crc_[pa] = crc;
    GRT_OBS_COUNT("recorder.pages_logged", 1);
    LogEntry e;
    e.op = LogOp::kMemPage;
    e.pa = pa;
    e.metastate = meta_set.count(pa) > 0;
    e.data.assign(view.value(), view.value() + kPageSize);
    log_.Add(std::move(e));
  }
}

Result<Recording> Recorder::Finish(
    const std::string& workload, SkuId sku,
    const std::map<std::string, TensorBinding>& bindings, uint64_t nonce) {
  Recording rec;
  rec.header.workload = workload;
  rec.header.sku = sku;
  rec.header.record_nonce = nonce;
  rec.bindings = bindings;
  rec.log = std::move(log_);
  StampFootprint(&rec);
  return rec;
}

Result<TensorBinding> MakeBinding(const KbaseDriver& driver, uint64_t va,
                                  uint64_t n_floats, bool writable_at_replay) {
  TensorBinding b;
  b.va = va;
  b.n_floats = n_floats;
  b.writable_at_replay = writable_at_replay;
  uint64_t bytes = n_floats * sizeof(float);
  for (uint64_t off = 0; off < bytes; off += kPageSize) {
    GRT_ASSIGN_OR_RETURN(uint64_t pa, driver.VaToPa(va + off));
    b.pages.push_back(PageAlignDown(pa));
  }
  return b;
}

}  // namespace grt
