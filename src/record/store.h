// RecordingStore: the client TEE's persistent recording cache.
//
// §3.1: after the one-time dry run, "for actual executions of the ML
// workload, the client TEE replays the recorded CPU/GPU interactions on
// new input; it no longer invokes the cloud." The store holds downloaded,
// signed recordings keyed by (workload, SKU), re-verifies the signature on
// every load (the flash contents cross the TEE boundary), and persists to
// a single blob the TEE can seal to storage.
#ifndef GRT_SRC_RECORD_STORE_H_
#define GRT_SRC_RECORD_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/record/recording.h"

namespace grt {

class RecordingStore {
 public:
  // `key` authenticates both individual recordings and the sealed image.
  explicit RecordingStore(Bytes key) : key_(std::move(key)) {}

  // Installs a signed recording (e.g. fresh from a record session).
  // Verifies before accepting; replaces an existing entry for the same
  // (workload, SKU) only if the nonce is newer.
  Status Install(const Bytes& signed_recording);

  // Loads and re-verifies a recording for this workload + device SKU.
  Result<Recording> Load(const std::string& workload, SkuId sku) const;

  // True if a verified entry exists.
  bool Contains(const std::string& workload, SkuId sku) const;

  Status Remove(const std::string& workload, SkuId sku);

  size_t size() const { return entries_.size(); }

  // Seals the whole store into one authenticated blob / restores it.
  Bytes Seal() const;
  static Result<RecordingStore> Unseal(const Bytes& sealed, Bytes key);

 private:
  static std::string KeyOf(const std::string& workload, SkuId sku);

  Bytes key_;
  std::map<std::string, Bytes> entries_;  // (workload|sku) -> signed bytes
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_STORE_H_
