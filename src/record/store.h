// RecordingStore: the client TEE's persistent recording cache.
//
// §3.1: after the one-time dry run, "for actual executions of the ML
// workload, the client TEE replays the recorded CPU/GPU interactions on
// new input; it no longer invokes the cloud." The store holds downloaded,
// signed recordings keyed by (workload, SKU), re-verifies the signature on
// every load (the flash contents cross the TEE boundary), and persists to
// a single blob the TEE can seal to storage.
#ifndef GRT_SRC_RECORD_STORE_H_
#define GRT_SRC_RECORD_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/sha256.h"
#include "src/common/status.h"
#include "src/record/recording.h"

namespace grt {

class RecordingStore {
 public:
  // `key` authenticates both individual recordings and the sealed image.
  explicit RecordingStore(Bytes key) : key_(std::move(key)) {}

  // Installs a signed recording (e.g. fresh from a record session).
  // Verifies before accepting; replaces an existing entry for the same
  // (workload, SKU) only if the nonce is newer.
  Status Install(const Bytes& signed_recording);

  // Loads and re-verifies a recording for this workload + device SKU.
  Result<Recording> Load(const std::string& workload, SkuId sku) const;

  // Like Load, but returns a shared parse. Repeated loads of unchanged
  // bytes hit a digest-keyed cache: the HMAC check and full parse ran once
  // when those exact bytes were first admitted, and a SHA-256 of the blob
  // proves the bytes have not changed since — the cached verdict stands.
  // The serving engine loads plans through this to avoid per-worker
  // reparsing. `digest` (optional) receives the SHA-256 of the stored
  // signed bytes — the identity the serving engine keys its plan cache by.
  Result<std::shared_ptr<const Recording>> LoadShared(
      const std::string& workload, SkuId sku,
      Sha256Digest* digest = nullptr) const;

  // True if a verified entry exists.
  bool Contains(const std::string& workload, SkuId sku) const;

  Status Remove(const std::string& workload, SkuId sku);

  size_t size() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return entries_.size();
  }

  // Monotonic mutation counter: bumped by every successful Install or
  // Remove. Stored bytes cannot change without passing through those
  // methods, so a caller that cached a digest at version V may keep using
  // it — skipping the per-load re-hash — for as long as version() == V.
  // The serving engine's warm path rides on this.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return version_;
  }

  // Seals the whole store into one authenticated blob / restores it.
  Bytes Seal() const;
  static Result<RecordingStore> Unseal(const Bytes& sealed, Bytes key);

 private:
  struct ParseCacheEntry {
    Sha256Digest digest{};  // of the signed bytes the parse came from
    std::shared_ptr<const Recording> parsed;
  };

  static std::string KeyOf(const std::string& workload, SkuId sku);

  // Implementation of LoadShared; `mu_` must be held.
  Result<std::shared_ptr<const Recording>> LoadSharedLocked(
      const std::string& workload, SkuId sku, Sha256Digest* out_digest) const;

  // Serving workers resolve recordings concurrently; the store's maps
  // (including the mutable parse cache) are guarded by one mutex. Heap-
  // allocated so the store stays movable (Unseal returns by value); a
  // moved-from store is never used again.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  uint64_t version_ = 0;
  Bytes key_;
  std::map<std::string, Bytes> entries_;  // (workload|sku) -> signed bytes
  // Verified-parse cache; consulted only when the stored bytes still hash
  // to the digest recorded at verification time.
  mutable std::map<std::string, ParseCacheEntry> parse_cache_;
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_STORE_H_
