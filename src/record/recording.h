// The recording container: header + tensor bindings + interaction log,
// signed by the producer (the cloud, §3.2: "DriverShim processes logged
// interactions as a recording; it signs and sends the recording back").
//
// The replayer verifies the signature and the SKU identity before touching
// the GPU: "the replayer only accepts recordings signed by the cloud"
// (§7.1), and recordings are SKU-specific (§2.4).
#ifndef GRT_SRC_RECORD_RECORDING_H_
#define GRT_SRC_RECORD_RECORDING_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/bytes.h"
#include "src/common/sha256.h"
#include "src/common/status.h"
#include "src/record/log.h"
#include "src/sku/sku.h"

namespace grt {

// Where a named workload tensor lives in GPU memory; the replayer uses
// these to inject new inputs / model parameters and fetch outputs
// ("the replayer injects a new input to the recorded input address and can
// later retrieve the corresponding output from the recorded output
// address", §2.3).
struct TensorBinding {
  uint64_t va = 0;
  uint64_t n_floats = 0;
  // Physical pages backing the tensor, in VA order (the replayer writes
  // through physical addresses; it has no GPU stack to translate).
  std::vector<uint64_t> pages;
  bool writable_at_replay = false;  // inputs/parameters: yes; outputs: no
};

// Container format revision. v2 added the per-read speculative mark to the
// kRegRead wire encoding; v3 added the optimization-provenance block to
// the header; v4 added the static resource footprint. Older versions are
// refused (v1 predates the static verifier and cannot prove
// speculation-residue freedom; v2 cannot prove whether a shrunk log is an
// optimizer product or tampering; v3 carries no footprint, so the serving
// device pool could not prove two plans non-interfering).
constexpr uint32_t kRecordingVersion = 4;

// ------------------------------------------------------ resource footprint
// Conservative static summary of everything a replay of this recording can
// touch (v4). Computed by src/analysis/footprint from the interaction log
// and the recorded memory images; the `footprint-soundness` verifier pass
// refuses recordings whose declared footprint fails to over-approximate a
// recomputation, and the serving device pool uses pairwise interference
// verdicts over footprints to decide which plans may share a device.

// Access-class bits carried per FootprintRange.
constexpr uint8_t kFpRead = 1;      // observed (read / polled)
constexpr uint8_t kFpWrite = 2;     // written directly
constexpr uint8_t kFpClobber = 4;   // possibly perturbed by a write to a
                                    // different register (clobber window)
constexpr uint8_t kFpExternal = 8;  // observed before any in-log stimulus
                                    // established it (crosses the plan
                                    // boundary; empty for real recordings)

// Half-open interval [lo, hi) of byte addresses — MMIO offsets for the
// register set, physical addresses for the page set — with the union of
// access bits over the interval. Ranges are sorted and non-overlapping.
struct FootprintRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint8_t access = 0;
};

struct ResourceFootprint {
  bool computed = false;  // false: recording predates stamping (warn-only)
  std::vector<FootprintRange> regs;   // MMIO offsets within the GPU window
  std::vector<FootprintRange> pages;  // physical pages (page-aligned)
  uint8_t irq_lines = 0;     // IRQ lines waited on (bit0 job/1 gpu/2 mmu)
  uint8_t irq_external = 0;  // lines waited on before in-log establishment
  uint32_t slot_write_mask = 0;  // job-slot latch groups written
  uint32_t as_write_mask = 0;    // address-space latch groups written

  // Union of access bits over ranges covering `addr` (0 if uncovered).
  uint8_t AccessAt(const std::vector<FootprintRange>& ranges,
                   uint64_t addr) const {
    uint8_t bits = 0;
    for (const FootprintRange& range : ranges) {
      if (addr >= range.lo && addr < range.hi) {
        bits |= range.access;
      }
    }
    return bits;
  }
  uint8_t RegAccess(uint64_t reg) const { return AccessAt(regs, reg); }
  uint8_t PageAccess(uint64_t pa) const { return AccessAt(pages, pa); }
};

// ------------------------------------------------ optimization provenance
// What the offline optimizer (src/analysis/opt) did to a recording. Every
// transformation carries a machine-readable justification record; the
// `optimizer-provenance` verifier pass refuses recordings whose header
// claims optimization without a trace (or vice versa), so a shrunk log is
// always auditable.

enum class OptAction : uint8_t {
  kDelete = 1,   // entry at `index` removed from the log
  kRewrite = 2,  // entry at `index` kept with a rewritten field
  kMerge = 3,    // entry at `index` folded into the entry at `aux_index`
};

enum class OptReason : uint8_t {
  // dead-write-elim
  kDeadConfigRewrite = 1,    // same-value write to a pure latch; the
                             // reaching definition is unclobbered
  kNoOpPowerWord = 2,        // power word whose PRESENT_* evidence is 0
  kCancellingPowerPair = 3,  // OFF;ON over provably-on cores, no observer
                             // of the power surface in between
  kDeadIrqClear = 4,         // IRQ clear of bits that are provably 0
  // redundant-read-elim
  kNondetRead = 5,           // read the replayer never verifies, of a
                             // read-idempotent register
  kDominatedObservation = 6, // observation dominated by an identical one
                             // with no clobbering stimulus in between
  // rewrites induced by other removals
  kIrqBitsRewritten = 7,     // IRQ expectation adjusted for removed defs
  // commit-coalesce
  kDelayMerged = 8,          // adjacent pacing delays folded together
  kBatchCoalesced = 9,       // independent observation hoisted across a
                             // commit boundary, merging write batches
  // memsync-prune
  kReplayDeadPage = 10,      // non-metastate page after the segment's
                             // first job start: the replayer skips it
};

const char* OptActionName(OptAction a);
const char* OptReasonName(OptReason r);

// One justification record. `index`/`aux_index` refer to entry positions
// in the ORIGINAL (pre-optimization) log, so an auditor can line the trace
// up against the unoptimized recording.
struct OptRecord {
  std::string pass;        // producing pass name
  OptAction action = OptAction::kDelete;
  OptReason reason = OptReason::kDeadConfigRewrite;
  uint32_t index = 0;      // original log index the action applies to
  uint32_t aux_index = 0;  // witness (dominating def/observation, merge
                           // target); 0 when not applicable
  uint64_t detail = 0;     // action-specific payload (bits rewritten,
                           // bytes pruned, delay folded, ...)
};

struct OptimizationProvenance {
  bool optimized = false;
  uint32_t original_entries = 0;  // log length before optimization
  std::vector<OptRecord> records;
};

struct RecordingHeader {
  uint32_t magic = 0x47525452;  // "GRTR"
  uint32_t version = kRecordingVersion;
  std::string workload;
  SkuId sku = SkuId::kMaliG71Mp8;
  uint64_t record_nonce = 0;  // freshness / identification
  // Per-layer granularity (Fig. 2): this recording is segment k of n
  // produced by one record run; {0, 1} for a monolithic recording.
  uint32_t segment_index = 0;
  uint32_t segment_count = 1;
  // Offline optimizer provenance (v3). Recorders emit an empty block;
  // `grt_opt` fills it in.
  OptimizationProvenance provenance;
  // Static resource footprint (v4), stamped at recording finish and
  // re-stamped by the optimizer (the log it summarizes changed).
  ResourceFootprint footprint;
};

class Recording {
 public:
  RecordingHeader header;
  std::map<std::string, TensorBinding> bindings;
  InteractionLog log;

  // Serializes the body (everything except the signature).
  Bytes SerializeBody() const;

  // Body + HMAC trailer under `key` (the cloud/session key).
  Bytes SerializeSigned(const Bytes& key) const;

  // Verifies the trailer MAC and parses. Refuses tampered recordings.
  static Result<Recording> ParseSigned(const Bytes& raw, const Bytes& key);

  // Parses without verification (for introspection in trusted tests).
  static Result<Recording> ParseUnsigned(const Bytes& body);
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_RECORDING_H_
