// The recording container: header + tensor bindings + interaction log,
// signed by the producer (the cloud, §3.2: "DriverShim processes logged
// interactions as a recording; it signs and sends the recording back").
//
// The replayer verifies the signature and the SKU identity before touching
// the GPU: "the replayer only accepts recordings signed by the cloud"
// (§7.1), and recordings are SKU-specific (§2.4).
#ifndef GRT_SRC_RECORD_RECORDING_H_
#define GRT_SRC_RECORD_RECORDING_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/bytes.h"
#include "src/common/sha256.h"
#include "src/common/status.h"
#include "src/record/log.h"
#include "src/sku/sku.h"

namespace grt {

// Where a named workload tensor lives in GPU memory; the replayer uses
// these to inject new inputs / model parameters and fetch outputs
// ("the replayer injects a new input to the recorded input address and can
// later retrieve the corresponding output from the recorded output
// address", §2.3).
struct TensorBinding {
  uint64_t va = 0;
  uint64_t n_floats = 0;
  // Physical pages backing the tensor, in VA order (the replayer writes
  // through physical addresses; it has no GPU stack to translate).
  std::vector<uint64_t> pages;
  bool writable_at_replay = false;  // inputs/parameters: yes; outputs: no
};

// Container format revision. v2 added the per-read speculative mark to the
// kRegRead wire encoding; v1 recordings are refused (they predate the
// static verifier and cannot prove speculation-residue freedom).
constexpr uint32_t kRecordingVersion = 2;

struct RecordingHeader {
  uint32_t magic = 0x47525452;  // "GRTR"
  uint32_t version = kRecordingVersion;
  std::string workload;
  SkuId sku = SkuId::kMaliG71Mp8;
  uint64_t record_nonce = 0;  // freshness / identification
  // Per-layer granularity (Fig. 2): this recording is segment k of n
  // produced by one record run; {0, 1} for a monolithic recording.
  uint32_t segment_index = 0;
  uint32_t segment_count = 1;
};

class Recording {
 public:
  RecordingHeader header;
  std::map<std::string, TensorBinding> bindings;
  InteractionLog log;

  // Serializes the body (everything except the signature).
  Bytes SerializeBody() const;

  // Body + HMAC trailer under `key` (the cloud/session key).
  Bytes SerializeSigned(const Bytes& key) const;

  // Verifies the trailer MAC and parses. Refuses tampered recordings.
  static Result<Recording> ParseSigned(const Bytes& raw, const Bytes& key);

  // Parses without verification (for introspection in trusted tests).
  static Result<Recording> ParseUnsigned(const Bytes& body);
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_RECORDING_H_
