#include "src/record/layered.h"

namespace grt {

Status LayeredReplayer::LoadSigned(const std::vector<Bytes>& wires,
                                   const Bytes& key) {
  std::vector<Recording> segments;
  for (const Bytes& wire : wires) {
    GRT_ASSIGN_OR_RETURN(Recording rec, Recording::ParseSigned(wire, key));
    segments.push_back(std::move(rec));
  }
  return Load(std::move(segments));
}

Status LayeredReplayer::Load(std::vector<Recording> segments) {
  if (segments.empty()) {
    return InvalidArgument("no segments");
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const RecordingHeader& h = segments[i].header;
    if (h.segment_index != i) {
      return IntegrityViolation("segments out of order");
    }
    if (h.segment_count != segments.size()) {
      return IntegrityViolation("segment count mismatch");
    }
    if (h.sku != segments[0].header.sku ||
        h.record_nonce != segments[0].header.record_nonce) {
      return IntegrityViolation("segments from different record runs");
    }
    if (h.sku != gpu_->sku().id) {
      return FailedPrecondition(
          "recording was produced for a different GPU SKU");
    }
  }
  segments_ = std::move(segments);
  return OkStatus();
}

Status LayeredReplayer::StageTensor(const std::string& name,
                                    const std::vector<float>& data) {
  if (segments_.empty()) {
    return FailedPrecondition("StageTensor before Load");
  }
  auto it = segments_[0].bindings.find(name);
  if (it == segments_[0].bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  if (!it->second.writable_at_replay) {
    return PermissionDenied("tensor '" + name + "' is not injectable");
  }
  if (data.size() != it->second.n_floats) {
    return InvalidArgument("tensor '" + name + "' size mismatch");
  }
  staged_[name] = data;
  return OkStatus();
}

Result<ReplayReport> LayeredReplayer::ReplayAll(size_t first_segment,
                                                bool scrub_after_last) {
  if (segments_.empty()) {
    return FailedPrecondition("ReplayAll before Load");
  }
  if (first_segment >= segments_.size()) {
    return OutOfRange("first_segment beyond the last segment");
  }
  ReplayReport total;
  TimePoint start = timeline_->now();
  for (size_t i = first_segment; i < segments_.size(); ++i) {
    ReplayConfig config;
    config.scrub_before = i == first_segment && first_segment == 0;
    config.scrub_after = scrub_after_last && i + 1 == segments_.size();
    Replayer replayer(gpu_, tzasc_, mem_, timeline_, config);
    GRT_RETURN_IF_ERROR(replayer.Load(segments_[i]));
    if (i == first_segment) {
      for (const auto& [name, data] : staged_) {
        GRT_RETURN_IF_ERROR(replayer.StageTensor(name, data));
      }
    }
    GRT_ASSIGN_OR_RETURN(ReplayReport report, replayer.Replay());
    total.entries_replayed += report.entries_replayed;
    total.pages_applied += report.pages_applied;
    total.reads_verified += report.reads_verified;
  }
  total.delay = timeline_->now() - start;
  return total;
}

Result<std::vector<float>> LayeredReplayer::ReadTensor(
    const std::string& name) const {
  if (segments_.empty()) {
    return FailedPrecondition("ReadTensor before Load");
  }
  Replayer probe(gpu_, tzasc_, mem_, timeline_);
  GRT_RETURN_IF_ERROR(probe.Load(segments_[0]));
  return probe.ReadTensor(name);
}

}  // namespace grt
