#include "src/record/layered.h"

namespace grt {

Status LayeredReplayer::LoadSigned(const std::vector<Bytes>& wires,
                                   const Bytes& key) {
  std::vector<Recording> segments;
  for (const Bytes& wire : wires) {
    GRT_ASSIGN_OR_RETURN(Recording rec, Recording::ParseSigned(wire, key));
    segments.push_back(std::move(rec));
  }
  return Load(std::move(segments));
}

Status LayeredReplayer::Load(std::vector<Recording> segments) {
  if (segments.empty()) {
    return InvalidArgument("no segments");
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const RecordingHeader& h = segments[i].header;
    if (h.segment_index != i) {
      return IntegrityViolation("segments out of order");
    }
    if (h.segment_count != segments.size()) {
      return IntegrityViolation("segment count mismatch");
    }
    if (h.sku != segments[0].header.sku ||
        h.record_nonce != segments[0].header.record_nonce) {
      return IntegrityViolation("segments from different record runs");
    }
    if (h.sku != gpu_->sku().id) {
      return FailedPrecondition(
          "recording was produced for a different GPU SKU");
    }
  }
  // One persistent replayer per segment: static verification and plan
  // compilation run here, once, not on every ReplayAll call. Scrub flags
  // are call-dependent and set per ReplayAll via SetScrub.
  std::vector<std::unique_ptr<Replayer>> replayers;
  for (Recording& segment : segments) {
    auto replayer =
        std::make_unique<Replayer>(gpu_, tzasc_, mem_, timeline_);
    GRT_RETURN_IF_ERROR(replayer->Load(std::move(segment)));
    replayers.push_back(std::move(replayer));
  }
  replayers_ = std::move(replayers);
  staged_.clear();
  return OkStatus();
}

Status LayeredReplayer::StageTensor(const std::string& name,
                                    const std::vector<float>& data) {
  if (replayers_.empty()) {
    return FailedPrecondition("StageTensor before Load");
  }
  const auto& bindings = replayers_[0]->recording().bindings;
  auto it = bindings.find(name);
  if (it == bindings.end()) {
    return NotFound("no tensor binding '" + name + "'");
  }
  if (!it->second.writable_at_replay) {
    return PermissionDenied("tensor '" + name + "' is not injectable");
  }
  if (data.size() != it->second.n_floats) {
    return InvalidArgument("tensor '" + name + "' size mismatch");
  }
  staged_[name] = data;
  return OkStatus();
}

Result<ReplayReport> LayeredReplayer::ReplayAll(size_t first_segment,
                                                bool scrub_after_last) {
  if (replayers_.empty()) {
    return FailedPrecondition("ReplayAll before Load");
  }
  if (first_segment >= replayers_.size()) {
    return OutOfRange("first_segment beyond the last segment");
  }
  ReplayReport total;
  TimePoint start = timeline_->now();
  for (size_t i = first_segment; i < replayers_.size(); ++i) {
    Replayer& replayer = *replayers_[i];
    replayer.SetScrub(/*before=*/i == first_segment && first_segment == 0,
                      /*after=*/scrub_after_last &&
                          i + 1 == replayers_.size());
    if (i == first_segment) {
      for (const auto& [name, data] : staged_) {
        GRT_RETURN_IF_ERROR(replayer.StageTensor(name, data));
      }
    }
    GRT_ASSIGN_OR_RETURN(ReplayReport report, replayer.Replay());
    total.entries_replayed += report.entries_replayed;
    total.pages_applied += report.pages_applied;
    total.reads_verified += report.reads_verified;
    total.mem_bytes_applied += report.mem_bytes_applied;
    total.pages_skipped_clean += report.pages_skipped_clean;
    total.plan_used = report.plan_used;
    total.warm = report.warm;
  }
  total.delay = timeline_->now() - start;
  return total;
}

Result<std::vector<float>> LayeredReplayer::ReadTensor(
    const std::string& name) const {
  if (replayers_.empty()) {
    return FailedPrecondition("ReadTensor before Load");
  }
  return replayers_[0]->ReadTensor(name);
}

}  // namespace grt
