#include "src/record/store.h"

#include "src/analysis/verifier.h"
#include "src/common/sha256.h"

namespace grt {

std::string RecordingStore::KeyOf(const std::string& workload, SkuId sku) {
  return workload + "|" + std::to_string(static_cast<uint32_t>(sku));
}

Status RecordingStore::Install(const Bytes& signed_recording) {
  GRT_ASSIGN_OR_RETURN(Recording rec,
                       Recording::ParseSigned(signed_recording, key_));
  // Admission gate: never persist a recording the replayer would have to
  // refuse — the sealed store must hold only statically-valid recordings.
  GRT_RETURN_IF_ERROR(VerifyRecording(rec));
  std::lock_guard<std::mutex> lock(*mu_);
  std::string k = KeyOf(rec.header.workload, rec.header.sku);
  auto it = entries_.find(k);
  if (it != entries_.end()) {
    // Only accept strictly newer recordings for the same identity (a
    // rolled-back recording could reintroduce a withdrawn computation).
    auto existing = Recording::ParseSigned(it->second, key_);
    if (existing.ok() &&
        existing->header.record_nonce >= rec.header.record_nonce) {
      return FailedPrecondition(
          "an equal-or-newer recording is already installed");
    }
  }
  entries_[k] = signed_recording;
  ++version_;
  return OkStatus();
}

Result<Recording> RecordingStore::Load(const std::string& workload,
                                       SkuId sku) const {
  std::lock_guard<std::mutex> lock(*mu_);
  GRT_ASSIGN_OR_RETURN(std::shared_ptr<const Recording> rec,
                       LoadSharedLocked(workload, sku, nullptr));
  return *rec;
}

Result<std::shared_ptr<const Recording>> RecordingStore::LoadShared(
    const std::string& workload, SkuId sku, Sha256Digest* out_digest) const {
  std::lock_guard<std::mutex> lock(*mu_);
  return LoadSharedLocked(workload, sku, out_digest);
}

Result<std::shared_ptr<const Recording>> RecordingStore::LoadSharedLocked(
    const std::string& workload, SkuId sku, Sha256Digest* out_digest) const {
  std::string k = KeyOf(workload, sku);
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    return NotFound("no recording for '" + workload + "' on this SKU");
  }
  // Stored bytes are outside the TCB at rest, so a load must never trust
  // them blindly — but re-running the HMAC and a full parse on EVERY load
  // is per-replay waste. Instead, prove the bytes unchanged since the last
  // verified parse (SHA-256 comparison) and reuse that verdict; any byte
  // flip misses the cache and takes the full ParseSigned path, which
  // rejects tampering exactly as before.
  Sha256Digest digest = Sha256::Hash(it->second);
  if (out_digest != nullptr) {
    *out_digest = digest;
  }
  auto cached = parse_cache_.find(k);
  if (cached != parse_cache_.end() && cached->second.digest == digest) {
    return cached->second.parsed;
  }
  GRT_ASSIGN_OR_RETURN(Recording rec, Recording::ParseSigned(it->second, key_));
  auto parsed = std::make_shared<const Recording>(std::move(rec));
  parse_cache_[k] = ParseCacheEntry{digest, parsed};
  return parsed;
}

bool RecordingStore::Contains(const std::string& workload, SkuId sku) const {
  std::lock_guard<std::mutex> lock(*mu_);
  return LoadSharedLocked(workload, sku, nullptr).ok();
}

Status RecordingStore::Remove(const std::string& workload, SkuId sku) {
  std::lock_guard<std::mutex> lock(*mu_);
  if (entries_.erase(KeyOf(workload, sku)) == 0) {
    return NotFound("no such recording");
  }
  parse_cache_.erase(KeyOf(workload, sku));
  ++version_;
  return OkStatus();
}

Bytes RecordingStore::Seal() const {
  std::lock_guard<std::mutex> lock(*mu_);
  ByteWriter w;
  w.PutString("grt-store-v1");
  w.PutU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [k, bytes] : entries_) {
    w.PutString(k);
    w.PutBytes(bytes);
  }
  Bytes body = w.Take();
  Sha256Digest mac = HmacSha256(key_, body);
  ByteWriter sealed;
  sealed.PutBytes(body);
  sealed.PutRaw(mac.data(), mac.size());
  return sealed.Take();
}

Result<RecordingStore> RecordingStore::Unseal(const Bytes& sealed,
                                              Bytes key) {
  ByteReader r(sealed);
  GRT_ASSIGN_OR_RETURN(Bytes body, r.ReadBytes());
  Sha256Digest mac;
  GRT_RETURN_IF_ERROR(r.ReadRaw(mac.data(), mac.size()));
  if (HmacSha256(key, body) != mac) {
    return IntegrityViolation("sealed store authentication failed");
  }

  ByteReader br(body);
  GRT_ASSIGN_OR_RETURN(std::string magic, br.ReadString());
  if (magic != "grt-store-v1") {
    return IntegrityViolation("bad store magic");
  }
  RecordingStore store(std::move(key));
  GRT_ASSIGN_OR_RETURN(uint32_t n, br.ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    GRT_ASSIGN_OR_RETURN(std::string k, br.ReadString());
    GRT_ASSIGN_OR_RETURN(Bytes bytes, br.ReadBytes());
    store.entries_[k] = std::move(bytes);
  }
  return store;
}

}  // namespace grt
