#include "src/record/log.h"

#include <cstdio>

namespace grt {

const char* LogOpName(LogOp op) {
  switch (op) {
    case LogOp::kRegWrite: return "reg-write";
    case LogOp::kRegRead: return "reg-read";
    case LogOp::kPollWait: return "poll-wait";
    case LogOp::kDelay: return "delay";
    case LogOp::kIrqWait: return "irq-wait";
    case LogOp::kMemPage: return "mem-page";
  }
  return "?";
}

void LogEntry::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(op));
  switch (op) {
    case LogOp::kRegWrite:
      w->PutU32(reg);
      w->PutU32(value);
      break;
    case LogOp::kRegRead:
      w->PutU32(reg);
      w->PutU32(value);
      w->PutBool(speculative);
      break;
    case LogOp::kPollWait:
      w->PutU32(reg);
      w->PutU32(mask);
      w->PutU32(expected);
      w->PutU32(value);  // final observed value
      break;
    case LogOp::kDelay:
      w->PutI64(delay);
      break;
    case LogOp::kIrqWait:
      w->PutU8(irq_lines);
      break;
    case LogOp::kMemPage:
      w->PutU64(pa);
      w->PutBool(metastate);
      w->PutBytes(data);
      break;
  }
}

Result<LogEntry> LogEntry::Deserialize(ByteReader* r) {
  LogEntry e;
  GRT_ASSIGN_OR_RETURN(uint8_t op_raw, r->ReadU8());
  if (op_raw < 1 || op_raw > 6) {
    return IntegrityViolation("bad log entry tag");
  }
  e.op = static_cast<LogOp>(op_raw);
  switch (e.op) {
    case LogOp::kRegWrite: {
      GRT_ASSIGN_OR_RETURN(e.reg, r->ReadU32());
      GRT_ASSIGN_OR_RETURN(e.value, r->ReadU32());
      break;
    }
    case LogOp::kRegRead: {
      GRT_ASSIGN_OR_RETURN(e.reg, r->ReadU32());
      GRT_ASSIGN_OR_RETURN(e.value, r->ReadU32());
      GRT_ASSIGN_OR_RETURN(e.speculative, r->ReadBool());
      break;
    }
    case LogOp::kPollWait: {
      GRT_ASSIGN_OR_RETURN(e.reg, r->ReadU32());
      GRT_ASSIGN_OR_RETURN(e.mask, r->ReadU32());
      GRT_ASSIGN_OR_RETURN(e.expected, r->ReadU32());
      GRT_ASSIGN_OR_RETURN(e.value, r->ReadU32());
      break;
    }
    case LogOp::kDelay: {
      GRT_ASSIGN_OR_RETURN(e.delay, r->ReadI64());
      break;
    }
    case LogOp::kIrqWait: {
      GRT_ASSIGN_OR_RETURN(e.irq_lines, r->ReadU8());
      break;
    }
    case LogOp::kMemPage: {
      GRT_ASSIGN_OR_RETURN(e.pa, r->ReadU64());
      GRT_ASSIGN_OR_RETURN(e.metastate, r->ReadBool());
      GRT_ASSIGN_OR_RETURN(e.data, r->ReadBytes());
      break;
    }
  }
  return e;
}

namespace {

// Shared precondition check for the two read-entry mutators.
Status CheckReadEntry(const std::vector<LogEntry>& entries, size_t index,
                      const char* who) {
  char msg[128];
  if (index >= entries.size()) {
    std::snprintf(msg, sizeof(msg),
                  "%s: index %zu out of range (log has %zu entries)", who,
                  index, entries.size());
    return OutOfRange(msg);
  }
  if (entries[index].op != LogOp::kRegRead) {
    std::snprintf(msg, sizeof(msg),
                  "%s: entry %zu is a %s, not a register read", who, index,
                  LogOpName(entries[index].op));
    return InvalidArgument(msg);
  }
  return OkStatus();
}

}  // namespace

Status InteractionLog::PatchReadValue(size_t index, uint32_t value) {
  GRT_RETURN_IF_ERROR(CheckReadEntry(entries_, index, "PatchReadValue"));
  entries_[index].value = value;
  entries_[index].speculative = false;
  return OkStatus();
}

Status InteractionLog::ConfirmReadValue(size_t index) {
  GRT_RETURN_IF_ERROR(CheckReadEntry(entries_, index, "ConfirmReadValue"));
  entries_[index].speculative = false;
  return OkStatus();
}

size_t InteractionLog::CountOf(LogOp op) const {
  size_t n = 0;
  for (const auto& e : entries_) {
    n += (e.op == op);
  }
  return n;
}

InteractionLog InteractionLog::FromEntries(std::vector<LogEntry> entries) {
  InteractionLog log;
  log.entries_ = std::move(entries);
  return log;
}

Bytes InteractionLog::Serialize() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    e.Serialize(&w);
  }
  return w.Take();
}

Result<InteractionLog> InteractionLog::Deserialize(const Bytes& raw) {
  ByteReader r(raw);
  GRT_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  InteractionLog log;
  for (uint32_t i = 0; i < n; ++i) {
    GRT_ASSIGN_OR_RETURN(LogEntry e, LogEntry::Deserialize(&r));
    log.Add(std::move(e));
  }
  if (!r.Done()) {
    return IntegrityViolation("trailing bytes after log");
  }
  return log;
}

}  // namespace grt
