#include "src/record/recording.h"

namespace grt {

const char* OptActionName(OptAction a) {
  switch (a) {
    case OptAction::kDelete: return "delete";
    case OptAction::kRewrite: return "rewrite";
    case OptAction::kMerge: return "merge";
  }
  return "?";
}

const char* OptReasonName(OptReason r) {
  switch (r) {
    case OptReason::kDeadConfigRewrite: return "dead-config-rewrite";
    case OptReason::kNoOpPowerWord: return "no-op-power-word";
    case OptReason::kCancellingPowerPair: return "cancelling-power-pair";
    case OptReason::kDeadIrqClear: return "dead-irq-clear";
    case OptReason::kNondetRead: return "nondet-read";
    case OptReason::kDominatedObservation: return "dominated-observation";
    case OptReason::kIrqBitsRewritten: return "irq-bits-rewritten";
    case OptReason::kDelayMerged: return "delay-merged";
    case OptReason::kBatchCoalesced: return "batch-coalesced";
    case OptReason::kReplayDeadPage: return "replay-dead-page";
  }
  return "?";
}

Bytes Recording::SerializeBody() const {
  ByteWriter w;
  w.PutU32(header.magic);
  w.PutU32(header.version);
  w.PutString(header.workload);
  w.PutU32(static_cast<uint32_t>(header.sku));
  w.PutU64(header.record_nonce);
  w.PutU32(header.segment_index);
  w.PutU32(header.segment_count);

  w.PutBool(header.provenance.optimized);
  w.PutU32(header.provenance.original_entries);
  w.PutU32(static_cast<uint32_t>(header.provenance.records.size()));
  for (const OptRecord& rec : header.provenance.records) {
    w.PutString(rec.pass);
    w.PutU8(static_cast<uint8_t>(rec.action));
    w.PutU8(static_cast<uint8_t>(rec.reason));
    w.PutU32(rec.index);
    w.PutU32(rec.aux_index);
    w.PutU64(rec.detail);
  }

  w.PutBool(header.footprint.computed);
  auto put_ranges = [&w](const std::vector<FootprintRange>& ranges) {
    w.PutU32(static_cast<uint32_t>(ranges.size()));
    for (const FootprintRange& range : ranges) {
      w.PutU64(range.lo);
      w.PutU64(range.hi);
      w.PutU8(range.access);
    }
  };
  put_ranges(header.footprint.regs);
  put_ranges(header.footprint.pages);
  w.PutU8(header.footprint.irq_lines);
  w.PutU8(header.footprint.irq_external);
  w.PutU32(header.footprint.slot_write_mask);
  w.PutU32(header.footprint.as_write_mask);

  w.PutU32(static_cast<uint32_t>(bindings.size()));
  for (const auto& [name, b] : bindings) {
    w.PutString(name);
    w.PutU64(b.va);
    w.PutU64(b.n_floats);
    w.PutU32(static_cast<uint32_t>(b.pages.size()));
    for (uint64_t p : b.pages) {
      w.PutU64(p);
    }
    w.PutBool(b.writable_at_replay);
  }

  w.PutBytes(log.Serialize());
  return w.Take();
}

Bytes Recording::SerializeSigned(const Bytes& key) const {
  Bytes body = SerializeBody();
  Sha256Digest mac = HmacSha256(key, body);
  ByteWriter w;
  w.PutBytes(body);
  w.PutRaw(mac.data(), mac.size());
  return w.Take();
}

Result<Recording> Recording::ParseUnsigned(const Bytes& body) {
  ByteReader r(body);
  Recording rec;
  GRT_ASSIGN_OR_RETURN(rec.header.magic, r.ReadU32());
  if (rec.header.magic != RecordingHeader{}.magic) {
    return IntegrityViolation("bad recording magic");
  }
  GRT_ASSIGN_OR_RETURN(rec.header.version, r.ReadU32());
  if (rec.header.version != kRecordingVersion) {
    return IntegrityViolation("unsupported recording version");
  }
  GRT_ASSIGN_OR_RETURN(rec.header.workload, r.ReadString());
  GRT_ASSIGN_OR_RETURN(uint32_t sku_raw, r.ReadU32());
  rec.header.sku = static_cast<SkuId>(sku_raw);
  GRT_ASSIGN_OR_RETURN(rec.header.record_nonce, r.ReadU64());
  GRT_ASSIGN_OR_RETURN(rec.header.segment_index, r.ReadU32());
  GRT_ASSIGN_OR_RETURN(rec.header.segment_count, r.ReadU32());

  GRT_ASSIGN_OR_RETURN(rec.header.provenance.optimized, r.ReadBool());
  GRT_ASSIGN_OR_RETURN(rec.header.provenance.original_entries, r.ReadU32());
  GRT_ASSIGN_OR_RETURN(uint32_t n_opt_records, r.ReadU32());
  for (uint32_t i = 0; i < n_opt_records; ++i) {
    OptRecord orec;
    GRT_ASSIGN_OR_RETURN(orec.pass, r.ReadString());
    GRT_ASSIGN_OR_RETURN(uint8_t action_raw, r.ReadU8());
    orec.action = static_cast<OptAction>(action_raw);
    GRT_ASSIGN_OR_RETURN(uint8_t reason_raw, r.ReadU8());
    orec.reason = static_cast<OptReason>(reason_raw);
    GRT_ASSIGN_OR_RETURN(orec.index, r.ReadU32());
    GRT_ASSIGN_OR_RETURN(orec.aux_index, r.ReadU32());
    GRT_ASSIGN_OR_RETURN(orec.detail, r.ReadU64());
    rec.header.provenance.records.push_back(std::move(orec));
  }

  GRT_ASSIGN_OR_RETURN(rec.header.footprint.computed, r.ReadBool());
  auto read_ranges =
      [&r](std::vector<FootprintRange>* ranges) -> Status {
    GRT_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t i = 0; i < count; ++i) {
      FootprintRange range;
      GRT_ASSIGN_OR_RETURN(range.lo, r.ReadU64());
      GRT_ASSIGN_OR_RETURN(range.hi, r.ReadU64());
      GRT_ASSIGN_OR_RETURN(range.access, r.ReadU8());
      ranges->push_back(range);
    }
    return OkStatus();
  };
  GRT_RETURN_IF_ERROR(read_ranges(&rec.header.footprint.regs));
  GRT_RETURN_IF_ERROR(read_ranges(&rec.header.footprint.pages));
  GRT_ASSIGN_OR_RETURN(rec.header.footprint.irq_lines, r.ReadU8());
  GRT_ASSIGN_OR_RETURN(rec.header.footprint.irq_external, r.ReadU8());
  GRT_ASSIGN_OR_RETURN(rec.header.footprint.slot_write_mask, r.ReadU32());
  GRT_ASSIGN_OR_RETURN(rec.header.footprint.as_write_mask, r.ReadU32());

  GRT_ASSIGN_OR_RETURN(uint32_t n_bindings, r.ReadU32());
  for (uint32_t i = 0; i < n_bindings; ++i) {
    GRT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    TensorBinding b;
    GRT_ASSIGN_OR_RETURN(b.va, r.ReadU64());
    GRT_ASSIGN_OR_RETURN(b.n_floats, r.ReadU64());
    GRT_ASSIGN_OR_RETURN(uint32_t n_pages, r.ReadU32());
    for (uint32_t p = 0; p < n_pages; ++p) {
      GRT_ASSIGN_OR_RETURN(uint64_t pa, r.ReadU64());
      b.pages.push_back(pa);
    }
    GRT_ASSIGN_OR_RETURN(b.writable_at_replay, r.ReadBool());
    rec.bindings[name] = std::move(b);
  }

  GRT_ASSIGN_OR_RETURN(Bytes log_bytes, r.ReadBytes());
  GRT_ASSIGN_OR_RETURN(rec.log, InteractionLog::Deserialize(log_bytes));
  return rec;
}

Result<Recording> Recording::ParseSigned(const Bytes& raw, const Bytes& key) {
  ByteReader r(raw);
  GRT_ASSIGN_OR_RETURN(Bytes body, r.ReadBytes());
  Sha256Digest mac;
  GRT_RETURN_IF_ERROR(r.ReadRaw(mac.data(), mac.size()));
  Sha256Digest expected = HmacSha256(key, body);
  if (expected != mac) {
    return IntegrityViolation("recording signature verification failed");
  }
  return ParseUnsigned(body);
}

}  // namespace grt
