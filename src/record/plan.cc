#include "src/record/plan.h"

#include <cstring>
#include <utility>

#include "src/hw/regs.h"
#include "src/mem/phys_mem.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace grt {

bool IsReplayJobStart(const LogEntry& e) {
  if (e.op != LogOp::kRegWrite || e.value != kJsCommandStart) {
    return false;
  }
  if (e.reg < kJobSlotBase ||
      e.reg >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  return (e.reg - kJobSlotBase) % kJobSlotStride == kJsCommandNext;
}

size_t ReplayPlan::CountOps(LogOp kind) const {
  size_t n = 0;
  for (const PlanOp& op : ops) {
    n += op.kind == kind ? 1 : 0;
  }
  return n;
}

ReplayPlan CompileReplayPlan(const Recording& recording) {
  return CompileReplayPlan(recording, PlanCompileOptions{});
}

ReplayPlan CompileReplayPlan(const Recording& recording,
                             const PlanCompileOptions& options) {
  GRT_OBS_COUNT("plan.compiles", 1);
  GRT_TRACE_SPAN("plan.compile", "plan");
  ReplayPlan plan;
  const auto& entries = recording.log.entries();
  plan.source_entries = entries.size();

  // Pass 1: lower the log. Pre-job-start full-page snapshots accumulate
  // into `image` (last write wins — the interpreter applies them in order,
  // so only the final content matters); everything else becomes an op in
  // source order.
  std::map<uint64_t, std::pair<Bytes, bool>> image;  // pa -> (data, meta)
  bool first_image_done = false;
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    PlanOp op;
    op.kind = e.op;
    op.log_index = static_cast<uint32_t>(i);
    switch (e.op) {
      case LogOp::kMemPage: {
        bool full_page =
            e.data.size() == kPageSize && (e.pa & kPageMask) == 0;
        if (!first_image_done && full_page) {
          auto [it, inserted] =
              image.insert_or_assign(e.pa, std::make_pair(e.data, e.metastate));
          (void)it;
          if (!inserted) {
            ++plan.duplicate_pages;
          }
          continue;  // absorbed into the initial image, not an op
        }
        if (first_image_done && !e.metastate) {
          // The interpreter skips these on every call; drop them once.
          ++plan.dropped_pages;
          continue;
        }
        // Mid-replay metastate reapplication (or an odd-shaped snapshot a
        // hand-built log may carry): keep it ordered against the stimuli.
        op.image = static_cast<uint32_t>(plan.mid_images.size());
        plan.mid_images.push_back(PlanImage{e.pa, e.data});
        break;
      }
      case LogOp::kRegWrite:
        op.reg = e.reg;
        op.value = e.value;
        if (!first_image_done && IsReplayJobStart(e)) {
          first_image_done = true;
        }
        break;
      case LogOp::kRegRead:
        op.reg = e.reg;
        op.value = e.value;
        op.verify = !IsNondeterministicRegister(e.reg);
        break;
      case LogOp::kPollWait:
        op.reg = e.reg;
        op.mask = e.mask;
        op.expected = e.expected;
        break;
      case LogOp::kDelay:
        op.delay = e.delay;
        break;
      case LogOp::kIrqWait:
        op.irq_lines = e.irq_lines;
        break;
    }
    plan.ops.push_back(op);
  }

  // Pass 2: coalesce the initial image into contiguous page runs. The map
  // iterates in ascending pa, so a run breaks exactly where a page gap
  // opens.
  for (auto& [pa, page] : image) {
    auto& [data, meta] = page;
    if (plan.regions.empty() ||
        plan.regions.back().base_pa +
                static_cast<uint64_t>(plan.regions.back().n_pages) *
                    kPageSize !=
            pa) {
      plan.regions.push_back(PlanRegion{pa, 0, Bytes(), {}});
    }
    PlanRegion& region = plan.regions.back();
    if (options.include_images) {
      region.image.insert(region.image.end(), data.begin(), data.end());
    }
    region.metastate.push_back(meta);
    ++region.n_pages;
    ++plan.image_pages;
    plan.image_bytes += kPageSize;
  }

  // Pass 3: patch table. Chunks mirror the interpreter's page walk in
  // InjectStaged/ReadTensor: tensor bytes map onto the binding's page list
  // in order, one chunk per page.
  for (const auto& [name, binding] : recording.bindings) {
    TensorPatch patch;
    patch.n_floats = binding.n_floats;
    patch.writable = binding.writable_at_replay;
    uint64_t bytes = binding.n_floats * sizeof(float);
    uint64_t done = 0;
    size_t page_idx = 0;
    while (done < bytes && page_idx < binding.pages.size()) {
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(bytes - done, kPageSize));
      patch.chunks.push_back(PatchChunk{binding.pages[page_idx], done, chunk});
      done += chunk;
      ++page_idx;
    }
    patch.complete = done == bytes;
    plan.patches.emplace(name, std::move(patch));
  }

  return plan;
}

}  // namespace grt
