// Recorder: the record-phase interposer at the CPU/GPU boundary.
//
// Implements BusObserver so it sees every register access, poll, delay,
// and interrupt wait the driver performs; on each job-start write it
// snapshots the GPU shared memory (deduplicated page images, tagged
// metastate vs program data). The result is an InteractionLog that the
// Recording container wraps and signs.
//
// Used by both the local GR baseline (wrapping DirectBus) and by GR-T's
// DriverShim, which feeds the same events from the cloud side.
#ifndef GRT_SRC_RECORD_RECORDER_H_
#define GRT_SRC_RECORD_RECORDER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/driver/direct_bus.h"
#include "src/driver/kbase.h"
#include "src/record/log.h"
#include "src/record/recording.h"

namespace grt {

class Recorder : public BusObserver {
 public:
  // The recorder introspects the driver for the GPU page sets (which pages
  // exist, which are metastate) and reads page content from `mem`.
  Recorder(const KbaseDriver* driver, const PhysicalMemory* mem)
      : driver_(driver), mem_(mem) {}

  // BusObserver.
  void OnRegRead(uint32_t offset, uint32_t value) override;
  void OnRegWrite(uint32_t offset, uint32_t value) override;
  void OnPoll(uint32_t offset, uint32_t mask, uint32_t expected,
              const PollResult& result) override;
  void OnDelay(Duration d) override;
  void OnIrqWait(const IrqStatus& status) override;

  // Snapshot all GPU pages now (deduplicated). Called automatically on
  // job-start writes; call manually to capture the final state.
  void SnapshotMemory();

  const InteractionLog& log() const { return log_; }
  InteractionLog TakeLog() { return std::move(log_); }

  // Builds a complete recording for `workload`, attaching tensor bindings
  // (VA -> physical pages resolved through the driver).
  Result<Recording> Finish(const std::string& workload, SkuId sku,
                           const std::map<std::string, TensorBinding>& bindings,
                           uint64_t nonce);

 private:
  const KbaseDriver* driver_;
  const PhysicalMemory* mem_;
  InteractionLog log_;
  std::unordered_map<uint64_t, uint32_t> page_crc_;  // pa -> last content crc
};

// Helper: resolves a tensor's physical pages through the driver's regions.
Result<TensorBinding> MakeBinding(const KbaseDriver& driver, uint64_t va,
                                  uint64_t n_floats, bool writable_at_replay);

}  // namespace grt

#endif  // GRT_SRC_RECORD_RECORDER_H_
