// The CPU/GPU interaction log: the content of a recording.
//
// Entries capture everything needed to reproduce GPU computation without a
// GPU stack (§2.3 "Completeness"): register writes (CPU stimuli), register
// reads with their observed values (GPU responses, validated at replay),
// polling waits, explicit delays, interrupt waits, and snapshots of shared
// memory (page images, deduplicated against the previous snapshot).
#ifndef GRT_SRC_RECORD_LOG_H_
#define GRT_SRC_RECORD_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"

namespace grt {

enum class LogOp : uint8_t {
  kRegWrite = 1,
  kRegRead = 2,   // expected value; replay verifies deterministic registers
  kPollWait = 3,  // replay: poll until (value & mask) == expected
  kDelay = 4,
  kIrqWait = 5,   // replay: wait for the same interrupt lines
  kMemPage = 6,   // page image: pa + content (possibly meta-only flagged)
};

// Human-readable op name ("reg-write", "poll-wait", ...).
const char* LogOpName(LogOp op);

struct LogEntry {
  LogOp op = LogOp::kRegWrite;
  uint32_t reg = 0;
  uint32_t value = 0;
  uint32_t mask = 0;      // kPollWait
  uint32_t expected = 0;  // kPollWait
  uint8_t irq_lines = 0;  // kIrqWait: bit0 job, bit1 gpu, bit2 mmu
  Duration delay = 0;     // kDelay
  uint64_t pa = 0;        // kMemPage
  bool metastate = false; // kMemPage: page holds GPU metastate
  // kRegRead: value is a speculation-engine prediction that has not (yet)
  // been validated against the device (§4.2). Cleared when the real reply
  // matches (ConfirmReadValue) or the entry is patched with the truth
  // (PatchReadValue). A finished recording must have no speculative reads;
  // the static verifier rejects any residue.
  bool speculative = false;
  Bytes data;             // kMemPage content

  void Serialize(ByteWriter* w) const;
  static Result<LogEntry> Deserialize(ByteReader* r);
};

class InteractionLog {
 public:
  void Add(LogEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<LogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  // Counts by kind, for stats and tests.
  size_t CountOf(LogOp op) const;

  // Replaces the expected value of a kRegRead entry (misprediction
  // recovery patches predicted values with the device's true values) and
  // clears its speculative mark. Rejects out-of-range indices and entries
  // that are not register reads with a descriptive status.
  Status PatchReadValue(size_t index, uint32_t value);

  // Clears the speculative mark on a kRegRead entry whose predicted value
  // the device confirmed verbatim (§4.2 validation).
  Status ConfirmReadValue(size_t index);

  Bytes Serialize() const;
  static Result<InteractionLog> Deserialize(const Bytes& raw);

  // Rebuilds a log from raw entries. Offline tooling only (the optimizer
  // lowers an edited dataflow IR back to a log); the record path always
  // appends through Add.
  static InteractionLog FromEntries(std::vector<LogEntry> entries);

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace grt

#endif  // GRT_SRC_RECORD_LOG_H_
