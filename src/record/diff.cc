#include "src/record/diff.h"

#include <cstdio>

#include "src/hw/regs.h"

namespace grt {
namespace {

std::string Describe(size_t index, const std::string& what) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "entry %zu: %s",
                index, what.c_str());
  return buf;
}

}  // namespace

LogDiff CompareInteractionLogs(const InteractionLog& expected,
                               const InteractionLog& observed,
                               const LogDiffOptions& options) {
  LogDiff diff;
  size_t n = std::min(expected.size(), observed.size());

  auto note = [&](size_t i, bool structural, const std::string& what) {
    if (diff.identical) {
      diff.identical = false;
      diff.first_divergence = i;
      diff.description = Describe(i, what);
    }
    if (structural) {
      ++diff.structure_mismatches;
    } else {
      ++diff.value_mismatches;
    }
  };

  for (size_t i = 0; i < n; ++i) {
    const LogEntry& e = expected.entries()[i];
    const LogEntry& o = observed.entries()[i];
    ++diff.entries_compared;
    if (e.op != o.op) {
      note(i, true, "entry kind differs");
      continue;
    }
    switch (e.op) {
      case LogOp::kRegWrite:
        if (e.reg != o.reg || e.value != o.value) {
          note(i, e.reg != o.reg,
               std::string("write to ") + RegisterName(e.reg) + " differs");
        }
        break;
      case LogOp::kRegRead: {
        if (e.reg != o.reg) {
          note(i, true, "read register differs");
          break;
        }
        bool skip = options.ignore_nondeterministic_values &&
                    IsNondeterministicRegister(e.reg);
        if (!skip && e.value != o.value) {
          char what[128];
          std::snprintf(what, sizeof(what),
                        "read %s: expected 0x%x, observed 0x%x",
                        RegisterName(e.reg), e.value, o.value);
          note(i, false, what);
        }
        break;
      }
      case LogOp::kPollWait:
        if (e.reg != o.reg || e.mask != o.mask || e.expected != o.expected) {
          note(i, true, std::string("poll on ") + RegisterName(e.reg) +
                            " differs structurally");
        }
        break;
      case LogOp::kDelay:
        if (e.delay != o.delay) {
          note(i, false, "delay length differs");
        }
        break;
      case LogOp::kIrqWait:
        if (e.irq_lines != o.irq_lines) {
          note(i, false, "interrupt lines differ");
        }
        break;
      case LogOp::kMemPage:
        if (e.pa != o.pa || e.metastate != o.metastate) {
          note(i, true, "memory page identity differs");
        } else if (!options.ignore_page_contents && e.data != o.data) {
          note(i, false, "memory page content differs");
        }
        break;
    }
  }

  if (expected.size() != observed.size()) {
    note(n, true, "log lengths differ");
  }
  return diff;
}

}  // namespace grt
