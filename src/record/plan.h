// Compiled replay plans: the TEE's fast path for recurring inference.
//
// The interpreter in Replayer walks the interaction log entry-by-entry on
// every Replay() call and re-applies every recorded memory page each time.
// That is fine for a one-shot demonstration, but the paper's deployed
// artifact replays "repeatedly on new input" (§3.2) — the per-inference
// cost is what a client pays. A ReplayPlan lowers a loaded (signature- and
// verifier-checked) recording once into a flat, cache-friendly form:
//
//   * a dense op array with register ops pre-decoded (the per-read
//     verify decision — deterministic register under verify_reads — is
//     resolved at compile time, not per replay);
//   * the initial memory image pre-coalesced into per-region contiguous
//     page runs (one memcpy per run instead of one Write per log entry),
//     deduplicated last-write-wins across repeated snapshots of the same
//     page;
//   * mid-replay metastate reapplications kept as ops (they are
//     semantically ordered against the register stimuli); non-metastate
//     pages after the first job start — which the interpreter skips on
//     every single call — are dropped at compile time;
//   * a patch table of pre-resolved (physical address, tensor offset)
//     chunks for every tensor binding, so injection and readout are
//     straight copy loops with no page arithmetic.
//
// Compilation is purely mechanical: every op in the plan corresponds to a
// log entry the interpreter would have executed, in the same order. The
// equivalence suite (tests/integration/plan_equivalence_test.cc) holds the
// two paths to bitwise-identical outputs on every example network and the
// chaos corpus.
#ifndef GRT_SRC_RECORD_PLAN_H_
#define GRT_SRC_RECORD_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/mem/phys_mem.h"
#include "src/record/recording.h"

namespace grt {

// The replayer's job-start predicate (a JS*_COMMAND_NEXT = START write):
// the boundary after which non-metastate page snapshots reflect dry-run
// compute and are never applied. Shared by the interpreter and the plan
// compiler so the two notions can never drift apart.
bool IsReplayJobStart(const LogEntry& e);

// One pre-decoded replay step. Same kinds as LogOp; kMemPage ops index
// into ReplayPlan::mid_images (mid-replay metastate reapplications only —
// the initial image lives in ReplayPlan::regions).
struct PlanOp {
  LogOp kind = LogOp::kRegWrite;
  // kRegRead: compile-time resolution of "would the interpreter verify
  // this read" (deterministic register; nondet registers are never
  // checked). The replayer additionally honours ReplayConfig::verify_reads.
  bool verify = false;
  uint32_t reg = 0;
  uint32_t value = 0;
  uint32_t mask = 0;       // kPollWait
  uint32_t expected = 0;   // kPollWait
  uint8_t irq_lines = 0;   // kIrqWait
  Duration delay = 0;      // kDelay
  uint32_t image = 0;      // kMemPage: index into ReplayPlan::mid_images
  uint32_t log_index = 0;  // position in the source log (diagnostics)
};

// A run of physically-contiguous initial-image pages, coalesced from the
// recording's pre-job-start kMemPage entries (last write wins per page).
struct PlanRegion {
  uint64_t base_pa = 0;
  uint32_t n_pages = 0;
  Bytes image;  // n_pages * kPageSize bytes
  std::vector<bool> metastate;  // per page

  uint64_t page_pa(uint32_t i) const { return base_pa + i * kPageSize; }
};

// A metastate page the recording reapplies after the first job start;
// ordered against register stimuli via its PlanOp.
struct PlanImage {
  uint64_t pa = 0;
  Bytes data;
};

// Pre-resolved copy chunk: staged-tensor bytes [src_offset, src_offset+len)
// land at physical address pa. Chunks never straddle a page boundary.
struct PatchChunk {
  uint64_t pa = 0;
  uint64_t src_offset = 0;
  uint32_t len = 0;
};

// Per-tensor injection/readout patch table entry.
struct TensorPatch {
  uint64_t n_floats = 0;
  bool writable = false;  // injectable at replay
  // False when the binding's page list is too short to back all n_floats
  // (injection must fail exactly like the interpreter's page walk would).
  bool complete = true;
  std::vector<PatchChunk> chunks;
};

struct ReplayPlan {
  std::vector<PlanOp> ops;
  std::vector<PlanRegion> regions;
  std::vector<PlanImage> mid_images;
  std::map<std::string, TensorPatch> patches;

  // Compile-time accounting (inspector / perf gates).
  uint64_t image_bytes = 0;      // total initial-image bytes
  uint32_t image_pages = 0;      // total initial-image pages
  uint32_t duplicate_pages = 0;  // pre-job-start re-snapshots folded away
  uint32_t dropped_pages = 0;    // post-job-start non-metastate entries
                                 // (the interpreter skips these per call;
                                 // the plan drops them once)
  size_t source_entries = 0;     // log length the plan was compiled from

  size_t CountOps(LogOp kind) const;
};

// Lowers a recording into a plan. Purely mechanical (no verification —
// run the static verifier before trusting the recording; Replayer::Load
// does). Never fails: any well-formed log lowers.
ReplayPlan CompileReplayPlan(const Recording& recording);

}  // namespace grt

#endif  // GRT_SRC_RECORD_PLAN_H_
