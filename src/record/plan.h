// Compiled replay plans: the TEE's fast path for recurring inference.
//
// The interpreter in Replayer walks the interaction log entry-by-entry on
// every Replay() call and re-applies every recorded memory page each time.
// That is fine for a one-shot demonstration, but the paper's deployed
// artifact replays "repeatedly on new input" (§3.2) — the per-inference
// cost is what a client pays. A ReplayPlan lowers a loaded (signature- and
// verifier-checked) recording once into a flat, cache-friendly form:
//
//   * a dense op array with register ops pre-decoded (the per-read
//     verify decision — deterministic register under verify_reads — is
//     resolved at compile time, not per replay);
//   * the initial memory image pre-coalesced into per-region contiguous
//     page runs (one memcpy per run instead of one Write per log entry),
//     deduplicated last-write-wins across repeated snapshots of the same
//     page;
//   * mid-replay metastate reapplications kept as ops (they are
//     semantically ordered against the register stimuli); non-metastate
//     pages after the first job start — which the interpreter skips on
//     every single call — are dropped at compile time;
//   * a patch table of pre-resolved (physical address, tensor offset)
//     chunks for every tensor binding, so injection and readout are
//     straight copy loops with no page arithmetic.
//
// Compilation is purely mechanical: every op in the plan corresponds to a
// log entry the interpreter would have executed, in the same order. The
// equivalence suite (tests/integration/plan_equivalence_test.cc) holds the
// two paths to bitwise-identical outputs on every example network and the
// chaos corpus.
#ifndef GRT_SRC_RECORD_PLAN_H_
#define GRT_SRC_RECORD_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/mem/phys_mem.h"
#include "src/record/recording.h"

namespace grt {

// The replayer's job-start predicate (a JS*_COMMAND_NEXT = START write):
// the boundary after which non-metastate page snapshots reflect dry-run
// compute and are never applied. Shared by the interpreter and the plan
// compiler so the two notions can never drift apart.
bool IsReplayJobStart(const LogEntry& e);

// One pre-decoded replay step. Same kinds as LogOp; kMemPage ops index
// into ReplayPlan::mid_images (mid-replay metastate reapplications only —
// the initial image lives in ReplayPlan::regions).
struct PlanOp {
  LogOp kind = LogOp::kRegWrite;
  // kRegRead: compile-time resolution of "would the interpreter verify
  // this read" (deterministic register; nondet registers are never
  // checked). The replayer additionally honours ReplayConfig::verify_reads.
  bool verify = false;
  uint32_t reg = 0;
  uint32_t value = 0;
  uint32_t mask = 0;       // kPollWait
  uint32_t expected = 0;   // kPollWait
  uint8_t irq_lines = 0;   // kIrqWait
  Duration delay = 0;      // kDelay
  uint32_t image = 0;      // kMemPage: index into ReplayPlan::mid_images
  uint32_t log_index = 0;  // position in the source log (diagnostics)
};

// A run of physically-contiguous initial-image pages, coalesced from the
// recording's pre-job-start kMemPage entries (last write wins per page).
struct PlanRegion {
  uint64_t base_pa = 0;
  uint32_t n_pages = 0;
  Bytes image;  // n_pages * kPageSize bytes
  std::vector<bool> metastate;  // per page

  uint64_t page_pa(uint32_t i) const { return base_pa + i * kPageSize; }
};

// A metastate page the recording reapplies after the first job start;
// ordered against register stimuli via its PlanOp.
struct PlanImage {
  uint64_t pa = 0;
  Bytes data;
};

// Pre-resolved copy chunk: staged-tensor bytes [src_offset, src_offset+len)
// land at physical address pa. Chunks never straddle a page boundary.
struct PatchChunk {
  uint64_t pa = 0;
  uint64_t src_offset = 0;
  uint32_t len = 0;
};

// Per-tensor injection/readout patch table entry.
struct TensorPatch {
  uint64_t n_floats = 0;
  bool writable = false;  // injectable at replay
  // False when the binding's page list is too short to back all n_floats
  // (injection must fail exactly like the interpreter's page walk would).
  bool complete = true;
  // Escape analysis (planopt): readback through the chunk table may write
  // the caller's buffer directly — the tensor's pages back exactly
  // n_floats and are not aliased by another writable binding's pages, so
  // the chunk copy is bitwise the interpreter page walk.
  bool direct_readback = false;
  std::vector<PatchChunk> chunks;
};

// ------------------------------------------------------- plan format v2
// A "warm program": the fused schedule a warm replay executes instead of
// the full op array, produced and proven by src/analysis/planopt. Every
// source plan op is accounted for exactly once in PlanProvenance; the
// soundness checker (and verifier pass) re-derives each record's
// justification from the plan + register semantics, so a tampered or
// stale program is rejected before it can touch the device.

enum class WarmOpKind : uint8_t {
  kMemPage,   // mid-replay metastate reapplication (kept)
  kRegWrite,  // single retained register write
  kRegRead,   // retained read; verified under verify & verify_mask
  kPollWait,
  kDelay,
  kIrqWait,
  kRegSpan,  // fused run of adjacent retained writes (span_writes slice)
};

// One member write of a fused kRegSpan, in execution order.
struct RegSpanWrite {
  uint32_t reg = 0;
  uint32_t value = 0;
  uint32_t src_index = 0;  // plan op this write was fused from
};

struct WarmOp {
  WarmOpKind kind = WarmOpKind::kRegWrite;
  bool verify = false;
  uint32_t reg = 0;
  uint32_t value = 0;
  uint32_t mask = 0;      // kPollWait
  uint32_t expected = 0;  // kPollWait
  // kRegRead: bits actually compared when verifying. All-ones for plain
  // retained reads; weakened on GPU_IRQ_RAWSTAT reads to exclude bits
  // owned by elided device-op closures (flush/power/reset completion
  // bits that no longer get raised).
  uint32_t verify_mask = 0xFFFFFFFFu;
  uint8_t irq_lines = 0;   // kIrqWait
  Duration delay = 0;      // kDelay
  uint32_t image = 0;      // kMemPage
  uint32_t span_begin = 0;  // kRegSpan: first index into span_writes
  uint32_t span_len = 0;    // kRegSpan: member count (>= 2)
  uint32_t src_index = 0;   // source plan op (non-span kinds)
};

// Why a source plan op is absent from / present in the warm schedule.
enum class PlanRewriteKind : uint8_t {
  kKeep,       // retained verbatim as warm op `warm_index`
  kFuseSpan,   // fused into kRegSpan warm op `warm_index`, member `aux`
  kMaskWeaken,  // retained read with verify_mask weakened to ~aux
  // Elisions (machine-checked justifications; DESIGN.md §6h):
  kElideConstRead,     // R3: verified read of a constant-class register
  kElideNondetRead,    // R2: unverified read of a read-idempotent register
  kElideNoopLatch,     // R1: latch write of the value already latched
  kElideFlushClosure,  // R4: cache-flush command/poll/ack closure, id aux
  kElideResetClosure,  // R5: reset command closure, id aux
  kElidePowerClosure,  // R6: power off/on/ready closure, id aux
  kElideAsClosure,     // R7: AS latch+UPDATE+status closure, id aux
};

struct PlanRewrite {
  PlanRewriteKind kind = PlanRewriteKind::kKeep;
  uint32_t src_index = 0;   // the source plan op this record justifies
  uint32_t warm_index = 0;  // kKeep/kFuseSpan/kMaskWeaken: the warm op
  // kFuseSpan: member ordinal within the span. kMaskWeaken: the weakened
  // bit set (verify_mask == ~aux). kElide*Closure: closure id grouping
  // the members of one closure instance.
  uint32_t aux = 0;
};

struct PlanProvenance {
  uint32_t plan_format = 2;
  // Exactly one record per source plan op, ascending src_index.
  std::vector<PlanRewrite> rewrites;
};

struct WarmStats {
  uint32_t fused_spans = 0;
  uint32_t fused_writes = 0;  // writes living inside spans
  uint32_t elided_flush_closures = 0;
  uint32_t elided_power_closures = 0;
  uint32_t elided_reset_closures = 0;
  uint32_t elided_as_closures = 0;
  uint32_t elided_const_reads = 0;
  uint32_t elided_nondet_reads = 0;
  uint32_t elided_noop_latches = 0;
  uint32_t weakened_reads = 0;
  uint32_t retained_ops = 0;     // warm ops (spans count once)
  uint32_t elided_ops = 0;       // source ops with no warm counterpart
  uint32_t invariant_ops = 0;    // partition: warm-invariant source ops
  uint32_t input_dep_ops = 0;    // partition: input-dependent source ops
  uint32_t direct_readback_tensors = 0;
};

struct WarmProgram {
  std::vector<WarmOp> ops;
  std::vector<RegSpanWrite> span_writes;
  PlanProvenance provenance;
  WarmStats stats;
  // GPU_IRQ_RAWSTAT bits the warm program owns: every bit an elided op
  // could have raised (flush-done, reset-done, power-changed). These stay
  // latched across warm replays — retained reads of the rawstat are
  // verified under ~owned, retained polls/waits must not depend on them,
  // and the executor tolerates a GPU irq line asserted only by owned
  // bits. Re-derived from provenance by CheckWarmProgram.
  uint32_t owned_gpu_irq_bits = 0;
};

struct ReplayPlan {
  // 1 = flat op array only; 2 = a checked warm program is attached.
  uint32_t version = 1;
  std::vector<PlanOp> ops;
  std::vector<PlanRegion> regions;
  std::vector<PlanImage> mid_images;
  std::map<std::string, TensorPatch> patches;
  // Plan format v2 (null on v1 plans): the fused warm schedule plus its
  // provenance. Built and self-checked by AttachWarmProgram.
  std::shared_ptr<const WarmProgram> warm;

  // Compile-time accounting (inspector / perf gates).
  uint64_t image_bytes = 0;      // total initial-image bytes
  uint32_t image_pages = 0;      // total initial-image pages
  uint32_t duplicate_pages = 0;  // pre-job-start re-snapshots folded away
  uint32_t dropped_pages = 0;    // post-job-start non-metastate entries
                                 // (the interpreter skips these per call;
                                 // the plan drops them once)
  size_t source_entries = 0;     // log length the plan was compiled from

  size_t CountOps(LogOp kind) const;
};

struct PlanCompileOptions {
  // False: skip copying page images into regions (region layout and
  // accounting still computed). The planopt soundness pass analyzes only
  // the op schedule; a skeleton plan avoids re-copying the multi-MB image
  // on every verification.
  bool include_images = true;
};

// Lowers a recording into a plan. Purely mechanical (no verification —
// run the static verifier before trusting the recording; Replayer::Load
// does). Never fails: any well-formed log lowers.
ReplayPlan CompileReplayPlan(const Recording& recording);
ReplayPlan CompileReplayPlan(const Recording& recording,
                             const PlanCompileOptions& options);

}  // namespace grt

#endif  // GRT_SRC_RECORD_PLAN_H_
