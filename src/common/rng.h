// Deterministic PRNG (SplitMix64 seeded xoshiro256**) for workload inputs
// and fault injection. All experiment randomness flows through explicit
// seeds so every run of a bench/test reproduces exactly.
#ifndef GRT_SRC_COMMON_RNG_H_
#define GRT_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>

namespace grt {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * (1.0f / (1ull << 24));
  }

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

  bool NextBool(double p_true = 0.5) {
    return NextFloat() < static_cast<float>(p_true);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace grt

#endif  // GRT_SRC_COMMON_RNG_H_
