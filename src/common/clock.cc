#include "src/common/clock.h"

#include <cstdio>

namespace grt {

std::string FormatDuration(Duration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ToSeconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ToMilliseconds(d));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us",
                  static_cast<double>(d) / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace grt
