// Byte-buffer serialization used for network messages, recordings, and
// memory dumps. Little-endian, length-prefixed containers, no alignment
// assumptions on the wire.
#ifndef GRT_SRC_COMMON_BYTES_H_
#define GRT_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace grt {

using Bytes = std::vector<uint8_t>;

// Appends primitives to a growing byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v); }
  void PutU32(uint32_t v) { PutLe(v); }
  void PutU64(uint64_t v) { PutLe(v); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v)); }
  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  // Length-prefixed (u32) blob / string.
  void PutBytes(const uint8_t* data, size_t n) {
    PutU32(static_cast<uint32_t>(n));
    buf_.insert(buf_.end(), data, data + n);
  }
  void PutBytes(const Bytes& b) { PutBytes(b.data(), b.size()); }
  void PutString(std::string_view s) {
    PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  // Raw append with no length prefix (caller knows the framing).
  void PutRaw(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }
  void PutRaw(const Bytes& b) { PutRaw(b.data(), b.size()); }

  // Pre-sizes the backing buffer (large messages: memory-sync payloads).
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Consumes primitives from a byte span; all reads are bounds-checked and
// report kOutOfRange on truncated input (recordings cross a trust boundary,
// so the replayer must never trust lengths).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> ReadU8() { return ReadLe<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadLe<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadLe<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadLe<uint64_t>(); }
  Result<int64_t> ReadI64() {
    GRT_ASSIGN_OR_RETURN(uint64_t v, ReadLe<uint64_t>());
    return static_cast<int64_t>(v);
  }
  Result<float> ReadF32() {
    GRT_ASSIGN_OR_RETURN(uint32_t bits, ReadU32());
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<double> ReadF64() {
    GRT_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<bool> ReadBool() {
    GRT_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
    return v != 0;
  }

  Result<Bytes> ReadBytes() {
    GRT_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > remaining()) {
      return OutOfRange("truncated blob");
    }
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  Result<std::string> ReadString() {
    GRT_ASSIGN_OR_RETURN(Bytes b, ReadBytes());
    return std::string(b.begin(), b.end());
  }

  Status ReadRaw(uint8_t* out, size_t n) {
    if (n > remaining()) {
      return OutOfRange("truncated raw read");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return OkStatus();
  }

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  template <typename T>
  Result<T> ReadLe() {
    if (sizeof(T) > remaining()) {
      return OutOfRange("truncated integer");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace grt

#endif  // GRT_SRC_COMMON_BYTES_H_
