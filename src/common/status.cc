#include "src/common/status.h"

namespace grt {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kIntegrityViolation:
      return "INTEGRITY_VIOLATION";
    case StatusCode::kDeviceFault:
      return "DEVICE_FAULT";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kPollExhausted:
      return "POLL_EXHAUSTED";
    case StatusCode::kIrqExpired:
      return "IRQ_EXPIRED";
    case StatusCode::kDigestMismatch:
      return "DIGEST_MISMATCH";
    case StatusCode::kTenantThrottled:
      return "TENANT_THROTTLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace grt
