// SHA-256 and HMAC-SHA256, implemented from the FIPS 180-4 spec.
//
// Used by the TEE/cloud session layer: recordings are signed (HMAC under the
// session key) by the cloud and verified by the replayer in the client TEE
// (§3.2, §7.1). A from-scratch implementation keeps the simulation free of
// external dependencies.
#ifndef GRT_SRC_COMMON_SHA256_H_
#define GRT_SRC_COMMON_SHA256_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>

#include "src/common/bytes.h"

namespace grt {

using Sha256Digest = std::array<uint8_t, 32>;

// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t n);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(const void* data, size_t n);
  static Sha256Digest Hash(const Bytes& b) { return Hash(b.data(), b.size()); }

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> block_;
  size_t block_len_ = 0;
  uint64_t total_len_ = 0;
};

// HMAC-SHA256 per RFC 2104.
Sha256Digest HmacSha256(const Bytes& key, const Bytes& message);

// Lowercase hex string of a digest, for logs and recording headers.
std::string DigestToHex(const Sha256Digest& d);

}  // namespace grt

#endif  // GRT_SRC_COMMON_SHA256_H_
