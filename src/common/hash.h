// Non-cryptographic hashes: FNV-1a for signatures of register-access
// sequences (speculation history keys) and CRC32 for integrity of memory
// dumps inside a trust domain.
#ifndef GRT_SRC_COMMON_HASH_H_
#define GRT_SRC_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace grt {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t Fnv1a(const void* data, size_t n, uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a(std::string_view s, uint64_t seed = kFnvOffset) {
  return Fnv1a(s.data(), s.size(), seed);
}

// Incrementally mixes a 64-bit word into a running FNV state; used to build
// hashes of structured sequences without materializing bytes.
inline uint64_t FnvMix(uint64_t h, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// CRC-32 (IEEE 802.3 polynomial, reflected).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace grt

#endif  // GRT_SRC_COMMON_HASH_H_
