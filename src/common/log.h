// Minimal leveled logger. Off by default above kWarn so tests and benches
// stay quiet; experiments flip the level for debugging.
#ifndef GRT_SRC_COMMON_LOG_H_
#define GRT_SRC_COMMON_LOG_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace grt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level. Thread-safe: ReplayService workers log
// concurrently, so the level lives in a relaxed atomic and each message is
// emitted with a single fprintf call (no interleaved fragments). A level
// change racing an in-flight message may or may not affect it — both
// outcomes are valid serializations.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) {
      stream_ << v;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace grt

#define GRT_LOG(level)                                                  \
  ::grt::internal::LogMessage(::grt::LogLevel::level, __FILE__, __LINE__)

#define GRT_DLOG GRT_LOG(kDebug)
#define GRT_ILOG GRT_LOG(kInfo)
#define GRT_WLOG GRT_LOG(kWarn)
#define GRT_ELOG GRT_LOG(kError)

#endif  // GRT_SRC_COMMON_LOG_H_
