#include "src/common/log.h"

#include <atomic>

namespace grt {
namespace {

// Relaxed is enough: the level is a filter, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_([&] {
        // One load so the >= filter and the kOff check can't observe two
        // different levels mid-SetLogLevel.
        LogLevel min = g_level.load(std::memory_order_relaxed);
        return level >= min && min != LogLevel::kOff;
      }()),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One fwrite per message (text + newline together): stdio's FILE lock
    // then guarantees concurrent messages never interleave mid-line.
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace internal
}  // namespace grt
