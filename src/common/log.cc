#include "src/common/log.h"

namespace grt {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level && g_level != LogLevel::kOff), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace grt
