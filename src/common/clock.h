// Virtual time primitives.
//
// Every component of the co-simulation (cloud GPU stack, client TEE, network
// channel, GPU device model) charges costs against a Timeline instead of the
// wall clock. This makes "hundreds of seconds" recording experiments run in
// milliseconds and makes every experiment bit-for-bit deterministic.
#ifndef GRT_SRC_COMMON_CLOCK_H_
#define GRT_SRC_COMMON_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace grt {

// Virtual durations and instants, in nanoseconds.
using Duration = int64_t;
using TimePoint = int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

inline double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
inline double ToMilliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
inline Duration FromMilliseconds(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
inline Duration FromMicroseconds(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}
inline Duration FromSeconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

// "12.345 s" / "67.8 ms" / "910 us" — for logs and bench tables.
std::string FormatDuration(Duration d);

// A monotonically advancing virtual clock owned by one simulated party
// (e.g. the cloud VM, or the client TEE). Parties exchange messages by
// synchronizing each other's timelines, Lamport style.
class Timeline {
 public:
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  TimePoint now() const { return now_; }
  const std::string& name() const { return name_; }

  // Charges local work: compute, driver CPU time, GPU wait, ...
  void Advance(Duration d) {
    if (d > 0) {
      now_ += d;
    }
  }

  // Synchronizes to an externally-imposed instant (message arrival, IRQ).
  // Never moves backwards.
  void AdvanceTo(TimePoint t) { now_ = std::max(now_, t); }

  // Resets to zero; used between experiment repetitions.
  void Reset() { now_ = 0; }

 private:
  std::string name_;
  TimePoint now_ = 0;
};

// Accumulates named spans of busy time against a timeline, used by the
// energy model to integrate power over component-active intervals.
class BusyTracker {
 public:
  void AddBusy(Duration d) {
    if (d > 0) {
      busy_ += d;
    }
  }
  Duration busy() const { return busy_; }
  void Reset() { busy_ = 0; }

 private:
  Duration busy_ = 0;
};

}  // namespace grt

#endif  // GRT_SRC_COMMON_CLOCK_H_
