// Lightweight error-handling primitives used across the GR-T codebase.
//
// The project does not use exceptions on any hot or driver-facing path
// (os-systems idiom): fallible operations return Status or Result<T>.
#ifndef GRT_SRC_COMMON_STATUS_H_
#define GRT_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace grt {

// Error categories, deliberately coarse: callers branch on a handful of
// conditions (ok / invalid / not-found / integrity / hardware fault).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kPermissionDenied,     // TEE / TZASC / world violations
  kIntegrityViolation,   // signature or replay-consistency failures
  kDeviceFault,          // simulated GPU fault (bad job, MMU fault)
  kTimeout,              // polling loop or IRQ wait exhausted
  kResourceExhausted,
  // Replay-specific exhaustion conditions, distinguishable from generic
  // timeouts so tests and retry policies can branch on them precisely:
  kPollExhausted,        // ReplayConfig::poll_max_iters spent, predicate unmet
  kIrqExpired,           // ReplayConfig::irq_timeout elapsed with no interrupt
  kDigestMismatch,       // pinned recording digest != the one resolved
  kTenantThrottled,      // per-tenant admission bucket empty (serve-side)
};

// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional message. Copyable, cheap when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: why" for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status IntegrityViolation(std::string msg) {
  return Status(StatusCode::kIntegrityViolation, std::move(msg));
}
inline Status DeviceFault(std::string msg) {
  return Status(StatusCode::kDeviceFault, std::move(msg));
}
inline Status Timeout(std::string msg) {
  return Status(StatusCode::kTimeout, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status PollExhausted(std::string msg) {
  return Status(StatusCode::kPollExhausted, std::move(msg));
}
inline Status IrqExpired(std::string msg) {
  return Status(StatusCode::kIrqExpired, std::move(msg));
}
inline Status DigestMismatch(std::string msg) {
  return Status(StatusCode::kDigestMismatch, std::move(msg));
}
inline Status TenantThrottled(std::string msg) {
  return Status(StatusCode::kTenantThrottled, std::move(msg));
}

// Result<T>: either a value or a non-OK status. A minimal expected<> stand-in
// that keeps call sites terse: `GRT_ASSIGN_OR_RETURN(auto x, Compute());`.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError();` both
  // work at call sites.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

#define GRT_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::grt::Status grt_status_ = (expr);       \
    if (!grt_status_.ok()) {                  \
      return grt_status_;                     \
    }                                         \
  } while (0)

#define GRT_CONCAT_IMPL_(a, b) a##b
#define GRT_CONCAT_(a, b) GRT_CONCAT_IMPL_(a, b)

#define GRT_ASSIGN_OR_RETURN(decl, expr)                        \
  auto GRT_CONCAT_(grt_result_, __LINE__) = (expr);             \
  if (!GRT_CONCAT_(grt_result_, __LINE__).ok()) {               \
    return GRT_CONCAT_(grt_result_, __LINE__).status();         \
  }                                                             \
  decl = std::move(GRT_CONCAT_(grt_result_, __LINE__)).value()

}  // namespace grt

#endif  // GRT_SRC_COMMON_STATUS_H_
