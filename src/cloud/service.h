// Cloud service: manages GPU-stack VM images and record sessions (§3.2).
//
// "The cloud service manages multiple VM images corresponding to variants
// of GPU stack. The VM is lean... Once launched, a VM is dedicated to
// serving only one client TEE." A single VM image incorporates multiple
// GPU drivers; the per-client devicetree selects which one binds (§6).
#ifndef GRT_SRC_CLOUD_SERVICE_H_
#define GRT_SRC_CLOUD_SERVICE_H_

#include <string>
#include <vector>

#include "src/common/sha256.h"
#include "src/tee/session.h"
#include "src/common/status.h"
#include "src/sku/devicetree.h"
#include "src/sku/sku.h"

namespace grt {

struct VmImage {
  std::string name;           // e.g. "mali-stack-acl20.05"
  std::string driver_family;  // compatible prefix this image's driver binds
  std::vector<SkuId> supported_skus;
  VmMeasurement measurement;  // attested identity of the image
};

class CloudService {
 public:
  CloudService();

  // Picks the VM image whose GPU stack supports the client's SKU.
  Result<VmImage> SelectImage(SkuId sku) const;

  // Builds the devicetree the VM boots with for this client (§6: per-GPU
  // devicetree dynamically loaded depending on the client GPU model).
  Result<DeviceTree> DeviceTreeFor(SkuId sku) const;

  const std::vector<VmImage>& images() const { return images_; }
  // The attestation root of trust shared with client TEEs.
  const Bytes& attestation_root_key() const { return root_key_; }

 private:
  std::vector<VmImage> images_;
  Bytes root_key_;
};

}  // namespace grt

#endif  // GRT_SRC_CLOUD_SERVICE_H_
