// RecordSession: one cloud-VM <-> client-TEE recording session, end to end.
//
// Wires the whole GR-T record pipeline of Figure 4: a dedicated cloud VM
// (its own timeline, carveout copy, page allocator, kernel, driver bound
// via the client's devicetree, runtime, ML runner) talking to the client's
// GpuShim over a NetChannel, with attestation + session keying up front
// and a signed recording downloaded at the end.
#ifndef GRT_SRC_CLOUD_SESSION_H_
#define GRT_SRC_CLOUD_SESSION_H_

#include <memory>
#include <optional>
#include <string>

#include "src/cloud/service.h"
#include "src/harness/rig.h"
#include "src/ml/runner.h"
#include "src/net/channel.h"
#include "src/net/fault.h"
#include "src/shim/drivershim.h"
#include "src/shim/gpushim.h"
#include "src/tee/session.h"

namespace grt {

struct RecordSessionConfig {
  NetworkConditions network = WifiConditions();
  ShimConfig shim = ShimConfig::OursMDS();
  uint64_t session_nonce_seed = 1;
  // Channel-fault schedule for chaos testing; FaultPlan::None() (the
  // default) keeps the session on the legacy fast path.
  FaultPlan fault_plan = FaultPlan::None();
  // Resource partitioning for recordings meant to co-reside on a pooled
  // serving device (src/serve): `alloc_offset` shifts the session's
  // carveout allocator base so two recordings draw from disjoint page
  // ranges (page-aligned, clamped below the carveout size), and `driver`
  // selects the job slot / address space the kbase driver uses. Recordings
  // produced under disjoint partitions earn a `disjoint` interference
  // verdict from src/analysis/footprint.
  uint64_t alloc_offset = 0;
  DriverPolicy driver;
};

// Session-level fault-recovery counters (on top of LinkStats/ChannelStats).
struct SessionStats {
  uint64_t reconnects = 0;        // hard disconnects recovered
  uint64_t rekeys = 0;            // session keys derived (1 + reconnects)
  uint64_t recovery_replays = 0;  // client log-prefix replays on resume
  Duration reconnect_time = 0;    // client time spent in resume, total
};

struct RecordOutcome {
  Bytes signed_recording;
  Duration client_delay = 0;      // end-to-end recording delay at the client
  Duration download_time = 0;     // recording download portion
  size_t log_entries = 0;
  size_t gpu_jobs = 0;
};

class RecordSession {
 public:
  // `history` may be shared across sessions to model §7.3's "retaining
  // register access history in between" benchmarks; pass a fresh one for
  // cold-history experiments.
  RecordSession(const CloudService* service, ClientDevice* device,
                RecordSessionConfig config, SpeculationHistory* history);

  // Attestation + session keying (a couple of RTTs, §7.1).
  Status Connect();

  // Dry-runs `net` on the cloud GPU stack against the client GPU and
  // returns the signed recording (downloaded to the client).
  Result<RecordOutcome> RecordWorkload(const NetworkDef& net, uint64_t nonce);

  // Per-layer granularity (Fig. 2): same dry run, but the recorder cuts at
  // layer boundaries and returns one signed recording per segment (segment
  // 0 = driver init, then one per NN layer).
  Result<std::vector<Bytes>> RecordWorkloadLayered(const NetworkDef& net,
                                                   uint64_t nonce);

  // Introspection for benches/tests.
  DriverShim& shim() { return *shim_; }
  GpuShim& gpushim() { return *gpushim_; }
  NetChannel& channel() { return *channel_; }
  KbaseDriver& driver() { return *driver_; }
  Timeline& cloud_timeline() { return cloud_tl_; }
  const SessionKey* key() const {
    return key_.has_value() ? &key_.value() : nullptr;
  }
  const SessionStats& session_stats() const { return stats_; }

 private:
  // Link resume handler: drains in-flight speculation, re-attests with
  // fresh nonces, re-keys under a bumped frame epoch, and fast-forwards
  // the client GPU by replaying the interaction-log prefix (§4.2).
  Status Reattach();
  const CloudService* service_;
  ClientDevice* device_;
  RecordSessionConfig config_;

  Timeline cloud_tl_;
  PhysicalMemory cloud_mem_;   // the VM's copy of the GPU carveout
  PageAllocator cloud_alloc_;
  std::unique_ptr<GpuShim> gpushim_;
  std::unique_ptr<NetChannel> channel_;
  std::unique_ptr<DriverShim> shim_;
  std::unique_ptr<KernelServices> kernel_;
  std::unique_ptr<KbaseDriver> driver_;
  std::unique_ptr<GpuRuntime> runtime_;
  std::optional<SessionKey> key_;
  bool connected_ = false;
  SessionStats stats_;
};

}  // namespace grt

#endif  // GRT_SRC_CLOUD_SESSION_H_
