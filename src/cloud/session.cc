#include "src/cloud/session.h"

#include "src/common/rng.h"
#include "src/record/recorder.h"

namespace grt {

namespace {

// Page-aligns the configured allocator partition offset and refuses to
// push the base past the carveout (a full-sized offset would leave the
// allocator no pages at all — fall back to no partitioning).
uint64_t PartitionOffset(const RecordSessionConfig& config) {
  uint64_t offset = PageAlignDown(config.alloc_offset);
  return offset < kCarveoutSize ? offset : 0;
}

}  // namespace

RecordSession::RecordSession(const CloudService* service, ClientDevice* device,
                             RecordSessionConfig config,
                             SpeculationHistory* history)
    : service_(service),
      device_(device),
      config_(config),
      cloud_tl_("cloud"),
      cloud_mem_(kCarveoutBase, kCarveoutSize),
      cloud_alloc_(kCarveoutBase + PartitionOffset(config),
                   kCarveoutSize - PartitionOffset(config)) {
  // The cloud VM joins the client's present: its virtual clock starts at
  // the client's current time.
  cloud_tl_.AdvanceTo(device->timeline().now());

  gpushim_ = std::make_unique<GpuShim>(
      &device->gpu(), &device->tzasc(), &device->mem(), &device->timeline(),
      config_.shim.meta_only_sync, config_.shim.compress_sync,
      &device->soc());
  channel_ = std::make_unique<NetChannel>(config_.network, &cloud_tl_,
                                          &device->timeline());
  shim_ = std::make_unique<DriverShim>(config_.shim, channel_.get(),
                                       gpushim_.get(), &cloud_mem_, history);
  kernel_ = std::make_unique<KernelServices>(shim_.get());
  driver_ = std::make_unique<KbaseDriver>(kernel_.get(), &cloud_mem_,
                                          &cloud_alloc_, config_.driver);
  runtime_ = std::make_unique<GpuRuntime>(driver_.get());
  shim_->AttachDriver(driver_.get());

  // Fault-tolerant transport: all recording traffic rides the shim's
  // ReliableLink; the session owns resume (re-attest + re-key + replay).
  shim_->link().InstallFaultPlan(config_.fault_plan);
  shim_->link().set_resume_handler([this] { return Reattach(); });
}

Status RecordSession::Connect() {
  GRT_ASSIGN_OR_RETURN(VmImage image,
                       service_->SelectImage(device_->sku().id));

  // Attested TLS-style handshake (§7.1): client nonce -> quote -> confirm.
  Rng rng(config_.session_nonce_seed ^ 0xA77E57);
  Bytes client_nonce(32), cloud_nonce(32);
  for (auto& b : client_nonce) {
    b = static_cast<uint8_t>(rng.NextU32());
  }
  for (auto& b : cloud_nonce) {
    b = static_cast<uint8_t>(rng.NextU32());
  }

  Attestor attestor(service_->attestation_root_key(), image.measurement);
  AttestationVerifier verifier(service_->attestation_root_key(),
                               image.measurement);

  // RTT 1: client hello (nonce) -> cloud; quote -> client.
  channel_->BlockingRoundTrip(kClientEnd, 32 + 16,
                              attestor.Quote(client_nonce).Serialize().size());
  AttestationQuote quote = attestor.Quote(client_nonce);
  GRT_RETURN_IF_ERROR(verifier.Verify(quote, client_nonce));

  // RTT 2: key confirmation both ways.
  key_ = SessionKey::Derive(service_->attestation_root_key(), client_nonce,
                            cloud_nonce);
  Bytes confirm = {'o', 'k'};
  Sha256Digest mac = key_->Mac(confirm);
  channel_->BlockingRoundTrip(kClientEnd, confirm.size() + mac.size(),
                              confirm.size() + mac.size());
  GRT_RETURN_IF_ERROR(key_->VerifyMac(confirm, mac));

  // The session key doubles as the link-frame authentication key; epoch 1
  // marks the first link incarnation (bumped on every reconnect re-key).
  ++stats_.rekeys;
  shim_->link().SetKey(key_->key(), 1);

  connected_ = true;
  return OkStatus();
}

Status RecordSession::Reattach() {
  if (!connected_ || !key_.has_value()) {
    return FailedPrecondition("link resume before Connect");
  }
  TimePoint client_start = device_->timeline().now();
  ++stats_.reconnects;

  // Settle all in-flight speculation first: the resume replay rewinds the
  // client GPU to the interaction-log prefix, so both sides must agree on
  // what that prefix is before anything else happens.
  GRT_RETURN_IF_ERROR(shim_->PrepareForResume());

  // Re-attest and re-key with fresh (deterministically derived) nonces —
  // the same two round trips as Connect(). The handshake rides the raw
  // channel: fault injection targets recording traffic, and the faulty
  // channel only comes back up once this handler succeeds.
  GRT_ASSIGN_OR_RETURN(VmImage image,
                       service_->SelectImage(device_->sku().id));
  Rng rng(config_.session_nonce_seed ^ 0xA77E57 ^
          (0x9E3779B97F4A7C15ull * stats_.reconnects));
  Bytes client_nonce(32), cloud_nonce(32);
  for (auto& b : client_nonce) {
    b = static_cast<uint8_t>(rng.NextU32());
  }
  for (auto& b : cloud_nonce) {
    b = static_cast<uint8_t>(rng.NextU32());
  }
  Attestor attestor(service_->attestation_root_key(), image.measurement);
  AttestationVerifier verifier(service_->attestation_root_key(),
                               image.measurement);
  channel_->BlockingRoundTrip(kClientEnd, 32 + 16,
                              attestor.Quote(client_nonce).Serialize().size());
  AttestationQuote quote = attestor.Quote(client_nonce);
  GRT_RETURN_IF_ERROR(verifier.Verify(quote, client_nonce));
  key_ = SessionKey::Derive(service_->attestation_root_key(), client_nonce,
                            cloud_nonce);
  Bytes confirm = {'o', 'k'};
  Sha256Digest mac = key_->Mac(confirm);
  channel_->BlockingRoundTrip(kClientEnd, confirm.size() + mac.size(),
                              confirm.size() + mac.size());
  GRT_RETURN_IF_ERROR(key_->VerifyMac(confirm, mac));
  ++stats_.rekeys;
  shim_->link().SetKey(key_->key(), shim_->link().epoch() + 1);

  // Client half of resume: hard reset, then replay the log prefix locally
  // to fast-forward the GPU — the same mechanism misprediction recovery
  // uses (§4.2).
  GRT_ASSIGN_OR_RETURN(Duration replay_time,
                       gpushim_->RecoverByReplay(shim_->log(),
                                                 device_->sku().id));
  (void)replay_time;
  ++stats_.recovery_replays;
  stats_.reconnect_time += device_->timeline().now() - client_start;
  return OkStatus();
}

Result<std::vector<Bytes>> RecordSession::RecordWorkloadLayered(
    const NetworkDef& net, uint64_t nonce) {
  if (!connected_) {
    return FailedPrecondition("RecordWorkloadLayered before Connect");
  }
  gpushim_->BeginSession();
  device_->mem().ZeroAll();
  GRT_ASSIGN_OR_RETURN(DeviceTree dt,
                       service_->DeviceTreeFor(device_->sku().id));
  GRT_RETURN_IF_ERROR(driver_->Probe(dt));
  GRT_RETURN_IF_ERROR(driver_->InitHardware());

  NnRunner runner(net, runtime_.get());
  GRT_RETURN_IF_ERROR(runner.Setup(/*zero_params=*/true));
  // Segment 0 = driver init + buffer setup + the initial memory image
  // (so the replayer's tensor injection supersedes it in segment 0).
  GRT_RETURN_IF_ERROR(shim_->SnapshotNow());
  GRT_RETURN_IF_ERROR(shim_->MarkCut());
  auto dry = runner.Run([&](int) { return shim_->MarkCut(); });
  if (!dry.ok()) {
    gpushim_->EndSession();
    return dry.status();
  }

  std::map<std::string, TensorBinding> bindings;
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kActivation) {
      continue;
    }
    GRT_ASSIGN_OR_RETURN(
        TensorBinding b,
        MakeBinding(*driver_, runner.buffers().at(t.name).va, t.n_floats,
                    t.kind != TensorKind::kOutput));
    bindings[t.name] = std::move(b);
  }

  GRT_ASSIGN_OR_RETURN(
      std::vector<Recording> segments,
      shim_->FinishLayeredRecording(net.name, device_->sku().id, bindings,
                                    nonce));
  std::vector<Bytes> wires;
  uint64_t rekeys_before = stats_.rekeys;
  for (const Recording& segment : segments) {
    Bytes wire = segment.SerializeSigned(key_->key());
    GRT_ASSIGN_OR_RETURN(
        ReliableLink::Reply dl,
        shim_->link().Call(FrameType::kControl, wire,
                           ReliableLink::Mode::kOneWay));
    (void)dl;
    wires.push_back(std::move(wire));
  }
  if (stats_.rekeys != rekeys_before) {
    // Disconnect(s) during the downloads re-keyed the session: re-sign
    // every segment under the final key (bodies unchanged).
    for (size_t i = 0; i < segments.size(); ++i) {
      wires[i] = segments[i].SerializeSigned(key_->key());
    }
  }
  gpushim_->EndSession();
  return wires;
}

Result<RecordOutcome> RecordSession::RecordWorkload(const NetworkDef& net,
                                                    uint64_t nonce) {
  if (!connected_) {
    return FailedPrecondition("RecordWorkload before Connect");
  }
  TimePoint client_start = device_->timeline().now();

  // The TEE locks the GPU and scrubs carveout + hardware state so both
  // parties start from identical (zeroed) shared memory.
  gpushim_->BeginSession();
  device_->mem().ZeroAll();

  // The VM boots with the devicetree for this client's GPU (§6).
  GRT_ASSIGN_OR_RETURN(DeviceTree dt,
                       service_->DeviceTreeFor(device_->sku().id));
  GRT_RETURN_IF_ERROR(driver_->Probe(dt));
  GRT_RETURN_IF_ERROR(driver_->InitHardware());

  // Dry run: zero parameters, zero input (§7.1 confidentiality).
  NnRunner runner(net, runtime_.get());
  GRT_RETURN_IF_ERROR(runner.Setup(/*zero_params=*/true));
  auto dry = runner.Run();
  if (!dry.ok()) {
    gpushim_->EndSession();
    return dry.status();
  }

  // Tensor bindings: where the replayer will inject inputs/parameters and
  // read outputs. Physical pages are the cloud driver's — valid on the
  // client because both carveouts are the same reserved range.
  std::map<std::string, TensorBinding> bindings;
  for (const TensorDef& t : net.tensors) {
    if (t.kind == TensorKind::kActivation) {
      continue;
    }
    GRT_ASSIGN_OR_RETURN(
        TensorBinding b,
        MakeBinding(*driver_, runner.buffers().at(t.name).va, t.n_floats,
                    t.kind != TensorKind::kOutput));
    bindings[t.name] = std::move(b);
  }

  GRT_ASSIGN_OR_RETURN(Recording rec,
                       shim_->FinishRecording(net.name, device_->sku().id,
                                              bindings, nonce));
  Bytes signed_rec = rec.SerializeSigned(key_->key());

  // The client downloads the signed recording (cloud -> client transfer).
  TimePoint before_download = device_->timeline().now();
  uint64_t rekeys_before = stats_.rekeys;
  GRT_ASSIGN_OR_RETURN(ReliableLink::Reply dl,
                       shim_->link().Call(FrameType::kControl, signed_rec,
                                          ReliableLink::Mode::kOneWay));
  (void)dl;
  if (stats_.rekeys != rekeys_before) {
    // A disconnect mid-download re-keyed the session; the download resumes
    // under the new key, so the recording is re-signed with it. The body
    // bytes are unchanged — only the signature differs.
    signed_rec = rec.SerializeSigned(key_->key());
  }
  gpushim_->EndSession();

  RecordOutcome outcome;
  outcome.signed_recording = std::move(signed_rec);
  outcome.client_delay = device_->timeline().now() - client_start;
  outcome.download_time = device_->timeline().now() - before_download;
  outcome.log_entries = rec.log.size();
  outcome.gpu_jobs = net.job_count();
  return outcome;
}

}  // namespace grt
