#include "src/cloud/service.h"

namespace grt {
namespace {

VmMeasurement MeasureImage(const std::string& name,
                           const std::vector<SkuId>& skus) {
  ByteWriter w;
  w.PutString("grt-vm-image-v1");
  w.PutString(name);
  for (SkuId id : skus) {
    w.PutU32(static_cast<uint32_t>(id));
  }
  return Sha256::Hash(w.bytes());
}

}  // namespace

CloudService::CloudService() {
  root_key_ = Bytes{'g', 'r', 't', '-', 'a', 't', 't', 'e', 's', 't',
                    '-', 'r', 'o', 'o', 't', '-', 'k', 'e', 'y', '1'};

  VmImage bifrost;
  bifrost.name = "mali-bifrost-stack";
  bifrost.driver_family = "arm,mali-bifrost";
  bifrost.supported_skus = {SkuId::kMaliG71Mp2, SkuId::kMaliG71Mp4,
                            SkuId::kMaliG71Mp8, SkuId::kMaliG72Mp12};
  bifrost.measurement = MeasureImage(bifrost.name, bifrost.supported_skus);
  images_.push_back(std::move(bifrost));

  VmImage gen2;
  gen2.name = "mali-bifrost-gen2-stack";
  gen2.driver_family = "arm,mali-bifrost-gen2";
  gen2.supported_skus = {SkuId::kMaliG76Mp10, SkuId::kMaliG52Mp2};
  gen2.measurement = MeasureImage(gen2.name, gen2.supported_skus);
  images_.push_back(std::move(gen2));
}

Result<VmImage> CloudService::SelectImage(SkuId sku) const {
  for (const VmImage& image : images_) {
    for (SkuId supported : image.supported_skus) {
      if (supported == sku) {
        return image;
      }
    }
  }
  return NotFound("no VM image supports this GPU SKU");
}

Result<DeviceTree> CloudService::DeviceTreeFor(SkuId sku) const {
  GRT_ASSIGN_OR_RETURN(GpuSku gpu_sku, FindSku(sku));
  return BuildGpuDeviceTree(gpu_sku);
}

}  // namespace grt
