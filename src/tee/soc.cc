#include "src/tee/soc.h"

namespace grt {

Status SocResources::SetGpuRail(World caller, bool on) {
  if (!Permitted(caller)) {
    ++denied_;
    return PermissionDenied("GPU rail control from non-owning world");
  }
  rail_on_ = on;
  return OkStatus();
}

Status SocResources::SetGpuClock(World caller, uint32_t mhz) {
  if (!Permitted(caller)) {
    ++denied_;
    return PermissionDenied("GPU clock control from non-owning world");
  }
  clock_mhz_ = mhz;
  return OkStatus();
}

}  // namespace grt
