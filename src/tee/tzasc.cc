#include "src/tee/tzasc.h"

#include "src/tee/soc.h"

namespace grt {

const char* WorldName(World w) {
  return w == World::kNormal ? "normal" : "secure";
}

Tzasc::Tzasc(PhysicalMemory* carveout) : carveout_(carveout) {
  // Install the carveout policy: when the GPU is secured, normal-world CPU
  // accesses to GPU memory are denied. GPU-originated and secure-world
  // accesses always pass.
  carveout_->SetAccessPolicy([this](uint64_t, uint64_t, bool,
                                    MemAccessOrigin origin) {
    if (origin == MemAccessOrigin::kCpuNormalWorld &&
        gpu_owner_ == World::kSecure) {
      ++violations_;
      return false;
    }
    return true;
  });
}

void Tzasc::AssignGpu(World world) { gpu_owner_ = world; }

Result<uint32_t> Tzasc::ReadGpuRegister(World caller, MaliGpu* gpu,
                                        uint32_t offset) {
  if (!Permit(caller)) {
    ++violations_;
    return PermissionDenied("GPU MMIO read from non-owning world");
  }
  if (soc_ != nullptr && !soc_->gpu_rail_on()) {
    return DeviceFault("GPU power rail is off (bus error)");
  }
  return gpu->ReadRegister(offset);
}

Status Tzasc::WriteGpuRegister(World caller, MaliGpu* gpu, uint32_t offset,
                               uint32_t value) {
  if (!Permit(caller)) {
    ++violations_;
    return PermissionDenied("GPU MMIO write from non-owning world");
  }
  if (soc_ != nullptr && !soc_->gpu_rail_on()) {
    return DeviceFault("GPU power rail is off (bus error)");
  }
  return gpu->WriteRegister(offset, value);
}

Status Tzasc::WriteGpuRegisterSpan(World caller, MaliGpu* gpu,
                                   const RegWrite* writes, size_t n) {
  if (!Permit(caller)) {
    ++violations_;
    return PermissionDenied("GPU MMIO write from non-owning world");
  }
  if (soc_ != nullptr && !soc_->gpu_rail_on()) {
    return DeviceFault("GPU power rail is off (bus error)");
  }
  for (size_t i = 0; i < n; ++i) {
    GRT_RETURN_IF_ERROR(gpu->WriteRegister(writes[i].reg, writes[i].value));
  }
  return OkStatus();
}

}  // namespace grt
