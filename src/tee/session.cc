#include "src/tee/session.h"

#include <cstring>

namespace grt {

Bytes AttestationQuote::Serialize() const {
  ByteWriter w;
  w.PutRaw(measurement.data(), measurement.size());
  w.PutBytes(nonce);
  w.PutRaw(signature.data(), signature.size());
  return w.Take();
}

Result<AttestationQuote> AttestationQuote::Deserialize(const Bytes& raw) {
  ByteReader r(raw);
  AttestationQuote q;
  GRT_RETURN_IF_ERROR(r.ReadRaw(q.measurement.data(), q.measurement.size()));
  GRT_ASSIGN_OR_RETURN(q.nonce, r.ReadBytes());
  GRT_RETURN_IF_ERROR(r.ReadRaw(q.signature.data(), q.signature.size()));
  return q;
}

namespace {

Sha256Digest QuoteMac(const Bytes& root_key, const VmMeasurement& m,
                      const Bytes& nonce) {
  ByteWriter w;
  w.PutString("grt-attest-v1");
  w.PutRaw(m.data(), m.size());
  w.PutBytes(nonce);
  return HmacSha256(root_key, w.bytes());
}

}  // namespace

AttestationQuote Attestor::Quote(const Bytes& client_nonce) const {
  AttestationQuote q;
  q.measurement = measurement_;
  q.nonce = client_nonce;
  q.signature = QuoteMac(root_key_, measurement_, client_nonce);
  return q;
}

Status AttestationVerifier::Verify(const AttestationQuote& quote,
                                   const Bytes& nonce) const {
  if (quote.nonce != nonce) {
    return IntegrityViolation("attestation nonce mismatch (replay?)");
  }
  if (quote.measurement != expected_) {
    return IntegrityViolation("unexpected VM measurement");
  }
  Sha256Digest expected_sig = QuoteMac(root_key_, quote.measurement, nonce);
  if (expected_sig != quote.signature) {
    return IntegrityViolation("bad attestation signature");
  }
  return OkStatus();
}

SessionKey SessionKey::Derive(const Bytes& root_key, const Bytes& client_nonce,
                              const Bytes& cloud_nonce) {
  ByteWriter w;
  w.PutString("grt-session-v1");
  w.PutBytes(client_nonce);
  w.PutBytes(cloud_nonce);
  Sha256Digest d = HmacSha256(root_key, w.bytes());
  return SessionKey(Bytes(d.begin(), d.end()));
}

Sha256Digest SessionKey::Mac(const Bytes& message) const {
  return HmacSha256(key_, message);
}

Status SessionKey::VerifyMac(const Bytes& message,
                             const Sha256Digest& mac) const {
  // Constant-time comparison (defensive habit; the simulation has no real
  // timing side channel, but the code is the documentation).
  Sha256Digest expected = Mac(message);
  uint8_t diff = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    diff |= expected[i] ^ mac[i];
  }
  if (diff != 0) {
    return IntegrityViolation("MAC verification failed");
  }
  return OkStatus();
}

}  // namespace grt
