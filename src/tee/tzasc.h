// TrustZone world model and TZASC (TrustZone Address Space Controller).
//
// §6: the trusted firmware dynamically switches the GPU between the normal
// world and the TEE with a configurable TZASC; GR-T statically reserves the
// GPU memory region and maps it (plus GPU registers) to the TEE during
// record/replay. We model the controller as an access policy installed on
// the physical carveout plus an ownership gate on the GPU MMIO window:
// while the TEE holds the GPU, normal-world register or memory access is
// denied (and recorded as a violation for tests to assert on).
#ifndef GRT_SRC_TEE_TZASC_H_
#define GRT_SRC_TEE_TZASC_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/hw/gpu.h"
#include "src/mem/phys_mem.h"

namespace grt {

enum class World {
  kNormal,
  kSecure,
};

const char* WorldName(World w);

class SocResources;

// Gates the GPU carveout and MMIO between worlds.
class Tzasc {
 public:
  explicit Tzasc(PhysicalMemory* carveout);

  // Optional: with SoC resources attached, register access additionally
  // requires the GPU power rail to be on (§6).
  void AttachSoc(const SocResources* soc) { soc_ = soc; }

  // Assigns the GPU (registers + carveout) to a world. Secure assignment is
  // what GPUShim does for the duration of record/replay (§3.2).
  void AssignGpu(World world);
  World gpu_owner() const { return gpu_owner_; }

  // Mediated register access: checks the caller's world against ownership.
  Result<uint32_t> ReadGpuRegister(World caller, MaliGpu* gpu,
                                   uint32_t offset);
  Status WriteGpuRegister(World caller, MaliGpu* gpu, uint32_t offset,
                          uint32_t value);

  // One write of the batched form below.
  struct RegWrite {
    uint32_t reg = 0;
    uint32_t value = 0;
  };

  // Batched register writes: one ownership/rail check for the whole span,
  // then the writes issue back-to-back in order. Semantically identical to
  // n WriteGpuRegister calls (each write still settles device events);
  // the point is the fused warm-replay path (src/analysis/planopt) paying
  // the mediation cost once per span instead of once per write. Stops at
  // the first failing write.
  Status WriteGpuRegisterSpan(World caller, MaliGpu* gpu,
                              const RegWrite* writes, size_t n);

  // Number of denied accesses (normal world poking secured GPU state);
  // the security tests assert these are blocked, not silently permitted.
  uint64_t violations() const { return violations_; }

 private:
  bool Permit(World caller) const {
    // The normal world may touch the GPU only while it owns it; the secure
    // world may always access (it is strictly more privileged).
    return caller == World::kSecure || gpu_owner_ == World::kNormal;
  }

  PhysicalMemory* carveout_;
  const SocResources* soc_ = nullptr;
  World gpu_owner_ = World::kNormal;
  mutable uint64_t violations_ = 0;
};

// Secure monitor: routes GPU interrupts to the owning world (§6 "We modify
// the secure monitor to route the GPU's interrupts to the TEE").
class SecureMonitor {
 public:
  explicit SecureMonitor(const Tzasc* tzasc) : tzasc_(tzasc) {}

  // Which world receives GPU interrupts right now.
  World IrqTarget() const { return tzasc_->gpu_owner(); }

  // True if `world` is allowed to observe a pending GPU interrupt.
  bool DeliverTo(World world) const { return IrqTarget() == world; }

 private:
  const Tzasc* tzasc_;
};

}  // namespace grt

#endif  // GRT_SRC_TEE_TZASC_H_
