// SoC resources outside the GPU driver's purview (§6): "To bootstrap the
// GPU, the client TEE needs to access SoC resources not managed by the GPU
// driver, e.g. power/clock for GPU. For strong security, we protect these
// resources inside the TEE" (instead of RPC-ing to the untrusted OS).
//
// Model: a power rail + clock gate for the GPU. Whoever owns the GPU (per
// the TZASC) may toggle them; with the rail off, the GPU's register file
// is unreachable (bus error), so a malicious normal world cannot yank
// power mid-recording — it is simply not allowed to touch the rail while
// the TEE holds the GPU.
#ifndef GRT_SRC_TEE_SOC_H_
#define GRT_SRC_TEE_SOC_H_

#include "src/common/status.h"
#include "src/tee/tzasc.h"

namespace grt {

class SocResources {
 public:
  explicit SocResources(const Tzasc* tzasc) : tzasc_(tzasc) {}

  // Rail/clock control is permitted only to the world owning the GPU
  // (the secure world always qualifies).
  Status SetGpuRail(World caller, bool on);
  Status SetGpuClock(World caller, uint32_t mhz);

  bool gpu_rail_on() const { return rail_on_; }
  uint32_t gpu_clock_mhz() const { return clock_mhz_; }
  uint64_t denied_toggles() const { return denied_; }

 private:
  bool Permitted(World caller) const {
    return caller == World::kSecure || tzasc_->gpu_owner() == World::kNormal;
  }

  const Tzasc* tzasc_;
  bool rail_on_ = true;      // firmware leaves the GPU powered at boot
  uint32_t clock_mhz_ = 0;   // 0 = SKU default
  mutable uint64_t denied_ = 0;
};

}  // namespace grt

#endif  // GRT_SRC_TEE_SOC_H_
