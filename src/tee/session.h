// Attested, authenticated cloud/client session crypto (§3.2, §7.1).
//
// The threat model trusts the cloud service and its attested VMs; the
// client TEE verifies an attestation quote before keying the channel, then
// all recording traffic is authenticated under the derived session key and
// the finished recording is signed by the cloud. We model the trust anchor
// as a pre-provisioned root key (standing in for the attestation PKI —
// the substitution is documented in DESIGN.md) and derive per-session keys
// from fresh nonces, HKDF-style over HMAC-SHA256.
#ifndef GRT_SRC_TEE_SESSION_H_
#define GRT_SRC_TEE_SESSION_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/sha256.h"
#include "src/common/status.h"

namespace grt {

// Measurement of a cloud VM image (hash of its "contents"): the quote binds
// the session to a specific GPU-stack VM build.
using VmMeasurement = Sha256Digest;

struct AttestationQuote {
  VmMeasurement measurement;
  Bytes nonce;            // client-chosen freshness nonce
  Sha256Digest signature; // HMAC under the attestation root key

  Bytes Serialize() const;
  static Result<AttestationQuote> Deserialize(const Bytes& raw);
};

// Cloud side: produces quotes for its VM measurement.
class Attestor {
 public:
  Attestor(Bytes root_key, VmMeasurement measurement)
      : root_key_(std::move(root_key)), measurement_(measurement) {}

  AttestationQuote Quote(const Bytes& client_nonce) const;

 private:
  Bytes root_key_;
  VmMeasurement measurement_;
};

// Client side: verifies quotes against the trust anchor and an expected
// measurement (the TEE only talks to known-good GPU-stack images).
class AttestationVerifier {
 public:
  AttestationVerifier(Bytes root_key, VmMeasurement expected)
      : root_key_(std::move(root_key)), expected_(expected) {}

  Status Verify(const AttestationQuote& quote, const Bytes& nonce) const;

 private:
  Bytes root_key_;
  VmMeasurement expected_;
};

// Symmetric session keyed by both parties after attestation. Provides
// authenticated framing for recording traffic and the recording signature.
class SessionKey {
 public:
  // key = HMAC(root, "grt-session" || nonce_c || nonce_s)
  static SessionKey Derive(const Bytes& root_key, const Bytes& client_nonce,
                           const Bytes& cloud_nonce);

  // MAC over a message; receivers verify before trusting content.
  Sha256Digest Mac(const Bytes& message) const;
  Status VerifyMac(const Bytes& message, const Sha256Digest& mac) const;

  const Bytes& key() const { return key_; }

 private:
  explicit SessionKey(Bytes key) : key_(std::move(key)) {}
  Bytes key_;
};

// Extra round trips + bytes for session establishment; the §7.1 security-
// overhead bench accounts for these ("a couple of additional RTTs").
struct HandshakeCost {
  int round_trips = 2;
  uint64_t bytes = 2 * (32 + 64 + 32);  // nonces + quote + confirmations
};

}  // namespace grt

#endif  // GRT_SRC_TEE_SESSION_H_
