// Dataflow IR over a recording's interaction log.
//
// The lifter turns the flat format-v3 log into typed nodes with def-use
// edges over register space and synced page ranges, so that compiler-style
// analyses (reaching definitions, liveness, commit-dominance) and the
// offline optimizer (src/analysis/opt) can reason about a recording the
// way a compiler reasons about straight-line code. A recording has no
// control flow — replay executes it verbatim — so dominance degenerates to
// precedence and every analysis is a linear sweep; what makes the problem
// interesting is the asynchronous device on the other side, captured by
// the conservative clobber model in src/hw/regs.h.
#ifndef GRT_SRC_ANALYSIS_DATAFLOW_IR_H_
#define GRT_SRC_ANALYSIS_DATAFLOW_IR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hw/regs.h"
#include "src/record/recording.h"

namespace grt {

enum class IrKind : uint8_t {
  kRegWrite,       // CPU stimulus
  kRegRead,        // validated GPU response
  kPoll,           // bounded busy-wait on a read-idempotent register
  kIrqWait,        // interrupt-line wait
  kCommitBarrier,  // explicit pacing delay: a §4.1 deferral boundary
  kMemSync,        // synced page image
};

const char* IrKindName(IrKind k);

// One IR node per log entry (indices are 1:1 with the lifted log).
struct IrNode {
  IrKind kind = IrKind::kRegWrite;
  uint32_t index = 0;  // position in the lifted log
  // Commit batch id: maximal runs of stimuli/memsyncs between barriers
  // (polls, irq-waits, delays, and validated reads all force the shim to
  // commit its deferred batch). Two nodes with the same batch id can be
  // sent to the device as one round trip.
  uint32_t batch = 0;
  RegClass reg_class = RegClass::kUnknown;  // register ops only
  // Def-use edges over register space. For observations (reads/polls):
  // the stimuli since the previous observation of the same register that
  // may define the observed value, per the clobber model. For stimuli:
  // the inverse (observations this write may feed).
  std::vector<uint32_t> defs;
  std::vector<uint32_t> uses;
  // kMemSync: the tensor binding overlapping this page, if any, and
  // whether the page precedes the segment's first job start (pages after
  // it are only applied at replay when flagged metastate).
  std::string binding;
  bool before_first_start = true;
};

struct DataflowIr {
  const Recording* rec = nullptr;
  std::vector<IrNode> nodes;
  std::vector<uint32_t> stimuli;  // indices of kRegWrite nodes, ascending
  // Register -> node indices, ascending. Observations = reads + polls.
  std::map<uint32_t, std::vector<uint32_t>> observations_of;
  std::map<uint32_t, std::vector<uint32_t>> writes_of;
  std::vector<uint32_t> job_starts;  // job-start-like write indices
  std::vector<uint32_t> resets;      // GPU_COMMAND soft/hard reset indices
  uint32_t n_batches = 0;
  size_t n_def_use_edges = 0;

  const LogEntry& entry(size_t i) const { return rec->log.entries()[i]; }
  size_t size() const { return nodes.size(); }
  bool has_job_start() const { return !job_starts.empty(); }
  // Index of the first job-start-like write (replayer: pages after it are
  // skipped unless metastate), or size() if none.
  size_t first_job_start() const {
    return job_starts.empty() ? nodes.size() : job_starts.front();
  }
};

// Lifts a recording. Never fails: unknown ops/offsets become conservative
// nodes (class kUnknown clobbers and is clobbered by everything).
DataflowIr LiftRecording(const Recording& rec);

struct IrStats {
  size_t nodes = 0;
  size_t writes = 0;
  size_t reads = 0;
  size_t polls = 0;
  size_t irq_waits = 0;
  size_t barriers = 0;
  size_t memsyncs = 0;
  size_t batches = 0;
  size_t def_use_edges = 0;
  size_t registers_touched = 0;
  size_t job_starts = 0;
  std::string ToString() const;
};

IrStats ComputeIrStats(const DataflowIr& ir);

// Human-readable dump (for recording_inspector --dataflow). Prints at most
// `max_nodes` nodes, then an ellipsis.
std::string DumpIr(const DataflowIr& ir, size_t max_nodes);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_DATAFLOW_IR_H_
