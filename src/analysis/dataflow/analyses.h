// Analyses over the dataflow IR: reaching definitions, register liveness,
// memsync-range interference, and commit-dominance. A recording is
// straight-line code, so dominance is precedence and every query is a
// window scan; conservatism lives in the clobber model (src/hw/regs.h).
// Every function here answers in the direction that can only inhibit an
// optimization, never enable an unsound one.
#ifndef GRT_SRC_ANALYSIS_DATAFLOW_ANALYSES_H_
#define GRT_SRC_ANALYSIS_DATAFLOW_ANALYSES_H_

#include <cstdint>
#include <optional>

#include "src/analysis/dataflow/ir.h"

namespace grt {

// Commit-dominance: in straight-line code, node a dominates node b iff it
// precedes it; a commit-dominates b additionally iff a's batch has been
// flushed to the device before b's is formed (a in a strictly earlier
// batch, or a is a barrier/observation preceding b).
bool Dominates(const DataflowIr& ir, size_t a, size_t b);
bool CommitDominates(const DataflowIr& ir, size_t a, size_t b);

// True if any stimulus strictly between `after` and `before` may clobber
// `reg` per the clobber model.
bool HasClobberBetween(const DataflowIr& ir, uint32_t reg, size_t after,
                       size_t before);

// Latest observation (read or poll) of `reg` strictly before `before`.
std::optional<size_t> PrevObservationOf(const DataflowIr& ir, uint32_t reg,
                                        size_t before);
// Latest write to `reg` strictly before `before`.
std::optional<size_t> PrevWriteOf(const DataflowIr& ir, uint32_t reg,
                                  size_t before);
// Earliest write to `reg` strictly after `after`, if any.
std::optional<size_t> NextWriteOf(const DataflowIr& ir, uint32_t reg,
                                  size_t after);

// Does the observation at `obs` establish (value & mask) == expected?
// A non-speculative read establishes its full validated value; a poll
// establishes only the bits it masked.
bool ObservationEstablishes(const DataflowIr& ir, size_t obs, uint32_t mask,
                            uint32_t expected);

// Register liveness for a pure-latch (kCpuConfig) write: may the latched
// value still be consumed by the device or a later observation before the
// next write to the same register? Consumers are derived per latch family
// (job-descriptor *_NEXT latches are consumed by that slot's commands, AS
// latches by that AS's commands, IRQ masks by irq-waits and STATUS
// observations, behavior-config latches by any trigger). A write with no
// later same-register write in the log is always live (the value persists
// into the next segment / teardown).
bool ConfigWriteIsLive(const DataflowIr& ir, size_t write_index);

// Power-state evidence: the latest non-speculative validated read of the
// READY register matching power-control register `power_reg` (same domain
// and word) before `before`, with no same-domain power write or reset in
// between — i.e. the read's value still describes the powered cores at
// `before`. Returns the evidence index and the ready bits it proves.
std::optional<size_t> DominatingPowerEvidence(const DataflowIr& ir,
                                              uint32_t power_reg,
                                              size_t before,
                                              uint32_t* ready_bits);

// Memsync-range interference: true if the page entry at `page_index`
// overlaps a tensor binding that is writable at replay (inputs/params may
// be superseded by injected data, so their recorded images must be left
// untouched by any transformation that cannot prove the replayer ignores
// the entry anyway).
bool PageOverlapsWritableBinding(const DataflowIr& ir, size_t page_index);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_DATAFLOW_ANALYSES_H_
