#include "src/analysis/dataflow/analyses.h"

#include <algorithm>

namespace grt {
namespace {

// -1 if not a power-control register; otherwise a small id unique per
// (domain, word) so same-domain interference checks are cheap.
int PowerDomainWordOf(uint32_t reg) {
  uint32_t ready = 0;
  uint32_t trans = 0;
  if (!PowerStatusRegistersFor(reg, &ready, &trans)) {
    return -1;
  }
  return static_cast<int>(ready);  // READY offset identifies (domain, word)
}

bool IsResetWrite(const LogEntry& e) {
  return e.op == LogOp::kRegWrite && e.reg == kRegGpuCommand &&
         (e.value == kGpuCommandSoftReset || e.value == kGpuCommandHardReset);
}

// Latest index in `sorted` strictly below `before`, if any.
std::optional<size_t> LastBelow(const std::vector<uint32_t>& sorted,
                                size_t before) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), before);
  if (it == sorted.begin()) {
    return std::nullopt;
  }
  return *std::prev(it);
}

std::optional<size_t> FirstAbove(const std::vector<uint32_t>& sorted,
                                 size_t after) {
  auto it = std::upper_bound(sorted.begin(), sorted.end(), after);
  if (it == sorted.end()) {
    return std::nullopt;
  }
  return *it;
}

}  // namespace

bool Dominates(const DataflowIr& ir, size_t a, size_t b) {
  (void)ir;
  return a < b;
}

bool CommitDominates(const DataflowIr& ir, size_t a, size_t b) {
  if (a >= b) {
    return false;
  }
  const IrNode& na = ir.nodes[a];
  const IrNode& nb = ir.nodes[b];
  if (na.batch == 0 || nb.batch == 0) {
    // Barriers/observations are themselves commit points.
    return true;
  }
  return na.batch < nb.batch;
}

bool HasClobberBetween(const DataflowIr& ir, uint32_t reg, size_t after,
                       size_t before) {
  for (size_t i = after + 1; i < before && i < ir.size(); ++i) {
    const LogEntry& e = ir.entry(i);
    if (e.op != LogOp::kRegWrite) {
      continue;
    }
    if (MayClobberRegister(e.reg, e.value, reg)) {
      return true;
    }
  }
  return false;
}

std::optional<size_t> PrevObservationOf(const DataflowIr& ir, uint32_t reg,
                                        size_t before) {
  auto it = ir.observations_of.find(reg);
  if (it == ir.observations_of.end()) {
    return std::nullopt;
  }
  return LastBelow(it->second, before);
}

std::optional<size_t> PrevWriteOf(const DataflowIr& ir, uint32_t reg,
                                  size_t before) {
  auto it = ir.writes_of.find(reg);
  if (it == ir.writes_of.end()) {
    return std::nullopt;
  }
  return LastBelow(it->second, before);
}

std::optional<size_t> NextWriteOf(const DataflowIr& ir, uint32_t reg,
                                  size_t after) {
  auto it = ir.writes_of.find(reg);
  if (it == ir.writes_of.end()) {
    return std::nullopt;
  }
  return FirstAbove(it->second, after);
}

bool ObservationEstablishes(const DataflowIr& ir, size_t obs, uint32_t mask,
                            uint32_t expected) {
  const LogEntry& e = ir.entry(obs);
  if (e.op == LogOp::kRegRead) {
    return !e.speculative && (e.value & mask) == (expected & mask);
  }
  if (e.op == LogOp::kPollWait) {
    // A poll only proves the bits it masked, at the moment it succeeded.
    return (e.mask & mask) == mask && (e.expected & mask) == (expected & mask);
  }
  return false;
}

bool ConfigWriteIsLive(const DataflowIr& ir, size_t write_index) {
  const LogEntry& w = ir.entry(write_index);
  if (ClassifyRegister(w.reg) != RegClass::kCpuConfig) {
    return true;  // only pure latches have a liveness notion
  }
  auto next_write = NextWriteOf(ir, w.reg, write_index);
  if (!next_write.has_value()) {
    return true;  // persists past the log: next segment / teardown may use it
  }

  // Families: which register would a consumer touch?
  const bool in_slot = w.reg >= kJobSlotBase &&
                       w.reg < kJobSlotBase + kMaxJobSlots * kJobSlotStride;
  const bool in_as =
      w.reg >= kAsBase && w.reg < kAsBase + kMaxAddressSpaces * kAsStride;
  uint32_t consumer_reg_a = 0;
  uint32_t consumer_reg_b = 0;
  uint32_t status_reg = 0;
  bool any_trigger_consumes = false;
  if (in_slot) {
    const uint32_t slot_base =
        w.reg - (w.reg - kJobSlotBase) % kJobSlotStride;
    consumer_reg_a = slot_base + kJsCommand;
    consumer_reg_b = slot_base + kJsCommandNext;
  } else if (in_as) {
    const uint32_t as_base = w.reg - (w.reg - kAsBase) % kAsStride;
    consumer_reg_a = as_base + kAsCommand;
  } else if (w.reg == kRegGpuIrqMask) {
    status_reg = kRegGpuIrqStatus;
  } else if (w.reg == kRegJobIrqMask) {
    status_reg = kRegJobIrqStatus;
  } else if (w.reg == kRegMmuIrqMask) {
    status_reg = kRegMmuIrqStatus;
  } else {
    // SHADER/TILER/L2_MMU_CONFIG, PWR_KEY, PWR_OVERRIDE*: behavior knobs —
    // any trigger in the window may observe them.
    any_trigger_consumes = true;
  }

  for (size_t i = write_index + 1; i <= *next_write; ++i) {
    const LogEntry& e = ir.entry(i);
    switch (e.op) {
      case LogOp::kRegRead:
      case LogOp::kPollWait:
        if (e.reg == w.reg) {
          return true;  // direct readback
        }
        if (status_reg != 0 && e.reg == status_reg) {
          return true;  // STATUS = RAWSTAT & MASK
        }
        break;
      case LogOp::kIrqWait:
        if (status_reg != 0) {
          return true;  // line assertion is gated by the mask latch
        }
        break;
      case LogOp::kRegWrite:
        if (i == *next_write) {
          break;  // the overwrite itself is not a consumer
        }
        if (e.reg == consumer_reg_a || e.reg == consumer_reg_b) {
          return true;
        }
        if (any_trigger_consumes &&
            ClassifyRegister(e.reg) == RegClass::kTrigger) {
          return true;
        }
        break;
      default:
        break;
    }
  }
  return false;
}

std::optional<size_t> DominatingPowerEvidence(const DataflowIr& ir,
                                              uint32_t power_reg,
                                              size_t before,
                                              uint32_t* ready_bits) {
  uint32_t ready_reg = 0;
  uint32_t trans_reg = 0;
  if (!PowerStatusRegistersFor(power_reg, &ready_reg, &trans_reg)) {
    return std::nullopt;
  }
  const int domain_word = PowerDomainWordOf(power_reg);
  auto it = ir.observations_of.find(ready_reg);
  if (it == ir.observations_of.end()) {
    return std::nullopt;
  }
  // Walk candidate READY reads latest-first; the first one with a clean
  // window (no same-domain power write, no reset) wins.
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    const size_t cand = *rit;
    if (cand >= before) {
      continue;
    }
    const LogEntry& e = ir.entry(cand);
    if (e.op != LogOp::kRegRead || e.speculative) {
      continue;
    }
    bool clean = true;
    for (size_t i = cand + 1; i < before; ++i) {
      const LogEntry& s = ir.entry(i);
      if (s.op != LogOp::kRegWrite) {
        continue;
      }
      if (IsResetWrite(s) || PowerDomainWordOf(s.reg) == domain_word) {
        clean = false;
        break;
      }
    }
    if (!clean) {
      return std::nullopt;  // closest evidence is stale; anything older too
    }
    *ready_bits = e.value;
    return cand;
  }
  return std::nullopt;
}

bool PageOverlapsWritableBinding(const DataflowIr& ir, size_t page_index) {
  const IrNode& n = ir.nodes[page_index];
  if (n.kind != IrKind::kMemSync || n.binding.empty()) {
    return false;
  }
  auto it = ir.rec->bindings.find(n.binding);
  return it != ir.rec->bindings.end() && it->second.writable_at_replay;
}

}  // namespace grt
