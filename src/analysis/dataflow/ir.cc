#include "src/analysis/dataflow/ir.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <unordered_map>

namespace grt {
namespace {

// Must mirror the replayer's IsJobStartLike: the optimizer's page-pruning
// argument is "the replayer skips this entry", so the two definitions may
// never drift apart (tests/analysis/opt_equivalence_test pins them).
bool IsJobStartLikeEntry(const LogEntry& e) {
  if (e.op != LogOp::kRegWrite || e.value != kJsCommandStart) {
    return false;
  }
  if (e.reg < kJobSlotBase ||
      e.reg >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  return (e.reg - kJobSlotBase) % kJobSlotStride == kJsCommandNext;
}

bool IsResetEntry(const LogEntry& e) {
  return e.op == LogOp::kRegWrite && e.reg == kRegGpuCommand &&
         (e.value == kGpuCommandSoftReset || e.value == kGpuCommandHardReset);
}

}  // namespace

const char* IrKindName(IrKind k) {
  switch (k) {
    case IrKind::kRegWrite: return "write";
    case IrKind::kRegRead: return "read";
    case IrKind::kPoll: return "poll";
    case IrKind::kIrqWait: return "irq-wait";
    case IrKind::kCommitBarrier: return "commit-barrier";
    case IrKind::kMemSync: return "memsync";
  }
  return "?";
}

DataflowIr LiftRecording(const Recording& rec) {
  DataflowIr ir;
  ir.rec = &rec;
  const auto& entries = rec.log.entries();
  ir.nodes.resize(entries.size());

  // Page -> binding name, for memsync interference edges.
  std::unordered_map<uint64_t, const std::string*> page_binding;
  for (const auto& [name, b] : rec.bindings) {
    for (uint64_t pa : b.pages) {
      page_binding[pa] = &name;
    }
  }

  uint32_t batch = 0;
  bool in_batch = false;
  bool seen_job_start = false;
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    IrNode& n = ir.nodes[i];
    n.index = static_cast<uint32_t>(i);
    switch (e.op) {
      case LogOp::kRegWrite:
        n.kind = IrKind::kRegWrite;
        break;
      case LogOp::kRegRead:
        n.kind = IrKind::kRegRead;
        break;
      case LogOp::kPollWait:
        n.kind = IrKind::kPoll;
        break;
      case LogOp::kIrqWait:
        n.kind = IrKind::kIrqWait;
        break;
      case LogOp::kDelay:
        n.kind = IrKind::kCommitBarrier;
        break;
      case LogOp::kMemPage:
        n.kind = IrKind::kMemSync;
        break;
    }

    // Commit batches: stimuli and page syncs can ride one deferred batch;
    // reads, polls, irq-waits, and delays force a commit first.
    if (n.kind == IrKind::kRegWrite || n.kind == IrKind::kMemSync) {
      if (!in_batch) {
        ++batch;
        in_batch = true;
      }
      n.batch = batch;
    } else {
      in_batch = false;
      n.batch = 0;
    }

    switch (n.kind) {
      case IrKind::kRegWrite:
        n.reg_class = ClassifyRegister(e.reg);
        ir.stimuli.push_back(n.index);
        ir.writes_of[e.reg].push_back(n.index);
        if (IsJobStartLikeEntry(e)) {
          ir.job_starts.push_back(n.index);
          seen_job_start = true;
        }
        if (IsResetEntry(e)) {
          ir.resets.push_back(n.index);
        }
        break;
      case IrKind::kRegRead:
      case IrKind::kPoll:
        n.reg_class = ClassifyRegister(e.reg);
        ir.observations_of[e.reg].push_back(n.index);
        break;
      case IrKind::kMemSync:
        n.before_first_start = !seen_job_start;
        if (auto it = page_binding.find(e.pa); it != page_binding.end()) {
          n.binding = *it->second;
        }
        break;
      default:
        break;
    }
  }
  ir.n_batches = batch;

  // Def-use edges: for each observation, the stimuli since the previous
  // observation of the same register that may define its value.
  for (const auto& [reg, obs_list] : ir.observations_of) {
    size_t window_start = 0;
    for (uint32_t obs : obs_list) {
      for (size_t j = window_start; j < obs; ++j) {
        const LogEntry& s = entries[j];
        if (s.op != LogOp::kRegWrite) {
          continue;
        }
        if (MayClobberRegister(s.reg, s.value, reg)) {
          ir.nodes[obs].defs.push_back(static_cast<uint32_t>(j));
          ir.nodes[j].uses.push_back(obs);
          ++ir.n_def_use_edges;
        }
      }
      window_start = obs + 1;
    }
  }
  return ir;
}

IrStats ComputeIrStats(const DataflowIr& ir) {
  IrStats s;
  s.nodes = ir.nodes.size();
  std::set<uint32_t> regs;
  for (const IrNode& n : ir.nodes) {
    switch (n.kind) {
      case IrKind::kRegWrite: ++s.writes; break;
      case IrKind::kRegRead: ++s.reads; break;
      case IrKind::kPoll: ++s.polls; break;
      case IrKind::kIrqWait: ++s.irq_waits; break;
      case IrKind::kCommitBarrier: ++s.barriers; break;
      case IrKind::kMemSync: ++s.memsyncs; break;
    }
    if (n.kind == IrKind::kRegWrite || n.kind == IrKind::kRegRead ||
        n.kind == IrKind::kPoll) {
      regs.insert(ir.entry(n.index).reg);
    }
  }
  s.batches = ir.n_batches;
  s.def_use_edges = ir.n_def_use_edges;
  s.registers_touched = regs.size();
  s.job_starts = ir.job_starts.size();
  return s;
}

std::string IrStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "nodes=%zu (writes=%zu reads=%zu polls=%zu irq-waits=%zu "
                "barriers=%zu memsyncs=%zu)\n"
                "commit batches=%zu  def-use edges=%zu  "
                "registers touched=%zu  job starts=%zu",
                nodes, writes, reads, polls, irq_waits, barriers, memsyncs,
                batches, def_use_edges, registers_touched, job_starts);
  return buf;
}

std::string DumpIr(const DataflowIr& ir, size_t max_nodes) {
  std::string out;
  char buf[256];
  const size_t n = ir.nodes.size() < max_nodes ? ir.nodes.size() : max_nodes;
  for (size_t i = 0; i < n; ++i) {
    const IrNode& node = ir.nodes[i];
    const LogEntry& e = ir.entry(i);
    std::snprintf(buf, sizeof(buf), "[%5zu] %-14s", i, IrKindName(node.kind));
    out += buf;
    switch (node.kind) {
      case IrKind::kRegWrite:
        std::snprintf(buf, sizeof(buf), " %-20s = 0x%08X  batch=%u",
                      RegisterName(e.reg), e.value, node.batch);
        out += buf;
        if (!node.uses.empty()) {
          out += "  uses={";
          for (size_t u = 0; u < node.uses.size(); ++u) {
            std::snprintf(buf, sizeof(buf), "%s%u", u ? "," : "",
                          node.uses[u]);
            out += buf;
          }
          out += "}";
        }
        break;
      case IrKind::kRegRead:
      case IrKind::kPoll:
        if (node.kind == IrKind::kPoll) {
          std::snprintf(buf, sizeof(buf),
                        " %-20s mask=0x%08X expect=0x%08X", RegisterName(e.reg),
                        e.mask, e.expected);
        } else {
          std::snprintf(buf, sizeof(buf), " %-20s : 0x%08X",
                        RegisterName(e.reg), e.value);
        }
        out += buf;
        if (!node.defs.empty()) {
          out += "  defs={";
          for (size_t d = 0; d < node.defs.size(); ++d) {
            std::snprintf(buf, sizeof(buf), "%s%u", d ? "," : "",
                          node.defs[d]);
            out += buf;
          }
          out += "}";
        }
        break;
      case IrKind::kIrqWait:
        std::snprintf(buf, sizeof(buf), " lines=0x%02X", e.irq_lines);
        out += buf;
        break;
      case IrKind::kCommitBarrier:
        std::snprintf(buf, sizeof(buf), " %" PRId64 " ns",
                      static_cast<int64_t>(e.delay));
        out += buf;
        break;
      case IrKind::kMemSync:
        std::snprintf(buf, sizeof(buf), " pa=0x%010" PRIX64 " %s%s%s%s",
                      e.pa, e.metastate ? "meta" : "data",
                      node.before_first_start ? "" : " post-start",
                      node.binding.empty() ? "" : " binding=",
                      node.binding.c_str());
        out += buf;
        break;
    }
    out += "\n";
  }
  if (ir.nodes.size() > n) {
    std::snprintf(buf, sizeof(buf), "... (%zu more nodes)\n",
                  ir.nodes.size() - n);
    out += buf;
  }
  return out;
}

}  // namespace grt
