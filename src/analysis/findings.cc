#include "src/analysis/findings.h"

#include <cstdio>

namespace grt {

const char* FindingSeverityName(FindingSeverity severity) {
  switch (severity) {
    case FindingSeverity::kWarning: return "warning";
    case FindingSeverity::kError: return "error";
  }
  return "?";
}

std::string Finding::ToString() const {
  char where[32];
  if (log_index == kWholeRecording) {
    std::snprintf(where, sizeof(where), "recording");
  } else {
    std::snprintf(where, sizeof(where), "entry %td", log_index);
  }
  return std::string(FindingSeverityName(severity)) + " [" + pass + "] " +
         where + ": " + message;
}

size_t AnalysisReport::error_count() const {
  size_t n = 0;
  for (const Finding& f : findings_) {
    n += (f.severity == FindingSeverity::kError);
  }
  return n;
}

size_t AnalysisReport::warning_count() const {
  return findings_.size() - error_count();
}

const Finding* AnalysisReport::first_error() const {
  for (const Finding& f : findings_) {
    if (f.severity == FindingSeverity::kError) {
      return &f;
    }
  }
  return nullptr;
}

std::vector<Finding> AnalysisReport::ByPass(const std::string& pass) const {
  std::vector<Finding> out;
  for (const Finding& f : findings_) {
    if (f.pass == pass) {
      out.push_back(f);
    }
  }
  return out;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Finding& f : findings_) {
    out += f.ToString();
    out += '\n';
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "%zu entries, %zu passes: %zu error(s), %zu warning(s)",
                entries_analyzed, passes_run, error_count(), warning_count());
  out += tail;
  return out;
}

}  // namespace grt
