// Findings produced by the static recording verifier.
//
// Every pass reports through this shared vocabulary: a finding names the
// pass that produced it, carries a severity, points at the offending log
// entry (or the recording as a whole), and explains the problem in plain
// language. The replayer and the sealed store refuse recordings whose
// report contains errors; warnings are advisory (surfaced by grt_lint and
// the inspector but not blocking).
#ifndef GRT_SRC_ANALYSIS_FINDINGS_H_
#define GRT_SRC_ANALYSIS_FINDINGS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace grt {

enum class FindingSeverity {
  kWarning,  // suspicious but replayable
  kError,    // recording must not be admitted
};

const char* FindingSeverityName(FindingSeverity severity);

// Log index value for findings about the recording as a whole (header,
// bindings, cross-entry properties with no single anchor).
constexpr ptrdiff_t kWholeRecording = -1;

struct Finding {
  std::string pass;            // producing pass name, e.g. "register-protocol"
  FindingSeverity severity = FindingSeverity::kError;
  ptrdiff_t log_index = kWholeRecording;
  std::string message;         // human-readable explanation

  // "error [register-protocol] entry 12: ..." (or "recording:" for -1).
  std::string ToString() const;
};

class AnalysisReport {
 public:
  void Add(Finding finding) { findings_.push_back(std::move(finding)); }

  const std::vector<Finding>& findings() const { return findings_; }
  size_t error_count() const;
  size_t warning_count() const;
  bool ok() const { return error_count() == 0; }

  // First error finding, or nullptr if the report is clean.
  const Finding* first_error() const;

  // All findings produced by `pass`.
  std::vector<Finding> ByPass(const std::string& pass) const;

  // Multi-line human-readable summary (one line per finding).
  std::string ToString() const;

  // Bookkeeping filled by the verifier.
  size_t entries_analyzed = 0;
  size_t passes_run = 0;

 private:
  std::vector<Finding> findings_;
};

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_FINDINGS_H_
