#include "src/analysis/verifier.h"

#include <cstdio>

#include "src/analysis/passes.h"
#include "src/sku/sku.h"

namespace grt {

namespace {

std::vector<VerifierPassFactory>& ExtraPassRegistry() {
  static std::vector<VerifierPassFactory> registry;
  return registry;
}

}  // namespace

void RegisterVerifierPass(VerifierPassFactory factory) {
  ExtraPassRegistry().push_back(factory);
}

RecordingVerifier::RecordingVerifier() {
  passes_.push_back(std::make_unique<GrammarPass>());
  passes_.push_back(std::make_unique<RegisterProtocolPass>());
  passes_.push_back(std::make_unique<SpeculationResiduePass>());
  passes_.push_back(std::make_unique<PollIdempotencePass>());
  passes_.push_back(std::make_unique<MetastateCoveragePass>());
  passes_.push_back(std::make_unique<SkuCompatPass>());
  passes_.push_back(std::make_unique<OptimizerProvenancePass>());
  passes_.push_back(std::make_unique<FootprintSoundnessPass>());
  for (VerifierPassFactory factory : ExtraPassRegistry()) {
    passes_.push_back(factory());
  }
}

void RecordingVerifier::AddPass(std::unique_ptr<AnalysisPass> pass) {
  passes_.push_back(std::move(pass));
}

AnalysisReport RecordingVerifier::Analyze(const Recording& recording) const {
  AnalysisInput in;
  in.recording = &recording;
  auto sku = FindSku(recording.header.sku);
  if (sku.ok()) {
    in.sku = &sku.value();
  }
  in.continuation = recording.header.segment_index > 0;

  AnalysisReport report;
  for (const auto& pass : passes_) {
    pass->Run(in, &report);
  }
  report.entries_analyzed = recording.log.size();
  report.passes_run = passes_.size();
  return report;
}

Status RecordingVerifier::Verify(const Recording& recording) const {
  AnalysisReport report = Analyze(recording);
  if (report.ok()) {
    return OkStatus();
  }
  const Finding* first = report.first_error();
  char tail[64];
  std::snprintf(tail, sizeof(tail), " (%zu error(s) total)",
                report.error_count());
  return IntegrityViolation("recording rejected by static verifier: " +
                            first->ToString() + tail);
}

Status VerifyRecording(const Recording& recording) {
  static const RecordingVerifier verifier;
  return verifier.Verify(recording);
}

}  // namespace grt
