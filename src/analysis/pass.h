// Analysis pass interface: one composable static check over a recording.
//
// Passes inspect the interaction log *without executing it* — no GPU model,
// no memory writes, no timeline. They are the admission gate between a
// signed recording and the TEE replayer (§3, §7: the recording is the
// entire trusted interface, so its content — not just its signature —
// must be validated).
#ifndef GRT_SRC_ANALYSIS_PASS_H_
#define GRT_SRC_ANALYSIS_PASS_H_

#include "src/analysis/findings.h"
#include "src/record/recording.h"
#include "src/sku/sku.h"

namespace grt {

struct AnalysisInput {
  const Recording* recording = nullptr;
  // Resolved from the header's claimed SKU; nullptr when the SKU is not in
  // the registry (the sku-compat pass reports that as its own error).
  const GpuSku* sku = nullptr;
  // True for segment_index > 0 of a layered recording: the log continues
  // from hardware state established by earlier segments, so stateful
  // ordering checks must assume a configured, powered device rather than
  // reporting "X before Y" for state set up before this segment began.
  bool continuation = false;
};

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  // Stable pass name used in findings and CLI filters ("grammar",
  // "register-protocol", ...).
  virtual const char* name() const = 0;

  virtual void Run(const AnalysisInput& in, AnalysisReport* report) const = 0;

 protected:
  void Report(AnalysisReport* report, FindingSeverity severity,
              ptrdiff_t log_index, std::string message) const {
    Finding f;
    f.pass = name();
    f.severity = severity;
    f.log_index = log_index;
    f.message = std::move(message);
    report->Add(std::move(f));
  }
  void Error(AnalysisReport* report, ptrdiff_t log_index,
             std::string message) const {
    Report(report, FindingSeverity::kError, log_index, std::move(message));
  }
  void Warn(AnalysisReport* report, ptrdiff_t log_index,
            std::string message) const {
    Report(report, FindingSeverity::kWarning, log_index, std::move(message));
  }
};

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_PASS_H_
