#include "src/analysis/passes.h"

#include <array>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "src/analysis/footprint/footprint.h"
#include "src/hw/mmu.h"
#include "src/hw/regs.h"
#include "src/mem/phys_mem.h"

namespace grt {
namespace {

std::string Fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

// Decomposes a job-slot register offset into (slot, per-slot offset).
bool JobSlotReg(uint32_t reg, int* slot, uint32_t* rel) {
  if (reg < kJobSlotBase ||
      reg >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  *slot = static_cast<int>((reg - kJobSlotBase) / kJobSlotStride);
  *rel = (reg - kJobSlotBase) % kJobSlotStride;
  return true;
}

// Decomposes an address-space register offset into (as, per-AS offset).
bool AddressSpaceReg(uint32_t reg, int* as, uint32_t* rel) {
  if (reg < kAsBase || reg >= kAsBase + kMaxAddressSpaces * kAsStride) {
    return false;
  }
  *as = static_cast<int>((reg - kAsBase) / kAsStride);
  *rel = (reg - kAsBase) % kAsStride;
  return true;
}

bool IsFlushCommand(uint32_t value) {
  return value == kGpuCommandCleanCaches || value == kGpuCommandCleanInvCaches;
}

}  // namespace

// --------------------------------------------------------------- grammar

void GrammarPass::Run(const AnalysisInput& in, AnalysisReport* report) const {
  const auto& entries = in.recording->log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    ptrdiff_t at = static_cast<ptrdiff_t>(i);
    bool is_reg_op = e.op == LogOp::kRegWrite || e.op == LogOp::kRegRead ||
                     e.op == LogOp::kPollWait;
    if (is_reg_op) {
      if (e.reg % 4 != 0) {
        Error(report, at,
              Fmt("unaligned register offset 0x%X", e.reg));
      }
      if (e.reg >= kGpuMmioSize) {
        Error(report, at,
              Fmt("register offset 0x%X outside the GPU MMIO window (0x%X)",
                  e.reg, kGpuMmioSize));
      }
    }
    // Fields that do not belong to the op must be at their defaults: a
    // nonzero stray field means the entry was forged or corrupted in a way
    // deserialization cannot see.
    if (e.op != LogOp::kPollWait && (e.mask != 0 || e.expected != 0)) {
      Error(report, at, "poll mask/expected set on a non-poll entry");
    }
    if (e.op != LogOp::kDelay && e.delay != 0) {
      Error(report, at, "delay set on a non-delay entry");
    }
    if (e.op != LogOp::kIrqWait && e.irq_lines != 0) {
      Error(report, at, "interrupt lines set on a non-irq-wait entry");
    }
    if (e.op != LogOp::kMemPage && (e.pa != 0 || !e.data.empty())) {
      Error(report, at, "page address/payload set on a non-mem-page entry");
    }
    switch (e.op) {
      case LogOp::kRegWrite:
      case LogOp::kRegRead:
      case LogOp::kPollWait:
        break;
      case LogOp::kDelay:
        if (e.delay <= 0) {
          Error(report, at,
                Fmt("non-positive delay %" PRId64
                    " ns (replay time must advance monotonically)",
                    static_cast<int64_t>(e.delay)));
        }
        break;
      case LogOp::kIrqWait:
        if (e.irq_lines == 0) {
          Error(report, at, "irq wait on no interrupt lines (never returns)");
        } else if ((e.irq_lines & ~0x07u) != 0) {
          Error(report, at,
                Fmt("unknown interrupt line bits 0x%02X (only job/gpu/mmu "
                    "exist)",
                    e.irq_lines));
        }
        break;
      case LogOp::kMemPage:
        if (e.data.empty()) {
          Error(report, at, "empty page image");
        } else if (e.data.size() != kPageSize) {
          Error(report, at,
                Fmt("page image is %zu bytes; pages are %" PRIu64 " bytes",
                    e.data.size(), kPageSize));
        }
        if ((e.pa & kPageMask) != 0) {
          Error(report, at,
                Fmt("page image at unaligned physical address 0x%" PRIx64,
                    e.pa));
        }
        break;
    }
  }
}

// ----------------------------------------------------- register-protocol

void RegisterProtocolPass::Run(const AnalysisInput& in,
                               AnalysisReport* report) const {
  const bool cont = in.continuation;
  const auto& entries = in.recording->log.entries();

  // Power-domain state machines (a continuation segment inherits a powered
  // device from its predecessor, so start fully on).
  uint32_t shader_on = cont ? ~0u : 0;
  uint32_t tiler_on = cont ? ~0u : 0;
  uint32_t l2_on = cont ? ~0u : 0;
  bool reset_seen = cont;

  std::array<bool, kMaxAddressSpaces> transtab_written{};
  std::array<bool, kMaxAddressSpaces> memattr_written{};
  std::array<bool, kMaxAddressSpaces> as_configured{};
  if (cont) {
    as_configured.fill(true);
  }

  std::array<bool, kMaxJobSlots> slot_busy{};
  std::array<uint32_t, kMaxJobSlots> last_affinity{};
  std::array<uint32_t, kMaxJobSlots> last_config{};

  bool flush_inflight = false;
  size_t flush_at = 0;

  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    ptrdiff_t at = static_cast<ptrdiff_t>(i);

    if (e.op == LogOp::kPollWait) {
      if (e.reg == kRegGpuIrqRawstat && flush_inflight &&
          (e.mask & kGpuIrqCleanCachesCompleted) != 0 &&
          (e.expected & kGpuIrqCleanCachesCompleted) != 0) {
        flush_inflight = false;  // completion observed
      }
      continue;
    }
    if (e.op != LogOp::kRegWrite) {
      continue;
    }

    switch (e.reg) {
      case kRegGpuCommand:
        if (e.value == kGpuCommandSoftReset ||
            e.value == kGpuCommandHardReset) {
          reset_seen = true;
          flush_inflight = false;
          slot_busy.fill(false);
        } else if (IsFlushCommand(e.value)) {
          if (flush_inflight) {
            Error(report, at,
                  Fmt("cache flush reissued before the flush started at "
                      "entry %zu was observed complete (flush-before-reuse)",
                      flush_at));
          }
          flush_inflight = true;
          flush_at = i;
        }
        continue;
      case kRegShaderPwrOnLo: shader_on |= e.value; continue;
      case kRegShaderPwrOffLo: shader_on &= ~e.value; continue;
      case kRegTilerPwrOnLo: tiler_on |= e.value; continue;
      case kRegTilerPwrOffLo: tiler_on &= ~e.value; continue;
      case kRegL2PwrOnLo: l2_on |= e.value; continue;
      case kRegL2PwrOffLo: l2_on &= ~e.value; continue;
      case kRegJobIrqClear:
        for (int s = 0; s < kMaxJobSlots; ++s) {
          if ((e.value & (JobIrqDoneBit(s) | JobIrqFailBit(s))) != 0) {
            slot_busy[static_cast<size_t>(s)] = false;
          }
        }
        continue;
      default:
        break;
    }

    int as;
    uint32_t rel;
    if (AddressSpaceReg(e.reg, &as, &rel)) {
      auto a = static_cast<size_t>(as);
      if (rel == kAsTranstabLo) {
        transtab_written[a] = true;
      } else if (rel == kAsMemattrLo) {
        memattr_written[a] = true;
      } else if (rel == kAsCommand && e.value == kAsCommandUpdate) {
        if (!reset_seen) {
          Error(report, at,
                Fmt("AS%d configured before the GPU was reset/enabled", as));
        }
        if (!transtab_written[a]) {
          Error(report, at,
                Fmt("AS%d UPDATE issued before TRANSTAB was programmed", as));
        }
        if (!memattr_written[a]) {
          Error(report, at,
                Fmt("AS%d UPDATE issued before MEMATTR was programmed", as));
        }
        as_configured[a] = true;
      }
      continue;
    }

    int slot;
    if (!JobSlotReg(e.reg, &slot, &rel)) {
      continue;
    }
    auto s = static_cast<size_t>(slot);
    if (rel == kJsAffinityNextLo || rel == kJsAffinityLo) {
      last_affinity[s] = e.value;
    } else if (rel == kJsConfigNext || rel == kJsConfig) {
      last_config[s] = e.value;
    } else if (rel == kJsCommandNext && e.value == kJsCommandStart) {
      if (!reset_seen) {
        Error(report, at,
              Fmt("job submitted on slot %d before the GPU was reset", slot));
      }
      if (slot_busy[s]) {
        Error(report, at,
              Fmt("job resubmitted on slot %d before the previous job's "
                  "completion was acknowledged",
                  slot));
      }
      if ((last_affinity[s] & ~shader_on) != 0) {
        Error(report, at,
              Fmt("job submitted on slot %d before its shader cores were "
                  "powered up (affinity 0x%X, powered 0x%X)",
                  slot, last_affinity[s], shader_on));
      }
      if (l2_on == 0) {
        Error(report, at,
              Fmt("job submitted on slot %d with the L2 powered down", slot));
      }
      uint32_t job_as = last_config[s];
      if (job_as < kMaxAddressSpaces &&
          !as_configured[static_cast<size_t>(job_as)]) {
        Error(report, at,
              Fmt("job on slot %d references MMU address space %u before an "
                  "AS UPDATE configured it",
                  slot, job_as));
      }
      slot_busy[s] = true;
    }
  }
}

// --------------------------------------------------- speculation-residue

void SpeculationResiduePass::Run(const AnalysisInput& in,
                                 AnalysisReport* report) const {
  const auto& entries = in.recording->log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    if (e.op == LogOp::kRegRead && e.speculative) {
      Error(report, static_cast<ptrdiff_t>(i),
            Fmt("read of %s carries a speculative (predicted, never "
                "device-validated) value 0x%X",
                RegisterName(e.reg), e.value));
    }
  }
}

// ------------------------------------------------------- poll-idempotence

void PollIdempotencePass::Run(const AnalysisInput& in,
                              AnalysisReport* report) const {
  const auto& entries = in.recording->log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    if (e.op != LogOp::kPollWait) {
      continue;
    }
    ptrdiff_t at = static_cast<ptrdiff_t>(i);
    if (!IsReadIdempotentRegister(e.reg)) {
      Error(report, at,
            Fmt("poll target %s is not read-idempotent; re-polling it at "
                "replay would perturb device state",
                RegisterName(e.reg)));
      continue;
    }
    if (IsNondeterministicRegister(e.reg)) {
      Warn(report, at,
           Fmt("poll target %s is nondeterministic across runs; the "
               "predicate may never settle",
               RegisterName(e.reg)));
    }
    if ((e.expected & ~e.mask) != 0) {
      Error(report, at,
            Fmt("poll predicate on %s is unsatisfiable: expected 0x%X has "
                "bits outside mask 0x%X",
                RegisterName(e.reg), e.expected, e.mask));
    } else if (e.mask == 0) {
      Warn(report, at,
           Fmt("vacuous poll on %s (empty mask always matches)",
               RegisterName(e.reg)));
    } else if ((e.value & e.mask) != e.expected) {
      Error(report, at,
            Fmt("recorded final value 0x%X of %s does not satisfy the poll "
                "predicate (value & 0x%X) == 0x%X",
                e.value, RegisterName(e.reg), e.mask, e.expected));
    }
  }
}

// ---------------------------------------------------- metastate-coverage

namespace {

// Reads a 64-bit little-endian word from a page image.
uint64_t ImageU64(const Bytes& image, uint64_t offset) {
  uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) | image[offset + static_cast<uint64_t>(b)];
  }
  return v;
}

}  // namespace

void MetastateCoveragePass::Run(const AnalysisInput& in,
                                AnalysisReport* report) const {
  const auto& entries = in.recording->log.entries();

  std::unordered_set<uint64_t> meta_pages;
  // Latest image of every synced page (metastate or not); the walk reads
  // page tables out of these images, never out of live memory.
  std::unordered_map<uint64_t, const Bytes*> images;
  bool any_meta = false;

  std::array<uint64_t, kMaxAddressSpaces> transtab_lo{};
  std::array<uint64_t, kMaxAddressSpaces> transtab_hi{};
  std::array<bool, kMaxAddressSpaces> transtab_set{};
  std::array<uint64_t, kMaxJobSlots> head_lo{};
  std::array<uint64_t, kMaxJobSlots> head_hi{};
  std::array<uint32_t, kMaxJobSlots> config{};

  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    ptrdiff_t at = static_cast<ptrdiff_t>(i);

    if (e.op == LogOp::kMemPage) {
      if (e.metastate) {
        meta_pages.insert(e.pa);
        any_meta = true;
      }
      if (e.data.size() == kPageSize) {
        images[e.pa] = &e.data;
      }
      continue;
    }
    if (e.op != LogOp::kRegWrite) {
      continue;
    }

    int as;
    uint32_t rel;
    if (AddressSpaceReg(e.reg, &as, &rel)) {
      auto a = static_cast<size_t>(as);
      if (rel == kAsTranstabLo) {
        transtab_lo[a] = e.value;
        transtab_set[a] = true;
      } else if (rel == kAsTranstabHi) {
        transtab_hi[a] = e.value;
      }
      continue;
    }
    int slot;
    if (!JobSlotReg(e.reg, &slot, &rel)) {
      continue;
    }
    auto s = static_cast<size_t>(slot);
    if (rel == kJsHeadNextLo) {
      head_lo[s] = e.value;
    } else if (rel == kJsHeadNextHi) {
      head_hi[s] = e.value;
    } else if (rel == kJsConfigNext) {
      config[s] = e.value;
    } else if (rel == kJsCommandNext && e.value == kJsCommandStart) {
      if (!any_meta) {
        Error(report, at,
              Fmt("job submitted on slot %d without any preceding metastate "
                  "sync (page tables and command buffers unsynced)",
                  slot));
        continue;
      }
      uint32_t job_as = config[s];
      if (job_as >= kMaxAddressSpaces ||
          !transtab_set[static_cast<size_t>(job_as)]) {
        // Root unknown within this log (continuation segments inherit it
        // from their predecessor); nothing static to walk.
        continue;
      }
      uint64_t root = (transtab_hi[job_as] << 32) | transtab_lo[job_as];
      if (meta_pages.count(root) == 0) {
        Error(report, at,
              Fmt("page-table root 0x%" PRIx64
                  " of AS%u is not covered by a synced metastate page",
                  root, job_as));
        continue;
      }
      if (in.sku == nullptr) {
        continue;  // leaf format unknown; sku-compat reports the bad SKU
      }
      // Walk the recorded page-table images for the chain head VA: every
      // table level and the command page the head descriptor lives in must
      // have been synced as metastate before the submit (§5).
      uint64_t head_va = (head_hi[s] << 32) | head_lo[s];
      uint64_t table_pa = root;
      bool walk_failed = false;
      for (int level = 0; level < kPtLevels - 1 && !walk_failed; ++level) {
        auto it = images.find(table_pa);
        if (it == images.end()) {
          Error(report, at,
                Fmt("page-table level-%d page 0x%" PRIx64
                    " was never synced into the recording",
                    level, table_pa));
          walk_failed = true;
          break;
        }
        uint64_t pte = ImageU64(*it->second, PtIndex(head_va, level) * 8);
        auto next = DecodeTablePte(in.sku->pt_format, pte);
        if (!next.ok()) {
          Error(report, at,
                Fmt("invalid level-%d table descriptor for job chain head "
                    "va 0x%" PRIx64,
                    level, head_va));
          walk_failed = true;
          break;
        }
        table_pa = next.value();
        if (meta_pages.count(table_pa) == 0 && level + 1 < kPtLevels - 1) {
          Error(report, at,
                Fmt("page-table level-%d page 0x%" PRIx64
                    " is not covered by synced metastate",
                    level + 1, table_pa));
          walk_failed = true;
        }
      }
      if (walk_failed) {
        continue;
      }
      auto leaf_it = images.find(table_pa);
      if (leaf_it == images.end()) {
        Error(report, at,
              Fmt("leaf page-table page 0x%" PRIx64
                  " was never synced into the recording",
                  table_pa));
        continue;
      }
      uint64_t leaf_pte =
          ImageU64(*leaf_it->second, PtIndex(head_va, kPtLevels - 1) * 8);
      auto leaf = DecodePte(in.sku->pt_format, leaf_pte);
      if (!leaf.ok()) {
        Error(report, at,
              Fmt("job chain head va 0x%" PRIx64
                  " is unmapped in the synced page tables",
                  head_va));
        continue;
      }
      uint64_t cmd_page = leaf->first;
      if (meta_pages.count(cmd_page) == 0) {
        Error(report, at,
              Fmt("command buffer page 0x%" PRIx64
                  " (job chain head va 0x%" PRIx64
                  ") is not covered by synced metastate",
                  cmd_page, head_va));
      }
    }
  }
}

// ------------------------------------------------------------- sku-compat

void SkuCompatPass::Run(const AnalysisInput& in,
                        AnalysisReport* report) const {
  if (in.sku == nullptr) {
    Error(report, kWholeRecording,
          Fmt("recording claims SKU id 0x%X, which is not in the registry",
              static_cast<uint32_t>(in.recording->header.sku)));
    return;
  }
  const GpuSku& sku = *in.sku;
  const auto& entries = in.recording->log.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    ptrdiff_t at = static_cast<ptrdiff_t>(i);

    if (e.op == LogOp::kRegRead) {
      uint32_t expected = 0;
      bool known = true;
      switch (e.reg) {
        case kRegGpuId: expected = sku.gpu_id_reg; break;
        case kRegShaderPresentLo: expected = sku.shader_present; break;
        case kRegTilerPresentLo: expected = sku.tiler_present; break;
        case kRegL2PresentLo: expected = sku.l2_present; break;
        case kRegShaderPresentHi:
        case kRegTilerPresentHi:
        case kRegL2PresentHi: expected = 0; break;
        case kRegMmuFeatures: expected = sku.mmu_features; break;
        case kRegAsPresent: expected = AsPresentMask(sku); break;
        case kRegJsPresent: expected = JsPresentMask(sku); break;
        case kRegCoreFeatures: expected = sku.macs_per_core_clk; break;
        case kRegThreadMaxThreads: expected = sku.thread_max; break;
        case kRegTextureFeatures0: expected = sku.texture_features; break;
        default: known = false; break;
      }
      if (known && e.value != expected) {
        Error(report, at,
              Fmt("recorded %s value 0x%X does not match the claimed SKU "
                  "%s (expected 0x%X)",
                  RegisterName(e.reg), e.value, sku.name.c_str(), expected));
      }
      continue;
    }

    if (e.op != LogOp::kRegWrite) {
      continue;
    }
    switch (e.reg) {
      case kRegShaderPwrOnLo:
        if ((e.value & ~sku.shader_present) != 0) {
          Error(report, at,
                Fmt("powers shader cores 0x%X absent on %s (present 0x%X)",
                    e.value & ~sku.shader_present, sku.name.c_str(),
                    sku.shader_present));
        }
        continue;
      case kRegTilerPwrOnLo:
        if ((e.value & ~sku.tiler_present) != 0) {
          Error(report, at,
                Fmt("powers tiler units absent on %s", sku.name.c_str()));
        }
        continue;
      case kRegL2PwrOnLo:
        if ((e.value & ~sku.l2_present) != 0) {
          Error(report, at,
                Fmt("powers L2 slices absent on %s", sku.name.c_str()));
        }
        continue;
      default:
        break;
    }
    int slot;
    uint32_t rel;
    if (JobSlotReg(e.reg, &slot, &rel)) {
      if (static_cast<uint32_t>(slot) >= sku.js_count) {
        Error(report, at,
              Fmt("touches job slot %d; %s has %u slots", slot,
                  sku.name.c_str(), sku.js_count));
      }
      if ((rel == kJsAffinityNextLo || rel == kJsAffinityLo) &&
          (e.value & ~sku.shader_present) != 0) {
        Error(report, at,
              Fmt("job affinity 0x%X selects shader cores absent on %s "
                  "(present 0x%X) — core tiling mismatch",
                  e.value, sku.name.c_str(), sku.shader_present));
      }
      if ((rel == kJsConfigNext || rel == kJsConfig) &&
          e.value >= sku.as_count) {
        Error(report, at,
              Fmt("job configured for address space %u; %s has %u", e.value,
                  sku.name.c_str(), sku.as_count));
      }
      continue;
    }
    int as;
    if (AddressSpaceReg(e.reg, &as, &rel) &&
        static_cast<uint32_t>(as) >= sku.as_count) {
      Error(report, at,
            Fmt("touches address space %d; %s has %u", as, sku.name.c_str(),
                sku.as_count));
    }
  }
}

// ------------------------------------------------- optimizer-provenance

// An optimized recording without its justification trace is unauditable:
// the TEE could not tell a provably-safe elimination from a tampered log.
// Conversely, a trace on a header that does not claim optimization means
// the flag was stripped (or the trace forged). Either way the recording
// is rejected before replay.
void OptimizerProvenancePass::Run(const AnalysisInput& in,
                                  AnalysisReport* report) const {
  const OptimizationProvenance& p = in.recording->header.provenance;
  if (!p.optimized) {
    if (!p.records.empty()) {
      Error(report, kWholeRecording,
            Fmt("header does not claim optimization but carries %zu "
                "justification record(s)",
                p.records.size()));
    }
    if (p.original_entries != 0) {
      Error(report, kWholeRecording,
            Fmt("header does not claim optimization but reports %u "
                "pre-optimization entries",
                p.original_entries));
    }
    return;
  }
  if (p.records.empty()) {
    Error(report, kWholeRecording,
          "header claims optimization but carries no justification trace");
  }
  const size_t log_size = in.recording->log.size();
  if (p.original_entries < log_size) {
    Error(report, kWholeRecording,
          Fmt("claims %u pre-optimization entries but the log holds %zu — "
              "optimization never adds operations",
              p.original_entries, log_size));
  }
  for (size_t i = 0; i < p.records.size(); ++i) {
    const OptRecord& r = p.records[i];
    if (r.pass.empty()) {
      Error(report, kWholeRecording,
            Fmt("justification record %zu names no pass", i));
    }
    if (r.action < OptAction::kDelete || r.action > OptAction::kMerge) {
      Error(report, kWholeRecording,
            Fmt("justification record %zu has unknown action %u", i,
                static_cast<unsigned>(r.action)));
    }
    if (r.reason < OptReason::kDeadConfigRewrite ||
        r.reason > OptReason::kReplayDeadPage) {
      Error(report, kWholeRecording,
            Fmt("justification record %zu has unknown reason %u", i,
                static_cast<unsigned>(r.reason)));
    }
    if (r.index >= p.original_entries) {
      Error(report, kWholeRecording,
            Fmt("justification record %zu targets original index %u; "
                "original log held %u entries",
                i, r.index, p.original_entries));
    }
    if (r.aux_index >= p.original_entries) {
      Error(report, kWholeRecording,
            Fmt("justification record %zu cites witness index %u; "
                "original log held %u entries",
                i, r.aux_index, p.original_entries));
    }
  }
}

// ---------------------------------------------------- footprint-soundness

void FootprintSoundnessPass::Run(const AnalysisInput& in,
                                 AnalysisReport* report) const {
  const ResourceFootprint& declared = in.recording->header.footprint;
  if (!declared.computed) {
    // Not an integrity failure — the producer predates footprint stamping
    // — but the device pool will refuse to co-locate this recording with
    // anything (an absent footprint proves no disjointness).
    Warn(report, kWholeRecording,
         "recording carries no computed resource footprint; co-residency "
         "analysis will treat it as conflicting with every plan");
    return;
  }
  Status shape = ValidateFootprint(declared);
  if (!shape.ok()) {
    Error(report, kWholeRecording, shape.message());
    return;
  }
  // Re-derive the footprint and demand the declared one over-approximates
  // it. A footprint that under-declares would let the device pool co-locate
  // plans that actually interfere, so under-approximation is tampering.
  ResourceFootprint required = ComputeFootprint(*in.recording, in.sku);
  std::string why;
  if (!FootprintCovers(declared, required, &why)) {
    Error(report, kWholeRecording,
          "declared footprint fails to over-approximate the log: " + why);
  }
}

}  // namespace grt
