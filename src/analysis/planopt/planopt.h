// Plan-effect analysis and provenance-checked plan superoptimization.
//
// A compiled ReplayPlan (src/record/plan.h) still replays the recorded
// driver conversation literally: every cache-flush closure, every
// power-gate off/on cycle, every post-reset configuration write is
// re-issued on every warm replay even though, between back-to-back
// replays on a retained device, they provably re-establish state the
// device is already in. This module performs a static effect/dependence
// analysis over the plan's op schedule, partitions ops into
// warm-invariant and input-dependent slices, and compiles a fused "warm
// program" (plan format v2) that:
//
//   * elides whole device-op closures (cache flush, soft reset, power
//     off/on cycles, AS re-latch) whose effects are invisible at the
//     warm entry state;
//   * elides no-op latch writes, constant-register reads, and
//     nondeterministic unverified reads;
//   * weakens the verify mask of retained GPU_IRQ_RAWSTAT reads to
//     exclude interrupt bits owned by elided closures (so verification
//     still fires on faults, but not on completion bits that are no
//     longer raised);
//   * fuses maximal runs of adjacent retained register writes into
//     dense kRegSpan ops executed as one mediated burst
//     (Tzasc::WriteGpuRegisterSpan).
//
// Every rewrite is stamped into PlanProvenance with a machine-checkable
// justification. CheckWarmProgram re-derives each justification from
// the source plan and the register semantics in src/hw/regs.h — it
// never trusts the builder — so a tampered, stale, or buggy warm
// program is rejected before it can touch the GPU. The replayer runs
// the check on load, and a verifier pass ("planopt-soundness",
// registered from this module) builds and checks a warm program as part
// of recording admission. DESIGN.md §6h documents the effect lattice
// and the legality rules R1-R7 plus obligations A-G.
#ifndef GRT_SRC_ANALYSIS_PLANOPT_PLANOPT_H_
#define GRT_SRC_ANALYSIS_PLANOPT_PLANOPT_H_

#include <string>

#include "src/common/status.h"
#include "src/record/plan.h"
#include "src/sku/sku.h"

namespace grt {

// Builds a warm program for `plan`, proves it sound with
// CheckWarmProgram, and attaches it (plan->version becomes 2). Also
// marks patch-table entries eligible for direct readback (escape
// analysis). Conservative: when the schedule contains structure the
// analysis cannot prove (an unmatched GPU command, an unsupported poll,
// a closure grammar miss — chaos recordings exercise all of these), the
// plan is left untouched at version 1 and `reason` (optional) says why.
// Returns non-OK only on an internal contradiction: the builder
// produced a program its own checker rejects.
Status AttachWarmProgram(ReplayPlan* plan, const GpuSku& sku,
                         std::string* reason = nullptr);

// Re-derives every PlanProvenance justification of `warm` against
// `plan` and the device register semantics: coverage (every source op
// rewritten exactly once, every warm op accounted for), span integrity,
// per-rule elision legality, owned-interrupt-bit isolation, abstract
// power evaluation from both warm entry states (with exit fixpoint),
// job-IRQ freshness, and stats consistency. OK iff the warm program is
// safe to execute in place of the full schedule on a retained device.
Status CheckWarmProgram(const ReplayPlan& plan, const WarmProgram& warm,
                        const GpuSku& sku);

const char* WarmOpKindName(WarmOpKind kind);
const char* PlanRewriteKindName(PlanRewriteKind kind);

// Renders the fused schedule, the per-op provenance, and the
// invariant/input-dependent partition for tools (recording_inspector
// --plan --fused, grt_lint --fused [--json]). `plan.warm` must be set.
std::string FormatWarmProgram(const ReplayPlan& plan, bool json);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_PLANOPT_PLANOPT_H_
