// Warm-program builder: applies the elision/fusion policy, stamps every
// decision into PlanProvenance, then proves the result with the
// independent checker before attaching it. The builder is allowed to be
// clever; it is not allowed to be trusted — anything it produces passes
// through CheckWarmProgram, and a policy/legality mismatch is surfaced
// as an error rather than an unsound program.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/planopt/planopt.h"
#include "src/analysis/planopt/planopt_internal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace grt {

namespace {

using planopt::Closure;
using planopt::ClosureKind;
using planopt::LatchState;

PlanRewriteKind ClosureRewriteKind(ClosureKind kind) {
  switch (kind) {
    case ClosureKind::kFlush:
      return PlanRewriteKind::kElideFlushClosure;
    case ClosureKind::kReset:
      return PlanRewriteKind::kElideResetClosure;
    case ClosureKind::kPower:
      return PlanRewriteKind::kElidePowerClosure;
    case ClosureKind::kAs:
      return PlanRewriteKind::kElideAsClosure;
  }
  return PlanRewriteKind::kKeep;
}

// Builds the warm program for `plan`. Returns false with `*reason` set
// when the schedule has structure the policy declines to optimize.
bool BuildWarmProgram(const ReplayPlan& plan, const GpuSku& /*sku*/,
                      WarmProgram* out, std::string* reason) {
  const std::vector<PlanOp>& ops = plan.ops;
  auto decline = [&](std::string why) {
    *reason = std::move(why);
    return false;
  };
  if (ops.empty()) {
    return decline("plan has no ops");
  }

  size_t first_start = ops.size();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (planopt::IsJobStartWrite(ops[i])) {
      first_start = i;
      break;
    }
  }
  if (first_start == ops.size()) {
    return decline("plan never starts a job");
  }

  // Warm-entry latch state: the source schedule's exit (last write
  // wins, resets modeled) — a retained device still holds it.
  LatchState exit_latch;
  for (const PlanOp& op : ops) {
    if (op.kind == LogOp::kRegWrite) {
      exit_latch.Write(op.reg, op.value);
    }
  }

  // Closure discovery: deterministic maximal matches over unconsumed
  // ops. Power closures that purely bring cores up before the first job
  // start are retained (they are no-ops on an already-powered device
  // and re-establish power after a pool scrub); every other closure is
  // elided.
  struct FoundClosure {
    Closure c;
    bool elide = false;
  };
  std::vector<FoundClosure> closures;
  std::vector<int> closure_of(ops.size(), -1);
  for (size_t i = 0; i < ops.size();) {
    std::optional<Closure> c = planopt::MatchClosureAt(ops, i);
    if (!c.has_value()) {
      ++i;
      continue;
    }
    bool elide = true;
    if (c->kind == ClosureKind::kPower) {
      elide = !(c->begin < first_start && planopt::ClosureIsPureBringUp(ops, *c));
    }
    if (elide) {
      for (size_t j = c->begin; j < c->end; ++j) {
        closure_of[j] = static_cast<int>(closures.size());
      }
      closures.push_back(FoundClosure{*c, true});
    }
    i = c->end;
  }

  // Per-op rewrite decisions. Two abstract latch interpretations run in
  // lockstep: `src_latch` models what the recorded driver saw (all
  // writes, resets included); `warm_latch` models the retained schedule
  // from the exit state. An elision is only taken when the relevant
  // interpretation proves it a no-op.
  std::vector<PlanRewrite> rewrites(ops.size());
  LatchState src_latch;
  LatchState warm_latch = exit_latch;
  std::vector<size_t> weaken_candidates;
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    PlanRewrite& r = rewrites[i];
    r.src_index = static_cast<uint32_t>(i);
    r.kind = PlanRewriteKind::kKeep;

    if (closure_of[i] >= 0) {
      r.kind = ClosureRewriteKind(closures[closure_of[i]].c.kind);
      r.aux = static_cast<uint32_t>(closure_of[i]);
    } else {
      switch (op.kind) {
        case LogOp::kRegRead: {
          RegClass cls = ClassifyRegister(op.reg);
          if (op.verify && cls == RegClass::kConstant) {
            r.kind = PlanRewriteKind::kElideConstRead;
          } else if (op.verify && cls == RegClass::kCpuConfig &&
                     op.value == src_latch.Get(op.reg)) {
            // The recorded value is the latch value the schedule itself
            // establishes at this point (e.g. a post-reset RMW read):
            // statically determined, nothing left to check at run time.
            r.kind = PlanRewriteKind::kElideConstRead;
          } else if (!op.verify && IsReadIdempotentRegister(op.reg)) {
            r.kind = PlanRewriteKind::kElideNondetRead;
          } else if (op.verify && (op.reg == kRegGpuIrqRawstat ||
                                   op.reg == kRegGpuIrqStatus)) {
            weaken_candidates.push_back(i);
          }
          break;
        }
        case LogOp::kRegWrite: {
          if (ClassifyRegister(op.reg) == RegClass::kCpuConfig &&
              !WriteHasSideEffects(op.reg, op.value) &&
              !planopt::IsJobSlotRegister(op.reg) &&
              op.value == warm_latch.Get(op.reg)) {
            r.kind = PlanRewriteKind::kElideNoopLatch;
          } else if (op.reg == kRegGpuCommand &&
                     ClassifyGpuCommand(op.value) != GpuCommandKind::kNop) {
            // A reset or flush outside its closure grammar cannot be
            // retained (it would bump the reset epoch or wedge the IRQ
            // line) and cannot be proven elidable on its own.
            return decline("GPU_COMMAND at op " + std::to_string(i) +
                           " does not match a closure grammar");
          }
          break;
        }
        case LogOp::kIrqWait: {
          // The warm schedule must mask each waited line exactly as the
          // recorded schedule did at this point, else line assertion
          // could diverge.
          struct LineMask {
            uint8_t line;
            uint32_t reg;
          };
          static constexpr LineMask kLines[] = {
              {planopt::kIrqLineJob, kRegJobIrqMask},
              {planopt::kIrqLineGpu, kRegGpuIrqMask},
              {planopt::kIrqLineMmu, kRegMmuIrqMask},
          };
          for (const LineMask& lm : kLines) {
            if ((op.irq_lines & lm.line) != 0 &&
                src_latch.Get(lm.reg) != warm_latch.Get(lm.reg)) {
              return decline("irq wait at op " + std::to_string(i) +
                             " under a diverged " +
                             std::string(RegisterName(lm.reg)));
            }
          }
          break;
        }
        default:
          break;
      }
    }

    if (op.kind == LogOp::kRegWrite) {
      src_latch.Write(op.reg, op.value);
      if (!planopt::RewriteIsElision(r.kind)) {
        warm_latch.Write(op.reg, op.value);
      }
    }
  }

  // Interrupt bits owned by the rewrite: retained observers of the GPU
  // IRQ surface must not depend on them.
  PlanProvenance provisional;
  provisional.rewrites = rewrites;
  uint32_t owned = planopt::OwnedGpuIrqBits(ops, provisional);
  for (size_t i : weaken_candidates) {
    if (owned != 0) {
      rewrites[i].kind = PlanRewriteKind::kMaskWeaken;
      rewrites[i].aux = owned;
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    if (planopt::RewriteIsElision(rewrites[i].kind)) {
      continue;
    }
    if (op.kind == LogOp::kPollWait &&
        (op.reg == kRegGpuIrqRawstat || op.reg == kRegGpuIrqStatus) &&
        (op.mask & owned) != 0) {
      return decline("retained poll at op " + std::to_string(i) +
                     " depends on elided interrupt bits");
    }
    if (op.kind == LogOp::kIrqWait &&
        (op.irq_lines & planopt::kIrqLineGpu) != 0 && owned != 0) {
      return decline("retained GPU-line irq wait at op " + std::to_string(i) +
                     " with elided GPU interrupt sources");
    }
  }

  // Emit the warm schedule, fusing maximal runs (>= 2) of retained
  // register writes at consecutive source indices into kRegSpan ops.
  WarmProgram warm;
  auto retained_write = [&](size_t i) {
    return i < ops.size() && ops[i].kind == LogOp::kRegWrite &&
           rewrites[i].kind == PlanRewriteKind::kKeep;
  };
  for (size_t i = 0; i < ops.size();) {
    const PlanOp& op = ops[i];
    if (planopt::RewriteIsElision(rewrites[i].kind)) {
      ++i;
      continue;
    }
    if (retained_write(i) && retained_write(i + 1)) {
      size_t end = i + 1;
      while (retained_write(end)) {
        ++end;
      }
      WarmOp wop;
      wop.kind = WarmOpKind::kRegSpan;
      wop.span_begin = static_cast<uint32_t>(warm.span_writes.size());
      wop.span_len = static_cast<uint32_t>(end - i);
      wop.src_index = static_cast<uint32_t>(i);
      uint32_t warm_index = static_cast<uint32_t>(warm.ops.size());
      for (size_t j = i; j < end; ++j) {
        warm.span_writes.push_back(RegSpanWrite{
            ops[j].reg, ops[j].value, static_cast<uint32_t>(j)});
        rewrites[j].kind = PlanRewriteKind::kFuseSpan;
        rewrites[j].warm_index = warm_index;
        rewrites[j].aux = static_cast<uint32_t>(j - i);
      }
      warm.ops.push_back(wop);
      i = end;
      continue;
    }
    WarmOp wop;
    switch (op.kind) {
      case LogOp::kMemPage:
        wop.kind = WarmOpKind::kMemPage;
        wop.image = op.image;
        break;
      case LogOp::kRegWrite:
        wop.kind = WarmOpKind::kRegWrite;
        wop.reg = op.reg;
        wop.value = op.value;
        break;
      case LogOp::kRegRead:
        wop.kind = WarmOpKind::kRegRead;
        wop.reg = op.reg;
        wop.value = op.value;
        wop.verify = op.verify;
        if (rewrites[i].kind == PlanRewriteKind::kMaskWeaken) {
          wop.verify_mask = ~rewrites[i].aux;
        }
        break;
      case LogOp::kPollWait:
        wop.kind = WarmOpKind::kPollWait;
        wop.reg = op.reg;
        wop.mask = op.mask;
        wop.expected = op.expected;
        break;
      case LogOp::kDelay:
        wop.kind = WarmOpKind::kDelay;
        wop.delay = op.delay;
        break;
      case LogOp::kIrqWait:
        wop.kind = WarmOpKind::kIrqWait;
        wop.irq_lines = op.irq_lines;
        break;
    }
    wop.src_index = static_cast<uint32_t>(i);
    rewrites[i].warm_index = static_cast<uint32_t>(warm.ops.size());
    warm.ops.push_back(wop);
    ++i;
  }

  // Stats + partition (prefix bring-up and metastate reapplication are
  // warm-invariant; everything from the first job start on is
  // input-dependent).
  WarmStats& st = warm.stats;
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanRewrite& r = rewrites[i];
    bool invariant = i < first_start || ops[i].kind == LogOp::kMemPage;
    ++(invariant ? st.invariant_ops : st.input_dep_ops);
    switch (r.kind) {
      case PlanRewriteKind::kKeep:
      case PlanRewriteKind::kMaskWeaken:
        st.weakened_reads += r.kind == PlanRewriteKind::kMaskWeaken ? 1 : 0;
        break;
      case PlanRewriteKind::kFuseSpan:
        ++st.fused_writes;
        break;
      case PlanRewriteKind::kElideConstRead:
        ++st.elided_const_reads;
        ++st.elided_ops;
        break;
      case PlanRewriteKind::kElideNondetRead:
        ++st.elided_nondet_reads;
        ++st.elided_ops;
        break;
      case PlanRewriteKind::kElideNoopLatch:
        ++st.elided_noop_latches;
        ++st.elided_ops;
        break;
      case PlanRewriteKind::kElideFlushClosure:
      case PlanRewriteKind::kElideResetClosure:
      case PlanRewriteKind::kElidePowerClosure:
      case PlanRewriteKind::kElideAsClosure:
        ++st.elided_ops;
        break;
    }
  }
  for (const FoundClosure& fc : closures) {
    switch (fc.c.kind) {
      case ClosureKind::kFlush:
        ++st.elided_flush_closures;
        break;
      case ClosureKind::kReset:
        ++st.elided_reset_closures;
        break;
      case ClosureKind::kPower:
        ++st.elided_power_closures;
        break;
      case ClosureKind::kAs:
        ++st.elided_as_closures;
        break;
    }
  }
  st.retained_ops = static_cast<uint32_t>(warm.ops.size());
  for (const WarmOp& wop : warm.ops) {
    st.fused_spans += wop.kind == WarmOpKind::kRegSpan ? 1 : 0;
  }
  warm.owned_gpu_irq_bits = owned;

  warm.provenance.plan_format = 2;
  warm.provenance.rewrites = std::move(rewrites);
  *out = std::move(warm);
  return true;
}

}  // namespace

Status AttachWarmProgram(ReplayPlan* plan, const GpuSku& sku,
                         std::string* reason) {
  GRT_TRACE_SPAN("planopt.attach", "planopt");
  std::string why;
  auto warm = std::make_shared<WarmProgram>();
  if (!BuildWarmProgram(*plan, sku, warm.get(), &why)) {
    GRT_OBS_COUNT("planopt.declined", 1);
    if (reason != nullptr) {
      *reason = why;
    }
    return OkStatus();
  }

  // Escape analysis over the patch table: a complete chunk table copies
  // bitwise what the interpreter's page walk copies, so readback may
  // target the caller's buffer directly.
  for (auto& [name, patch] : plan->patches) {
    patch.direct_readback = patch.complete && !patch.chunks.empty();
    warm->stats.direct_readback_tensors += patch.direct_readback ? 1 : 0;
  }

  // The builder is not trusted: the independent checker must accept the
  // program before it is attached.
  GRT_RETURN_IF_ERROR(CheckWarmProgram(*plan, *warm, sku));

  plan->version = 2;
  plan->warm = std::move(warm);
  GRT_OBS_COUNT("planopt.attached", 1);
  if (reason != nullptr) {
    reason->clear();
  }
  return OkStatus();
}

}  // namespace grt
