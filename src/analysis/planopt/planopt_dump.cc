// Human/JSON rendering of a warm program for the inspection tools
// (recording_inspector --plan --fused, grt_lint --fused [--json]).

#include <cstdio>
#include <string>

#include "src/analysis/planopt/planopt.h"
#include "src/analysis/planopt/planopt_internal.h"

namespace grt {

const char* WarmOpKindName(WarmOpKind kind) {
  switch (kind) {
    case WarmOpKind::kMemPage:
      return "mem_page";
    case WarmOpKind::kRegWrite:
      return "reg_write";
    case WarmOpKind::kRegRead:
      return "reg_read";
    case WarmOpKind::kPollWait:
      return "poll_wait";
    case WarmOpKind::kDelay:
      return "delay";
    case WarmOpKind::kIrqWait:
      return "irq_wait";
    case WarmOpKind::kRegSpan:
      return "reg_span";
  }
  return "?";
}

const char* PlanRewriteKindName(PlanRewriteKind kind) {
  switch (kind) {
    case PlanRewriteKind::kKeep:
      return "keep";
    case PlanRewriteKind::kFuseSpan:
      return "fuse-span";
    case PlanRewriteKind::kMaskWeaken:
      return "mask-weaken";
    case PlanRewriteKind::kElideConstRead:
      return "elide-const-read";
    case PlanRewriteKind::kElideNondetRead:
      return "elide-nondet-read";
    case PlanRewriteKind::kElideNoopLatch:
      return "elide-noop-latch";
    case PlanRewriteKind::kElideFlushClosure:
      return "elide-flush-closure";
    case PlanRewriteKind::kElideResetClosure:
      return "elide-reset-closure";
    case PlanRewriteKind::kElidePowerClosure:
      return "elide-power-closure";
    case PlanRewriteKind::kElideAsClosure:
      return "elide-as-closure";
  }
  return "?";
}

namespace {

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

void AppendWarmOpText(const WarmProgram& warm, size_t w, std::string* out) {
  const WarmOp& op = warm.ops[w];
  char head[64];
  std::snprintf(head, sizeof(head), "  [%4zu] %-9s ", w, WarmOpKindName(op.kind));
  *out += head;
  switch (op.kind) {
    case WarmOpKind::kRegWrite:
      *out += std::string(RegisterName(op.reg)) + " = " + Hex(op.value) +
              "  (src " + std::to_string(op.src_index) + ")";
      break;
    case WarmOpKind::kRegRead:
      *out += std::string(RegisterName(op.reg)) + " == " + Hex(op.value);
      if (!op.verify) {
        *out += "  unverified";
      } else if (op.verify_mask != 0xFFFFFFFFu) {
        *out += "  mask " + Hex(op.verify_mask);
      }
      *out += "  (src " + std::to_string(op.src_index) + ")";
      break;
    case WarmOpKind::kPollWait:
      *out += std::string(RegisterName(op.reg)) + " & " + Hex(op.mask) +
              " == " + Hex(op.expected) + "  (src " +
              std::to_string(op.src_index) + ")";
      break;
    case WarmOpKind::kDelay:
      *out += std::to_string(op.delay) + "ns  (src " +
              std::to_string(op.src_index) + ")";
      break;
    case WarmOpKind::kIrqWait:
      *out += "lines " + Hex(op.irq_lines) + "  (src " +
              std::to_string(op.src_index) + ")";
      break;
    case WarmOpKind::kMemPage:
      *out += "mid image " + std::to_string(op.image) + "  (src " +
              std::to_string(op.src_index) + ")";
      break;
    case WarmOpKind::kRegSpan:
      *out += "x" + std::to_string(op.span_len) + "  (src " +
              std::to_string(op.src_index) + ".." +
              std::to_string(op.src_index + op.span_len - 1) + ")";
      for (uint32_t k = 0; k < op.span_len; ++k) {
        const RegSpanWrite& sw = warm.span_writes[op.span_begin + k];
        *out += "\n            " + std::string(RegisterName(sw.reg)) + " = " +
                Hex(sw.value);
      }
      break;
  }
  *out += "\n";
}

std::string FormatText(const ReplayPlan& plan) {
  const WarmProgram& warm = *plan.warm;
  const WarmStats& st = warm.stats;
  std::string out;
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "warm program (plan format v%u)\n"
                "  source ops %zu -> retained %u (%u spans fusing %u writes), "
                "elided %u\n"
                "  partition: %u warm-invariant, %u input-dependent\n"
                "  closures elided: %u flush, %u power, %u reset, %u as\n"
                "  reads elided: %u const, %u nondet; noop latches %u; "
                "weakened reads %u\n"
                "  direct-readback tensors: %u\n\n",
                plan.version, plan.ops.size(), st.retained_ops, st.fused_spans,
                st.fused_writes, st.elided_ops, st.invariant_ops,
                st.input_dep_ops, st.elided_flush_closures,
                st.elided_power_closures, st.elided_reset_closures,
                st.elided_as_closures, st.elided_const_reads,
                st.elided_nondet_reads, st.elided_noop_latches,
                st.weakened_reads, st.direct_readback_tensors);
  out += buf;
  out += "fused schedule:\n";
  for (size_t w = 0; w < warm.ops.size(); ++w) {
    AppendWarmOpText(warm, w, &out);
  }
  out += "\nprovenance:\n";
  for (const PlanRewrite& r : warm.provenance.rewrites) {
    const PlanOp& op = plan.ops[r.src_index];
    std::snprintf(buf, sizeof(buf), "  [src %4u] %-19s", r.src_index,
                  PlanRewriteKindName(r.kind));
    out += buf;
    if (op.kind == LogOp::kRegWrite || op.kind == LogOp::kRegRead ||
        op.kind == LogOp::kPollWait) {
      out += " ";
      out += RegisterName(op.reg);
    }
    switch (r.kind) {
      case PlanRewriteKind::kKeep:
        out += " -> warm " + std::to_string(r.warm_index);
        break;
      case PlanRewriteKind::kFuseSpan:
        out += " -> warm " + std::to_string(r.warm_index) + " member " +
               std::to_string(r.aux);
        break;
      case PlanRewriteKind::kMaskWeaken:
        out += " -> warm " + std::to_string(r.warm_index) + " owned bits " +
               Hex(r.aux);
        break;
      case PlanRewriteKind::kElideFlushClosure:
      case PlanRewriteKind::kElideResetClosure:
      case PlanRewriteKind::kElidePowerClosure:
      case PlanRewriteKind::kElideAsClosure:
        out += " closure " + std::to_string(r.aux);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

std::string FormatJson(const ReplayPlan& plan) {
  const WarmProgram& warm = *plan.warm;
  const WarmStats& st = warm.stats;
  std::string out = "{\n  \"plan_format\": " + std::to_string(plan.version);
  auto field = [&out](const char* name, uint64_t v, bool first = false) {
    out += first ? "" : ",";
    out += "\n    \"";
    out += name;
    out += "\": " + std::to_string(v);
  };
  out += ",\n  \"stats\": {";
  field("source_ops", plan.ops.size(), true);
  field("retained_ops", st.retained_ops);
  field("elided_ops", st.elided_ops);
  field("fused_spans", st.fused_spans);
  field("fused_writes", st.fused_writes);
  field("invariant_ops", st.invariant_ops);
  field("input_dep_ops", st.input_dep_ops);
  field("elided_flush_closures", st.elided_flush_closures);
  field("elided_power_closures", st.elided_power_closures);
  field("elided_reset_closures", st.elided_reset_closures);
  field("elided_as_closures", st.elided_as_closures);
  field("elided_const_reads", st.elided_const_reads);
  field("elided_nondet_reads", st.elided_nondet_reads);
  field("elided_noop_latches", st.elided_noop_latches);
  field("weakened_reads", st.weakened_reads);
  field("direct_readback_tensors", st.direct_readback_tensors);
  out += "\n  },\n  \"ops\": [";
  for (size_t w = 0; w < warm.ops.size(); ++w) {
    const WarmOp& op = warm.ops[w];
    out += w == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"";
    out += WarmOpKindName(op.kind);
    out += "\", \"src\": " + std::to_string(op.src_index);
    if (op.kind == WarmOpKind::kRegSpan) {
      out += ", \"span_len\": " + std::to_string(op.span_len);
    } else if (op.kind == WarmOpKind::kRegWrite ||
               op.kind == WarmOpKind::kRegRead ||
               op.kind == WarmOpKind::kPollWait) {
      out += ", \"reg\": \"";
      out += RegisterName(op.reg);
      out += "\"";
      if (op.kind == WarmOpKind::kRegRead && op.verify &&
          op.verify_mask != 0xFFFFFFFFu) {
        out += ", \"verify_mask\": " + std::to_string(op.verify_mask);
      }
    }
    out += "}";
  }
  out += "\n  ],\n  \"provenance\": [";
  for (size_t i = 0; i < warm.provenance.rewrites.size(); ++i) {
    const PlanRewrite& r = warm.provenance.rewrites[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"src\": " + std::to_string(r.src_index) + ", \"kind\": \"";
    out += PlanRewriteKindName(r.kind);
    out += "\", \"warm\": " + std::to_string(r.warm_index) +
           ", \"aux\": " + std::to_string(r.aux) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace

std::string FormatWarmProgram(const ReplayPlan& plan, bool json) {
  if (plan.warm == nullptr) {
    return json ? "{\"plan_format\": 1}\n"
                : "no warm program attached (plan format v1)\n";
  }
  return json ? FormatJson(plan) : FormatText(plan);
}

}  // namespace grt
