#include "src/analysis/planopt/planopt_internal.h"

#include <string>

namespace grt {
namespace planopt {

namespace {

// Slot-relative decode of a job-control offset; false outside the block.
bool DecodeJsRegister(uint32_t reg, int* slot, uint32_t* js_reg) {
  if (reg < kJobSlotBase ||
      reg >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  *slot = static_cast<int>((reg - kJobSlotBase) / kJobSlotStride);
  *js_reg = (reg - kJobSlotBase) % kJobSlotStride;
  return true;
}

}  // namespace

bool IsJobStartWrite(uint32_t reg, uint32_t value, int* slot) {
  int s = 0;
  uint32_t js_reg = 0;
  if (!DecodeJsRegister(reg, &s, &js_reg)) {
    return false;
  }
  if (js_reg != kJsCommandNext || value != kJsCommandStart) {
    return false;
  }
  if (slot != nullptr) {
    *slot = s;
  }
  return true;
}

bool IsJobStartWrite(const PlanOp& op, int* slot) {
  return op.kind == LogOp::kRegWrite && IsJobStartWrite(op.reg, op.value, slot);
}

bool IsJobSlotRegister(uint32_t reg) {
  int s = 0;
  uint32_t js_reg = 0;
  return DecodeJsRegister(reg, &s, &js_reg);
}

bool IsAffinityNextWrite(uint32_t reg, int* slot, bool* is_hi) {
  int s = 0;
  uint32_t js_reg = 0;
  if (!DecodeJsRegister(reg, &s, &js_reg)) {
    return false;
  }
  if (js_reg != kJsAffinityNextLo && js_reg != kJsAffinityNextHi) {
    return false;
  }
  *slot = s;
  *is_hi = js_reg == kJsAffinityNextHi;
  return true;
}

const char* ClosureKindName(ClosureKind kind) {
  switch (kind) {
    case ClosureKind::kFlush:
      return "flush";
    case ClosureKind::kReset:
      return "reset";
    case ClosureKind::kPower:
      return "power";
    case ClosureKind::kAs:
      return "as";
  }
  return "?";
}

bool DecodeAsRegister(uint32_t reg, int* as_index, uint32_t* as_reg) {
  if (reg < kAsBase || reg >= kAsBase + kMaxAddressSpaces * kAsStride) {
    return false;
  }
  *as_index = static_cast<int>((reg - kAsBase) / kAsStride);
  *as_reg = (reg - kAsBase) % kAsStride;
  return true;
}

namespace {

bool IsAsLatchWrite(const PlanOp& op, int* as_index) {
  uint32_t as_reg = 0;
  if (op.kind != LogOp::kRegWrite || !DecodeAsRegister(op.reg, as_index,
                                                       &as_reg)) {
    return false;
  }
  switch (as_reg) {
    case kAsTranstabLo:
    case kAsTranstabHi:
    case kAsMemattrLo:
    case kAsMemattrHi:
    case kAsLockaddrLo:
    case kAsLockaddrHi:
      return true;
    default:
      return false;
  }
}

bool IsGpuIrqAckWrite(const PlanOp& op, uint32_t allowed_bits) {
  return op.kind == LogOp::kRegWrite && op.reg == kRegGpuIrqClear &&
         (op.value & ~allowed_bits) == 0;
}

bool IsGpuIrqPoll(const PlanOp& op, uint32_t allowed_bits) {
  return op.kind == LogOp::kPollWait && op.reg == kRegGpuIrqRawstat &&
         (op.mask & ~allowed_bits) == 0 && op.expected == op.mask;
}

std::optional<Closure> MatchFlushAt(const std::vector<PlanOp>& ops, size_t i) {
  const PlanOp& first = ops[i];
  if (first.kind != LogOp::kRegWrite || first.reg != kRegGpuCommand ||
      ClassifyGpuCommand(first.value) != GpuCommandKind::kCacheFlush) {
    return std::nullopt;
  }
  size_t j = i + 1;
  while (j < ops.size()) {
    const PlanOp& op = ops[j];
    bool member = IsGpuIrqPoll(op, kGpuIrqCleanCachesCompleted) ||
                  IsGpuIrqAckWrite(op, kGpuIrqCleanCachesCompleted) ||
                  op.kind == LogOp::kDelay ||
                  (op.kind == LogOp::kRegRead && !op.verify &&
                   op.reg == kRegLatestFlush);
    if (!member) {
      break;
    }
    ++j;
  }
  return Closure{ClosureKind::kFlush, i, j};
}

std::optional<Closure> MatchResetAt(const std::vector<PlanOp>& ops, size_t i) {
  // Leading acknowledgments/mask setup the driver issues before the
  // reset command (they only matter because the reset they precede
  // clobbers them; the grammar binds them to it).
  size_t j = i;
  while (j < ops.size() && ops[j].kind == LogOp::kRegWrite &&
         (ops[j].reg == kRegGpuIrqClear || ops[j].reg == kRegGpuIrqMask)) {
    ++j;
  }
  if (j >= ops.size() || ops[j].kind != LogOp::kRegWrite ||
      ops[j].reg != kRegGpuCommand) {
    return std::nullopt;
  }
  GpuCommandKind cmd = ClassifyGpuCommand(ops[j].value);
  if (cmd != GpuCommandKind::kSoftReset && cmd != GpuCommandKind::kHardReset) {
    return std::nullopt;
  }
  ++j;
  while (j < ops.size()) {
    const PlanOp& op = ops[j];
    bool member = IsGpuIrqPoll(op, kGpuIrqResetCompleted) ||
                  IsGpuIrqAckWrite(op, kGpuIrqResetCompleted) ||
                  op.kind == LogOp::kDelay;
    if (!member) {
      break;
    }
    ++j;
  }
  return Closure{ClosureKind::kReset, i, j};
}

std::optional<Closure> MatchPowerAt(const std::vector<PlanOp>& ops, size_t i) {
  bool is_on = false, is_hi = false, is_trans = false;
  if (ops[i].kind != LogOp::kRegWrite ||
      PowerControlDomain(ops[i].reg, &is_on, &is_hi) == PowerDomain::kNone) {
    return std::nullopt;
  }
  size_t j = i;
  while (j < ops.size()) {
    const PlanOp& op = ops[j];
    bool member = false;
    if (op.kind == LogOp::kRegWrite &&
        PowerControlDomain(op.reg, &is_on, &is_hi) != PowerDomain::kNone) {
      member = true;
    } else if (op.kind == LogOp::kPollWait &&
               PowerStatusDomain(op.reg, &is_trans, &is_hi) !=
                   PowerDomain::kNone) {
      member = true;
    } else if (op.kind == LogOp::kRegRead &&
               PowerStatusDomain(op.reg, &is_trans, &is_hi) !=
                   PowerDomain::kNone) {
      member = true;
    }
    if (!member) {
      break;
    }
    ++j;
  }
  return Closure{ClosureKind::kPower, i, j};
}

std::optional<Closure> MatchAsAt(const std::vector<PlanOp>& ops, size_t i) {
  int as_index = -1;
  size_t j = i;
  while (j < ops.size()) {
    int idx = -1;
    if (!IsAsLatchWrite(ops[j], &idx)) {
      break;
    }
    if (as_index == -1) {
      as_index = idx;
    } else if (idx != as_index) {
      return std::nullopt;  // interleaved AS blocks: unsupported
    }
    ++j;
  }
  // Mandatory UPDATE on the same AS.
  int cmd_idx = -1;
  uint32_t as_reg = 0;
  if (j >= ops.size() || ops[j].kind != LogOp::kRegWrite ||
      !DecodeAsRegister(ops[j].reg, &cmd_idx, &as_reg) ||
      as_reg != kAsCommand || ops[j].value != kAsCommandUpdate ||
      (as_index != -1 && cmd_idx != as_index)) {
    return std::nullopt;
  }
  as_index = cmd_idx;
  ++j;
  while (j < ops.size()) {
    const PlanOp& op = ops[j];
    int idx = -1;
    if (op.kind != LogOp::kPollWait ||
        !DecodeAsRegister(op.reg, &idx, &as_reg) || as_reg != kAsStatus ||
        idx != as_index || op.mask != kAsStatusActive || op.expected != 0) {
      break;
    }
    ++j;
  }
  return Closure{ClosureKind::kAs, i, j};
}

}  // namespace

std::optional<Closure> MatchClosureAt(const std::vector<PlanOp>& ops,
                                      size_t i) {
  if (i >= ops.size()) {
    return std::nullopt;
  }
  if (auto c = MatchResetAt(ops, i)) {
    return c;
  }
  if (auto c = MatchFlushAt(ops, i)) {
    return c;
  }
  if (auto c = MatchPowerAt(ops, i)) {
    return c;
  }
  if (auto c = MatchAsAt(ops, i)) {
    return c;
  }
  return std::nullopt;
}

bool ClosureIsPureBringUp(const std::vector<PlanOp>& ops, const Closure& c) {
  for (size_t i = c.begin; i < c.end; ++i) {
    if (ops[i].kind != LogOp::kRegWrite) {
      continue;
    }
    bool is_on = false, is_hi = false;
    if (PowerControlDomain(ops[i].reg, &is_on, &is_hi) == PowerDomain::kNone ||
        !is_on) {
      return false;
    }
  }
  return true;
}

void LatchState::Reset() {
  // SoftReset zeroes every latch it owns; PWR_KEY / PWR_OVERRIDE* are
  // the only kCpuConfig registers a reset leaves alone (gpu.cc).
  for (auto it = regs_.begin(); it != regs_.end();) {
    if (it->first == kRegPwrKey || it->first == kRegPwrOverride0 ||
        it->first == kRegPwrOverride1) {
      ++it;
    } else {
      it = regs_.erase(it);
    }
  }
  for (auto& root : as_root_) {
    root = 0;
  }
}

void LatchState::Write(uint32_t reg, uint32_t value) {
  if (reg == kRegGpuCommand) {
    GpuCommandKind kind = ClassifyGpuCommand(value);
    if (kind == GpuCommandKind::kSoftReset ||
        kind == GpuCommandKind::kHardReset) {
      Reset();
    }
    return;
  }
  int as_index = -1;
  uint32_t as_reg = 0;
  if (DecodeAsRegister(reg, &as_index, &as_reg) && as_reg == kAsCommand) {
    if (value == kAsCommandUpdate) {
      uint64_t lo = Get(kAsBase + as_index * kAsStride + kAsTranstabLo);
      uint64_t hi = Get(kAsBase + as_index * kAsStride + kAsTranstabHi);
      as_root_[as_index] = (hi << 32) | lo;
    }
    return;
  }
  if (ClassifyRegister(reg) == RegClass::kCpuConfig) {
    regs_[reg] = value;
  }
}

void PowerState::ApplyWrite(uint32_t reg, uint32_t value, const GpuSku& sku) {
  bool is_on = false, is_hi = false;
  PowerDomain d = PowerControlDomain(reg, &is_on, &is_hi);
  if (d == PowerDomain::kNone) {
    return;
  }
  uint64_t bits = is_hi ? (static_cast<uint64_t>(value) << 32)
                        : static_cast<uint64_t>(value);
  bits &= present(d, sku);
  if (is_on) {
    domain(d) |= bits;
  } else {
    domain(d) &= ~bits;
  }
}

PowerState SourceExitPower(const std::vector<PlanOp>& ops, const GpuSku& sku) {
  PowerState state;  // scrubbed device: everything off
  for (const PlanOp& op : ops) {
    if (op.kind != LogOp::kRegWrite) {
      continue;
    }
    if (op.reg == kRegGpuCommand) {
      GpuCommandKind kind = ClassifyGpuCommand(op.value);
      if (kind == GpuCommandKind::kSoftReset ||
          kind == GpuCommandKind::kHardReset) {
        state.ResetClobber();
      }
      continue;
    }
    state.ApplyWrite(op.reg, op.value, sku);
  }
  return state;
}

namespace {

struct WarmPowerWalk {
  PowerState state;
  const GpuSku& sku;
  uint32_t affinity_lo[kMaxJobSlots] = {};
  uint32_t affinity_hi[kMaxJobSlots] = {};
  std::optional<std::string> error;

  explicit WarmPowerWalk(const PowerState& entry, const GpuSku& s)
      : state(entry), sku(s) {}

  void Write(uint32_t reg, uint32_t value) {
    if (error.has_value()) {
      return;
    }
    if (reg == kRegGpuCommand &&
        ClassifyGpuCommand(value) != GpuCommandKind::kNop) {
      error = "retained GPU_COMMAND with device effects (" +
              std::string(RegisterName(reg)) + ")";
      return;
    }
    int slot = 0;
    bool is_hi = false;
    if (IsAffinityNextWrite(reg, &slot, &is_hi)) {
      (is_hi ? affinity_hi : affinity_lo)[slot] = value;
    }
    if (IsJobStartWrite(reg, value, &slot)) {
      uint64_t affinity = (static_cast<uint64_t>(affinity_hi[slot]) << 32) |
                          affinity_lo[slot];
      if ((affinity & state.shader) == 0) {
        error = "job start on slot " + std::to_string(slot) +
                " with no powered shader core in its affinity";
        return;
      }
      if (state.l2 == 0) {
        error = "job start on slot " + std::to_string(slot) +
                " with L2 unpowered";
        return;
      }
    }
    state.ApplyWrite(reg, value, sku);
  }

  void Op(const WarmOp& op, const std::vector<RegSpanWrite>& span_writes) {
    if (error.has_value()) {
      return;
    }
    bool is_trans = false, is_hi = false;
    switch (op.kind) {
      case WarmOpKind::kRegWrite:
        Write(op.reg, op.value);
        break;
      case WarmOpKind::kRegSpan:
        for (uint32_t k = 0; k < op.span_len; ++k) {
          const RegSpanWrite& w = span_writes[op.span_begin + k];
          Write(w.reg, w.value);
        }
        break;
      case WarmOpKind::kPollWait: {
        PowerDomain d = PowerStatusDomain(op.reg, &is_trans, &is_hi);
        if (d != PowerDomain::kNone) {
          if (is_trans && op.expected != 0) {
            error = "retained poll expects an in-flight power transition";
          } else if (!is_trans) {
            error = "retained poll on a power READY register";
          }
        }
        break;
      }
      case WarmOpKind::kRegRead: {
        PowerDomain d = PowerStatusDomain(op.reg, &is_trans, &is_hi);
        if (d != PowerDomain::kNone && op.verify) {
          uint64_t word64 = is_trans ? 0 : state.domain(d);
          uint32_t word = static_cast<uint32_t>(is_hi ? word64 >> 32
                                                      : word64 & 0xFFFFFFFFu);
          if (((word ^ op.value) & op.verify_mask) != 0) {
            error = std::string("retained verified read of ") +
                    RegisterName(op.reg) +
                    " disagrees with the abstract power state";
          }
        }
        break;
      }
      default:
        break;
    }
  }
};

}  // namespace

std::optional<std::string> EvalWarmPower(const WarmProgram& warm,
                                         const GpuSku& sku,
                                         const PowerState& entry,
                                         PowerState* exit) {
  WarmPowerWalk walk(entry, sku);
  for (const WarmOp& op : warm.ops) {
    walk.Op(op, warm.span_writes);
    if (walk.error.has_value()) {
      return walk.error;
    }
  }
  *exit = walk.state;
  return std::nullopt;
}

uint32_t OwnedGpuIrqBits(const std::vector<PlanOp>& ops,
                         const PlanProvenance& prov) {
  uint32_t owned = 0;
  for (const PlanRewrite& r : prov.rewrites) {
    if (r.src_index >= ops.size()) {
      continue;  // coverage obligation reports this separately
    }
    const PlanOp& op = ops[r.src_index];
    if (op.kind != LogOp::kRegWrite) {
      continue;
    }
    if (RewriteIsElision(r.kind)) {
      owned |= GpuIrqBitsRaisedBy(op.reg, op.value);
    } else if (IsPowerControlRegister(op.reg)) {
      // A retained PWRON/PWROFF raises POWER_CHANGED even when the
      // domain is already in the requested state (gpu.cc).
      owned |= kGpuIrqPowerChangedSingle | kGpuIrqPowerChangedAll;
    }
  }
  return owned;
}

}  // namespace planopt
}  // namespace grt
