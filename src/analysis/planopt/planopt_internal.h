// Shared machinery of the plan superoptimizer: closure grammars,
// abstract latch/power state, and op predicates. Used by both the
// builder and the checker — the checker re-derives every judgment from
// the source plan with these primitives rather than trusting anything
// the builder recorded, so agreement between the two is a proof
// obligation, not an artifact of shared state.
#ifndef GRT_SRC_ANALYSIS_PLANOPT_PLANOPT_INTERNAL_H_
#define GRT_SRC_ANALYSIS_PLANOPT_PLANOPT_INTERNAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/hw/regs.h"
#include "src/record/plan.h"
#include "src/sku/sku.h"

namespace grt {
namespace planopt {

// ------------------------------------------------------------ predicates

// JSn_COMMAND_NEXT = START write (the plan-op analogue of
// IsReplayJobStart). `slot` receives the slot index when non-null.
bool IsJobStartWrite(const PlanOp& op, int* slot = nullptr);
bool IsJobStartWrite(uint32_t reg, uint32_t value, int* slot = nullptr);

// True for writes to JOB_IRQ_CLEAR.
inline bool IsJobIrqClearWrite(const PlanOp& op) {
  return op.kind == LogOp::kRegWrite && op.reg == kRegJobIrqClear;
}

// Decodes a JSn_AFFINITY_NEXT_LO/HI write. Returns false otherwise.
bool IsAffinityNextWrite(uint32_t reg, int* slot, bool* is_hi);

// True for any offset inside a job-slot control block. Job-slot writes
// are never latch-elided: the soundness walk derives per-slot affinity
// and job-start legality from the retained schedule alone, so every
// _NEXT write must stay visible in the warm program.
bool IsJobSlotRegister(uint32_t reg);

// IRQ-wait line bits as encoded in LogEntry::irq_lines.
constexpr uint8_t kIrqLineJob = 1u << 0;
constexpr uint8_t kIrqLineGpu = 1u << 1;
constexpr uint8_t kIrqLineMmu = 1u << 2;

// --------------------------------------------------------- closure model

enum class ClosureKind : uint8_t { kFlush, kReset, kPower, kAs };

const char* ClosureKindName(ClosureKind kind);

// A contiguous run of plan ops forming one device-op closure: the
// stimulus, the completion observation, and the acknowledgment.
struct Closure {
  ClosureKind kind = ClosureKind::kFlush;
  size_t begin = 0;
  size_t end = 0;  // [begin, end)
};

// Matches the maximal closure whose first op is ops[i]. The grammars
// (DESIGN.md §6h, rules R4-R7) are anchored on the device model:
//
//   flush  := GPU_COMMAND(clean-caches)
//             poll GPU_IRQ_RAWSTAT mask<=CLEAN_CACHES exp==mask
//             { delay | GPU_IRQ_CLEAR<=CLEAN_CACHES
//             | unverified read of LATEST_FLUSH }*
//   reset  := { GPU_IRQ_CLEAR | GPU_IRQ_MASK write }*
//             GPU_COMMAND(soft/hard reset)
//             { poll GPU_IRQ_RAWSTAT mask<=RESET_COMPLETED exp==mask
//             | delay | GPU_IRQ_CLEAR<=RESET_COMPLETED }*
//   power  := power-control write
//             { power-control write | poll *_PWRTRANS exp==0
//             | read of *_READY / *_PWRTRANS }*
//   as     := { AS latch write }* AS_COMMAND(UPDATE)
//             { poll AS_STATUS mask==ACTIVE exp==0 }*
//
// Deterministic and maximal, so builder and checker agree exactly on
// extents. Returns nullopt when no grammar matches at i.
std::optional<Closure> MatchClosureAt(const std::vector<PlanOp>& ops,
                                      size_t i);

// True if every register write in [c.begin, c.end) is a PWRON (used to
// pick the retained bring-up closures; PWROFF-bearing closures elide).
bool ClosureIsPureBringUp(const std::vector<PlanOp>& ops, const Closure& c);

// ---------------------------------------------------- abstract latch state

// CPU-owned latch values (RegClass::kCpuConfig) plus the per-AS active
// translation root. Default value is 0 for every latch: the analysis
// starts from the scrubbed device (HardReset), whose SoftReset zeroes
// every latch it owns — and the registers SoftReset leaves alone
// (PWR_KEY, PWR_OVERRIDE*) are zero out of construction.
class LatchState {
 public:
  uint32_t Get(uint32_t reg) const {
    auto it = regs_.find(reg);
    return it == regs_.end() ? 0 : it->second;
  }
  uint64_t as_root(int as_index) const { return as_root_[as_index]; }

  // Processes a register write: latches kCpuConfig values, applies
  // reset clobbering on GPU_COMMAND resets, latches the active root on
  // AS_COMMAND UPDATE. Non-latch triggers (IRQ clears, power, job
  // commands) leave the latch state untouched.
  void Write(uint32_t reg, uint32_t value);

 private:
  void Reset();

  std::map<uint32_t, uint32_t> regs_;
  uint64_t as_root_[kMaxAddressSpaces] = {};
};

// Decodes a write offset into (AS index, register-in-AS) when it lands
// in the AS block; returns false otherwise.
bool DecodeAsRegister(uint32_t reg, int* as_index, uint32_t* as_reg);

// ---------------------------------------------------- abstract power state

// Ready-bit state of the three power domains, transitions assumed
// complete (replay polls completion before depending on it, and the
// evaluator rejects schedules that do not).
struct PowerState {
  uint64_t shader = 0;
  uint64_t tiler = 0;
  uint64_t l2 = 0;

  bool operator==(const PowerState& o) const {
    return shader == o.shader && tiler == o.tiler && l2 == o.l2;
  }
  uint64_t& domain(PowerDomain d) {
    return d == PowerDomain::kShader ? shader
                                     : (d == PowerDomain::kTiler ? tiler : l2);
  }
  uint64_t present(PowerDomain d, const GpuSku& sku) const {
    return d == PowerDomain::kShader
               ? sku.shader_present
               : (d == PowerDomain::kTiler ? sku.tiler_present
                                           : sku.l2_present);
  }
  // Applies a PWRON/PWROFF write. No-op for non-power registers.
  void ApplyWrite(uint32_t reg, uint32_t value, const GpuSku& sku);
  void ResetClobber() { shader = tiler = l2 = 0; }
};

// Power state after the full source schedule runs from the scrubbed
// device: the state a warm replay enters in (entry A).
PowerState SourceExitPower(const std::vector<PlanOp>& ops, const GpuSku& sku);

// Walks the warm schedule from `entry`, checking every power-dependent
// retained op: job starts must see a powered shader subset (via the
// tracked JSn_AFFINITY_NEXT latches) and a powered L2; retained
// PWRTRANS polls must expect 0; retained verified READY reads must
// match the abstract ready value under their verify mask; retained GPU
// commands must be NOP. On success stores the exit state in `*exit`;
// on failure returns a description of the violating op.
std::optional<std::string> EvalWarmPower(const WarmProgram& warm,
                                         const GpuSku& sku,
                                         const PowerState& entry,
                                         PowerState* exit);

// -------------------------------------------------------------- owned bits

// GPU_IRQ_RAWSTAT bits "owned" by the rewrite: bits that elided writes
// would have raised, plus the PowerChanged bits of retained power
// writes (a re-issued PWRON on an already-powered domain still raises
// POWER_CHANGED_ALL). Retained verified reads/polls of the GPU IRQ
// surface must not depend on these bits.
uint32_t OwnedGpuIrqBits(const std::vector<PlanOp>& ops,
                         const PlanProvenance& prov);

inline bool RewriteIsElision(PlanRewriteKind k) {
  return k != PlanRewriteKind::kKeep && k != PlanRewriteKind::kFuseSpan &&
         k != PlanRewriteKind::kMaskWeaken;
}

}  // namespace planopt
}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_PLANOPT_PLANOPT_INTERNAL_H_
