// Warm-program soundness checker: re-derives every provenance record
// from the source plan and the register semantics of src/hw/regs.h.
// Nothing the builder wrote is trusted beyond being a *claim*; each
// claim is re-proved here. The obligations (DESIGN.md §6h):
//
//   (A) coverage      — exactly one rewrite per source op, ascending;
//                       retained rewrites visit warm ops in order and
//                       reproduce their content exactly
//   (B) span integrity— fused members are consecutive source register
//                       writes, order preserved, span length >= 2
//   (C) elision rules — R1 no-op latch, R2 nondet read, R3 statically
//                       determined read, R4-R7 closure grammars with
//                       per-member no-op side conditions
//   (D) owned bits    — retained observers of the GPU IRQ surface are
//                       independent of interrupt bits owned by elided
//                       closures; waited lines are masked identically
//   (E) power         — abstract evaluation from both warm entry
//                       states, with an exit fixpoint
//   (F) freshness     — every retained job-IRQ wait is preceded by a
//                       fresh job start and followed by its ack
//   (G) format/stats  — plan-format v2, non-empty schedule, stats
//                       recount to the same values
//
// Also hosts the "planopt-soundness" verifier pass: recording admission
// compiles a skeleton plan, builds a warm program, and requires the
// checker to accept it — so the optimizer's soundness argument is
// exercised on every recording the TEE admits.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/planopt/planopt.h"
#include "src/analysis/planopt/planopt_internal.h"
#include "src/analysis/verifier.h"

namespace grt {

namespace {

using planopt::Closure;
using planopt::ClosureKind;
using planopt::LatchState;
using planopt::PowerState;
using planopt::RewriteIsElision;

Status CheckFail(size_t src_index, const std::string& message) {
  return IntegrityViolation("planopt soundness: op " +
                            std::to_string(src_index) + ": " + message);
}

std::optional<ClosureKind> ClosureKindOfRewrite(PlanRewriteKind kind) {
  switch (kind) {
    case PlanRewriteKind::kElideFlushClosure:
      return ClosureKind::kFlush;
    case PlanRewriteKind::kElideResetClosure:
      return ClosureKind::kReset;
    case PlanRewriteKind::kElidePowerClosure:
      return ClosureKind::kPower;
    case PlanRewriteKind::kElideAsClosure:
      return ClosureKind::kAs;
    default:
      return std::nullopt;
  }
}

WarmOpKind ExpectedWarmKind(LogOp kind) {
  switch (kind) {
    case LogOp::kMemPage:
      return WarmOpKind::kMemPage;
    case LogOp::kRegWrite:
      return WarmOpKind::kRegWrite;
    case LogOp::kRegRead:
      return WarmOpKind::kRegRead;
    case LogOp::kPollWait:
      return WarmOpKind::kPollWait;
    case LogOp::kDelay:
      return WarmOpKind::kDelay;
    case LogOp::kIrqWait:
      return WarmOpKind::kIrqWait;
  }
  return WarmOpKind::kRegWrite;
}

// Field-for-field match between a retained source op and its warm op.
bool WarmOpMatches(const PlanOp& op, const WarmOp& wop, uint32_t src_index) {
  if (wop.kind != ExpectedWarmKind(op.kind) || wop.src_index != src_index) {
    return false;
  }
  switch (op.kind) {
    case LogOp::kMemPage:
      return wop.image == op.image;
    case LogOp::kRegWrite:
      return wop.reg == op.reg && wop.value == op.value;
    case LogOp::kRegRead:
      return wop.reg == op.reg && wop.value == op.value &&
             wop.verify == op.verify;
    case LogOp::kPollWait:
      return wop.reg == op.reg && wop.mask == op.mask &&
             wop.expected == op.expected;
    case LogOp::kDelay:
      return wop.delay == op.delay;
    case LogOp::kIrqWait:
      return wop.irq_lines == op.irq_lines;
  }
  return false;
}

}  // namespace

Status CheckWarmProgram(const ReplayPlan& plan, const WarmProgram& warm,
                        const GpuSku& sku) {
  const std::vector<PlanOp>& ops = plan.ops;
  const PlanProvenance& prov = warm.provenance;

  // ----------------------------------------------------------- (G) format
  if (prov.plan_format != 2) {
    return IntegrityViolation("planopt soundness: provenance format " +
                              std::to_string(prov.plan_format) +
                              " (expected 2)");
  }
  if (warm.ops.empty()) {
    return IntegrityViolation("planopt soundness: empty warm schedule");
  }
  for (size_t w = 0; w < warm.ops.size(); ++w) {
    const WarmOp& wop = warm.ops[w];
    if (wop.kind == WarmOpKind::kRegSpan) {
      if (wop.span_len < 2 ||
          static_cast<size_t>(wop.span_begin) + wop.span_len >
              warm.span_writes.size()) {
        return IntegrityViolation("planopt soundness: warm op " +
                                  std::to_string(w) +
                                  ": malformed register span");
      }
    } else if (wop.kind == WarmOpKind::kMemPage &&
               wop.image >= plan.mid_images.size()) {
      return IntegrityViolation("planopt soundness: warm op " +
                                std::to_string(w) +
                                ": mid-image index out of range");
    }
  }

  // --------------------------------------------------------- (A) coverage
  if (prov.rewrites.size() != ops.size()) {
    return IntegrityViolation(
        "planopt soundness: " + std::to_string(prov.rewrites.size()) +
        " rewrites for " + std::to_string(ops.size()) + " plan ops");
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (prov.rewrites[i].src_index != i) {
      return CheckFail(i, "rewrite src_index " +
                              std::to_string(prov.rewrites[i].src_index) +
                              " out of order");
    }
  }

  uint32_t owned = planopt::OwnedGpuIrqBits(ops, prov);
  if (warm.owned_gpu_irq_bits != owned) {
    return CheckFail(0, "stamped owned_gpu_irq_bits " +
                            std::to_string(warm.owned_gpu_irq_bits) +
                            " do not match the provenance-derived bits " +
                            std::to_string(owned));
  }

  // Warm-entry latch state (source exit, last write wins).
  LatchState exit_latch;
  for (const PlanOp& op : ops) {
    if (op.kind == LogOp::kRegWrite) {
      exit_latch.Write(op.reg, op.value);
    }
  }

  size_t first_start = ops.size();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (planopt::IsJobStartWrite(ops[i])) {
      first_start = i;
      break;
    }
  }

  // Lockstep abstract walk over the source schedule: `src_latch` is
  // what the recorded driver observed, `warm_latch` what a warm replay
  // observes (exit state, retained writes only).
  LatchState src_latch;
  LatchState warm_latch = exit_latch;

  // Closure bookkeeping: id -> [first, last] member plus member count.
  struct ClosureClaim {
    ClosureKind kind;
    size_t first, last;
    size_t members = 0;
  };
  std::map<uint32_t, ClosureClaim> closures;

  // (A) retained ordering, (B) span membership, (F) freshness.
  int64_t last_warm = -1;
  std::vector<uint32_t> span_members(warm.ops.size(), 0);
  bool started_since_wait = false;
  int pending_ack_slot = -1;
  int last_started_slot = -1;
  int outstanding = 0;
  WarmStats re;  // (G) recount

  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    const PlanRewrite& r = prov.rewrites[i];
    const bool elided = RewriteIsElision(r.kind);
    const bool invariant = i < first_start || op.kind == LogOp::kMemPage;
    ++(invariant ? re.invariant_ops : re.input_dep_ops);

    switch (r.kind) {
      case PlanRewriteKind::kKeep: {
        if (r.warm_index >= warm.ops.size()) {
          return CheckFail(i, "warm index out of range");
        }
        if (static_cast<int64_t>(r.warm_index) != last_warm + 1) {
          return CheckFail(i, "retained ops out of warm-schedule order");
        }
        last_warm = r.warm_index;
        const WarmOp& wop = warm.ops[r.warm_index];
        if (!WarmOpMatches(op, wop, static_cast<uint32_t>(i))) {
          return CheckFail(i, "warm op content does not match source op");
        }
        if (op.kind == LogOp::kRegRead && wop.verify_mask != 0xFFFFFFFFu) {
          return CheckFail(i, "kept read carries a weakened verify mask");
        }
        break;
      }
      case PlanRewriteKind::kFuseSpan: {
        if (op.kind != LogOp::kRegWrite) {
          return CheckFail(i, "non-write fused into a register span");
        }
        if (r.warm_index >= warm.ops.size() ||
            warm.ops[r.warm_index].kind != WarmOpKind::kRegSpan) {
          return CheckFail(i, "span member points at a non-span warm op");
        }
        const WarmOp& wop = warm.ops[r.warm_index];
        if (r.aux >= wop.span_len) {
          return CheckFail(i, "span member ordinal out of range");
        }
        if (r.aux == 0) {
          if (static_cast<int64_t>(r.warm_index) != last_warm + 1) {
            return CheckFail(i, "retained ops out of warm-schedule order");
          }
          last_warm = r.warm_index;
          if (wop.src_index != i) {
            return CheckFail(i, "span src_index does not name first member");
          }
        } else {
          // Consecutive source indices, order preserved: member k must
          // directly follow member k-1 of the same span.
          if (static_cast<int64_t>(r.warm_index) != last_warm || i == 0) {
            return CheckFail(i, "span member outside its span's window");
          }
          const PlanRewrite& prev = prov.rewrites[i - 1];
          if (prev.kind != PlanRewriteKind::kFuseSpan ||
              prev.warm_index != r.warm_index || prev.aux != r.aux - 1) {
            return CheckFail(i, "span members are not consecutive source ops");
          }
        }
        const RegSpanWrite& sw = warm.span_writes[wop.span_begin + r.aux];
        if (sw.reg != op.reg || sw.value != op.value || sw.src_index != i) {
          return CheckFail(i, "span write does not match source write");
        }
        ++span_members[r.warm_index];
        ++re.fused_writes;
        break;
      }
      case PlanRewriteKind::kMaskWeaken: {
        if (op.kind != LogOp::kRegRead || !op.verify ||
            (op.reg != kRegGpuIrqRawstat && op.reg != kRegGpuIrqStatus)) {
          return CheckFail(i, "mask weakening on a non-GPU-IRQ read");
        }
        if (owned == 0 || r.aux != owned) {
          return CheckFail(i, "weakened bits do not equal the owned bits");
        }
        if (r.warm_index >= warm.ops.size() ||
            static_cast<int64_t>(r.warm_index) != last_warm + 1) {
          return CheckFail(i, "retained ops out of warm-schedule order");
        }
        last_warm = r.warm_index;
        const WarmOp& wop = warm.ops[r.warm_index];
        if (!WarmOpMatches(op, wop, static_cast<uint32_t>(i)) ||
            wop.verify_mask != ~owned) {
          return CheckFail(i, "weakened warm read does not match source op");
        }
        ++re.weakened_reads;
        break;
      }
      case PlanRewriteKind::kElideConstRead: {
        RegClass cls = ClassifyRegister(op.reg);
        bool statically_determined =
            op.kind == LogOp::kRegRead && op.verify &&
            (cls == RegClass::kConstant ||
             (cls == RegClass::kCpuConfig &&
              op.value == src_latch.Get(op.reg)));
        if (!statically_determined) {
          return CheckFail(i, "read is not statically determined");
        }
        ++re.elided_const_reads;
        ++re.elided_ops;
        break;
      }
      case PlanRewriteKind::kElideNondetRead: {
        if (op.kind != LogOp::kRegRead || op.verify ||
            !IsReadIdempotentRegister(op.reg)) {
          return CheckFail(i, "read is verified or not read-idempotent");
        }
        ++re.elided_nondet_reads;
        ++re.elided_ops;
        break;
      }
      case PlanRewriteKind::kElideNoopLatch: {
        if (op.kind != LogOp::kRegWrite ||
            ClassifyRegister(op.reg) != RegClass::kCpuConfig ||
            WriteHasSideEffects(op.reg, op.value) ||
            op.value != warm_latch.Get(op.reg)) {
          return CheckFail(i, "write is not a no-op on the warm latch state");
        }
        if (planopt::IsJobSlotRegister(op.reg)) {
          return CheckFail(i, "job-slot write hidden from the power walk");
        }
        ++re.elided_noop_latches;
        ++re.elided_ops;
        break;
      }
      default: {  // closure membership
        std::optional<ClosureKind> ck = ClosureKindOfRewrite(r.kind);
        if (!ck.has_value()) {
          return CheckFail(i, "unknown rewrite kind");
        }
        auto [it, inserted] = closures.try_emplace(
            r.aux, ClosureClaim{*ck, i, i, 0});
        if (!inserted && it->second.kind != *ck) {
          return CheckFail(i, "closure id spans two closure kinds");
        }
        it->second.last = i;
        ++it->second.members;
        // Elided reads and polls must be side-effect-free on the
        // device; waits and pages are never closure members.
        if ((op.kind == LogOp::kRegRead || op.kind == LogOp::kPollWait) &&
            !IsReadIdempotentRegister(op.reg)) {
          return CheckFail(i, "elided closure member is not read-idempotent");
        }
        if (op.kind == LogOp::kIrqWait || op.kind == LogOp::kMemPage) {
          return CheckFail(i, "irq wait / mem page inside an elided closure");
        }
        // AS closures must be architectural no-ops at the warm entry
        // state: latch re-writes of the latched values and an UPDATE
        // re-latching the already-active root.
        if (*ck == ClosureKind::kAs && op.kind == LogOp::kRegWrite) {
          int as_index = -1;
          uint32_t as_reg = 0;
          if (!planopt::DecodeAsRegister(op.reg, &as_index, &as_reg)) {
            return CheckFail(i, "AS closure member outside the AS block");
          }
          if (as_reg == kAsCommand) {
            uint32_t base = kAsBase + as_index * kAsStride;
            uint64_t root =
                (static_cast<uint64_t>(warm_latch.Get(base + kAsTranstabHi))
                 << 32) |
                warm_latch.Get(base + kAsTranstabLo);
            if (op.value != kAsCommandUpdate ||
                root != warm_latch.as_root(as_index)) {
              return CheckFail(i, "elided AS UPDATE would change the root");
            }
          } else if (op.value != warm_latch.Get(op.reg)) {
            return CheckFail(i, "elided AS latch write is not a no-op");
          }
        }
        ++re.elided_ops;
        break;
      }
    }

    // ------------------------------------ (D) retained-observer isolation
    if (!elided) {
      if (op.kind == LogOp::kRegRead && op.verify &&
          (op.reg == kRegGpuIrqRawstat || op.reg == kRegGpuIrqStatus) &&
          r.kind != PlanRewriteKind::kMaskWeaken && owned != 0) {
        return CheckFail(i, "retained GPU-IRQ read not weakened against "
                            "owned bits");
      }
      if (op.kind == LogOp::kPollWait &&
          (op.reg == kRegGpuIrqRawstat || op.reg == kRegGpuIrqStatus) &&
          (op.mask & owned) != 0) {
        return CheckFail(i, "retained poll depends on owned interrupt bits");
      }
      if (op.kind == LogOp::kIrqWait) {
        if ((op.irq_lines & planopt::kIrqLineGpu) != 0 && owned != 0) {
          return CheckFail(i, "retained GPU-line wait with owned bits");
        }
        struct LineMask {
          uint8_t line;
          uint32_t reg;
        };
        static constexpr LineMask kLines[] = {
            {planopt::kIrqLineJob, kRegJobIrqMask},
            {planopt::kIrqLineGpu, kRegGpuIrqMask},
            {planopt::kIrqLineMmu, kRegMmuIrqMask},
        };
        for (const LineMask& lm : kLines) {
          if ((op.irq_lines & lm.line) != 0 &&
              src_latch.Get(lm.reg) != warm_latch.Get(lm.reg)) {
            return CheckFail(i, std::string("waited line masked differently "
                                            "in warm schedule (") +
                                    RegisterName(lm.reg) + ")");
          }
        }
        // --------------------------------------------- (F) job freshness
        if ((op.irq_lines & planopt::kIrqLineJob) != 0) {
          if (!started_since_wait) {
            return CheckFail(i, "job-IRQ wait without a fresh job start");
          }
          started_since_wait = false;
          --outstanding;
          pending_ack_slot = last_started_slot;
        }
      }
      if (op.kind == LogOp::kRegWrite) {
        int slot = -1;
        if (planopt::IsJobStartWrite(op, &slot)) {
          if (pending_ack_slot >= 0) {
            return CheckFail(i, "job start before the previous completion "
                                "was acknowledged");
          }
          if (outstanding != 0) {
            return CheckFail(i, "overlapping retained job starts");
          }
          started_since_wait = true;
          last_started_slot = slot;
          ++outstanding;
        } else if (planopt::IsJobIrqClearWrite(op) && pending_ack_slot >= 0 &&
                   (op.value & JobIrqDoneBit(pending_ack_slot)) != 0) {
          pending_ack_slot = -1;
        }
      }
    }

    if (op.kind == LogOp::kRegWrite) {
      src_latch.Write(op.reg, op.value);
      if (!elided) {
        warm_latch.Write(op.reg, op.value);
      }
    }
  }

  if (last_warm + 1 != static_cast<int64_t>(warm.ops.size())) {
    return IntegrityViolation(
        "planopt soundness: warm schedule has unclaimed ops (" +
        std::to_string(last_warm + 1) + " of " +
        std::to_string(warm.ops.size()) + " claimed)");
  }
  for (size_t w = 0; w < warm.ops.size(); ++w) {
    if (warm.ops[w].kind == WarmOpKind::kRegSpan &&
        span_members[w] != warm.ops[w].span_len) {
      return IntegrityViolation("planopt soundness: warm op " +
                                std::to_string(w) + " claims " +
                                std::to_string(warm.ops[w].span_len) +
                                " members, " +
                                std::to_string(span_members[w]) + " found");
    }
  }
  if (outstanding != 0 || pending_ack_slot >= 0 || started_since_wait) {
    return IntegrityViolation(
        "planopt soundness: unbalanced job start/wait/ack at schedule end");
  }

  // -------------------------------------------- (C) closure re-derivation
  for (const auto& [id, claim] : closures) {
    if (claim.members != claim.last - claim.first + 1) {
      return CheckFail(claim.first, "closure " + std::to_string(id) +
                                        " is not contiguous");
    }
    std::optional<Closure> m = planopt::MatchClosureAt(ops, claim.first);
    if (!m.has_value() || m->kind != claim.kind || m->begin != claim.first ||
        m->end != claim.last + 1) {
      return CheckFail(claim.first,
                       "closure " + std::to_string(id) + " does not match "
                       "the " + planopt::ClosureKindName(claim.kind) +
                       " grammar");
    }
  }

  // ------------------------------------------------- (E) power evaluation
  PowerState entry_a = planopt::SourceExitPower(ops, sku);
  PowerState exit_a, exit_b;
  if (auto err = planopt::EvalWarmPower(warm, sku, entry_a, &exit_a)) {
    return IntegrityViolation("planopt soundness (entry A): " + *err);
  }
  if (auto err = planopt::EvalWarmPower(warm, sku, exit_a, &exit_b)) {
    return IntegrityViolation("planopt soundness (entry B): " + *err);
  }
  if (!(exit_b == exit_a)) {
    return IntegrityViolation(
        "planopt soundness: warm power exit is not a fixpoint");
  }

  // ---------------------------------------------------- (G) stats recount
  re.retained_ops = static_cast<uint32_t>(warm.ops.size());
  for (const WarmOp& wop : warm.ops) {
    re.fused_spans += wop.kind == WarmOpKind::kRegSpan ? 1 : 0;
  }
  for (const auto& [id, claim] : closures) {
    switch (claim.kind) {
      case ClosureKind::kFlush:
        ++re.elided_flush_closures;
        break;
      case ClosureKind::kReset:
        ++re.elided_reset_closures;
        break;
      case ClosureKind::kPower:
        ++re.elided_power_closures;
        break;
      case ClosureKind::kAs:
        ++re.elided_as_closures;
        break;
    }
  }
  for (const auto& [name, patch] : plan.patches) {
    re.direct_readback_tensors += patch.direct_readback ? 1 : 0;
  }
  const WarmStats& st = warm.stats;
  struct FieldCheck {
    const char* name;
    uint32_t claimed, derived;
  };
  const FieldCheck fields[] = {
      {"fused_spans", st.fused_spans, re.fused_spans},
      {"fused_writes", st.fused_writes, re.fused_writes},
      {"elided_flush_closures", st.elided_flush_closures,
       re.elided_flush_closures},
      {"elided_power_closures", st.elided_power_closures,
       re.elided_power_closures},
      {"elided_reset_closures", st.elided_reset_closures,
       re.elided_reset_closures},
      {"elided_as_closures", st.elided_as_closures, re.elided_as_closures},
      {"elided_const_reads", st.elided_const_reads, re.elided_const_reads},
      {"elided_nondet_reads", st.elided_nondet_reads, re.elided_nondet_reads},
      {"elided_noop_latches", st.elided_noop_latches, re.elided_noop_latches},
      {"weakened_reads", st.weakened_reads, re.weakened_reads},
      {"retained_ops", st.retained_ops, re.retained_ops},
      {"elided_ops", st.elided_ops, re.elided_ops},
      {"invariant_ops", st.invariant_ops, re.invariant_ops},
      {"input_dep_ops", st.input_dep_ops, re.input_dep_ops},
      {"direct_readback_tensors", st.direct_readback_tensors,
       re.direct_readback_tensors},
  };
  for (const FieldCheck& f : fields) {
    if (f.claimed != f.derived) {
      return IntegrityViolation(
          std::string("planopt soundness: stats field ") + f.name +
          " claims " + std::to_string(f.claimed) + ", recount " +
          std::to_string(f.derived));
    }
  }

  return OkStatus();
}

// ------------------------------------------------ verifier pass (ninth)

namespace {

// Recording admission exercises the optimizer's soundness argument: the
// pass compiles a skeleton plan (no image bytes), builds a warm program
// for it, and requires the independent checker to accept the result. A
// build *decline* is not an admission error (chaos/adversarial logs may
// simply not be optimizable); a built program failing its check is.
class PlanoptSoundnessPass : public AnalysisPass {
 public:
  const char* name() const override { return "planopt-soundness"; }

  void Run(const AnalysisInput& in, AnalysisReport* report) const override {
    if (in.sku == nullptr || in.continuation) {
      return;  // sku-compat reports the former; segments are interpreted
    }
    if (report->error_count() > 0) {
      // The recording is already rejected; superoptimizing it would only
      // re-report the same defects with planopt vocabulary (and the
      // corpus tests pin each corruption to exactly one pass).
      return;
    }
    PlanCompileOptions options;
    options.include_images = false;
    ReplayPlan plan = CompileReplayPlan(*in.recording, options);
    std::string reason;
    Status attached = AttachWarmProgram(&plan, *in.sku, &reason);
    if (!attached.ok()) {
      Error(report, -1,
            std::string("warm program failed its soundness check: ") +
                attached.message());
      return;
    }
    if (plan.warm == nullptr) {
      return;  // declined — the interpreter/plan paths remain available
    }
    Status check = CheckWarmProgram(plan, *plan.warm, *in.sku);
    if (!check.ok()) {
      Error(report, -1, check.message());
    }
  }
};

const bool kRegistered = [] {
  RegisterVerifierPass([]() -> std::unique_ptr<AnalysisPass> {
    return std::make_unique<PlanoptSoundnessPass>();
  });
  return true;
}();

}  // namespace

}  // namespace grt
