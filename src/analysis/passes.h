// The eight static-analysis passes over a recording (the admission gate).
//
// Pass               Checks                                        Paper
// -----------------  --------------------------------------------  ------
// grammar            per-op field validity, positive delays,       §2.3
//                    page-sized images, MMIO-window registers
// register-protocol  power-domain / job-slot / MMU-AS state        §2.3
//                    machines: reset before jobs, cores powered
//                    before submit, AS configured before use,
//                    flush completion before reissue
// speculation-residue no unvalidated predicted read values         §4.2
//                    committed into kRegRead expectations
// poll-idempotence   every kPollWait targets a read-idempotent     §4.3
//                    register with a satisfiable predicate
// metastate-coverage every job submit preceded by metastate        §5
//                    pages covering its page tables and the
//                    command buffer the chain head points into
// sku-compat         register image and core tiling match the      §2.4
//                    claimed SKU from the registry
// optimizer-provenance headers claiming optimization carry a       §4
//                    well-formed justification trace, and traces
//                    only appear on headers that claim it
// footprint-soundness the header's declared resource footprint     §7
//                    (v4) is well-formed and over-approximates a
//                    recomputation from the log — the evidence the
//                    serving device pool trusts for co-residency
#ifndef GRT_SRC_ANALYSIS_PASSES_H_
#define GRT_SRC_ANALYSIS_PASSES_H_

#include "src/analysis/pass.h"

namespace grt {

class GrammarPass : public AnalysisPass {
 public:
  const char* name() const override { return "grammar"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class RegisterProtocolPass : public AnalysisPass {
 public:
  const char* name() const override { return "register-protocol"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class SpeculationResiduePass : public AnalysisPass {
 public:
  const char* name() const override { return "speculation-residue"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class PollIdempotencePass : public AnalysisPass {
 public:
  const char* name() const override { return "poll-idempotence"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class MetastateCoveragePass : public AnalysisPass {
 public:
  const char* name() const override { return "metastate-coverage"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class SkuCompatPass : public AnalysisPass {
 public:
  const char* name() const override { return "sku-compat"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class OptimizerProvenancePass : public AnalysisPass {
 public:
  const char* name() const override { return "optimizer-provenance"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

class FootprintSoundnessPass : public AnalysisPass {
 public:
  const char* name() const override { return "footprint-soundness"; }
  void Run(const AnalysisInput& in, AnalysisReport* report) const override;
};

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_PASSES_H_
