// RecordingVerifier: the pass manager. Runs every registered static pass
// over a recording and renders a verdict.
//
// The verifier is the admission gate for recordings (§3, §7): both the
// replayer (before touching the GPU) and the sealed store (before
// persisting) refuse recordings whose report contains errors. Passes are
// stateless and const, so one verifier can be shared across threads.
#ifndef GRT_SRC_ANALYSIS_VERIFIER_H_
#define GRT_SRC_ANALYSIS_VERIFIER_H_

#include <memory>
#include <vector>

#include "src/analysis/findings.h"
#include "src/analysis/pass.h"
#include "src/record/recording.h"

namespace grt {

// Factory for passes contributed from outside this library (e.g. the
// planopt-soundness pass, which lives with the plan superoptimizer in
// src/analysis/planopt but must run at recording admission). Factories
// registered before a RecordingVerifier is constructed are appended
// after the standard passes. Safe to call from static initializers;
// VerifyRecording's shared verifier is constructed lazily on first use,
// after all registrations.
using VerifierPassFactory = std::unique_ptr<AnalysisPass> (*)();
void RegisterVerifierPass(VerifierPassFactory factory);

class RecordingVerifier {
 public:
  // A verifier with all eight standard passes plus every registered
  // extra pass.
  RecordingVerifier();

  // Registers an additional pass (runs after the standard ones).
  void AddPass(std::unique_ptr<AnalysisPass> pass);

  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const {
    return passes_;
  }

  // Runs every pass over the recording and returns the full report.
  // Resolves the claimed SKU and continuation-segment handling internally.
  AnalysisReport Analyze(const Recording& recording) const;

  // Analyze + verdict: OK if the report has no errors, otherwise
  // kIntegrityViolation carrying the first error and the error count.
  Status Verify(const Recording& recording) const;

 private:
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

// One-shot convenience used by the replayer and the store.
Status VerifyRecording(const Recording& recording);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_VERIFIER_H_
