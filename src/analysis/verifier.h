// RecordingVerifier: the pass manager. Runs every registered static pass
// over a recording and renders a verdict.
//
// The verifier is the admission gate for recordings (§3, §7): both the
// replayer (before touching the GPU) and the sealed store (before
// persisting) refuse recordings whose report contains errors. Passes are
// stateless and const, so one verifier can be shared across threads.
#ifndef GRT_SRC_ANALYSIS_VERIFIER_H_
#define GRT_SRC_ANALYSIS_VERIFIER_H_

#include <memory>
#include <vector>

#include "src/analysis/findings.h"
#include "src/analysis/pass.h"
#include "src/record/recording.h"

namespace grt {

class RecordingVerifier {
 public:
  // A verifier with all eight standard passes registered.
  RecordingVerifier();

  // Registers an additional pass (runs after the standard ones).
  void AddPass(std::unique_ptr<AnalysisPass> pass);

  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const {
    return passes_;
  }

  // Runs every pass over the recording and returns the full report.
  // Resolves the claimed SKU and continuation-segment handling internally.
  AnalysisReport Analyze(const Recording& recording) const;

  // Analyze + verdict: OK if the report has no errors, otherwise
  // kIntegrityViolation carrying the first error and the error count.
  Status Verify(const Recording& recording) const;

 private:
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

// One-shot convenience used by the replayer and the store.
Status VerifyRecording(const Recording& recording);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_VERIFIER_H_
