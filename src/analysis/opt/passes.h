// Optimizer passes over the dataflow IR.
//
// Each pass is a pure function: it inspects a lifted recording and returns
// the edits it can justify, each paired with a machine-readable OptRecord
// naming the rule, the witness, and the affected ORIGINAL log index. The
// pipeline driver (optimizer.cc) applies edits, re-lifts, and iterates to
// a fixpoint. A pass that cannot prove a transformation safe under the
// conservative clobber model (src/hw/regs.h) must leave the entry alone —
// the worst outcome of conservatism is a longer replay, never a wrong one.
#ifndef GRT_SRC_ANALYSIS_OPT_PASSES_H_
#define GRT_SRC_ANALYSIS_OPT_PASSES_H_

#include <cstdint>
#include <vector>

#include "src/analysis/dataflow/analyses.h"
#include "src/analysis/dataflow/ir.h"

namespace grt {

// Edits a pass wants applied, expressed in CURRENT log indices; the trace
// records inside carry ORIGINAL indices (via the orig mapping) so the
// justification stays auditable against the unoptimized recording.
struct PassEdit {
  std::vector<uint32_t> deletions;
  struct Rewrite {
    uint32_t index = 0;
    LogEntry entry;
  };
  std::vector<Rewrite> rewrites;
  std::vector<OptRecord> trace;

  bool empty() const {
    return deletions.empty() && rewrites.empty() && trace.empty();
  }
};

// Pass 1 — dead register-write elimination.
//  * pure-latch (kCpuConfig) writes whose unclobbered reaching definition
//    already latched the same value, or that are overwritten before any
//    consumer (liveness);
//  * *_PWRON/PWROFF_HI words proven no-ops by the recording's own
//    validated *_PRESENT_HI == 0 discovery read;
//  * cancelling PWROFF;PWRON pairs over provably-on cores with no observer
//    of the power surface in between — including the induced rewrite of
//    downstream GPU_IRQ_RAWSTAT expectations (per-bit reaching
//    definitions over the PowerChanged bits) and the deletion of IRQ
//    clears left clearing provably-zero bits.
PassEdit DeadWritePass(const DataflowIr& ir, const std::vector<uint32_t>& orig);

// Pass 2 — redundant-read caching.
//  * reads of nondeterministic, read-idempotent registers (the replayer
//    never verifies them, and dropping them cannot perturb the device);
//  * reads/polls dominated by an identical observation of the same
//    register with no clobbering stimulus in between.
PassEdit RedundantReadPass(const DataflowIr& ir,
                           const std::vector<uint32_t>& orig);

// Pass 3 — commit-batch coalescing: folds adjacent pacing delays (two
// back-to-back §4.1 deferral boundaries prove the same barrier) into one
// with the summed duration. Batch merges that fall out of other passes'
// eliminations are recorded by the pipeline driver.
PassEdit CoalescePass(const DataflowIr& ir, const std::vector<uint32_t>& orig);

// Pass 4 — memsync delta pruning: non-metastate page images after the
// segment's first job-start write. The replayer provably skips these (it
// reapplies only metastate pages once the first image is done), so their
// payload is dead weight in the recording.
PassEdit MemsyncPrunePass(const DataflowIr& ir,
                          const std::vector<uint32_t>& orig);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_OPT_PASSES_H_
