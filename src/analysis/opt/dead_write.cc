// Dead register-write elimination. Three rules, in increasing order of
// sophistication; every deletion names its witness in the trace.
#include <map>
#include <optional>

#include "src/analysis/opt/passes.h"

namespace grt {
namespace {

constexpr char kPass[] = "dead-write-elim";
constexpr uint32_t kPwrBits =
    kGpuIrqPowerChangedSingle | kGpuIrqPowerChangedAll;

// The matching PWRON_LO register for a PWROFF_LO register, if any.
std::optional<uint32_t> PwrOnForPwrOff(uint32_t reg) {
  switch (reg) {
    case kRegShaderPwrOffLo: return kRegShaderPwrOnLo;
    case kRegTilerPwrOffLo: return kRegTilerPwrOnLo;
    case kRegL2PwrOffLo: return kRegL2PwrOnLo;
    default: return std::nullopt;
  }
}

struct PairCandidate {
  size_t off = 0;
  size_t on = 0;
};

}  // namespace

PassEdit DeadWritePass(const DataflowIr& ir,
                       const std::vector<uint32_t>& orig) {
  PassEdit edit;
  const auto& entries = ir.rec->log.entries();
  const size_t n = entries.size();
  std::vector<char> deleted(n, 0);

  auto del = [&](size_t i, OptReason reason, uint32_t aux_orig,
                 uint64_t detail) {
    deleted[i] = 1;
    edit.deletions.push_back(static_cast<uint32_t>(i));
    edit.trace.push_back(OptRecord{kPass, OptAction::kDelete, reason, orig[i],
                                   aux_orig, detail});
  };

  // Clobber scan that ignores entries already proven no-ops this sweep.
  auto has_clobber = [&](uint32_t reg, size_t after, size_t before) {
    for (size_t k = after + 1; k < before; ++k) {
      if (deleted[k]) {
        continue;
      }
      const LogEntry& s = entries[k];
      if (s.op == LogOp::kRegWrite &&
          MayClobberRegister(s.reg, s.value, reg)) {
        return true;
      }
    }
    return false;
  };

  // Evidence cache: a validated PRESENT_* == 0 read (constants are never
  // clobbered, so any position in the log serves).
  auto present_zero_evidence =
      [&](uint32_t present_reg) -> std::optional<size_t> {
    auto it = ir.observations_of.find(present_reg);
    if (it == ir.observations_of.end()) {
      return std::nullopt;
    }
    for (uint32_t idx : it->second) {
      const LogEntry& e = entries[idx];
      if (e.op == LogOp::kRegRead && !e.speculative && e.value == 0) {
        return idx;
      }
    }
    return std::nullopt;
  };

  // --- Rules 1 & 2: pure-latch writes (same-value rewrite / dead store),
  // and power-Hi no-ops.
  std::map<uint32_t, size_t> last_kept;  // reg -> surviving write index
  for (size_t i = 0; i < n; ++i) {
    const LogEntry& e = entries[i];
    if (e.op != LogOp::kRegWrite) {
      continue;
    }
    if (ClassifyRegister(e.reg) == RegClass::kCpuConfig) {
      auto it = last_kept.find(e.reg);
      if (it != last_kept.end() && entries[it->second].value == e.value &&
          !has_clobber(e.reg, it->second, i)) {
        del(i, OptReason::kDeadConfigRewrite, orig[it->second], e.value);
        continue;
      }
      if (!ConfigWriteIsLive(ir, i)) {
        del(i, OptReason::kDeadConfigRewrite, 0, e.value);
        continue;
      }
      last_kept[e.reg] = i;
      continue;
    }
    if (IsPowerControlHiRegister(e.reg)) {
      uint32_t present_reg = 0;
      if (PowerPresentRegisterFor(e.reg, &present_reg)) {
        if (auto ev = present_zero_evidence(present_reg)) {
          del(i, OptReason::kNoOpPowerWord, orig[*ev], e.value);
        }
      }
    }
  }

  // --- Rule 3: cancelling PWROFF;PWRON pairs.
  std::vector<PairCandidate> pairs;
  for (size_t i = 0; i < n; ++i) {
    if (deleted[i]) {
      continue;
    }
    const LogEntry& e = entries[i];
    if (e.op != LogOp::kRegWrite) {
      continue;
    }
    auto on_reg = PwrOnForPwrOff(e.reg);
    if (!on_reg.has_value()) {
      continue;
    }
    uint32_t ready_reg = 0;
    uint32_t trans_reg = 0;
    (void)PowerStatusRegistersFor(e.reg, &ready_reg, &trans_reg);

    // The cores being cycled must be provably on going in: then OFF;ON
    // nets out to no state change (the transient PowerChanged IRQ bits
    // are handled by the rewrite sweep below).
    uint32_t ready_bits = 0;
    auto evidence = DominatingPowerEvidence(ir, e.reg, i, &ready_bits);
    if (!evidence.has_value() || (e.value & ready_bits) != e.value) {
      continue;
    }

    // Find the matching ON with nothing in between that could observe or
    // perturb the power surface. Latch writes, pacing delays, page syncs,
    // and observations of unrelated registers are harmless; anything else
    // disqualifies the pair.
    size_t on_index = 0;
    bool found = false;
    for (size_t j = i + 1; j < n && j < i + 24; ++j) {
      if (deleted[j]) {
        continue;  // proven no-ops (the pair's _HI words)
      }
      const LogEntry& s = entries[j];
      bool stop = false;
      switch (s.op) {
        case LogOp::kRegWrite:
          if (s.reg == *on_reg && s.value == e.value) {
            on_index = j;
            found = true;
            stop = true;
          } else if (ClassifyRegister(s.reg) != RegClass::kCpuConfig) {
            stop = true;  // another trigger: give up
          }
          break;
        case LogOp::kRegRead:
        case LogOp::kPollWait:
          if (s.reg == ready_reg || s.reg == trans_reg ||
              s.reg == (ready_reg | 0x4) || s.reg == (trans_reg | 0x4) ||
              s.reg == kRegGpuIrqRawstat || s.reg == kRegGpuIrqStatus) {
            stop = true;  // observes the surface the pair perturbs
          }
          break;
        case LogOp::kIrqWait:
          stop = true;
          break;
        default:
          break;  // kDelay / kMemPage: harmless
      }
      if (stop) {
        break;
      }
    }
    if (found) {
      pairs.push_back({i, on_index});
    }
  }

  // Feasibility of the induced IRQ rewrite. The PowerChanged bits must be
  // invisible to interrupt lines and un-polled, and the initial RAWSTAT
  // state must be known (segment 0 replays begin with a scrub reset).
  bool feasible = !pairs.empty() && ir.rec->header.segment_index == 0;
  if (feasible) {
    if (auto it = ir.writes_of.find(kRegGpuIrqMask);
        it != ir.writes_of.end()) {
      for (uint32_t w : it->second) {
        if ((entries[w].value & kPwrBits) != 0) {
          feasible = false;
        }
      }
    }
    if (ir.observations_of.count(kRegGpuIrqStatus) > 0) {
      feasible = false;
    }
    if (auto it = ir.observations_of.find(kRegGpuIrqRawstat);
        it != ir.observations_of.end()) {
      for (uint32_t o : it->second) {
        const LogEntry& e = entries[o];
        if (e.op == LogOp::kPollWait && (e.mask & kPwrBits) != 0) {
          feasible = false;
        }
        if (e.op == LogOp::kRegRead && e.speculative) {
          feasible = false;
        }
      }
    }
  }

  if (!feasible) {
    return edit;
  }

  // Per-bit reaching definitions over the PowerChanged bits, with the
  // pair members removed: rewrite read expectations whose only defs were
  // removed, and delete IRQ clears left clearing provably-zero bits.
  std::vector<char> pair_member(n, 0);
  for (const PairCandidate& p : pairs) {
    pair_member[p.off] = 1;
    pair_member[p.on] = 1;
  }
  struct BitState {
    int surviving = 0;
    int removed = 0;
  };
  std::map<uint32_t, BitState> bits;
  bits[kGpuIrqPowerChangedSingle] = {};
  bits[kGpuIrqPowerChangedAll] = {};

  bool abort = false;
  std::vector<std::pair<size_t, uint32_t>> read_rewrites;
  std::vector<size_t> dead_clears;
  for (size_t j = 0; j < n && !abort; ++j) {
    if (deleted[j]) {
      continue;  // proven no-ops contribute no defs
    }
    const LogEntry& s = entries[j];
    if (s.op == LogOp::kRegWrite) {
      const uint32_t raised = GpuIrqBitsRaisedBy(s.reg, s.value);
      if (pair_member[j]) {
        for (auto& [bit, st] : bits) {
          if ((raised & bit) != 0) {
            ++st.removed;
          }
        }
        continue;
      }
      if (s.reg == kRegGpuIrqClear) {
        const uint32_t v = s.value;
        bool deletable = v != 0 && (v & ~kPwrBits) == 0;
        for (auto& [bit, st] : bits) {
          if ((v & bit) != 0 && st.surviving > 0) {
            deletable = false;
          }
        }
        if (deletable) {
          dead_clears.push_back(j);
        }
        for (auto& [bit, st] : bits) {
          if ((v & bit) != 0) {
            st = {};
          }
        }
        continue;
      }
      for (auto& [bit, st] : bits) {
        if ((raised & bit) != 0) {
          ++st.surviving;
        }
      }
      continue;
    }
    if (s.op == LogOp::kRegRead && s.reg == kRegGpuIrqRawstat) {
      uint32_t nv = s.value;
      for (auto& [bit, st] : bits) {
        if ((s.value & bit) == 0) {
          continue;
        }
        if (st.surviving > 0) {
          continue;  // a surviving def explains the bit
        }
        if (st.removed > 0) {
          nv &= ~bit;  // only removed defs explained it: now provably 0
        } else {
          abort = true;  // recorded bit with no def at all: model mismatch
        }
      }
      if (nv != s.value) {
        read_rewrites.emplace_back(j, nv);
      }
    }
  }
  if (abort) {
    return edit;
  }

  for (const PairCandidate& p : pairs) {
    del(p.off, OptReason::kCancellingPowerPair, orig[p.on],
        entries[p.off].value);
    del(p.on, OptReason::kCancellingPowerPair, orig[p.off],
        entries[p.on].value);
  }
  for (size_t j : dead_clears) {
    del(j, OptReason::kDeadIrqClear, 0, entries[j].value);
  }
  for (const auto& [j, nv] : read_rewrites) {
    LogEntry ne = entries[j];
    const uint64_t detail =
        (static_cast<uint64_t>(ne.value) << 32) | nv;
    ne.value = nv;
    edit.rewrites.push_back({static_cast<uint32_t>(j), ne});
    edit.trace.push_back(OptRecord{kPass, OptAction::kRewrite,
                                   OptReason::kIrqBitsRewritten, orig[j], 0,
                                   detail});
  }
  return edit;
}

}  // namespace grt
