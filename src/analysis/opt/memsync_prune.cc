// Memsync delta pruning. The replayer applies the initial memory image,
// then — once the first job-start write has executed — reapplies only
// metastate pages at busy/idle transitions (§5): program-data pages after
// that point are never read again by the replay path. The lifter tags
// every page node with its position relative to the first job start, so
// the pruning argument is a per-node lookup. Metastate pages and pages
// preceding the first start are never touched; pages overlapping writable
// tensor bindings cannot occur after the first start (the recorder
// snapshots them only in the initial image), but the interference analysis
// double-checks anyway.
#include "src/analysis/opt/passes.h"

namespace grt {

PassEdit MemsyncPrunePass(const DataflowIr& ir,
                          const std::vector<uint32_t>& orig) {
  PassEdit edit;
  for (size_t i = 0; i < ir.size(); ++i) {
    const IrNode& node = ir.nodes[i];
    if (node.kind != IrKind::kMemSync || node.before_first_start) {
      continue;
    }
    const LogEntry& e = ir.entry(i);
    if (e.metastate) {
      continue;  // §5 metastate must keep flowing between transitions
    }
    if (PageOverlapsWritableBinding(ir, i)) {
      continue;  // interference with injectable tensor data: leave it
    }
    edit.deletions.push_back(static_cast<uint32_t>(i));
    edit.trace.push_back(OptRecord{
        "memsync-prune", OptAction::kDelete, OptReason::kReplayDeadPage,
        orig[i], orig[ir.first_job_start()],
        static_cast<uint64_t>(e.data.size())});
  }
  return edit;
}

}  // namespace grt
