#include "src/analysis/opt/optimizer.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "src/analysis/footprint/footprint.h"
#include "src/analysis/opt/passes.h"

namespace grt {
namespace {

// Applies a pass edit to the working entry list, keeping the
// original-index mapping aligned, and folds the deletions into `stats`.
void ApplyEdit(std::vector<LogEntry>* entries, std::vector<uint32_t>* orig,
               PassEdit edit, OptStats* stats) {
  for (const PassEdit::Rewrite& rw : edit.rewrites) {
    (*entries)[rw.index] = rw.entry;
  }
  std::sort(edit.deletions.begin(), edit.deletions.end());
  edit.deletions.erase(
      std::unique(edit.deletions.begin(), edit.deletions.end()),
      edit.deletions.end());
  for (auto it = edit.deletions.rbegin(); it != edit.deletions.rend(); ++it) {
    switch ((*entries)[*it].op) {
      case LogOp::kRegWrite: ++stats->writes_eliminated; break;
      case LogOp::kRegRead: ++stats->reads_eliminated; break;
      case LogOp::kPollWait: ++stats->polls_eliminated; break;
      case LogOp::kMemPage: ++stats->pages_eliminated; break;
      case LogOp::kDelay: ++stats->delays_merged; break;
      default: break;
    }
    entries->erase(entries->begin() + *it);
    orig->erase(orig->begin() + *it);
  }
}

Recording WithLog(const Recording& rec, std::vector<LogEntry> entries) {
  Recording out;
  out.header = rec.header;
  out.bindings = rec.bindings;
  out.log = InteractionLog::FromEntries(std::move(entries));
  return out;
}

}  // namespace

Result<Recording> OptimizeRecording(const Recording& rec,
                                    const OptimizeOptions& options,
                                    OptStats* stats) {
  if (rec.header.provenance.optimized) {
    return InvalidArgument(
        "recording already carries optimization provenance; re-optimizing "
        "would corrupt the original-index trace");
  }
  OptStats local;
  OptStats& st = stats != nullptr ? *stats : local;
  st = OptStats{};
  st.original_entries = rec.log.size();

  std::vector<LogEntry> entries = rec.log.entries();
  std::vector<uint32_t> orig(entries.size());
  std::iota(orig.begin(), orig.end(), 0u);

  // Commit-batch ids of the original recording, by original index — used
  // after the pipeline to measure and record elimination-induced batch
  // merges.
  const DataflowIr original_ir = LiftRecording(rec);
  std::vector<uint32_t> orig_batch(original_ir.size(), 0);
  for (size_t i = 0; i < original_ir.size(); ++i) {
    orig_batch[i] = original_ir.nodes[i].batch;
  }

  std::vector<OptRecord> records;
  using PassFn = PassEdit (*)(const DataflowIr&, const std::vector<uint32_t>&);
  struct PipelineStage {
    bool enabled;
    PassFn fn;
  };
  const PipelineStage stages[] = {
      {options.memsync_prune, &MemsyncPrunePass},
      {options.dead_write, &DeadWritePass},
      {options.redundant_read, &RedundantReadPass},
      {options.coalesce, &CoalescePass},
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (const PipelineStage& stage : stages) {
      if (!stage.enabled) {
        continue;
      }
      const Recording work = WithLog(rec, entries);
      const DataflowIr ir = LiftRecording(work);
      PassEdit edit = stage.fn(ir, orig);
      if (edit.empty()) {
        continue;
      }
      changed = true;
      for (const OptRecord& r : edit.trace) {
        if (r.reason == OptReason::kReplayDeadPage) {
          st.synced_bytes_pruned += r.detail;
        }
        if (r.reason == OptReason::kIrqBitsRewritten) {
          ++st.rewrites;
        }
        records.push_back(r);
      }
      ApplyEdit(&entries, &orig, std::move(edit), &st);
    }
    ++st.iterations;
    if (!changed) {
      break;
    }
  }

  // Elimination-induced commit coalescing: where two stimuli now sit in
  // one batch but came from different batches of the original recording,
  // the boundary between them has provably dissolved.
  Recording out = WithLog(rec, std::move(entries));
  const DataflowIr final_ir = LiftRecording(out);
  for (size_t i = 1; i < final_ir.size(); ++i) {
    const IrNode& prev = final_ir.nodes[i - 1];
    const IrNode& cur = final_ir.nodes[i];
    if (prev.batch == 0 || cur.batch != prev.batch) {
      continue;
    }
    if (orig_batch[orig[i - 1]] != orig_batch[orig[i]]) {
      ++st.batches_merged;
      records.push_back(OptRecord{
          "commit-coalesce", OptAction::kMerge, OptReason::kBatchCoalesced,
          orig[i], orig[i - 1],
          orig_batch[orig[i]] - orig_batch[orig[i - 1]]});
    }
  }

  st.final_entries = out.log.size();
  // The log changed (or may have): the header's static footprint summarizes
  // the log, so carrying the input's stamp forward would be stale. Re-stamp
  // on every path out.
  StampFootprint(&out);
  if (records.empty()) {
    return out;  // nothing provable: provenance stays unoptimized
  }
  out.header.provenance.optimized = true;
  out.header.provenance.original_entries =
      static_cast<uint32_t>(rec.log.size());
  out.header.provenance.records = std::move(records);
  return out;
}

std::string OptStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "entries %zu -> %zu (-%.1f%%) in %zu iteration(s)\n"
      "  writes eliminated   %zu\n"
      "  reads eliminated    %zu\n"
      "  polls eliminated    %zu\n"
      "  pages pruned        %zu (%zu bytes)\n"
      "  delays merged       %zu\n"
      "  expectations rewritten %zu\n"
      "  commit batches merged  %zu",
      original_entries, final_entries, 100.0 * reduction(), iterations,
      writes_eliminated, reads_eliminated, polls_eliminated, pages_eliminated,
      synced_bytes_pruned, delays_merged, rewrites, batches_merged);
  return buf;
}

std::string ProvenanceToJson(const OptimizationProvenance& p) {
  std::string out = "[\n";
  char buf[256];
  for (size_t i = 0; i < p.records.size(); ++i) {
    const OptRecord& r = p.records[i];
    std::snprintf(buf, sizeof(buf),
                  "  {\"pass\": \"%s\", \"action\": \"%s\", \"reason\": "
                  "\"%s\", \"index\": %u, \"witness\": %u, \"detail\": "
                  "%llu}%s\n",
                  r.pass.c_str(), OptActionName(r.action),
                  OptReasonName(r.reason), r.index, r.aux_index,
                  static_cast<unsigned long long>(r.detail),
                  i + 1 < p.records.size() ? "," : "");
    out += buf;
  }
  out += "]\n";
  return out;
}

}  // namespace grt
