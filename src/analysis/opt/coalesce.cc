// Commit-batch coalescing: two adjacent pacing delays are two §4.1
// deferral boundaries with no work between them — the IR proves them
// independent of any device response, so they fold into one barrier with
// the summed duration. (Batch merges that fall out of other passes'
// eliminations are measured and recorded by the pipeline driver, which
// compares the commit-batch structure before and after the pipeline.)
#include "src/analysis/opt/passes.h"

namespace grt {

PassEdit CoalescePass(const DataflowIr& ir, const std::vector<uint32_t>& orig) {
  PassEdit edit;
  const auto& entries = ir.rec->log.entries();

  size_t i = 0;
  while (i < entries.size()) {
    if (entries[i].op != LogOp::kDelay) {
      ++i;
      continue;
    }
    size_t run_end = i + 1;
    Duration total = entries[i].delay;
    while (run_end < entries.size() && entries[run_end].op == LogOp::kDelay) {
      total += entries[run_end].delay;
      ++run_end;
    }
    if (run_end > i + 1) {
      LogEntry merged = entries[i];
      merged.delay = total;
      edit.rewrites.push_back({static_cast<uint32_t>(i), merged});
      for (size_t j = i + 1; j < run_end; ++j) {
        edit.deletions.push_back(static_cast<uint32_t>(j));
        edit.trace.push_back(OptRecord{
            "commit-coalesce", OptAction::kMerge, OptReason::kDelayMerged,
            orig[j], orig[i], static_cast<uint64_t>(entries[j].delay)});
      }
    }
    i = run_end;
  }
  return edit;
}

}  // namespace grt
