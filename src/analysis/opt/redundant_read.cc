// Redundant-read caching: observations whose outcome is already pinned by
// an earlier, unclobbered observation (or that the replayer never checks
// at all) are dropped. Reads have no device side effect — the poll-
// idempotence discipline the verifier enforces is exactly what makes this
// sound — so removing one cannot perturb replay state; the dominating
// witness still performs the validation.
#include "src/analysis/opt/passes.h"

namespace grt {
namespace {

constexpr char kPass[] = "redundant-read-elim";

}  // namespace

PassEdit RedundantReadPass(const DataflowIr& ir,
                           const std::vector<uint32_t>& orig) {
  PassEdit edit;
  const auto& entries = ir.rec->log.entries();

  auto del = [&](size_t i, OptReason reason, uint32_t aux_orig,
                 uint64_t detail) {
    edit.deletions.push_back(static_cast<uint32_t>(i));
    edit.trace.push_back(OptRecord{kPass, OptAction::kDelete, reason, orig[i],
                                   aux_orig, detail});
  };

  for (size_t i = 0; i < entries.size(); ++i) {
    const LogEntry& e = entries[i];
    if (e.op == LogOp::kRegRead) {
      if (e.speculative || !IsReadIdempotentRegister(e.reg)) {
        continue;
      }
      // The replayer never verifies nondeterministic registers, so the
      // read is pure overhead at replay time.
      if (IsNondeterministicRegister(e.reg)) {
        del(i, OptReason::kNondetRead, 0, e.value);
        continue;
      }
      auto j = PrevObservationOf(ir, e.reg, i);
      if (j.has_value() && ObservationEstablishes(ir, *j, ~0u, e.value) &&
          !HasClobberBetween(ir, e.reg, *j, i)) {
        del(i, OptReason::kDominatedObservation, orig[*j], e.value);
      }
      continue;
    }
    if (e.op == LogOp::kPollWait) {
      if (!IsReadIdempotentRegister(e.reg)) {
        continue;
      }
      // A dominated poll is satisfied on its first iteration at replay:
      // the witness proved the masked bits and nothing since may have
      // changed them.
      auto j = PrevObservationOf(ir, e.reg, i);
      if (j.has_value() &&
          ObservationEstablishes(ir, *j, e.mask, e.expected) &&
          !HasClobberBetween(ir, e.reg, *j, i)) {
        del(i, OptReason::kDominatedObservation, orig[*j], e.expected);
      }
    }
  }
  return edit;
}

}  // namespace grt
