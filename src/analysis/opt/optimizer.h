// Offline recording optimizer: lifts a verified recording to the dataflow
// IR, runs the pass pipeline to a fixpoint, and lowers the result back to
// a format-v3 recording whose header carries the full justification trace
// (OptimizationProvenance). The output must re-pass every verifier pass —
// including `optimizer-provenance` — and the equivalence harness
// (src/harness/equivalence.h) replays it against the unoptimized original.
#ifndef GRT_SRC_ANALYSIS_OPT_OPTIMIZER_H_
#define GRT_SRC_ANALYSIS_OPT_OPTIMIZER_H_

#include <string>

#include "src/common/status.h"
#include "src/record/recording.h"

namespace grt {

struct OptimizeOptions {
  bool dead_write = true;
  bool redundant_read = true;
  bool coalesce = true;
  bool memsync_prune = true;
  // Pipeline iterations: passes enable each other (removing a power pair
  // exposes dominated power polls; removing reads makes delays adjacent),
  // so the driver re-lifts and re-runs until quiescent or this cap.
  int max_iterations = 8;
};

struct OptStats {
  size_t original_entries = 0;
  size_t final_entries = 0;
  size_t writes_eliminated = 0;
  size_t reads_eliminated = 0;
  size_t polls_eliminated = 0;
  size_t pages_eliminated = 0;
  size_t delays_merged = 0;
  size_t rewrites = 0;
  size_t batches_merged = 0;
  size_t synced_bytes_pruned = 0;
  size_t iterations = 0;

  size_t ops_eliminated() const {
    return original_entries - final_entries;
  }
  double reduction() const {
    return original_entries == 0
               ? 0.0
               : static_cast<double>(ops_eliminated()) /
                     static_cast<double>(original_entries);
  }
  std::string ToString() const;
};

// Optimizes `rec`. The input must not already carry optimization
// provenance (re-optimizing would corrupt the original-index trace).
// When no pass finds anything, the result is the input unchanged with
// provenance still marked unoptimized. Never touches the input's
// signature: callers re-sign the result body themselves.
Result<Recording> OptimizeRecording(const Recording& rec,
                                    const OptimizeOptions& options,
                                    OptStats* stats);

// Machine-readable justification trace (one JSON object per line inside a
// top-level array), for `grt_opt --json-trace` and external auditors.
std::string ProvenanceToJson(const OptimizationProvenance& p);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_OPT_OPTIMIZER_H_
