// Static plan footprints and pairwise interference analysis.
//
// Lifts a verified recording into a conservative summary of every resource
// a replay of it can touch: MMIO register ranges classified
// read/write/clobber via the clobber-window model in src/hw/regs, physical
// pages written by the CPU (applied page images, writable tensor bindings)
// and by GPU DMA (a walk of every page table the log latches into an
// address space), IRQ lines waited on, and the job-slot / address-space
// latch groups written. The footprint travels in the recording header
// (container v4) and is the evidence the serving device pool uses to prove
// two plans non-interfering before co-locating them on one device — the
// non-interference SAGE establishes dynamically, derived here ahead of
// time from the closed-world recording.
//
// Soundness contract: ComputeFootprint over-approximates. Every register a
// replay observes or perturbs, and every physical byte a replay (CPU or
// GPU) can write, lies inside the footprint. The `footprint-soundness`
// verifier pass re-derives the footprint and rejects recordings whose
// declared footprint fails to cover it; the CheckFootprintSoundness
// harness (src/harness/soundness.h) re-checks the same inclusion
// dynamically against per-page write observers on a live replay.
#ifndef GRT_SRC_ANALYSIS_FOOTPRINT_FOOTPRINT_H_
#define GRT_SRC_ANALYSIS_FOOTPRINT_FOOTPRINT_H_

#include <string>

#include "src/common/status.h"
#include "src/record/recording.h"
#include "src/sku/sku.h"

namespace grt {

// Pairwise interference verdict lattice, ordered by severity:
//
//   kDisjoint     the two replays touch provably disjoint state: no page
//                 either writes is readable or writable by the other, and
//                 they own disjoint job slots and address spaces. Safe to
//                 co-reside on one device with no fence — each engine's
//                 dirty-page warm path stays sound.
//   kSerializable the replays overlap only on register state one of them
//                 observes across its own plan boundary (or on IRQ lines
//                 waited on externally). A reset fence between runs — the
//                 replayer's default scrub_before — restores boot state,
//                 so serialized execution on one device is safe but
//                 interleaving without the fence is not.
//   kConflicting  a page one replay writes is read or written by the
//                 other, or they write the same job-slot / address-space
//                 latch group. DRAM survives reset fences and slot/AS
//                 sharing breaks the GPU-DMA page proof, so these plans
//                 must not share resident engines: separate devices, or
//                 evict-and-reload (cold) on every switch.
enum class Interference : uint8_t {
  kDisjoint = 0,
  kSerializable = 1,
  kConflicting = 2,
};

const char* InterferenceName(Interference v);

// Computes the conservative footprint of `rec`. `sku` supplies the
// page-table format for the GPU-DMA walk; when nullptr (unknown SKU) the
// walk is impossible and every recorded image page and binding page is
// instead marked read+write — maximally conservative, never unsound.
ResourceFootprint ComputeFootprint(const Recording& rec, const GpuSku* sku);

// Resolves the header's SKU and stamps header.footprint in place. Called
// by every recording producer (shim finish, recorder finish, optimizer).
void StampFootprint(Recording* rec);

// Pairwise verdict; symmetric in its arguments.
Interference CheckInterference(const ResourceFootprint& a,
                               const ResourceFootprint& b);

// Admission-time verdict for a device pool. kSerializable's soundness
// argument IS the per-replay reset fence (the replayer's scrub_before
// hard reset restores boot state between runs); a deployment that
// disables the fence must treat serializable pairs as conflicting.
// `reset_fenced` says whether the pool replays with the fence on.
Interference AdmissionInterference(const ResourceFootprint& a,
                                   const ResourceFootprint& b,
                                   bool reset_fenced);

// True when `declared` over-approximates `required` (register ranges,
// page ranges, IRQ lines, slot/AS masks). On failure *why names the first
// uncovered resource.
bool FootprintCovers(const ResourceFootprint& declared,
                     const ResourceFootprint& required, std::string* why);

// Structural well-formedness: sorted non-overlapping ranges, register
// offsets 4-aligned inside the MMIO window, page-aligned page ranges.
Status ValidateFootprint(const ResourceFootprint& fp);

// Human-readable / machine-readable dumps (grt_lint --footprint,
// recording_inspector --footprint).
std::string FootprintToString(const ResourceFootprint& fp);
std::string FootprintToJson(const ResourceFootprint& fp);

}  // namespace grt

#endif  // GRT_SRC_ANALYSIS_FOOTPRINT_FOOTPRINT_H_
