#include "src/analysis/footprint/footprint.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "src/hw/mmu.h"
#include "src/hw/regs.h"
#include "src/mem/phys_mem.h"

namespace grt {

namespace {

// Reads a 64-bit little-endian word from a page image.
uint64_t ImageU64(const Bytes& image, uint64_t offset) {
  uint64_t v = 0;
  for (int b = 7; b >= 0; --b) {
    v = (v << 8) | image[offset + static_cast<uint64_t>(b)];
  }
  return v;
}

bool JobSlotReg(uint32_t reg, int* slot, uint32_t* rel) {
  if (reg < kJobSlotBase ||
      reg >= kJobSlotBase + kMaxJobSlots * kJobSlotStride) {
    return false;
  }
  *slot = static_cast<int>((reg - kJobSlotBase) / kJobSlotStride);
  *rel = (reg - kJobSlotBase) % kJobSlotStride;
  return true;
}

bool AddressSpaceReg(uint32_t reg, int* as, uint32_t* rel) {
  if (reg < kAsBase || reg >= kAsBase + kMaxAddressSpaces * kAsStride) {
    return false;
  }
  *as = static_cast<int>((reg - kAsBase) / kAsStride);
  *rel = (reg - kAsBase) % kAsStride;
  return true;
}

// Accumulates unit-granularity access bits and coalesces them into sorted
// [lo, hi) ranges of equal access on extraction.
class AccessMap {
 public:
  explicit AccessMap(uint64_t unit) : unit_(unit) {}

  void Add(uint64_t addr, uint8_t bits) { acc_[addr - addr % unit_] |= bits; }

  std::vector<FootprintRange> Ranges() const {
    std::vector<FootprintRange> out;
    for (const auto& [addr, bits] : acc_) {
      if (bits == 0) {
        continue;
      }
      if (!out.empty() && out.back().hi == addr &&
          out.back().access == bits) {
        out.back().hi = addr + unit_;
      } else {
        out.push_back(FootprintRange{addr, addr + unit_, bits});
      }
    }
    return out;
  }

 private:
  uint64_t unit_;
  std::map<uint64_t, uint8_t> acc_;
};

// The register an IRQ wait on `line` observes (the rawstat the replayer
// level-checks while waiting).
uint32_t IrqLineRawstat(int line) {
  switch (line) {
    case 0: return kRegJobIrqRawstat;
    case 1: return kRegGpuIrqRawstat;
    default: return kRegMmuIrqRawstat;
  }
}

// Walks one recorded page-table tree, adding every reachable leaf mapping
// to `pages` (read always — the GPU may fetch through it — write when the
// PTE grants it) and every table page as read (the walker fetches PTEs).
// Tables are looked up across *all* recorded images of a page, so a table
// rewritten mid-recording contributes the union of its versions.
void WalkTable(const std::map<uint64_t, std::vector<const Bytes*>>& images,
               PageTableFormat format, uint64_t table_pa, int level,
               std::set<std::pair<uint64_t, int>>* visited, AccessMap* pages) {
  if (level >= kPtLevels || !visited->insert({table_pa, level}).second) {
    return;
  }
  auto it = images.find(table_pa);
  if (it == images.end()) {
    return;
  }
  pages->Add(table_pa, kFpRead);
  for (const Bytes* image : it->second) {
    if (image->size() < kPageSize) {
      continue;
    }
    for (uint64_t i = 0; i < kPtEntries; ++i) {
      uint64_t pte = ImageU64(*image, i * 8);
      if (level < kPtLevels - 1) {
        auto next = DecodeTablePte(format, pte);
        if (next.ok()) {
          WalkTable(images, format, *next, level + 1, visited, pages);
        }
      } else {
        auto leaf = DecodePte(format, pte);
        if (leaf.ok()) {
          pages->Add(leaf->first,
                     static_cast<uint8_t>(kFpRead |
                                          (leaf->second.write ? kFpWrite : 0)));
        }
      }
    }
  }
}

bool RangesOverlap(const FootprintRange& a, const FootprintRange& b) {
  return a.lo < b.hi && b.lo < a.hi;
}

// True when some range with access∩`bits_a` in `a` overlaps some range
// with access∩`bits_b` in `b`.
bool AnyOverlap(const std::vector<FootprintRange>& a, uint8_t bits_a,
                const std::vector<FootprintRange>& b, uint8_t bits_b) {
  for (const FootprintRange& ra : a) {
    if ((ra.access & bits_a) == 0) {
      continue;
    }
    for (const FootprintRange& rb : b) {
      if ((rb.access & bits_b) != 0 && RangesOverlap(ra, rb)) {
        return true;
      }
    }
  }
  return false;
}

std::string FmtRange(const FootprintRange& r) {
  char buf[96];
  std::string access;
  if (r.access & kFpRead) access += "r";
  if (r.access & kFpWrite) access += "w";
  if (r.access & kFpClobber) access += "c";
  if (r.access & kFpExternal) access += "x";
  std::snprintf(buf, sizeof(buf), "[%#llx,%#llx):%s",
                static_cast<unsigned long long>(r.lo),
                static_cast<unsigned long long>(r.hi), access.c_str());
  return buf;
}

Status ValidateRanges(const std::vector<FootprintRange>& ranges,
                      uint64_t unit, uint64_t limit, const char* what) {
  uint64_t prev_hi = 0;
  bool first = true;
  for (const FootprintRange& r : ranges) {
    if (r.lo >= r.hi || r.lo % unit != 0 || r.hi % unit != 0) {
      return IntegrityViolation(std::string(what) +
                                " footprint range malformed: " + FmtRange(r));
    }
    if (limit != 0 && r.hi > limit) {
      return IntegrityViolation(std::string(what) +
                                " footprint range out of window: " +
                                FmtRange(r));
    }
    if (!first && r.lo < prev_hi) {
      return IntegrityViolation(std::string(what) +
                                " footprint ranges unsorted or overlapping "
                                "at " + FmtRange(r));
    }
    if (r.access == 0 ||
        (r.access & ~(kFpRead | kFpWrite | kFpClobber | kFpExternal)) != 0) {
      return IntegrityViolation(std::string(what) +
                                " footprint range has bad access bits: " +
                                FmtRange(r));
    }
    prev_hi = r.hi;
    first = false;
  }
  return OkStatus();
}

// Checks that `declared` grants at least `r.access` on every `unit`-sized
// address of `r`. Exact for recomputed footprints: their ranges coalesce
// only equal-access units, so the range's access is each unit's access.
bool CoversRange(const ResourceFootprint& declared,
                 const std::vector<FootprintRange>& declared_ranges,
                 const FootprintRange& r, uint64_t unit, const char* what,
                 std::string* why) {
  for (uint64_t addr = r.lo; addr < r.hi; addr += unit) {
    uint8_t have = declared.AccessAt(declared_ranges, addr);
    if ((r.access & ~have) != 0) {
      if (why != nullptr) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%s %#llx requires access %#x but footprint declares "
                      "%#x",
                      what, static_cast<unsigned long long>(addr), r.access,
                      have);
        *why = buf;
      }
      return false;
    }
  }
  return true;
}

}  // namespace

const char* InterferenceName(Interference v) {
  switch (v) {
    case Interference::kDisjoint: return "disjoint";
    case Interference::kSerializable: return "serializable";
    case Interference::kConflicting: return "conflicting";
  }
  return "?";
}

ResourceFootprint ComputeFootprint(const Recording& rec, const GpuSku* sku) {
  ResourceFootprint fp;
  fp.computed = true;

  AccessMap regs(/*unit=*/4);
  AccessMap pages(kPageSize);

  // --- register / IRQ / latch sweep -------------------------------------
  // Write stimuli seen so far, for the establishment test and the clobber
  // closure below — deduped to one representative per (register, clobber
  // value-class), which is exact: MayClobberRegister is value-insensitive
  // within a class (ClobberValueClass). Large logs write thousands of
  // distinct values (job-chain pointers, TRANSTAB roots) to a handful of
  // registers; keying the closure's MMIO sweep on the class keeps it
  // O(distinct stimulus registers), not O(distinct recorded writes).
  std::vector<std::pair<uint32_t, uint32_t>> stimuli;
  std::set<std::pair<uint32_t, uint32_t>> stimuli_seen;  // (reg, class)
  std::set<uint32_t> established;
  auto is_established = [&](uint32_t reg) {
    if (established.count(reg) != 0) {
      return true;
    }
    for (const auto& [sreg, svalue] : stimuli) {
      if (sreg == reg || MayClobberRegister(sreg, svalue, reg)) {
        established.insert(reg);
        return true;
      }
    }
    return false;
  };
  // An observation of `reg` before any in-log stimulus established its
  // value crosses the plan boundary: the replay depends on device state it
  // did not set up itself. Constant and nondeterministic registers are
  // exempt (discovery reads and values the replayer never verifies).
  auto observe = [&](uint32_t reg) {
    uint8_t bits = kFpRead;
    RegClass cls = ClassifyRegister(reg);
    if (cls != RegClass::kConstant && cls != RegClass::kNondet &&
        !is_established(reg)) {
      bits |= kFpExternal;
    }
    regs.Add(reg, bits);
    return bits;
  };

  // Current TRANSTAB latch value per address space; every latched non-zero
  // root is a candidate tree for the GPU-DMA walk (over-approximating:
  // roots latched but never walked only add pages).
  uint64_t transtab_lo[kMaxAddressSpaces] = {};
  uint64_t transtab_hi[kMaxAddressSpaces] = {};
  std::set<uint64_t> roots;
  std::map<uint64_t, std::vector<const Bytes*>> images;

  for (const LogEntry& e : rec.log.entries()) {
    switch (e.op) {
      case LogOp::kRegWrite: {
        regs.Add(e.reg, kFpWrite);
        if (stimuli_seen.insert({e.reg, ClobberValueClass(e.reg, e.value)})
                .second) {
          stimuli.emplace_back(e.reg, e.value);
        }
        int slot = 0;
        int as = 0;
        uint32_t rel = 0;
        if (JobSlotReg(e.reg, &slot, &rel)) {
          fp.slot_write_mask |= 1u << slot;
        } else if (AddressSpaceReg(e.reg, &as, &rel)) {
          fp.as_write_mask |= 1u << as;
          if (rel == kAsTranstabLo) {
            transtab_lo[as] = e.value;
          } else if (rel == kAsTranstabHi) {
            transtab_hi[as] = e.value;
          }
          uint64_t root = (transtab_hi[as] << 32) | transtab_lo[as];
          if ((rel == kAsTranstabLo || rel == kAsTranstabHi) && root != 0) {
            roots.insert(root);
          }
        }
        break;
      }
      case LogOp::kRegRead:
      case LogOp::kPollWait:
        observe(e.reg);
        break;
      case LogOp::kIrqWait: {
        fp.irq_lines |= e.irq_lines;
        for (int line = 0; line < 3; ++line) {
          if ((e.irq_lines & (1u << line)) == 0) {
            continue;
          }
          if ((observe(IrqLineRawstat(line)) & kFpExternal) != 0) {
            fp.irq_external |= 1u << line;
          }
        }
        break;
      }
      case LogOp::kMemPage:
        // The replayer applies the image with CPU writes.
        pages.Add(e.pa, kFpWrite);
        images[e.pa - e.pa % kPageSize].push_back(&e.data);
        break;
      case LogOp::kDelay:
        break;
    }
  }

  // Clobber closure: any register a recorded stimulus may perturb, across
  // the whole MMIO window. Order-independent, so computed after the sweep;
  // one window sweep per stimulus value-class (see the dedupe above).
  for (const auto& [sreg, svalue] : stimuli) {
    for (uint32_t cand = 0; cand < kGpuMmioSize; cand += 4) {
      if (MayClobberRegister(sreg, svalue, cand)) {
        regs.Add(cand, kFpClobber);
      }
    }
  }

  // --- page sets --------------------------------------------------------
  // Tensor bindings: the replayer CPU-writes staged inputs/parameters and
  // CPU-reads outputs.
  for (const auto& [name, binding] : rec.bindings) {
    for (uint64_t pa : binding.pages) {
      pages.Add(pa, binding.writable_at_replay ? kFpWrite : kFpRead);
    }
  }

  if (sku != nullptr) {
    // GPU DMA: walk every page-table tree the log ever latched. Leaf
    // mappings with the write permission are GPU-writable during replay.
    std::set<std::pair<uint64_t, int>> visited;
    for (uint64_t root : roots) {
      WalkTable(images, sku->pt_format, root, 0, &visited, &pages);
    }
  } else {
    // Unknown SKU: the walk is impossible, so assume the GPU can reach
    // every recorded page and every binding page, read-write.
    for (const auto& [pa, unused] : images) {
      pages.Add(pa, kFpRead | kFpWrite);
    }
    for (const auto& [name, binding] : rec.bindings) {
      for (uint64_t pa : binding.pages) {
        pages.Add(pa, kFpRead | kFpWrite);
      }
    }
  }

  fp.regs = regs.Ranges();
  fp.pages = pages.Ranges();
  return fp;
}

void StampFootprint(Recording* rec) {
  auto sku = FindSku(rec->header.sku);
  rec->header.footprint =
      ComputeFootprint(*rec, sku.ok() ? &sku.value() : nullptr);
}

Interference CheckInterference(const ResourceFootprint& a,
                               const ResourceFootprint& b) {
  // A recording without a computed footprint proves nothing: assume the
  // worst.
  if (!a.computed || !b.computed) {
    return Interference::kConflicting;
  }
  // Page conflict: a page one side writes that the other can read or
  // write. DRAM survives the reset fence between replays, so no fence
  // makes this safe; it also breaks the co-resident warm path (a foreign
  // write would dirty pages behind the other engine's tracker).
  if (AnyOverlap(a.pages, kFpWrite, b.pages, kFpRead | kFpWrite) ||
      AnyOverlap(b.pages, kFpWrite, a.pages, kFpRead | kFpWrite)) {
    return Interference::kConflicting;
  }
  // Shared job-slot or address-space latch group: the GPU-DMA page proof
  // composes only under exclusive slot/AS ownership.
  if ((a.slot_write_mask & b.slot_write_mask) != 0 ||
      (a.as_write_mask & b.as_write_mask) != 0) {
    return Interference::kConflicting;
  }
  // Register overlap matters only where one side observes state across
  // its own plan boundary: everything else is re-established by the
  // observer's own in-plan writes on every replay. A reset fence
  // (scrub_before) restores boot state, so this is serializable.
  if (AnyOverlap(a.regs, kFpWrite | kFpClobber, b.regs, kFpExternal) ||
      AnyOverlap(b.regs, kFpWrite | kFpClobber, a.regs, kFpExternal)) {
    return Interference::kSerializable;
  }
  if ((a.irq_lines & b.irq_external) != 0 ||
      (b.irq_lines & a.irq_external) != 0) {
    return Interference::kSerializable;
  }
  return Interference::kDisjoint;
}

Interference AdmissionInterference(const ResourceFootprint& a,
                                   const ResourceFootprint& b,
                                   bool reset_fenced) {
  Interference v = CheckInterference(a, b);
  if (v == Interference::kSerializable && !reset_fenced) {
    // No reset fence between replays: the register state one plan
    // observes across its boundary survives the other's writes, so
    // serialized execution is no longer provably clean.
    return Interference::kConflicting;
  }
  return v;
}

bool FootprintCovers(const ResourceFootprint& declared,
                     const ResourceFootprint& required, std::string* why) {
  for (const FootprintRange& r : required.regs) {
    if (!CoversRange(declared, declared.regs, r, 4, "register", why)) {
      return false;
    }
  }
  for (const FootprintRange& r : required.pages) {
    if (!CoversRange(declared, declared.pages, r, kPageSize, "page", why)) {
      return false;
    }
  }
  if ((required.irq_lines & ~declared.irq_lines) != 0 ||
      (required.irq_external & ~declared.irq_external) != 0) {
    if (why != nullptr) {
      *why = "IRQ lines missing from the declared footprint";
    }
    return false;
  }
  if ((required.slot_write_mask & ~declared.slot_write_mask) != 0) {
    if (why != nullptr) {
      *why = "job-slot write mask missing bits";
    }
    return false;
  }
  if ((required.as_write_mask & ~declared.as_write_mask) != 0) {
    if (why != nullptr) {
      *why = "address-space write mask missing bits";
    }
    return false;
  }
  return true;
}

Status ValidateFootprint(const ResourceFootprint& fp) {
  GRT_RETURN_IF_ERROR(ValidateRanges(fp.regs, 4, kGpuMmioSize, "register"));
  GRT_RETURN_IF_ERROR(ValidateRanges(fp.pages, kPageSize, 0, "page"));
  if ((fp.irq_external & ~fp.irq_lines) != 0) {
    return IntegrityViolation(
        "footprint marks IRQ lines external that it never waits on");
  }
  return OkStatus();
}

std::string FootprintToString(const ResourceFootprint& fp) {
  if (!fp.computed) {
    return "  (no computed footprint: pre-v4 producer)\n";
  }
  std::string out;
  char buf[128];
  out += "  registers:\n";
  for (const FootprintRange& r : fp.regs) {
    out += "    " + FmtRange(r) + "\n";
  }
  out += "  pages:\n";
  for (const FootprintRange& r : fp.pages) {
    out += "    " + FmtRange(r) + "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "  irq_lines=%#x irq_external=%#x slots=%#x as=%#x\n",
                fp.irq_lines, fp.irq_external, fp.slot_write_mask,
                fp.as_write_mask);
  out += buf;
  return out;
}

std::string FootprintToJson(const ResourceFootprint& fp) {
  auto ranges_json = [](const std::vector<FootprintRange>& ranges) {
    std::string out = "[";
    bool first = true;
    for (const FootprintRange& r : ranges) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"lo\":%llu,\"hi\":%llu,\"access\":%u}",
                    first ? "" : ",", static_cast<unsigned long long>(r.lo),
                    static_cast<unsigned long long>(r.hi), r.access);
      out += buf;
      first = false;
    }
    return out + "]";
  };
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"irq_lines\":%u,\"irq_external\":%u,\"slot_write_mask\":%u,"
                "\"as_write_mask\":%u",
                fp.irq_lines, fp.irq_external, fp.slot_write_mask,
                fp.as_write_mask);
  return std::string("{\"computed\":") + (fp.computed ? "true" : "false") +
         ",\"regs\":" + ranges_json(fp.regs) +
         ",\"pages\":" + ranges_json(fp.pages) + "," + buf + "}";
}

}  // namespace grt
