#include "src/sku/devicetree.h"

namespace grt {

Result<std::string> DtNode::GetString(const std::string& key) const {
  auto it = props_.find(key);
  if (it == props_.end() || !it->second.is_string) {
    return NotFound("no string property '" + key + "'");
  }
  return it->second.str_value;
}

Result<std::vector<uint32_t>> DtNode::GetU32s(const std::string& key) const {
  auto it = props_.find(key);
  if (it == props_.end() || it->second.is_string) {
    return NotFound("no u32 property '" + key + "'");
  }
  return it->second.u32_values;
}

DtNode* DtNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<DtNode>(std::move(name)));
  return children_.back().get();
}

const DtNode* DtNode::FindChild(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->name() == name) {
      return c.get();
    }
  }
  return nullptr;
}

namespace {

const DtNode* FindCompatibleIn(const DtNode* node,
                               const std::string& compatible) {
  auto compat = node->GetString("compatible");
  if (compat.ok() && compat.value() == compatible) {
    return node;
  }
  for (const auto& c : node->children()) {
    const DtNode* found = FindCompatibleIn(c.get(), compatible);
    if (found != nullptr) {
      return found;
    }
  }
  return nullptr;
}

}  // namespace

const DtNode* DeviceTree::FindCompatible(const std::string& compatible) const {
  return FindCompatibleIn(root(), compatible);
}

std::string GpuCompatibleString(const GpuSku& sku) {
  // Family-level compatible: one driver binds all SKUs of a family (§3,
  // "a single GPU driver often supports many GPU SKUs of the same family").
  switch (sku.id) {
    case SkuId::kMaliG71Mp2:
    case SkuId::kMaliG71Mp4:
    case SkuId::kMaliG71Mp8:
    case SkuId::kMaliG72Mp12:
      return "arm,mali-bifrost";
    case SkuId::kMaliG76Mp10:
    case SkuId::kMaliG52Mp2:
      return "arm,mali-bifrost-gen2";
  }
  return "arm,mali-unknown";
}

DeviceTree BuildGpuDeviceTree(const GpuSku& sku) {
  DeviceTree dt;
  DtNode* soc = dt.root()->AddChild("soc");
  soc->SetString("compatible", "simple-bus");

  DtNode* gpu = soc->AddChild("gpu@e82c0000");
  gpu->SetString("compatible", GpuCompatibleString(sku));
  gpu->SetU32s("reg", {0xE82C0000u, 0x4000u});
  gpu->SetU32s("interrupts", {/*JOB=*/64, /*MMU=*/65, /*GPU=*/66});
  gpu->SetU32s("arm,gpu-id", {sku.gpu_id_reg});
  gpu->SetU32s("arm,shader-core-count",
               {static_cast<uint32_t>(sku.core_count())});
  gpu->SetU32s("clock-frequency", {sku.clock_mhz * 1000u * 1000u});

  DtNode* power = gpu->AddChild("power-model");
  power->SetString("compatible", "arm,mali-simple-power-model");
  power->SetU32s("static-coefficient", {2427750});
  power->SetU32s("dynamic-coefficient", {4687});
  return dt;
}

Result<SkuId> SkuFromDeviceTree(const DeviceTree& dt) {
  for (const GpuSku& sku : AllSkus()) {
    const DtNode* node = dt.FindCompatible(GpuCompatibleString(sku));
    if (node == nullptr) {
      continue;
    }
    auto id = node->GetU32s("arm,gpu-id");
    if (id.ok() && !id.value().empty() && id.value()[0] == sku.gpu_id_reg) {
      return sku.id;
    }
  }
  return NotFound("devicetree has no recognizable GPU node");
}

}  // namespace grt
