// GPU SKU registry.
//
// The paper's key practicality problem is SKU diversity (§2.4, Figure 3):
// ~80 mobile GPU SKUs, recordings are SKU-specific, and "even subtle SKU
// differences can break replay" — shader core count changes JIT output,
// page-table formats differ, shared-memory layouts differ. This module
// models a family of Mali-Bifrost-like SKUs whose differences are exactly
// the ones the paper calls out, so tests can demonstrate SKU-specific
// recordings and cross-SKU replay rejection.
#ifndef GRT_SRC_SKU_SKU_H_
#define GRT_SRC_SKU_SKU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace grt {

// Stable identifier for a SKU; doubles as the GPU_ID register's product
// field so driver probe and recording headers agree.
enum class SkuId : uint32_t {
  kMaliG71Mp2 = 0x6001,
  kMaliG71Mp4 = 0x6002,
  kMaliG71Mp8 = 0x6003,  // the paper's client GPU (Hikey960)
  kMaliG72Mp12 = 0x6201,
  kMaliG76Mp10 = 0x7201,
  kMaliG52Mp2 = 0x7401,
};

// Page-table entry layout revision. Bifrost-era parts use format A; later
// parts add an access-flag bit and pack permissions differently. A replayer
// fed a recording with the wrong format sees MMU faults — mirroring the
// paper's "variations in GPU page table formats" breakage.
enum class PageTableFormat : uint8_t {
  kFormatA = 0,
  kFormatB = 1,
};

struct GpuSku {
  SkuId id;
  std::string name;

  // Hardware discovery values (returned by probe-time register reads).
  uint32_t gpu_id_reg;        // product id << 16 | revision
  uint32_t shader_present;    // bitmask of shader cores
  uint32_t tiler_present;     // bitmask of tiler units
  uint32_t l2_present;        // bitmask of L2 slices
  uint32_t thread_max;        // max threads per core
  uint32_t texture_features;  // opaque feature word
  uint32_t mmu_features;      // VA bits | PA bits << 8
  uint32_t as_count;          // number of MMU address spaces
  uint32_t js_count;          // number of job slots

  PageTableFormat pt_format;

  // Shared-memory layout revision: job descriptors embed this; GPUs reject
  // descriptors with a mismatched layout (the paper's "variations in shared
  // memory layout" breakage).
  uint8_t mem_layout_version;

  // Timing model.
  uint32_t clock_mhz;          // shader clock
  uint32_t macs_per_core_clk;  // multiply-accumulates per core per cycle

  // Hardware quirk bits consumed by the driver's workaround paths
  // (Listing 1(a): MMU_ALLOW_SNOOP_DISPARITY style configuration).
  uint32_t quirks;

  int core_count() const { return __builtin_popcount(shader_present); }
};

// Discovery-register bitmasks derived from the SKU's unit counts: AS_PRESENT
// and JS_PRESENT read as a dense low bitmask, one bit per address space /
// job slot. Shared by the GPU model and the sku-compat analysis pass so the
// two can never disagree.
inline uint32_t AsPresentMask(const GpuSku& sku) {
  return (1u << sku.as_count) - 1;
}
inline uint32_t JsPresentMask(const GpuSku& sku) {
  return (1u << sku.js_count) - 1;
}

// Quirk bits.
constexpr uint32_t kQuirkMmuSnoopDisparity = 1u << 0;
constexpr uint32_t kQuirkSlowCacheFlush = 1u << 1;
constexpr uint32_t kQuirkTilerPowerErratum = 1u << 2;

// All SKUs known to the registry (every SKU the cloud can serve).
const std::vector<GpuSku>& AllSkus();

// Lookup by id; kNotFound if the SKU is not in the registry.
Result<GpuSku> FindSku(SkuId id);

// Lookup from a raw GPU_ID register value as read during hardware probe.
Result<GpuSku> FindSkuByGpuIdReg(uint32_t gpu_id_reg);

}  // namespace grt

#endif  // GRT_SRC_SKU_SKU_H_
