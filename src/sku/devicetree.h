// Devicetree model.
//
// §6: "We install GPU devicetrees in the cloud VM, so the GPU stack can run
// transparently even [though] a physical GPU is not present... a single VM
// image can incorporate multiple GPU drivers, which are dynamically loaded
// depending on the specific client GPU model."
//
// This module provides a small node/property tree, a builder that crafts the
// GPU node for a given SKU, and the matching logic a driver uses to bind.
#ifndef GRT_SRC_SKU_DEVICETREE_H_
#define GRT_SRC_SKU_DEVICETREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sku/sku.h"

namespace grt {

// A devicetree property: string or u32-array valued.
struct DtProperty {
  std::string str_value;
  std::vector<uint32_t> u32_values;
  bool is_string = false;
};

class DtNode {
 public:
  explicit DtNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void SetString(const std::string& key, std::string value) {
    DtProperty p;
    p.str_value = std::move(value);
    p.is_string = true;
    props_[key] = std::move(p);
  }
  void SetU32s(const std::string& key, std::vector<uint32_t> values) {
    DtProperty p;
    p.u32_values = std::move(values);
    props_[key] = std::move(p);
  }

  Result<std::string> GetString(const std::string& key) const;
  Result<std::vector<uint32_t>> GetU32s(const std::string& key) const;
  bool Has(const std::string& key) const { return props_.count(key) > 0; }

  DtNode* AddChild(std::string name);
  const DtNode* FindChild(const std::string& name) const;
  const std::vector<std::unique_ptr<DtNode>>& children() const {
    return children_;
  }

 private:
  std::string name_;
  std::map<std::string, DtProperty> props_;
  std::vector<std::unique_ptr<DtNode>> children_;
};

class DeviceTree {
 public:
  DeviceTree() : root_(std::make_unique<DtNode>("/")) {}

  DtNode* root() { return root_.get(); }
  const DtNode* root() const { return root_.get(); }

  // Depth-first search for the first node with a matching "compatible".
  const DtNode* FindCompatible(const std::string& compatible) const;

 private:
  std::unique_ptr<DtNode> root_;
};

// Compatible string for a SKU's GPU node, e.g. "arm,mali-g71".
std::string GpuCompatibleString(const GpuSku& sku);

// Builds the devicetree a cloud VM boots with when serving a client that
// owns `sku`: a /soc node containing the GPU with reg/interrupt/core-count
// properties matching the client hardware.
DeviceTree BuildGpuDeviceTree(const GpuSku& sku);

// Extracts the SKU a devicetree describes (what the driver binds against).
Result<SkuId> SkuFromDeviceTree(const DeviceTree& dt);

}  // namespace grt

#endif  // GRT_SRC_SKU_DEVICETREE_H_
