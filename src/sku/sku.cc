#include "src/sku/sku.h"

namespace grt {
namespace {

std::vector<GpuSku> BuildRegistry() {
  std::vector<GpuSku> skus;

  auto add = [&](SkuId id, std::string name, uint32_t cores,
                 PageTableFormat ptf, uint8_t mem_layout, uint32_t clock_mhz,
                 uint32_t macs, uint32_t quirks) {
    GpuSku s;
    s.id = id;
    s.name = std::move(name);
    s.gpu_id_reg = (static_cast<uint32_t>(id) << 16) | 0x0010;  // rev r0p1
    s.shader_present = (cores >= 32) ? 0xFFFFFFFFu : ((1u << cores) - 1);
    s.tiler_present = 0x1;
    s.l2_present = 0x1;
    s.thread_max = 384;
    s.texture_features = 0x00FE00FFu ^ static_cast<uint32_t>(id);
    s.mmu_features = 40 | (40u << 8);  // 40-bit VA / 40-bit PA class device
    s.as_count = 8;
    s.js_count = 3;
    s.pt_format = ptf;
    s.mem_layout_version = mem_layout;
    s.clock_mhz = clock_mhz;
    s.macs_per_core_clk = macs;
    s.quirks = quirks;
    skus.push_back(std::move(s));
  };

  add(SkuId::kMaliG71Mp2, "Mali-G71 MP2", 2, PageTableFormat::kFormatA, 1, 650,
      8, kQuirkMmuSnoopDisparity);
  add(SkuId::kMaliG71Mp4, "Mali-G71 MP4", 4, PageTableFormat::kFormatA, 1, 772,
      8, kQuirkMmuSnoopDisparity);
  add(SkuId::kMaliG71Mp8, "Mali-G71 MP8", 8, PageTableFormat::kFormatA, 1, 900,
      8, kQuirkMmuSnoopDisparity | kQuirkSlowCacheFlush);
  add(SkuId::kMaliG72Mp12, "Mali-G72 MP12", 12, PageTableFormat::kFormatA, 2,
      850, 12, 0);
  add(SkuId::kMaliG76Mp10, "Mali-G76 MP10", 10, PageTableFormat::kFormatB, 3,
      720, 24, kQuirkTilerPowerErratum);
  add(SkuId::kMaliG52Mp2, "Mali-G52 MP2", 2, PageTableFormat::kFormatB, 3, 850,
      16, 0);
  return skus;
}

}  // namespace

const std::vector<GpuSku>& AllSkus() {
  static const std::vector<GpuSku> kRegistry = BuildRegistry();
  return kRegistry;
}

Result<GpuSku> FindSku(SkuId id) {
  for (const GpuSku& s : AllSkus()) {
    if (s.id == id) {
      return s;
    }
  }
  return NotFound("unknown SKU id");
}

Result<GpuSku> FindSkuByGpuIdReg(uint32_t gpu_id_reg) {
  for (const GpuSku& s : AllSkus()) {
    if (s.gpu_id_reg == gpu_id_reg) {
      return s;
    }
  }
  return NotFound("no SKU matches GPU_ID value");
}

}  // namespace grt
