#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace grt {
namespace obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GRT_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return InvalidArgument("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        GRT_ASSIGN_OR_RETURN(std::string s, ParseString());
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = std::move(s);
        return v;
      }
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return v;
    }
    for (;;) {
      SkipWs();
      GRT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':' in object");
      }
      GRT_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return v;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return v;
    }
    for (;;) {
      GRT_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.items.push_back(std::move(item));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return v;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Our own writer only escapes ASCII control characters; decode
          // the BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape sequence");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    return Fail("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Fail("expected null");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        digits = true;
      }
      ++pos_;
    }
    if (!digits) {
      return Fail("expected number");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace grt
