#include "src/obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/obs/json.h"

namespace grt {
namespace obs {

void TraceCollector::Start(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  events_.reserve(std::min(capacity, size_t{1} << 12));
  capacity_ = capacity;
  dropped_.store(0, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_release);
}

void TraceCollector::Stop() {
  active_.store(false, std::memory_order_release);
}

int64_t TraceCollector::NowNs() const {
  std::chrono::steady_clock::time_point start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    start = start_;
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void TraceCollector::Record(TraceEvent event) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint32_t TraceCollector::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // never freed
  return *collector;
}

TraceSpan::TraceSpan(const char* name, const char* cat)
    : name_(name), cat_(cat) {
  TraceCollector& c = TraceCollector::Global();
  if (c.active()) {
    start_ns_ = c.NowNs();
  }
}

TraceSpan::~TraceSpan() {
  if (start_ns_ < 0) {
    return;
  }
  TraceCollector& c = TraceCollector::Global();
  if (!c.active()) {
    return;  // collection stopped while the span was open
  }
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.ts_ns = start_ns_;
  e.dur_ns = std::max<int64_t>(c.NowNs() - start_ns_, 0);
  e.tid = TraceCollector::CurrentThreadId();
  c.Record(std::move(e));
}

namespace {

// Microseconds with three decimals: exact nanosecond round-trip without
// relying on double formatting.
void AppendMicros(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  *out += buf;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.cat) + "\",\"ph\":\"X\",\"ts\":";
    AppendMicros(&out, e.ts_ns);
    out += ",\"dur\":";
    AppendMicros(&out, e.dur_ns);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return Internal("cannot open trace file for writing: " + path);
  }
  f << ExportChromeTrace(events);
  f.flush();
  if (!f) {
    return Internal("short write to trace file: " + path);
  }
  return OkStatus();
}

namespace {

int64_t MicrosToNs(double us) { return std::llround(us * 1000.0); }

}  // namespace

Result<std::vector<TraceEvent>> ParseChromeTrace(const std::string& text) {
  GRT_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  const JsonValue* array = nullptr;
  if (doc.is_array()) {
    array = &doc;
  } else if (doc.is_object()) {
    array = doc.Find("traceEvents");
    if (array == nullptr || !array->is_array()) {
      return InvalidArgument("trace document has no traceEvents array");
    }
  } else {
    return InvalidArgument("trace document is neither object nor array");
  }
  std::vector<TraceEvent> events;
  events.reserve(array->items.size());
  for (const JsonValue& item : array->items) {
    if (!item.is_object()) {
      return InvalidArgument("trace event is not an object");
    }
    const JsonValue* ph = item.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str != "X") {
      continue;  // only complete events carry spans
    }
    TraceEvent e;
    if (const JsonValue* v = item.Find("name"); v != nullptr && v->is_string()) {
      e.name = v->str;
    }
    if (const JsonValue* v = item.Find("cat"); v != nullptr && v->is_string()) {
      e.cat = v->str;
    }
    const JsonValue* ts = item.Find("ts");
    const JsonValue* dur = item.Find("dur");
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number()) {
      return InvalidArgument("complete event missing numeric ts/dur");
    }
    e.ts_ns = MicrosToNs(ts->number);
    e.dur_ns = MicrosToNs(dur->number);
    if (const JsonValue* v = item.Find("tid"); v != nullptr && v->is_number()) {
      e.tid = static_cast<uint32_t>(v->number);
    }
    events.push_back(std::move(e));
  }
  return events;
}

Status ValidateSpanNesting(const std::vector<TraceEvent>& events) {
  // Per tid: sort by (ts asc, dur desc) so an enclosing span precedes the
  // spans it contains, then run a containment stack.
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const TraceEvent& e : events) {
    sorted.push_back(&e);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->tid != b->tid) {
                return a->tid < b->tid;
              }
              if (a->ts_ns != b->ts_ns) {
                return a->ts_ns < b->ts_ns;
              }
              return a->dur_ns > b->dur_ns;
            });
  std::vector<const TraceEvent*> stack;
  uint32_t tid = 0;
  for (const TraceEvent* e : sorted) {
    if (stack.empty() || e->tid != tid) {
      stack.clear();
      tid = e->tid;
    }
    int64_t end = e->ts_ns + e->dur_ns;
    while (!stack.empty() &&
           e->ts_ns >= stack.back()->ts_ns + stack.back()->dur_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      const TraceEvent* top = stack.back();
      if (end > top->ts_ns + top->dur_ns) {
        return Internal("span '" + e->name + "' on tid " +
                        std::to_string(e->tid) + " partially overlaps '" +
                        top->name + "' (" + std::to_string(e->ts_ns) + "+" +
                        std::to_string(e->dur_ns) + " vs " +
                        std::to_string(top->ts_ns) + "+" +
                        std::to_string(top->dur_ns) + ")");
      }
    }
    stack.push_back(e);
  }
  return OkStatus();
}

}  // namespace obs
}  // namespace grt
